//! # ashn — One Gate Scheme to Rule Them All, in Rust
//!
//! A full reproduction of the AshN quantum instruction set (Chen, Ding,
//! Gong, Huang, Ye — ASPLOS 2024, arXiv:2312.05652): a single physical
//! control scheme for `XX+YY`-coupled qubits that realizes **any** two-qubit
//! gate, in provably optimal time, immune to parasitic `ZZ` coupling — a
//! quantum *Complex yet Reduced Instruction Set Computer*.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`math`] — self-contained complex linear algebra and numerics;
//! * [`gates`] — gate library, Weyl chamber, KAK decomposition;
//! * [`core`] — the AshN scheme (pulse compilation, Algorithm 1);
//! * [`sim`] — statevector/density-matrix simulators with noise;
//! * [`synth`] — circuit synthesis (CNOT/SQiSW/AshN bases, QSD, Theorem 12);
//! * [`route`] — 2-D grid qubit routing;
//! * [`qv`] — quantum-volume experiments (paper Fig. 7);
//! * [`cal`] — calibration (Cartan doubles, QPE, FRB, control models).
//!
//! ## Quickstart
//!
//! ```
//! use ashn::core::scheme::AshnScheme;
//! use ashn::gates::weyl::WeylPoint;
//!
//! // Device: XX+YY coupling g, 10% parasitic ZZ, bounded drive strength.
//! let scheme = AshnScheme::with_cutoff(0.1, 1.1);
//! let pulse = scheme.compile(WeylPoint::CNOT)?;
//! assert!((pulse.tau - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
//! assert!(pulse.coordinate_error() < 1e-7);
//! # Ok::<(), ashn::core::scheme::CompileError>(())
//! ```

pub use ashn_cal as cal;
pub use ashn_core as core;
pub use ashn_gates as gates;
pub use ashn_math as math;
pub use ashn_qv as qv;
pub use ashn_route as route;
pub use ashn_sim as sim;
pub use ashn_synth as synth;
