//! # ashn — One Gate Scheme to Rule Them All, in Rust
//!
//! A full reproduction of the AshN quantum instruction set (Chen, Ding,
//! Gong, Huang, Ye — ASPLOS 2024, arXiv:2312.05652): a single physical
//! control scheme for `XX+YY`-coupled qubits that realizes **any** two-qubit
//! gate, in provably optimal time, immune to parasitic `ZZ` coupling — a
//! quantum *Complex yet Reduced Instruction Set Computer*.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`math`] — self-contained complex linear algebra and numerics;
//! * [`gates`] — gate library, Weyl chamber, KAK decomposition;
//! * [`core`] — the AshN scheme (pulse compilation, Algorithm 1);
//! * [`ir`] — **the** circuit IR ([`ir::Instruction`]/[`ir::Circuit`]) and
//!   the [`ir::Basis`] gate-set abstraction shared by every crate below;
//! * [`sim`] — statevector/density-matrix simulators with noise;
//! * [`synth`] — circuit synthesis (CNOT/SQiSW/AshN bases, QSD, Theorem 12);
//! * [`opt`] — the DAG-based circuit optimizer (pass pipelines, KAK block
//!   resynthesis) behind [`Compiler::opt_level`];
//! * [`route`] — 2-D grid qubit routing and IR assembly;
//! * [`qv`] — quantum-volume experiments (paper Fig. 7);
//! * [`cal`] — calibration (Cartan doubles, QPE, FRB, control models);
//! * [`service`] — batched compile-as-a-service: the process-wide
//!   [`service::ShardedCache`] (persistent, lock-striped synthesis memo
//!   shared via [`Compiler::with_shared_cache`]) and the deterministic
//!   batch engine [`service::CompileService`];
//!
//! and provides the end-to-end entry points: the builder-style
//! [`Compiler`] (synthesize → route → optimize → schedule → simulate over
//! any [`ir::Basis`]) and the unified [`AshnError`].
//!
//! ## Quickstart: compile one gate to one pulse
//!
//! ```
//! use ashn::core::scheme::AshnScheme;
//! use ashn::gates::weyl::WeylPoint;
//!
//! // Device: XX+YY coupling g, 10% parasitic ZZ, bounded drive strength.
//! let scheme = AshnScheme::with_cutoff(0.1, 1.1);
//! let pulse = scheme.compile(WeylPoint::CNOT)?;
//! assert!((pulse.tau - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
//! assert!(pulse.coordinate_error() < 1e-7);
//! # Ok::<(), ashn::core::scheme::CompileError>(())
//! ```
//!
//! ## Quickstart: the whole pipeline
//!
//! ```
//! use ashn::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let model = ashn::qv::sample_model_circuit(3, &mut rng);
//! let compiled = Compiler::new()
//!     .gate_set(GateSet::Ashn { cutoff: 1.1 })
//!     .noise(QvNoise::with_e_cz(0.007))
//!     .compile(&model)?;
//! assert!(compiled.score().hop > 0.5);
//! # Ok::<(), AshnError>(())
//! ```

pub mod compiler;
pub mod error;
pub mod prelude;

pub use ashn_cal as cal;
pub use ashn_core as core;
pub use ashn_gates as gates;
pub use ashn_ir as ir;
pub use ashn_math as math;
pub use ashn_opt as opt;
pub use ashn_qv as qv;
pub use ashn_route as route;
pub use ashn_service as service;
pub use ashn_sim as sim;
pub use ashn_synth as synth;
pub use ashn_telemetry as telemetry;

pub use compiler::{Compiled, Compiler, OptLevel, SynthStats};
pub use error::AshnError;
pub use opt::{OptStats, PassManager, Retarget};
pub use qv::{GateSet, QvNoise};
pub use synth::resilience::RetryPolicy;
