//! The builder-style compilation pipeline: synthesize → route → optimize →
//! schedule → simulate, over any [`Basis`].
//!
//! This replaces the former free-function flow
//! (`qv::compile_model` + `qv::score_compiled`) as the facade entry point:
//!
//! ```
//! use ashn::{Compiler, GateSet, QvNoise};
//! use ashn::qv::sample_model_circuit;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let model = sample_model_circuit(3, &mut rng);
//! let compiled = Compiler::new()
//!     .gate_set(GateSet::Ashn { cutoff: 1.1 })
//!     .noise(QvNoise::with_e_cz(0.01))
//!     .compile(&model)?;
//! let score = compiled.score();
//! assert!(score.hop > 0.5 && score.two_qubit_gates > 0);
//! # Ok::<(), ashn::AshnError>(())
//! ```

use crate::error::AshnError;
use ashn_ir::{Basis, Circuit};
use ashn_opt::{
    standard_pipeline, structural_pipeline, OptStats, PassManager, Resynthesize, Retarget,
};
use ashn_qv::experiment::{
    compile_model_on, score_compiled, score_compiled_many, stamp_noise, CircuitScore,
    CompiledModel, ModelCircuit,
};
use ashn_qv::{GateSet, QvNoise};
use ashn_route::Grid;
use ashn_service::ShardedCache;
use ashn_sim::plan::{ExecPlan, PlanError};
use ashn_sim::trajectory::trajectory_probabilities_batched_plan;
use ashn_sim::{DensityMatrix, NoiseModel, SimEngine, Simulate, StateVector};
use ashn_synth::basis::AshnBasis;
use ashn_synth::cache::{CachedBasis, SynthCache};
use ashn_synth::resilience::{ResilientBasis, RetryPolicy};
use ashn_synth::retarget::standard_rules;

/// Synthesis-cache counters exposed by [`Compiler::synth_stats`]
/// (re-exported [`ashn_synth::cache::CacheStats`]): exact hits, class hits,
/// and misses, so the memo-cache's effect on synthesis throughput is
/// observable from the facade.
pub type SynthStats = ashn_synth::cache::CacheStats;

/// How aggressively the compiler optimizes the routed circuit before
/// scheduling (the `ashn-opt` pass pipeline).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OptLevel {
    /// No optimization: the routed circuit is scheduled as assembled. This
    /// is the builder default, preserving the historical pipeline output
    /// bit for bit.
    #[default]
    None,
    /// Structural passes only (exact rewrites at near-machine precision):
    /// adjacent single-qubit merge, global-phase folding, and
    /// commutation-aware cancellation.
    Light,
    /// The standard pipeline: the structural passes plus `Collect2q` +
    /// resynthesis — maximal two-qubit runs are gathered into one `SU(4)`
    /// target and re-emitted through the compiler's (cached) basis when
    /// that is strictly cheaper. Replacements are accepted only when their
    /// realized unitary matches the block within
    /// [`Compiler::OPT_ACCEPT_TOL`], the same fidelity scale the numerical
    /// bases synthesize to.
    Default,
}

/// Builder for the end-to-end compilation pipeline.
///
/// Defaults: the AshN basis with the paper's cutoff `r = 1.1`, the paper's
/// noise anchored at `e_cz = 0.7%`, a grid sized to the model, and
/// [`OptLevel::None`] — the optimizer ([`Compiler::opt_level`]) is opt-in,
/// so out of the box the pipeline reproduces the historical
/// synthesize → route → schedule → simulate output bit for bit. Select
/// [`OptLevel::Light`] for the exact structural rewrites or
/// [`OptLevel::Default`] to add two-qubit block resynthesis.
/// Which memo store wraps the compiler's basis at `compile` time.
enum CacheConfig {
    /// A compiler-private bounded LRU ([`SynthCache`]) — the default.
    Local(SynthCache),
    /// A caller-provided process-wide [`ShardedCache`], shared with other
    /// compilers and `ashn_service::CompileService` instances.
    Shared(ShardedCache),
    /// No memoization ([`Compiler::basis_uncached`]).
    Off,
}

pub struct Compiler {
    /// The plain (uncached) basis; the memo layer is applied per
    /// [`Compiler::compile`] call from [`CacheConfig`], so one compiler can
    /// switch between local, shared, and no caching without re-wrapping.
    basis: Box<dyn Basis>,
    /// When set, [`Compiler::retarget_circuit`] only rewrites gates native
    /// to this source set (the "port that machine's circuits" shape).
    source: Option<Box<dyn Basis>>,
    noise: QvNoise,
    grid: Option<Grid>,
    cache: CacheConfig,
    opt: OptLevel,
    retry: Option<RetryPolicy>,
}

impl Default for Compiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Compiler {
    /// A compiler with the default AshN configuration.
    pub fn new() -> Self {
        Self {
            basis: Box::new(AshnBasis::with_cutoff(0.0, 1.1)),
            source: None,
            noise: QvNoise::with_e_cz(0.007),
            grid: None,
            cache: CacheConfig::Local(SynthCache::default()),
            opt: OptLevel::None,
            retry: None,
        }
    }

    /// Acceptance tolerance for resynthesized blocks under
    /// [`OptLevel::Default`]: a replacement is committed only when its
    /// realized unitary is within this Frobenius distance of the block it
    /// replaces — the same fidelity scale the numerical bases (AshN pulse
    /// compilation, the SQiSW interleaver search) synthesize to, so
    /// optimization never degrades fidelity below what compilation already
    /// delivers.
    pub const OPT_ACCEPT_TOL: f64 = 1e-5;

    /// Sets the optimization level run between routing and scheduling
    /// (default: [`OptLevel::None`] — optimization is opt-in so the
    /// historical pipeline output is preserved bit for bit).
    #[must_use]
    pub fn opt_level(mut self, level: OptLevel) -> Self {
        self.opt = level;
        self
    }

    /// Sets the native basis (any [`Basis`] implementation — the built-in
    /// CNOT/CZ/SQiSW/AshN sets from `ashn-synth`, or a user-defined one).
    ///
    /// At `compile` time the basis is wrapped in the synthesis memo-cache
    /// ([`ashn_synth::cache::CachedBasis`]): repeated Weyl classes across
    /// `compile` calls skip re-instantiation, observable via
    /// [`Compiler::synth_stats`]. The store is a compiler-private
    /// [`SynthCache`] unless [`Compiler::with_shared_cache`] installed a
    /// process-wide one (which is kept); [`Compiler::basis_uncached`]
    /// disables memoization entirely.
    #[must_use]
    pub fn basis(mut self, basis: impl Basis + 'static) -> Self {
        self.basis = Box::new(basis);
        if !matches!(self.cache, CacheConfig::Shared(_)) {
            self.cache = CacheConfig::Local(SynthCache::default());
        }
        self
    }

    /// Sets the native basis without wrapping it in the synthesis
    /// memo-cache: for benchmarking cold synthesis, or when the caller
    /// manages caching themselves (e.g. a shared
    /// [`ashn_synth::cache::CachedBasis`]). [`Compiler::synth_stats`]
    /// returns `None` in this configuration.
    #[must_use]
    pub fn basis_uncached(mut self, basis: impl Basis + 'static) -> Self {
        self.basis = Box::new(basis);
        self.cache = CacheConfig::Off;
        self
    }

    /// Plugs this compiler into a process-wide [`ShardedCache`]
    /// (`ashn_service`): synthesis results are shared with every other
    /// compiler and every `CompileService` holding a handle to the same
    /// cache, across threads, and survive process restarts when the service
    /// persists it. Replaces the compiler-private cache.
    #[must_use]
    pub fn with_shared_cache(mut self, cache: &ShardedCache) -> Self {
        self.cache = CacheConfig::Shared(cache.clone());
        self
    }

    /// Current synthesis-cache counters (exact hits / class hits / misses /
    /// occupancy), or `None` when the basis was installed uncached. With a
    /// shared cache these aggregate over every compiler and service feeding
    /// it, not just this one.
    pub fn synth_stats(&self) -> Option<SynthStats> {
        match &self.cache {
            CacheConfig::Local(c) => Some(c.stats()),
            CacheConfig::Shared(s) => Some(s.stats()),
            CacheConfig::Off => None,
        }
    }

    /// Point-in-time snapshot of the telemetry registry compilations on
    /// this thread record into ([`ashn_telemetry::current`]: the innermost
    /// installed registry, else the process-wide global one): cache lookup
    /// tiers, synthesis/EA timings, optimizer pass timings, routing
    /// counters, simulation batch accounting.
    pub fn telemetry(&self) -> ashn_telemetry::TelemetrySnapshot {
        ashn_telemetry::current().snapshot()
    }

    /// [`Compiler::telemetry`] rendered as the human-readable text report
    /// (use `render_json`/`render_prometheus` on the snapshot for the
    /// machine-readable forms).
    pub fn telemetry_report(&self) -> String {
        self.telemetry().render_text()
    }

    /// Sets the basis from the paper's [`GateSet`] enum (convenience
    /// wrapper over [`Compiler::basis`]).
    #[must_use]
    pub fn gate_set(self, gate_set: GateSet) -> Self {
        self.basis(gate_set.basis())
    }

    /// Declares the instruction set the input circuits were written for:
    /// [`Compiler::retarget_circuit`] then only rewrites gates native to
    /// this source set (by matrix, at `1e-12`), leaving anything else to
    /// the numeric resynthesis tier.
    #[must_use]
    pub fn source_basis(mut self, basis: impl Basis + 'static) -> Self {
        self.source = Some(Box::new(basis));
        self
    }

    /// Retargets an existing circuit onto this compiler's basis: the
    /// closed-form [`Retarget`] rules rewrite recognized foreign gates
    /// (CX, CZ, ECR, SWAP, iSWAP, SQiSW and wire reversals) into exact
    /// native fragments first, then [`Resynthesize`] sweeps the blocks
    /// the rules did not cover through the (cached, rule-armed) basis at
    /// [`Compiler::OPT_ACCEPT_TOL`]. Rule rewrites are exact to machine
    /// precision; only uncovered blocks pay KAK + numeric synthesis.
    ///
    /// # Errors
    ///
    /// [`AshnError::Opt`] when a pass fails structurally (e.g. the input
    /// contains ≥3-qubit instructions).
    pub fn retarget_circuit(&self, circuit: &Circuit) -> Result<(Circuit, OptStats), AshnError> {
        match &self.cache {
            CacheConfig::Local(c) => self.retarget_with(
                CachedBasis::with_cache(&self.basis, c.clone()).with_rules(standard_rules()),
                circuit,
            ),
            CacheConfig::Shared(s) => self.retarget_with(
                CachedBasis::with_store(&self.basis, s.clone()).with_rules(standard_rules()),
                circuit,
            ),
            CacheConfig::Off => self.retarget_with(&self.basis, circuit),
        }
    }

    fn retarget_with<B: Basis>(
        &self,
        basis: B,
        circuit: &Circuit,
    ) -> Result<(Circuit, OptStats), AshnError> {
        let mut retarget = Retarget::new(self.basis.as_ref());
        if let Some(source) = &self.source {
            retarget = retarget.source(source.as_ref());
        }
        let pipeline = PassManager::new()
            .with_pass(retarget)
            .with_pass(Resynthesize::new(basis, Self::OPT_ACCEPT_TOL));
        let (out, stats) = pipeline.run(circuit)?;
        Ok((out, stats))
    }

    /// Arms the synthesis retry/degradation chain
    /// ([`ashn_synth::resilience`]) on every `compile` call: each gate
    /// synthesis runs under `policy` — retried with escalating effort and
    /// deterministically derived jitter seeds, bounded by the policy's
    /// deadline, and (when the policy allows) degraded to an exact
    /// CNOT-basis decomposition as the last tier instead of failing the
    /// compilation.
    ///
    /// The resilient layer wraps *outside* the synthesis memo-cache, so
    /// degraded fallback circuits are never stored under the primary
    /// basis's cache key.
    #[must_use]
    pub fn resilience(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Sets the noise model used for scheduling error rates and scoring.
    #[must_use]
    pub fn noise(mut self, noise: QvNoise) -> Self {
        self.noise = noise;
        self
    }

    /// Sets an explicit routing grid (default: the smallest near-square
    /// grid holding the model's qubits).
    #[must_use]
    pub fn grid(mut self, grid: Grid) -> Self {
        self.grid = Some(grid);
        self
    }

    /// Compiles a model circuit: per-layer gates are synthesized over the
    /// basis, routed with SWAPs on the grid, and assembled into one
    /// physical-site [`Circuit`] carrying durations.
    ///
    /// # Errors
    ///
    /// [`AshnError::Config`] when the grid cannot hold the model;
    /// [`AshnError::Synth`]/[`AshnError::Ir`] from synthesis and assembly.
    pub fn compile(&self, model: &ModelCircuit) -> Result<Compiled, AshnError> {
        // Wrap the plain basis in the configured memo store for this call:
        // the compiler owns an uncached basis so the same instance can feed
        // a private cache, a process-wide shared cache, or none.
        match &self.cache {
            CacheConfig::Local(c) => self.dispatch(
                CachedBasis::with_cache(&self.basis, c.clone()).with_rules(standard_rules()),
                model,
            ),
            CacheConfig::Shared(s) => self.dispatch(
                CachedBasis::with_store(&self.basis, s.clone()).with_rules(standard_rules()),
                model,
            ),
            CacheConfig::Off => self.dispatch(&self.basis, model),
        }
    }

    /// Applies the optional resilient layer outside the memo store (so
    /// degraded circuits are never cached under the primary basis key) and
    /// runs the pipeline.
    fn dispatch<B: Basis>(&self, basis: B, model: &ModelCircuit) -> Result<Compiled, AshnError> {
        match self.retry {
            Some(policy) => self.compile_with(&ResilientBasis::new(basis, policy), model),
            None => self.compile_with(&basis, model),
        }
    }

    fn compile_with<B: Basis>(
        &self,
        basis: &B,
        model: &ModelCircuit,
    ) -> Result<Compiled, AshnError> {
        let grid = self.grid.unwrap_or_else(|| Grid::for_qubits(model.d));
        if grid.len() < model.d {
            return Err(AshnError::Config {
                detail: format!(
                    "grid has {} sites but the model needs {}",
                    grid.len(),
                    model.d
                ),
            });
        }
        let mut compiled = compile_model_on(model, basis, Some(grid)).map_err(|e| match e {
            ashn_ir::SynthError::Ir(ir) => AshnError::Ir(ir),
            other => AshnError::Synth(other),
        })?;
        // Optimize between routing and scheduling: rewrites act on the
        // physical-site circuit (wire identities preserved, so the router's
        // final placement stays valid) before noise rates are resolved.
        let opt_stats = match self.opt {
            OptLevel::None => None,
            OptLevel::Light => Some(self.optimize(&mut compiled.circuit, structural_pipeline())?),
            OptLevel::Default => Some(self.optimize(
                &mut compiled.circuit,
                standard_pipeline(basis, Self::OPT_ACCEPT_TOL),
            )?),
        };
        Ok(Compiled {
            model: compiled,
            noise: self.noise,
            basis_name: self.basis.name(),
            opt_stats,
        })
    }

    fn optimize(
        &self,
        circuit: &mut Circuit,
        pipeline: PassManager,
    ) -> Result<OptStats, AshnError> {
        let (optimized, stats) = pipeline.run(circuit)?;
        *circuit = optimized;
        Ok(stats)
    }
}

/// A compiled model circuit, ready to schedule and simulate.
#[derive(Clone, Debug)]
pub struct Compiled {
    model: CompiledModel,
    noise: QvNoise,
    basis_name: String,
    opt_stats: Option<OptStats>,
}

impl Compiled {
    /// The physical-site circuit (durations attached, error rates not yet
    /// stamped — see [`Compiled::scheduled`]).
    pub fn circuit(&self) -> &Circuit {
        &self.model.circuit
    }

    /// `positions[l]` = physical site holding logical qubit `l` at the end.
    pub fn positions(&self) -> &[usize] {
        &self.model.positions
    }

    /// Name of the basis this was compiled for.
    pub fn basis_name(&self) -> &str {
        &self.basis_name
    }

    /// Optimizer accounting for this compilation — gate counts, two-qubit
    /// counts, and depth before→after, with a per-pass breakdown — or
    /// `None` when the compiler ran at [`OptLevel::None`].
    pub fn opt_stats(&self) -> Option<&OptStats> {
        self.opt_stats.as_ref()
    }

    /// The underlying `ashn-qv` compiled model.
    pub fn as_model(&self) -> &CompiledModel {
        &self.model
    }

    /// The circuit with per-gate depolarizing rates scheduled from the
    /// noise model (single-qubit fixed, two-qubit ∝ duration).
    pub fn scheduled(&self) -> Circuit {
        stamp_noise(&self.model.circuit, &self.noise)
    }

    /// Noiseless statevector simulation of the compiled circuit.
    pub fn simulate_pure(&self) -> StateVector {
        self.model.circuit.run_pure()
    }

    /// Fallible [`Compiled::simulate_pure`], surfacing register-size
    /// failures as [`AshnError::Sim`] instead of panicking. Runs
    /// plan-backed on a [`SimEngine`] — fused and, on large registers,
    /// amplitude-parallel — so it is also the fast path for big circuits.
    ///
    /// # Errors
    ///
    /// [`AshnError::Sim`] when the compiled register exceeds
    /// [`ashn_sim::MAX_QUBITS`] (memory-bound).
    pub fn try_simulate_pure(&self) -> Result<StateVector, AshnError> {
        let mut engine = SimEngine::try_new(self.model.circuit.n_qubits())?;
        engine.run_pure(&self.model.circuit);
        Ok(engine.take_state())
    }

    /// Exact density-matrix simulation under the scheduled noise, resolved
    /// per instruction without materializing an annotated circuit copy.
    pub fn simulate_noisy(&self) -> DensityMatrix {
        let rates = ashn_qv::resolve_rates(&self.model.circuit, &self.noise);
        self.model.circuit.run_noisy_scheduled(&rates)
    }

    /// Compiles the circuit + scheduled noise into an
    /// [`ashn_sim::ExecPlan`]: kernels pre-classified, matrices inlined,
    /// depolarizing rates already resolved — the input the Monte-Carlo
    /// trajectory ensembles execute. Gate matrices are not cloned.
    ///
    /// # Errors
    ///
    /// [`PlanError`] when the circuit cannot be expressed as a plan
    /// (compiled circuits only contain 1q/2q gates, so this is reachable
    /// only through hand-built models).
    pub fn exec_plan(&self) -> Result<ExecPlan, PlanError> {
        let noise = self.noise;
        ExecPlan::build_with(&self.model.circuit, |g| {
            noise.rate(g.qubits.len(), g.duration)
        })
    }

    /// Physical-site outcome probabilities estimated from `n_traj`
    /// Monte-Carlo trajectories under the scheduled noise, fanned across
    /// `workers` threads (`0` = machine default) — plan-backed, and
    /// bit-identical for any worker count at a fixed `master_seed`.
    /// Marginalize with [`Compiled::logical_probs`].
    pub fn simulate_trajectories(
        &self,
        n_traj: usize,
        master_seed: u64,
        workers: usize,
    ) -> Vec<f64> {
        match self.exec_plan() {
            Ok(plan) => trajectory_probabilities_batched_plan(&plan, n_traj, master_seed, workers),
            Err(_) => ashn_sim::trajectory::trajectory_probabilities_batched(
                &self.scheduled(),
                &NoiseModel::NOISELESS,
                n_traj,
                master_seed,
                workers,
            ),
        }
    }

    /// Heavy-output score of the compiled circuit under the configured
    /// noise (the full schedule → simulate → marginalize chain).
    pub fn score(&self) -> CircuitScore {
        score_compiled(&self.model, &self.noise)
    }

    /// Heavy-output scores at several noise levels, paying the compile and
    /// ideal-run cost once (see [`ashn_qv::score_compiled_many`]).
    pub fn score_many(&self, noises: &[QvNoise]) -> Vec<CircuitScore> {
        score_compiled_many(&self.model, noises)
    }

    /// Marginalizes a physical-site distribution onto the logical register.
    pub fn logical_probs(&self, physical: &[f64]) -> Vec<f64> {
        self.model.logical_probs(physical)
    }
}
