//! The common import set for `ashn` users:
//!
//! ```
//! use ashn::prelude::*;
//! ```

pub use crate::compiler::{Compiled, Compiler, OptLevel, SynthStats};
pub use crate::error::AshnError;
pub use ashn_core::scheme::{AshnPulse, AshnScheme, CompileError};
pub use ashn_gates::kak::weyl_coordinates;
pub use ashn_gates::weyl::WeylPoint;
pub use ashn_ir::{Basis, Circuit, Instruction, IrError, SynthError};
pub use ashn_math::{c, CMat, Complex, Mat2, Mat4};
pub use ashn_opt::{OptStats, PassManager, Retarget};
pub use ashn_qv::{sample_model_circuit, GateSet, QvNoise};
pub use ashn_route::Grid;
pub use ashn_service::{CompileRequest, CompileService, ShardedCache};
pub use ashn_sim::{ExecPlan, NoiseModel, SimEngine, Simulate};
pub use ashn_synth::basis::{AshnBasis, CnotBasis, CzBasis, EcrBasis, SqiswBasis};
pub use ashn_synth::retarget::{standard_rules, GateSetRegistry, RuleSet};
