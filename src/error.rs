//! The unified error hierarchy of the `ashn` facade.
//!
//! Every fallible stage of the pipeline — pulse compilation (`ashn-core`),
//! basis synthesis (`ashn-synth`), IR construction (`ashn-ir`), routing and
//! compilation (`ashn-route`/`ashn-qv`) — surfaces here as one [`AshnError`],
//! so callers write `?` instead of matching per-crate error types (and no
//! library path `panic!`s on recoverable failures).

use ashn_core::scheme::CompileError;
use ashn_ir::{IrError, SynthError};
use ashn_opt::OptError;
use ashn_sim::SimError;
use std::error::Error;
use std::fmt;

/// Any failure of the `ashn` compilation pipeline.
#[derive(Clone, Debug)]
pub enum AshnError {
    /// Basis synthesis failed (non-convergence, invalid target, …).
    Synth(SynthError),
    /// Structural IR error (dimension mismatch, out-of-range qubit, …).
    Ir(IrError),
    /// The AshN pulse compiler rejected a target class.
    Pulse(CompileError),
    /// Simulation was asked for an unrepresentable state (register over
    /// the memory-bound cap, bad amplitude buffer, non-unit norm).
    Sim(SimError),
    /// The [`crate::Compiler`] was misconfigured.
    Config {
        /// What is wrong with the configuration.
        detail: String,
    },
}

impl fmt::Display for AshnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AshnError::Synth(e) => write!(f, "synthesis error: {e}"),
            AshnError::Ir(e) => write!(f, "ir error: {e}"),
            AshnError::Pulse(e) => write!(f, "pulse compilation error: {e}"),
            AshnError::Sim(e) => write!(f, "simulation error: {e}"),
            AshnError::Config { detail } => write!(f, "compiler configuration error: {detail}"),
        }
    }
}

impl Error for AshnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AshnError::Synth(e) => Some(e),
            AshnError::Ir(e) => Some(e),
            AshnError::Pulse(e) => Some(e),
            AshnError::Sim(e) => Some(e),
            AshnError::Config { .. } => None,
        }
    }
}

impl From<SynthError> for AshnError {
    fn from(e: SynthError) -> Self {
        AshnError::Synth(e)
    }
}

impl From<IrError> for AshnError {
    fn from(e: IrError) -> Self {
        AshnError::Ir(e)
    }
}

impl From<CompileError> for AshnError {
    fn from(e: CompileError) -> Self {
        AshnError::Pulse(e)
    }
}

impl From<SimError> for AshnError {
    fn from(e: SimError) -> Self {
        AshnError::Sim(e)
    }
}

/// Optimizer failures surface through the same hierarchy: a structural DAG
/// error is an IR error, a resynthesis failure a synthesis error.
impl From<OptError> for AshnError {
    fn from(e: OptError) -> Self {
        match e {
            OptError::Ir(ir) => AshnError::Ir(ir),
            OptError::Synth(s) => AshnError::Synth(s),
            stale @ OptError::InvalidAnchor { .. } => AshnError::Config {
                detail: stale.to_string(),
            },
        }
    }
}
