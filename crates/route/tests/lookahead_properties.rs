//! Property tests for the lookahead router: on random grids (4–9 qubits,
//! square and skewed), routing arbitrary two-qubit layers and expanding
//! the result onto the physical register must preserve circuit semantics
//! exactly — the routed circuit acts on the logical state as the
//! unrouted circuit does, up to the wire permutation the router reports.

use ashn_ir::{Circuit, Instruction, SynthError};
use ashn_math::randmat::haar_unitary;
use ashn_math::{CMat, Complex};
use ashn_route::{expand_route_ops, Grid, LookaheadRouter, RouteOp};
use ashn_sim::Simulate;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fragment(u: &CMat, label: &str) -> Circuit {
    let mut c = Circuit::new(2);
    c.push(Instruction::new(vec![0, 1], u.clone(), label));
    c
}

fn swap_matrix() -> CMat {
    CMat::from_rows_f64(&[
        &[1.0, 0.0, 0.0, 0.0],
        &[0.0, 0.0, 1.0, 0.0],
        &[0.0, 1.0, 0.0, 0.0],
        &[0.0, 0.0, 0.0, 1.0],
    ])
}

/// Random disjoint pairs over `n` wires (at least one pair).
fn random_layer(n: usize, rng: &mut StdRng) -> Vec<(usize, usize)> {
    let mut wires: Vec<usize> = (0..n).collect();
    // Fisher–Yates shuffle.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i + 1);
        wires.swap(i, j);
    }
    let pairs = 1 + rng.gen_range(0..n / 2);
    wires
        .chunks_exact(2)
        .take(pairs)
        .map(|c| (c[0], c[1]))
        .collect()
}

/// Routes `layers` of random two-qubit gates on `grid`, expands them onto
/// the physical register, and returns the physical circuit plus the final
/// placement.
fn route_random_circuit(
    n: usize,
    grid: Grid,
    layers: usize,
    rng: &mut StdRng,
) -> (Circuit, Circuit, Vec<usize>) {
    let mut router = LookaheadRouter::new(grid, n);
    let mut logical = Circuit::new(n);
    let mut ops: Vec<RouteOp> = Vec::new();
    let mut gates: Vec<CMat> = Vec::new();
    for _ in 0..layers {
        let layer = random_layer(n, rng);
        let mut routed = router.route_layer(&layer);
        // route_layer indexes gates within the layer; rebase onto the
        // whole-circuit gate list.
        for op in &mut routed {
            if let RouteOp::Gate { index, .. } = op {
                let (a, b) = layer[*index];
                *index = gates.len();
                let u = haar_unitary(4, rng);
                logical.push(Instruction::new(vec![a, b], u.clone(), "2q"));
                gates.push(u);
            }
        }
        ops.extend(routed);
    }
    let physical = expand_route_ops(grid.len(), &ops, &fragment(&swap_matrix(), "SWAP"), |i| {
        Ok::<_, SynthError>(fragment(&gates[i], "2q"))
    })
    .expect("expansion");
    let positions = (0..n).map(|l| router.position(l)).collect();
    (logical, physical, positions)
}

/// Checks that the physical state equals the logical state transported
/// through the router's final wire permutation, with idle sites in `|0⟩`.
fn assert_equivalent(logical: &Circuit, physical: &Circuit, positions: &[usize]) {
    let n = logical.n_qubits();
    let sites = physical.n_qubits();
    let l_amps_state = logical.run_pure();
    let p_amps_state = physical.run_pure();
    let l_amps = l_amps_state.amplitudes();
    let p_amps = p_amps_state.amplitudes();
    let mut occupied = 0usize;
    for &site in positions {
        occupied |= 1 << (sites - 1 - site);
    }
    for (idx, amp) in p_amps.iter().enumerate() {
        let expect = if idx & !occupied != 0 {
            Complex::ZERO
        } else {
            let mut logical_idx = 0usize;
            for (l, &site) in positions.iter().enumerate() {
                let bit = (idx >> (sites - 1 - site)) & 1;
                logical_idx |= bit << (n - 1 - l);
            }
            l_amps[logical_idx]
        };
        let diff = ((amp.re - expect.re).powi(2) + (amp.im - expect.im).powi(2)).sqrt();
        assert!(
            diff < 1e-9,
            "physical index {idx}: amplitude off by {diff:.3e}"
        );
    }
}

/// Satellite: the router's first telemetry counters. A 1×6 strip forces
/// SWAP chains (routed-SWAP count), while already-adjacent pairs are
/// window hits; both must land in the installed registry alongside the
/// per-layer routing-time histogram. With the `telemetry` feature off the
/// snapshot stays empty — the router itself is unaffected either way.
#[test]
fn routing_records_swap_and_window_counters() {
    let reg = ashn_telemetry::Registry::with_journal_capacity(0);
    let _guard = ashn_telemetry::install(&reg);

    let n = 6;
    let mut router = LookaheadRouter::new(Grid::new(1, n), n);
    // Layer 1: an adjacent pair (a lookahead-window hit, zero SWAPs
    // needed) plus the two strip endpoints (a forced SWAP chain).
    router.route_layer(&[(0, 1), (2, 5)]);
    // Layer 2: endpoints again from the new placement — more SWAPs.
    router.route_layer(&[(0, 5)]);

    let snap = reg.snapshot();
    if cfg!(feature = "telemetry") {
        assert_eq!(snap.counter("route.layers"), Some(2));
        assert_eq!(snap.counter("route.pairs"), Some(3));
        assert!(
            snap.counter("route.swaps").unwrap_or(0) > 0,
            "strip endpoints must cost routed SWAPs"
        );
        assert!(
            snap.counter("route.window_hits").unwrap_or(0) >= 1,
            "the adjacent pair must count as a lookahead window hit"
        );
        let h = snap.histogram("route.layer").expect("per-layer timer");
        assert_eq!(h.count, 2, "one timing sample per routed layer");
    } else {
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The headline property: any random circuit on any 4–9 qubit grid
    /// routes to a physically equivalent circuit.
    #[test]
    fn routed_circuits_preserve_semantics(seed in 0u64..1000, n in 4usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let grid = Grid::for_qubits(n);
        let (logical, physical, positions) = route_random_circuit(n, grid, 4, &mut rng);
        assert_equivalent(&logical, &physical, &positions);
    }

    /// Same property on deliberately skewed grids (1×k strips and 2×k
    /// rectangles force long SWAP chains).
    #[test]
    fn routed_circuits_preserve_semantics_on_skewed_grids(seed in 0u64..1000, n in 4usize..8) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        for grid in [Grid::new(1, n), Grid::new(2, n.div_ceil(2))] {
            let (logical, physical, positions) = route_random_circuit(n, grid, 3, &mut rng);
            assert_equivalent(&logical, &physical, &positions);
        }
    }

    /// The reported placement is always a permutation of distinct sites.
    #[test]
    fn final_positions_form_a_valid_placement(seed in 0u64..1000, n in 4usize..10) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xb0);
        let grid = Grid::for_qubits(n);
        let (_, _, positions) = route_random_circuit(n, grid, 5, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for &p in &positions {
            prop_assert!(p < grid.len());
            prop_assert!(seen.insert(p), "two logical qubits share site {p}");
        }
    }
}
