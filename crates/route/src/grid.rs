//! 2-D grid qubit topologies (the connectivity assumed by the paper's
//! quantum-volume experiments, §6.3).

/// A rectangular grid of physical qubits; qubit `q` sits at
/// `(q / cols, q % cols)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grid {
    rows: usize,
    cols: usize,
}

impl Grid {
    /// Creates a grid.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "empty grid");
        Self { rows, cols }
    }

    /// The most-square grid with at least `n` sites.
    pub fn for_qubits(n: usize) -> Self {
        assert!(n > 0);
        let rows = (n as f64).sqrt().floor() as usize;
        let rows = rows.max(1);
        let cols = n.div_ceil(rows);
        Self { rows, cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of sites.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` for the 1×1 grid only.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Row/column coordinates of a site.
    pub fn coords(&self, q: usize) -> (usize, usize) {
        assert!(q < self.len());
        (q / self.cols, q % self.cols)
    }

    /// Manhattan distance between two sites.
    pub fn distance(&self, a: usize, b: usize) -> usize {
        let (ar, ac) = self.coords(a);
        let (br, bc) = self.coords(b);
        ar.abs_diff(br) + ac.abs_diff(bc)
    }

    /// `true` when two sites are adjacent (distance 1).
    pub fn adjacent(&self, a: usize, b: usize) -> bool {
        self.distance(a, b) == 1
    }

    /// Neighbours of a site.
    pub fn neighbours(&self, q: usize) -> Vec<usize> {
        let (r, c) = self.coords(q);
        let mut out = Vec::with_capacity(4);
        if r > 0 {
            out.push(q - self.cols);
        }
        if r + 1 < self.rows {
            out.push(q + self.cols);
        }
        if c > 0 {
            out.push(q - 1);
        }
        if c + 1 < self.cols {
            out.push(q + 1);
        }
        out
    }

    /// A shortest path from `a` to `b` (inclusive of both endpoints),
    /// moving greedily row-first then column.
    pub fn shortest_path(&self, a: usize, b: usize) -> Vec<usize> {
        let mut path = vec![a];
        let (br, bc) = self.coords(b);
        let mut cur = a;
        while cur != b {
            let (r, c) = self.coords(cur);
            cur = if r < br {
                cur + self.cols
            } else if r > br {
                cur - self.cols
            } else if c < bc {
                cur + 1
            } else {
                cur - 1
            };
            path.push(cur);
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_qubits_is_near_square() {
        for n in 1..=20 {
            let g = Grid::for_qubits(n);
            assert!(g.len() >= n);
            assert!(g.cols() >= g.rows());
            assert!(g.cols() - g.rows() <= 2, "n={n}: {}x{}", g.rows(), g.cols());
        }
    }

    #[test]
    fn adjacency_is_symmetric_grid_structure() {
        let g = Grid::new(3, 4);
        for q in 0..g.len() {
            for &n in &g.neighbours(q) {
                assert!(g.adjacent(q, n));
                assert!(g.neighbours(n).contains(&q));
            }
        }
        // Corner has 2 neighbours, center has 4.
        assert_eq!(g.neighbours(0).len(), 2);
        assert_eq!(g.neighbours(5).len(), 4);
    }

    #[test]
    fn shortest_path_has_right_length_and_steps() {
        let g = Grid::new(3, 3);
        let p = g.shortest_path(0, 8);
        assert_eq!(p.len(), g.distance(0, 8) + 1);
        assert_eq!(p[0], 0);
        assert_eq!(*p.last().unwrap(), 8);
        for w in p.windows(2) {
            assert!(g.adjacent(w[0], w[1]));
        }
    }

    #[test]
    fn distance_is_a_metric() {
        let g = Grid::new(3, 4);
        for a in 0..g.len() {
            assert_eq!(g.distance(a, a), 0);
            for b in 0..g.len() {
                assert_eq!(g.distance(a, b), g.distance(b, a));
                for c in 0..g.len() {
                    assert!(g.distance(a, c) <= g.distance(a, b) + g.distance(b, c));
                }
            }
        }
    }
}
