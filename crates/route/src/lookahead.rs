//! A smarter routing strategy: walk *both* endpoints toward each other and
//! order the layer's pairs nearest-first, reducing SWAP count relative to
//! the one-sided greedy [`crate::router::Router`].

use crate::grid::Grid;
use crate::router::RouteOp;

/// Both-endpoint router with nearest-pair-first scheduling.
#[derive(Clone, Debug)]
pub struct LookaheadRouter {
    grid: Grid,
    position: Vec<usize>,
}

impl LookaheadRouter {
    /// Identity placement of `n` logical qubits.
    ///
    /// # Panics
    ///
    /// Panics when the grid is too small.
    pub fn new(grid: Grid, n: usize) -> Self {
        assert!(grid.len() >= n, "grid too small for {n} qubits");
        Self {
            grid,
            position: (0..n).collect(),
        }
    }

    /// Current physical site of a logical qubit.
    pub fn position(&self, logical: usize) -> usize {
        self.position[logical]
    }

    fn swap_sites(&mut self, a: usize, b: usize) {
        for p in self.position.iter_mut() {
            if *p == a {
                *p = b;
            } else if *p == b {
                *p = a;
            }
        }
    }

    /// Routes one layer of disjoint pairs; see [`crate::router::Router::route_layer`].
    ///
    /// # Panics
    ///
    /// Panics when pairs overlap.
    pub fn route_layer(&mut self, pairs: &[(usize, usize)]) -> Vec<RouteOp> {
        let telemetry = ashn_telemetry::current();
        let _span = telemetry.span("route.layer");
        let mut seen = vec![false; self.position.len()];
        for &(a, b) in pairs {
            assert!(a != b && !seen[a] && !seen[b], "overlapping pairs");
            seen[a] = true;
            seen[b] = true;
        }
        // Nearest pairs first: they block fewer sites for the others.
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        order.sort_by_key(|&i| {
            let (a, b) = pairs[i];
            self.grid.distance(self.position[a], self.position[b])
        });
        let mut ops = Vec::new();
        let mut swaps = 0u64;
        let mut window_hits = 0u64;
        for index in order {
            let (la, lb) = pairs[index];
            let mut stepped = false;
            loop {
                let (pa, pb) = (self.position[la], self.position[lb]);
                if self.grid.adjacent(pa, pb) {
                    // A pair adjacent the moment it is scheduled — either
                    // placed that way or dragged together by earlier pairs'
                    // SWAPs — is a lookahead window hit.
                    if !stepped {
                        window_hits += 1;
                    }
                    ops.push(RouteOp::Gate {
                        index,
                        a: pa,
                        b: pb,
                    });
                    break;
                }
                stepped = true;
                // Step each endpoint one site toward the other, alternating.
                let step_a = self.grid.shortest_path(pa, pb)[1];
                ops.push(RouteOp::Swap(pa, step_a));
                self.swap_sites(pa, step_a);
                swaps += 1;
                let (pa, pb) = (self.position[la], self.position[lb]);
                if self.grid.adjacent(pa, pb) {
                    continue;
                }
                let step_b = self.grid.shortest_path(pb, pa)[1];
                ops.push(RouteOp::Swap(pb, step_b));
                self.swap_sites(pb, step_b);
                swaps += 1;
            }
        }
        // Bulk adds once per layer, not per SWAP.
        telemetry.add("route.layers", 1);
        telemetry.add("route.pairs", pairs.len() as u64);
        telemetry.add("route.swaps", swaps);
        telemetry.add("route.window_hits", window_hits);
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{random_pairing, Router};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn swap_count(ops: &[RouteOp]) -> usize {
        ops.iter()
            .filter(|o| matches!(o, RouteOp::Swap(_, _)))
            .count()
    }

    #[test]
    fn executes_every_pair_adjacent() {
        let mut rng = StdRng::seed_from_u64(21);
        let grid = Grid::for_qubits(9);
        let mut router = LookaheadRouter::new(grid, 9);
        for _ in 0..15 {
            let pairs = random_pairing(9, &mut rng);
            let ops = router.route_layer(&pairs);
            let gates = ops
                .iter()
                .filter(|o| matches!(o, RouteOp::Gate { .. }))
                .count();
            assert_eq!(gates, pairs.len());
            for op in &ops {
                match op {
                    RouteOp::Swap(a, b) | RouteOp::Gate { a, b, .. } => {
                        assert!(grid.adjacent(*a, *b));
                    }
                }
            }
        }
    }

    #[test]
    fn lookahead_is_no_worse_on_average() {
        let grid = Grid::for_qubits(12);
        let mut total_greedy = 0usize;
        let mut total_look = 0usize;
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let pairs = random_pairing(12, &mut rng);
            let mut greedy = Router::new(grid, 12);
            let mut look = LookaheadRouter::new(grid, 12);
            total_greedy += swap_count(&greedy.route_layer(&pairs));
            total_look += swap_count(&look.route_layer(&pairs));
        }
        assert!(
            total_look <= total_greedy,
            "lookahead {total_look} > greedy {total_greedy}"
        );
    }

    #[test]
    fn already_adjacent_layer_needs_no_swaps() {
        let grid = Grid::new(2, 2);
        let mut router = LookaheadRouter::new(grid, 4);
        let ops = router.route_layer(&[(0, 1), (2, 3)]);
        assert_eq!(swap_count(&ops), 0);
    }
}
