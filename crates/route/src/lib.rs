//! # ashn-route
//!
//! Qubit routing on 2-D grid topologies: the substrate for the paper's
//! quantum-volume experiment (§6.3), where each layer of a square random
//! circuit pairs qubits uniformly at random and the pairs must be brought
//! together with SWAP gates.
//!
//! ```
//! use ashn_route::{Grid, Router, random_pairing};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let grid = Grid::for_qubits(6);
//! let mut router = Router::new(grid, 6);
//! let ops = router.route_layer(&random_pairing(6, &mut rng));
//! assert!(!ops.is_empty());
//! ```

pub mod assemble;
pub mod grid;
pub mod lookahead;
pub mod router;

pub use assemble::expand_route_ops;
pub use grid::Grid;
pub use lookahead::LookaheadRouter;
pub use router::{random_pairing, RouteOp, Router};
