//! Expansion of routed operations into a physical-site [`ashn_ir::Circuit`].
//!
//! Routing emits abstract [`RouteOp`]s; this module lowers them onto the
//! canonical IR by embedding per-operation two-qubit fragments (a compiled
//! SWAP, the layer gates) at their physical sites — the step `ashn-qv` and
//! the `ashn::Compiler` pipeline previously performed with hand-copied
//! gate lists.

use crate::router::RouteOp;
use ashn_ir::{Circuit, SynthError};

/// Expands routed operations into one `n_sites`-qubit circuit.
///
/// `swap` is the compiled two-qubit SWAP fragment (compiled once — the
/// routed SWAP is the same circuit up to relabeling, and e.g. the SQiSW
/// decomposition is a numerical search). `gate(index)` supplies the
/// compiled two-qubit fragment of the layer gate `index`; both fragments
/// are circuits on qubits `{0, 1}`, as produced by
/// [`ashn_ir::Basis::synthesize`].
///
/// # Errors
///
/// Propagates [`SynthError`] from `gate`, and structural [`SynthError::Ir`]
/// errors when a fragment is not a two-qubit circuit or a site is outside
/// the register.
pub fn expand_route_ops(
    n_sites: usize,
    ops: &[RouteOp],
    swap: &Circuit,
    mut gate: impl FnMut(usize) -> Result<Circuit, SynthError>,
) -> Result<Circuit, SynthError> {
    let mut circuit = Circuit::new(n_sites);
    for op in ops {
        let embedded = match *op {
            RouteOp::Swap(a, b) => swap.embed(n_sites, &[a, b])?,
            RouteOp::Gate { index, a, b } => gate(index)?.embed(n_sites, &[a, b])?,
        };
        circuit.append(embedded)?;
    }
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_ir::Instruction;
    use ashn_math::CMat;

    fn swap_fragment() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(
            Instruction::new(
                vec![0, 1],
                CMat::from_rows_f64(&[
                    &[1.0, 0.0, 0.0, 0.0],
                    &[0.0, 0.0, 1.0, 0.0],
                    &[0.0, 1.0, 0.0, 0.0],
                    &[0.0, 0.0, 0.0, 1.0],
                ]),
                "SWAP",
            )
            .with_duration(1.0),
        );
        c
    }

    #[test]
    fn expands_swaps_and_gates_at_their_sites() {
        let ops = [
            RouteOp::Swap(0, 1),
            RouteOp::Gate {
                index: 0,
                a: 1,
                b: 2,
            },
        ];
        let x = CMat::from_rows_f64(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let gate = |_: usize| -> Result<Circuit, SynthError> {
            let mut c = Circuit::new(2);
            c.push(Instruction::new(vec![0], x.clone(), "X"));
            Ok(c)
        };
        let circuit = expand_route_ops(3, &ops, &swap_fragment(), gate).unwrap();
        assert_eq!(circuit.instructions.len(), 2);
        assert_eq!(circuit.instructions[0].qubits, vec![0, 1]);
        assert_eq!(circuit.instructions[1].qubits, vec![1]);
        assert!((circuit.total_duration() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn out_of_range_sites_error_instead_of_panicking() {
        let ops = [RouteOp::Swap(0, 9)];
        let err = expand_route_ops(2, &ops, &swap_fragment(), |_| Ok(Circuit::new(2))).unwrap_err();
        assert!(matches!(err, SynthError::Ir(_)));
    }
}
