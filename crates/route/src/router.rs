//! Greedy SWAP routing for random pairings on a grid — the qubit-routing
//! substrate of the paper's quantum-volume experiment (§6.3), where every
//! layer pairs up qubits uniformly at random and non-adjacent pairs must be
//! brought together with SWAPs.

use crate::grid::Grid;
use rand::Rng;

/// One routed operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteOp {
    /// Swap the tokens on two adjacent physical sites.
    Swap(usize, usize),
    /// Execute the layer's two-qubit gate `index` on two adjacent physical
    /// sites (in logical order: first site holds the pair's first qubit).
    Gate {
        /// Index of the pair within the layer.
        index: usize,
        /// Physical site of the first logical qubit.
        a: usize,
        /// Physical site of the second logical qubit.
        b: usize,
    },
}

/// Tracks the logical→physical qubit assignment while routing.
#[derive(Clone, Debug)]
pub struct Router {
    grid: Grid,
    /// `position[l]` = physical site of logical qubit `l`.
    position: Vec<usize>,
}

impl Router {
    /// A router with the identity placement of `n` logical qubits.
    ///
    /// # Panics
    ///
    /// Panics when the grid is too small.
    pub fn new(grid: Grid, n: usize) -> Self {
        assert!(grid.len() >= n, "grid too small for {n} qubits");
        Self {
            grid,
            position: (0..n).collect(),
        }
    }

    /// Current physical site of a logical qubit.
    pub fn position(&self, logical: usize) -> usize {
        self.position[logical]
    }

    /// The grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    fn swap_sites(&mut self, a: usize, b: usize) {
        for p in self.position.iter_mut() {
            if *p == a {
                *p = b;
            } else if *p == b {
                *p = a;
            }
        }
    }

    /// Routes one layer of disjoint logical pairs: emits SWAPs moving each
    /// pair together (walking the first qubit toward the second) followed by
    /// the gate execution, pair by pair.
    ///
    /// # Panics
    ///
    /// Panics when pairs share qubits.
    pub fn route_layer(&mut self, pairs: &[(usize, usize)]) -> Vec<RouteOp> {
        let mut seen = vec![false; self.position.len()];
        for &(a, b) in pairs {
            assert!(a != b && !seen[a] && !seen[b], "overlapping pairs");
            seen[a] = true;
            seen[b] = true;
        }
        let mut ops = Vec::new();
        for (index, &(la, lb)) in pairs.iter().enumerate() {
            loop {
                let (pa, pb) = (self.position[la], self.position[lb]);
                if self.grid.adjacent(pa, pb) {
                    ops.push(RouteOp::Gate {
                        index,
                        a: pa,
                        b: pb,
                    });
                    break;
                }
                // Step the first token one site along a shortest path.
                let path = self.grid.shortest_path(pa, pb);
                let next = path[1];
                ops.push(RouteOp::Swap(pa, next));
                self.swap_sites(pa, next);
            }
        }
        ops
    }
}

/// A uniformly random perfect pairing of `{0, …, n−1}` (n even) or of all
/// but one qubit (n odd).
pub fn random_pairing(n: usize, rng: &mut impl Rng) -> Vec<(usize, usize)> {
    let mut idx: Vec<usize> = (0..n).collect();
    // Fisher–Yates shuffle.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx.chunks_exact(2).map(|c| (c[0], c[1])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_pairing_is_a_matching() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [2usize, 4, 6, 8, 9] {
            let pairs = random_pairing(n, &mut rng);
            assert_eq!(pairs.len(), n / 2);
            let mut seen = vec![false; n];
            for &(a, b) in &pairs {
                assert!(a != b && !seen[a] && !seen[b]);
                seen[a] = true;
                seen[b] = true;
            }
        }
    }

    #[test]
    fn gates_are_executed_on_adjacent_sites() {
        let mut rng = StdRng::seed_from_u64(12);
        let grid = Grid::for_qubits(8);
        let mut router = Router::new(grid, 8);
        for _ in 0..20 {
            let pairs = random_pairing(8, &mut rng);
            let ops = router.route_layer(&pairs);
            let mut gates = 0;
            for op in &ops {
                match op {
                    RouteOp::Swap(a, b) => assert!(grid.adjacent(*a, *b)),
                    RouteOp::Gate { a, b, .. } => {
                        assert!(grid.adjacent(*a, *b));
                        gates += 1;
                    }
                }
            }
            assert_eq!(gates, pairs.len(), "every pair must execute");
        }
    }

    #[test]
    fn positions_track_swaps() {
        let grid = Grid::new(1, 4); // a line: 0-1-2-3
        let mut router = Router::new(grid, 4);
        // Pair the two ends: (0,3) needs swaps.
        let ops = router.route_layer(&[(0, 3), (1, 2)]);
        // After routing, logical 0 must sit adjacent to logical 3.
        let p0 = router.position(0);
        let p3 = router.position(3);
        assert!(grid.adjacent(p0, p3));
        assert!(ops.iter().any(|o| matches!(o, RouteOp::Swap(_, _))));
    }

    #[test]
    fn adjacent_pairs_need_no_swaps() {
        let grid = Grid::new(2, 2);
        let mut router = Router::new(grid, 4);
        // (0,1) and (2,3) are horizontally adjacent in a 2×2 grid.
        let ops = router.route_layer(&[(0, 1), (2, 3)]);
        assert_eq!(ops.len(), 2);
        assert!(ops.iter().all(|o| matches!(o, RouteOp::Gate { .. })));
    }

    #[test]
    fn swap_overhead_is_bounded_by_diameter() {
        let mut rng = StdRng::seed_from_u64(13);
        let grid = Grid::for_qubits(9);
        let diameter = grid.rows() + grid.cols() - 2;
        let mut router = Router::new(grid, 9);
        for _ in 0..10 {
            let pairs = random_pairing(9, &mut rng);
            let ops = router.route_layer(&pairs);
            let swaps = ops
                .iter()
                .filter(|o| matches!(o, RouteOp::Swap(_, _)))
                .count();
            assert!(swaps <= pairs.len() * diameter, "{swaps} swaps");
        }
    }
}
