//! Exact density-matrix simulator with depolarizing channels.
//!
//! Used for the quantum-volume experiments (paper §6.3): heavy-output
//! probabilities are computed exactly from the noisy density matrix, so the
//! only statistical error left is over the random-circuit ensemble itself.

use crate::state::StateVector;
use ashn_math::{c, CMat, Complex};

/// An `n`-qubit density matrix.
#[derive(Clone, Debug)]
pub struct DensityMatrix {
    n: usize,
    dim: usize,
    mat: Vec<Complex>, // row-major dim×dim
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    pub fn zero(n: usize) -> Self {
        assert!(
            (1..=12).contains(&n),
            "density matrices supported up to 12 qubits"
        );
        let dim = 1 << n;
        let mut mat = vec![Complex::ZERO; dim * dim];
        mat[0] = Complex::ONE;
        Self { n, dim, mat }
    }

    /// Density matrix of a pure state.
    pub fn from_state(s: &StateVector) -> Self {
        let n = s.n_qubits();
        let dim = 1 << n;
        let amps = s.amplitudes();
        let mut mat = vec![Complex::ZERO; dim * dim];
        for r in 0..dim {
            for cc in 0..dim {
                mat[r * dim + cc] = amps[r] * amps[cc].conj();
            }
        }
        Self { n, dim, mat }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Trace (1 for a valid state).
    pub fn trace(&self) -> f64 {
        (0..self.dim).map(|i| self.mat[i * self.dim + i].re).sum()
    }

    /// Purity `tr(ρ²)`.
    pub fn purity(&self) -> f64 {
        let mut s = 0.0;
        for r in 0..self.dim {
            for cc in 0..self.dim {
                s += (self.mat[r * self.dim + cc] * self.mat[cc * self.dim + r]).re;
            }
        }
        s
    }

    /// Diagonal measurement probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.dim)
            .map(|i| self.mat[i * self.dim + i].re.max(0.0))
            .collect()
    }

    /// Applies `ρ → UρU†` with a `k`-qubit unitary on the listed qubits.
    ///
    /// # Panics
    ///
    /// Same conditions as [`StateVector::apply`].
    pub fn apply(&mut self, qubits: &[usize], u: &CMat) {
        let k = qubits.len();
        assert_eq!(u.rows(), 1 << k, "matrix dimension mismatch");
        let pos: Vec<usize> = qubits.iter().map(|q| self.n - 1 - q).collect();
        let targets_mask: usize = pos.iter().map(|p| 1usize << p).sum();
        let sub = 1usize << k;
        let expand = |base: usize, m: usize| -> usize {
            let mut idx = base;
            for (j, p) in pos.iter().enumerate() {
                if m >> (k - 1 - j) & 1 == 1 {
                    idx |= 1 << p;
                }
            }
            idx
        };
        // Left multiplication: rows transform by U.
        let mut gathered = vec![Complex::ZERO; sub];
        for col in 0..self.dim {
            for base in 0..self.dim {
                if base & targets_mask != 0 {
                    continue;
                }
                for (m, g) in gathered.iter_mut().enumerate() {
                    *g = self.mat[expand(base, m) * self.dim + col];
                }
                for row in 0..sub {
                    let mut acc = Complex::ZERO;
                    for (mcol, g) in gathered.iter().enumerate() {
                        acc += u[(row, mcol)] * *g;
                    }
                    self.mat[expand(base, row) * self.dim + col] = acc;
                }
            }
        }
        // Right multiplication by U†: columns transform by conj(U).
        for row in 0..self.dim {
            for base in 0..self.dim {
                if base & targets_mask != 0 {
                    continue;
                }
                for (m, g) in gathered.iter_mut().enumerate() {
                    *g = self.mat[row * self.dim + expand(base, m)];
                }
                for colm in 0..sub {
                    let mut acc = Complex::ZERO;
                    for (mrow, g) in gathered.iter().enumerate() {
                        acc += u[(colm, mrow)].conj() * *g;
                    }
                    self.mat[row * self.dim + expand(base, colm)] = acc;
                }
            }
        }
    }

    /// Applies a `k`-qubit depolarizing channel with probability `p`:
    /// `ρ → (1−p)·ρ + p·(I/2^k ⊗ Tr_targets ρ)`.
    ///
    /// # Panics
    ///
    /// Panics when `p ∉ [0, 1]` or qubits are invalid.
    pub fn depolarize(&mut self, qubits: &[usize], p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p == 0.0 {
            return;
        }
        let k = qubits.len();
        let pos: Vec<usize> = qubits.iter().map(|q| self.n - 1 - q).collect();
        let targets_mask: usize = pos.iter().map(|p| 1usize << p).sum();
        let sub = 1usize << k;
        let expand = |base: usize, m: usize| -> usize {
            let mut idx = base;
            for (j, pp) in pos.iter().enumerate() {
                if m >> (k - 1 - j) & 1 == 1 {
                    idx |= 1 << pp;
                }
            }
            idx
        };
        let norm = 1.0 / sub as f64;
        // For every pair of non-target index parts, mix in the partial trace.
        for rbase in 0..self.dim {
            if rbase & targets_mask != 0 {
                continue;
            }
            for cbase in 0..self.dim {
                if cbase & targets_mask != 0 {
                    continue;
                }
                // Partial trace over targets for this (rest_r, rest_c) pair.
                let mut tr = Complex::ZERO;
                for s in 0..sub {
                    tr += self.mat[expand(rbase, s) * self.dim + expand(cbase, s)];
                }
                let mixed = tr * c(norm, 0.0);
                for mr in 0..sub {
                    for mc in 0..sub {
                        let idx = expand(rbase, mr) * self.dim + expand(cbase, mc);
                        let fresh = if mr == mc { mixed } else { Complex::ZERO };
                        self.mat[idx] = self.mat[idx] * (1.0 - p) + fresh * p;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn h_gate() -> CMat {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        CMat::from_rows_f64(&[&[s, s], &[s, -s]])
    }

    #[test]
    fn pure_state_round_trip() {
        let mut s = StateVector::zero(3);
        let mut rng = StdRng::seed_from_u64(11);
        s.apply(&[0, 1], &haar_unitary(4, &mut rng));
        s.apply(&[1, 2], &haar_unitary(4, &mut rng));
        let rho = DensityMatrix::from_state(&s);
        let ps = s.probabilities();
        let pr = rho.probabilities();
        for (a, b) in ps.iter().zip(pr.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((rho.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn unitary_application_matches_statevector() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut s = StateVector::zero(3);
        let mut rho = DensityMatrix::zero(3);
        for (qs, dim) in [(vec![0usize], 2usize), (vec![2, 0], 4), (vec![1, 2], 4)] {
            let u = haar_unitary(dim, &mut rng);
            s.apply(&qs, &u);
            rho.apply(&qs, &u);
        }
        let expect = DensityMatrix::from_state(&s);
        let diff: f64 = rho
            .mat
            .iter()
            .zip(expect.mat.iter())
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum::<f64>()
            .sqrt();
        assert!(diff < 1e-10, "density/state mismatch: {diff}");
    }

    #[test]
    fn trace_preserved_by_unitaries_and_noise() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut rho = DensityMatrix::zero(4);
        for step in 0..8 {
            let u = haar_unitary(4, &mut rng);
            rho.apply(&[step % 3, step % 3 + 1], &u);
            rho.depolarize(&[step % 4], 0.02);
            rho.depolarize(&[step % 3, step % 3 + 1], 0.01);
            assert!((rho.trace() - 1.0).abs() < 1e-9, "trace drifted");
        }
        assert!(rho.purity() < 1.0, "noise must reduce purity");
    }

    #[test]
    fn full_depolarizing_gives_maximally_mixed() {
        let mut rho = DensityMatrix::zero(2);
        rho.apply(&[0], &h_gate());
        rho.depolarize(&[0, 1], 1.0);
        for (i, p) in rho.probabilities().iter().enumerate() {
            assert!((p - 0.25).abs() < 1e-12, "p[{i}] = {p}");
        }
        assert!((rho.purity() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn single_qubit_depolarizing_mixes_only_that_qubit() {
        // Prepare |+0⟩, depolarize qubit 1 fully: qubit 0 stays pure.
        let mut rho = DensityMatrix::zero(2);
        rho.apply(&[0], &h_gate());
        rho.depolarize(&[1], 1.0);
        let p = rho.probabilities();
        // All four outcomes: 0.25 each (qubit0 half + half coherent, qubit1 mixed).
        for v in &p {
            assert!((v - 0.25).abs() < 1e-12);
        }
        // But purity is 0.5 (pure ⊗ mixed), not 0.25.
        assert!((rho.purity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn depolarizing_is_unitarily_covariant_on_targets() {
        // D_p(UρU†) = U D_p(ρ) U† when U acts on the depolarized qubits.
        let mut rng = StdRng::seed_from_u64(14);
        let u = haar_unitary(4, &mut rng);
        let mut a = DensityMatrix::zero(3);
        a.apply(&[0], &h_gate());
        let mut b = a.clone();
        a.apply(&[1, 2], &u);
        a.depolarize(&[1, 2], 0.3);
        b.depolarize(&[1, 2], 0.3);
        b.apply(&[1, 2], &u);
        let diff: f64 = a
            .mat
            .iter()
            .zip(b.mat.iter())
            .map(|(x, y)| (*x - *y).norm_sqr())
            .sum::<f64>()
            .sqrt();
        assert!(diff < 1e-10, "covariance violated: {diff}");
    }
}
