//! The fast-path simulation engine: a statevector workspace with
//! preallocated scratch buffers, reused across circuit runs.
//!
//! [`crate::circuit::Simulate::run_pure`] and one-shot trajectory calls
//! allocate a fresh amplitude vector per run; for batched workloads
//! (quantum-volume sweeps, trajectory ensembles, benches) that allocation
//! and its cache-cold first touch dominate. [`SimEngine`] keeps one
//! amplitude buffer (and the Pauli matrices the trajectory unravelling
//! draws from) alive across runs, so a batch of circuits on the same
//! register costs zero allocations after the first.

use crate::circuit::{Circuit, NoiseModel};
use crate::state::StateVector;
use ashn_math::{c, CMat, Complex};
use rand::Rng;

/// Builds the non-identity Pauli matrices `[X, Y, Z]`.
fn pauli_matrices() -> [CMat; 3] {
    [
        CMat::from_rows(&[
            &[Complex::ZERO, Complex::ONE],
            &[Complex::ONE, Complex::ZERO],
        ]),
        CMat::from_rows(&[
            &[Complex::ZERO, c(0.0, -1.0)],
            &[c(0.0, 1.0), Complex::ZERO],
        ]),
        CMat::diag(&[Complex::ONE, c(-1.0, 0.0)]),
    ]
}

/// A reusable statevector simulation workspace.
///
/// # Examples
///
/// ```
/// use ashn_ir::{Circuit, Instruction};
/// use ashn_math::CMat;
/// use ashn_sim::SimEngine;
///
/// let h = CMat::from_rows_f64(&[
///     &[std::f64::consts::FRAC_1_SQRT_2, std::f64::consts::FRAC_1_SQRT_2],
///     &[std::f64::consts::FRAC_1_SQRT_2, -std::f64::consts::FRAC_1_SQRT_2],
/// ]);
/// let mut circuit = Circuit::new(1);
/// circuit.push(Instruction::new(vec![0], h, "H"));
/// let mut engine = SimEngine::new(1);
/// let p = engine.run_pure(&circuit).probabilities();
/// assert!((p[0] - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct SimEngine {
    n: usize,
    amps: Vec<Complex>,
    paulis: [CMat; 3],
}

impl SimEngine {
    /// An engine sized for `n`-qubit circuits (the buffer grows on demand if
    /// a larger circuit is run).
    ///
    /// # Panics
    ///
    /// Panics outside the `1..=24`-qubit range — the same register cap as
    /// [`StateVector::zero`] and the rest of this crate.
    pub fn new(n: usize) -> Self {
        assert!((1..=24).contains(&n), "qubit count out of supported range");
        Self {
            n,
            amps: vec![Complex::ZERO; 1 << n],
            paulis: pauli_matrices(),
        }
    }

    /// Current register size.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Raw amplitudes of the last run, in computational-basis order.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Resets the workspace to `phase·|0…0⟩` on an `n`-qubit register,
    /// resizing the buffer only when the register size changes.
    pub fn load_zero(&mut self, n: usize, phase: Complex) {
        assert!((1..=24).contains(&n), "qubit count out of supported range");
        if n != self.n {
            self.n = n;
            self.amps.resize(1 << n, Complex::ZERO);
        }
        self.amps.fill(Complex::ZERO);
        self.amps[0] = phase;
    }

    /// Applies one gate in place (dispatching to the fast kernels).
    pub fn apply(&mut self, qubits: &[usize], m: &CMat) {
        ashn_ir::circuit::apply_gate(&mut self.amps, self.n, qubits, m);
    }

    /// Runs the circuit on `|0…0⟩` without noise, leaving the final
    /// amplitudes in the workspace.
    pub fn run_pure(&mut self, circuit: &Circuit) -> &Self {
        self.load_zero(circuit.n_qubits(), circuit.phase);
        for g in circuit.gates() {
            self.apply(&g.qubits, &g.matrix);
        }
        self
    }

    /// Runs one stochastic trajectory of the circuit under its per-gate
    /// depolarizing annotations (a `k`-qubit depolarizing channel of
    /// probability `p` is realized exactly in distribution by applying,
    /// with probability `p`, a uniformly random Pauli on each touched
    /// qubit, identity included).
    pub fn run_trajectory(
        &mut self,
        circuit: &Circuit,
        noise: &NoiseModel,
        rng: &mut impl Rng,
    ) -> &Self {
        self.load_zero(circuit.n_qubits(), circuit.phase);
        for g in circuit.gates() {
            self.apply(&g.qubits, &g.matrix);
            let p = noise.rate_for(g);
            if p > 0.0 && rng.gen::<f64>() < p {
                for &q in &g.qubits {
                    let which = rng.gen_range(0..4usize);
                    if which != 0 {
                        ashn_ir::circuit::apply_gate(
                            &mut self.amps,
                            self.n,
                            &[q],
                            &self.paulis[which - 1],
                        );
                    }
                }
            }
        }
        self
    }

    /// Measurement probabilities of the current amplitudes.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Adds the current measurement probabilities into `out` (for averaging
    /// trajectory ensembles without per-run allocation).
    ///
    /// # Panics
    ///
    /// Panics when `out` does not match the register dimension.
    pub fn accumulate_probabilities(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.amps.len(), "dimension mismatch");
        for (o, a) in out.iter_mut().zip(self.amps.iter()) {
            *o += a.norm_sqr();
        }
    }

    /// Snapshot of the current amplitudes as a [`StateVector`].
    pub fn state(&self) -> StateVector {
        StateVector::from_amplitudes_unchecked(self.amps.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Instruction, Simulate};
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_circuit(n: usize, rng: &mut StdRng) -> Circuit {
        let mut circuit = Circuit::new(n);
        circuit.phase = Complex::cis(0.3);
        for layer in 0..3 {
            for q in 0..n {
                circuit.push(Instruction::new(vec![q], haar_unitary(2, rng), "1q"));
            }
            for q in 0..n - 1 {
                if (q + layer) % 2 == 0 {
                    circuit.push(Instruction::new(vec![q, q + 1], haar_unitary(4, rng), "U"));
                }
            }
        }
        circuit
    }

    #[test]
    fn engine_matches_run_pure() {
        let mut rng = StdRng::seed_from_u64(91);
        let circuit = random_circuit(4, &mut rng);
        let mut engine = SimEngine::new(4);
        engine.run_pure(&circuit);
        let reference = circuit.run_pure();
        for (a, b) in engine.amplitudes().iter().zip(reference.amplitudes()) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn engine_is_reusable_across_register_sizes() {
        let mut rng = StdRng::seed_from_u64(92);
        let mut engine = SimEngine::new(2);
        for n in [3, 2, 4] {
            let circuit = random_circuit(n, &mut rng);
            engine.run_pure(&circuit);
            assert_eq!(engine.amplitudes().len(), 1 << n);
            let norm: f64 = engine.probabilities().iter().sum();
            assert!((norm - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn accumulate_probabilities_sums() {
        let mut rng = StdRng::seed_from_u64(93);
        let circuit = random_circuit(3, &mut rng);
        let mut engine = SimEngine::new(3);
        let mut acc = vec![0.0; 8];
        engine.run_pure(&circuit).accumulate_probabilities(&mut acc);
        engine.run_pure(&circuit).accumulate_probabilities(&mut acc);
        let direct = engine.probabilities();
        for (a, d) in acc.iter().zip(direct.iter()) {
            assert!((a - 2.0 * d).abs() < 1e-12);
        }
    }
}
