//! The fast-path simulation engine: a statevector workspace with
//! preallocated scratch buffers, reused across circuit runs.
//!
//! [`crate::circuit::Simulate::run_pure`] and one-shot trajectory calls
//! allocate a fresh amplitude vector per run; for batched workloads
//! (quantum-volume sweeps, trajectory ensembles, benches) that allocation
//! and its cache-cold first touch dominate. [`SimEngine`] keeps one
//! amplitude buffer (and the Pauli matrices the trajectory unravelling
//! draws from) alive across runs, so a batch of circuits on the same
//! register costs zero allocations after the first.
//!
//! Circuit-level entry points ([`SimEngine::run_pure`],
//! [`SimEngine::run_trajectory`]) compile the circuit to an
//! [`ExecPlan`] and execute that; ensemble callers build the plan once and
//! drive [`SimEngine::run_plan`] / [`SimEngine::run_plan_trajectory`]
//! directly. The original instruction walk survives as
//! [`SimEngine::run_pure_walk`] / [`SimEngine::run_trajectory_walk`] — the
//! differential reference the plan path is pinned against, and the
//! fallback for circuits a plan cannot express (gates on ≥ 3 qubits).

use crate::chunk::ChunkPolicy;
use crate::circuit::{Circuit, NoiseModel};
use crate::error::SimError;
use crate::plan::ExecPlan;
use crate::state::{check_register, StateVector};
use ashn_math::{c, CMat, Complex};
use rand::Rng;

/// Builds the non-identity Pauli matrices `[X, Y, Z]`.
fn pauli_matrices() -> [CMat; 3] {
    [
        CMat::from_rows(&[
            &[Complex::ZERO, Complex::ONE],
            &[Complex::ONE, Complex::ZERO],
        ]),
        CMat::from_rows(&[
            &[Complex::ZERO, c(0.0, -1.0)],
            &[c(0.0, 1.0), Complex::ZERO],
        ]),
        CMat::diag(&[Complex::ONE, c(-1.0, 0.0)]),
    ]
}

/// A reusable statevector simulation workspace.
///
/// # Examples
///
/// ```
/// use ashn_ir::{Circuit, Instruction};
/// use ashn_math::CMat;
/// use ashn_sim::SimEngine;
///
/// let h = CMat::from_rows_f64(&[
///     &[std::f64::consts::FRAC_1_SQRT_2, std::f64::consts::FRAC_1_SQRT_2],
///     &[std::f64::consts::FRAC_1_SQRT_2, -std::f64::consts::FRAC_1_SQRT_2],
/// ]);
/// let mut circuit = Circuit::new(1);
/// circuit.push(Instruction::new(vec![0], h, "H"));
/// let mut engine = SimEngine::new(1);
/// let p = engine.run_pure(&circuit).probabilities();
/// assert!((p[0] - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct SimEngine {
    n: usize,
    amps: Vec<Complex>,
    paulis: [CMat; 3],
    chunk: ChunkPolicy,
}

impl SimEngine {
    /// An engine sized for `n`-qubit circuits (the buffer grows on demand if
    /// a larger circuit is run). Plan execution uses the auto
    /// [`ChunkPolicy`]: amplitude-parallel on large registers, scalar
    /// below the threshold.
    ///
    /// # Panics
    ///
    /// Panics outside the `1..=`[`MAX_QUBITS`](crate::MAX_QUBITS) range —
    /// the same register cap as [`StateVector::zero`] and the rest of this
    /// crate. [`SimEngine::try_new`] reports the failure instead.
    pub fn new(n: usize) -> Self {
        Self::try_new(n).expect("qubit count out of supported range")
    }

    /// Fallible [`SimEngine::new`].
    ///
    /// # Errors
    ///
    /// [`SimError::RegisterOutOfRange`] outside
    /// `1..=`[`MAX_QUBITS`](crate::MAX_QUBITS) qubits.
    pub fn try_new(n: usize) -> Result<Self, SimError> {
        check_register(n)?;
        Ok(Self {
            n,
            amps: vec![Complex::ZERO; 1 << n],
            paulis: pauli_matrices(),
            chunk: ChunkPolicy::auto(),
        })
    }

    /// Replaces the engine's amplitude-parallelism policy (builder style).
    pub fn with_chunk_policy(mut self, chunk: ChunkPolicy) -> Self {
        self.chunk = chunk;
        self
    }

    /// The engine's amplitude-parallelism policy.
    pub fn chunk_policy(&self) -> ChunkPolicy {
        self.chunk
    }

    /// Current register size.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Raw amplitudes of the last run, in computational-basis order.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Resets the workspace to `phase·|0…0⟩` on an `n`-qubit register,
    /// resizing the buffer only when the register size changed (or the
    /// buffer was moved out by [`SimEngine::take_state`]).
    pub fn load_zero(&mut self, n: usize, phase: Complex) {
        check_register(n).expect("qubit count out of supported range");
        if n != self.n || self.amps.len() != 1 << n {
            self.n = n;
            self.amps.resize(1 << n, Complex::ZERO);
        }
        self.amps.fill(Complex::ZERO);
        self.amps[0] = phase;
    }

    /// Applies one gate in place (dispatching to the fast kernels).
    pub fn apply(&mut self, qubits: &[usize], m: &CMat) {
        ashn_ir::circuit::apply_gate(&mut self.amps, self.n, qubits, m);
    }

    /// Executes a compiled [`ExecPlan`] on `phase·|0…0⟩` without noise,
    /// leaving the final amplitudes in the workspace. Large registers run
    /// amplitude-parallel per the engine's [`ChunkPolicy`] — bit-identical
    /// to the scalar path at any worker count.
    pub fn run_plan(&mut self, plan: &ExecPlan) -> &Self {
        self.load_zero(plan.n_qubits(), plan.phase());
        let workers = self.chunk.effective_workers(self.n);
        plan.execute_pure_chunked(&mut self.amps, workers);
        self
    }

    /// Executes one stochastic trajectory of a compiled [`ExecPlan`] (the
    /// depolarizing rates were resolved at plan build). Amplitude sweeps
    /// follow the engine's [`ChunkPolicy`]; all randomness is drawn on the
    /// calling thread, so the draw sequence never depends on the worker
    /// count.
    pub fn run_plan_trajectory(&mut self, plan: &ExecPlan, rng: &mut impl Rng) -> &Self {
        self.load_zero(plan.n_qubits(), plan.phase());
        let workers = self.chunk.effective_workers(self.n);
        plan.execute_trajectory_chunked(&mut self.amps, rng, workers);
        self
    }

    /// Runs the circuit on `|0…0⟩` without noise, leaving the final
    /// amplitudes in the workspace.
    ///
    /// Compiles the circuit to an [`ExecPlan`] first (falling back to
    /// [`SimEngine::run_pure_walk`] for circuits a plan cannot express);
    /// callers running the same circuit many times should build the plan
    /// once and call [`SimEngine::run_plan`]. Plan build costs roughly one
    /// instruction walk, so on very small registers a strictly single-shot
    /// caller that cannot benefit from fusion is marginally better served
    /// by [`SimEngine::run_pure_walk`]; the plan pays for itself as soon
    /// as the register grows or the run repeats.
    pub fn run_pure(&mut self, circuit: &Circuit) -> &Self {
        match ExecPlan::pure(circuit) {
            Ok(plan) => self.run_plan(&plan),
            Err(_) => self.run_pure_walk(circuit),
        }
    }

    /// Runs one stochastic trajectory of the circuit under its per-gate
    /// depolarizing annotations (a `k`-qubit depolarizing channel of
    /// probability `p` is realized exactly in distribution by applying,
    /// with probability `p`, a uniformly random Pauli on each touched
    /// qubit, identity included).
    ///
    /// Compiles the circuit to an [`ExecPlan`] first (falling back to
    /// [`SimEngine::run_trajectory_walk`] for circuits a plan cannot
    /// express); ensemble callers should build the plan once and call
    /// [`SimEngine::run_plan_trajectory`] per trajectory.
    pub fn run_trajectory(
        &mut self,
        circuit: &Circuit,
        noise: &NoiseModel,
        rng: &mut impl Rng,
    ) -> &Self {
        match ExecPlan::build(circuit, noise) {
            Ok(plan) => self.run_plan_trajectory(&plan, rng),
            Err(_) => self.run_trajectory_walk(circuit, noise, rng),
        }
    }

    /// The instruction-walk pure run: applies every [`ashn_ir::Instruction`]
    /// through the dispatching kernels, re-classifying each gate per
    /// application. Kept as the differential reference for the plan path
    /// (`crates/sim/tests/plan_differential.rs`) and as the fallback for
    /// gates on ≥ 3 qubits.
    pub fn run_pure_walk(&mut self, circuit: &Circuit) -> &Self {
        self.load_zero(circuit.n_qubits(), circuit.phase);
        for g in circuit.gates() {
            self.apply(&g.qubits, &g.matrix);
        }
        self
    }

    /// The instruction-walk trajectory: per gate, re-resolves the noise
    /// rate and injects Paulis through the generic dense path. Draws the
    /// exact same RNG sequence as the plan-backed
    /// [`SimEngine::run_plan_trajectory`] — the property the differential
    /// suite pins down.
    pub fn run_trajectory_walk(
        &mut self,
        circuit: &Circuit,
        noise: &NoiseModel,
        rng: &mut impl Rng,
    ) -> &Self {
        self.load_zero(circuit.n_qubits(), circuit.phase);
        for g in circuit.gates() {
            self.apply(&g.qubits, &g.matrix);
            let p = noise.rate_for(g);
            if p > 0.0 && rng.gen::<f64>() < p {
                for &q in &g.qubits {
                    let which = rng.gen_range(0..4usize);
                    if which != 0 {
                        ashn_ir::circuit::apply_gate(
                            &mut self.amps,
                            self.n,
                            &[q],
                            &self.paulis[which - 1],
                        );
                    }
                }
            }
        }
        self
    }

    /// Measurement probabilities of the current amplitudes.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Adds the current measurement probabilities into `out` (for averaging
    /// trajectory ensembles without per-run allocation).
    ///
    /// # Panics
    ///
    /// Panics when `out` does not match the register dimension.
    pub fn accumulate_probabilities(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.amps.len(), "dimension mismatch");
        for (o, a) in out.iter_mut().zip(self.amps.iter()) {
            *o += a.norm_sqr();
        }
    }

    /// Snapshot of the current amplitudes as a [`StateVector`] (clones the
    /// whole buffer — one-shot callers that are done with the engine should
    /// use [`SimEngine::take_state`] instead).
    pub fn state(&self) -> StateVector {
        StateVector::from_amplitudes_unchecked(self.amps.clone())
    }

    /// Moves the current amplitudes out as a [`StateVector`] without
    /// copying. The workspace buffer is left empty; the next
    /// [`SimEngine::load_zero`] (or any `run_*` call) re-allocates it.
    ///
    /// # Panics
    ///
    /// Panics when called again before another run refills the buffer.
    pub fn take_state(&mut self) -> StateVector {
        StateVector::from_amplitudes_unchecked(std::mem::take(&mut self.amps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Instruction, Simulate};
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_circuit(n: usize, rng: &mut StdRng) -> Circuit {
        let mut circuit = Circuit::new(n);
        circuit.phase = Complex::cis(0.3);
        for layer in 0..3 {
            for q in 0..n {
                circuit.push(Instruction::new(vec![q], haar_unitary(2, rng), "1q"));
            }
            for q in 0..n - 1 {
                if (q + layer) % 2 == 0 {
                    circuit.push(Instruction::new(vec![q, q + 1], haar_unitary(4, rng), "U"));
                }
            }
        }
        circuit
    }

    #[test]
    fn engine_matches_run_pure() {
        let mut rng = StdRng::seed_from_u64(91);
        let circuit = random_circuit(4, &mut rng);
        let mut engine = SimEngine::new(4);
        engine.run_pure(&circuit);
        let reference = circuit.run_pure();
        for (a, b) in engine.amplitudes().iter().zip(reference.amplitudes()) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn engine_is_reusable_across_register_sizes() {
        let mut rng = StdRng::seed_from_u64(92);
        let mut engine = SimEngine::new(2);
        for n in [3, 2, 4] {
            let circuit = random_circuit(n, &mut rng);
            engine.run_pure(&circuit);
            assert_eq!(engine.amplitudes().len(), 1 << n);
            let norm: f64 = engine.probabilities().iter().sum();
            assert!((norm - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn take_state_moves_the_buffer_and_the_engine_recovers() {
        let mut rng = StdRng::seed_from_u64(94);
        let circuit = random_circuit(3, &mut rng);
        let mut engine = SimEngine::new(3);
        engine.run_pure(&circuit);
        let snapshot = engine.state();
        let taken = engine.take_state();
        assert_eq!(taken.amplitudes(), snapshot.amplitudes());
        assert!(engine.amplitudes().is_empty());
        // The next run re-allocates and produces the same state again.
        engine.run_pure(&circuit);
        for (a, b) in engine.amplitudes().iter().zip(taken.amplitudes()) {
            assert!((*a - *b).abs() < 1e-15);
        }
    }

    #[test]
    fn plan_and_walk_agree_on_the_engine() {
        let mut rng = StdRng::seed_from_u64(95);
        let circuit = random_circuit(4, &mut rng);
        let mut engine = SimEngine::new(4);
        let walk = engine.run_pure_walk(&circuit).probabilities();
        let plan = engine.run_pure(&circuit).probabilities();
        for (a, b) in walk.iter().zip(plan.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn run_pure_falls_back_for_wide_gates() {
        // A 3-qubit gate has no plan opcode; run_pure must still be exact.
        let mut circuit = Circuit::new(3);
        let mut swap02 = CMat::zeros(8, 8);
        for i in 0..8usize {
            let j = (i & 0b010) | ((i & 0b100) >> 2) | ((i & 0b001) << 2);
            swap02[(j, i)] = Complex::ONE;
        }
        circuit.push(Instruction::new(vec![0, 1, 2], swap02, "SWAP02"));
        let mut engine = SimEngine::new(3);
        let p = engine.run_pure(&circuit).probabilities();
        assert!((p[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accumulate_probabilities_sums() {
        let mut rng = StdRng::seed_from_u64(93);
        let circuit = random_circuit(3, &mut rng);
        let mut engine = SimEngine::new(3);
        let mut acc = vec![0.0; 8];
        engine.run_pure(&circuit).accumulate_probabilities(&mut acc);
        engine.run_pure(&circuit).accumulate_probabilities(&mut acc);
        let direct = engine.probabilities();
        for (a, d) in acc.iter().zip(direct.iter()) {
            assert!((a - 2.0 * d).abs() < 1e-12);
        }
    }
}
