//! Deterministic parallel batch execution for trajectory/circuit ensembles.
//!
//! [`BatchRunner`] fans indexed jobs across `std::thread::scope` workers.
//! Each job gets its own RNG stream derived from the master seed and the
//! job index alone, so results are bit-identical for any worker count —
//! the property the determinism suite in `crates/sim/tests/determinism.rs`
//! and the quantum-volume tests pin down.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The default worker count: the `ASHN_WORKERS` environment variable when
/// set to a positive integer, otherwise one per available hardware thread.
///
/// `ASHN_WORKERS=0`, unset, or unparsable all mean the hardware default —
/// the same zero-means-default convention as
/// [`BatchRunner::with_workers`]. Constrained CI runners export the
/// variable once instead of threading `--workers` through every binary.
pub fn default_workers() -> usize {
    let configured = std::env::var("ASHN_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok());
    match configured {
        Some(w) if w > 0 => w,
        _ => std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1),
    }
}

/// Fans indexed jobs across scoped worker threads with per-job
/// deterministic RNG streams.
///
/// # Examples
///
/// ```
/// use ashn_sim::BatchRunner;
/// use rand::Rng;
///
/// let sums: Vec<f64> = BatchRunner::new(7)
///     .with_workers(4)
///     .run(8, |_, rng| (0..100).map(|_| rng.gen::<f64>()).sum());
/// // Identical regardless of worker count:
/// let serial: Vec<f64> = BatchRunner::new(7)
///     .with_workers(1)
///     .run(8, |_, rng| (0..100).map(|_| rng.gen::<f64>()).sum());
/// assert_eq!(sums, serial);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BatchRunner {
    master_seed: u64,
    workers: usize,
}

impl BatchRunner {
    /// A runner over the default worker count.
    pub fn new(master_seed: u64) -> Self {
        Self {
            master_seed,
            workers: default_workers(),
        }
    }

    /// Overrides the worker count (results do not depend on it).
    ///
    /// **Zero means "use the default"** ([`default_workers`], which honors
    /// `ASHN_WORKERS`). This is the canonical statement of the convention:
    /// the bench binaries' `--workers 0` flag, the batched experiment and
    /// trajectory APIs, and `ashn_core::par::parallel_map` all defer here
    /// rather than restating it.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = if workers == 0 {
            default_workers()
        } else {
            workers
        };
        self
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The seed of job `index`'s RNG stream (a pure function of the master
    /// seed and the index — never of scheduling).
    pub fn job_seed(&self, index: usize) -> u64 {
        mix64(self.master_seed ^ mix64(index as u64))
    }

    /// Runs `n_jobs` jobs, each with its own seeded [`StdRng`], returning
    /// results in job order. Work is pulled from a shared counter, so
    /// stragglers do not serialize the batch.
    ///
    /// A panicking job does not kill the batch mid-flight: every other job
    /// still runs to completion, then the panic with the *lowest job index*
    /// is re-raised — independent of scheduling, so the observable behavior
    /// matches serial execution. Use [`BatchRunner::try_run`] to keep the
    /// surviving results instead.
    pub fn run<T, F>(&self, n_jobs: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut StdRng) -> T + Sync,
    {
        let mut first_panic = None;
        let results: Vec<Option<T>> = self
            .run_caught(n_jobs, job)
            .into_iter()
            .map(|r| match r {
                Ok(t) => Some(t),
                Err(caught) => {
                    if first_panic.is_none() {
                        first_panic = Some(caught.payload);
                    }
                    None
                }
            })
            .collect();
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        results.into_iter().map(|t| t.expect("no panics")).collect()
    }

    /// [`BatchRunner::run`] with per-job panic isolation: a job that panics
    /// yields `Err(JobPanic)` at its index while every other job's result
    /// is returned untouched (in job order, bit-identical to a run without
    /// the panicking jobs).
    pub fn try_run<T, F>(&self, n_jobs: usize, job: F) -> Vec<Result<T, JobPanic>>
    where
        T: Send,
        F: Fn(usize, &mut StdRng) -> T + Sync,
    {
        self.run_caught(n_jobs, job)
            .into_iter()
            .enumerate()
            .map(|(index, r)| {
                r.map_err(|caught| JobPanic {
                    index,
                    detail: caught.detail,
                })
            })
            .collect()
    }

    fn run_caught<T, F>(&self, n_jobs: usize, job: F) -> Vec<Result<T, Caught>>
    where
        T: Send,
        F: Fn(usize, &mut StdRng) -> T + Sync,
    {
        let run_one = |i: usize| -> Result<T, Caught> {
            catch_unwind(AssertUnwindSafe(|| {
                if ashn_math::failpoint!("sim::batch::job") {
                    panic!("injected fault: sim::batch::job (job {i})");
                }
                job(i, &mut StdRng::seed_from_u64(self.job_seed(i)))
            }))
            .map_err(|payload| {
                let detail = describe_panic(payload.as_ref());
                Caught { payload, detail }
            })
        };
        let workers = self.workers.min(n_jobs.max(1));
        if n_jobs > 0 {
            // Bulk per-batch accounting — one add regardless of job count.
            ashn_telemetry::current().add("sim.batch.jobs", n_jobs as u64);
        }
        if workers <= 1 || n_jobs <= 1 {
            return (0..n_jobs).map(run_one).collect();
        }
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, Result<T, Caught>)>> =
            Mutex::new(Vec::with_capacity(n_jobs));
        // Workers inherit the spawning thread's current telemetry registry.
        let telemetry = ashn_telemetry::current();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let _telemetry = ashn_telemetry::install(&telemetry);
                    let mut local: Vec<(usize, Result<T, Caught>)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_jobs {
                            break;
                        }
                        local.push((i, run_one(i)));
                    }
                    collected
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .extend(local);
                });
            }
        });
        let mut results = collected
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        results.sort_by_key(|(i, _)| *i);
        debug_assert_eq!(results.len(), n_jobs);
        results.into_iter().map(|(_, t)| t).collect()
    }
}

/// A job that panicked inside [`BatchRunner::try_run`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the job whose closure panicked.
    pub index: usize,
    /// The panic message when it was a string, else a placeholder.
    pub detail: String,
}

struct Caught {
    payload: Box<dyn Any + Send>,
    detail: String,
}

fn describe_panic(payload: &(dyn Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn results_are_in_job_order() {
        let out = BatchRunner::new(1).with_workers(4).run(32, |i, _| i * 3);
        assert_eq!(out, (0..32).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let reference = BatchRunner::new(99)
            .with_workers(1)
            .run(16, |i, rng| (i, rng.gen::<u64>(), rng.gen::<f64>()));
        for workers in [2, 3, 8] {
            let got = BatchRunner::new(99)
                .with_workers(workers)
                .run(16, |i, rng| (i, rng.gen::<u64>(), rng.gen::<f64>()));
            assert_eq!(got, reference, "workers = {workers}");
        }
    }

    #[test]
    fn different_jobs_get_different_streams() {
        let runner = BatchRunner::new(5);
        let draws = runner.with_workers(2).run(8, |_, rng| rng.gen::<u64>());
        for i in 0..draws.len() {
            for j in i + 1..draws.len() {
                assert_ne!(draws[i], draws[j], "jobs {i} and {j} collided");
            }
        }
    }

    #[test]
    fn different_master_seeds_differ() {
        let a = BatchRunner::new(1).run(4, |_, rng| rng.gen::<u64>());
        let b = BatchRunner::new(2).run(4, |_, rng| rng.gen::<u64>());
        assert_ne!(a, b);
    }

    #[test]
    fn try_run_isolates_panics_in_place() {
        let out = BatchRunner::new(11).with_workers(4).try_run(16, |i, rng| {
            if i % 5 == 3 {
                panic!("job {i} failed");
            }
            (i, rng.gen::<u64>())
        });
        let reference = BatchRunner::new(11)
            .with_workers(1)
            .run(16, |i, rng| (i, rng.gen::<u64>()));
        for (i, r) in out.iter().enumerate() {
            if i % 5 == 3 {
                let p = r.as_ref().unwrap_err();
                assert_eq!(p.index, i);
                assert_eq!(p.detail, format!("job {i} failed"));
            } else {
                // Survivors are bit-identical to an all-success run.
                assert_eq!(r.as_ref().unwrap(), &reference[i]);
            }
        }
    }

    #[test]
    fn run_repropagates_the_lowest_indexed_panic() {
        let caught = std::panic::catch_unwind(|| {
            BatchRunner::new(1).with_workers(4).run(16, |i, _| {
                if i == 6 || i == 12 {
                    panic!("die {i}");
                }
                i
            })
        });
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<String>().cloned().unwrap();
        assert_eq!(msg, "die 6");
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn job_failpoint_injects_isolated_panics() {
        use ashn_math::fault::{self, FaultMode};
        let _guard = fault::exclusive();
        fault::reset();
        fault::configure("sim::batch::job", FaultMode::EveryNth(4));
        // One worker: jobs run in index order, so calls 4 and 8 are jobs 3
        // and 7.
        let out = BatchRunner::new(7).with_workers(1).try_run(8, |i, _| i);
        fault::reset();
        for (i, r) in out.iter().enumerate() {
            if i == 3 || i == 7 {
                let p = r.as_ref().unwrap_err();
                assert_eq!(p.index, i);
                assert!(
                    p.detail.contains("injected fault: sim::batch::job"),
                    "detail: {}",
                    p.detail
                );
            } else {
                assert_eq!(r.as_ref().unwrap(), &i);
            }
        }
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<u64> = BatchRunner::new(3).run(0, |_, rng| rng.gen());
        assert!(out.is_empty());
    }

    #[test]
    fn zero_workers_means_default_and_env_overrides() {
        // Env manipulation is process-global, so every assertion touching
        // `default_workers()` lives in this one test (no cross-test race).
        let hardware = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1);
        std::env::remove_var("ASHN_WORKERS");
        assert_eq!(default_workers(), hardware);
        let runner = BatchRunner::new(0).with_workers(0);
        assert_eq!(runner.workers(), default_workers());

        std::env::set_var("ASHN_WORKERS", "3");
        assert_eq!(default_workers(), 3);
        assert_eq!(BatchRunner::new(0).with_workers(0).workers(), 3);
        std::env::set_var("ASHN_WORKERS", "0");
        assert_eq!(default_workers(), hardware);
        std::env::set_var("ASHN_WORKERS", "not-a-number");
        assert_eq!(default_workers(), hardware);
        std::env::remove_var("ASHN_WORKERS");
    }
}
