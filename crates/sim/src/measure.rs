//! Projective measurement: sampling with state collapse, and repeated-shot
//! counting — the readout layer used by the calibration experiments.

use crate::state::StateVector;
use ashn_math::Complex;
use rand::Rng;
use std::collections::BTreeMap;

/// Outcome of measuring a single qubit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bit {
    /// Outcome 0.
    Zero,
    /// Outcome 1.
    One,
}

/// Measures one qubit projectively, collapsing the state. Returns the
/// outcome.
///
/// # Panics
///
/// Panics when `qubit` is out of range.
pub fn measure_qubit(state: &mut StateVector, qubit: usize, rng: &mut impl Rng) -> Bit {
    let n = state.n_qubits();
    assert!(qubit < n, "qubit out of range");
    let pos = n - 1 - qubit;
    let p1: f64 = state
        .amplitudes()
        .iter()
        .enumerate()
        .filter(|(i, _)| i >> pos & 1 == 1)
        .map(|(_, a)| a.norm_sqr())
        .sum();
    let outcome = if rng.gen::<f64>() < p1 {
        Bit::One
    } else {
        Bit::Zero
    };
    let keep = matches!(outcome, Bit::One);
    let norm = if keep { p1.sqrt() } else { (1.0 - p1).sqrt() };
    let amps: Vec<Complex> = state
        .amplitudes()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            if (i >> pos & 1 == 1) == keep {
                *a / norm
            } else {
                Complex::ZERO
            }
        })
        .collect();
    *state = StateVector::from_amplitudes_unchecked(amps);
    outcome
}

/// Measures all qubits (in register order), collapsing to a basis state.
/// Returns the measured basis index.
pub fn measure_all(state: &mut StateVector, rng: &mut impl Rng) -> usize {
    let idx = state.sample(rng);
    let dim = state.amplitudes().len();
    let mut amps = vec![Complex::ZERO; dim];
    amps[idx] = Complex::ONE;
    *state = StateVector::from_amplitudes_unchecked(amps);
    idx
}

/// Repeats state preparation and full measurement, returning outcome counts.
pub fn shot_counts(
    prepare: &mut dyn FnMut() -> StateVector,
    shots: usize,
    rng: &mut impl Rng,
) -> BTreeMap<usize, usize> {
    let mut counts = BTreeMap::new();
    for _ in 0..shots {
        let state = prepare();
        *counts.entry(state.sample(rng)).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_math::CMat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn h_gate() -> CMat {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        CMat::from_rows_f64(&[&[s, s], &[s, -s]])
    }

    #[test]
    fn measuring_a_basis_state_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(71);
        let mut s = StateVector::zero(3);
        for q in 0..3 {
            assert_eq!(measure_qubit(&mut s, q, &mut rng), Bit::Zero);
        }
    }

    #[test]
    fn collapse_is_consistent_with_entanglement() {
        // Bell pair: the two outcomes must agree, each branch equally likely.
        let mut rng = StdRng::seed_from_u64(72);
        let mut ones = 0;
        let n = 400;
        for _ in 0..n {
            let mut s = StateVector::zero(2);
            s.apply(&[0], &h_gate());
            s.apply(
                &[0, 1],
                &CMat::from_rows_f64(&[
                    &[1.0, 0.0, 0.0, 0.0],
                    &[0.0, 1.0, 0.0, 0.0],
                    &[0.0, 0.0, 0.0, 1.0],
                    &[0.0, 0.0, 1.0, 0.0],
                ]),
            );
            let a = measure_qubit(&mut s, 0, &mut rng);
            let b = measure_qubit(&mut s, 1, &mut rng);
            assert_eq!(a, b, "Bell outcomes must correlate");
            if a == Bit::One {
                ones += 1;
            }
        }
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.08, "branch frequency {frac}");
    }

    #[test]
    fn post_measurement_state_is_normalised_and_consistent() {
        let mut rng = StdRng::seed_from_u64(73);
        let mut s = StateVector::zero(2);
        s.apply(&[0], &h_gate());
        s.apply(&[1], &h_gate());
        let _ = measure_qubit(&mut s, 0, &mut rng);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        // Second measurement of the same qubit repeats the outcome.
        let o1 = measure_qubit(&mut s, 0, &mut rng);
        let o2 = measure_qubit(&mut s, 0, &mut rng);
        assert_eq!(o1, o2);
    }

    #[test]
    fn measure_all_collapses_to_basis() {
        let mut rng = StdRng::seed_from_u64(74);
        let mut s = StateVector::zero(3);
        for q in 0..3 {
            s.apply(&[q], &h_gate());
        }
        let idx = measure_all(&mut s, &mut rng);
        assert!((s.probabilities()[idx] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shot_counts_match_distribution() {
        let mut rng = StdRng::seed_from_u64(75);
        let mut prepare = || {
            let mut s = StateVector::zero(1);
            s.apply(&[0], &h_gate());
            s
        };
        let counts = shot_counts(&mut prepare, 10_000, &mut rng);
        let zero = *counts.get(&0).unwrap_or(&0) as f64;
        assert!((zero / 10_000.0 - 0.5).abs() < 0.02);
    }
}
