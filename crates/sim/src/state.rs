//! Pure-state (statevector) simulator.
//!
//! Qubit 0 is the most significant bit of the basis index, matching the
//! Kronecker-product convention `q0 ⊗ q1 ⊗ …` used by `ashn-math`.

use crate::error::SimError;
use ashn_math::{CMat, Complex};
use rand::Rng;

/// Largest supported register size. The bound is memory, not arithmetic:
/// `2^26` complex amplitudes occupy 1 GiB, and every kernel indexes with
/// plain `usize` bit arithmetic, so the cap tracks what a single host can
/// realistically hold (the chunked multi-threaded kernels make registers
/// this size *fast*, not just representable). Raised from the seed's 24
/// when amplitude-parallel application landed.
pub const MAX_QUBITS: usize = 26;

/// `Ok(n)` when `n` is a supported register size.
#[inline]
pub(crate) fn check_register(n: usize) -> Result<usize, SimError> {
    if (1..=MAX_QUBITS).contains(&n) {
        Ok(n)
    } else {
        Err(SimError::RegisterOutOfRange { n })
    }
}

/// A normalised `n`-qubit state vector.
#[derive(Clone, Debug)]
pub struct StateVector {
    n: usize,
    amps: Vec<Complex>,
}

impl StateVector {
    /// The computational basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics outside the `1..=`[`MAX_QUBITS`] range; use
    /// [`StateVector::try_zero`] to handle that as a value.
    pub fn zero(n: usize) -> Self {
        Self::try_zero(n).expect("qubit count out of supported range")
    }

    /// Fallible [`StateVector::zero`].
    ///
    /// # Errors
    ///
    /// [`SimError::RegisterOutOfRange`] outside `1..=`[`MAX_QUBITS`].
    pub fn try_zero(n: usize) -> Result<Self, SimError> {
        check_register(n)?;
        let mut amps = vec![Complex::ZERO; 1 << n];
        amps[0] = Complex::ONE;
        Ok(Self { n, amps })
    }

    /// Builds a state from raw amplitudes (must have power-of-two length).
    ///
    /// # Panics
    ///
    /// Panics when the length is not a power of two or the norm differs from
    /// 1 by more than `1e-6`; use [`StateVector::try_from_amplitudes`] to
    /// handle those as values.
    pub fn from_amplitudes(amps: Vec<Complex>) -> Self {
        match Self::try_from_amplitudes(amps) {
            Ok(s) => s,
            Err(e @ SimError::NotNormalized { .. }) => panic!("state is not normalised: {e}"),
            Err(_) => panic!("bad amplitude count"),
        }
    }

    /// Fallible [`StateVector::from_amplitudes`].
    ///
    /// # Errors
    ///
    /// [`SimError::BadAmplitudeCount`] when the length is not a power of
    /// two `>= 2` (or exceeds the [`MAX_QUBITS`] register cap as
    /// [`SimError::RegisterOutOfRange`]), [`SimError::NotNormalized`] when
    /// the squared norm differs from 1 by more than `1e-6`.
    pub fn try_from_amplitudes(amps: Vec<Complex>) -> Result<Self, SimError> {
        let state = Self::try_from_amplitudes_unchecked(amps)?;
        let norm = state.norm_sqr();
        if (norm - 1.0).abs() >= 1e-6 {
            return Err(SimError::NotNormalized { norm_sqr: norm });
        }
        Ok(state)
    }

    /// Builds a state from raw amplitudes without the normalisation check.
    ///
    /// Useful for propagating basis columns when assembling dense circuit
    /// unitaries; prefer [`StateVector::from_amplitudes`] elsewhere.
    ///
    /// # Panics
    ///
    /// Panics when the length is not a power of two.
    pub fn from_amplitudes_unchecked(amps: Vec<Complex>) -> Self {
        Self::try_from_amplitudes_unchecked(amps).expect("bad amplitude count")
    }

    /// Fallible [`StateVector::from_amplitudes_unchecked`]: length
    /// validation only, no normalisation check.
    ///
    /// # Errors
    ///
    /// [`SimError::BadAmplitudeCount`] when the length is not a power of
    /// two `>= 2`, [`SimError::RegisterOutOfRange`] when it implies a
    /// register beyond [`MAX_QUBITS`].
    pub fn try_from_amplitudes_unchecked(amps: Vec<Complex>) -> Result<Self, SimError> {
        let len = amps.len();
        if !len.is_power_of_two() || len < 2 {
            return Err(SimError::BadAmplitudeCount { len });
        }
        let n = check_register(len.trailing_zeros() as usize)?;
        Ok(Self { n, amps })
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Raw amplitudes in computational-basis order.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Measurement probabilities `|⟨i|ψ⟩|²`.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Squared norm (should stay 1 under unitary evolution).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics on qubit-count mismatch.
    pub fn inner(&self, other: &StateVector) -> Complex {
        assert_eq!(self.n, other.n);
        self.amps
            .iter()
            .zip(other.amps.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Applies a `k`-qubit unitary to the listed qubits (distinct, each
    /// `< n`).
    ///
    /// # Panics
    ///
    /// Panics when the matrix dimension is not `2^k`, qubits repeat, or an
    /// index is out of range.
    pub fn apply(&mut self, qubits: &[usize], u: &CMat) {
        let k = qubits.len();
        assert!(k >= 1 && k <= self.n, "bad qubit count");
        assert_eq!(u.rows(), 1 << k, "matrix dimension mismatch");
        assert!(u.is_square());
        for (i, q) in qubits.iter().enumerate() {
            assert!(*q < self.n, "qubit {q} out of range");
            assert!(
                !qubits[i + 1..].contains(q),
                "duplicate qubit {q} in gate application"
            );
        }
        ashn_ir::circuit::apply_gate(&mut self.amps, self.n, qubits, u);
    }

    /// Samples a basis state index from the measurement distribution.
    ///
    /// The uniform draw is rescaled by the state's squared norm, so a
    /// slightly sub-unit-norm state (numerical drift under long circuits)
    /// does not bias the last basis state: each outcome is sampled with
    /// probability exactly `|a_i|² / ‖ψ‖²`. If rounding in the rescaled
    /// cumulative scan lets the draw survive the whole sweep, the fallback
    /// is the *last nonzero-probability* index — never a zero-amplitude
    /// basis state (a state whose trailing amplitudes are exactly zero
    /// previously could emit its final index).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let mut u: f64 = rng.gen::<f64>() * self.norm_sqr();
        let mut last_nonzero = 0;
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if p > 0.0 {
                last_nonzero = i;
                u -= p;
                if u <= 0.0 {
                    return i;
                }
            }
        }
        last_nonzero
    }

    /// Expectation value of `Z` on one qubit.
    pub fn expect_z(&self, qubit: usize) -> f64 {
        assert!(qubit < self.n);
        let p = self.n - 1 - qubit;
        self.amps
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let sign = if i >> p & 1 == 0 { 1.0 } else { -1.0 };
                sign * a.norm_sqr()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_math::c;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn x_gate() -> CMat {
        CMat::from_rows_f64(&[&[0.0, 1.0], &[1.0, 0.0]])
    }

    fn h_gate() -> CMat {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        CMat::from_rows_f64(&[&[s, s], &[s, -s]])
    }

    fn cnot_gate() -> CMat {
        CMat::from_rows_f64(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
            &[0.0, 0.0, 1.0, 0.0],
        ])
    }

    #[test]
    fn x_on_each_qubit_sets_the_right_bit() {
        for n in 1..=4 {
            for q in 0..n {
                let mut s = StateVector::zero(n);
                s.apply(&[q], &x_gate());
                let expect = 1usize << (n - 1 - q);
                let p = s.probabilities();
                assert!((p[expect] - 1.0).abs() < 1e-12, "n={n} q={q}");
            }
        }
    }

    #[test]
    fn bell_state_construction() {
        let mut s = StateVector::zero(2);
        s.apply(&[0], &h_gate());
        s.apply(&[0, 1], &cnot_gate());
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
        assert!(p[1].abs() < 1e-12 && p[2].abs() < 1e-12);
    }

    #[test]
    fn two_qubit_gate_on_reversed_pair() {
        // CNOT with control q1, target q0 on |01⟩ flips q0: |01⟩ → |11⟩.
        let mut s = StateVector::zero(2);
        s.apply(&[1], &x_gate()); // |01⟩
        s.apply(&[1, 0], &cnot_gate());
        let p = s.probabilities();
        assert!((p[0b11] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn norm_is_preserved_by_random_unitaries() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = StateVector::zero(4);
        for step in 0..20 {
            let u = ashn_math::randmat::haar_unitary(4, &mut rng);
            let q = step % 3;
            s.apply(&[q, q + 1], &u);
            assert!((s.norm_sqr() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn matches_dense_kron_application() {
        // Applying U on (q0,q2) of 3 qubits must equal the dense matrix
        // built by explicit permutation/kron.
        let mut rng = StdRng::seed_from_u64(6);
        let u = ashn_math::randmat::haar_unitary(4, &mut rng);
        // Prepare a random product state.
        let mut s = StateVector::zero(3);
        for q in 0..3 {
            let g = ashn_math::randmat::haar_unitary(2, &mut rng);
            s.apply(&[q], &g);
        }
        let before = s.amplitudes().to_vec();
        s.apply(&[0, 2], &u);
        // Dense: permute qubits (0,2,1) so targets are adjacent, apply
        // U ⊗ I, permute back. Build full 8×8 operator directly instead.
        let mut dense = CMat::zeros(8, 8);
        for r in 0..8 {
            for cc in 0..8 {
                // bits: q0 q1 q2 (msb→lsb)
                let (r0, r1, r2) = (r >> 2 & 1, r >> 1 & 1, r & 1);
                let (c0, c1, c2) = (cc >> 2 & 1, cc >> 1 & 1, cc & 1);
                if r1 == c1 {
                    dense[(r, cc)] = u[((r0 << 1) | r2, (c0 << 1) | c2)];
                }
            }
        }
        let expect = dense.mul_vec(&before);
        for (a, b) in s.amplitudes().iter().zip(expect.iter()) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn expect_z_signs() {
        let mut s = StateVector::zero(2);
        assert!((s.expect_z(0) - 1.0).abs() < 1e-12);
        s.apply(&[0], &x_gate());
        assert!((s.expect_z(0) + 1.0).abs() < 1e-12);
        assert!((s.expect_z(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut s = StateVector::zero(1);
        s.apply(&[0], &h_gate());
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let ones = (0..n).filter(|_| s.sample(&mut rng) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn sampling_renormalizes_sub_unit_norm_states() {
        // Regression: the pre-fix linear scan compared an unscaled uniform
        // draw against the raw |a_i|² mass, so any norm deficit fell through
        // to the *last* basis state. A state with most mass missing makes
        // the bias unmistakable: |ψ⟩ = 0.7|0⟩ has norm² = 0.49, and the old
        // code returned index 1 (amplitude zero!) for every u > 0.49.
        let s = StateVector::from_amplitudes_unchecked(vec![c(0.7, 0.0), Complex::ZERO]);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..1000 {
            assert_eq!(s.sample(&mut rng), 0, "zero-amplitude outcome sampled");
        }
        // And a mildly drifted near-unit state keeps the right proportions.
        let drift = (0.5f64 * (1.0 - 1e-4)).sqrt();
        let s = StateVector::from_amplitudes_unchecked(vec![c(drift, 0.0), c(0.0, drift)]);
        let n = 20_000;
        let ones = (0..n).filter(|_| s.sample(&mut rng) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn sample_never_emits_a_trailing_zero_probability_state() {
        // Regression: the drift fallback returned `amps.len() - 1`
        // unconditionally, so a state whose *final* amplitudes are exactly
        // zero could emit a zero-probability basis state whenever the
        // rescaled draw survived the cumulative scan (u == norm² exactly,
        // or accumulated rounding). Force the fallback by sweeping many
        // draws on a state with only leading support: every sample must
        // land on a nonzero-probability index.
        let s = StateVector::from_amplitudes_unchecked(vec![
            c(0.6, 0.0),
            c(0.0, 0.8),
            Complex::ZERO,
            Complex::ZERO,
        ]);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..5000 {
            let idx = s.sample(&mut rng);
            assert!(idx < 2, "sampled zero-probability basis state {idx}");
        }
        // The explicit fallback path: a state whose probabilities sum to
        // slightly *less* than norm_sqr() reports is impossible to build
        // from the public API, so drive the scan directly with the worst
        // case — all mass on index 0, zeros after. Any draw must return 0.
        let s = StateVector::from_amplitudes_unchecked(vec![Complex::ONE, Complex::ZERO]);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), 0);
        }
    }

    #[test]
    fn try_constructors_report_structured_errors() {
        assert_eq!(
            StateVector::try_zero(0).unwrap_err(),
            SimError::RegisterOutOfRange { n: 0 }
        );
        assert_eq!(
            StateVector::try_zero(MAX_QUBITS + 1).unwrap_err(),
            SimError::RegisterOutOfRange { n: MAX_QUBITS + 1 }
        );
        assert!(StateVector::try_zero(MAX_QUBITS.min(20)).is_ok());
        assert_eq!(
            StateVector::try_from_amplitudes_unchecked(vec![Complex::ONE; 3]).unwrap_err(),
            SimError::BadAmplitudeCount { len: 3 }
        );
        assert_eq!(
            StateVector::try_from_amplitudes_unchecked(vec![]).unwrap_err(),
            SimError::BadAmplitudeCount { len: 0 }
        );
        match StateVector::try_from_amplitudes(vec![c(0.7, 0.0), Complex::ZERO]).unwrap_err() {
            SimError::NotNormalized { norm_sqr } => assert!((norm_sqr - 0.49).abs() < 1e-12),
            other => panic!("wrong error: {other:?}"),
        }
        let ok = StateVector::try_from_amplitudes(vec![c(0.6, 0.0), c(0.0, 0.8)]).unwrap();
        assert_eq!(ok.n_qubits(), 1);
    }

    #[test]
    fn from_amplitudes_round_trip() {
        let s = StateVector::from_amplitudes(vec![c(0.6, 0.0), c(0.0, 0.8)]);
        assert_eq!(s.n_qubits(), 1);
        assert!((s.probabilities()[1] - 0.64).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn rejects_duplicate_qubits() {
        let mut s = StateVector::zero(2);
        s.apply(&[0, 0], &cnot_gate());
    }
}
