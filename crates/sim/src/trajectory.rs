//! Monte-Carlo (quantum-trajectory) simulation of depolarizing noise on the
//! statevector — the scalable alternative to the exact density-matrix
//! simulator for larger registers.
//!
//! A `k`-qubit depolarizing channel of probability `p` is realized exactly
//! in distribution by applying, with probability `p`, a uniformly random
//! `k`-qubit Pauli (identity included).

use crate::circuit::{Circuit, NoiseModel};
use crate::state::StateVector;
use ashn_math::{c, CMat, Complex};
use rand::Rng;

fn pauli_matrix(which: usize) -> CMat {
    match which {
        0 => CMat::identity(2),
        1 => CMat::from_rows(&[
            &[Complex::ZERO, Complex::ONE],
            &[Complex::ONE, Complex::ZERO],
        ]),
        2 => CMat::from_rows(&[
            &[Complex::ZERO, c(0.0, -1.0)],
            &[c(0.0, 1.0), Complex::ZERO],
        ]),
        _ => CMat::diag(&[Complex::ONE, c(-1.0, 0.0)]),
    }
}

/// Runs one stochastic trajectory of the circuit under its per-gate
/// depolarizing annotations, returning the final pure state.
pub fn run_trajectory(circuit: &Circuit, noise: &NoiseModel, rng: &mut impl Rng) -> StateVector {
    // Carry the circuit's global phase, matching `Simulate::run_pure`.
    let mut amps = vec![Complex::ZERO; 1 << circuit.n_qubits()];
    amps[0] = circuit.phase;
    let mut s = StateVector::from_amplitudes_unchecked(amps);
    for g in circuit.gates() {
        s.apply(&g.qubits, &g.matrix);
        let p = noise.rate_for(g);
        if p > 0.0 && rng.gen::<f64>() < p {
            // Uniformly random Pauli on each touched qubit (4^k options,
            // identity included — this is the exact unravelling of D_p).
            for &q in &g.qubits {
                let which = rng.gen_range(0..4usize);
                if which != 0 {
                    s.apply(&[q], &pauli_matrix(which));
                }
            }
        }
    }
    s
}

/// Estimates outcome probabilities by averaging `n_traj` trajectories.
pub fn trajectory_probabilities(
    circuit: &Circuit,
    noise: &NoiseModel,
    n_traj: usize,
    rng: &mut impl Rng,
) -> Vec<f64> {
    let dim = 1usize << circuit.n_qubits();
    let mut acc = vec![0.0; dim];
    for _ in 0..n_traj {
        let s = run_trajectory(circuit, noise, rng);
        for (a, p) in acc.iter_mut().zip(s.probabilities()) {
            *a += p;
        }
    }
    for a in acc.iter_mut() {
        *a /= n_traj as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Instruction, Simulate};
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_circuit(n: usize, rng: &mut StdRng, p2: f64) -> Circuit {
        let mut c = Circuit::new(n);
        for layer in 0..3 {
            for q in 0..n - 1 {
                if (q + layer) % 2 == 0 {
                    c.push(
                        Instruction::new(vec![q, q + 1], haar_unitary(4, rng), "U")
                            .with_error_rate(p2),
                    );
                }
            }
        }
        c
    }

    #[test]
    fn noiseless_trajectory_equals_pure_run() {
        let mut rng = StdRng::seed_from_u64(81);
        let circuit = sample_circuit(3, &mut rng, 0.0);
        let traj = run_trajectory(&circuit, &NoiseModel::NOISELESS, &mut rng);
        let pure = circuit.run_pure();
        for (a, b) in traj.probabilities().iter().zip(pure.probabilities()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn trajectories_converge_to_density_matrix() {
        let mut rng = StdRng::seed_from_u64(82);
        let circuit = sample_circuit(3, &mut rng, 0.08);
        let exact = circuit.run_noisy(&NoiseModel::NOISELESS).probabilities();
        let est = trajectory_probabilities(&circuit, &NoiseModel::NOISELESS, 4000, &mut rng);
        let linf = exact
            .iter()
            .zip(est.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(linf < 0.02, "trajectory vs exact deviation {linf}");
    }

    #[test]
    fn full_depolarizing_trajectories_mix() {
        let mut rng = StdRng::seed_from_u64(83);
        let mut circuit = Circuit::new(2);
        circuit.push(
            Instruction::new(vec![0, 1], haar_unitary(4, &mut rng), "U").with_error_rate(1.0),
        );
        let est = trajectory_probabilities(&circuit, &NoiseModel::NOISELESS, 8000, &mut rng);
        for p in est {
            assert!((p - 0.25).abs() < 0.03, "p = {p}");
        }
    }

    #[test]
    fn trajectory_states_stay_normalised() {
        let mut rng = StdRng::seed_from_u64(84);
        let circuit = sample_circuit(4, &mut rng, 0.2);
        for _ in 0..20 {
            let s = run_trajectory(&circuit, &NoiseModel::NOISELESS, &mut rng);
            assert!((s.norm_sqr() - 1.0).abs() < 1e-10);
        }
    }
}
