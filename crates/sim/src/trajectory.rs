//! Monte-Carlo (quantum-trajectory) simulation of depolarizing noise on the
//! statevector — the scalable alternative to the exact density-matrix
//! simulator for larger registers.
//!
//! A `k`-qubit depolarizing channel of probability `p` is realized exactly
//! in distribution by applying, with probability `p`, a uniformly random
//! `k`-qubit Pauli (identity included).

use crate::batch::BatchRunner;
use crate::circuit::{Circuit, NoiseModel};
use crate::engine::SimEngine;
use crate::state::StateVector;
use rand::Rng;

/// Runs one stochastic trajectory of the circuit under its per-gate
/// depolarizing annotations, returning the final pure state.
///
/// One-shot convenience over [`SimEngine::run_trajectory`]; batched callers
/// keep one engine alive (or use [`trajectory_probabilities_batched`]) to
/// amortize the amplitude-buffer allocation.
pub fn run_trajectory(circuit: &Circuit, noise: &NoiseModel, rng: &mut impl Rng) -> StateVector {
    let mut engine = SimEngine::new(circuit.n_qubits());
    engine.run_trajectory(circuit, noise, rng).state()
}

/// Estimates outcome probabilities by averaging `n_traj` trajectories.
pub fn trajectory_probabilities(
    circuit: &Circuit,
    noise: &NoiseModel,
    n_traj: usize,
    rng: &mut impl Rng,
) -> Vec<f64> {
    let dim = 1usize << circuit.n_qubits();
    let mut acc = vec![0.0; dim];
    let mut engine = SimEngine::new(circuit.n_qubits());
    for _ in 0..n_traj {
        engine
            .run_trajectory(circuit, noise, rng)
            .accumulate_probabilities(&mut acc);
    }
    for a in acc.iter_mut() {
        *a /= n_traj as f64;
    }
    acc
}

/// Number of fixed-size chunks a trajectory ensemble is split into. A pure
/// function of the ensemble size — never of the worker count — so batched
/// estimates are deterministic for a given master seed.
fn trajectory_chunks(n_traj: usize) -> usize {
    n_traj.clamp(1, 64)
}

/// Estimates outcome probabilities by averaging `n_traj` trajectories,
/// fanned across [`BatchRunner`] workers (`workers == 0` uses the machine
/// default). The ensemble is split into fixed-size chunks with per-chunk
/// RNG streams derived from `master_seed`, so the estimate is bit-identical
/// for any worker count.
pub fn trajectory_probabilities_batched(
    circuit: &Circuit,
    noise: &NoiseModel,
    n_traj: usize,
    master_seed: u64,
    workers: usize,
) -> Vec<f64> {
    let dim = 1usize << circuit.n_qubits();
    if n_traj == 0 {
        return vec![0.0; dim];
    }
    let chunks = trajectory_chunks(n_traj);
    let runner = BatchRunner::new(master_seed).with_workers(workers);
    let partials = runner.run(chunks, |index, rng| {
        // Chunk `index` owns trajectories [lo, hi) of the ensemble.
        let lo = index * n_traj / chunks;
        let hi = (index + 1) * n_traj / chunks;
        let mut engine = SimEngine::new(circuit.n_qubits());
        let mut acc = vec![0.0; dim];
        for _ in lo..hi {
            engine
                .run_trajectory(circuit, noise, rng)
                .accumulate_probabilities(&mut acc);
        }
        acc
    });
    let mut out = vec![0.0; dim];
    for partial in partials {
        for (o, p) in out.iter_mut().zip(partial) {
            *o += p;
        }
    }
    for o in out.iter_mut() {
        *o /= n_traj as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Instruction, Simulate};
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_circuit(n: usize, rng: &mut StdRng, p2: f64) -> Circuit {
        let mut c = Circuit::new(n);
        for layer in 0..3 {
            for q in 0..n - 1 {
                if (q + layer) % 2 == 0 {
                    c.push(
                        Instruction::new(vec![q, q + 1], haar_unitary(4, rng), "U")
                            .with_error_rate(p2),
                    );
                }
            }
        }
        c
    }

    #[test]
    fn noiseless_trajectory_equals_pure_run() {
        let mut rng = StdRng::seed_from_u64(81);
        let circuit = sample_circuit(3, &mut rng, 0.0);
        let traj = run_trajectory(&circuit, &NoiseModel::NOISELESS, &mut rng);
        let pure = circuit.run_pure();
        for (a, b) in traj.probabilities().iter().zip(pure.probabilities()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn trajectories_converge_to_density_matrix() {
        let mut rng = StdRng::seed_from_u64(82);
        let circuit = sample_circuit(3, &mut rng, 0.08);
        let exact = circuit.run_noisy(&NoiseModel::NOISELESS).probabilities();
        let est = trajectory_probabilities(&circuit, &NoiseModel::NOISELESS, 4000, &mut rng);
        let linf = exact
            .iter()
            .zip(est.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(linf < 0.02, "trajectory vs exact deviation {linf}");
    }

    #[test]
    fn full_depolarizing_trajectories_mix() {
        let mut rng = StdRng::seed_from_u64(83);
        let mut circuit = Circuit::new(2);
        circuit.push(
            Instruction::new(vec![0, 1], haar_unitary(4, &mut rng), "U").with_error_rate(1.0),
        );
        let est = trajectory_probabilities(&circuit, &NoiseModel::NOISELESS, 8000, &mut rng);
        for p in est {
            assert!((p - 0.25).abs() < 0.03, "p = {p}");
        }
    }

    #[test]
    fn trajectory_states_stay_normalised() {
        let mut rng = StdRng::seed_from_u64(84);
        let circuit = sample_circuit(4, &mut rng, 0.2);
        for _ in 0..20 {
            let s = run_trajectory(&circuit, &NoiseModel::NOISELESS, &mut rng);
            assert!((s.norm_sqr() - 1.0).abs() < 1e-10);
        }
    }
}
