//! Monte-Carlo (quantum-trajectory) simulation of depolarizing noise on the
//! statevector — the scalable alternative to the exact density-matrix
//! simulator for larger registers.
//!
//! A `k`-qubit depolarizing channel of probability `p` is realized exactly
//! in distribution by applying, with probability `p`, a uniformly random
//! `k`-qubit Pauli (identity included).

use crate::batch::BatchRunner;
use crate::chunk::ChunkPolicy;
use crate::circuit::{Circuit, NoiseModel};
use crate::engine::SimEngine;
use crate::plan::ExecPlan;
use crate::state::StateVector;
use rand::rngs::StdRng;
use rand::Rng;

/// Runs one stochastic trajectory of the circuit under its per-gate
/// depolarizing annotations, returning the final pure state.
///
/// One-shot convenience over [`SimEngine::run_trajectory`] (the state is
/// moved out of the engine, not copied); batched callers keep one engine
/// and one [`ExecPlan`] alive (or use
/// [`trajectory_probabilities_batched`]) to amortize both the
/// amplitude-buffer allocation and the plan build.
pub fn run_trajectory(circuit: &Circuit, noise: &NoiseModel, rng: &mut impl Rng) -> StateVector {
    let mut engine = SimEngine::new(circuit.n_qubits());
    engine.run_trajectory(circuit, noise, rng);
    engine.take_state()
}

/// Estimates outcome probabilities by averaging `n_traj` trajectories.
///
/// The circuit is compiled to an [`ExecPlan`] once and every trajectory
/// executes the plan (the instruction walk is kept as the fallback for
/// circuits a plan cannot express).
pub fn trajectory_probabilities(
    circuit: &Circuit,
    noise: &NoiseModel,
    n_traj: usize,
    rng: &mut impl Rng,
) -> Vec<f64> {
    let dim = 1usize << circuit.n_qubits();
    let mut acc = vec![0.0; dim];
    let mut engine = SimEngine::new(circuit.n_qubits());
    let plan = ExecPlan::build(circuit, noise).ok();
    for _ in 0..n_traj {
        match &plan {
            Some(plan) => engine.run_plan_trajectory(plan, rng),
            None => engine.run_trajectory_walk(circuit, noise, rng),
        }
        .accumulate_probabilities(&mut acc);
    }
    for a in acc.iter_mut() {
        *a /= n_traj as f64;
    }
    acc
}

/// Number of fixed-size chunks a trajectory ensemble is split into. A pure
/// function of the ensemble size — never of the worker count — so batched
/// estimates are deterministic for a given master seed.
fn trajectory_chunks(n_traj: usize) -> usize {
    n_traj.clamp(1, 64)
}

/// Estimates outcome probabilities by averaging `n_traj` trajectories,
/// fanned across [`BatchRunner`] workers (`workers` follows the
/// [`BatchRunner::with_workers`] zero-means-default convention). The
/// ensemble is split into fixed-size chunks with per-chunk
/// RNG streams derived from `master_seed`, so the estimate is bit-identical
/// for any worker count.
///
/// The circuit is compiled to an [`ExecPlan`] once, shared read-only by all
/// workers (the instruction walk is kept as the fallback for circuits a
/// plan cannot express — same RNG streams, so the determinism contract is
/// unchanged).
pub fn trajectory_probabilities_batched(
    circuit: &Circuit,
    noise: &NoiseModel,
    n_traj: usize,
    master_seed: u64,
    workers: usize,
) -> Vec<f64> {
    match ExecPlan::build(circuit, noise) {
        Ok(plan) => trajectory_probabilities_batched_plan(&plan, n_traj, master_seed, workers),
        Err(_) => batched_ensemble(
            circuit.n_qubits(),
            n_traj,
            master_seed,
            workers,
            |engine, rng| {
                engine.run_trajectory_walk(circuit, noise, rng);
            },
        ),
    }
}

/// [`trajectory_probabilities_batched`] over an already-compiled
/// [`ExecPlan`] — the entry point for callers scoring one compiled circuit
/// against many ensemble configurations.
pub fn trajectory_probabilities_batched_plan(
    plan: &ExecPlan,
    n_traj: usize,
    master_seed: u64,
    workers: usize,
) -> Vec<f64> {
    batched_ensemble(
        plan.n_qubits(),
        n_traj,
        master_seed,
        workers,
        |engine, rng| {
            engine.run_plan_trajectory(plan, rng);
        },
    )
}

/// The shared chunked-ensemble driver behind the batched estimators: fans
/// `n_traj` runs of `run_one` across workers and averages the accumulated
/// probabilities.
fn batched_ensemble(
    n: usize,
    n_traj: usize,
    master_seed: u64,
    workers: usize,
    run_one: impl Fn(&mut SimEngine, &mut StdRng) + Sync,
) -> Vec<f64> {
    let dim = 1usize << n;
    if n_traj == 0 {
        return vec![0.0; dim];
    }
    let chunks = trajectory_chunks(n_traj);
    // Above the chunked-kernel threshold, parallelism moves *inside* each
    // trajectory (amplitude-parallel ops, trajectories in sequence): one
    // `2^n` amplitude buffer total instead of one per worker, with every
    // core still busy. Below it, trajectories fan out as before. Either
    // way the RNG streams are per chunk index, so the estimate stays
    // bit-identical for any worker count.
    let amp_parallel = n >= ChunkPolicy::MIN_PARALLEL_QUBITS;
    let runner = BatchRunner::new(master_seed).with_workers(if amp_parallel { 1 } else { workers });
    let chunk_policy = if amp_parallel {
        ChunkPolicy::with_workers(workers)
    } else {
        ChunkPolicy::scalar()
    };
    let partials = runner.run(chunks, |index, rng| {
        // Chunk `index` owns trajectories [lo, hi) of the ensemble.
        let lo = index * n_traj / chunks;
        let hi = (index + 1) * n_traj / chunks;
        let mut engine = SimEngine::new(n).with_chunk_policy(chunk_policy);
        let mut acc = vec![0.0; dim];
        for _ in lo..hi {
            run_one(&mut engine, rng);
            engine.accumulate_probabilities(&mut acc);
        }
        acc
    });
    let mut out = vec![0.0; dim];
    for partial in partials {
        for (o, p) in out.iter_mut().zip(partial) {
            *o += p;
        }
    }
    for o in out.iter_mut() {
        *o /= n_traj as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Instruction, Simulate};
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_circuit(n: usize, rng: &mut StdRng, p2: f64) -> Circuit {
        let mut c = Circuit::new(n);
        for layer in 0..3 {
            for q in 0..n - 1 {
                if (q + layer) % 2 == 0 {
                    c.push(
                        Instruction::new(vec![q, q + 1], haar_unitary(4, rng), "U")
                            .with_error_rate(p2),
                    );
                }
            }
        }
        c
    }

    #[test]
    fn noiseless_trajectory_equals_pure_run() {
        let mut rng = StdRng::seed_from_u64(81);
        let circuit = sample_circuit(3, &mut rng, 0.0);
        let traj = run_trajectory(&circuit, &NoiseModel::NOISELESS, &mut rng);
        let pure = circuit.run_pure();
        for (a, b) in traj.probabilities().iter().zip(pure.probabilities()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn trajectories_converge_to_density_matrix() {
        let mut rng = StdRng::seed_from_u64(82);
        let circuit = sample_circuit(3, &mut rng, 0.08);
        let exact = circuit.run_noisy(&NoiseModel::NOISELESS).probabilities();
        let est = trajectory_probabilities(&circuit, &NoiseModel::NOISELESS, 4000, &mut rng);
        let linf = exact
            .iter()
            .zip(est.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(linf < 0.02, "trajectory vs exact deviation {linf}");
    }

    #[test]
    fn full_depolarizing_trajectories_mix() {
        let mut rng = StdRng::seed_from_u64(83);
        let mut circuit = Circuit::new(2);
        circuit.push(
            Instruction::new(vec![0, 1], haar_unitary(4, &mut rng), "U").with_error_rate(1.0),
        );
        let est = trajectory_probabilities(&circuit, &NoiseModel::NOISELESS, 8000, &mut rng);
        for p in est {
            assert!((p - 0.25).abs() < 0.03, "p = {p}");
        }
    }

    #[test]
    fn trajectory_states_stay_normalised() {
        let mut rng = StdRng::seed_from_u64(84);
        let circuit = sample_circuit(4, &mut rng, 0.2);
        for _ in 0..20 {
            let s = run_trajectory(&circuit, &NoiseModel::NOISELESS, &mut rng);
            assert!((s.norm_sqr() - 1.0).abs() < 1e-10);
        }
    }
}
