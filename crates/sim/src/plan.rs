//! Compiled execution plans: ahead-of-time specialization of a circuit (and
//! its noise annotations) into a flat stream of pre-classified kernel ops.
//!
//! The instruction walk ([`crate::engine::SimEngine::run_pure_walk`] /
//! [`crate::engine::SimEngine::run_trajectory_walk`]) re-does per gate, per
//! run, work that depends only on the circuit: it chases a heap [`CMat`]
//! behind every [`Instruction`], re-detects the kernel case
//! (diagonal / controlled-phase / dense) inside `apply_gate`, re-resolves
//! the depolarizing rate from the noise model, and injects trajectory
//! Paulis through the generic dense path. For Monte-Carlo ensembles that
//! walk the same circuit thousands of times this overhead dominates the
//! actual kernel arithmetic on small registers.
//!
//! [`ExecPlan::build`] pays all of it **once**: each [`PlanOp`] is a `Copy`
//! value carrying a pre-classified [`KernelOp`] (opcode + matrix inlined as
//! a stack [`Mat2`]/[`Mat4`], bit positions precomputed) and the
//! already-resolved depolarizing rate. Plan construction also fuses runs of
//! noiseless single-qubit gates per wire and absorbs them into adjacent
//! two-qubit ops where the noise annotations permit (a gate participates in
//! fusion only when its resolved rate is exactly zero, so the trajectory
//! RNG stream is identical to the instruction walk's — same draws, same
//! order). Fusion also extends beyond 1q runs: adjacent same-pair 2q ops
//! collapse into one [`Mat4`], including across in-between zero-rate
//! diagonal ops, which commute (see [`ExecPlan::build_with`]). Execution
//! injects trajectory Paulis through the dedicated bit-twiddled kernels
//! in [`ashn_ir::kernels`], never touching a `CMat` — and on large
//! registers the `*_chunked` executors split every op's amplitude sweep
//! across scoped threads ([`crate::chunk`]), bit-identically to the
//! scalar path.
//!
//! The instruction walk remains the differential reference:
//! `crates/sim/tests/plan_differential.rs` pins plan execution against it
//! at `1e-12` (bit-identically when nothing fuses).
//!
//! # Examples
//!
//! ```
//! use ashn_ir::{Circuit, Instruction};
//! use ashn_math::CMat;
//! use ashn_sim::{ExecPlan, SimEngine};
//!
//! let h = CMat::from_rows_f64(&[
//!     &[std::f64::consts::FRAC_1_SQRT_2, std::f64::consts::FRAC_1_SQRT_2],
//!     &[std::f64::consts::FRAC_1_SQRT_2, -std::f64::consts::FRAC_1_SQRT_2],
//! ]);
//! let mut circuit = Circuit::new(1);
//! circuit.push(Instruction::new(vec![0], h, "H"));
//! let plan = ExecPlan::pure(&circuit).unwrap();
//! let mut engine = SimEngine::new(1);
//! let p = engine.run_plan(&plan).probabilities();
//! assert!((p[0] - 0.5).abs() < 1e-12);
//! ```

use crate::chunk::run_chunked;
use crate::circuit::NoiseModel;
use crate::state::MAX_QUBITS;
use ashn_ir::kernels::{
    apply_cphase_range, apply_dense_1q_range, apply_dense_2q_range, apply_diag_1q_range,
    apply_diag_2q_range, apply_pauli_x_range, apply_pauli_y_range, apply_pauli_z_range,
    diagonal_of_1q, diagonal_of_2q, pauli_of_1q, Pauli,
};
use ashn_ir::{Circuit, Instruction};
use ashn_math::{Complex, Mat2, Mat4};
use rand::Rng;
use std::fmt;

/// Why a circuit could not be compiled to an [`ExecPlan`]. Callers fall
/// back to the instruction walk (the high-level entry points in this crate
/// do so automatically).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// A gate acts on three or more qubits; only the specialized 1q/2q
    /// kernels have plan opcodes.
    UnsupportedArity {
        /// Arity of the offending gate.
        qubits: usize,
    },
    /// The register size is outside the supported
    /// `1..=`[`MAX_QUBITS`](crate::MAX_QUBITS) range.
    RegisterOutOfRange {
        /// The offending register size.
        n: usize,
    },
    /// An instruction references a wire outside the circuit register.
    /// `Circuit::push` maintains this invariant, but the instruction list
    /// is a public field, so hand-assembled circuits can violate it; the
    /// plan compiler reports it instead of panicking on bit arithmetic.
    WireOutOfRange {
        /// The offending wire index.
        qubit: usize,
        /// Register size.
        n: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnsupportedArity { qubits } => {
                write!(f, "no plan opcode for a {qubits}-qubit gate (max 2)")
            }
            PlanError::RegisterOutOfRange { n } => {
                write!(
                    f,
                    "register size {n} outside the supported 1..={MAX_QUBITS} range"
                )
            }
            PlanError::WireOutOfRange { qubit, n } => {
                write!(
                    f,
                    "instruction wire {qubit} out of range for a {n}-qubit register"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// One pre-classified kernel invocation. Bit positions (`p = n − 1 − qubit`)
/// and matrices are precomputed at plan build; applying an op is a direct
/// dispatch into the matching `*_at` kernel of [`ashn_ir::kernels`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KernelOp {
    /// Dense single-qubit unitary at bit position `p`.
    Dense1q {
        /// Bit position of the target qubit.
        p: u8,
        /// The unitary, inlined on the stack.
        m: Mat2,
    },
    /// Diagonal single-qubit gate (Rz-like) at bit position `p`.
    Diag1q {
        /// Bit position of the target qubit.
        p: u8,
        /// `|0⟩` diagonal entry.
        d0: Complex,
        /// `|1⟩` diagonal entry.
        d1: Complex,
    },
    /// Dense two-qubit unitary at bit positions `(p0, p1)` (`p0` = high
    /// matrix bit).
    Dense2q {
        /// Bit position of the gate's first (high) qubit.
        p0: u8,
        /// Bit position of the gate's second (low) qubit.
        p1: u8,
        /// The unitary, inlined on the stack.
        m: Mat4,
    },
    /// Diagonal two-qubit gate (ZZ-like) at bit positions `(p0, p1)`.
    Diag2q {
        /// Bit position of the gate's first (high) qubit.
        p0: u8,
        /// Bit position of the gate's second (low) qubit.
        p1: u8,
        /// The diagonal entries.
        d: [Complex; 4],
    },
    /// Controlled-phase gate (diag `[1, 1, 1, phase]`, e.g. CZ).
    CPhase {
        /// Bit position of the gate's first (high) qubit.
        p0: u8,
        /// Bit position of the gate's second (low) qubit.
        p1: u8,
        /// Phase multiplying the `|11⟩` subspace.
        phase: Complex,
    },
    /// Pauli `X` at bit position `p` (pure amplitude swaps).
    PauliX {
        /// Bit position of the target qubit.
        p: u8,
    },
    /// Pauli `Y` at bit position `p` (component shuffles).
    PauliY {
        /// Bit position of the target qubit.
        p: u8,
    },
    /// Pauli `Z` at bit position `p` (sign flips on the set-bit half).
    PauliZ {
        /// Bit position of the target qubit.
        p: u8,
    },
}

impl KernelOp {
    /// Size of the op's compressed index space over `len` amplitudes: the
    /// pair space (`len / 2`) for single-qubit ops, the quad space
    /// (`len / 4`) for two-qubit ops. Chunked execution partitions this
    /// space — disjoint compressed ranges touch disjoint amplitudes.
    #[inline]
    fn index_space(&self, len: usize) -> usize {
        match self {
            KernelOp::Dense1q { .. }
            | KernelOp::Diag1q { .. }
            | KernelOp::PauliX { .. }
            | KernelOp::PauliY { .. }
            | KernelOp::PauliZ { .. } => len >> 1,
            KernelOp::Dense2q { .. } | KernelOp::Diag2q { .. } | KernelOp::CPhase { .. } => {
                len >> 2
            }
        }
    }

    /// Applies the op over the compressed index range `lo..hi`.
    #[inline]
    fn apply_range(&self, amps: &mut [Complex], lo: usize, hi: usize) {
        match self {
            KernelOp::Dense1q { p, m } => apply_dense_1q_range(amps, *p as usize, m, lo, hi),
            KernelOp::Diag1q { p, d0, d1 } => {
                apply_diag_1q_range(amps, *p as usize, *d0, *d1, lo, hi)
            }
            KernelOp::Dense2q { p0, p1, m } => {
                apply_dense_2q_range(amps, *p0 as usize, *p1 as usize, m, lo, hi)
            }
            KernelOp::Diag2q { p0, p1, d } => {
                apply_diag_2q_range(amps, *p0 as usize, *p1 as usize, *d, lo, hi)
            }
            KernelOp::CPhase { p0, p1, phase } => {
                apply_cphase_range(amps, *p0 as usize, *p1 as usize, *phase, lo, hi)
            }
            KernelOp::PauliX { p } => apply_pauli_x_range(amps, *p as usize, lo, hi),
            KernelOp::PauliY { p } => apply_pauli_y_range(amps, *p as usize, lo, hi),
            KernelOp::PauliZ { p } => apply_pauli_z_range(amps, *p as usize, lo, hi),
        }
    }

    /// Applies the op to raw amplitudes, scalar (full range, one thread).
    #[inline]
    fn apply(&self, amps: &mut [Complex]) {
        self.apply_range(amps, 0, self.index_space(amps.len()));
    }

    /// Applies the op across `workers` scoped threads over the fixed chunk
    /// grid — bit-identical to [`KernelOp::apply`] at any worker count.
    #[inline]
    fn apply_chunked(&self, amps: &mut [Complex], workers: usize) {
        let space = self.index_space(amps.len());
        run_chunked(amps, space, workers, |a, lo, hi| {
            self.apply_range(a, lo, hi)
        });
    }
}

/// One op of the compiled stream: the kernel plus its noise-resolved
/// depolarizing rate and the bit positions trajectory Paulis are injected
/// at (in source-gate qubit order, so the RNG stream matches the walk).
#[derive(Clone, Copy, Debug)]
pub struct PlanOp {
    /// The pre-classified kernel.
    pub kernel: KernelOp,
    /// Depolarizing probability applied after the op, already resolved
    /// against the noise model at build time.
    pub rate: f64,
    noise_pos: [u8; 2],
    noise_arity: u8,
}

impl PlanOp {
    /// Bit positions of the source gate's qubits, in gate order — the sites
    /// trajectory noise is injected at.
    pub fn noise_positions(&self) -> &[u8] {
        &self.noise_pos[..self.noise_arity as usize]
    }
}

/// A circuit compiled, together with a noise model, into a flat stream of
/// `Copy` ops: kernels pre-classified, matrices inlined, bit masks and
/// depolarizing rates precomputed, noiseless single-qubit runs fused.
#[derive(Clone, Debug)]
pub struct ExecPlan {
    n: usize,
    phase: Complex,
    ops: Vec<PlanOp>,
    source_gates: usize,
}

/// A 1q/2q op under construction: fusion works on the stack matrices, and
/// classification into [`KernelOp`]s happens once the stream is final.
enum Staged {
    One {
        q: usize,
        m: Mat2,
        rate: f64,
    },
    Two {
        q0: usize,
        q1: usize,
        m: Mat4,
        rate: f64,
    },
}

impl ExecPlan {
    /// Compiles `circuit` against `noise` (per-gate explicit rates override
    /// the model's per-arity defaults, exactly as in
    /// [`crate::circuit::NoiseModel`]).
    ///
    /// # Errors
    ///
    /// [`PlanError::UnsupportedArity`] when a gate acts on ≥ 3 qubits,
    /// [`PlanError::RegisterOutOfRange`] outside `1..=`[`MAX_QUBITS`](crate::MAX_QUBITS)
    /// qubits.
    pub fn build(circuit: &Circuit, noise: &NoiseModel) -> Result<Self, PlanError> {
        Self::build_with(circuit, |g| noise.rate_for(g))
    }

    /// Compiles `circuit` with every rate resolved to zero — the plan for
    /// noiseless (pure) execution, with maximal single-qubit fusion.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExecPlan::build`].
    pub fn pure(circuit: &Circuit) -> Result<Self, PlanError> {
        Self::build_with(circuit, |_| 0.0)
    }

    /// Compiles `circuit` with `rate_of` resolving each instruction's
    /// depolarizing rate — the general entry point external noise models
    /// (e.g. the quantum-volume duration-proportional schedule) use to
    /// avoid materializing an annotated copy of the circuit.
    ///
    /// A gate joins single-qubit fusion only when its resolved rate is
    /// exactly `0.0`: fused gates draw no randomness and suffer no noise
    /// event in the walk either, so the trajectory RNG stream is preserved
    /// draw for draw.
    ///
    /// Beyond 1q runs, two-qubit fusion collapses an earlier **zero-rate**
    /// 2q op on the same wire pair into an incoming 2q gate whenever the
    /// earlier op commutes forward to the incoming gate's position:
    /// in-between ops touching neither wire always commute, and in-between
    /// *zero-rate diagonal* ops on a shared wire commute when the earlier
    /// op is itself diagonal (diagonals commute among themselves — the
    /// same computational-basis structure [`ashn_ir::classify`] keys
    /// commutation checks on). The combined op is staged at the incoming
    /// gate's position with the incoming gate's rate, so every noise draw
    /// keeps its place in the RNG stream: only draw-free ops ever move.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExecPlan::build`].
    pub fn build_with(
        circuit: &Circuit,
        rate_of: impl Fn(&Instruction) -> f64,
    ) -> Result<Self, PlanError> {
        let _span = ashn_telemetry::span!("sim.plan.build");
        let n = circuit.n_qubits();
        if !(1..=MAX_QUBITS).contains(&n) {
            return Err(PlanError::RegisterOutOfRange { n });
        }
        // Fused-away 2q ops leave a `None` tombstone so `absorber` indices
        // stay stable.
        let mut staged: Vec<Option<Staged>> = Vec::with_capacity(circuit.gates().len());
        // Per wire: the product of noiseless 1q gates not yet attached to an
        // op (applied-first on the right), and the index/side of the trailing
        // zero-rate 2q op that is still the wire's most recent toucher (the
        // target trailing noiseless 1q gates are absorbed into).
        let mut pending: Vec<Option<Mat2>> = vec![None; n];
        let mut absorber: Vec<Option<(usize, bool)>> = vec![None; n];
        for g in circuit.gates() {
            if let Some(&q) = g.qubits.iter().find(|&&q| q >= n) {
                return Err(PlanError::WireOutOfRange { qubit: q, n });
            }
            let rate = rate_of(g);
            match g.qubits[..] {
                [q] => {
                    let m = Mat2::try_from(&g.matrix).expect("1q instruction carries a 2x2 matrix");
                    let m = match pending[q].take() {
                        Some(prev) => m.matmul(&prev),
                        None => m,
                    };
                    if rate > 0.0 {
                        staged.push(Some(Staged::One { q, m, rate }));
                        absorber[q] = None;
                    } else {
                        pending[q] = Some(m);
                    }
                }
                [q0, q1] => {
                    let mut m =
                        Mat4::try_from(&g.matrix).expect("2q instruction carries a 4x4 matrix");
                    if let Some(u) = pending[q0].take() {
                        m = m.matmul(&u.kron(&Mat2::identity()));
                    }
                    if let Some(u) = pending[q1].take() {
                        m = m.matmul(&Mat2::identity().kron(&u));
                    }
                    // Same-pair fusion: collapse an earlier zero-rate 2q op
                    // on {q0, q1} that commutes forward to this position.
                    // The combined op is staged *here*, in this gate's wire
                    // order and with this gate's rate, so a noise draw of
                    // this gate keeps its place in the RNG stream (the
                    // fused-away op was draw-free).
                    if let Some(prev_idx) = find_fusable_2q(&staged, q0, q1) {
                        if let Some(Staged::Two { q0: a0, m: pm, .. }) = staged[prev_idx].take() {
                            let prev = if a0 == q0 { pm } else { swap_conjugate(&pm) };
                            m = m.matmul(&prev);
                        }
                    }
                    let idx = staged.len();
                    staged.push(Some(Staged::Two { q0, q1, m, rate }));
                    let eligible = rate <= 0.0;
                    absorber[q0] = eligible.then_some((idx, true));
                    absorber[q1] = eligible.then_some((idx, false));
                }
                _ => {
                    return Err(PlanError::UnsupportedArity {
                        qubits: g.qubits.len(),
                    })
                }
            }
        }
        // Flush trailing noiseless 1q runs: absorb into the wire's last
        // zero-rate 2q op when nothing touched the wire since (sound because
        // disjoint-wire ops and the absorbed unitary commute, and no noise
        // event separates them); otherwise emit a standalone zero-rate op.
        for q in 0..n {
            if let Some(u) = pending[q].take() {
                match absorber[q] {
                    Some((idx, high)) => {
                        if let Some(Staged::Two { m, .. }) = &mut staged[idx] {
                            let e = if high {
                                u.kron(&Mat2::identity())
                            } else {
                                Mat2::identity().kron(&u)
                            };
                            *m = e.matmul(m);
                        }
                    }
                    None => staged.push(Some(Staged::One { q, m: u, rate: 0.0 })),
                }
            }
        }
        let ops = staged
            .into_iter()
            .flatten()
            .map(|s| classify(n, s))
            .collect();
        Ok(Self {
            n,
            phase: circuit.phase,
            ops,
            source_gates: circuit.gates().len(),
        })
    }

    /// Register size the plan was compiled for.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Global phase of the source circuit.
    pub fn phase(&self) -> Complex {
        self.phase
    }

    /// The compiled op stream.
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// Number of instructions in the source circuit (≥ [`ExecPlan::ops`]'s
    /// length; the difference is what fusion absorbed).
    pub fn source_gates(&self) -> usize {
        self.source_gates
    }

    /// `true` when no op carries a nonzero depolarizing rate (trajectory
    /// execution then never draws randomness).
    pub fn is_noiseless(&self) -> bool {
        self.ops.iter().all(|op| op.rate <= 0.0)
    }

    /// Executes the plan without noise on raw amplitudes (any normalized
    /// initial state; [`crate::engine::SimEngine::run_plan`] drives this
    /// from `phase·|0…0⟩`).
    ///
    /// # Panics
    ///
    /// Panics when `amps` does not match the plan's register dimension.
    pub fn execute_pure(&self, amps: &mut [Complex]) {
        self.execute_pure_chunked(amps, 1);
    }

    /// [`ExecPlan::execute_pure`] with each op's amplitude sweep split
    /// across `workers` scoped threads over the fixed chunk grid
    /// ([`crate::ChunkPolicy`]) — bit-identical to the scalar path at any
    /// worker count.
    ///
    /// # Panics
    ///
    /// Panics when `amps` does not match the plan's register dimension.
    pub fn execute_pure_chunked(&self, amps: &mut [Complex], workers: usize) {
        assert_eq!(amps.len(), 1usize << self.n, "dimension mismatch");
        if workers <= 1 {
            for op in &self.ops {
                op.kernel.apply(amps);
            }
            return;
        }
        // The multi-worker path only runs on large registers (ms-scale
        // sweeps), so one bulk add per execute is free; the scalar path
        // above — the per-trajectory hot loop — stays untouched.
        let telemetry = ashn_telemetry::current();
        telemetry.add("sim.exec.chunked", 1);
        telemetry.add("sim.exec.chunked_ops", self.ops.len() as u64);
        for op in &self.ops {
            op.kernel.apply_chunked(amps, workers);
        }
    }

    /// Executes one stochastic trajectory: after each op, with its resolved
    /// probability, a uniformly random Pauli (identity included) is drawn
    /// per touched qubit and injected through the bit-twiddled kernels.
    /// The draw sequence is identical to
    /// [`crate::engine::SimEngine::run_trajectory_walk`]'s.
    ///
    /// # Panics
    ///
    /// Panics when `amps` does not match the plan's register dimension.
    pub fn execute_trajectory(&self, amps: &mut [Complex], rng: &mut impl Rng) {
        self.execute_trajectory_chunked(amps, rng, 1);
    }

    /// [`ExecPlan::execute_trajectory`] with amplitude sweeps split across
    /// `workers` scoped threads. All randomness is drawn on the calling
    /// thread between ops, so the draw sequence — and, by chunked
    /// determinism, the resulting state — is bit-identical to the scalar
    /// path at any worker count.
    ///
    /// # Panics
    ///
    /// Panics when `amps` does not match the plan's register dimension.
    pub fn execute_trajectory_chunked(
        &self,
        amps: &mut [Complex],
        rng: &mut impl Rng,
        workers: usize,
    ) {
        assert_eq!(amps.len(), 1usize << self.n, "dimension mismatch");
        if workers > 1 {
            // Same rule as `execute_pure_chunked`: count only the chunked
            // (large-register) path, never the per-trajectory scalar loop.
            ashn_telemetry::current().add("sim.exec.chunked", 1);
        }
        for op in &self.ops {
            if workers <= 1 {
                op.kernel.apply(amps);
            } else {
                op.kernel.apply_chunked(amps, workers);
            }
            if op.rate > 0.0 && rng.gen::<f64>() < op.rate {
                for &p in op.noise_positions() {
                    let pauli = match rng.gen_range(0..4usize) {
                        1 => KernelOp::PauliX { p },
                        2 => KernelOp::PauliY { p },
                        3 => KernelOp::PauliZ { p },
                        _ => continue,
                    };
                    if workers <= 1 {
                        pauli.apply(amps);
                    } else {
                        pauli.apply_chunked(amps, workers);
                    }
                }
            }
        }
    }
}

/// Scans the staged stream backward for an earlier zero-rate 2q op on
/// exactly `{q0, q1}` that can be commuted forward to the stream's end.
///
/// Soundness: tombstones and ops on disjoint wires always commute past;
/// an op sharing a wire blocks the commute unless both it and the
/// candidate are diagonal in the computational basis (diagonals commute
/// among themselves) *and* it is zero-rate (a trajectory X/Y injection on
/// a shared wire would not commute with a diagonal). Staged 1q ops always
/// carry noise — zero-rate ones live in `pending` — so a shared-wire 1q
/// op blocks unconditionally. The scan stops at the first blocker.
fn find_fusable_2q(staged: &[Option<Staged>], q0: usize, q1: usize) -> Option<usize> {
    let mut through_diagonals = false;
    for idx in (0..staged.len()).rev() {
        let Some(s) = &staged[idx] else { continue };
        match s {
            Staged::Two {
                q0: a0,
                q1: a1,
                m,
                rate,
            } => {
                let same_pair = (*a0 == q0 && *a1 == q1) || (*a0 == q1 && *a1 == q0);
                if same_pair {
                    let ok = *rate <= 0.0 && (!through_diagonals || diagonal_of_2q(m).is_some());
                    return ok.then_some(idx);
                }
                if [*a0, *a1].iter().any(|&a| a == q0 || a == q1) {
                    if *rate > 0.0 || diagonal_of_2q(m).is_none() {
                        return None;
                    }
                    through_diagonals = true;
                }
            }
            Staged::One { q, .. } => {
                if *q == q0 || *q == q1 {
                    return None;
                }
            }
        }
    }
    None
}

/// Conjugates a two-qubit matrix by SWAP — an exact entry permutation (no
/// floating-point arithmetic), re-expressing a gate staged on `(q1, q0)`
/// in `(q0, q1)` bit order.
fn swap_conjugate(m: &Mat4) -> Mat4 {
    const SIGMA: [usize; 4] = [0, 2, 1, 3];
    Mat4::from_fn(|r, c| m[(SIGMA[r], SIGMA[c])])
}

/// Classifies one staged op into its final [`KernelOp`], recognizing the
/// same structural cases the dispatching walk detects per application —
/// plus the exact Paulis, which get their dedicated bit kernels.
fn classify(n: usize, s: Staged) -> PlanOp {
    match s {
        Staged::One { q, m, rate } => {
            let p = (n - 1 - q) as u8;
            let kernel = match pauli_of_1q(&m) {
                Some(Pauli::X) => KernelOp::PauliX { p },
                Some(Pauli::Y) => KernelOp::PauliY { p },
                Some(Pauli::Z) => KernelOp::PauliZ { p },
                None => match diagonal_of_1q(&m) {
                    Some((d0, d1)) => KernelOp::Diag1q { p, d0, d1 },
                    None => KernelOp::Dense1q { p, m },
                },
            };
            PlanOp {
                kernel,
                rate,
                noise_pos: [p, 0],
                noise_arity: 1,
            }
        }
        Staged::Two { q0, q1, m, rate } => {
            let p0 = (n - 1 - q0) as u8;
            let p1 = (n - 1 - q1) as u8;
            let kernel = match diagonal_of_2q(&m) {
                Some(d) if d[0] == Complex::ONE && d[1] == Complex::ONE && d[2] == Complex::ONE => {
                    KernelOp::CPhase {
                        p0,
                        p1,
                        phase: d[3],
                    }
                }
                Some(d) => KernelOp::Diag2q { p0, p1, d },
                None => KernelOp::Dense2q { p0, p1, m },
            };
            PlanOp {
                kernel,
                rate,
                noise_pos: [p0, p1],
                noise_arity: 2,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_ir::Instruction;
    use ashn_math::randmat::haar_unitary;
    use ashn_math::{c, CMat};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn x_gate() -> CMat {
        CMat::from_rows_f64(&[&[0.0, 1.0], &[1.0, 0.0]])
    }

    #[test]
    fn plan_classifies_structural_gates() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut circuit = Circuit::new(3);
        circuit.push(Instruction::new(vec![0], x_gate(), "X").with_error_rate(0.1));
        circuit.push(
            Instruction::new(
                vec![1],
                CMat::diag(&[Complex::cis(0.2), Complex::cis(-0.2)]),
                "Rz",
            )
            .with_error_rate(0.1),
        );
        circuit.push(
            Instruction::new(
                vec![0, 2],
                CMat::diag(&[Complex::ONE, Complex::ONE, Complex::ONE, c(-1.0, 0.0)]),
                "CZ",
            )
            .with_error_rate(0.1),
        );
        circuit.push(
            Instruction::new(vec![1, 2], haar_unitary(4, &mut rng), "U").with_error_rate(0.1),
        );
        let plan = ExecPlan::build(&circuit, &NoiseModel::NOISELESS).unwrap();
        let kinds: Vec<_> = plan.ops().iter().map(|op| op.kernel).collect();
        assert!(matches!(kinds[0], KernelOp::PauliX { p: 2 }));
        assert!(matches!(kinds[1], KernelOp::Diag1q { p: 1, .. }));
        assert!(matches!(kinds[2], KernelOp::CPhase { p0: 2, p1: 0, .. }));
        assert!(matches!(kinds[3], KernelOp::Dense2q { p0: 1, p1: 0, .. }));
        assert_eq!(plan.source_gates(), 4);
        assert!(!plan.is_noiseless());
    }

    #[test]
    fn noiseless_singles_fuse_into_neighbors() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut circuit = Circuit::new(2);
        // run of 1q gates, a 2q gate, then trailing 1q gates: everything
        // should collapse into a single dense 2q op.
        circuit.push(Instruction::new(vec![0], haar_unitary(2, &mut rng), "a"));
        circuit.push(Instruction::new(vec![0], haar_unitary(2, &mut rng), "b"));
        circuit.push(Instruction::new(vec![1], haar_unitary(2, &mut rng), "c"));
        circuit.push(Instruction::new(vec![0, 1], haar_unitary(4, &mut rng), "U"));
        circuit.push(Instruction::new(vec![1], haar_unitary(2, &mut rng), "d"));
        let plan = ExecPlan::pure(&circuit).unwrap();
        assert_eq!(plan.ops().len(), 1, "ops: {:?}", plan.ops().len());
        assert!(matches!(plan.ops()[0].kernel, KernelOp::Dense2q { .. }));
        // The fused op reproduces the circuit unitary.
        let mut amps = vec![Complex::ZERO; 4];
        amps[0] = Complex::ONE;
        plan.execute_pure(&mut amps);
        let u = circuit.unitary();
        for (r, a) in amps.iter().enumerate() {
            assert!((*a - u[(r, 0)]).abs() < 1e-12, "row {r}");
        }
    }

    #[test]
    fn noisy_singles_do_not_fuse() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut circuit = Circuit::new(2);
        circuit.push(Instruction::new(vec![0], haar_unitary(2, &mut rng), "a"));
        circuit.push(Instruction::new(vec![0], haar_unitary(2, &mut rng), "b"));
        let noise = NoiseModel {
            one_qubit: 0.01,
            two_qubit: 0.0,
        };
        let plan = ExecPlan::build(&circuit, &noise).unwrap();
        assert_eq!(plan.ops().len(), 2);
        assert!((plan.ops()[0].rate - 0.01).abs() < 1e-15);
        assert_eq!(plan.ops()[0].noise_positions(), &[1]);
    }

    #[test]
    fn noisy_two_qubit_ops_keep_gate_order_noise_sites() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut circuit = Circuit::new(3);
        circuit.push(
            Instruction::new(vec![2, 0], haar_unitary(4, &mut rng), "U").with_error_rate(0.2),
        );
        let plan = ExecPlan::build(&circuit, &NoiseModel::NOISELESS).unwrap();
        // qubit 2 → bit 0, qubit 0 → bit 2, in gate order.
        assert_eq!(plan.ops()[0].noise_positions(), &[0, 2]);
    }

    #[test]
    fn three_qubit_gates_are_rejected() {
        let mut circuit = Circuit::new(3);
        let mut toffoli = CMat::identity(8);
        toffoli[(6, 6)] = Complex::ZERO;
        toffoli[(7, 7)] = Complex::ZERO;
        toffoli[(6, 7)] = Complex::ONE;
        toffoli[(7, 6)] = Complex::ONE;
        circuit.push(Instruction::new(vec![0, 1, 2], toffoli, "CCX"));
        assert_eq!(
            ExecPlan::pure(&circuit).unwrap_err(),
            PlanError::UnsupportedArity { qubits: 3 }
        );
    }

    #[test]
    fn out_of_range_wires_are_a_structured_error() {
        // Bypass `Circuit::push` validation: the instruction list is a
        // public field, so a hand-assembled circuit can reference wires
        // outside the register. The plan compiler must report it, not
        // panic in the bit-position arithmetic.
        let mut circuit = Circuit::new(2);
        circuit
            .instructions
            .push(Instruction::new(vec![0, 5], x_gate().kron(&x_gate()), "XX"));
        assert_eq!(
            ExecPlan::pure(&circuit).unwrap_err(),
            PlanError::WireOutOfRange { qubit: 5, n: 2 }
        );
        let mut one_q = Circuit::new(1);
        one_q
            .instructions
            .push(Instruction::new(vec![1], x_gate(), "X"));
        assert_eq!(
            ExecPlan::build(&one_q, &NoiseModel::NOISELESS).unwrap_err(),
            PlanError::WireOutOfRange { qubit: 1, n: 1 }
        );
    }

    #[test]
    fn zero_qubit_register_is_rejected() {
        let circuit = Circuit::new(0);
        assert_eq!(
            ExecPlan::pure(&circuit).unwrap_err(),
            PlanError::RegisterOutOfRange { n: 0 }
        );
    }
}
