//! Chunked amplitude-parallel kernel application: per-op multi-threading
//! *within* a single statevector.
//!
//! Trajectory-level parallelism ([`crate::BatchRunner`]) keeps every core
//! busy only when there are many runs; a single large register (n ≈ 20–26)
//! left all but one core idle. Here each kernel op's *compressed index
//! space* (the pair space of a 1q op, the quad space of a 2q op — see the
//! `*_range` kernels in [`ashn_ir::kernels`]) is split into a **fixed grid
//! of [`ChunkPolicy::CHUNKS_PER_OP`] chunks**, and `std::thread::scope`
//! workers pull chunks from a shared counter.
//!
//! ## Determinism
//!
//! Results are **bit-identical at any worker count**, twice over:
//!
//! * the chunk grid is a pure function of the op's index space — never of
//!   the worker count or of scheduling — mirroring the fixed-chunking
//!   guarantee [`crate::BatchRunner`] pins for trajectory ensembles; and
//! * every compressed index addresses a disjoint amplitude group that is
//!   read and written exactly once with the same arithmetic as the scalar
//!   kernel, so even the partition itself cannot change a single bit.
//!
//! The determinism suite in `crates/sim/tests/chunked.rs` asserts both
//! (1/2/8 workers, and chunked-vs-scalar) on n = 16…20 registers.
//!
//! ## When it pays
//!
//! Spawning scoped threads costs a few tens of microseconds per op, so
//! parallel application is only engaged at
//! [`ChunkPolicy::MIN_PARALLEL_QUBITS`] and above, where a dense kernel
//! sweep is hundreds of microseconds and the split wins. Below the
//! threshold every path degrades to the scalar kernels.

use ashn_math::Complex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How amplitude-parallel kernel application is resolved per run.
///
/// The policy separates *requested* workers from *engaged* workers: a
/// request of any size still runs scalar below the register threshold
/// ([`ChunkPolicy::MIN_PARALLEL_QUBITS`]), because thread-spawn overhead
/// would swamp the kernels. `0` requested workers means the machine
/// default ([`crate::batch::default_workers`], which honors the
/// `ASHN_WORKERS` environment override).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkPolicy {
    workers: usize,
}

impl Default for ChunkPolicy {
    /// The auto policy: machine-default workers, engaged only at or above
    /// the register threshold.
    fn default() -> Self {
        Self { workers: 0 }
    }
}

impl ChunkPolicy {
    /// Registers below this size always run the scalar kernels: at
    /// `n = 16` a dense 2q sweep touches 2^16 amplitudes (~1 MiB) and the
    /// per-op `std::thread::scope` spawn starts to pay for itself.
    pub const MIN_PARALLEL_QUBITS: usize = 16;

    /// Fixed number of chunks an op's compressed index space is split
    /// into, independent of the worker count (workers pull chunks from a
    /// shared counter, so stragglers do not serialize the op).
    pub const CHUNKS_PER_OP: usize = 64;

    /// Auto: machine-default workers above the threshold (same as
    /// `Default`).
    pub fn auto() -> Self {
        Self::default()
    }

    /// Always scalar, regardless of register size.
    pub fn scalar() -> Self {
        Self { workers: 1 }
    }

    /// An explicit worker count (`0` = machine default).
    pub fn with_workers(workers: usize) -> Self {
        Self { workers }
    }

    /// The worker count engaged for an `n`-qubit register: `1` below
    /// [`ChunkPolicy::MIN_PARALLEL_QUBITS`], the requested (or machine
    /// default) count at or above it.
    pub fn effective_workers(&self, n: usize) -> usize {
        if n < Self::MIN_PARALLEL_QUBITS {
            return 1;
        }
        match self.workers {
            0 => crate::batch::default_workers(),
            w => w,
        }
    }
}

/// Shared mutable view of the amplitude buffer for the scoped workers.
///
/// Chunks partition the compressed index space, and the `*_range` kernels
/// touch exactly the disjoint amplitude groups their range addresses, so
/// concurrent workers never read or write the same element.
struct SharedAmps {
    ptr: *mut Complex,
    len: usize,
}

// SAFETY: workers access disjoint elements only (see `run_chunked`'s
// contract); the raw pointer outlives the scope because the `&mut [Complex]`
// it came from is borrowed for the whole call.
unsafe impl Sync for SharedAmps {}

/// Applies `apply(amps, lo, hi)` over the compressed index space
/// `0..space`, split into the fixed chunk grid, across `workers` scoped
/// threads.
///
/// Contract: `apply` must touch exactly the amplitude groups addressed by
/// compressed indices `lo..hi`, and disjoint ranges must touch disjoint
/// amplitudes — the property every `*_range` kernel in
/// [`ashn_ir::kernels`] provides. Under that contract the result is
/// bit-identical to `apply(amps, 0, space)` for any worker count.
pub(crate) fn run_chunked(
    amps: &mut [Complex],
    space: usize,
    workers: usize,
    apply: impl Fn(&mut [Complex], usize, usize) + Sync,
) {
    if space == 0 {
        return;
    }
    let chunks = ChunkPolicy::CHUNKS_PER_OP.min(space);
    let workers = workers.min(chunks);
    if workers <= 1 {
        apply(amps, 0, space);
        return;
    }
    let shared = SharedAmps {
        ptr: amps.as_mut_ptr(),
        len: amps.len(),
    };
    let next = AtomicUsize::new(0);
    // Capture the wrapper whole (not its fields): the `Sync` impl lives on
    // `SharedAmps`, and edition-2021 disjoint capture would otherwise try
    // to send the bare `*mut Complex`.
    let (shared, next, apply) = (&shared, &next, &apply);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || loop {
                let chunk = next.fetch_add(1, Ordering::Relaxed);
                if chunk >= chunks {
                    break;
                }
                // The grid is a pure function of (space, chunks) — fixed
                // for a given op, whatever the worker count.
                let lo = chunk * space / chunks;
                let hi = (chunk + 1) * space / chunks;
                // SAFETY: ranges [lo, hi) partition 0..space across
                // chunks, each compressed index addresses an amplitude
                // group disjoint from every other index's, and `apply`
                // honors its range — so no element is aliased across
                // workers.
                let view = unsafe { std::slice::from_raw_parts_mut(shared.ptr, shared.len) };
                apply(view, lo, hi);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_ir::kernels::apply_dense_1q_range;
    use ashn_math::{c, Mat2};

    #[test]
    fn policy_thresholds() {
        assert_eq!(ChunkPolicy::scalar().effective_workers(26), 1);
        assert_eq!(ChunkPolicy::with_workers(8).effective_workers(15), 1);
        assert_eq!(ChunkPolicy::with_workers(8).effective_workers(16), 8);
        assert!(ChunkPolicy::auto().effective_workers(16) >= 1);
    }

    #[test]
    fn chunked_application_is_bit_identical_to_scalar() {
        let n = 12usize; // small enough to be quick, large enough to chunk
        let rows = [[c(0.6, 0.2), c(0.3, -0.7)], [c(0.7, 0.3), c(-0.2, 0.6)]];
        let m = Mat2::from_fn(|r, col| rows[r][col]);
        for p in [0usize, 5, n - 1] {
            let initial: Vec<Complex> = (0..1 << n)
                .map(|i| c(i as f64, -(i as f64) * 0.5))
                .collect();
            let mut reference = initial.clone();
            apply_dense_1q_range(&mut reference, p, &m, 0, 1 << (n - 1));
            for workers in [2usize, 3, 8] {
                let mut buf = initial.clone();
                run_chunked(&mut buf, 1 << (n - 1), workers, |a, lo, hi| {
                    apply_dense_1q_range(a, p, &m, lo, hi)
                });
                for (a, b) in buf.iter().zip(reference.iter()) {
                    assert!(
                        a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                        "p={p} workers={workers}"
                    );
                }
            }
        }
    }
}
