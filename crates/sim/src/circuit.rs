//! A minimal circuit IR carrying everything the noise model needs:
//! the unitary, the acted-on qubits, a duration (in units of `1/g`), and an
//! optional per-gate error rate.

use crate::density::DensityMatrix;
use crate::state::StateVector;
use ashn_math::CMat;

/// One gate instance in a circuit.
#[derive(Clone, Debug)]
pub struct Gate {
    /// Qubits the gate acts on (big-endian order w.r.t. the matrix).
    pub qubits: Vec<usize>,
    /// The unitary matrix (dimension `2^qubits.len()`).
    pub matrix: CMat,
    /// Human-readable label (e.g. `"CZ"`, `"AshN(0.42,0.1,0.0)"`).
    pub label: String,
    /// Gate duration in units of `1/g`; `0` for virtual gates.
    pub duration: f64,
    /// Depolarizing error probability applied after the gate; `None` means
    /// "use the noise-model default for this arity".
    pub error_rate: Option<f64>,
}

impl Gate {
    /// Creates a gate with no duration or error annotation.
    pub fn new(qubits: Vec<usize>, matrix: CMat, label: impl Into<String>) -> Self {
        assert_eq!(matrix.rows(), 1 << qubits.len(), "gate dimension mismatch");
        Self {
            qubits,
            matrix,
            label: label.into(),
            duration: 0.0,
            error_rate: None,
        }
    }

    /// Sets the duration (builder style).
    pub fn with_duration(mut self, duration: f64) -> Self {
        self.duration = duration;
        self
    }

    /// Sets an explicit error rate (builder style).
    pub fn with_error_rate(mut self, p: f64) -> Self {
        self.error_rate = Some(p);
        self
    }
}

/// Per-arity default depolarizing rates.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NoiseModel {
    /// Default error probability after a single-qubit gate.
    pub one_qubit: f64,
    /// Default error probability after a two-qubit gate.
    pub two_qubit: f64,
}

impl NoiseModel {
    /// A noiseless model.
    pub const NOISELESS: NoiseModel = NoiseModel {
        one_qubit: 0.0,
        two_qubit: 0.0,
    };

    fn rate_for(&self, gate: &Gate) -> f64 {
        gate.error_rate.unwrap_or(match gate.qubits.len() {
            1 => self.one_qubit,
            2 => self.two_qubit,
            _ => 0.0,
        })
    }
}

/// A quantum circuit on `n` qubits.
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    n: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// An empty circuit on `n` qubits.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            gates: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate touches qubits outside the register.
    pub fn push(&mut self, gate: Gate) {
        assert!(
            gate.qubits.iter().all(|q| *q < self.n),
            "gate on out-of-range qubit"
        );
        self.gates.push(gate);
    }

    /// The gates in application order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Total duration (sum of gate durations).
    pub fn total_duration(&self) -> f64 {
        self.gates.iter().map(|g| g.duration).sum()
    }

    /// Number of gates acting on ≥ 2 qubits.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.qubits.len() >= 2).count()
    }

    /// Runs the circuit on `|0…0⟩` without noise.
    pub fn run_pure(&self) -> StateVector {
        let mut s = StateVector::zero(self.n);
        for g in &self.gates {
            s.apply(&g.qubits, &g.matrix);
        }
        s
    }

    /// Runs the circuit with depolarizing noise after every gate, returning
    /// the exact output density matrix.
    pub fn run_noisy(&self, noise: &NoiseModel) -> DensityMatrix {
        let mut rho = DensityMatrix::zero(self.n);
        for g in &self.gates {
            rho.apply(&g.qubits, &g.matrix);
            let p = noise.rate_for(g);
            if p > 0.0 {
                rho.depolarize(&g.qubits, p);
            }
        }
        rho
    }

    /// The dense unitary of the whole circuit (small `n` only).
    ///
    /// # Panics
    ///
    /// Panics for `n > 10`.
    pub fn unitary(&self) -> CMat {
        assert!(self.n <= 10, "dense unitary limited to 10 qubits");
        let dim = 1usize << self.n;
        let mut u = CMat::identity(dim);
        // Column i of the total unitary = circuit applied to basis state i.
        for i in 0..dim {
            let mut amps = vec![ashn_math::Complex::ZERO; dim];
            amps[i] = ashn_math::Complex::ONE;
            let mut s = StateVector::from_amplitudes_unchecked(amps);
            for g in &self.gates {
                s.apply(&g.qubits, &g.matrix);
            }
            for (r, a) in s.amplitudes().iter().enumerate() {
                u[(r, i)] = *a;
            }
        }
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn h_gate() -> CMat {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        CMat::from_rows_f64(&[&[s, s], &[s, -s]])
    }

    #[test]
    fn noiseless_density_equals_pure_run() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut c = Circuit::new(3);
        c.push(Gate::new(vec![0], h_gate(), "H"));
        c.push(Gate::new(vec![0, 1], haar_unitary(4, &mut rng), "U"));
        c.push(Gate::new(vec![2, 1], haar_unitary(4, &mut rng), "V"));
        let pure = c.run_pure();
        let rho = c.run_noisy(&NoiseModel::NOISELESS);
        for (a, b) in pure.probabilities().iter().zip(rho.probabilities()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn noise_reduces_purity() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut c = Circuit::new(2);
        c.push(Gate::new(vec![0, 1], haar_unitary(4, &mut rng), "U"));
        let rho = c.run_noisy(&NoiseModel {
            one_qubit: 0.001,
            two_qubit: 0.02,
        });
        assert!(rho.purity() < 1.0 - 0.01);
        assert!((rho.trace() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn explicit_error_rate_overrides_default() {
        let mut c = Circuit::new(1);
        c.push(Gate::new(vec![0], h_gate(), "H").with_error_rate(1.0));
        let rho = c.run_noisy(&NoiseModel::NOISELESS);
        // Full depolarizing: maximally mixed.
        assert!((rho.purity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unitary_matches_gate_product() {
        let mut rng = StdRng::seed_from_u64(23);
        let u01 = haar_unitary(4, &mut rng);
        let mut c = Circuit::new(2);
        c.push(Gate::new(vec![0, 1], u01.clone(), "U"));
        assert!(c.unitary().dist(&u01) < 1e-10);
    }

    #[test]
    fn durations_accumulate() {
        let mut c = Circuit::new(2);
        c.push(Gate::new(vec![0], h_gate(), "H").with_duration(0.1));
        c.push(Gate::new(vec![1], h_gate(), "H").with_duration(0.2));
        assert!((c.total_duration() - 0.3).abs() < 1e-12);
        assert_eq!(c.two_qubit_gate_count(), 0);
    }
}
