//! Circuit-level simulation on the canonical [`ashn_ir::Circuit`] IR.
//!
//! The circuit representation itself lives in `ashn-ir` (one IR for the
//! whole workspace); this module keeps the noise model and provides the
//! [`Simulate`] extension trait so `circuit.run_pure()` /
//! `circuit.run_noisy(..)` read as before. (The transitional
//! `ashn_sim::Gate` alias has been removed — every consumer now speaks
//! `ashn_ir::Instruction` directly.)

use crate::density::DensityMatrix;
use crate::state::StateVector;
pub use ashn_ir::{Circuit, Instruction};

/// Per-arity default depolarizing rates.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NoiseModel {
    /// Default error probability after a single-qubit gate.
    pub one_qubit: f64,
    /// Default error probability after a two-qubit gate.
    pub two_qubit: f64,
}

impl NoiseModel {
    /// A noiseless model.
    pub const NOISELESS: NoiseModel = NoiseModel {
        one_qubit: 0.0,
        two_qubit: 0.0,
    };

    pub(crate) fn rate_for(&self, gate: &Instruction) -> f64 {
        gate.error_rate.unwrap_or(match gate.qubits.len() {
            1 => self.one_qubit,
            2 => self.two_qubit,
            _ => 0.0,
        })
    }
}

/// Execution of [`ashn_ir::Circuit`]s on the simulators in this crate.
pub trait Simulate {
    /// Runs the circuit on `|0…0⟩` without noise.
    fn run_pure(&self) -> StateVector;

    /// Runs the circuit with depolarizing noise after every gate, returning
    /// the exact output density matrix.
    fn run_noisy(&self, noise: &NoiseModel) -> DensityMatrix;

    /// Runs the circuit with an externally resolved depolarizing schedule:
    /// `rates[i]` is applied after instruction `i`. This lets callers score
    /// one circuit under many noise models without materializing an
    /// annotated copy of the circuit (and its gate matrices) per model.
    fn run_noisy_scheduled(&self, rates: &[f64]) -> DensityMatrix;
}

impl Simulate for Circuit {
    fn run_pure(&self) -> StateVector {
        // Seed |0…0⟩ scaled by the circuit's global phase so amplitudes
        // agree with `Circuit::unitary()` column 0 (the former gate-list
        // representation carried the phase as an explicit gate).
        let mut amps = vec![ashn_math::Complex::ZERO; 1 << self.n];
        amps[0] = self.phase;
        let mut s = StateVector::from_amplitudes_unchecked(amps);
        for g in &self.instructions {
            s.apply(&g.qubits, &g.matrix);
        }
        s
    }

    fn run_noisy(&self, noise: &NoiseModel) -> DensityMatrix {
        let mut rho = DensityMatrix::zero(self.n);
        for g in &self.instructions {
            rho.apply(&g.qubits, &g.matrix);
            let p = noise.rate_for(g);
            if p > 0.0 {
                rho.depolarize(&g.qubits, p);
            }
        }
        rho
    }

    fn run_noisy_scheduled(&self, rates: &[f64]) -> DensityMatrix {
        assert_eq!(
            rates.len(),
            self.instructions.len(),
            "one rate per instruction"
        );
        let mut rho = DensityMatrix::zero(self.n);
        for (g, &p) in self.instructions.iter().zip(rates) {
            rho.apply(&g.qubits, &g.matrix);
            if p > 0.0 {
                rho.depolarize(&g.qubits, p);
            }
        }
        rho
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_math::randmat::haar_unitary;
    use ashn_math::CMat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn h_gate() -> CMat {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        CMat::from_rows_f64(&[&[s, s], &[s, -s]])
    }

    #[test]
    fn noiseless_density_equals_pure_run() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut c = Circuit::new(3);
        c.push(Instruction::new(vec![0], h_gate(), "H"));
        c.push(Instruction::new(vec![0, 1], haar_unitary(4, &mut rng), "U"));
        c.push(Instruction::new(vec![2, 1], haar_unitary(4, &mut rng), "V"));
        let pure = c.run_pure();
        let rho = c.run_noisy(&NoiseModel::NOISELESS);
        for (a, b) in pure.probabilities().iter().zip(rho.probabilities()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn noise_reduces_purity() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut c = Circuit::new(2);
        c.push(Instruction::new(vec![0, 1], haar_unitary(4, &mut rng), "U"));
        let rho = c.run_noisy(&NoiseModel {
            one_qubit: 0.001,
            two_qubit: 0.02,
        });
        assert!(rho.purity() < 1.0 - 0.01);
        assert!((rho.trace() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn explicit_error_rate_overrides_default() {
        let mut c = Circuit::new(1);
        c.push(Instruction::new(vec![0], h_gate(), "H").with_error_rate(1.0));
        let rho = c.run_noisy(&NoiseModel::NOISELESS);
        // Full depolarizing: maximally mixed.
        assert!((rho.purity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unitary_matches_gate_product() {
        let mut rng = StdRng::seed_from_u64(23);
        let u01 = haar_unitary(4, &mut rng);
        let mut c = Circuit::new(2);
        c.push(Instruction::new(vec![0, 1], u01.clone(), "U"));
        assert!(c.unitary().dist(&u01) < 1e-10);
    }

    #[test]
    fn durations_accumulate() {
        let mut c = Circuit::new(2);
        c.push(Instruction::new(vec![0], h_gate(), "H").with_duration(0.1));
        c.push(Instruction::new(vec![1], h_gate(), "H").with_duration(0.2));
        assert!((c.total_duration() - 0.3).abs() < 1e-12);
        assert_eq!(c.two_qubit_gate_count(), 0);
    }

    #[test]
    fn run_pure_carries_the_global_phase() {
        let mut c = Circuit::new(2);
        c.phase = ashn_math::Complex::cis(0.9);
        c.push(Instruction::new(vec![0], h_gate(), "H"));
        let amps = c.run_pure();
        let u = c.unitary();
        for (r, a) in amps.amplitudes().iter().enumerate() {
            assert!((*a - u[(r, 0)]).abs() < 1e-12, "row {r}");
        }
    }
}
