//! # ashn-sim
//!
//! Quantum circuit simulators for the AshN reproduction: a pure-state
//! (statevector) simulator, an exact density-matrix simulator with
//! depolarizing channels, and a small circuit IR that carries per-gate
//! durations and error rates (the quantities the paper's quantum-volume
//! noise model is built from).
//!
//! The statevector hot loop runs on **compiled execution plans**
//! ([`ExecPlan`], [`plan`]): a circuit + noise model is specialized once
//! into a flat stream of `Copy` ops — kernel case pre-classified, matrix
//! inlined on the stack, bit masks and depolarizing rates precomputed —
//! and Monte-Carlo trajectory ensembles ([`trajectory`]) replay that
//! stream with bit-twiddled Pauli injection. [`SimEngine`] provides the
//! reusable amplitude workspace; the original instruction walk survives as
//! `run_*_walk` differential references.
//!
//! ## Example: a noisy Bell pair
//!
//! ```
//! use ashn_sim::{Circuit, Instruction, NoiseModel, Simulate};
//! use ashn_math::CMat;
//!
//! let h = CMat::from_rows_f64(&[
//!     &[std::f64::consts::FRAC_1_SQRT_2, std::f64::consts::FRAC_1_SQRT_2],
//!     &[std::f64::consts::FRAC_1_SQRT_2, -std::f64::consts::FRAC_1_SQRT_2],
//! ]);
//! let cnot = CMat::from_rows_f64(&[
//!     &[1.0, 0.0, 0.0, 0.0],
//!     &[0.0, 1.0, 0.0, 0.0],
//!     &[0.0, 0.0, 0.0, 1.0],
//!     &[0.0, 0.0, 1.0, 0.0],
//! ]);
//! let mut c = Circuit::new(2);
//! c.push(Instruction::new(vec![0], h, "H"));
//! c.push(Instruction::new(vec![0, 1], cnot, "CNOT"));
//! let rho = c.run_noisy(&NoiseModel { one_qubit: 0.001, two_qubit: 0.01 });
//! let p = rho.probabilities();
//! assert!((p[0] + p[3]) > 0.98); // mostly correlated outcomes
//! ```

pub mod batch;
pub mod chunk;
pub mod circuit;
pub mod density;
pub mod engine;
pub mod error;
pub mod measure;
pub mod plan;
pub mod state;
pub mod trajectory;

pub use batch::{BatchRunner, JobPanic};
pub use chunk::ChunkPolicy;
pub use circuit::{Circuit, Instruction, NoiseModel, Simulate};
pub use density::DensityMatrix;
pub use engine::SimEngine;
pub use error::SimError;
pub use plan::{ExecPlan, KernelOp, PlanError, PlanOp};
pub use state::{StateVector, MAX_QUBITS};
