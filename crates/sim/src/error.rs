//! Structured errors for recoverable simulator failures.
//!
//! The seed-era constructors (`StateVector::zero`, `from_amplitudes`,
//! `SimEngine::new`) panicked on out-of-range registers, bad amplitude
//! counts, and non-unit norms — recoverable conditions a service handling
//! user-supplied circuits must surface, not abort on. The `try_*`
//! constructors return a [`SimError`] instead; the panicking originals
//! survive as thin shims for internal call sites that uphold the
//! invariants by construction.

use crate::state::MAX_QUBITS;
use std::fmt;

/// A recoverable statevector-simulation failure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SimError {
    /// The register size is outside the supported `1..=`[`MAX_QUBITS`]
    /// range (the cap is memory-bound: `2^n` complex amplitudes of 16
    /// bytes each).
    RegisterOutOfRange {
        /// The offending register size.
        n: usize,
    },
    /// An amplitude buffer's length is not a power of two `>= 2`.
    BadAmplitudeCount {
        /// The offending length.
        len: usize,
    },
    /// A state's squared norm differs from 1 beyond the construction
    /// tolerance.
    NotNormalized {
        /// The offending squared norm.
        norm_sqr: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RegisterOutOfRange { n } => write!(
                f,
                "register size {n} outside the supported 1..={MAX_QUBITS} range \
                 (2^{n} amplitudes would need {} GiB)",
                // 16 bytes per complex amplitude; saturate for absurd n.
                (16u128 << (*n).min(100)) >> 30,
            ),
            SimError::BadAmplitudeCount { len } => {
                write!(f, "amplitude count {len} is not a power of two >= 2")
            }
            SimError::NotNormalized { norm_sqr } => {
                write!(f, "state is not normalised: squared norm {norm_sqr}")
            }
        }
    }
}

impl std::error::Error for SimError {}
