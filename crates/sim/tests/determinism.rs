//! Determinism contract of the parallel batch runner: for a fixed master
//! seed, every statistic must be bit-identical regardless of how many
//! workers the batch is fanned across (1, 2, 8).

use ashn_math::randmat::haar_unitary;
use ashn_sim::trajectory::trajectory_probabilities_batched;
use ashn_sim::{BatchRunner, Circuit, Instruction, NoiseModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn noisy_circuit(n: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut circuit = Circuit::new(n);
    for layer in 0..4 {
        for q in 0..n - 1 {
            if (q + layer) % 2 == 0 {
                circuit.push(
                    Instruction::new(vec![q, q + 1], haar_unitary(4, &mut rng), "U")
                        .with_error_rate(0.05),
                );
            }
        }
    }
    circuit
}

#[test]
fn batch_runner_statistics_are_worker_count_invariant() {
    // A Monte-Carlo style reduction over per-job RNG streams.
    let estimate = |workers: usize| -> Vec<f64> {
        BatchRunner::new(424242)
            .with_workers(workers)
            .run(24, |i, rng| {
                (0..50 + i).map(|_| rng.gen::<f64>()).sum::<f64>()
            })
    };
    let reference = estimate(1);
    for workers in [2, 8] {
        assert_eq!(estimate(workers), reference, "workers = {workers}");
    }
}

#[test]
fn batched_trajectory_probabilities_are_worker_count_invariant() {
    let circuit = noisy_circuit(4, 7);
    let reference = trajectory_probabilities_batched(&circuit, &NoiseModel::NOISELESS, 200, 99, 1);
    for workers in [2, 8] {
        let got =
            trajectory_probabilities_batched(&circuit, &NoiseModel::NOISELESS, 200, 99, workers);
        assert_eq!(got, reference, "workers = {workers}");
    }
    // Sanity: the estimate is a probability distribution.
    let total: f64 = reference.iter().sum();
    assert!((total - 1.0).abs() < 1e-9);
}

#[test]
fn batched_trajectories_converge_like_the_serial_estimator() {
    // Same ensemble size, different RNG plumbing — both must approximate
    // the same distribution.
    let circuit = noisy_circuit(3, 8);
    let mut rng = StdRng::seed_from_u64(10);
    let serial = ashn_sim::trajectory::trajectory_probabilities(
        &circuit,
        &NoiseModel::NOISELESS,
        4000,
        &mut rng,
    );
    let batched = trajectory_probabilities_batched(&circuit, &NoiseModel::NOISELESS, 4000, 11, 4);
    let linf = serial
        .iter()
        .zip(batched.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(linf < 0.03, "serial vs batched deviation {linf}");
}

#[test]
fn master_seed_changes_the_ensemble() {
    let circuit = noisy_circuit(3, 9);
    let a = trajectory_probabilities_batched(&circuit, &NoiseModel::NOISELESS, 50, 1, 4);
    let b = trajectory_probabilities_batched(&circuit, &NoiseModel::NOISELESS, 50, 2, 4);
    assert_ne!(a, b);
}
