//! Differential suite pinning [`ExecPlan`] execution against the
//! instruction-walk reference (`run_pure_walk` / `run_trajectory_walk`):
//!
//! * pure runs agree at `1e-12` on random mixed circuits (dense, diagonal,
//!   controlled-phase, and Pauli gates at every placement), including
//!   circuits where single-qubit fusion rewrites the op stream;
//! * noisy trajectories from a shared RNG stream draw **bit-identical**
//!   Pauli sequences — when nothing fuses (every gate noisy), the output
//!   probabilities match the walk bit for bit;
//! * the plan-backed batched estimators stay worker-count invariant
//!   (1 / 2 / 8 workers).

use ashn_math::randmat::haar_unitary;
use ashn_math::{c, CMat, Complex};
use ashn_sim::plan::{ExecPlan, KernelOp};
use ashn_sim::trajectory::{
    trajectory_probabilities_batched, trajectory_probabilities_batched_plan,
};
use ashn_sim::{Circuit, Instruction, NoiseModel, SimEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cz() -> CMat {
    CMat::diag(&[Complex::ONE, Complex::ONE, Complex::ONE, c(-1.0, 0.0)])
}

fn zz(theta: f64) -> CMat {
    CMat::diag(&[
        Complex::cis(theta),
        Complex::cis(-theta),
        Complex::cis(-theta),
        Complex::cis(theta),
    ])
}

fn pauli(which: usize) -> CMat {
    match which {
        0 => CMat::from_rows_f64(&[&[0.0, 1.0], &[1.0, 0.0]]),
        1 => CMat::from_rows(&[
            &[Complex::ZERO, c(0.0, -1.0)],
            &[c(0.0, 1.0), Complex::ZERO],
        ]),
        _ => CMat::diag(&[Complex::ONE, c(-1.0, 0.0)]),
    }
}

/// A random circuit over every kernel class: dense/diagonal 1q, dense 2q,
/// CZ, ZZ, and exact Paulis, on random (also reversed/non-adjacent)
/// placements. `rate` of `None` leaves gates unannotated; `Some(p)` stamps
/// every gate.
fn mixed_circuit(n: usize, layers: usize, rate: Option<f64>, rng: &mut StdRng) -> Circuit {
    let mut circuit = Circuit::new(n);
    circuit.phase = Complex::cis(rng.gen::<f64>());
    let push = |c: &mut Circuit, g: Instruction| {
        c.push(match rate {
            Some(p) => g.with_error_rate(p),
            None => g,
        });
    };
    for _ in 0..layers {
        for q in 0..n {
            match rng.gen_range(0..4usize) {
                0 => push(
                    &mut circuit,
                    Instruction::new(vec![q], haar_unitary(2, rng), "1q"),
                ),
                1 => push(
                    &mut circuit,
                    Instruction::new(
                        vec![q],
                        CMat::diag(&[
                            Complex::cis(rng.gen::<f64>()),
                            Complex::cis(rng.gen::<f64>()),
                        ]),
                        "Rz",
                    ),
                ),
                2 => push(
                    &mut circuit,
                    Instruction::new(vec![q], pauli(rng.gen_range(0..3usize)), "P"),
                ),
                _ => {}
            }
        }
        if n >= 2 {
            let q0 = rng.gen_range(0..n);
            let mut q1 = rng.gen_range(0..n);
            while q1 == q0 {
                q1 = rng.gen_range(0..n);
            }
            let two = match rng.gen_range(0..3usize) {
                0 => cz(),
                1 => zz(rng.gen::<f64>()),
                _ => haar_unitary(4, rng),
            };
            push(&mut circuit, Instruction::new(vec![q0, q1], two, "2q"));
        }
    }
    circuit
}

#[test]
fn pure_plan_matches_walk_at_1e12() {
    let mut rng = StdRng::seed_from_u64(1001);
    for n in [1usize, 2, 3, 5] {
        for trial in 0..8 {
            let circuit = mixed_circuit(n, 4, None, &mut rng);
            let mut engine = SimEngine::new(n);
            let walk = engine.run_pure_walk(&circuit).state();
            let plan = ExecPlan::pure(&circuit).unwrap();
            engine.run_plan(&plan);
            for (a, b) in engine.amplitudes().iter().zip(walk.amplitudes()) {
                assert!((*a - *b).abs() < 1e-12, "n={n} trial={trial}");
            }
        }
    }
}

#[test]
fn fused_plan_is_smaller_and_still_exact() {
    let mut rng = StdRng::seed_from_u64(1002);
    // Unannotated gates + noiseless model: every 1q gate fuses away.
    let circuit = mixed_circuit(4, 6, None, &mut rng);
    let plan = ExecPlan::pure(&circuit).unwrap();
    assert!(
        plan.ops().len() < circuit.gates().len(),
        "fusion should shrink the stream: {} ops from {} gates",
        plan.ops().len(),
        circuit.gates().len()
    );
    assert!(plan.ops().iter().all(|op| op.noise_positions().len() == 2
        || matches!(
            op.kernel,
            KernelOp::Dense1q { .. }
                | KernelOp::Diag1q { .. }
                | KernelOp::PauliX { .. }
                | KernelOp::PauliY { .. }
                | KernelOp::PauliZ { .. }
        )));
}

#[test]
fn noisy_plan_draws_a_bit_identical_rng_stream() {
    let mut rng = StdRng::seed_from_u64(1003);
    for trial in 0..6 {
        // Every gate stamped: nothing fuses, so the two paths must agree
        // bit for bit — in the Pauli draws *and* in the probabilities.
        let circuit = mixed_circuit(4, 5, Some(0.08), &mut rng);
        let noise = NoiseModel::NOISELESS;
        let plan = ExecPlan::build(&circuit, &noise).unwrap();
        assert_eq!(plan.ops().len(), circuit.gates().len(), "nothing may fuse");

        let mut rng_walk = StdRng::seed_from_u64(5000 + trial);
        let mut rng_plan = StdRng::seed_from_u64(5000 + trial);
        let mut engine_walk = SimEngine::new(4);
        let mut engine_plan = SimEngine::new(4);
        for _ in 0..20 {
            let walk = engine_walk
                .run_trajectory_walk(&circuit, &noise, &mut rng_walk)
                .probabilities();
            let plan_probs = engine_plan
                .run_plan_trajectory(&plan, &mut rng_plan)
                .probabilities();
            for (a, b) in plan_probs.iter().zip(walk.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "trial {trial}");
            }
        }
        // Both paths consumed exactly the same number of draws.
        assert_eq!(rng_walk.gen::<u64>(), rng_plan.gen::<u64>());
    }
}

#[test]
fn noisy_plan_with_fusion_matches_walk_within_tolerance() {
    let mut rng = StdRng::seed_from_u64(1004);
    // Two-qubit-only noise: 1q gates fuse, but zero-rate gates draw no
    // randomness in either path, so the RNG streams still line up and the
    // trajectories agree to round-off.
    let circuit = mixed_circuit(4, 5, None, &mut rng);
    let noise = NoiseModel {
        one_qubit: 0.0,
        two_qubit: 0.15,
    };
    let plan = ExecPlan::build(&circuit, &noise).unwrap();
    assert!(plan.ops().len() < circuit.gates().len());
    let mut rng_walk = StdRng::seed_from_u64(77);
    let mut rng_plan = StdRng::seed_from_u64(77);
    let mut engine_walk = SimEngine::new(4);
    let mut engine_plan = SimEngine::new(4);
    for _ in 0..30 {
        let walk = engine_walk
            .run_trajectory_walk(&circuit, &noise, &mut rng_walk)
            .probabilities();
        let plan_probs = engine_plan
            .run_plan_trajectory(&plan, &mut rng_plan)
            .probabilities();
        for (a, b) in plan_probs.iter().zip(walk.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
    assert_eq!(rng_walk.gen::<u64>(), rng_plan.gen::<u64>());
}

#[test]
fn batched_plan_trajectories_are_worker_count_invariant() {
    let mut rng = StdRng::seed_from_u64(1005);
    let circuit = mixed_circuit(4, 5, Some(0.05), &mut rng);
    let plan = ExecPlan::build(&circuit, &NoiseModel::NOISELESS).unwrap();
    let reference = trajectory_probabilities_batched_plan(&plan, 200, 99, 1);
    for workers in [2, 8] {
        let got = trajectory_probabilities_batched_plan(&plan, 200, 99, workers);
        assert_eq!(got, reference, "workers = {workers}");
    }
    // The circuit-level wrapper (which builds the same plan) agrees too.
    let wrapped = trajectory_probabilities_batched(&circuit, &NoiseModel::NOISELESS, 200, 99, 4);
    assert_eq!(wrapped, reference);
    let total: f64 = reference.iter().sum();
    assert!((total - 1.0).abs() < 1e-9);
}

#[test]
fn wide_gates_fall_back_to_the_walk_everywhere() {
    // 3-qubit gates cannot be planned; every public entry point must still
    // produce correct results through the walk fallback.
    let mut circuit = Circuit::new(3);
    let mut ccx = CMat::identity(8);
    ccx[(6, 6)] = Complex::ZERO;
    ccx[(7, 7)] = Complex::ZERO;
    ccx[(6, 7)] = Complex::ONE;
    ccx[(7, 6)] = Complex::ONE;
    let h = {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        CMat::from_rows_f64(&[&[s, s], &[s, -s]])
    };
    circuit.push(Instruction::new(vec![0], h.clone(), "H"));
    circuit.push(Instruction::new(vec![1], h, "H"));
    circuit.push(Instruction::new(vec![0, 1, 2], ccx, "CCX").with_error_rate(0.1));
    assert!(ExecPlan::pure(&circuit).is_err());
    let probs = trajectory_probabilities_batched(&circuit, &NoiseModel::NOISELESS, 100, 7, 2);
    let again = trajectory_probabilities_batched(&circuit, &NoiseModel::NOISELESS, 100, 7, 8);
    assert_eq!(probs, again);
    let total: f64 = probs.iter().sum();
    assert!((total - 1.0).abs() < 1e-9);
}
