//! Plan-fusion soundness suite for the 2q/diagonal fusion in
//! [`ExecPlan::build_with`]:
//!
//! * pinned shapes — adjacent same-pair 2q ops collapse (including
//!   reversed wire order, via the exact SWAP conjugation), zero-rate
//!   diagonals are commuted through, dense and noisy blockers are
//!   respected;
//! * proptests — fusion-heavy random circuits (same-pair runs with
//!   interleaved diagonals, mixed noise annotations) match the
//!   `run_*_walk` reference at `1e-12`, and the trajectory RNG stream is
//!   **draw-for-draw** identical: only draw-free ops ever move, so no
//!   noisy gate is displaced.

use ashn_math::randmat::haar_unitary;
use ashn_math::{c, CMat, Complex};
use ashn_sim::plan::{ExecPlan, KernelOp};
use ashn_sim::{Circuit, Instruction, NoiseModel, SimEngine};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cz() -> CMat {
    CMat::diag(&[Complex::ONE, Complex::ONE, Complex::ONE, c(-1.0, 0.0)])
}

fn zz(theta: f64) -> CMat {
    CMat::diag(&[
        Complex::cis(theta),
        Complex::cis(-theta),
        Complex::cis(-theta),
        Complex::cis(theta),
    ])
}

fn assert_plan_matches_walk(circuit: &Circuit, tol: f64) {
    let n = circuit.n_qubits();
    let mut engine = SimEngine::new(n);
    let walk = engine.run_pure_walk(circuit).state();
    let plan = ExecPlan::pure(circuit).unwrap();
    engine.run_plan(&plan);
    for (i, (a, b)) in engine
        .amplitudes()
        .iter()
        .zip(walk.amplitudes())
        .enumerate()
    {
        assert!((*a - *b).abs() < tol, "amp {i}: {a:?} vs {b:?}");
    }
}

#[test]
fn adjacent_same_pair_dense_ops_collapse_to_one() {
    let mut rng = StdRng::seed_from_u64(21);
    let mut circuit = Circuit::new(3);
    circuit.push(Instruction::new(vec![0, 2], haar_unitary(4, &mut rng), "A"));
    circuit.push(Instruction::new(vec![0, 2], haar_unitary(4, &mut rng), "B"));
    circuit.push(Instruction::new(vec![0, 2], haar_unitary(4, &mut rng), "C"));
    let plan = ExecPlan::pure(&circuit).unwrap();
    assert_eq!(plan.ops().len(), 1, "three same-pair ops must fuse to one");
    assert_plan_matches_walk(&circuit, 1e-12);
}

#[test]
fn reversed_orientation_fuses_via_exact_swap_conjugation() {
    let mut rng = StdRng::seed_from_u64(22);
    let mut circuit = Circuit::new(3);
    circuit.push(Instruction::new(vec![1, 2], haar_unitary(4, &mut rng), "A"));
    circuit.push(Instruction::new(vec![2, 1], haar_unitary(4, &mut rng), "B"));
    let plan = ExecPlan::pure(&circuit).unwrap();
    assert_eq!(plan.ops().len(), 1, "reversed same-pair ops must fuse");
    assert_plan_matches_walk(&circuit, 1e-12);
}

#[test]
fn zero_rate_diagonals_are_commuted_through() {
    // CZ(0,1) · CZ(1,2) · CZ(0,1): the outer pair shares wire 1 with the
    // middle gate, but all three are diagonal, so the outer ops fuse.
    let mut circuit = Circuit::new(3);
    circuit.push(Instruction::new(vec![0, 1], cz(), "CZ"));
    circuit.push(Instruction::new(vec![1, 2], cz(), "CZ"));
    circuit.push(Instruction::new(vec![0, 1], cz(), "CZ"));
    let plan = ExecPlan::pure(&circuit).unwrap();
    assert_eq!(
        plan.ops().len(),
        2,
        "outer CZs must fuse through the middle"
    );
    assert_plan_matches_walk(&circuit, 1e-12);

    // The fused outer pair is CZ·CZ = identity on the pair — classified
    // diagonal either way; the surviving ops must both be diagonal kernels.
    for op in plan.ops() {
        assert!(
            matches!(op.kernel, KernelOp::Diag2q { .. } | KernelOp::CPhase { .. }),
            "unexpected kernel {:?}",
            op.kernel
        );
    }
}

#[test]
fn dense_candidates_do_not_jump_shared_wire_diagonals() {
    let mut rng = StdRng::seed_from_u64(23);
    // dense(0,1) · CZ(1,2) · dense(0,1): the dense candidate does not
    // commute with a shared-wire diagonal, so nothing may fuse across it.
    let mut circuit = Circuit::new(3);
    circuit.push(Instruction::new(vec![0, 1], haar_unitary(4, &mut rng), "A"));
    circuit.push(Instruction::new(vec![1, 2], cz(), "CZ"));
    circuit.push(Instruction::new(vec![0, 1], haar_unitary(4, &mut rng), "B"));
    let plan = ExecPlan::pure(&circuit).unwrap();
    assert_eq!(plan.ops().len(), 3, "a dense candidate must not jump");
    assert_plan_matches_walk(&circuit, 1e-12);
}

#[test]
fn disjoint_ops_do_not_block_same_pair_fusion() {
    let mut rng = StdRng::seed_from_u64(24);
    let mut circuit = Circuit::new(4);
    circuit.push(Instruction::new(vec![0, 1], haar_unitary(4, &mut rng), "A"));
    circuit.push(Instruction::new(vec![2, 3], haar_unitary(4, &mut rng), "X"));
    circuit.push(Instruction::new(vec![0, 1], haar_unitary(4, &mut rng), "B"));
    let plan = ExecPlan::pure(&circuit).unwrap();
    assert_eq!(plan.ops().len(), 2, "wire-disjoint ops always commute");
    assert_plan_matches_walk(&circuit, 1e-12);
}

#[test]
fn noisy_candidates_never_fuse() {
    let mut rng = StdRng::seed_from_u64(25);
    let mut circuit = Circuit::new(2);
    circuit.push(Instruction::new(vec![0, 1], haar_unitary(4, &mut rng), "A").with_error_rate(0.1));
    circuit.push(Instruction::new(vec![0, 1], haar_unitary(4, &mut rng), "B"));
    let plan = ExecPlan::build(&circuit, &NoiseModel::NOISELESS).unwrap();
    assert_eq!(
        plan.ops().len(),
        2,
        "a noisy earlier op draws randomness and must stay in place"
    );
    // The noisy op keeps its rate; the trailing noiseless op absorbs
    // nothing it should not.
    assert!((plan.ops()[0].rate - 0.1).abs() < 1e-15);
    assert!(plan.ops()[1].rate <= 0.0);
}

#[test]
fn noisy_incoming_gate_may_absorb_a_zero_rate_predecessor() {
    let mut rng = StdRng::seed_from_u64(26);
    let mut circuit = Circuit::new(2);
    circuit.push(Instruction::new(vec![0, 1], haar_unitary(4, &mut rng), "A"));
    circuit.push(Instruction::new(vec![0, 1], haar_unitary(4, &mut rng), "B").with_error_rate(0.2));
    let plan = ExecPlan::build(&circuit, &NoiseModel::NOISELESS).unwrap();
    assert_eq!(
        plan.ops().len(),
        1,
        "draw-free predecessor may move forward"
    );
    assert!((plan.ops()[0].rate - 0.2).abs() < 1e-15);
    assert_eq!(plan.ops()[0].noise_positions().len(), 2);
}

/// A fusion-heavy circuit: repeated 2q ops on a favored pair (sometimes
/// reversed), zero-rate diagonals interleaved on shared wires, occasional
/// dense 1q gates and disjoint-pair traffic, with per-gate noise chosen
/// from `{0, p}`.
fn fusion_heavy_circuit(n: usize, layers: usize, p: f64, rng: &mut StdRng) -> Circuit {
    let mut circuit = Circuit::new(n);
    circuit.phase = Complex::cis(rng.gen::<f64>());
    let q0 = rng.gen_range(0..n);
    let mut q1 = rng.gen_range(0..n);
    while q1 == q0 {
        q1 = rng.gen_range(0..n);
    }
    let push = |c: &mut Circuit, g: Instruction, rng: &mut StdRng| {
        let noisy = p > 0.0 && rng.gen::<f64>() < 0.4;
        c.push(if noisy { g.with_error_rate(p) } else { g });
    };
    for _ in 0..layers {
        // A same-pair run, possibly reversed.
        for _ in 0..rng.gen_range(1..3usize) {
            let pair = if rng.gen::<bool>() {
                vec![q0, q1]
            } else {
                vec![q1, q0]
            };
            let m = match rng.gen_range(0..3usize) {
                0 => cz(),
                1 => zz(rng.gen::<f64>()),
                _ => haar_unitary(4, rng),
            };
            push(&mut circuit, Instruction::new(pair, m, "2q"), rng);
        }
        // Interleaved diagonals sharing a wire with the favored pair.
        if n >= 3 {
            let other = (0..n).find(|&q| q != q0 && q != q1).unwrap();
            let shared = if rng.gen::<bool>() { q0 } else { q1 };
            push(
                &mut circuit,
                Instruction::new(vec![shared, other], zz(rng.gen::<f64>()), "ZZ"),
                rng,
            );
        }
        // Occasional 1q traffic (dense or diagonal).
        if rng.gen::<bool>() {
            let q = rng.gen_range(0..n);
            let m = if rng.gen::<bool>() {
                haar_unitary(2, rng)
            } else {
                CMat::diag(&[
                    Complex::cis(rng.gen::<f64>()),
                    Complex::cis(rng.gen::<f64>()),
                ])
            };
            push(&mut circuit, Instruction::new(vec![q], m, "1q"), rng);
        }
    }
    circuit
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fused_pure_plans_match_the_walk(seed in 0u64..10_000, n in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = fusion_heavy_circuit(n, 5, 0.0, &mut rng);
        let plan = ExecPlan::pure(&circuit).unwrap();
        prop_assert!(plan.ops().len() <= circuit.gates().len());
        let mut engine = SimEngine::new(n);
        let walk = engine.run_pure_walk(&circuit).state();
        engine.run_plan(&plan);
        for (a, b) in engine.amplitudes().iter().zip(walk.amplitudes()) {
            prop_assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn fused_trajectories_stay_draw_for_draw(seed in 0u64..10_000, n in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = fusion_heavy_circuit(n, 4, 0.15, &mut rng);
        let noise = NoiseModel::NOISELESS;
        let plan = ExecPlan::build(&circuit, &noise).unwrap();

        let mut rng_walk = StdRng::seed_from_u64(seed ^ 0xABCD);
        let mut rng_plan = StdRng::seed_from_u64(seed ^ 0xABCD);
        let mut engine_walk = SimEngine::new(n);
        let mut engine_plan = SimEngine::new(n);
        for _ in 0..10 {
            let walk = engine_walk
                .run_trajectory_walk(&circuit, &noise, &mut rng_walk)
                .probabilities();
            let plan_probs = engine_plan
                .run_plan_trajectory(&plan, &mut rng_plan)
                .probabilities();
            for (a, b) in plan_probs.iter().zip(walk.iter()) {
                prop_assert!((a - b).abs() < 1e-12);
            }
        }
        // Draw-for-draw: both paths consumed exactly the same number of
        // draws (only draw-free ops were ever displaced by fusion).
        prop_assert_eq!(rng_walk.gen::<u64>(), rng_plan.gen::<u64>());
    }
}
