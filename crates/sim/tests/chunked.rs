//! Chunked-kernel determinism suite: per-op amplitude-parallel execution
//! is **bit-identical** at 1/2/8 workers (the fixed chunk grid never
//! depends on the worker count) and matches the scalar instruction walk at
//! `1e-12` on large registers (n = 16…20) — the same guarantee the
//! `BatchRunner` determinism suite pins for trajectory ensembles, one
//! level down.

use ashn_math::randmat::haar_unitary;
use ashn_math::{c, CMat, Complex};
use ashn_sim::plan::ExecPlan;
use ashn_sim::{ChunkPolicy, Circuit, Instruction, NoiseModel, SimEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cz() -> CMat {
    CMat::diag(&[Complex::ONE, Complex::ONE, Complex::ONE, c(-1.0, 0.0)])
}

/// A shallow circuit exercising every kernel class on a large register:
/// dense/diagonal 1q, Paulis, dense 2q, CZ, and ZZ on far-apart wires.
fn wide_circuit(n: usize, rate: Option<f64>, rng: &mut StdRng) -> Circuit {
    let mut circuit = Circuit::new(n);
    circuit.phase = Complex::cis(rng.gen::<f64>());
    let push = |c: &mut Circuit, g: Instruction| {
        c.push(match rate {
            Some(p) => g.with_error_rate(p),
            None => g,
        });
    };
    for q in [0, 1, n / 2, n - 2, n - 1] {
        match q % 3 {
            0 => push(
                &mut circuit,
                Instruction::new(vec![q], haar_unitary(2, rng), "1q"),
            ),
            1 => push(
                &mut circuit,
                Instruction::new(
                    vec![q],
                    CMat::diag(&[
                        Complex::cis(rng.gen::<f64>()),
                        Complex::cis(rng.gen::<f64>()),
                    ]),
                    "Rz",
                ),
            ),
            _ => push(
                &mut circuit,
                Instruction::new(
                    vec![q],
                    CMat::from_rows_f64(&[&[0.0, 1.0], &[1.0, 0.0]]),
                    "X",
                ),
            ),
        }
    }
    // Two-qubit ops across the register: adjacent low bits, straddling the
    // middle, the extreme pair (stressing every chunk-boundary shape).
    push(
        &mut circuit,
        Instruction::new(vec![0, 1], haar_unitary(4, rng), "U"),
    );
    push(
        &mut circuit,
        Instruction::new(vec![n / 2, n / 2 + 1], cz(), "CZ"),
    );
    push(
        &mut circuit,
        Instruction::new(vec![n - 1, 0], haar_unitary(4, rng), "Ufar"),
    );
    circuit
}

#[test]
fn pure_chunked_execution_is_bit_identical_at_1_2_8_workers() {
    for n in [16usize, 18, 20] {
        let mut rng = StdRng::seed_from_u64(7_000 + n as u64);
        let circuit = wide_circuit(n, None, &mut rng);
        let plan = ExecPlan::pure(&circuit).unwrap();

        let mut scalar = SimEngine::new(n).with_chunk_policy(ChunkPolicy::scalar());
        scalar.run_plan(&plan);
        let reference: Vec<u64> = scalar
            .amplitudes()
            .iter()
            .flat_map(|a| [a.re.to_bits(), a.im.to_bits()])
            .collect();

        for workers in [1usize, 2, 8] {
            let mut engine =
                SimEngine::new(n).with_chunk_policy(ChunkPolicy::with_workers(workers));
            engine.run_plan(&plan);
            let got: Vec<u64> = engine
                .amplitudes()
                .iter()
                .flat_map(|a| [a.re.to_bits(), a.im.to_bits()])
                .collect();
            assert!(got == reference, "n={n} workers={workers} diverged");
        }

        // And the chunked result matches the scalar instruction walk to
        // round-off (fusion reorders arithmetic, so 1e-12, not bits).
        let mut threaded = SimEngine::new(n).with_chunk_policy(ChunkPolicy::with_workers(8));
        threaded.run_plan(&plan);
        let mut walk = SimEngine::new(n).with_chunk_policy(ChunkPolicy::scalar());
        walk.run_pure_walk(&circuit);
        for (a, b) in threaded.amplitudes().iter().zip(walk.amplitudes()) {
            assert!((*a - *b).abs() < 1e-12, "n={n}: chunked vs walk");
        }
    }
}

#[test]
fn noisy_chunked_trajectories_are_bit_identical_at_1_2_8_workers() {
    let n = 16usize;
    let mut rng = StdRng::seed_from_u64(7_100);
    let circuit = wide_circuit(n, Some(0.25), &mut rng);
    let plan = ExecPlan::build(&circuit, &NoiseModel::NOISELESS).unwrap();

    let run = |workers: usize| {
        let mut engine = SimEngine::new(n).with_chunk_policy(ChunkPolicy::with_workers(workers));
        let mut rng = StdRng::seed_from_u64(42);
        let mut bits = Vec::new();
        for _ in 0..3 {
            engine.run_plan_trajectory(&plan, &mut rng);
            bits.extend(
                engine
                    .amplitudes()
                    .iter()
                    .flat_map(|a| [a.re.to_bits(), a.im.to_bits()]),
            );
        }
        // The RNG position must not depend on the worker count either.
        bits.push(rng.gen::<u64>());
        bits
    };

    let reference = run(1);
    for workers in [2usize, 8] {
        assert!(run(workers) == reference, "workers={workers} diverged");
    }
}

#[test]
fn below_threshold_registers_stay_scalar_but_policies_agree_anyway() {
    // n < MIN_PARALLEL_QUBITS: every policy resolves to one worker, and
    // the result is the same state regardless of the requested count.
    let n = 8usize;
    assert!(n < ChunkPolicy::MIN_PARALLEL_QUBITS);
    let mut rng = StdRng::seed_from_u64(7_200);
    let circuit = wide_circuit(n, None, &mut rng);
    let plan = ExecPlan::pure(&circuit).unwrap();
    let mut a = SimEngine::new(n).with_chunk_policy(ChunkPolicy::scalar());
    let mut b = SimEngine::new(n).with_chunk_policy(ChunkPolicy::with_workers(8));
    assert_eq!(ChunkPolicy::with_workers(8).effective_workers(n), 1);
    a.run_plan(&plan);
    b.run_plan(&plan);
    for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
        assert_eq!(x.re.to_bits(), y.re.to_bits());
        assert_eq!(x.im.to_bits(), y.im.to_bits());
    }
}
