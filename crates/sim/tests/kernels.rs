//! Differential property tests for the fast-path gate kernels: for random
//! 1q/2q/3q unitaries and qubit placements (adjacent, non-adjacent, and
//! reversed orders), the dispatching `apply_gate` must match the generic
//! gather/scatter path within `1e-12` — the correctness contract of the
//! fast-path simulation engine.

use ashn_ir::circuit::apply_gate;
use ashn_ir::kernels::apply_gate_generic;
use ashn_math::randmat::haar_unitary;
use ashn_math::{c, CMat, Complex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TOL: f64 = 1e-12;

/// A random normalized amplitude vector.
fn random_state(n: usize, rng: &mut StdRng) -> Vec<Complex> {
    let amps: Vec<Complex> = (0..1usize << n)
        .map(|_| c(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
        .collect();
    let norm = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    amps.into_iter().map(|a| a / norm).collect()
}

/// `k` distinct qubits of an `n`-qubit register in random order (covers
/// non-adjacent and reversed placements).
fn random_placement(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut all: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        all.swap(i, j);
    }
    all.truncate(k);
    all
}

/// Applies `m` through both paths on the same random state and compares.
fn differential_case(n: usize, qubits: &[usize], m: &CMat, rng: &mut StdRng) {
    let mut fast = random_state(n, rng);
    let mut reference = fast.clone();
    apply_gate(&mut fast, n, qubits, m);
    apply_gate_generic(&mut reference, n, qubits, m);
    for (i, (a, b)) in fast.iter().zip(reference.iter()).enumerate() {
        assert!(
            (*a - *b).abs() < TOL,
            "n={n} qubits={qubits:?} amp {i}: fast {a:?} vs generic {b:?}"
        );
    }
}

#[test]
fn random_unitaries_match_generic_on_random_placements() {
    // ≥ 200 random cases across arities: 100 single-qubit, 100 two-qubit,
    // 40 three-qubit (which exercises the generic path through dispatch).
    let mut rng = StdRng::seed_from_u64(2024);
    for trial in 0..100u64 {
        let n = 1 + (trial as usize % 6);
        let qubits = random_placement(n, 1, &mut rng);
        let u = haar_unitary(2, &mut rng);
        differential_case(n, &qubits, &u, &mut rng);
    }
    for trial in 0..100u64 {
        let n = 2 + (trial as usize % 5);
        let qubits = random_placement(n, 2, &mut rng);
        let u = haar_unitary(4, &mut rng);
        differential_case(n, &qubits, &u, &mut rng);
    }
    for trial in 0..40u64 {
        let n = 3 + (trial as usize % 4);
        let qubits = random_placement(n, 3, &mut rng);
        let u = haar_unitary(8, &mut rng);
        differential_case(n, &qubits, &u, &mut rng);
    }
}

#[test]
fn reversed_and_extreme_two_qubit_placements_match() {
    // Explicitly pin the orders the bit-twiddling is most likely to get
    // wrong: reversed pairs, the (first, last) span, and both edges.
    let mut rng = StdRng::seed_from_u64(31337);
    for n in 2..=7 {
        let placements = [
            vec![0, 1],
            vec![1, 0],
            vec![0, n - 1],
            vec![n - 1, 0],
            vec![n - 2, n - 1],
            vec![n - 1, n - 2],
        ];
        for qubits in placements {
            if qubits[0] == qubits[1] {
                continue;
            }
            let u = haar_unitary(4, &mut rng);
            differential_case(n, &qubits, &u, &mut rng);
        }
    }
}

#[test]
fn diagonal_and_controlled_phase_fast_paths_match() {
    let mut rng = StdRng::seed_from_u64(555);
    let cz = CMat::diag(&[Complex::ONE, Complex::ONE, Complex::ONE, c(-1.0, 0.0)]);
    let cphase = CMat::diag(&[Complex::ONE, Complex::ONE, Complex::ONE, Complex::cis(0.77)]);
    let zz = CMat::diag(&[
        Complex::cis(0.3),
        Complex::cis(-0.3),
        Complex::cis(-0.3),
        Complex::cis(0.3),
    ]);
    for m in [cz, cphase, zz] {
        for n in 2..=6 {
            for _ in 0..4 {
                let qubits = random_placement(n, 2, &mut rng);
                differential_case(n, &qubits, &m, &mut rng);
            }
        }
    }
    let rz = CMat::diag(&[Complex::cis(-0.9), Complex::cis(0.9)]);
    let phase = CMat::diag(&[Complex::ONE, Complex::cis(2.2)]);
    for m in [rz, phase] {
        for n in 1..=6 {
            for _ in 0..3 {
                let qubits = random_placement(n, 1, &mut rng);
                differential_case(n, &qubits, &m, &mut rng);
            }
        }
    }
}

#[test]
fn fast_path_preserves_norm_and_composition() {
    // A layered 1q/2q circuit applied gate-by-gate through the fast path
    // must agree with the same gates applied through the generic path.
    let mut rng = StdRng::seed_from_u64(909);
    let n = 5;
    let mut fast = random_state(n, &mut rng);
    let mut reference = fast.clone();
    for layer in 0..6 {
        for q in 0..n {
            let u = haar_unitary(2, &mut rng);
            apply_gate(&mut fast, n, &[q], &u);
            apply_gate_generic(&mut reference, n, &[q], &u);
        }
        for q in 0..n - 1 {
            if (q + layer) % 2 == 0 {
                let u = haar_unitary(4, &mut rng);
                let pair = if layer % 3 == 0 {
                    [q + 1, q]
                } else {
                    [q, q + 1]
                };
                apply_gate(&mut fast, n, &pair, &u);
                apply_gate_generic(&mut reference, n, &pair, &u);
            }
        }
    }
    let norm: f64 = fast.iter().map(|a| a.norm_sqr()).sum();
    assert!((norm - 1.0).abs() < 1e-10);
    for (a, b) in fast.iter().zip(reference.iter()) {
        assert!((*a - *b).abs() < TOL);
    }
}
