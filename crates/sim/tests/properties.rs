//! Property-based tests for the simulators.

use ashn_math::randmat::{haar_su, haar_unitary};
use ashn_sim::{Circuit, DensityMatrix, Instruction, NoiseModel, Simulate, StateVector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_circuit(n: usize, gates: usize, rng: &mut StdRng) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        if rng.gen::<bool>() && n >= 2 {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a {
                b = rng.gen_range(0..n);
            }
            c.push(Instruction::new(vec![a, b], haar_unitary(4, rng), "2q"));
        } else {
            let q = rng.gen_range(0..n);
            c.push(Instruction::new(vec![q], haar_su(2, rng), "1q"));
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn statevector_stays_normalised(seed in 0u64..500, n in 2usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = random_circuit(n, 8, &mut rng);
        let s = c.run_pure();
        prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probabilities_sum_to_one(seed in 0u64..500, n in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = random_circuit(n, 6, &mut rng);
        let p: f64 = c.run_pure().probabilities().iter().sum();
        prop_assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn density_matches_statevector_when_noiseless(seed in 0u64..200, n in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = random_circuit(n, 6, &mut rng);
        let pure = c.run_pure().probabilities();
        let rho = c.run_noisy(&NoiseModel::NOISELESS).probabilities();
        for (a, b) in pure.iter().zip(rho.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn noise_preserves_trace_and_reduces_purity(
        seed in 0u64..200,
        p2 in 0.005f64..0.2,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = random_circuit(3, 6, &mut rng);
        let noise = NoiseModel { one_qubit: 0.001, two_qubit: p2 };
        let rho = c.run_noisy(&noise);
        prop_assert!((rho.trace() - 1.0).abs() < 1e-8);
        if c.two_qubit_gate_count() > 0 {
            prop_assert!(rho.purity() < 1.0 + 1e-12);
        }
    }

    #[test]
    fn gate_order_matters_only_when_overlapping(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u1 = haar_unitary(4, &mut rng);
        let u2 = haar_unitary(4, &mut rng);
        // Disjoint supports commute.
        let mut a = StateVector::zero(4);
        a.apply(&[0, 1], &u1);
        a.apply(&[2, 3], &u2);
        let mut b = StateVector::zero(4);
        b.apply(&[2, 3], &u2);
        b.apply(&[0, 1], &u1);
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            prop_assert!((*x - *y).abs() < 1e-10);
        }
    }

    #[test]
    fn partial_depolarizing_interpolates(p in 0.0f64..1.0) {
        // Purity of a depolarized pure state interpolates monotonically.
        let mut rho = DensityMatrix::zero(2);
        rho.depolarize(&[0, 1], p);
        let purity = rho.purity();
        prop_assert!(purity <= 1.0 + 1e-12);
        prop_assert!(purity >= 0.25 - 1e-12);
        if p > 0.0 && p < 1.0 {
            prop_assert!(purity < 1.0 && purity > 0.25);
        }
    }
}
