//! Model-based calibration of the continuous AshN gate set (paper §5.2):
//! instead of calibrating infinitely many gates one by one, fit a small
//! *control model* mapping ideal gate parameters to what the hardware
//! actually plays, then compensate every pulse through the fitted model.

use ashn_core::hamiltonian::{evolve, DriveParams};
use ashn_core::scheme::AshnPulse;
use ashn_math::neldermead::{nelder_mead, NmOptions};
use ashn_math::{c, CMat, Complex};
use rand::Rng;

/// A simple control model: drive amplitudes are scaled and offset, and the
/// detuning picks up a constant shift (e.g. from a miscalibrated qubit
/// frequency).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ControlModel {
    /// Multiplicative amplitude error (ideal = 1).
    pub amp_scale: f64,
    /// Additive amplitude error on active drives (ideal = 0).
    pub amp_offset: f64,
    /// Additive detuning error (ideal = 0).
    pub detuning_offset: f64,
}

impl ControlModel {
    /// The ideal (identity) model.
    pub const IDEAL: ControlModel = ControlModel {
        amp_scale: 1.0,
        amp_offset: 0.0,
        detuning_offset: 0.0,
    };

    /// What the hardware actually plays when asked for `requested`.
    pub fn distort(&self, requested: DriveParams) -> DriveParams {
        let bend = |w: f64| {
            if w.abs() < 1e-12 {
                0.0
            } else {
                self.amp_scale * w + self.amp_offset * w.signum()
            }
        };
        DriveParams::new(
            bend(requested.omega1),
            bend(requested.omega2),
            requested.delta + self.detuning_offset,
        )
    }

    /// The request that makes the hardware play `desired` —
    /// the inverse of [`ControlModel::distort`].
    pub fn compensate(&self, desired: DriveParams) -> DriveParams {
        let unbend = |w: f64| {
            if w.abs() < 1e-12 {
                0.0
            } else {
                (w - self.amp_offset * w.signum()) / self.amp_scale
            }
        };
        DriveParams::new(
            unbend(desired.omega1),
            unbend(desired.omega2),
            desired.delta - self.detuning_offset,
        )
    }
}

/// Simulated hardware: executes requested pulses through a hidden true
/// control model.
#[derive(Clone, Copy, Debug)]
pub struct Hardware {
    /// The hidden truth the calibration must recover.
    pub true_model: ControlModel,
    /// Device `ZZ` ratio.
    pub h_ratio: f64,
}

impl Hardware {
    /// Executes a requested pulse, returning the realized unitary.
    pub fn execute(&self, drive: DriveParams, tau: f64) -> CMat {
        evolve(self.h_ratio, self.true_model.distort(drive), tau)
    }

    /// Measurement statistics of the pulse on a set of probe input states:
    /// returns the outcome probabilities (4 per input), optionally with
    /// binomial shot noise.
    pub fn probe(
        &self,
        drive: DriveParams,
        tau: f64,
        shots: usize,
        rng: &mut impl Rng,
    ) -> Vec<f64> {
        let u = self.execute(drive, tau);
        probe_probabilities(&u, shots, rng)
    }
}

/// Probe input states: |00⟩, |+0⟩, |0+⟩, |++⟩ — enough to make the model
/// parameters identifiable.
fn probe_inputs() -> Vec<[Complex; 4]> {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let zero = [Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::ZERO];
    let plus0 = [c(s, 0.0), Complex::ZERO, c(s, 0.0), Complex::ZERO];
    let zplus = [c(s, 0.0), c(s, 0.0), Complex::ZERO, Complex::ZERO];
    let pp = [c(0.5, 0.0), c(0.5, 0.0), c(0.5, 0.0), c(0.5, 0.0)];
    vec![zero, plus0, zplus, pp]
}

fn probe_probabilities(u: &CMat, shots: usize, rng: &mut impl Rng) -> Vec<f64> {
    let mut out = Vec::with_capacity(16);
    for input in probe_inputs() {
        let amps = u.mul_vec(&input);
        for a in amps {
            let p = a.norm_sqr();
            if shots == 0 {
                out.push(p);
            } else {
                let hits = (0..shots).filter(|_| rng.gen::<f64>() < p).count();
                out.push(hits as f64 / shots as f64);
            }
        }
    }
    out
}

/// Fits a [`ControlModel`] to hardware responses on the given probe pulses
/// (paper §5.2: black-box optimization of model parameters against gate-set
/// observables).
pub fn calibrate(
    hardware: &Hardware,
    probes: &[(DriveParams, f64)],
    shots: usize,
    rng: &mut impl Rng,
) -> ControlModel {
    // Collect observations once.
    let observed: Vec<Vec<f64>> = probes
        .iter()
        .map(|&(d, tau)| hardware.probe(d, tau, shots, rng))
        .collect();
    let objective = |v: &[f64]| {
        let model = ControlModel {
            amp_scale: v[0],
            amp_offset: v[1],
            detuning_offset: v[2],
        };
        let mut cost = 0.0;
        for (&(d, tau), obs) in probes.iter().zip(observed.iter()) {
            let u = evolve(hardware.h_ratio, model.distort(d), tau);
            let mut rng_dummy = rand::rngs::mock::StepRng::new(0, 1);
            let predicted = probe_probabilities(&u, 0, &mut rng_dummy);
            cost += predicted
                .iter()
                .zip(obs.iter())
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>();
        }
        cost
    };
    let res = nelder_mead(
        objective,
        &[1.0, 0.0, 0.0],
        &NmOptions {
            max_evals: 4000,
            f_tol: 1e-22,
            initial_step: 0.05,
            ..NmOptions::default()
        },
    );
    ControlModel {
        amp_scale: res.x[0],
        amp_offset: res.x[1],
        detuning_offset: res.x[2],
    }
}

/// Executes a compiled AshN pulse on hardware, with or without model
/// compensation, and returns the realized unitary.
pub fn execute_pulse(hardware: &Hardware, pulse: &AshnPulse, model: Option<&ControlModel>) -> CMat {
    let drive = match model {
        Some(m) => m.compensate(pulse.drive),
        None => pulse.drive,
    };
    hardware.execute(drive, pulse.tau)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_core::scheme::AshnScheme;
    use ashn_core::verify::entanglement_fidelity;
    use ashn_gates::weyl::WeylPoint;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn true_hw() -> Hardware {
        Hardware {
            true_model: ControlModel {
                amp_scale: 1.04,
                amp_offset: 0.015,
                detuning_offset: 0.02,
            },
            h_ratio: 0.0,
        }
    }

    fn probe_pulses() -> Vec<(DriveParams, f64)> {
        let scheme = AshnScheme::new(0.0);
        [
            WeylPoint::CNOT,
            WeylPoint::SWAP,
            WeylPoint::B,
            WeylPoint::SQISW,
        ]
        .iter()
        .map(|&p| {
            let pulse = scheme.compile(p).unwrap();
            (pulse.drive, pulse.tau)
        })
        .collect()
    }

    #[test]
    fn distort_compensate_round_trip() {
        let m = ControlModel {
            amp_scale: 1.07,
            amp_offset: -0.03,
            detuning_offset: 0.05,
        };
        let d = DriveParams::new(0.8, 0.0, -0.4);
        let back = m.distort(m.compensate(d));
        assert!((back.omega1 - d.omega1).abs() < 1e-12);
        assert!((back.omega2 - d.omega2).abs() < 1e-12);
        assert!((back.delta - d.delta).abs() < 1e-12);
    }

    #[test]
    fn calibration_recovers_model_exactly_without_shot_noise() {
        let hw = true_hw();
        let mut rng = StdRng::seed_from_u64(71);
        let fitted = calibrate(&hw, &probe_pulses(), 0, &mut rng);
        assert!(
            (fitted.amp_scale - hw.true_model.amp_scale).abs() < 1e-4,
            "{fitted:?}"
        );
        assert!((fitted.amp_offset - hw.true_model.amp_offset).abs() < 1e-4);
        assert!((fitted.detuning_offset - hw.true_model.detuning_offset).abs() < 1e-4);
    }

    #[test]
    fn calibration_with_shots_is_close() {
        let hw = true_hw();
        let mut rng = StdRng::seed_from_u64(72);
        let fitted = calibrate(&hw, &probe_pulses(), 20_000, &mut rng);
        assert!(
            (fitted.amp_scale - hw.true_model.amp_scale).abs() < 0.02,
            "{fitted:?}"
        );
        assert!((fitted.detuning_offset - hw.true_model.detuning_offset).abs() < 0.02);
    }

    #[test]
    fn compensation_restores_gate_fidelity() {
        let hw = true_hw();
        let scheme = AshnScheme::new(0.0);
        let mut rng = StdRng::seed_from_u64(73);
        let fitted = calibrate(&hw, &probe_pulses(), 0, &mut rng);
        // A target *not* in the probe set.
        let pulse = scheme.compile(WeylPoint::new(0.6, 0.3, -0.15)).unwrap();
        let ideal = pulse.unitary();
        let raw = execute_pulse(&hw, &pulse, None);
        let corrected = execute_pulse(&hw, &pulse, Some(&fitted));
        let f_raw = entanglement_fidelity(&ideal, &raw);
        let f_cor = entanglement_fidelity(&ideal, &corrected);
        assert!(f_raw < 0.999, "distortion should hurt: F = {f_raw}");
        assert!(f_cor > 0.99999, "compensation should fix it: F = {f_cor}");
    }
}
