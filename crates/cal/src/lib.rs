//! # ashn-cal
//!
//! Calibration machinery for the AshN instruction set (paper §5):
//!
//! * pulse envelopes and time-ordered evolution for realistic (ramped)
//!   waveforms;
//! * the **Cartan double** `γ(U) = U·YY·Uᵀ·YY`, whose eigenphases reveal a
//!   gate's Weyl coordinates without knowing its single-qubit dressing;
//! * a shot-level **quantum phase estimation** simulator — the readout the
//!   paper proposes for those eigenphases;
//! * **fully randomized benchmarking** (FRB) decay curves and fits;
//! * **model-based gate-set calibration**: fit a small control model from
//!   probe pulses and compensate every gate in the continuous set through
//!   it (§5.2).
//!
//! ```
//! use ashn_cal::cartan::estimate_coords;
//! use ashn_core::{evolve, DriveParams};
//! use ashn_gates::kak::weyl_coordinates;
//!
//! let u = evolve(0.0, DriveParams::new(0.5, 0.2, 0.1), 1.2);
//! let truth = weyl_coordinates(&u);
//! assert!(estimate_coords(&u, truth).gate_dist(truth) < 1e-7);
//! ```

pub mod cartan;
pub mod frb;
pub mod model;
pub mod pulse;
pub mod qpe;
pub mod xeb;

pub use cartan::{cartan_double, estimate_coords};
pub use model::{calibrate, ControlModel, Hardware};
pub use pulse::PulseShape;
