//! Textbook quantum phase estimation, simulated with shot noise — the
//! readout mechanism the paper proposes for Cartan-double calibration
//! (§5.1).

use ashn_math::{CMat, Complex};
use ashn_sim::StateVector;
use rand::Rng;
use std::collections::BTreeMap;

/// Builds the controlled version of `u` (control = first qubit of the
/// returned gate's register).
fn controlled(u: &CMat) -> CMat {
    let d = u.rows();
    let mut m = CMat::identity(2 * d);
    m.set_block(d, d, u);
    m
}

/// Runs `shots` rounds of `m_bits` phase estimation of the 4×4 unitary `v`
/// on the two-qubit input state `input` (4 amplitudes), returning a
/// histogram over the `2^m` phase bins.
///
/// Register layout: ancillas `0..m` (qubit 0 = most significant phase bit),
/// system qubits `m, m+1`.
///
/// # Panics
///
/// Panics when `v` is not 4×4 or the input state has the wrong length.
pub fn qpe_histogram(
    v: &CMat,
    input: &[Complex; 4],
    m_bits: usize,
    shots: usize,
    rng: &mut impl Rng,
) -> BTreeMap<usize, usize> {
    assert_eq!(v.rows(), 4);
    assert!((1..=10).contains(&m_bits));
    let n = m_bits + 2;
    // Prepare |+⟩^m ⊗ |ψ⟩ directly.
    let dim = 1usize << n;
    let norm = (1usize << m_bits) as f64;
    let mut amps = vec![Complex::ZERO; dim];
    for a in 0..1usize << m_bits {
        for s in 0..4usize {
            amps[(a << 2) | s] = input[s] / norm.sqrt();
        }
    }
    let mut state = StateVector::from_amplitudes_unchecked(amps);

    // Controlled powers: ancilla k (significance 2^{m−1−k}) controls V^{2^{m−1−k}}.
    let mut power = v.clone();
    for k in (0..m_bits).rev() {
        let cv = controlled(&power);
        state.apply(&[k, m_bits, m_bits + 1], &cv);
        power = power.matmul(&power);
    }

    // Inverse QFT. The textbook forward circuit C satisfies F = SWAPs∘C, so
    // F† = C†∘SWAPs = SWAPs∘(SWAPs C† SWAPs): we apply C† with all qubit
    // labels reversed and absorb the final SWAPs into a classical
    // bit-reversal at readout.
    let h = CMat::from_rows_f64(&[
        &[
            std::f64::consts::FRAC_1_SQRT_2,
            std::f64::consts::FRAC_1_SQRT_2,
        ],
        &[
            std::f64::consts::FRAC_1_SQRT_2,
            -std::f64::consts::FRAC_1_SQRT_2,
        ],
    ]);
    let rev = |q: usize| m_bits - 1 - q;
    for i in (0..m_bits).rev() {
        for j in ((i + 1)..m_bits).rev() {
            // CR† with angle −2π/2^{j−i+1} (symmetric diagonal gate).
            let angle = -std::f64::consts::PI / (1 << (j - i)) as f64;
            let cp = CMat::diag(&[
                Complex::ONE,
                Complex::ONE,
                Complex::ONE,
                Complex::cis(angle),
            ]);
            state.apply(&[rev(j), rev(i)], &cp);
        }
        state.apply(&[rev(i)], &h);
    }

    // Sample; the deferred SWAPs mean ancilla qubit k carries the phase bit
    // of significance 2^k. With qubit 0 the integer MSB, the measured
    // ancilla integer is the bit-reversed phase bin.
    let mut hist = BTreeMap::new();
    for _ in 0..shots {
        let outcome = state.sample(rng);
        let anc = outcome >> 2;
        let mut bin = 0usize;
        for k in 0..m_bits {
            // Ancilla qubit k is integer bit (m−1−k) and phase bit k.
            if anc >> (m_bits - 1 - k) & 1 == 1 {
                bin |= 1 << k;
            }
        }
        *hist.entry(bin).or_insert(0) += 1;
    }
    hist
}

/// Converts a phase bin to the estimated eigenphase in `(−π, π]`.
pub fn bin_to_phase(bin: usize, m_bits: usize) -> f64 {
    let frac = bin as f64 / (1usize << m_bits) as f64;
    let mut phase = std::f64::consts::TAU * frac;
    if phase > std::f64::consts::PI {
        phase -= std::f64::consts::TAU;
    }
    phase
}

/// Extracts up to `k` dominant phases from a QPE histogram.
pub fn dominant_phases(hist: &BTreeMap<usize, usize>, m_bits: usize, k: usize) -> Vec<f64> {
    let mut entries: Vec<(usize, usize)> = hist.iter().map(|(a, b)| (*a, *b)).collect();
    entries.sort_by_key(|e| std::cmp::Reverse(e.1));
    entries
        .into_iter()
        .take(k)
        .map(|(bin, _)| bin_to_phase(bin, m_bits))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_math::c;
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_eigenphase_is_recovered_deterministically() {
        // V = diag with eigenphase 2π·(5/16) on |11⟩; eigenstate input.
        let phase = std::f64::consts::TAU * 5.0 / 16.0;
        let v = CMat::diag(&[
            Complex::ONE,
            Complex::ONE,
            Complex::ONE,
            Complex::cis(phase),
        ]);
        let input = [Complex::ZERO, Complex::ZERO, Complex::ZERO, Complex::ONE];
        let mut rng = StdRng::seed_from_u64(51);
        let hist = qpe_histogram(&v, &input, 4, 200, &mut rng);
        // All shots land in bin 5.
        assert_eq!(hist.len(), 1);
        assert!(hist.contains_key(&5), "histogram: {hist:?}");
    }

    #[test]
    fn superposition_input_reveals_multiple_phases() {
        // Two eigenphases at bins 2 and 12 of a 4-bit register.
        let p1 = std::f64::consts::TAU * 2.0 / 16.0;
        let p2 = std::f64::consts::TAU * 12.0 / 16.0;
        let v = CMat::diag(&[
            Complex::cis(p1),
            Complex::cis(p2),
            Complex::ONE,
            Complex::ONE,
        ]);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let input = [c(s, 0.0), c(s, 0.0), Complex::ZERO, Complex::ZERO];
        let mut rng = StdRng::seed_from_u64(52);
        let hist = qpe_histogram(&v, &input, 4, 400, &mut rng);
        let phases = dominant_phases(&hist, 4, 2);
        let expect1 = bin_to_phase(2, 4);
        let expect2 = bin_to_phase(12, 4);
        assert!(phases.iter().any(|p| (p - expect1).abs() < 1e-9));
        assert!(phases.iter().any(|p| (p - expect2).abs() < 1e-9));
        // Roughly balanced counts.
        let c2 = hist.get(&2).copied().unwrap_or(0);
        let c12 = hist.get(&12).copied().unwrap_or(0);
        assert!(c2 > 120 && c12 > 120, "{hist:?}");
    }

    #[test]
    fn generic_unitary_phases_within_resolution() {
        let mut rng = StdRng::seed_from_u64(53);
        let v = haar_unitary(4, &mut rng);
        let e = ashn_math::eig::eig_unitary(&v);
        // Feed one exact eigenvector; QPE must peak within one bin of its
        // eigenphase.
        let col = e.vectors.col(0);
        let input = [col[0], col[1], col[2], col[3]];
        let m = 7;
        let hist = qpe_histogram(&v, &input, m, 300, &mut rng);
        let est = dominant_phases(&hist, m, 1)[0];
        let truth = e.values[0].arg();
        let diff = (est - truth)
            .abs()
            .min(std::f64::consts::TAU - (est - truth).abs());
        assert!(
            diff < std::f64::consts::TAU / (1 << m) as f64 * 1.5,
            "estimated {est}, truth {truth}"
        );
    }
}
