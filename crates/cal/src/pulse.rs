//! Pulse envelopes and time-dependent evolution.
//!
//! The AshN analysis assumes perfect square envelopes; real AWGs produce
//! finite rise/fall times (paper §5.1, footnote 4). This module provides
//! ramped envelopes and a time-ordered integrator so the calibration
//! machinery can be exercised on realistic pulses.

use ashn_core::hamiltonian::{hamiltonian, DriveParams};
use ashn_math::expm::expm_minus_i_hermitian;
use ashn_math::CMat;

/// Amplitude envelope of a drive pulse.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PulseShape {
    /// Ideal rectangular envelope.
    Square,
    /// Linear ramp up and down over `rise` (fraction of the total length).
    Trapezoid {
        /// Rise/fall time as a fraction of the pulse length (`< 0.5`).
        rise: f64,
    },
    /// Raised-cosine ramp up and down over `rise` (fraction).
    CosineRamp {
        /// Rise/fall time as a fraction of the pulse length (`< 0.5`).
        rise: f64,
    },
}

impl PulseShape {
    /// Envelope value in `[0, 1]` at normalised time `s = t/τ ∈ [0, 1]`.
    pub fn envelope(&self, s: f64) -> f64 {
        let s = s.clamp(0.0, 1.0);
        match *self {
            PulseShape::Square => 1.0,
            PulseShape::Trapezoid { rise } => {
                assert!((0.0..0.5).contains(&rise));
                if rise == 0.0 {
                    1.0
                } else if s < rise {
                    s / rise
                } else if s > 1.0 - rise {
                    (1.0 - s) / rise
                } else {
                    1.0
                }
            }
            PulseShape::CosineRamp { rise } => {
                assert!((0.0..0.5).contains(&rise));
                if rise == 0.0 {
                    1.0
                } else if s < rise {
                    0.5 * (1.0 - (std::f64::consts::PI * (1.0 - s / rise)).cos())
                } else if s > 1.0 - rise {
                    0.5 * (1.0 - (std::f64::consts::PI * (1.0 - (1.0 - s) / rise)).cos())
                } else {
                    1.0
                }
            }
        }
    }
}

/// Time-ordered evolution under the AshN Hamiltonian with an enveloped
/// drive: the coupling (and `ZZ`) term is always on; `Ω₁, Ω₂` are scaled by
/// the envelope; the detuning `δ` is a frequency setting and stays constant.
///
/// Uses the midpoint (2nd-order Magnus) product formula with `steps` slices.
pub fn evolve_pulsed(
    h_ratio: f64,
    drive: DriveParams,
    tau: f64,
    shape: PulseShape,
    steps: usize,
) -> CMat {
    assert!(steps >= 1);
    if let PulseShape::Square = shape {
        // Exact in one shot.
        return expm_minus_i_hermitian(&hamiltonian(h_ratio, drive), tau);
    }
    let dt = tau / steps as f64;
    let mut u = CMat::identity(4);
    for k in 0..steps {
        let s = (k as f64 + 0.5) / steps as f64;
        let env = shape.envelope(s);
        let d = DriveParams::new(drive.omega1 * env, drive.omega2 * env, drive.delta);
        let step = expm_minus_i_hermitian(&hamiltonian(h_ratio, d), dt);
        u = step.matmul(&u);
    }
    u
}

/// The same pulse played backwards in time with negated drive amplitudes
/// and detuning — the `Θ⁻¹` waveform of paper Fig. 4.
pub fn evolve_pulsed_reversed(
    h_ratio: f64,
    drive: DriveParams,
    tau: f64,
    shape: PulseShape,
    steps: usize,
) -> CMat {
    let neg = DriveParams::new(-drive.omega1, -drive.omega2, -drive.delta);
    // Time reversal of the envelope: our envelopes are symmetric, so the
    // reversed waveform has the same shape; the integrator below runs the
    // slices in reversed order regardless, for asymmetric generalisations.
    let dt = tau / steps as f64;
    let mut u = CMat::identity(4);
    for k in (0..steps).rev() {
        let s = (k as f64 + 0.5) / steps as f64;
        let env = shape.envelope(s);
        let d = DriveParams::new(neg.omega1 * env, neg.omega2 * env, neg.delta);
        let step = expm_minus_i_hermitian(&hamiltonian(h_ratio, d), dt);
        u = step.matmul(&u);
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_core::evolve;

    #[test]
    fn envelopes_are_bounded_and_symmetric() {
        for shape in [
            PulseShape::Square,
            PulseShape::Trapezoid { rise: 0.2 },
            PulseShape::CosineRamp { rise: 0.3 },
        ] {
            for k in 0..=40 {
                let s = k as f64 / 40.0;
                let v = shape.envelope(s);
                assert!((0.0..=1.0 + 1e-12).contains(&v));
                let w = shape.envelope(1.0 - s);
                assert!((v - w).abs() < 1e-12, "envelope must be symmetric");
            }
        }
    }

    #[test]
    fn square_pulse_matches_exact_evolution() {
        let d = DriveParams::new(0.7, 0.2, -0.4);
        let a = evolve_pulsed(0.1, d, 1.3, PulseShape::Square, 1);
        let b = evolve(0.1, d, 1.3);
        assert!(a.dist(&b) < 1e-12);
    }

    #[test]
    fn integrator_converges_with_steps() {
        let d = DriveParams::new(0.9, 0.0, 0.3);
        let shape = PulseShape::Trapezoid { rise: 0.25 };
        let coarse = evolve_pulsed(0.0, d, 1.5, shape, 40);
        let fine = evolve_pulsed(0.0, d, 1.5, shape, 400);
        let finer = evolve_pulsed(0.0, d, 1.5, shape, 800);
        assert!(fine.dist(&finer) < coarse.dist(&finer));
        assert!(fine.dist(&finer) < 1e-5);
    }

    #[test]
    fn ramped_pulse_differs_from_square() {
        let d = DriveParams::new(0.9, 0.4, 0.0);
        let sq = evolve_pulsed(0.0, d, 1.5, PulseShape::Square, 1);
        let ramp = evolve_pulsed(0.0, d, 1.5, PulseShape::CosineRamp { rise: 0.3 }, 200);
        assert!(sq.dist(&ramp) > 1e-2, "ramping must matter");
    }

    #[test]
    fn evolution_is_unitary() {
        let d = DriveParams::new(0.5, -0.3, 0.2);
        let u = evolve_pulsed(0.4, d, 2.0, PulseShape::CosineRamp { rise: 0.2 }, 150);
        assert!(u.is_unitary(1e-9));
    }
}
