//! The Cartan double (paper §5.1, Fig. 4): reducing interaction-coefficient
//! calibration to phase estimation.
//!
//! For any two-qubit gate, `γ(U) = U·YY·Uᵀ·YY` has spectrum
//! `{e^{2iθⱼ}}` with `θ = (x−y+z, x+y−z, −x−y−z, −x+y+z)` — the local
//! factors cancel, so the eigenphases reveal the Weyl coordinates without
//! knowing the single-qubit dressing.

use ashn_gates::pauli::yy;
use ashn_gates::weyl::WeylPoint;
use ashn_math::eig::eig_unitary;
use ashn_math::CMat;

/// The Cartan double `γ(U) = U·YY·Uᵀ·YY`.
pub fn cartan_double(u: &CMat) -> CMat {
    let y2 = yy();
    u.matmul(&y2).matmul(&u.transpose()).matmul(&y2)
}

/// Eigenphases of the Cartan double, each in `(−π, π]`.
pub fn cartan_phases(u: &CMat) -> [f64; 4] {
    let g = cartan_double(u);
    let e = eig_unitary(&g);
    let mut out = [0.0; 4];
    for (o, v) in out.iter_mut().zip(e.values.iter()) {
        *o = v.arg();
    }
    out
}

/// Recovers canonical Weyl coordinates from measured Cartan-double phases.
///
/// The measured phases are `2θⱼ + Δ` modulo `2π`, where `Δ = 2·arg(g)` is a
/// common offset from the global phase of the implemented gate
/// (`γ(U) = g²·L·CAN(2x,2y,2z)·L†`). Since `Σ 2θⱼ ≡ 0 (mod 2π)`, the offset
/// is pinned to `Δ = (Σ phases)/4 + k·π/2`. The reconstruction enumerates
/// the four offsets, phase orderings and `π`-branch shifts of `θ`, maps
/// each candidate through the linear relations
/// `x = (θ₀+θ₁)/2, y = (θ₁+θ₃)/2, z = (θ₀+θ₃)/2`, canonicalizes, and keeps
/// the candidate closest to `prior` (in calibration you always know roughly
/// which gate you just played).
pub fn coords_from_phases(phases: &[f64; 4], prior: WeylPoint) -> WeylPoint {
    let prior = prior.canonicalize();
    let mut best = WeylPoint::IDENTITY;
    let mut best_d = f64::INFINITY;
    let sum: f64 = phases.iter().sum();
    let perms: [[usize; 4]; 24] = permutations4();
    for k_off in 0..4 {
        let delta = sum / 4.0 + k_off as f64 * std::f64::consts::FRAC_PI_2;
        for perm in perms {
            for branch in 0..8u32 {
                // θⱼ = (phase − Δ)/2 + kⱼ·π; only relative branches matter,
                // so fix k₃ = 0.
                let theta: Vec<f64> = (0..4)
                    .map(|j| {
                        let k = if j < 3 { (branch >> j) & 1 } else { 0 };
                        (phases[perm[j]] - delta) / 2.0 + k as f64 * std::f64::consts::PI
                    })
                    .collect();
                let p = WeylPoint::new(
                    (theta[0] + theta[1]) / 2.0,
                    (theta[1] + theta[3]) / 2.0,
                    (theta[0] + theta[3]) / 2.0,
                )
                .canonicalize();
                let d = p.gate_dist(prior);
                if d < best_d {
                    best_d = d;
                    best = p;
                }
            }
        }
    }
    best
}

/// Estimates the Weyl coordinates of `u` via its Cartan double
/// (exact-diagonalisation stand-in for the phase-estimation readout).
pub fn estimate_coords(u: &CMat, prior: WeylPoint) -> WeylPoint {
    coords_from_phases(&cartan_phases(u), prior)
}

fn permutations4() -> [[usize; 4]; 24] {
    let mut out = [[0usize; 4]; 24];
    let mut k = 0;
    for a in 0..4 {
        for b in 0..4 {
            if b == a {
                continue;
            }
            for c in 0..4 {
                if c == a || c == b {
                    continue;
                }
                let d = 6 - a - b - c;
                out[k] = [a, b, c, d];
                k += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_core::hamiltonian::{evolve, DriveParams};
    use ashn_gates::kak::weyl_coordinates;
    use ashn_gates::two::{canonical, cnot};
    use ashn_math::randmat::{haar_su, haar_unitary};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cartan_double_is_local_invariant() {
        // γ((A⊗B)·U·(C⊗D)) shares γ(U)'s spectrum: right locals cancel via
        // YY·Mᵀ·YY = M† for M ∈ SU(2)⊗SU(2), left ones by similarity.
        let mut rng = StdRng::seed_from_u64(41);
        let u = haar_unitary(4, &mut rng);
        let l = haar_su(2, &mut rng).kron(&haar_su(2, &mut rng));
        let r = haar_su(2, &mut rng).kron(&haar_su(2, &mut rng));
        let dressed = l.matmul(&u).matmul(&r);
        let mut p1 = cartan_phases(&u);
        let mut p2 = cartan_phases(&dressed);
        p1.sort_by(|a, b| a.partial_cmp(b).unwrap());
        p2.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (a, b) in p1.iter().zip(p2.iter()) {
            assert!((a - b).abs() < 1e-7, "{p1:?} vs {p2:?}");
        }
    }

    #[test]
    fn cnot_phases_carry_the_determinant_offset() {
        // [CNOT] has 2θ = (±π/2, ±π/2), but det(CNOT) = −1 shifts all
        // measured phases by Δ = ±π/2, giving {0, 0, π, π}.
        let mut p = cartan_phases(&cnot());
        p.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(p[0].abs() < 1e-8 && p[1].abs() < 1e-8, "{p:?}");
        assert!((p[2] - std::f64::consts::PI).abs() < 1e-8);
        // The offset-aware reconstruction still lands on [CNOT].
        let est = coords_from_phases(&cartan_phases(&cnot()), WeylPoint::CNOT);
        assert!(est.gate_dist(WeylPoint::CNOT) < 1e-8);
    }

    #[test]
    fn estimates_match_kak_for_random_gates() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..15 {
            let u = haar_unitary(4, &mut rng);
            let truth = weyl_coordinates(&u);
            let est = estimate_coords(&u, truth);
            assert!(
                est.gate_dist(truth) < 1e-7,
                "estimate {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn estimates_survive_imprecise_priors() {
        // The prior only needs to pick the right Weyl-group sheet.
        let target = WeylPoint::new(0.5, 0.3, 0.1);
        let u = canonical(target.x, target.y, target.z);
        let fuzzy_prior = WeylPoint::new(0.45, 0.33, 0.13);
        let est = estimate_coords(&u, fuzzy_prior);
        assert!(est.gate_dist(target.canonicalize()) < 1e-8);
    }

    #[test]
    fn ashn_pulse_coordinates_via_cartan() {
        // Estimate the coordinates of a real AshN evolution.
        let drive = DriveParams::new(0.6, 0.25, 0.0);
        let u = evolve(0.2, drive, 1.1);
        let truth = weyl_coordinates(&u);
        let est = estimate_coords(&u, truth);
        assert!(est.gate_dist(truth) < 1e-7);
    }
}
