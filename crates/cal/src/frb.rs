//! Fully randomized benchmarking (FRB, paper refs [27, 30]): random
//! sequences of Haar two-qubit gates, inverted ideally at the end; the
//! survival probability decays exponentially in the sequence length with a
//! rate set by the average gate error.

use ashn_math::neldermead::{nelder_mead, NmOptions};
use ashn_math::randmat::haar_su;
use ashn_math::{CMat, Complex};
use rand::Rng;

/// Survival probability of one random sequence of length `len`: implemented
/// gates followed by the ideal inverse, measured in `|00⟩` with `shots`
/// samples (`shots = 0` → exact probability).
pub fn sequence_survival(
    len: usize,
    implement: &mut dyn FnMut(&CMat) -> CMat,
    shots: usize,
    rng: &mut impl Rng,
) -> f64 {
    let mut ideal = CMat::identity(4);
    let mut real = CMat::identity(4);
    for _ in 0..len {
        let g = haar_su(4, rng);
        ideal = g.matmul(&ideal);
        real = implement(&g).matmul(&real);
    }
    let total = ideal.adjoint().matmul(&real);
    let amp0: Vec<Complex> = total.col(0);
    let p = amp0[0].norm_sqr();
    if shots == 0 {
        p
    } else {
        let hits = (0..shots).filter(|_| rng.gen::<f64>() < p).count();
        hits as f64 / shots as f64
    }
}

/// Averaged FRB decay curve over `n_seq` sequences per length.
pub fn frb_curve(
    lengths: &[usize],
    n_seq: usize,
    implement: &mut dyn FnMut(&CMat) -> CMat,
    shots: usize,
    rng: &mut impl Rng,
) -> Vec<(usize, f64)> {
    lengths
        .iter()
        .map(|&len| {
            let mean = (0..n_seq)
                .map(|_| sequence_survival(len, implement, shots, rng))
                .sum::<f64>()
                / n_seq as f64;
            (len, mean)
        })
        .collect()
}

/// Fits `p(L) = A·f^L + B` to a decay curve; returns `(a, f, b)`.
pub fn fit_decay(curve: &[(usize, f64)]) -> (f64, f64, f64) {
    assert!(curve.len() >= 3, "need at least three lengths to fit");
    // Parameters are clamped to their physical ranges (probabilities!), or
    // the 3-parameter model degenerates into a huge-A/huge-negative-B linear
    // fit on short curves.
    let objective = |v: &[f64]| {
        let (a, f, b) = (
            v[0].clamp(0.0, 1.0),
            v[1].clamp(0.0, 1.0),
            v[2].clamp(0.0, 1.0),
        );
        curve
            .iter()
            .map(|&(l, p)| (a * f.powi(l as i32) + b - p).powi(2))
            .sum::<f64>()
    };
    // Data-driven seeds: assume B near the depolarized floor 1/4, estimate
    // f from the first/last points, and scan a few alternatives.
    let (l0, p0) = curve[0];
    let (l1, p1) = *curve.last().unwrap();
    let mut seeds: Vec<[f64; 3]> = Vec::new();
    for b0 in [0.25, 0.0, p1.min(0.9)] {
        let a0 = (p0 - b0).max(1e-3);
        let ratio = ((p1 - b0) / a0).clamp(1e-6, 1.0);
        let f0 = ratio
            .powf(1.0 / (l1 - l0).max(1) as f64)
            .clamp(0.1, 0.99999);
        seeds.push([a0, f0, b0]);
    }
    seeds.push([0.75, 0.99, 0.25]);
    let mut best = (f64::INFINITY, [0.75, 0.99, 0.25]);
    for seed in seeds {
        let res = nelder_mead(
            objective,
            &seed,
            &NmOptions {
                max_evals: 6000,
                f_tol: 1e-20,
                initial_step: 0.02,
                ..NmOptions::default()
            },
        );
        if res.f < best.0 {
            best = (res.f, [res.x[0], res.x[1], res.x[2]]);
        }
    }
    (
        best.1[0].clamp(0.0, 1.0),
        best.1[1].clamp(0.0, 1.0),
        best.1[2].clamp(0.0, 1.0),
    )
}

/// Average gate infidelity from an FRB decay parameter `f` on `d = 4`:
/// `r = (1 − f)·(d − 1)/d`.
pub fn infidelity_from_decay(f: f64) -> f64 {
    (1.0 - f) * 3.0 / 4.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_gates::single::rz;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_implementation_survives() {
        let mut rng = StdRng::seed_from_u64(61);
        let mut perfect = |g: &CMat| g.clone();
        for len in [1usize, 5, 20] {
            let p = sequence_survival(len, &mut perfect, 0, &mut rng);
            assert!((p - 1.0).abs() < 1e-10, "len {len}: p = {p}");
        }
    }

    #[test]
    fn coherent_error_decays_survival() {
        let mut rng = StdRng::seed_from_u64(62);
        // Implementation error: stray Rz(0.25) on qubit 0 after every gate
        // (strong enough that the decay is resolvable from 4 lengths).
        let err = rz(0.25).kron(&CMat::identity(2));
        let mut noisy = |g: &CMat| err.matmul(g);
        let curve = frb_curve(&[1, 4, 16, 48], 32, &mut noisy, 0, &mut rng);
        assert!(curve[0].1 > curve[3].1 + 0.05, "curve {curve:?}");
        let (_, f, _) = fit_decay(&curve);
        assert!(f < 0.999 && f > 0.5, "decay f = {f}");
    }

    #[test]
    fn fit_recovers_synthetic_decay() {
        let truth = (0.72f64, 0.97f64, 0.26f64);
        let curve: Vec<(usize, f64)> = [1usize, 2, 4, 8, 16, 32, 64]
            .iter()
            .map(|&l| (l, truth.0 * truth.1.powi(l as i32) + truth.2))
            .collect();
        let (a, f, b) = fit_decay(&curve);
        assert!((a - truth.0).abs() < 1e-4);
        assert!((f - truth.1).abs() < 1e-5);
        assert!((b - truth.2).abs() < 1e-4);
    }

    #[test]
    fn shot_noise_is_unbiased() {
        let mut rng = StdRng::seed_from_u64(63);
        let err = rz(0.2).kron(&CMat::identity(2));
        let mut noisy = |g: &CMat| err.matmul(g);
        let exact = sequence_survival(0, &mut noisy, 0, &mut rng);
        assert!((exact - 1.0).abs() < 1e-12, "length-0 survives exactly");
        // Compare sampled vs exact at a fixed length with many shots.
        let mut rng1 = StdRng::seed_from_u64(64);
        let mut rng2 = StdRng::seed_from_u64(64);
        let p_exact = sequence_survival(6, &mut noisy, 0, &mut rng1);
        let p_shot = sequence_survival(6, &mut noisy, 20_000, &mut rng2);
        assert!((p_exact - p_shot).abs() < 0.02);
    }

    #[test]
    fn infidelity_conversion() {
        assert!((infidelity_from_decay(1.0)).abs() < 1e-15);
        assert!((infidelity_from_decay(0.96) - 0.03).abs() < 1e-12);
    }
}
