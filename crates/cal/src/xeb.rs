//! Linear cross-entropy benchmarking (XEB) — the reconfigurable-gate-set
//! characterisation scheme the paper's discussion points to (§7, ref [68]).
//!
//! Random two-qubit circuits alternate Haar single-qubit layers with the
//! gate under test; sampling the noisy output and scoring bitstrings by the
//! ideal distribution estimates the circuit fidelity under
//! depolarizing-like noise. At two qubits the asymptotic `2ⁿ⟨p⟩ − 1`
//! estimator is biased (a Haar state's collision probability is `2/(D+1)`,
//! not `2/D`), so we use the self-normalised form
//!
//! ```text
//! F = (D·Σ p_ideal·p_real − 1) / (D·Σ p_ideal² − 1)
//! ```
//!
//! which is exactly 1 for a perfect implementation at any dimension.

use ashn_math::randmat::haar_su;
use ashn_math::CMat;
use ashn_sim::{Circuit, Instruction, NoiseModel, Simulate};
use rand::Rng;

/// One XEB random circuit: `depth` repetitions of (1q Haar layer, the gate
/// under test), built twice — the ideal gate and the implementation.
fn build_pair(
    ideal_gate: &CMat,
    real_gate: &CMat,
    depth: usize,
    rng: &mut impl Rng,
) -> (Circuit, Circuit) {
    let mut ideal = Circuit::new(2);
    let mut real = Circuit::new(2);
    for _ in 0..depth {
        for q in 0..2 {
            let u = haar_su(2, rng);
            ideal.push(Instruction::new(vec![q], u.clone(), "1q"));
            real.push(Instruction::new(vec![q], u, "1q"));
        }
        ideal.push(Instruction::new(vec![0, 1], ideal_gate.clone(), "G"));
        real.push(Instruction::new(vec![0, 1], real_gate.clone(), "G"));
    }
    (ideal, real)
}

/// Estimates the linear-XEB fidelity of `real_gate` against `ideal_gate`
/// at the given circuit depth, averaging `n_circuits` random circuits with
/// `shots` samples each (`shots = 0` → exact noisy distribution).
pub fn xeb_fidelity(
    ideal_gate: &CMat,
    real_gate: &CMat,
    depth: usize,
    n_circuits: usize,
    shots: usize,
    rng: &mut impl Rng,
) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for _ in 0..n_circuits {
        let (ideal, real) = build_pair(ideal_gate, real_gate, depth, rng);
        let p_ideal = ideal.run_pure().probabilities();
        den += 4.0 * p_ideal.iter().map(|p| p * p).sum::<f64>() - 1.0;
        num += if shots == 0 {
            let p_real = real.run_pure().probabilities();
            4.0 * p_ideal
                .iter()
                .zip(p_real.iter())
                .map(|(pi, pr)| pi * pr)
                .sum::<f64>()
                - 1.0
        } else {
            let state = real.run_pure();
            let mut acc = 0.0;
            for _ in 0..shots {
                let x = state.sample(rng);
                acc += p_ideal[x];
            }
            4.0 * acc / shots as f64 - 1.0
        };
    }
    num / den
}

/// XEB of a gate implementation with per-gate depolarizing noise, using the
/// exact density-matrix distribution.
pub fn xeb_fidelity_noisy(
    ideal_gate: &CMat,
    error_rate: f64,
    depth: usize,
    n_circuits: usize,
    rng: &mut impl Rng,
) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for _ in 0..n_circuits {
        let mut ideal = Circuit::new(2);
        let mut noisy = Circuit::new(2);
        for _ in 0..depth {
            for q in 0..2 {
                let u = haar_su(2, rng);
                ideal.push(Instruction::new(vec![q], u.clone(), "1q"));
                noisy.push(Instruction::new(vec![q], u, "1q").with_error_rate(0.0));
            }
            ideal.push(Instruction::new(vec![0, 1], ideal_gate.clone(), "G"));
            noisy.push(
                Instruction::new(vec![0, 1], ideal_gate.clone(), "G").with_error_rate(error_rate),
            );
        }
        let p_ideal = ideal.run_pure().probabilities();
        let p_noisy = noisy.run_noisy(&NoiseModel::NOISELESS).probabilities();
        num += 4.0
            * p_ideal
                .iter()
                .zip(p_noisy.iter())
                .map(|(pi, pr)| pi * pr)
                .sum::<f64>()
            - 1.0;
        den += 4.0 * p_ideal.iter().map(|p| p * p).sum::<f64>() - 1.0;
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_gates::two::cnot;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_gate_scores_near_one() {
        let mut rng = StdRng::seed_from_u64(91);
        let f = xeb_fidelity(&cnot(), &cnot(), 6, 20, 0, &mut rng);
        // Porter–Thomas statistics make per-circuit XEB noisy; the mean over
        // circuits concentrates near 1 for a perfect implementation.
        assert!((f - 1.0).abs() < 0.25, "XEB of perfect gate = {f}");
    }

    #[test]
    fn depolarizing_noise_decays_xeb_multiplicatively() {
        let mut rng = StdRng::seed_from_u64(92);
        let p = 0.06;
        let shallow = xeb_fidelity_noisy(&cnot(), p, 2, 40, &mut rng);
        let deep = xeb_fidelity_noisy(&cnot(), p, 8, 40, &mut rng);
        assert!(shallow > deep + 0.1, "XEB must decay: {shallow} vs {deep}");
        // Rough exponential consistency: deep ≈ shallow^(8/2) within noise.
        let predicted = shallow.powf(4.0);
        assert!(
            (deep - predicted).abs() < 0.25,
            "decay not multiplicative: deep {deep} vs predicted {predicted}"
        );
    }

    #[test]
    fn coherent_error_is_detected() {
        let mut rng = StdRng::seed_from_u64(93);
        let wrong = ashn_gates::two::canonical(0.6, 0.1, 0.0);
        let f = xeb_fidelity(&cnot(), &wrong, 5, 25, 0, &mut rng);
        assert!(f < 0.9, "XEB should flag a wrong gate, got {f}");
    }

    #[test]
    fn shot_sampling_is_consistent_with_exact() {
        let mut rng = StdRng::seed_from_u64(94);
        let exact = xeb_fidelity(&cnot(), &cnot(), 4, 12, 0, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(94);
        let sampled = xeb_fidelity(&cnot(), &cnot(), 4, 12, 4000, &mut rng2);
        assert!((exact - sampled).abs() < 0.15, "{exact} vs {sampled}");
    }
}
