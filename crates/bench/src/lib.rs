//! # ashn-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation. Each binary prints the rows/series of one artifact:
//!
//! | binary        | paper artifact |
//! |---------------|----------------|
//! | `fig2_3`      | Figs. 2–3: Weyl-chamber sub-scheme partition |
//! | `fig5`        | Fig. 5: average gate time vs drive-strength bound |
//! | `fig6`        | Figs. 6(a)/(b): decomposition error vs gate count |
//! | `table6c`     | Fig. 6(c): analytic & numerical gate counts |
//! | `fig7`        | Fig. 7: quantum-volume heavy-output proportions |
//! | `table1`      | Table 1: special gate-class pulse parameters |
//! | `tavg`        | §A.7.1: closed-form vs Monte-Carlo `T_avg(r)` |
//! | `calibration` | §5: Cartan-double / QPE / model calibration |
//!
//! Run e.g. `cargo run --release -p ashn-bench --bin fig7 -- --circuits 50`.
//! All binaries accept `--seed` and print deterministic tables by default.

use std::collections::HashMap;

/// Minimal `--key value` argument parser shared by the bench binaries.
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses the process arguments (`--key value` pairs).
    ///
    /// # Panics
    ///
    /// Panics on malformed arguments, listing the offender.
    pub fn parse() -> Self {
        Self::parse_argv(false)
    }

    /// Like [`Args::parse`], but tolerates bare flags (e.g. the `--test`
    /// smoke-mode switch criterion-style bench binaries receive): a `--key`
    /// followed by another `--flag` (or nothing) is treated as a valueless
    /// switch and skipped.
    pub fn parse_lenient() -> Self {
        Self::parse_argv(true)
    }

    fn parse_argv(lenient: bool) -> Self {
        let mut values = HashMap::new();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let key = match argv[i].strip_prefix("--") {
                Some(key) => key,
                None if lenient => {
                    i += 1;
                    continue;
                }
                None => panic!("expected --key, got {}", argv[i]),
            };
            match argv.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    values.insert(key.to_string(), v.clone());
                    i += 2;
                }
                _ if lenient => i += 1,
                _ => panic!("missing value for --{key}"),
            }
        }
        Self { values }
    }

    /// Typed lookup with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        self.values
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|e| panic!("bad --{key}: {e:?}")))
            .unwrap_or(default)
    }
}

/// Prints a row of fixed-width columns.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" "));
}

/// Formats a float to 4 decimal places.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float in scientific notation.
pub fn sci(x: f64) -> String {
    format!("{x:.2e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_defaults_apply() {
        let a = Args::default();
        assert_eq!(a.get("missing", 7usize), 7);
        assert!((a.get("missing", 1.5f64) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f4(1.23456), "1.2346");
        assert_eq!(sci(0.000123), "1.23e-4");
    }
}
