//! Regenerates paper Table 1: AshN pulse parameters for the special gate
//! classes `[CNOT]`, `[SWAP]`, `[B]` at `h̃ = 0`, plus the §6.4 extensions:
//! the exact produced gates, the closed-form `[CNOT]` pulse under `ZZ`
//! coupling, and the SWAP speed-up from `ZZ`. The per-`h̃` pulse
//! compilations of the ZZ sweeps fan across `BatchRunner` workers.

use ashn_bench::{f4, row, Args};
use ashn_core::classes::{
    b_pulse, cnot_pulse, cnot_pulse_exact_gate, swap_pulse, swap_pulse_exact_gate,
};
use ashn_core::scheme::AshnScheme;
use ashn_core::verify::entanglement_fidelity;
use ashn_gates::cost::optimal_time;
use ashn_gates::weyl::WeylPoint;
use ashn_sim::BatchRunner;
use std::f64::consts::PI;

fn main() {
    let args = Args::parse();
    let workers: usize = args.get("workers", 0);
    let runner = BatchRunner::new(1).with_workers(workers);
    println!("Table 1: gate parameters for special gate classes (h̃ = 0, units of g)\n");
    row(&[
        "class".into(),
        "τ·g".into(),
        "A1".into(),
        "A2".into(),
        "2δ".into(),
        "coord err".into(),
    ]);
    let named = [
        ("[CNOT]", cnot_pulse(0.0), "π/2"),
        ("[SWAP]", swap_pulse(), "3π/4"),
        ("[B]", b_pulse(), "π/2"),
    ];
    for (name, pulse, tau_name) in named {
        let (a1, a2, two_delta) = pulse.physical_amplitudes(1.0);
        row(&[
            name.into(),
            format!("{} ({:.4})", tau_name, pulse.tau),
            f4(a1),
            f4(a2),
            f4(two_delta),
            format!("{:.1e}", pulse.coordinate_error()),
        ]);
    }
    println!(
        "\npaper values: [CNOT] A1 = −√15 ≈ −3.873; [SWAP] ∓2.108 and 2δ = −1.528; [B] −2.238"
    );

    println!("\nExact produced gates (paper §6.4):");
    let f_ms = entanglement_fidelity(&cnot_pulse(0.0).unitary(), &cnot_pulse_exact_gate());
    println!(
        "  [CNOT] pulse vs Mølmer–Sørensen XX(π/2): F = {:.12}",
        f_ms
    );
    let f_zs = entanglement_fidelity(&swap_pulse().unitary(), &swap_pulse_exact_gate());
    println!(
        "  [SWAP] pulse vs ZZ·SWAP:                 F = {:.12}",
        f_zs
    );

    println!("\n[CNOT] closed form under ZZ coupling (τ = π/2 always):");
    row(&["h̃".into(), "A1".into(), "A2".into(), "coord err".into()]);
    let h_cnot = [0.0, 0.2, 0.5, 0.8, 1.0];
    let cnot_rows = runner.run(h_cnot.len(), |index, _| {
        let h = h_cnot[index];
        let p = cnot_pulse(h);
        let (a1, a2, _) = p.physical_amplitudes(1.0);
        (h, a1, a2, p.coordinate_error())
    });
    for (h, a1, a2, err) in cnot_rows {
        row(&[f4(h), f4(a1), f4(a2), format!("{err:.1e}")]);
    }

    println!("\n[SWAP] optimal time under ZZ: τ_opt = 3π/(4(1+|h̃|/2)) — ZZ helps:");
    row(&[
        "h̃".into(),
        "τ_opt".into(),
        "3π/(4(1+|h̃|/2))".into(),
        "compiled".into(),
    ]);
    let h_swap = [0.0, 0.2, 0.5, 0.8];
    let swap_rows = runner.run(h_swap.len(), |index, _| {
        let h = h_swap[index];
        let t = optimal_time(h, WeylPoint::SWAP);
        let formula = 3.0 * PI / (4.0 * (1.0 + h / 2.0));
        let pulse = AshnScheme::new(h)
            .compile(WeylPoint::SWAP)
            .expect("compiles");
        assert!((t - formula).abs() < 1e-9);
        assert!((pulse.tau - t).abs() < 1e-9);
        (h, t, formula, pulse.tau)
    });
    for (h, t, formula, tau) in swap_rows {
        row(&[f4(h), f4(t), f4(formula), f4(tau)]);
    }
}
