//! Regenerates paper Figures 2–3: the partition of the Weyl chamber into
//! AshN sub-scheme regions, for several `ZZ` ratios and cutoffs.
//!
//! The paper draws 3-D chamber renderings; we print the Haar-weighted volume
//! fraction of each region plus an ASCII slice through the `z = 0` plane.

use ashn_bench::{f4, row, Args};
use ashn_core::regions::{classify, region_census};
use ashn_core::scheme::SubScheme;
use ashn_gates::weyl::WeylPoint;
use std::f64::consts::FRAC_PI_4;

fn slice_map(h: f64, r: f64, n: usize) {
    println!("  z = 0 slice (x →, y ↑); N=ND, X=ND-EXT, +=EA+, -=EA-, m=mirror branch:");
    for j in (0..n).rev() {
        let y = FRAC_PI_4 * (j as f64 + 0.5) / n as f64;
        let mut line = String::from("    ");
        for i in 0..n {
            let x = FRAC_PI_4 * (i as f64 + 0.5) / n as f64;
            let p = WeylPoint::new(x, y, 0.0);
            if !p.in_chamber(0.0) || !p.canonicalize().approx_eq(p, 1e-9) {
                line.push(' ');
                continue;
            }
            let reg = classify(h, r, p);
            let mut ch = match reg.scheme {
                SubScheme::Nd => 'N',
                SubScheme::NdExt => 'X',
                SubScheme::EaPlus => '+',
                SubScheme::EaMinus => '-',
                SubScheme::Identity => '.',
            };
            if reg.mirrored {
                ch = 'm';
            }
            line.push(ch);
        }
        println!("{line}");
    }
}

fn main() {
    let args = Args::parse();
    let res: usize = args.get("resolution", 28);
    let slice_res: usize = args.get("slice", 24);

    println!("== Figure 2: h = 0, cutoff r ∈ {{0, 1.1}} ==");
    for r in [0.0, 1.1] {
        println!("\n-- h̃ = 0, r = {r} --");
        row(&["region".into(), "Haar fraction".into()]);
        for (label, frac) in region_census(0.0, r, res) {
            row(&[label, f4(frac)]);
        }
        slice_map(0.0, r, slice_res);
    }

    println!("\n== Figure 3: h̃ ∈ {{0.2, 0.4, 0.8}}, r = 0 ==");
    for h in [0.2, 0.4, 0.8] {
        println!("\n-- h̃ = {h} --");
        row(&["region".into(), "Haar fraction".into()]);
        let census = region_census(h, 0.0, res);
        for (label, frac) in &census {
            row(&[label.clone(), f4(*frac)]);
        }
        println!(
            "  distinct regions: {} (paper: seven regions for h̃ ≠ 0, incl. mirror copies)",
            census.len()
        );
        slice_map(h, 0.0, slice_res);
    }
}
