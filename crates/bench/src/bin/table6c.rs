//! Regenerates the table in paper Figure 6(c): numerical and analytic
//! two-qubit gate counts for circuit synthesis, CNOT vs generic (AshN).
//!
//! Our implementations back every entry: the analytic generic counts are
//! *achieved constructively* by `qsd`/`decompose_three_qubit` (verified by
//! reconstruction), and the numerical entries sit at the dimension-counting
//! lower bounds, as the paper observes.

use ashn_bench::{row, Args};
use ashn_math::randmat::haar_unitary;
use ashn_synth::counts::{
    cnot_lower_bound, generic_formula, generic_lower_bound, numerical, qsd_cnot_formula,
};
use ashn_synth::qsd::{qsd, qsd_count, SynthBasis};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 3);
    let mut rng = StdRng::seed_from_u64(seed);

    println!("Figure 6(c): two-qubit gate counts for n-qubit synthesis\n");
    row(&[
        "".into(),
        "3-qubit".into(),
        "4-qubit".into(),
        "n-qubit (asymptotic)".into(),
    ]);
    row(&[
        "CNOT (N) [*]".into(),
        numerical::CNOT_N3.to_string(),
        numerical::CNOT_N4.to_string(),
        "N/A".into(),
    ]);
    row(&[
        "AshN (N) [*]".into(),
        numerical::GENERIC_N3.to_string(),
        numerical::GENERIC_N4.to_string(),
        "N/A".into(),
    ]);
    row(&[
        "CNOT (A) [35]".into(),
        format!("{}", qsd_cnot_formula(3) as i64),
        format!("{}", qsd_cnot_formula(4) as i64),
        "~(23/48)·4^n".into(),
    ]);
    row(&[
        "AshN (A) [*]".into(),
        format!("{}", generic_formula(3) as i64),
        format!("{}", generic_formula(4) as i64),
        "~(23/64)·4^n".into(),
    ]);
    println!("\nlower bounds: CNOT ⌈(4^n−3n−1)/4⌉, generic ⌈(4^n−3n−1)/9⌉");
    row(&[
        "CNOT LB".into(),
        cnot_lower_bound(3).to_string(),
        cnot_lower_bound(4).to_string(),
        "~4^n/4".into(),
    ]);
    row(&[
        "generic LB".into(),
        generic_lower_bound(3).to_string(),
        generic_lower_bound(4).to_string(),
        "~4^n/9".into(),
    ]);

    println!("\nOur constructive implementations (counts measured on Haar targets, with reconstruction error):");
    row(&[
        "method".into(),
        "n".into(),
        "count".into(),
        "formula".into(),
        "error".into(),
    ]);
    for (n, basis, formula) in [
        (3usize, SynthBasis::Generic, generic_formula(3)),
        (4, SynthBasis::Generic, generic_formula(4)),
        (3, SynthBasis::Cnot, qsd_cnot_formula(3)),
        (4, SynthBasis::Cnot, qsd_cnot_formula(4)),
    ] {
        let u = haar_unitary(1 << n, &mut rng);
        let c = qsd(&u, basis);
        let name = match basis {
            SynthBasis::Generic => "QSD generic",
            SynthBasis::Cnot => "QSD CNOT",
        };
        row(&[
            name.into(),
            n.to_string(),
            c.two_qubit_count().to_string(),
            format!("{}", formula as i64),
            format!("{:.1e}", c.error(&u)),
        ]);
        assert_eq!(c.two_qubit_count(), qsd_count(n, basis));
    }
    println!(
        "\nnote: the generic counts match Theorem 13 exactly (11 at n=3 via the\n\
         constructive Theorem 12 circuit); our plain CNOT-basis QSD gives 24/120\n\
         vs the 20/100 of [35], which applies two further ad-hoc optimizations\n\
         (2-CNOT-up-to-diagonal base case and diagonal absorption). See\n\
         EXPERIMENTS.md."
    );
}
