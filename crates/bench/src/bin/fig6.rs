//! Regenerates paper Figure 6(a)/(b): decomposition error versus two-qubit
//! gate count, for the CNOT ansatz and the generic-SU(4) ansatz, using the
//! numerical instantiation optimizer. The per-gate-count sweeps (each a set
//! of instantiation searches over the same Haar targets) fan across
//! `BatchRunner` workers.
//!
//! The paper uses 1000 Haar targets and a 1e-10 threshold with QFactor; we
//! default to fewer targets and a bounded sweep budget (configurable). The
//! shape — a sharp error drop exactly at the dimension-counting lower bound
//! (6 vs 14 for n=3; 27 vs 61 for n=4) — is the reproduced observable.

use ashn_bench::{row, sci, Args};
use ashn_math::randmat::haar_su;
use ashn_sim::BatchRunner;
use ashn_synth::counts::{cnot_lower_bound, generic_lower_bound};
use ashn_synth::instantiate::{instantiate_best, Ansatz, InstantiateOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", 3);
    let targets: usize = args.get("targets", 6);
    let restarts: usize = args.get("restarts", 3);
    let sweeps: usize = args.get("sweeps", if n == 3 { 600 } else { 250 });
    let seed: u64 = args.get("seed", 11);
    let workers: usize = args.get("workers", 0);
    assert!(n == 3 || n == 4, "--n must be 3 or 4");

    let lb_gen = generic_lower_bound(n as u32) as usize;
    let lb_cnot = cnot_lower_bound(n as u32) as usize;
    let counts_gen: Vec<usize> = if n == 3 {
        (3..=8).collect()
    } else {
        vec![23, 25, 26, 27, 28, 30]
    };
    let counts_cnot: Vec<usize> = if n == 3 {
        (11..=16).collect()
    } else {
        vec![56, 59, 60, 61, 62, 64]
    };

    println!(
        "Figure 6({}) for n = {n}: mean log10 decomposition error vs gate count",
        if n == 3 { 'a' } else { 'b' }
    );
    println!(
        "lower bounds: generic {lb_gen}, CNOT {lb_cnot}; {targets} Haar targets, {restarts} restarts, {sweeps} sweeps"
    );
    let opts = InstantiateOptions {
        max_sweeps: sweeps,
        target_error: 1e-10,
        min_progress: 0.0,
    };

    type Maker = fn(usize, usize, &mut StdRng) -> Ansatz;
    let families: [(&str, &Vec<usize>, Maker); 2] = [
        ("generic SU(4)", &counts_gen, |nq, k, r| {
            Ansatz::generic(nq, k, r)
        }),
        ("CNOT", &counts_cnot, |nq, k, r| Ansatz::cnot(nq, k, r)),
    ];
    for (label, counts, make) in families {
        println!("\n-- {label} ansatz --");
        row(&["N gates".into(), "mean error".into(), "note".into()]);
        let runner = BatchRunner::new(seed).with_workers(workers);
        // Every gate count optimizes the *same* targets (fresh per-count
        // RNG from the shared seed), matching the paper's ceteris-paribus
        // sweep — the batch stream is unused.
        let means = runner.run(counts.len(), |index, _| {
            let count = counts[index];
            let mut rng = StdRng::seed_from_u64(seed);
            let mut total = 0.0;
            for _ in 0..targets {
                let target = haar_su(1 << n, &mut rng);
                let e = instantiate_best(&target, |r| make(n, count, r), restarts, &opts, &mut rng);
                total += e;
            }
            total / targets as f64
        });
        for (&count, mean) in counts.iter().zip(means) {
            let lb = if label == "CNOT" { lb_cnot } else { lb_gen };
            let note = if count < lb {
                "below lower bound"
            } else if count == lb {
                "= lower bound"
            } else {
                ""
            };
            row(&[count.to_string(), sci(mean), note.into()]);
        }
    }
}
