//! Regenerates the §A.7.1 average-gate-time analysis: the closed-form
//! `T_avg(r)` against Monte-Carlo Haar averages, the small-`r` series, and
//! the §6.1 baseline ratios. The per-`r` Monte-Carlo estimates fan across
//! `BatchRunner` workers with per-row RNG streams (deterministic for any
//! `--workers` value).

use ashn_bench::{f4, row, Args};
use ashn_core::avg_time::{
    tavg_closed_form, tavg_monte_carlo, CZ_MEAN_TIME, ISWAP_MEAN_TIME, MEAN_OPTIMAL_TIME,
    SQISW_MEAN_TIME,
};
use ashn_sim::BatchRunner;
use std::f64::consts::PI;

fn main() {
    let args = Args::parse();
    let samples: usize = args.get("samples", 60_000);
    let seed: u64 = args.get("seed", 5);
    let workers: usize = args.get("workers", 0);

    println!("§A.7.1 / §6.1: Haar-average two-qubit gate time (h̃ = 0, units 1/g)\n");
    println!(
        "T_avg(0) = 7π/16 − 19/(180π) = (315π²−76)/(720π) = {:.6}",
        MEAN_OPTIMAL_TIME
    );
    row(&[
        "r".into(),
        "closed form".into(),
        "Monte Carlo".into(),
        "series O(r^11)".into(),
    ]);
    let r_values = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.1, 1.2, 1.4, PI / 2.0];
    let runner = BatchRunner::new(seed).with_workers(workers);
    let rows = runner.run(r_values.len(), |index, rng| {
        let r = r_values[index];
        let cf = tavg_closed_form(r);
        let mc = tavg_monte_carlo(r, samples, rng);
        assert!(
            (cf - mc).abs() < 0.01,
            "closed form vs MC mismatch at r={r}"
        );
        (r, cf, mc)
    });
    for (r, cf, mc) in rows {
        let series = MEAN_OPTIMAL_TIME + 2213.0 / 5040.0 * r.powi(9)
            - 160303.0 / (204120.0 * PI) * r.powi(10);
        row(&[
            f4(r),
            format!("{cf:.6}"),
            format!("{mc:.6}"),
            format!("{series:.6}"),
        ]);
    }

    println!("\n§6.1 baselines (average two-qubit interaction time for Haar gates):");
    row(&[
        "scheme".into(),
        "mean time".into(),
        "vs AshN optimal".into(),
    ]);
    for (name, t) in [
        ("AshN (r=0)", MEAN_OPTIMAL_TIME),
        ("SQiSW", SQISW_MEAN_TIME),
        ("iSWAP (flux)", ISWAP_MEAN_TIME),
        ("CZ (flux)", CZ_MEAN_TIME),
    ] {
        row(&[name.into(), f4(t), format!("{:.2}x", t / MEAN_OPTIMAL_TIME)]);
    }
    println!("\npaper §6.1: 1.29x (SQiSW), 3.51x (iSWAP), 4.97x (CZ)");
}
