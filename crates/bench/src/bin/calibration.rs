//! Regenerates the paper's §5 calibration pipeline end to end:
//!
//! 1. **Cartan double** (Fig. 4): interaction coefficients of a realistic
//!    (ramped) pulse extracted from `γ(U)` eigenphases, including the
//!    reversed-pulse `Θ⁻¹` identity.
//! 2. **Phase estimation** (§5.1): the same eigenphases read out with a
//!    shot-limited QPE register.
//! 3. **Model calibration** (§5.2): fit a control model from a handful of
//!    probe pulses, then compensate unseen gates through it.

use ashn_bench::{f4, row, Args};
use ashn_cal::cartan::{cartan_double, coords_from_phases, estimate_coords};
use ashn_cal::frb::{fit_decay, frb_curve, infidelity_from_decay};
use ashn_cal::model::{calibrate, execute_pulse, ControlModel, Hardware};
use ashn_cal::pulse::{evolve_pulsed, evolve_pulsed_reversed, PulseShape};
use ashn_cal::qpe::{bin_to_phase, dominant_phases, qpe_histogram};
use ashn_core::scheme::AshnScheme;
use ashn_core::verify::entanglement_fidelity;
use ashn_gates::kak::weyl_coordinates;
use ashn_gates::pauli::yy;
use ashn_gates::weyl::WeylPoint;
use ashn_math::eig::eig_unitary;
use ashn_math::Complex;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 23);
    let shots: usize = args.get("shots", 3000);
    let mut rng = StdRng::seed_from_u64(seed);

    println!("== 1. Cartan double on a ramped pulse (Fig. 4) ==");
    let scheme = AshnScheme::new(0.0);
    let pulse = scheme.compile(WeylPoint::B).expect("compiles");
    let shape = PulseShape::CosineRamp { rise: 0.15 };
    let u = evolve_pulsed(0.0, pulse.drive, pulse.tau, shape, 400);
    let realized = weyl_coordinates(&u);
    println!(
        "requested [B] = {}, ramped pulse realizes {} (ramp error {:.3})",
        WeylPoint::B,
        realized,
        realized.gate_dist(WeylPoint::B)
    );
    // Θ⁻¹ via time reversal with negated drives: γ(U) = U·Θ⁻¹(U).
    let theta_inv = {
        let rev = evolve_pulsed_reversed(0.0, pulse.drive, pulse.tau, shape, 400);
        yy().matmul(&rev.transpose()).matmul(&yy())
    };
    let gamma_direct = cartan_double(&u);
    let gamma_via_rev = u.matmul(&yy()).matmul(&theta_inv.transpose()).matmul(&yy());
    println!(
        "γ(U) from reversed-pulse Θ⁻¹ matches the definition to {:.1e}",
        gamma_direct.dist(&gamma_via_rev)
    );
    let est = estimate_coords(&u, realized);
    println!("coordinates estimated from γ(U) phases: {est}\n");

    println!("== 2. Shot-limited phase-estimation readout (§5.1) ==");
    let gamma = cartan_double(&u);
    let e = eig_unitary(&gamma);
    let m_bits = 7;
    let mut measured = [0.0f64; 4];
    for (j, m) in measured.iter_mut().enumerate() {
        let col = e.vectors.col(j);
        let input: [Complex; 4] = [col[0], col[1], col[2], col[3]];
        let hist = qpe_histogram(&gamma, &input, m_bits, shots / 4, &mut rng);
        *m = dominant_phases(&hist, m_bits, 1)[0];
    }
    row(&["eigenphase".into(), "exact".into(), "QPE".into()]);
    for (j, m) in measured.iter().enumerate() {
        row(&[format!("θ_{j}"), f4(e.values[j].arg()), f4(*m)]);
    }
    let est_qpe = coords_from_phases(&measured, realized);
    println!(
        "coordinates from {}-bit QPE: {est_qpe} (resolution {:.4})\n",
        m_bits,
        bin_to_phase(1, m_bits)
    );

    println!("== 3. Model-based gate-set calibration (§5.2) ==");
    let hw = Hardware {
        true_model: ControlModel {
            amp_scale: 1.05,
            amp_offset: 0.02,
            detuning_offset: 0.03,
        },
        h_ratio: 0.0,
    };
    let probes: Vec<_> = [
        WeylPoint::CNOT,
        WeylPoint::SWAP,
        WeylPoint::B,
        WeylPoint::SQISW,
    ]
    .iter()
    .map(|&p| {
        let pl = scheme.compile(p).unwrap();
        (pl.drive, pl.tau)
    })
    .collect();
    let fitted = calibrate(&hw, &probes, shots, &mut rng);
    println!(
        "true model: scale {:.3}, offset {:.3}, detuning {:.3}",
        hw.true_model.amp_scale, hw.true_model.amp_offset, hw.true_model.detuning_offset
    );
    println!(
        "fitted    : scale {:.3}, offset {:.3}, detuning {:.3}",
        fitted.amp_scale, fitted.amp_offset, fitted.detuning_offset
    );
    row(&[
        "unseen target".into(),
        "F (raw)".into(),
        "F (compensated)".into(),
    ]);
    for target in [
        WeylPoint::new(0.6, 0.3, -0.15),
        WeylPoint::new(0.4, 0.35, 0.2),
        WeylPoint::ISWAP,
    ] {
        let pl = scheme.compile(target).unwrap();
        let ideal = pl.unitary();
        let raw = execute_pulse(&hw, &pl, None);
        let fixed = execute_pulse(&hw, &pl, Some(&fitted));
        row(&[
            format!("{target}"),
            format!("{:.6}", entanglement_fidelity(&ideal, &raw)),
            format!("{:.6}", entanglement_fidelity(&ideal, &fixed)),
        ]);
    }

    println!("\nFRB sanity: decay under the uncalibrated hardware");
    let mut implement = |g: &ashn_math::CMat| {
        let p = weyl_coordinates(g);
        let pl = scheme.compile(p).unwrap();
        // Hardware distortion on the entangler; locals assumed perfect.
        let k = ashn_gates::kak::kak(g);
        let raw = execute_pulse(&hw, &pl, None);
        let kc = ashn_gates::kak::kak(&pl.unitary());
        // Dress the raw pulse with the same locals the compiler would use.
        let l =
            k.a1.matmul(&kc.a1.adjoint())
                .kron(&k.a2.matmul(&kc.a2.adjoint()));
        let r = kc
            .b1
            .adjoint()
            .matmul(&k.b1)
            .kron(&kc.b2.adjoint().matmul(&k.b2));
        ashn_math::CMat::from(l)
            .matmul(&raw)
            .matmul(&ashn_math::CMat::from(r))
    };
    let curve = frb_curve(&[1, 2, 4, 8], 6, &mut implement, 0, &mut rng);
    let (_, f, _) = fit_decay(&curve);
    println!(
        "decay f = {:.5} → average gate infidelity ≈ {:.4}",
        f,
        infidelity_from_decay(f)
    );
}
