//! Regenerates paper Figure 7: quantum-volume heavy-output proportion as a
//! function of circuit size `d`, for CZ / SQiSW / AshN(r=0) / AshN(r=1.1)
//! at several CZ-anchored depolarizing rates.
//!
//! Every gate set is evaluated on the *same* sampled circuits (ceteris
//! paribus, as in the paper), and each compiled circuit is scored at all
//! noise levels (error ∝ gate time). The paper averages 1350 circuit
//! samples; the default here is 20 (→ ±0.01-ish error bars), configurable
//! with `--circuits`.

use ashn_bench::{f4, row, Args};
use ashn_qv::{compile_model, sample_model_circuit, score_compiled, GateSet, QvNoise};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let circuits: usize = args.get("circuits", 20);
    let d_max: usize = args.get("dmax", 6);
    let seed: u64 = args.get("seed", 17);

    let gate_sets = [
        GateSet::Cz,
        GateSet::Sqisw,
        GateSet::Ashn { cutoff: 0.0 },
        GateSet::Ashn { cutoff: 1.1 },
    ];
    let error_rates = [0.007, 0.012, 0.017];

    println!(
        "Figure 7: mean heavy-output proportion, {circuits} circuits per point \
         (2/3 threshold marks a QV pass)\n"
    );
    for &e_cz in &error_rates {
        println!("-- e_CZ = {:.1}% --", 100.0 * e_cz);
        let noise = QvNoise::with_e_cz(e_cz);
        let mut header = vec!["d".to_string()];
        header.extend(gate_sets.iter().map(|g| g.name()));
        row(&header);
        for d in 2..=d_max {
            let mut cells = vec![d.to_string()];
            let mut hops = vec![0.0f64; gate_sets.len()];
            let mut rng = StdRng::seed_from_u64(seed + d as u64);
            for _ in 0..circuits {
                let model = sample_model_circuit(d, &mut rng);
                for (k, gs) in gate_sets.iter().enumerate() {
                    let compiled = compile_model(&model, *gs).expect("compiles");
                    hops[k] += score_compiled(&compiled, &noise).hop;
                }
            }
            for h in &hops {
                cells.push(f4(h / circuits as f64));
            }
            row(&cells);
        }
        println!();
    }
    println!(
        "expected shape (paper): AshN(r=0) ≳ AshN(r=1.1) > SQiSW > CZ at every\n\
         (d, e_CZ); the two AshN curves nearly coincide."
    );
}
