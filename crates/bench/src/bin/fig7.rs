//! Regenerates paper Figure 7: quantum-volume heavy-output proportion as a
//! function of circuit size `d`, for CZ / SQiSW / AshN(r=0) / AshN(r=1.1)
//! at several CZ-anchored depolarizing rates.
//!
//! Every gate set is evaluated on the *same* sampled circuits (ceteris
//! paribus, as in the paper), each circuit is compiled **once** per gate
//! set and scored at all noise levels (error ∝ gate time), and the
//! per-circuit work fans across `BatchRunner` workers — the printed table
//! is bit-identical for any `--workers` value. The paper averages 1350
//! circuit samples; the default here is 20 (→ ±0.01-ish error bars),
//! configurable with `--circuits`.

use ashn_bench::{f4, row, Args};
use ashn_qv::{compile_model, sample_model_circuit, score_compiled_many, GateSet, QvNoise};
use ashn_sim::BatchRunner;

fn main() {
    let args = Args::parse();
    let circuits: usize = args.get("circuits", 20);
    let d_max: usize = args.get("dmax", 6);
    let seed: u64 = args.get("seed", 17);
    let workers: usize = args.get("workers", 0);

    let gate_sets = [
        GateSet::Cz,
        GateSet::Sqisw,
        GateSet::Ashn { cutoff: 0.0 },
        GateSet::Ashn { cutoff: 1.1 },
    ];
    let error_rates = [0.007, 0.012, 0.017];
    let noise_points: Vec<QvNoise> = error_rates.iter().map(|&e| QvNoise::with_e_cz(e)).collect();

    // mean_hops[d - 2][e][k]: mean HOP at size d, noise e, gate set k.
    let mut mean_hops: Vec<Vec<Vec<f64>>> = Vec::new();
    for d in 2..=d_max {
        let runner = BatchRunner::new(seed + d as u64).with_workers(workers);
        let per_circuit = runner.run(circuits, |_, rng| {
            let model = sample_model_circuit(d, rng);
            let mut hop = vec![vec![0.0f64; gate_sets.len()]; error_rates.len()];
            for (k, gs) in gate_sets.iter().enumerate() {
                let compiled = compile_model(&model, *gs).expect("compiles");
                // One compilation, one ideal run: every noise point scores
                // against the same plan (`score_compiled_many`).
                for (e, score) in score_compiled_many(&compiled, &noise_points)
                    .into_iter()
                    .enumerate()
                {
                    hop[e][k] = score.hop;
                }
            }
            hop
        });
        let mut mean = vec![vec![0.0f64; gate_sets.len()]; error_rates.len()];
        for hop in per_circuit {
            for (m, h) in mean.iter_mut().zip(hop) {
                for (a, b) in m.iter_mut().zip(h) {
                    *a += b / circuits as f64;
                }
            }
        }
        mean_hops.push(mean);
    }

    println!(
        "Figure 7: mean heavy-output proportion, {circuits} circuits per point \
         (2/3 threshold marks a QV pass)\n"
    );
    for (e, &e_cz) in error_rates.iter().enumerate() {
        println!("-- e_CZ = {:.1}% --", 100.0 * e_cz);
        let mut header = vec!["d".to_string()];
        header.extend(gate_sets.iter().map(|g| g.name()));
        row(&header);
        for d in 2..=d_max {
            let mut cells = vec![d.to_string()];
            for &hop in &mean_hops[d - 2][e] {
                cells.push(f4(hop));
            }
            row(&cells);
        }
        println!();
    }
    println!(
        "expected shape (paper): AshN(r=0) ≳ AshN(r=1.1) > SQiSW > CZ at every\n\
         (d, e_CZ); the two AshN curves nearly coincide."
    );
}
