//! Regenerates paper Figure 5: Haar-average two-qubit interaction time
//! `τ·g` against the maximum required drive strength
//! `max(|A₁|/2, |A₂|/2, |δ|)/g`, as the cutoff `r` sweeps.
//!
//! Includes the SQiSW baseline (≈1.736/g) and the optimal-time floor
//! (≈1.341/g). Each row also reports the measured maximum strength over
//! compiled pulses, verifying the Eq. 4.4 bound `π/r + 1/2`. The per-`r`
//! Monte-Carlo averages and pulse checks fan across `BatchRunner` workers
//! with per-row RNG streams, so the table is deterministic for any
//! `--workers` value.

use ashn_bench::{f4, row, Args};
use ashn_core::avg_time::{tavg_closed_form, tavg_monte_carlo, MEAN_OPTIMAL_TIME, SQISW_MEAN_TIME};
use ashn_core::scheme::AshnScheme;
use ashn_gates::haar::sample_weyl_density;
use ashn_sim::BatchRunner;

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 7);
    let samples: usize = args.get("samples", 30_000);
    let pulse_checks: usize = args.get("pulses", 40);
    let workers: usize = args.get("workers", 0);

    println!("Figure 5: average gate time vs drive-strength bound (h̃ = 0)");
    println!(
        "optimal floor = {:.4}/g,  SQiSW baseline = {:.4}/g ({:.2}x slower)",
        MEAN_OPTIMAL_TIME,
        SQISW_MEAN_TIME,
        SQISW_MEAN_TIME / MEAN_OPTIMAL_TIME
    );
    row(&[
        "r".into(),
        "bound π/r+1/2".into(),
        "Tavg (closed)".into(),
        "Tavg (MC)".into(),
        "max strength".into(),
        "vs optimal".into(),
    ]);
    let r_values = [
        1.55, 1.4, 1.3, 1.2, 1.1, 1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.35,
    ];
    let runner = BatchRunner::new(seed).with_workers(workers);
    let rows = runner.run(r_values.len(), |index, rng| {
        let r = r_values[index];
        let bound = std::f64::consts::PI / r + 0.5;
        let closed = tavg_closed_form(r);
        let mc = tavg_monte_carlo(r, samples, rng);
        // Measured strength over random compiled pulses.
        let scheme = AshnScheme::with_cutoff(0.0, r);
        let mut max_strength: f64 = 0.0;
        for _ in 0..pulse_checks {
            let p = sample_weyl_density(rng);
            let pulse = scheme.compile(p).expect("chamber coverage");
            max_strength = max_strength.max(pulse.max_strength());
        }
        assert!(
            max_strength <= bound + 1e-6,
            "Eq. 4.4 bound violated: {max_strength} > {bound}"
        );
        (r, bound, closed, mc, max_strength)
    });
    for (r, bound, closed, mc, max_strength) in rows {
        row(&[
            f4(r),
            f4(bound),
            f4(closed),
            f4(mc),
            f4(max_strength),
            format!("{:.2}%", 100.0 * (closed / MEAN_OPTIMAL_TIME - 1.0)),
        ]);
    }
    println!(
        "\npaper §6.1 check: r = 1.1 gives bound {:.3} (paper: 3.356) and \
         Tavg {:.4} ({:.1}% above optimal; paper claims ≈10%, measured 11.0%)",
        std::f64::consts::PI / 1.1 + 0.5,
        tavg_closed_form(1.1),
        100.0 * (tavg_closed_form(1.1) / MEAN_OPTIMAL_TIME - 1.0),
    );
}
