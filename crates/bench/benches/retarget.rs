//! Rule-based retargeting: the closed-form fast tier vs numeric
//! resynthesis.
//!
//! Two experiments:
//!
//! 1. **Per-serve fast tier.** CX↔CZ↔ECR-family known-gate traffic
//!    (cycled CNOT / CZ / ECR) served per-target by the rule tier
//!    (`serve_rule_tier`) vs the target basis's numeric synthesis path,
//!    for every registered target set. Every rule serve is verified at
//!    `1e-12` before timing. Asserted: every target set speeds up ≥4x,
//!    and the family traffic hits ≥50x on at least one registered target
//!    set (SQiSW, whose numeric path is the interleaver search).
//!
//! 2. **Mixed service batch.** A 1000-target batch (60% family known
//!    gates + SWAP/iSWAP, 20% locally-dressed family variants, 20% Haar
//!    SU(4)) through `CompileService` with the rule tier armed vs
//!    disarmed (`.rules(None)`). Asserted: the rule-armed batch serves
//!    every rule-covered target through `Tier::Rule` (no cold synthesis,
//!    no numeric miss for them), bits match targets at the service's
//!    verification tolerance, and dedup + rule tier together leave only
//!    the Haar classes cold.
//!
//! Run `cargo bench -p ashn-bench --bench retarget` (add `--test` for
//! the single-iteration CI smoke mode; `--targets N` scales the batch).

use ashn_bench::Args;
use ashn_gates::kak::weyl_coordinates;
use ashn_gates::two::{cnot, cz, ecr, iswap, swap};
use ashn_ir::Basis;
use ashn_math::randmat::haar_unitary;
use ashn_math::CMat;
use ashn_service::{CompileService, ShardedCache};
use ashn_synth::basis::{CnotBasis, CzBasis, EcrBasis, SqiswBasis};
use ashn_synth::cache::SynthCache;
use ashn_synth::retarget::{serve_rule_tier, standard_rules};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// CX-family traffic: the three Weyl-equivalent entanglers, cycled.
fn family_traffic() -> Vec<CMat> {
    vec![cnot(), cz(), ecr()]
}

/// Times `iters` serves of the cycled traffic through `f`, returning
/// µs/serve. The accumulator keeps the optimizer honest.
fn time_serves(iters: usize, traffic: &[CMat], mut f: impl FnMut(&CMat) -> usize) -> f64 {
    let mut acc = 0usize;
    let t0 = Instant::now();
    for i in 0..iters {
        acc += f(&traffic[i % traffic.len()]);
    }
    let us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
    assert!(acc > 0, "served circuits must be non-empty");
    us
}

/// Experiment 1 row: one registered target set.
fn fast_tier_row(basis: &dyn Basis, iters_numeric: usize, iters_rule: usize) -> (f64, f64) {
    let traffic = family_traffic();
    let coords: Vec<_> = traffic
        .iter()
        .map(|u| weyl_coordinates(u).canonicalize())
        .collect();
    let rules = standard_rules();

    // Exactness first: every rule serve realizes its gate at 1e-12.
    let store = SynthCache::default();
    for (u, &c) in traffic.iter().zip(&coords) {
        let circuit = serve_rule_tier(rules.as_ref(), basis, &store, u, c)
            .unwrap_or_else(|| panic!("{} must rule-cover the CX family", basis.name()));
        let err = circuit.error(u);
        assert!(err < 1e-12, "{}: rule serve error {err:.2e}", basis.name());
    }

    let numeric_us = time_serves(iters_numeric, &traffic, |u| {
        basis
            .synthesize(u)
            .expect("numeric synthesis")
            .instructions
            .len()
    });
    // Coordinates are computed once per target during canonicalization —
    // before either tier is consulted — so the tier comparison excludes
    // them, exactly as `CachedBasis`/the service invoke `serve_rule_tier`.
    let store = SynthCache::default();
    let mut i = 0usize;
    let rule_us = time_serves(iters_rule, &traffic, |u| {
        let c = coords[i % coords.len()];
        i += 1;
        serve_rule_tier(rules.as_ref(), basis, &store, u, c)
            .expect("rule serve")
            .instructions
            .len()
    });
    (numeric_us, rule_us)
}

/// Mixed service corpus: `n` targets — 60% family known gates (CNOT, CZ,
/// ECR, SWAP, iSWAP cycled), 20% locally-dressed family variants, 20%
/// Haar SU(4) (never rule-covered).
fn mixed_corpus(n: usize, seed: u64) -> (Vec<CMat>, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let known = [cnot(), cz(), ecr(), swap(), iswap()];
    let mut targets = Vec::with_capacity(n);
    let family = n * 6 / 10;
    let dressed = n * 2 / 10;
    for i in 0..family {
        targets.push(known[i % known.len()].clone());
    }
    for i in 0..dressed {
        let base = &known[i % known.len()];
        let pre = haar_unitary(2, &mut rng).kron(&haar_unitary(2, &mut rng));
        let post = haar_unitary(2, &mut rng).kron(&haar_unitary(2, &mut rng));
        targets.push(&(&post * base) * &pre);
    }
    let haar = n - targets.len();
    for _ in 0..haar {
        targets.push(haar_unitary(4, &mut rng));
    }
    (targets, haar)
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let args = Args::parse_lenient();
    let n_targets: usize = args.get("targets", if test_mode { 100 } else { 1000 });
    let seed: u64 = args.get("seed", 42);
    let (iters_numeric, iters_rule) = if test_mode { (60, 600) } else { (600, 30_000) };

    // ---- Experiment 1: per-serve fast tier, every registered target set.
    println!("CX<->CZ<->ECR-family traffic, per-serve (rule tier vs numeric synthesis):\n");
    let bases: [&dyn Basis; 4] = [&CnotBasis, &CzBasis, &EcrBasis, &SqiswBasis];
    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    for basis in bases {
        // The SQiSW numeric path is the interleaver search (~ms/serve);
        // fewer iterations keep the bench bounded without hurting its
        // timing resolution.
        let ni = if basis.name() == "SQiSW" {
            iters_numeric / 4
        } else {
            iters_numeric
        };
        let (numeric_us, rule_us) = fast_tier_row(basis, ni.max(3), iters_rule);
        let speedup = numeric_us / rule_us;
        println!(
            "  -> {:<6} numeric {:>9.2} us/serve   rule {:>7.3} us/serve   speedup {:>7.1}x",
            basis.name(),
            numeric_us,
            rule_us,
            speedup
        );
        rows.push((basis.name(), numeric_us, rule_us, speedup));
    }
    for (name, _, _, speedup) in &rows {
        assert!(
            *speedup >= 4.0,
            "{name}: rule tier must beat numeric synthesis >=4x, got {speedup:.1}x"
        );
    }
    let best = rows.iter().map(|r| r.3).fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best >= 50.0,
        "family traffic must hit >=50x on some registered target set, got {best:.1}x"
    );

    // ---- Experiment 2: mixed 1000-target service batch, rules on vs off.
    let (targets, haar_classes) = mixed_corpus(n_targets, seed);
    println!(
        "\nmixed service batch: {} targets ({} Haar classes; rest CX-family + SWAP/iSWAP, \
         exact + dressed):\n",
        targets.len(),
        haar_classes
    );

    let armed = CompileService::with_cache(CzBasis, ShardedCache::new());
    let on = armed.synthesize_batch(&targets);
    let disarmed = CompileService::with_cache(CzBasis, ShardedCache::new()).rules(None);
    let off = disarmed.synthesize_batch(&targets);

    for (label, batch) in [("rules on ", &on), ("rules off", &off)] {
        println!(
            "  {label}: wall {:>8.1} ms   unique {:>3} classes (rule {:>2}, cold {:>3})   \
             rule_hits {:>4}   cold_serves {:>4}   hit_rate {:.2}",
            batch.stats.wall_ms,
            batch.stats.unique_classes,
            batch.stats.rule_classes,
            batch.stats.cold_classes,
            batch.stats.rule_hits,
            batch.stats.cold_serves,
            batch.stats.hit_rate(),
        );
    }

    // Tier::Rule must be visible on the mixed batch, rule-covered classes
    // must never synthesize cold, and disarming must restore the numeric
    // path exactly.
    let covered = targets.len() - haar_classes;
    assert_eq!(
        on.stats.rule_hits as usize, covered,
        "every family target rule-served"
    );
    assert_eq!(
        on.stats.cold_classes, haar_classes,
        "only Haar classes go cold"
    );
    assert_eq!(
        off.stats.rule_hits, 0,
        "disarmed service must not rule-serve"
    );
    assert!(
        off.stats.cold_classes > haar_classes,
        "family classes synthesize when disarmed"
    );
    for (batch, label) in [(&on, "armed"), (&off, "disarmed")] {
        for (circuit, target) in batch.circuits.iter().zip(&targets) {
            let err = circuit.as_ref().expect("synthesis").error(target);
            assert!(err < 1e-9, "{label}: served circuit error {err:.2e}");
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"retarget\",\n  \"config\": {{ \"traffic\": \"CNOT/CZ/ECR cycled\", \
         \"batch_targets\": {}, \"seed\": {seed}, \"smoke\": {test_mode} }},\n  \
         \"fast_tier_per_serve\": [\n{}\n  ],\n  \"mixed_service_batch\": {{\n    \
         \"basis\": \"CZ\", \"targets\": {}, \"haar_classes\": {},\n    \
         \"rules_on\": {{ \"wall_ms\": {:.2}, \"rule_hits\": {}, \"rule_classes\": {}, \
         \"cold_classes\": {}, \"hit_rate\": {:.3} }},\n    \
         \"rules_off\": {{ \"wall_ms\": {:.2}, \"rule_hits\": {}, \"cold_classes\": {}, \
         \"hit_rate\": {:.3} }}\n  }}\n}}\n",
        targets.len(),
        rows.iter()
            .map(|(name, numeric, rule, speedup)| format!(
                "    {{ \"target_set\": \"{name}\", \"numeric_us_per_serve\": {numeric:.2}, \
                 \"rule_us_per_serve\": {rule:.3}, \"speedup\": {speedup:.1} }}"
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
        targets.len(),
        haar_classes,
        on.stats.wall_ms,
        on.stats.rule_hits,
        on.stats.rule_classes,
        on.stats.cold_classes,
        on.stats.hit_rate(),
        off.stats.wall_ms,
        off.stats.rule_hits,
        off.stats.cold_classes,
        off.stats.hit_rate(),
    );
    // Anchor at the workspace root whatever the invocation CWD; smoke mode
    // must not clobber the committed baseline.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_retarget.json");
    if test_mode {
        println!("\nsmoke mode: leaving {path} untouched");
    } else {
        match std::fs::write(path, &json) {
            Ok(()) => println!("\nbaseline written to {path}"),
            Err(e) => println!("\ncould not write {path}: {e}"),
        }
    }
}
