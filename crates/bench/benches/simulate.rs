//! Criterion benchmarks: simulator throughput (statevector vs exact density
//! matrix with depolarizing noise), the specialized 1q/2q kernels against
//! the generic gather/scatter path, and one quantum-volume circuit score.

use ashn_ir::circuit::apply_gate;
use ashn_ir::kernels::apply_gate_generic;
use ashn_ir::{Circuit, Instruction};
use ashn_math::randmat::haar_unitary;
use ashn_math::{CMat, Complex};
use ashn_qv::{compile_model, sample_model_circuit, score_compiled, GateSet, QvNoise};
use ashn_sim::{DensityMatrix, SimEngine, StateVector};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_statevector(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let u = haar_unitary(4, &mut rng);
    for n in [6usize, 10] {
        c.bench_function(&format!("statevector_2q_gate_n{n}"), |b| {
            let mut s = StateVector::zero(n);
            b.iter(|| {
                s.apply(&[0, n - 1], &u);
                black_box(&s);
            })
        });
    }
}

fn bench_density(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let u = haar_unitary(4, &mut rng);
    for n in [4usize, 6] {
        c.bench_function(&format!("density_2q_gate_plus_noise_n{n}"), |b| {
            let mut rho = DensityMatrix::zero(n);
            b.iter(|| {
                rho.apply(&[0, 1], &u);
                rho.depolarize(&[0, 1], 0.01);
                black_box(&rho);
            })
        });
    }
}

/// Fast-path dispatch vs the generic gather/scatter kernel, per gate shape.
fn bench_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let u1 = haar_unitary(2, &mut rng);
    let u2 = haar_unitary(4, &mut rng);
    let cz = CMat::diag(&[Complex::ONE, Complex::ONE, Complex::ONE, -Complex::ONE]);
    let n = 10usize;
    let mut amps = vec![Complex::ZERO; 1 << n];
    amps[0] = Complex::ONE;
    let mut group = c.benchmark_group("kernels");
    let cases: [(&str, Vec<usize>, &CMat); 3] = [
        ("1q_n10", vec![4], &u1),
        ("2q_n10", vec![2, 7], &u2),
        ("cz_n10", vec![2, 7], &cz),
    ];
    for (name, qubits, m) in cases {
        group.bench_function(&format!("{name}_fast"), |b| {
            b.iter(|| {
                apply_gate(&mut amps, n, &qubits, m);
                black_box(&amps);
            })
        });
        group.bench_function(&format!("{name}_generic"), |b| {
            b.iter(|| {
                apply_gate_generic(&mut amps, n, &qubits, m);
                black_box(&amps);
            })
        });
    }
    group.finish();
}

/// A 1q/2q-dominated circuit (the QV workload shape) through the reusable
/// `SimEngine` fast path vs gate-by-gate generic application — the ≥2x
/// acceptance check of the fast-path engine.
fn bench_circuit_fast_vs_generic(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let n = 8usize;
    let mut circuit = Circuit::new(n);
    for layer in 0..6 {
        for q in 0..n {
            circuit.push(Instruction::new(vec![q], haar_unitary(2, &mut rng), "1q"));
        }
        for q in 0..n - 1 {
            if (q + layer) % 2 == 0 {
                circuit.push(Instruction::new(
                    vec![q, q + 1],
                    haar_unitary(4, &mut rng),
                    "U",
                ));
            }
        }
    }
    let mut group = c.benchmark_group("simulate");
    let mut engine = SimEngine::new(n);
    group.bench_function("circuit_1q2q_n8_fast_engine", |b| {
        b.iter(|| {
            engine.run_pure(&circuit);
            black_box(engine.amplitudes());
        })
    });
    group.bench_function("circuit_1q2q_n8_generic", |b| {
        b.iter(|| {
            let mut amps = vec![Complex::ZERO; 1 << n];
            amps[0] = circuit.phase;
            for g in circuit.gates() {
                apply_gate_generic(&mut amps, n, &g.qubits, &g.matrix);
            }
            black_box(&amps);
        })
    });
    group.finish();
}

fn bench_qv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let model = sample_model_circuit(4, &mut rng);
    let compiled = compile_model(&model, GateSet::Ashn { cutoff: 1.1 }).expect("compiles");
    let noise = QvNoise::with_e_cz(0.012);
    let mut group = c.benchmark_group("qv");
    group.sample_size(10);
    group.bench_function("score_compiled_d4_ashn", |b| {
        b.iter(|| black_box(score_compiled(&compiled, &noise)))
    });
    group.bench_function("compile_model_d4_cz", |b| {
        b.iter(|| black_box(compile_model(&model, GateSet::Cz)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_statevector,
    bench_kernels,
    bench_circuit_fast_vs_generic,
    bench_density,
    bench_qv
);
criterion_main!(benches);
