//! Criterion benchmarks: simulator throughput (statevector vs exact density
//! matrix with depolarizing noise) and one quantum-volume circuit score.

use ashn_math::randmat::haar_unitary;
use ashn_qv::{compile_model, sample_model_circuit, score_compiled, GateSet, QvNoise};
use ashn_sim::{DensityMatrix, StateVector};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_statevector(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let u = haar_unitary(4, &mut rng);
    for n in [6usize, 10] {
        c.bench_function(&format!("statevector_2q_gate_n{n}"), |b| {
            let mut s = StateVector::zero(n);
            b.iter(|| {
                s.apply(&[0, n - 1], &u);
                black_box(&s);
            })
        });
    }
}

fn bench_density(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let u = haar_unitary(4, &mut rng);
    for n in [4usize, 6] {
        c.bench_function(&format!("density_2q_gate_plus_noise_n{n}"), |b| {
            let mut rho = DensityMatrix::zero(n);
            b.iter(|| {
                rho.apply(&[0, 1], &u);
                rho.depolarize(&[0, 1], 0.01);
                black_box(&rho);
            })
        });
    }
}

fn bench_qv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let model = sample_model_circuit(4, &mut rng);
    let compiled = compile_model(&model, GateSet::Ashn { cutoff: 1.1 }).expect("compiles");
    let noise = QvNoise::with_e_cz(0.012);
    let mut group = c.benchmark_group("qv");
    group.sample_size(10);
    group.bench_function("score_compiled_d4_ashn", |b| {
        b.iter(|| black_box(score_compiled(&compiled, &noise)))
    });
    group.bench_function("compile_model_d4_cz", |b| {
        b.iter(|| black_box(compile_model(&model, GateSet::Cz)))
    });
    group.finish();
}

criterion_group!(benches, bench_statevector, bench_density, bench_qv);
criterion_main!(benches);
