//! Criterion benchmarks for the synthesis hot path rebuilt on stack
//! matrices: KAK decomposition, single-class EA pulse search (serial and
//! multistart-parallel), and end-to-end `Compiler` synthesis cache-cold vs
//! cache-warm.

use ashn::qv::sample_model_circuit;
use ashn::{Compiler, GateSet, QvNoise};
use ashn_core::ea::{ashn_ea_multistart, EaVariant};
use ashn_core::par::default_workers;
use ashn_core::scheme::AshnScheme;
use ashn_gates::kak::{kak, reference, weyl_coordinates};
use ashn_gates::weyl::WeylPoint;
use ashn_math::randmat::haar_unitary;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_kak(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(41);
    let gates: Vec<_> = (0..16).map(|_| haar_unitary(4, &mut rng)).collect();
    let mut group = c.benchmark_group("kak");
    let mut i = 0;
    group.bench_function("kak_haar_smat", |b| {
        b.iter(|| {
            i = (i + 1) % gates.len();
            black_box(kak(&gates[i]));
        })
    });
    let mut j = 0;
    group.bench_function("kak_haar_cmat_reference", |b| {
        b.iter(|| {
            j = (j + 1) % gates.len();
            black_box(reference::kak_cmat(&gates[j]));
        })
    });
    let mut k = 0;
    group.bench_function("weyl_coordinates_haar", |b| {
        b.iter(|| {
            k = (k + 1) % gates.len();
            black_box(weyl_coordinates(&gates[k]));
        })
    });
    group.finish();
}

fn bench_ea(c: &mut Criterion) {
    let mut group = c.benchmark_group("ea");
    group.sample_size(10);
    // One representative target per face, solved cold each iteration.
    group.bench_function("ea_plus_single_class_serial", |b| {
        b.iter(|| black_box(ashn_ea_multistart(0.0, EaVariant::Plus, 0.5, 0.45, 0.2, 1).unwrap()))
    });
    group.bench_function(
        &format!("ea_plus_single_class_{}workers", default_workers()),
        |b| {
            b.iter(|| {
                black_box(ashn_ea_multistart(0.0, EaVariant::Plus, 0.5, 0.45, 0.2, 0).unwrap())
            })
        },
    );
    group.bench_function("ea_minus_single_class_serial", |b| {
        b.iter(|| black_box(ashn_ea_multistart(0.0, EaVariant::Minus, 0.6, 0.55, -0.3, 1).unwrap()))
    });
    group.finish();
}

fn bench_scheme(c: &mut Criterion) {
    let targets = [
        WeylPoint::new(0.5, 0.45, 0.2),
        WeylPoint::new(0.6, 0.3, 0.1),
        WeylPoint::SWAP,
        WeylPoint::new(0.7, 0.2, -0.1),
    ];
    let mut group = c.benchmark_group("scheme");
    group.sample_size(10);
    let mut i = 0;
    group.bench_function("compile_chamber_targets", |b| {
        let scheme = AshnScheme::new(0.0);
        b.iter(|| {
            i = (i + 1) % targets.len();
            black_box(scheme.compile(targets[i]).unwrap())
        })
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let model = sample_model_circuit(4, &mut rng);
    let mut group = c.benchmark_group("synth");
    group.sample_size(10);
    group.bench_function("compiler_cold_d4_ashn", |b| {
        // Fresh compiler per iteration: every class is a cache miss, so
        // this measures cold synthesis end to end.
        b.iter(|| {
            let compiler = Compiler::new()
                .gate_set(GateSet::Ashn { cutoff: 1.1 })
                .noise(QvNoise::with_e_cz(0.012));
            black_box(compiler.compile(&model).expect("compiles"))
        })
    });
    let warm = Compiler::new()
        .gate_set(GateSet::Ashn { cutoff: 1.1 })
        .noise(QvNoise::with_e_cz(0.012));
    group.bench_function("compiler_warm_d4_ashn", |b| {
        // Shared compiler: after the first iteration every lookup is an
        // exact or class hit (observable via `Compiler::synth_stats`).
        b.iter(|| black_box(warm.compile(&model).expect("compiles")))
    });
    group.finish();
    if let Some(stats) = warm.synth_stats() {
        println!(
            "warm compiler cache: {} exact hits, {} class hits, {} misses ({}% hit rate)",
            stats.exact_hits,
            stats.class_hits,
            stats.misses,
            (stats.hit_rate() * 100.0).round()
        );
    }
}

criterion_group!(benches, bench_kak, bench_ea, bench_scheme, bench_end_to_end);
criterion_main!(benches);
