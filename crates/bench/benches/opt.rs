//! Criterion benchmarks for the `ashn-opt` circuit optimizer: DAG
//! round-trip cost, the structural passes, and the full standard pipeline
//! (Collect2q + resynthesis over a cached AshN basis) on compiled QV
//! circuits.

use ashn::qv::sample_model_circuit;
use ashn::{Compiler, GateSet, OptLevel, QvNoise};
use ashn_ir::Circuit;
use ashn_opt::{standard_pipeline, structural_pipeline, DagCircuit};
use ashn_qv::experiment::compile_model_on;
use ashn_synth::basis::AshnBasis;
use ashn_synth::cache::CachedBasis;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// One routed d=4 QV circuit compiled to AshN (the optimizer's natural
/// workload shape: per-layer synthesized gates + routed SWAPs).
fn compiled_qv_circuit(seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = sample_model_circuit(4, &mut rng);
    let basis = CachedBasis::new(AshnBasis::with_cutoff(0.0, 1.1));
    compile_model_on(&model, &basis, None)
        .expect("compiles")
        .circuit
}

fn bench_dag(c: &mut Criterion) {
    let circuit = compiled_qv_circuit(7);
    let mut group = c.benchmark_group("opt_dag");
    group.bench_function("dag_round_trip_d4", |b| {
        b.iter(|| {
            let dag = DagCircuit::from_circuit(black_box(&circuit)).unwrap();
            black_box(dag.into_circuit())
        })
    });
    let dag = DagCircuit::from_circuit(&circuit).unwrap();
    group.bench_function("dag_topo_order_d4", |b| {
        b.iter(|| black_box(dag.topo_order()))
    });
    group.finish();
}

fn bench_passes(c: &mut Criterion) {
    let circuit = compiled_qv_circuit(8);
    let basis = CachedBasis::new(AshnBasis::with_cutoff(0.0, 1.1));
    let mut group = c.benchmark_group("opt_passes");
    group.sample_size(20);
    group.bench_function("structural_pipeline_d4", |b| {
        b.iter(|| black_box(structural_pipeline().run(black_box(&circuit)).unwrap()))
    });
    // First run populates the synthesis cache; steady-state resynthesis
    // serves repeated Weyl classes from it.
    let pipeline = standard_pipeline(&basis, 1e-5);
    let _ = pipeline.run(&circuit).unwrap();
    group.bench_function("standard_pipeline_d4_warm_cache", |b| {
        b.iter(|| black_box(pipeline.run(black_box(&circuit)).unwrap()))
    });
    group.finish();
}

fn bench_compiler(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let model = sample_model_circuit(4, &mut rng);
    let mut group = c.benchmark_group("opt_compiler");
    group.sample_size(10);
    for (name, level) in [
        ("compile_d4_opt_none", OptLevel::None),
        ("compile_d4_opt_default", OptLevel::Default),
    ] {
        let compiler = Compiler::new()
            .gate_set(GateSet::Ashn { cutoff: 1.1 })
            .noise(QvNoise::with_e_cz(0.007))
            .opt_level(level);
        let _ = compiler.compile(&model).expect("warms the synth cache");
        group.bench_function(name, |b| {
            b.iter(|| black_box(compiler.compile(black_box(&model)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dag, bench_passes, bench_compiler);
criterion_main!(benches);
