//! Telemetry overhead: the instrumented hot paths must stay within noise
//! of a dark stack. Two workloads cover the two kinds of seam:
//!
//! * **service batch** — a warm `synthesize_batch` over mixed traffic
//!   crosses every instrumented service phase (spans, tier counters,
//!   cache-lookup accounting, journal events) per iteration;
//! * **trajectory loop** — plan build (one span) plus a pure statevector
//!   execution whose scalar amplitude loop is deliberately *not*
//!   instrumented; this workload pins that it stays that way.
//!
//! Each workload is timed with the registry recording and with it
//! runtime-disabled (`set_enabled(false)` — the same cheap flag the
//! `telemetry` feature compiles away entirely), interleaved min-of-N.
//! In full mode the bench **asserts** instrumented/disabled ≤ 1.03 and
//! writes `BENCH_telemetry.json`; built `--no-default-features` it times
//! the genuinely dark stack for cross-mode comparison instead (no ratio
//! to assert — both sides are inert).
//!
//! Run `cargo bench -p ashn-bench --bench telemetry` (add `--test` for
//! the single-iteration CI smoke mode; `--targets N` scales the service
//! corpus).

use ashn_bench::Args;
use ashn_ir::Circuit;
use ashn_math::randmat::haar_unitary;
use ashn_math::CMat;
use ashn_service::{CompileService, ShardedCache};
use ashn_sim::plan::ExecPlan;
use ashn_sim::{Instruction, NoiseModel};
use ashn_synth::basis::CzBasis;
use ashn_telemetry::{install, Registry};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Mixed service traffic: Haar classes + exact repeats + dressed
/// same-class variants, all warm after one priming batch.
fn corpus(n: usize, seed: u64) -> Vec<CMat> {
    let classes = (n / 3).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let bases: Vec<CMat> = (0..classes).map(|_| haar_unitary(4, &mut rng)).collect();
    let mut targets = bases.clone();
    while targets.len() < n {
        let base = &bases[targets.len() % classes];
        if targets.len().is_multiple_of(2) {
            targets.push(base.clone()); // exact repeat
        } else {
            let pre = haar_unitary(2, &mut rng).kron(&haar_unitary(2, &mut rng));
            let post = haar_unitary(2, &mut rng).kron(&haar_unitary(2, &mut rng));
            targets.push(&(&post * base) * &pre); // dressed
        }
    }
    targets
}

/// A 5-qubit brickwork circuit of Haar 2q gates — the trajectory-loop
/// stand-in (plan build + pure execution, scalar amplitude walk).
fn brickwork(seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut circuit = Circuit::new(5);
    for layer in 0..6 {
        for a in ((layer % 2)..4).step_by(2) {
            circuit.push(Instruction::new(
                vec![a, a + 1],
                haar_unitary(4, &mut rng),
                "2q",
            ));
        }
    }
    circuit
}

/// Wall time of `iters` calls to `f`, in ns.
fn sample(iters: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64
}

/// Interleaved min-of-`rounds` comparison: returns (instrumented ns/iter,
/// disabled ns/iter). Interleaving cancels drift (thermal, cache state);
/// min-of-N discards scheduler noise, which only ever adds time.
fn compare(reg: &Registry, rounds: usize, iters: u64, mut f: impl FnMut()) -> (f64, f64) {
    let (mut on, mut off) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds {
        reg.set_enabled(true);
        on = on.min(sample(iters, &mut f));
        reg.set_enabled(false);
        off = off.min(sample(iters, &mut f));
    }
    reg.set_enabled(true);
    (on / iters as f64, off / iters as f64)
}

/// Iteration count putting one sample at ~`budget_ms` of wall time.
fn calibrate(budget_ms: u128, mut f: impl FnMut()) -> u64 {
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_millis() < budget_ms / 4 || iters == 0 {
        f();
        iters += 1;
        if iters >= 100_000 {
            break;
        }
    }
    (iters * 4).max(1)
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let args = Args::parse_lenient();
    let n_targets: usize = args.get("targets", if test_mode { 30 } else { 240 });
    let seed: u64 = args.get("seed", 42);
    let rounds = if test_mode { 1 } else { 7 };
    let feature_on = cfg!(feature = "telemetry");

    // A bounded journal keeps the ring-eviction path in the measured loop.
    let reg = Registry::with_journal_capacity(256);
    let _guard = install(&reg);

    println!(
        "telemetry overhead bench (feature {}; {} rounds, min-of-N interleaved)\n",
        if feature_on { "ON" } else { "OFF" },
        rounds
    );

    // Workload 1: warm service batch — every instrumented phase fires.
    let targets = corpus(n_targets, seed);
    let service = CompileService::with_cache(CzBasis, ShardedCache::new()).workers(1);
    let prime = service.synthesize_batch(&targets); // prime: cold once
    assert!(prime.circuits.iter().all(Result::is_ok));
    let batch_iters = if test_mode {
        1
    } else {
        calibrate(100, || {
            black_box(service.synthesize_batch(black_box(&targets)));
        })
    };
    let (batch_on, batch_off) = compare(&reg, rounds, batch_iters, || {
        black_box(service.synthesize_batch(black_box(&targets)));
    });

    // Workload 2: plan build + pure trajectory execution.
    let circuit = brickwork(seed);
    let traj_iters = if test_mode {
        1
    } else {
        calibrate(100, || {
            let plan = ExecPlan::build(&circuit, &NoiseModel::NOISELESS).expect("plan");
            let mut amps = vec![ashn_math::Complex::ZERO; 1 << circuit.n_qubits()];
            amps[0] = ashn_math::Complex::ONE;
            plan.execute_pure(&mut amps);
            black_box(&amps);
        })
    };
    let (traj_on, traj_off) = compare(&reg, rounds, traj_iters, || {
        let plan = ExecPlan::build(&circuit, &NoiseModel::NOISELESS).expect("plan");
        let mut amps = vec![ashn_math::Complex::ZERO; 1 << circuit.n_qubits()];
        amps[0] = ashn_math::Complex::ONE;
        plan.execute_pure(&mut amps);
        black_box(&amps);
    });

    let batch_ratio = batch_on / batch_off;
    let traj_ratio = traj_on / traj_off;
    println!(
        "service batch ({} targets)   instrumented {:>9.1} µs/iter   disabled {:>9.1} µs/iter   ratio {:.4}",
        targets.len(),
        batch_on / 1e3,
        batch_off / 1e3,
        batch_ratio
    );
    println!(
        "trajectory loop (5q plan)    instrumented {:>9.1} µs/iter   disabled {:>9.1} µs/iter   ratio {:.4}",
        traj_on / 1e3,
        traj_off / 1e3,
        traj_ratio
    );

    // Sanity: in full mode the instrumentation actually ran.
    if feature_on {
        let snap = reg.snapshot();
        assert!(snap.counter("service.batches").unwrap_or(0) > 0);
        assert!(snap.histogram("sim.plan.build").is_some());
    }

    // The acceptance gate: instrumented hot loops stay within noise
    // (≤3%) of the disabled stack. Smoke mode times single iterations,
    // which is pure scheduler noise — report, don't gate.
    if feature_on && !test_mode {
        assert!(
            batch_ratio <= 1.03,
            "service batch overhead {batch_ratio:.4} exceeds 1.03"
        );
        assert!(
            traj_ratio <= 1.03,
            "trajectory loop overhead {traj_ratio:.4} exceeds 1.03"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"telemetry\",\n  \"config\": {{ \"targets\": {}, \"seed\": {seed}, \
         \"feature\": {feature_on}, \"rounds\": {rounds}, \"smoke\": {test_mode} }},\n  \
         \"results\": [\n    {{ \"workload\": \"service_batch_warm\", \"instrumented_us\": {:.2}, \
         \"disabled_us\": {:.2}, \"ratio\": {:.4} }},\n    {{ \"workload\": \"trajectory_loop\", \
         \"instrumented_us\": {:.2}, \"disabled_us\": {:.2}, \"ratio\": {:.4} }}\n  ],\n  \
         \"overhead_gate\": 1.03\n}}\n",
        targets.len(),
        batch_on / 1e3,
        batch_off / 1e3,
        batch_ratio,
        traj_on / 1e3,
        traj_off / 1e3,
        traj_ratio,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    if test_mode || !feature_on {
        println!("\nsmoke/feature-off mode: leaving {path} untouched");
    } else {
        match std::fs::write(path, &json) {
            Ok(()) => println!("\nbaseline written to {path}"),
            Err(e) => println!("\ncould not write {path}: {e}"),
        }
    }
}
