//! Trajectory-ensemble throughput: compiled execution plans vs the
//! instruction walk, on a QV-style 4-qubit circuit (a `d = 4` model
//! compiled to the AshN basis, noise-scheduled as in Fig. 7).
//!
//! Measures, and writes to `BENCH_trajectory.json` as a machine-readable
//! baseline for future PRs:
//!
//! * plan build cost (and the op-count compression fusion achieves);
//! * `run_pure` walk vs plan;
//! * trajectory-ensemble throughput walk vs plan under the paper's noise
//!   (every gate noisy → nothing fuses → results are **bit-identical** to
//!   the walk, asserted here) and under two-qubit-only noise (single-qubit
//!   runs fuse into the entanglers → the big win);
//! * cold vs warm `mean_hop` (compile-per-point vs compile-once
//!   `score_compiled_many`).
//!
//! Run `cargo bench -p ashn-bench --bench trajectory` (add `--test` for
//! the single-iteration CI smoke mode; `--traj N` scales the ensemble).

use ashn_bench::Args;
use ashn_qv::{
    compile_model, resolve_rates, sample_model_circuit, score_compiled, score_compiled_many,
    stamp_noise, GateSet, QvNoise,
};
use ashn_sim::plan::ExecPlan;
use ashn_sim::trajectory::{
    trajectory_probabilities_batched, trajectory_probabilities_batched_plan,
};
use ashn_sim::{Circuit, NoiseModel, SimEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Mean ns/iter over a warmed-up timed batch (single iteration in `--test`
/// smoke mode), criterion-compat style.
fn time_ns(test_mode: bool, mut f: impl FnMut()) -> f64 {
    if test_mode {
        let start = Instant::now();
        f();
        return start.elapsed().as_nanos() as f64;
    }
    let warmup = Instant::now();
    let mut warmup_iters = 0u64;
    while warmup.elapsed().as_millis() < 50 {
        f();
        warmup_iters += 1;
        if warmup_iters >= 1_000_000 {
            break;
        }
    }
    let per_iter = warmup.elapsed().as_nanos().max(1) / u128::from(warmup_iters);
    let iters = (200_000_000 / per_iter.max(1)).clamp(1, 1_000_000) as u64;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn report(name: &str, ns: f64) {
    let (value, unit) = if ns < 1_000.0 {
        (ns, "ns")
    } else if ns < 1_000_000.0 {
        (ns / 1_000.0, "µs")
    } else {
        (ns / 1_000_000.0, "ms")
    };
    println!("{name:<44} {value:>10.3} {unit}/iter");
}

/// The walk-path ensemble estimator the plan path is compared against:
/// identical chunking/RNG plumbing, instruction walk per trajectory.
fn walk_ensemble(circuit: &Circuit, n_traj: usize, master_seed: u64) -> Vec<f64> {
    // Stamped circuits carry explicit rates, so the model contributes
    // nothing; NOISELESS keeps unannotated gates noise-free.
    let noise = NoiseModel::NOISELESS;
    let dim = 1usize << circuit.n_qubits();
    let mut acc = vec![0.0; dim];
    let mut engine = SimEngine::new(circuit.n_qubits());
    let mut rng = StdRng::seed_from_u64(master_seed);
    for _ in 0..n_traj {
        engine.run_trajectory_walk(circuit, &noise, &mut rng);
        engine.accumulate_probabilities(&mut acc);
    }
    for a in acc.iter_mut() {
        *a /= n_traj as f64;
    }
    acc
}

fn plan_ensemble(plan: &ExecPlan, n_traj: usize, master_seed: u64) -> Vec<f64> {
    let dim = 1usize << plan.n_qubits();
    let mut acc = vec![0.0; dim];
    let mut engine = SimEngine::new(plan.n_qubits());
    let mut rng = StdRng::seed_from_u64(master_seed);
    for _ in 0..n_traj {
        engine.run_plan_trajectory(plan, &mut rng);
        engine.accumulate_probabilities(&mut acc);
    }
    for a in acc.iter_mut() {
        *a /= n_traj as f64;
    }
    acc
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let args = Args::parse_lenient();
    let n_traj: usize = args.get("traj", if test_mode { 8 } else { 256 });
    let seed: u64 = args.get("seed", 42);

    // QV-style 4-qubit circuit: d = 4 model compiled to AshN, as in Fig. 7.
    let mut rng = StdRng::seed_from_u64(seed);
    let model = sample_model_circuit(4, &mut rng);
    let compiled = compile_model(&model, GateSet::Ashn { cutoff: 1.1 }).expect("compiles");
    let paper_noise = QvNoise::with_e_cz(0.012);
    let twoq_noise = QvNoise {
        e_cz: 0.012,
        e_1q: 0.0,
    };
    let stamped = stamp_noise(&compiled.circuit, &paper_noise);
    let stamped_2q = stamp_noise(&compiled.circuit, &twoq_noise);
    let plan = ExecPlan::build(&stamped, &NoiseModel::NOISELESS).expect("plans");
    let plan_2q = ExecPlan::build(&stamped_2q, &NoiseModel::NOISELESS).expect("plans");
    let plan_pure = ExecPlan::pure(&compiled.circuit).expect("plans");
    println!(
        "circuit: {} gates | plan ops: {} (paper noise), {} (2q-only noise), {} (pure)\n",
        stamped.gates().len(),
        plan.ops().len(),
        plan_2q.ops().len(),
        plan_pure.ops().len()
    );

    // Correctness gates before timing: the paper-noise plan must reproduce
    // the walk bit for bit (nothing fuses); the fused plan to 1e-12.
    let reference = walk_ensemble(&stamped, n_traj, seed);
    let planned = plan_ensemble(&plan, n_traj, seed);
    assert_eq!(
        reference.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        planned.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        "plan-backed ensemble must be bit-identical to the walk"
    );
    let ref_2q = walk_ensemble(&stamped_2q, n_traj, seed);
    let planned_2q = plan_ensemble(&plan_2q, n_traj, seed);
    for (a, b) in ref_2q.iter().zip(planned_2q.iter()) {
        assert!((a - b).abs() < 1e-12, "fused plan drifted from the walk");
    }
    for workers in [1usize, 2, 8] {
        let got = trajectory_probabilities_batched_plan(&plan, n_traj, seed, workers);
        let want =
            trajectory_probabilities_batched(&stamped, &NoiseModel::NOISELESS, n_traj, seed, 1);
        assert_eq!(got, want, "worker-count invariance broke at {workers}");
    }

    let build_ns = time_ns(test_mode, || {
        black_box(ExecPlan::build(black_box(&stamped), &NoiseModel::NOISELESS).unwrap());
    });
    report("plan/build_d4_ashn", build_ns);

    let mut engine = SimEngine::new(4);
    let pure_walk_ns = time_ns(test_mode, || {
        black_box(
            engine
                .run_pure_walk(black_box(&compiled.circuit))
                .amplitudes()[0],
        );
    });
    report("run_pure/walk", pure_walk_ns);
    let pure_plan_ns = time_ns(test_mode, || {
        black_box(engine.run_plan(black_box(&plan_pure)).amplitudes()[0]);
    });
    report("run_pure/plan", pure_plan_ns);

    let walk_ns = time_ns(test_mode, || {
        black_box(walk_ensemble(black_box(&stamped), n_traj, seed));
    });
    report(&format!("ensemble_{n_traj}/walk_paper_noise"), walk_ns);
    let plan_ns = time_ns(test_mode, || {
        black_box(plan_ensemble(black_box(&plan), n_traj, seed));
    });
    report(&format!("ensemble_{n_traj}/plan_paper_noise"), plan_ns);
    let walk_2q_ns = time_ns(test_mode, || {
        black_box(walk_ensemble(black_box(&stamped_2q), n_traj, seed));
    });
    report(&format!("ensemble_{n_traj}/walk_2q_noise"), walk_2q_ns);
    let plan_2q_ns = time_ns(test_mode, || {
        black_box(plan_ensemble(black_box(&plan_2q), n_traj, seed));
    });
    report(&format!("ensemble_{n_traj}/plan_2q_noise"), plan_2q_ns);

    // Cold vs warm mean_hop: compile-per-noise-point vs compile-once.
    let points = [
        QvNoise::with_e_cz(0.007),
        QvNoise::with_e_cz(0.012),
        QvNoise::with_e_cz(0.017),
    ];
    let cold_ns = time_ns(test_mode, || {
        let mut hop = 0.0;
        for p in &points {
            hop += score_compiled(black_box(&compiled), p).hop;
        }
        black_box(hop);
    });
    report("mean_hop/cold_score_per_point_x3", cold_ns);
    let warm_ns = time_ns(test_mode, || {
        let scores = score_compiled_many(black_box(&compiled), &points);
        black_box(scores[0].hop + scores[1].hop + scores[2].hop);
    });
    report("mean_hop/warm_score_compiled_many_x3", warm_ns);
    // Rate resolution alone (the stamp_noise replacement) for context.
    let rates_ns = time_ns(test_mode, || {
        black_box(resolve_rates(black_box(&compiled.circuit), &paper_noise));
    });
    report("mean_hop/resolve_rates", rates_ns);

    let traj_per_s = |ens_ns: f64| n_traj as f64 / (ens_ns * 1e-9);
    let speedup = walk_ns / plan_ns;
    let speedup_2q = walk_2q_ns / plan_2q_ns;
    println!(
        "\nthroughput: walk {:.0} traj/s → plan {:.0} traj/s ({speedup:.2}x, paper noise); \
         walk {:.0} traj/s → plan {:.0} traj/s ({speedup_2q:.2}x, 2q-only noise)",
        traj_per_s(walk_ns),
        traj_per_s(plan_ns),
        traj_per_s(walk_2q_ns),
        traj_per_s(plan_2q_ns),
    );

    let json = format!(
        "{{\n  \"bench\": \"trajectory\",\n  \"config\": {{ \"d\": 4, \"gate_set\": \"AshN(r=1.1)\", \
         \"e_cz\": 0.012, \"n_traj\": {n_traj}, \"seed\": {seed}, \"smoke\": {test_mode} }},\n  \
         \"circuit\": {{ \"gates\": {}, \"plan_ops_paper_noise\": {}, \"plan_ops_2q_noise\": {}, \
         \"plan_ops_pure\": {} }},\n  \"results\": {{\n    \"plan_build_us\": {:.3},\n    \
         \"run_pure_walk_us\": {:.3},\n    \"run_pure_plan_us\": {:.3},\n    \
         \"walk_traj_per_s_paper_noise\": {:.0},\n    \"plan_traj_per_s_paper_noise\": {:.0},\n    \
         \"speedup_paper_noise\": {:.3},\n    \"walk_traj_per_s_2q_noise\": {:.0},\n    \
         \"plan_traj_per_s_2q_noise\": {:.0},\n    \"speedup_2q_noise\": {:.3},\n    \
         \"score_per_point_x3_us\": {:.3},\n    \"score_compiled_many_x3_us\": {:.3}\n  }}\n}}\n",
        stamped.gates().len(),
        plan.ops().len(),
        plan_2q.ops().len(),
        plan_pure.ops().len(),
        build_ns / 1e3,
        pure_walk_ns / 1e3,
        pure_plan_ns / 1e3,
        traj_per_s(walk_ns),
        traj_per_s(plan_ns),
        speedup,
        traj_per_s(walk_2q_ns),
        traj_per_s(plan_2q_ns),
        speedup_2q,
        cold_ns / 1e3,
        warm_ns / 1e3,
    );
    // Anchor at the workspace root whatever the invocation CWD (cargo runs
    // bench binaries from the package dir). Smoke mode times single
    // iterations, so it must not clobber the committed baseline.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trajectory.json");
    if test_mode {
        println!("smoke mode: leaving {path} untouched");
    } else {
        match std::fs::write(path, &json) {
            Ok(()) => println!("baseline written to {path}"),
            Err(e) => println!("could not write {path}: {e}"),
        }
    }
}
