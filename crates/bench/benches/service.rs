//! Compile-service throughput: batched synthesis over the sharded
//! process-wide cache, cold vs warm vs disk-warm-started, at 1/4/16
//! workers.
//!
//! The corpus mimics service traffic: ~N/5 distinct Weyl classes fanned
//! into N targets (exact repeats + locally-dressed same-class variants),
//! so batch-wide dedup and the cache tiers all engage. Asserted before
//! timing:
//!
//! * batch output is **bit-identical** across worker counts;
//! * a disk-warm-started cache serves the same bits as the cache that
//!   saved it;
//! * warm batches beat cold batches by ≥5x.
//!
//! Run `cargo bench -p ashn-bench --bench service` (add `--test` for the
//! single-iteration CI smoke mode; `--targets N` scales the corpus;
//! `--cache PATH` persists the synthesis cache between runs — passing the
//! same path twice exercises the disk-warm boot against a real file from
//! a previous process).

use ashn_bench::Args;
use ashn_math::randmat::haar_unitary;
use ashn_math::CMat;
use ashn_service::{BatchResult, CompileService, ShardedCache};
use ashn_synth::basis::AshnBasis;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// FNV-1a over every IEEE-754 bit of every served circuit: one u64 that
/// differs if any output differs anywhere.
fn batch_digest(batch: &BatchResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |w: u64| {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for circuit in &batch.circuits {
        let circuit = circuit.as_ref().expect("synthesis");
        eat(circuit.phase.re.to_bits());
        eat(circuit.phase.im.to_bits());
        for inst in &circuit.instructions {
            eat(inst.qubits.iter().fold(0, |acc, &q| acc * 64 + q as u64));
            eat(inst.duration.to_bits());
            for i in 0..inst.matrix.rows() {
                for j in 0..inst.matrix.cols() {
                    eat(inst.matrix[(i, j)].re.to_bits());
                    eat(inst.matrix[(i, j)].im.to_bits());
                }
            }
        }
    }
    h
}

/// Service-shaped traffic over `n` targets: ~70% fresh Haar-random
/// classes, ~20% exact repeats of earlier targets, ~10% locally-dressed
/// same-class variants — so cold synthesis dominates a cold batch while
/// every cache tier (exact, re-dressed, miss) engages.
fn corpus(n: usize, seed: u64) -> (Vec<CMat>, usize) {
    let classes = (n * 7 / 10).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let bases: Vec<CMat> = (0..classes).map(|_| haar_unitary(4, &mut rng)).collect();
    let mut targets = bases.clone();
    let repeats = n * 2 / 10;
    for i in 0..repeats {
        targets.push(bases[i % classes].clone());
    }
    while targets.len() < n {
        let base = &bases[targets.len() % classes];
        let pre = haar_unitary(2, &mut rng).kron(&haar_unitary(2, &mut rng));
        let post = haar_unitary(2, &mut rng).kron(&haar_unitary(2, &mut rng));
        targets.push(&(&post * base) * &pre);
    }
    (targets, classes)
}

fn service(workers: usize, cache: ShardedCache) -> CompileService<AshnBasis> {
    CompileService::with_cache(AshnBasis::with_cutoff(0.0, 1.1), cache).workers(workers)
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let args = Args::parse_lenient();
    let n_targets: usize = args.get("targets", if test_mode { 60 } else { 1000 });
    let seed: u64 = args.get("seed", 42);
    let cache_path: String = args.get("cache", String::new());

    let (targets, classes) = corpus(n_targets, seed);
    println!(
        "corpus: {} SU(4) targets over {} Weyl classes ({:.1} targets/class)\n",
        targets.len(),
        classes,
        targets.len() as f64 / classes as f64
    );

    // Fixture file: the --cache path if given (relative paths anchor at
    // the workspace root, like the JSON baseline — cargo runs bench
    // binaries from the package dir), else a scratch file.
    let fixture = if cache_path.is_empty() {
        let scratch = std::env::temp_dir().join(format!("ashn-bench-service-{}.cache", seed));
        scratch.to_string_lossy().into_owned()
    } else if std::path::Path::new(&cache_path).is_absolute() {
        cache_path.clone()
    } else {
        format!("{}/../../{}", env!("CARGO_MANIFEST_DIR"), cache_path)
    };
    if let Some(parent) = std::path::Path::new(&fixture).parent() {
        std::fs::create_dir_all(parent).ok();
    }
    let preexisting = std::path::Path::new(&fixture).exists();

    if preexisting {
        println!("(disk fixture pre-existed; disk-warm boots from the previous process's file)");
    }

    let cps = |batch: &BatchResult| batch.stats.requests as f64 / (batch.stats.wall_ms / 1e3);
    let mut rows: Vec<(usize, f64, f64, f64)> = Vec::new();
    let mut digest: Option<u64> = None;
    let mut last_cold_cache = ShardedCache::new();

    for workers in [1usize, 4, 16] {
        // Cold: a fresh cache pays one EA synthesis per unique class.
        let cold_service = service(workers, ShardedCache::new());
        let cold = cold_service.synthesize_batch(&targets);
        assert_eq!(cold.stats.cold_classes, classes);

        // Warm: the same cache immediately re-serves the whole corpus.
        let warm = cold_service.synthesize_batch(&targets);
        assert_eq!(warm.stats.cold_classes, 0);

        // Disk-warm: boot a brand-new cache from the persisted fixture —
        // a previous process's file when --cache points at one (the CI
        // cross-process path), else the one this run saves first.
        if !preexisting && workers == 1 {
            cold_service.cache().save(&fixture).expect("save fixture");
        }
        let disk_cache = ShardedCache::new();
        let report = disk_cache.warm_start(&fixture);
        assert!(
            report.is_warm(),
            "fixture failed to load: {:?}",
            report.outcome
        );
        let disk = service(workers, disk_cache).synthesize_batch(&targets);
        assert_eq!(
            disk.stats.cold_classes, 0,
            "disk-warmed cache still had cold classes"
        );

        // Acceptance gates: identical bits everywhere, warm >= 5x cold.
        // (The 5x gate is checked single-threaded, where per-batch thread
        // spawn overhead cannot mask the synthesis saving.)
        let d = batch_digest(&cold);
        assert_eq!(d, batch_digest(&warm), "warm serve changed bits");
        assert_eq!(d, batch_digest(&disk), "disk-warm serve changed bits");
        match digest {
            None => digest = Some(d),
            Some(prev) => assert_eq!(prev, d, "bits diverged at {workers} workers"),
        }
        if workers == 1 {
            assert!(
                cold.stats.wall_ms >= warm.stats.wall_ms * 5.0,
                "warm not >=5x cold: cold {:.2}ms, warm {:.2}ms",
                cold.stats.wall_ms,
                warm.stats.wall_ms
            );
        }

        println!(
            "workers={workers:<2}  cold {:>9.0} targets/s   warm {:>9.0} targets/s ({:>5.1}x)   disk-warm {:>9.0} targets/s",
            cps(&cold),
            cps(&warm),
            cold.stats.wall_ms / warm.stats.wall_ms,
            cps(&disk),
        );
        rows.push((workers, cps(&cold), cps(&warm), cps(&disk)));
        last_cold_cache = cold_service.cache().clone();
    }

    if cache_path.is_empty() {
        std::fs::remove_file(&fixture).ok();
    } else {
        // Refresh the fixture for the next process (the CI cache step).
        last_cold_cache.save(&fixture).expect("save fixture");
    }

    let results: Vec<String> = rows
        .iter()
        .map(|(w, cold, warm, disk)| {
            format!(
                "    {{ \"workers\": {w}, \"cold_targets_per_s\": {cold:.0}, \
                 \"warm_targets_per_s\": {warm:.0}, \"disk_warm_targets_per_s\": {disk:.0} }}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"service\",\n  \"config\": {{ \"targets\": {}, \"classes\": {}, \
         \"gate_set\": \"AshN(r=1.1)\", \"seed\": {seed}, \"smoke\": {test_mode} }},\n  \
         \"bit_identical_across_workers\": true,\n  \"results\": [\n{}\n  ]\n}}\n",
        targets.len(),
        classes,
        results.join(",\n"),
    );
    // Anchor at the workspace root whatever the invocation CWD. Smoke mode
    // times single iterations, so it must not clobber the committed
    // baseline.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    if test_mode {
        println!("\nsmoke mode: leaving {path} untouched");
    } else {
        match std::fs::write(path, &json) {
            Ok(()) => println!("\nbaseline written to {path}"),
            Err(e) => println!("\ncould not write {path}: {e}"),
        }
    }
}
