//! Criterion benchmark: the end-to-end `ashn::Compiler` pipeline
//! (synthesize + route + schedule + simulate) at `n = 4`, per gate set —
//! the baseline for future batching/caching work.

use ashn::{Compiler, GateSet, QvNoise};
use ashn_qv::sample_model_circuit;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_compile(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(17);
    let model = sample_model_circuit(4, &mut rng);
    let mut group = c.benchmark_group("compiler");
    group.sample_size(10);
    for gs in [GateSet::Cz, GateSet::Sqisw, GateSet::Ashn { cutoff: 1.1 }] {
        let compiler = Compiler::new()
            .gate_set(gs)
            .noise(QvNoise::with_e_cz(0.012));
        group.bench_function(&format!("compile_d4_{}", gs.name()), |b| {
            b.iter(|| black_box(compiler.compile(&model).expect("compiles")))
        });
    }
    group.finish();
}

fn bench_compile_and_score(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(18);
    let model = sample_model_circuit(4, &mut rng);
    let compiler = Compiler::new()
        .gate_set(GateSet::Ashn { cutoff: 1.1 })
        .noise(QvNoise::with_e_cz(0.012));
    let compiled = compiler.compile(&model).expect("compiles");
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("end_to_end_d4_ashn", |b| {
        b.iter(|| black_box(compiler.compile(&model).expect("compiles").score()))
    });
    group.bench_function("score_only_d4_ashn", |b| {
        b.iter(|| black_box(compiled.score()))
    });
    group.finish();
}

criterion_group!(benches, bench_compile, bench_compile_and_score);
criterion_main!(benches);
