//! Criterion benchmark: the end-to-end `ashn::Compiler` pipeline
//! (synthesize + route + schedule + simulate) at `n = 4`, per gate set —
//! the baseline for future batching/caching work.

use ashn::{Compiler, GateSet, QvNoise};
use ashn_qv::{mean_hop_batched, sample_model_circuit};
use ashn_sim::batch::default_workers;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_compile(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(17);
    let model = sample_model_circuit(4, &mut rng);
    let mut group = c.benchmark_group("compiler");
    group.sample_size(10);
    for gs in [GateSet::Cz, GateSet::Sqisw, GateSet::Ashn { cutoff: 1.1 }] {
        // The compiler is rebuilt per iteration: `Compiler` wraps its basis
        // in the synthesis memo-cache, and a shared instance would measure
        // cache hits instead of cold synthesis.
        group.bench_function(&format!("compile_d4_{}", gs.name()), |b| {
            b.iter(|| {
                let compiler = Compiler::new()
                    .gate_set(gs)
                    .noise(QvNoise::with_e_cz(0.012));
                black_box(compiler.compile(&model).expect("compiles"))
            })
        });
    }
    group.finish();
}

fn bench_compile_and_score(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(18);
    let model = sample_model_circuit(4, &mut rng);
    let compiler = Compiler::new()
        .gate_set(GateSet::Ashn { cutoff: 1.1 })
        .noise(QvNoise::with_e_cz(0.012));
    let compiled = compiler.compile(&model).expect("compiles");
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("end_to_end_d4_ashn", |b| {
        b.iter(|| {
            // Fresh compiler: cold synthesis per iteration (see above).
            let cold = Compiler::new()
                .gate_set(GateSet::Ashn { cutoff: 1.1 })
                .noise(QvNoise::with_e_cz(0.012));
            black_box(cold.compile(&model).expect("compiles").score())
        })
    });
    group.bench_function("end_to_end_d4_ashn_cached", |b| {
        // Shared compiler: every class is a memo-cache hit after the first
        // iteration — the cache's headline win on repeat workloads.
        b.iter(|| black_box(compiler.compile(&model).expect("compiles").score()))
    });
    group.bench_function("score_only_d4_ashn", |b| {
        b.iter(|| black_box(compiled.score()))
    });
    group.finish();
}

fn bench_batched_experiment(c: &mut Criterion) {
    // The batched QV experiment runner: identical statistics, fanned over
    // workers vs pinned to one.
    let noise = QvNoise::with_e_cz(0.012);
    let gs = GateSet::Ashn { cutoff: 1.1 };
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("mean_hop_d3_1worker", |b| {
        b.iter(|| black_box(mean_hop_batched(3, gs, &noise, 4, 1, 1).expect("compiles")))
    });
    group.bench_function(&format!("mean_hop_d3_{}workers", default_workers()), |b| {
        b.iter(|| {
            black_box(mean_hop_batched(3, gs, &noise, 4, 1, default_workers()).expect("compiles"))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_compile,
    bench_compile_and_score,
    bench_batched_experiment
);
criterion_main!(benches);
