//! Criterion benchmarks: circuit synthesis throughput — two-qubit bases,
//! the Theorem 12 three-qubit construction, and full QSD.

use ashn_math::randmat::haar_unitary;
use ashn_synth::cnot_basis::decompose_cnot;
use ashn_synth::qsd::{qsd, SynthBasis};
use ashn_synth::sqisw_basis::decompose_sqisw;
use ashn_synth::three_qubit::decompose_three_qubit;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_two_qubit(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let gates: Vec<_> = (0..16).map(|_| haar_unitary(4, &mut rng)).collect();
    let mut i = 0;
    c.bench_function("decompose_cnot_haar", |b| {
        b.iter(|| {
            i = (i + 1) % gates.len();
            black_box(decompose_cnot(&gates[i]));
        })
    });
    let mut group = c.benchmark_group("sqisw");
    group.sample_size(10);
    let mut j = 0;
    group.bench_function("decompose_sqisw_haar", |b| {
        b.iter(|| {
            j = (j + 1) % gates.len();
            black_box(decompose_sqisw(&gates[j]).unwrap());
        })
    });
    group.finish();
}

fn bench_multi_qubit(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let u8x8 = haar_unitary(8, &mut rng);
    let u16 = haar_unitary(16, &mut rng);
    let mut group = c.benchmark_group("nqubit");
    group.sample_size(10);
    group.bench_function("three_qubit_11_gates", |b| {
        b.iter(|| black_box(decompose_three_qubit(&u8x8)))
    });
    group.bench_function("qsd_cnot_n4", |b| {
        b.iter(|| black_box(qsd(&u16, SynthBasis::Cnot)))
    });
    group.bench_function("qsd_generic_n4", |b| {
        b.iter(|| black_box(qsd(&u16, SynthBasis::Generic)))
    });
    group.finish();
}

criterion_group!(benches, bench_two_qubit, bench_multi_qubit);
criterion_main!(benches);
