//! Criterion benchmarks: AshN pulse compilation and KAK throughput.
//!
//! These quantify the compile-time cost of the "complex yet reduced"
//! instruction set: the closed-form ND path is microseconds; the numerical
//! EA path (invariant-matching search) is the slow one the paper's
//! calibration discussion trades against.

use ashn_core::scheme::AshnScheme;
use ashn_gates::kak::{kak, weyl_coordinates};
use ashn_gates::weyl::WeylPoint;
use ashn_math::randmat::haar_unitary;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_kak(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let gates: Vec<_> = (0..32).map(|_| haar_unitary(4, &mut rng)).collect();
    let mut i = 0;
    c.bench_function("kak_haar_random", |b| {
        b.iter(|| {
            i = (i + 1) % gates.len();
            black_box(kak(&gates[i]));
        })
    });
    let mut j = 0;
    c.bench_function("weyl_coordinates", |b| {
        b.iter(|| {
            j = (j + 1) % gates.len();
            black_box(weyl_coordinates(&gates[j]));
        })
    });
}

fn bench_ashn_compile(c: &mut Criterion) {
    let scheme = AshnScheme::new(0.0);
    // ND-region target: closed form.
    c.bench_function("ashn_compile_nd_region", |b| {
        b.iter(|| black_box(scheme.compile(WeylPoint::new(0.6, 0.25, 0.1)).unwrap()))
    });
    // EA-region target: numerical invariant matching.
    let mut group = c.benchmark_group("ashn_compile_ea");
    group.sample_size(10);
    group.bench_function("ea_region", |b| {
        b.iter(|| black_box(scheme.compile(WeylPoint::new(0.5, 0.45, 0.2)).unwrap()))
    });
    group.finish();

    let zz = AshnScheme::new(0.3);
    c.bench_function("ashn_compile_nd_with_zz", |b| {
        b.iter(|| black_box(zz.compile(WeylPoint::new(0.6, 0.2, 0.05)).unwrap()))
    });
}

criterion_group!(benches, bench_kak, bench_ashn_compile);
criterion_main!(benches);
