//! Size-axis scaling sweep: simulation cost vs register width, n = 8…24.
//!
//! For each n the same layered circuit shape (dense/diagonal/Pauli 1q on
//! every wire, dense/CZ/ZZ entanglers on adjacent pairs plus one far pair)
//! is compiled to an [`ExecPlan`] and executed two ways:
//!
//! * **scalar** — [`ChunkPolicy::scalar`], the single-threaded kernel path;
//! * **threaded** — [`ChunkPolicy::auto`], amplitude-parallel chunked
//!   kernels on registers at or above
//!   [`ChunkPolicy::MIN_PARALLEL_QUBITS`] (worker count from
//!   [`ashn_sim::batch::default_workers`], so `ASHN_WORKERS` applies).
//!
//! Reported per row: time per circuit gate (pure run) and trajectories per
//! second (noisy ensemble), both paths. Before any timing the sweep
//! asserts the chunked-kernel determinism contract — output probabilities
//! **bit-identical** at 1 / 2 / 8 workers for every parallel-eligible n —
//! and, on machines with ≥ 4 cores, that the threaded path is ≥ 2x faster
//! per gate than scalar at n = 22.
//!
//! Writes `BENCH_scaling.json` at the workspace root as the committed
//! baseline. Run `cargo bench -p ashn-bench --bench scaling` (add `--test`
//! for the single-iteration CI smoke mode, which sweeps a reduced size set
//! and leaves the baseline untouched).

use ashn_bench::Args;
use ashn_math::randmat::haar_unitary;
use ashn_math::{c, CMat, Complex};
use ashn_sim::plan::ExecPlan;
use ashn_sim::{ChunkPolicy, Circuit, Instruction, NoiseModel, SimEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

fn cz() -> CMat {
    CMat::diag(&[Complex::ONE, Complex::ONE, Complex::ONE, c(-1.0, 0.0)])
}

fn zz(theta: f64) -> CMat {
    CMat::diag(&[
        Complex::cis(theta),
        Complex::cis(-theta),
        Complex::cis(-theta),
        Complex::cis(theta),
    ])
}

/// The swept circuit: one 1q gate per wire (cycling dense / diagonal /
/// Pauli-X), one entangler per adjacent pair (cycling dense / CZ / ZZ),
/// and a far-pair dense entangler `(n-1, 0)` — every kernel class, every
/// chunk-boundary shape, `n + n/2 + 1` gates in all. With `noisy` set the
/// entanglers carry a 1% depolarizing annotation (trajectory mode).
fn scaling_circuit(n: usize, noisy: bool, rng: &mut StdRng) -> Circuit {
    let mut circuit = Circuit::new(n);
    circuit.phase = Complex::cis(rng.gen::<f64>());
    for q in 0..n {
        let m = match q % 3 {
            0 => haar_unitary(2, rng),
            1 => CMat::diag(&[
                Complex::cis(rng.gen::<f64>()),
                Complex::cis(rng.gen::<f64>()),
            ]),
            _ => CMat::from_rows_f64(&[&[0.0, 1.0], &[1.0, 0.0]]),
        };
        circuit.push(Instruction::new(vec![q], m, "1q"));
    }
    let entangle = |c: &mut Circuit, pair: Vec<usize>, m: CMat| {
        let g = Instruction::new(pair, m, "2q");
        c.push(if noisy { g.with_error_rate(0.01) } else { g });
    };
    for (k, q) in (0..n - 1).step_by(2).enumerate() {
        let m = match k % 3 {
            0 => haar_unitary(4, rng),
            1 => cz(),
            _ => zz(rng.gen::<f64>()),
        };
        entangle(&mut circuit, vec![q, q + 1], m);
    }
    let far = haar_unitary(4, rng);
    entangle(&mut circuit, vec![n - 1, 0], far);
    circuit
}

/// Wall-clock ns per call, adaptively repeated: one estimation call, then
/// enough repeats for ~300 ms of timed work (capped at 64). Single call in
/// smoke mode.
fn time_run(test_mode: bool, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    f();
    let first = start.elapsed().as_nanos().max(1);
    if test_mode {
        return first as f64;
    }
    let reps = (300_000_000 / first).clamp(1, 64) as u32;
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(reps)
}

struct Row {
    n: usize,
    gates: usize,
    plan_ops: usize,
    workers: usize,
    scalar_gate_us: f64,
    threaded_gate_us: f64,
    scalar_traj_per_s: f64,
    threaded_traj_per_s: f64,
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let args = Args::parse_lenient();
    let seed: u64 = args.get("seed", 42);
    let sizes: Vec<usize> = if test_mode {
        vec![8, 12, 16]
    } else {
        (8..=24).step_by(2).collect()
    };
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "scaling sweep: n = {:?} | {cores} core(s) | default workers = {}\n",
        sizes,
        ashn_sim::batch::default_workers()
    );

    let mut rows = Vec::new();
    println!(
        "{:>4} {:>6} {:>8} | {:>16} {:>16} | {:>14} {:>14}",
        "n",
        "gates",
        "plan_ops",
        "scalar µs/gate",
        "threaded µs/gate",
        "scalar traj/s",
        "thread traj/s"
    );
    for &n in &sizes {
        let mut rng = StdRng::seed_from_u64(seed ^ n as u64);
        let circuit = scaling_circuit(n, false, &mut rng);
        let noisy = scaling_circuit(n, true, &mut rng);
        let gates = circuit.gates().len();
        let plan = ExecPlan::pure(&circuit).expect("plans");
        let noisy_plan = ExecPlan::build(&noisy, &NoiseModel::NOISELESS).expect("plans");

        // Determinism gate before any timing: bit-identical output
        // probabilities at 1 / 2 / 8 workers wherever chunking engages.
        if n >= ChunkPolicy::MIN_PARALLEL_QUBITS {
            let probs = |workers: usize| {
                let mut engine =
                    SimEngine::new(n).with_chunk_policy(ChunkPolicy::with_workers(workers));
                engine.run_plan(&plan);
                engine
                    .probabilities()
                    .iter()
                    .map(|p| p.to_bits())
                    .collect::<Vec<u64>>()
            };
            let reference = probs(1);
            for workers in [2usize, 8] {
                assert!(
                    probs(workers) == reference,
                    "n={n}: probabilities diverged at {workers} workers"
                );
            }
        }

        let mut scalar = SimEngine::new(n).with_chunk_policy(ChunkPolicy::scalar());
        let mut threaded = SimEngine::new(n).with_chunk_policy(ChunkPolicy::auto());
        let scalar_ns = time_run(test_mode, || {
            black_box(scalar.run_plan(black_box(&plan)).amplitudes()[0]);
        });
        let threaded_ns = time_run(test_mode, || {
            black_box(threaded.run_plan(black_box(&plan)).amplitudes()[0]);
        });

        // Trajectory throughput: K noisy trajectories per timed call, K
        // scaled down with the register so big sizes stay tractable.
        let k = if test_mode {
            1
        } else if n <= 14 {
            16
        } else if n <= 18 {
            4
        } else {
            2
        };
        let mut rng_s = StdRng::seed_from_u64(seed);
        let scalar_traj_ns = time_run(test_mode, || {
            for _ in 0..k {
                black_box(
                    scalar
                        .run_plan_trajectory(black_box(&noisy_plan), &mut rng_s)
                        .amplitudes()[0],
                );
            }
        });
        let mut rng_t = StdRng::seed_from_u64(seed);
        let threaded_traj_ns = time_run(test_mode, || {
            for _ in 0..k {
                black_box(
                    threaded
                        .run_plan_trajectory(black_box(&noisy_plan), &mut rng_t)
                        .amplitudes()[0],
                );
            }
        });

        let row = Row {
            n,
            gates,
            plan_ops: plan.ops().len(),
            workers: ChunkPolicy::auto().effective_workers(n),
            scalar_gate_us: scalar_ns / gates as f64 / 1e3,
            threaded_gate_us: threaded_ns / gates as f64 / 1e3,
            scalar_traj_per_s: k as f64 / (scalar_traj_ns * 1e-9),
            threaded_traj_per_s: k as f64 / (threaded_traj_ns * 1e-9),
        };
        println!(
            "{:>4} {:>6} {:>8} | {:>16.3} {:>16.3} | {:>14.1} {:>14.1}",
            row.n,
            row.gates,
            row.plan_ops,
            row.scalar_gate_us,
            row.threaded_gate_us,
            row.scalar_traj_per_s,
            row.threaded_traj_per_s,
        );

        // The headline claim, asserted where the hardware can back it: on
        // ≥ 4 cores the chunked path must at least halve time-per-gate on
        // a 22-qubit register.
        if n == 22 && cores >= 4 && !test_mode {
            let speedup = row.scalar_gate_us / row.threaded_gate_us;
            assert!(
                speedup >= 2.0,
                "threaded path only {speedup:.2}x faster at n=22 on {cores} cores"
            );
        }
        rows.push(row);
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"n\": {}, \"gates\": {}, \"plan_ops\": {}, \"workers\": {}, \
                 \"scalar_us_per_gate\": {:.3}, \"threaded_us_per_gate\": {:.3}, \
                 \"scalar_traj_per_s\": {:.1}, \"threaded_traj_per_s\": {:.1} }}",
                r.n,
                r.gates,
                r.plan_ops,
                r.workers,
                r.scalar_gate_us,
                r.threaded_gate_us,
                r.scalar_traj_per_s,
                r.threaded_traj_per_s,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"scaling\",\n  \"config\": {{ \"seed\": {seed}, \"cores\": {cores}, \
         \"smoke\": {test_mode} }},\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    // Anchor at the workspace root whatever the invocation CWD. Smoke mode
    // times single iterations, so it must not clobber the committed
    // baseline.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");
    if test_mode {
        println!("\nsmoke mode: leaving {path} untouched");
    } else {
        match std::fs::write(path, &json) {
            Ok(()) => println!("\nbaseline written to {path}"),
            Err(e) => println!("\ncould not write {path}: {e}"),
        }
    }
}
