//! Differential suite for the stack-allocated pulse-compilation path:
//! `hamiltonian4`/`evolve4` against the Pauli-string `CMat` reference at
//! `1e-12`, plus EA end-to-end equivalence — the solver runs entirely on
//! `SMat` internally, and its pulses must land on random chamber targets
//! when verified through the independent dense path.

use ashn_core::hamiltonian::{evolve4, evolve4_real, hamiltonian, hamiltonian4, DriveParams};
use ashn_core::scheme::AshnScheme;
use ashn_gates::kak::reference::kak_cmat;
use ashn_gates::weyl::WeylPoint;
use ashn_math::expm::expm_minus_i_hermitian;
use ashn_math::CMat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::FRAC_PI_4;

const TOL: f64 = 1e-12;

fn random_drive(rng: &mut StdRng) -> DriveParams {
    DriveParams::new(
        2.0 * rng.gen::<f64>() - 1.0,
        2.0 * rng.gen::<f64>() - 1.0,
        2.0 * rng.gen::<f64>() - 1.0,
    )
}

#[test]
fn hamiltonian4_matches_pauli_string_reference() {
    let mut rng = StdRng::seed_from_u64(8001);
    for _ in 0..50 {
        let h = 2.0 * rng.gen::<f64>() - 1.0;
        let d = random_drive(&mut rng);
        let dense = hamiltonian(h, d);
        let stack = hamiltonian4(h, d);
        assert!(
            CMat::from(stack).dist(&dense) < TOL,
            "hamiltonian mismatch at h={h}, drive={d:?}"
        );
    }
}

#[test]
fn evolve4_matches_dense_expm_reference() {
    let mut rng = StdRng::seed_from_u64(8002);
    for _ in 0..50 {
        let h = 2.0 * rng.gen::<f64>() - 1.0;
        let d = random_drive(&mut rng);
        let tau = 0.1 + 2.9 * rng.gen::<f64>();
        let fast = evolve4(h, d, tau);
        let reference = expm_minus_i_hermitian(&hamiltonian(h, d), tau);
        assert!(
            CMat::from(fast).dist(&reference) < TOL,
            "evolve mismatch at h={h}, tau={tau}"
        );
        assert!(fast.is_unitary(1e-10));
    }
}

#[test]
fn evolve4_real_matches_dense_expm_reference() {
    // The real-Jacobi objective path must agree with the dense reference to
    // 1e-12 over random drives (including the driveless and single-drive
    // shapes the EA variants produce).
    let mut rng = StdRng::seed_from_u64(8005);
    for i in 0..60 {
        let h = 2.0 * rng.gen::<f64>() - 1.0;
        let d = match i % 4 {
            0 => random_drive(&mut rng),
            1 => DriveParams::new(0.0, rng.gen::<f64>(), rng.gen::<f64>()),
            2 => DriveParams::new(rng.gen::<f64>(), 0.0, rng.gen::<f64>()),
            _ => DriveParams::FREE,
        };
        let tau = 0.1 + 2.9 * rng.gen::<f64>();
        let fast = evolve4_real(h, d, tau);
        let reference = expm_minus_i_hermitian(&hamiltonian(h, d), tau);
        assert!(
            CMat::from(fast).dist(&reference) < TOL,
            "evolve4_real mismatch at h={h}, drive={d:?}, tau={tau}"
        );
        assert!(fast.is_unitary(1e-10));
    }
}

fn random_chamber_point(rng: &mut StdRng) -> WeylPoint {
    loop {
        let x = rng.gen::<f64>() * FRAC_PI_4;
        let y = rng.gen::<f64>() * FRAC_PI_4;
        let z = (2.0 * rng.gen::<f64>() - 1.0) * FRAC_PI_4;
        let p = WeylPoint::new(x, y, z);
        if p.in_chamber(0.0) && p.canonicalize().approx_eq(p, 1e-12) {
            return p;
        }
    }
}

#[test]
fn ea_pulses_verify_through_the_dense_reference_path() {
    // The EA solver (SMat objective, SMat verification) must produce pulses
    // whose evolution — recomputed densely and decomposed with the CMat
    // reference KAK — still lands on the target class. This closes the loop
    // on the whole fast path at once.
    let mut rng = StdRng::seed_from_u64(8003);
    let scheme = AshnScheme::new(0.0);
    for _ in 0..8 {
        let p = random_chamber_point(&mut rng);
        let pulse = scheme.compile(p).unwrap_or_else(|e| panic!("{e}"));
        let u_dense = expm_minus_i_hermitian(&hamiltonian(0.0, pulse.drive), pulse.tau);
        let got = kak_cmat(&u_dense).coords;
        assert!(
            got.gate_dist(p) < 1e-7,
            "dense re-verification failed: target {p}, got {got}"
        );
    }
}

#[test]
fn compiled_pulse_unitary_matches_dense_reference() {
    let mut rng = StdRng::seed_from_u64(8004);
    let scheme = AshnScheme::with_cutoff(0.2, 0.9);
    for _ in 0..5 {
        let p = random_chamber_point(&mut rng);
        let pulse = scheme.compile(p).unwrap_or_else(|e| panic!("{e}"));
        let dense = expm_minus_i_hermitian(&hamiltonian(0.2, pulse.drive), pulse.tau);
        assert!(pulse.unitary().dist(&dense) < TOL);
    }
}
