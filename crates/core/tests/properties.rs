//! Property-based tests: the AshN scheme spans the Weyl chamber at optimal
//! time (Theorems 2, 4–6) over randomized targets and ZZ ratios.

use ashn_core::avg_time::gate_time_with_cutoff;
use ashn_core::scheme::AshnScheme;
use ashn_gates::cost::optimal_time;
use ashn_gates::weyl::WeylPoint;
use proptest::prelude::*;
use std::f64::consts::FRAC_PI_4;

/// Strategy generating canonical Weyl-chamber points.
fn chamber_point() -> impl Strategy<Value = WeylPoint> {
    (0.0..1.0f64, 0.0..1.0f64, -1.0..1.0f64).prop_map(|(a, b, c)| {
        let x = a * FRAC_PI_4;
        let y = b * x;
        let z = c * y;
        WeylPoint::new(x, y, z).canonicalize()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn compiles_every_class_at_optimal_time_h0(p in chamber_point()) {
        let scheme = AshnScheme::new(0.0);
        let pulse = scheme.compile(p).expect("Theorem 4 guarantees coverage");
        prop_assert!((pulse.tau - optimal_time(0.0, p)).abs() < 1e-8,
            "τ = {} vs optimal {}", pulse.tau, optimal_time(0.0, p));
        prop_assert!(pulse.coordinate_error() < 1e-7);
        // Theorem 2 structure: at least one control is zero.
        let d = pulse.drive;
        prop_assert!((d.omega1 * d.omega2 * d.delta).abs() < 1e-12);
    }

    #[test]
    fn compiles_with_zz_at_optimal_time(p in chamber_point(), h in -0.85..0.85f64) {
        let scheme = AshnScheme::new(h);
        let pulse = scheme.compile(p).expect("Theorem 4 covers |h| ≤ g");
        prop_assert!((pulse.tau - optimal_time(h, p)).abs() < 1e-8);
        prop_assert!(pulse.coordinate_error() < 1e-7);
    }

    #[test]
    fn cutoff_bounds_drive_strength(p in chamber_point(), r in 0.3..1.4f64) {
        let scheme = AshnScheme::with_cutoff(0.0, r);
        let pulse = scheme.compile(p).expect("coverage with cutoff");
        // Eq. 4.4: strengths ≤ π/r + 1/2.
        prop_assert!(pulse.max_strength() <= scheme.strength_bound() + 1e-6,
            "strength {} vs bound {}", pulse.max_strength(), scheme.strength_bound());
        prop_assert!(pulse.coordinate_error() < 1e-7);
        // Gate time agrees with the §A.7.1 T function.
        prop_assert!((pulse.tau - gate_time_with_cutoff(p, r)).abs() < 1e-8);
    }

    #[test]
    fn gate_times_never_exceed_pi(p in chamber_point(), h in -0.9..0.9f64) {
        // §A.1.1: the whole chamber is spanned within time π.
        prop_assert!(optimal_time(h, p) <= std::f64::consts::PI + 1e-9);
    }
}
