//! Determinism suite for the parallel EA multistart (mirror of
//! `crates/sim/tests/determinism.rs` for the synthesis side): the compiled
//! drive parameters must be **bit-identical** for 1, 2, and 8 workers, both
//! through `ashn_ea_multistart` directly and through the full
//! `AshnScheme::compile` dispatch.

use ashn_core::ea::{ashn_ea_multistart, EaVariant};
use ashn_core::hamiltonian::DriveParams;
use ashn_core::scheme::AshnScheme;
use ashn_gates::weyl::WeylPoint;
use std::f64::consts::FRAC_PI_4;

fn drive_bits(d: DriveParams) -> (u64, u64, u64) {
    (d.omega1.to_bits(), d.omega2.to_bits(), d.delta.to_bits())
}

#[test]
fn ea_multistart_is_bit_identical_across_worker_counts() {
    let targets = [
        (0.0, EaVariant::Plus, 0.5, 0.45, 0.2),
        (0.0, EaVariant::Minus, 0.6, 0.55, -0.3),
        (0.3, EaVariant::Plus, 0.5, 0.45, 0.3),
        (0.0, EaVariant::Plus, FRAC_PI_4, FRAC_PI_4, 0.1),
    ];
    for (h, variant, x, y, z) in targets {
        let (tau_ref, drive_ref) = ashn_ea_multistart(h, variant, x, y, z, 1)
            .unwrap_or_else(|e| panic!("reference solve failed: {e}"));
        for workers in [2, 8] {
            let (tau, drive) = ashn_ea_multistart(h, variant, x, y, z, workers)
                .unwrap_or_else(|e| panic!("{workers}-worker solve failed: {e}"));
            assert_eq!(
                tau.to_bits(),
                tau_ref.to_bits(),
                "tau differs at {workers} workers for ({x},{y},{z})"
            );
            assert_eq!(
                drive_bits(drive),
                drive_bits(drive_ref),
                "drive differs at {workers} workers for ({x},{y},{z})"
            );
        }
    }
}

#[test]
fn scheme_compile_is_bit_identical_across_worker_counts() {
    // Targets picked on EA faces so the multistart actually runs (ND is
    // closed-form and trivially deterministic).
    let targets = [
        WeylPoint::new(0.5, 0.45, 0.2),
        WeylPoint::new(0.6, 0.55, -0.3),
        WeylPoint::new(FRAC_PI_4, FRAC_PI_4, FRAC_PI_4),
    ];
    for p in targets {
        let reference = AshnScheme::new(0.0)
            .with_workers(1)
            .compile(p)
            .unwrap_or_else(|e| panic!("{e}"));
        for workers in [2, 8] {
            let got = AshnScheme::new(0.0)
                .with_workers(workers)
                .compile(p)
                .unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(got.scheme, reference.scheme, "sub-scheme flipped at {p}");
            assert_eq!(got.tau.to_bits(), reference.tau.to_bits());
            assert_eq!(drive_bits(got.drive), drive_bits(reference.drive));
        }
    }
}

#[test]
fn zero_workers_means_hardware_default_and_same_result() {
    let (tau_ref, drive_ref) = ashn_ea_multistart(0.0, EaVariant::Plus, 0.5, 0.45, 0.2, 1).unwrap();
    let (tau, drive) = ashn_ea_multistart(0.0, EaVariant::Plus, 0.5, 0.45, 0.2, 0).unwrap();
    assert_eq!(tau.to_bits(), tau_ref.to_bits());
    assert_eq!(drive_bits(drive), drive_bits(drive_ref));
}
