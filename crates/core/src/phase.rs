//! Free single-qubit Z gates from drive phases (paper §4.4).
//!
//! The full rotating-frame Hamiltonian with drive phases `ϕ₁, ϕ₂`
//! (paper Eq. 4.1) satisfies
//!
//! ```text
//! H(ϕ₁, ϕ₂) = (Z_{−ϕ̄}⊗Z_{−ϕ̄}) · H(ϕ′, −ϕ′) · (Z_{ϕ̄}⊗Z_{ϕ̄})
//! ```
//!
//! with `ϕ̄ = (ϕ₁+ϕ₂)/2`, `ϕ′ = (ϕ₁−ϕ₂)/2`: tuning the *common* drive phase
//! conjugates the evolution by `Z` rotations — virtual Z gates with zero
//! duration and zero error, independent of the pulse envelope.

use crate::hamiltonian::DriveParams;
use ashn_gates::pauli::{pauli_string, xx, yy, zz, Pauli};
use ashn_math::expm::expm_minus_i_hermitian;
use ashn_math::{c, CMat, Complex};

/// The AshN Hamiltonian with explicit drive phases (paper Eq. 4.1):
/// the drives couple as `cos ϕᵢ·X − sin ϕᵢ·Y` on each qubit.
///
/// With `ϕ₁ = ϕ₂ = 0` this reduces to [`crate::hamiltonian::hamiltonian`].
pub fn hamiltonian_with_phases(h_ratio: f64, drive: DriveParams, phi1: f64, phi2: f64) -> CMat {
    let (a1, a2) = drive.amplitudes();
    let xi = pauli_string(&[Pauli::X, Pauli::I]);
    let ix = pauli_string(&[Pauli::I, Pauli::X]);
    let yi = pauli_string(&[Pauli::Y, Pauli::I]);
    let iy = pauli_string(&[Pauli::I, Pauli::Y]);
    let zi_iz = pauli_string(&[Pauli::Z, Pauli::I]) + pauli_string(&[Pauli::I, Pauli::Z]);
    (xx() + yy()).scale(c(0.5, 0.0))
        + zz().scale(c(0.5 * h_ratio, 0.0))
        + (xi.scale(c(phi1.cos(), 0.0)) - yi.scale(c(phi1.sin(), 0.0))).scale(c(-a1 / 2.0, 0.0))
        + (ix.scale(c(phi2.cos(), 0.0)) - iy.scale(c(phi2.sin(), 0.0))).scale(c(-a2 / 2.0, 0.0))
        + zi_iz.scale(c(drive.delta, 0.0))
}

/// `Z_φ ⊗ Z_φ` with `Z_φ = diag(1, e^{iφ})` — the frame-change operator of
/// §4.4.
pub fn zphase_pair(phi: f64) -> CMat {
    let z = CMat::diag(&[Complex::ONE, Complex::cis(phi)]);
    z.kron(&z)
}

/// Evolution under the phased Hamiltonian.
pub fn evolve_with_phases(
    h_ratio: f64,
    drive: DriveParams,
    phi1: f64,
    phi2: f64,
    tau: f64,
) -> CMat {
    expm_minus_i_hermitian(&hamiltonian_with_phases(h_ratio, drive, phi1, phi2), tau)
}

/// The virtual-Z dressed gate predicted by §4.4: conjugating the
/// `(ϕ′, −ϕ′)` evolution by `Z_{ϕ̄}` frames.
pub fn virtual_z_prediction(
    h_ratio: f64,
    drive: DriveParams,
    phi1: f64,
    phi2: f64,
    tau: f64,
) -> CMat {
    let mean = (phi1 + phi2) / 2.0;
    let diff = (phi1 - phi2) / 2.0;
    let inner = evolve_with_phases(h_ratio, drive, diff, -diff, tau);
    zphase_pair(-mean).matmul(&inner).matmul(&zphase_pair(mean))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_gates::kak::weyl_coordinates;

    #[test]
    fn zero_phase_matches_base_hamiltonian() {
        let d = DriveParams::new(0.7, 0.3, -0.2);
        let a = hamiltonian_with_phases(0.2, d, 0.0, 0.0);
        let b = crate::hamiltonian::hamiltonian(0.2, d);
        assert!(a.dist(&b) < 1e-13);
    }

    #[test]
    fn section_4_4_conjugation_identity() {
        // H(ϕ₁,ϕ₂) = (Z_{−ϕ̄}⊗Z_{−ϕ̄})·H(ϕ′,−ϕ′)·(Z_{ϕ̄}⊗Z_{ϕ̄}).
        let d = DriveParams::new(0.8, 0.25, 0.4);
        for (p1, p2) in [(0.3, -0.7), (1.2, 0.5), (0.0, 2.0)] {
            let mean = (p1 + p2) / 2.0;
            let diff = (p1 - p2) / 2.0;
            let lhs = hamiltonian_with_phases(0.3, d, p1, p2);
            let inner = hamiltonian_with_phases(0.3, d, diff, -diff);
            let rhs = zphase_pair(-mean).matmul(&inner).matmul(&zphase_pair(mean));
            assert!(lhs.dist(&rhs) < 1e-12, "identity fails at ({p1},{p2})");
        }
    }

    #[test]
    fn virtual_z_prediction_matches_direct_evolution() {
        let d = DriveParams::new(0.9, 0.0, 0.2);
        for (p1, p2) in [(0.4, 0.4), (0.9, -0.3)] {
            let direct = evolve_with_phases(0.1, d, p1, p2, 1.3);
            let predicted = virtual_z_prediction(0.1, d, p1, p2, 1.3);
            assert!(direct.dist(&predicted) < 1e-11);
        }
    }

    #[test]
    fn common_phase_leaves_weyl_class_unchanged() {
        // The common phase is a pure frame change: free Z gates, same class.
        let d = DriveParams::new(0.6, 0.2, 0.0);
        let base = weyl_coordinates(&evolve_with_phases(0.0, d, 0.0, 0.0, 1.1));
        for common in [0.5, 1.3, 2.9] {
            let shifted = weyl_coordinates(&evolve_with_phases(0.0, d, common, common, 1.1));
            assert!(
                shifted.gate_dist(base) < 1e-9,
                "class moved under common phase {common}"
            );
        }
    }

    #[test]
    fn differential_phase_changes_the_gate_but_not_through_frames() {
        // A differential phase is NOT a virtual Z — it changes the physical
        // gate (still within SU(4), compiled by AshN as usual).
        let d = DriveParams::new(0.6, 0.2, 0.0);
        let a = evolve_with_phases(0.0, d, 0.3, -0.3, 1.1);
        let b = evolve_with_phases(0.0, d, 0.0, 0.0, 1.1);
        assert!(a.dist(&b) > 1e-3);
    }
}
