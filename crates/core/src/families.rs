//! Continuous gate families subsumed by AshN (paper §1): the fSim family
//! (Foxen et al. [2]) and the XY interaction family (Abrams et al. [4]) are
//! strict subsets of the AshN instruction set; this module compiles them and
//! quantifies the claim.

use crate::scheme::{AshnPulse, AshnScheme, CompileError};
use ashn_gates::kak::weyl_coordinates;
use ashn_gates::two::{fsim, xy};
use ashn_gates::weyl::WeylPoint;

/// Weyl coordinates of `fSim(θ, φ)`.
pub fn fsim_coords(theta: f64, phi: f64) -> WeylPoint {
    weyl_coordinates(&fsim(theta, phi))
}

/// Weyl coordinates of `XY(β)`.
pub fn xy_coords(beta: f64) -> WeylPoint {
    weyl_coordinates(&xy(beta))
}

/// Compiles `fSim(θ, φ)` into a single AshN pulse.
///
/// # Errors
///
/// Propagates [`CompileError`] (should not occur: AshN spans `SU(4)`).
pub fn fsim_pulse(scheme: &AshnScheme, theta: f64, phi: f64) -> Result<AshnPulse, CompileError> {
    scheme.compile(fsim_coords(theta, phi))
}

/// Compiles `XY(β)` into a single AshN pulse.
///
/// # Errors
///
/// Propagates [`CompileError`].
pub fn xy_pulse(scheme: &AshnScheme, beta: f64) -> Result<AshnPulse, CompileError> {
    scheme.compile(xy_coords(beta))
}

/// A gate *outside* both families but inside AshN: any class with
/// `|z| > 0` and `x ≠ y` is neither excitation-number-conserving (fSim) nor
/// an XY point. Returns such a witness.
pub fn beyond_fsim_witness() -> WeylPoint {
    WeylPoint::new(0.6, 0.3, 0.15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

    #[test]
    fn xy_family_is_the_x_equals_y_z_zero_edge() {
        for k in 1..8 {
            let beta = k as f64 * 0.35;
            let p = xy_coords(beta);
            assert!((p.x - p.y).abs() < 1e-9, "XY family has x = y, got {p}");
            assert!(p.z.abs() < 1e-9);
        }
    }

    #[test]
    fn fsim_special_points() {
        // fSim(π/2, 0) ~ iSWAP; fSim(0, φ) ~ CPhase family (x = |φ|/4, y=z).
        assert!(fsim_coords(FRAC_PI_2, 0.0).gate_dist(WeylPoint::ISWAP) < 1e-8);
        let cphase = fsim_coords(0.0, std::f64::consts::PI);
        assert!(
            cphase.gate_dist(WeylPoint::CNOT) < 1e-8,
            "CZ point: {cphase}"
        );
    }

    #[test]
    fn whole_xy_family_compiles_at_optimal_time() {
        let scheme = AshnScheme::new(0.0);
        for k in 1..10 {
            let beta = k as f64 * 2.0 * FRAC_PI_2 / 10.0;
            let pulse = xy_pulse(&scheme, beta).expect("compiles");
            assert!(pulse.coordinate_error() < 1e-7);
            // XY(β) sits on the x = y, z = 0 ray: optimal time x + y = 2x.
            let p = xy_coords(beta);
            assert!((pulse.tau - 2.0 * p.x).abs() < 1e-8);
        }
    }

    #[test]
    fn fsim_grid_compiles() {
        let scheme = AshnScheme::new(0.0);
        for i in 0..4 {
            for j in 0..4 {
                let theta = 0.2 + i as f64 * 0.35;
                let phi = -1.0 + j as f64 * 0.6;
                let pulse = fsim_pulse(&scheme, theta, phi).expect("compiles");
                assert!(
                    pulse.coordinate_error() < 1e-7,
                    "fSim({theta},{phi}): err {}",
                    pulse.coordinate_error()
                );
            }
        }
    }

    #[test]
    fn fsim_family_is_a_measure_zero_slice() {
        // fSim(θ,φ) classes satisfy y = x or |z| = y (number-conserving
        // structure); the witness violates both, yet AshN compiles it.
        let w = beyond_fsim_witness();
        assert!(w.in_chamber(1e-9));
        assert!((w.x - w.y).abs() > 0.05 && (w.z.abs() - w.y).abs() > 0.05);
        let scheme = AshnScheme::new(0.0);
        let pulse = scheme.compile(w).expect("AshN goes beyond fSim");
        assert!(pulse.coordinate_error() < 1e-7);
        // And a dense θ,φ sweep never lands on the witness class.
        for i in 0..12 {
            for j in 0..12 {
                let p = fsim_coords(i as f64 * 0.26, j as f64 * 0.52 - 3.0);
                assert!(p.gate_dist(w) > 1e-3);
            }
        }
    }

    #[test]
    fn sqisw_is_the_quarter_xy_point() {
        assert!(xy_coords(-FRAC_PI_2).gate_dist(WeylPoint::SQISW) < 1e-8);
        let _ = FRAC_PI_4;
    }
}
