//! Special gate classes (paper Table 1 and §6.4): `[CNOT]`, `[SWAP]`, `[B]`,
//! with closed-form pulse parameters and the exact produced gates.

use crate::hamiltonian::DriveParams;
use crate::scheme::{AshnPulse, SubScheme};
use ashn_gates::pauli::zz;
use ashn_gates::two::{molmer_sorensen, swap};
use ashn_gates::weyl::WeylPoint;
use ashn_math::CMat;
use std::f64::consts::{FRAC_PI_2, PI};

/// Closed-form `[CNOT]`-class pulse for `ZZ` ratio `h̃` (paper §6.4):
///
/// ```text
/// τ = π/2,  A₁ = −(√(16−(1−h̃)²) + √(16−(1+h̃)²))/2,
///           A₂ = −(√(16−(1−h̃)²) − √(16−(1+h̃)²))/2,  δ = 0
/// ```
///
/// At `h̃ = 0` this reduces to Table 1: `A₁ = −√15·g`, `A₂ = 0`.
///
/// # Panics
///
/// Panics when `|h̃| > 1`.
pub fn cnot_pulse(h_ratio: f64) -> AshnPulse {
    assert!(h_ratio.abs() <= 1.0);
    let sa = (16.0 - (1.0 - h_ratio).powi(2)).sqrt();
    let sb = (16.0 - (1.0 + h_ratio).powi(2)).sqrt();
    let a1 = -(sa + sb) / 2.0;
    let a2 = -(sa - sb) / 2.0;
    AshnPulse {
        target: WeylPoint::CNOT,
        h_ratio,
        tau: FRAC_PI_2,
        drive: DriveParams::from_amplitudes(a1, a2, 0.0),
        scheme: SubScheme::Nd,
        mirrored: false,
    }
}

/// `[SWAP]`-class pulse at `h̃ = 0` with the exact Table 1 parameters:
/// `τ = 3π/4`, `A₁ = −A₂` with `|A| ≈ 2.108·g`, `2δ ≈ −1.528·g`.
///
/// The produced gate is exactly `ZZ·SWAP` up to a global phase (paper §6.4),
/// so the leftover `Z⊗Z` merges into the phase corrections that are needed
/// anyway.
pub fn swap_pulse() -> AshnPulse {
    AshnPulse {
        target: WeylPoint::SWAP,
        h_ratio: 0.0,
        tau: 3.0 * PI / 4.0,
        drive: DriveParams::new(0.0, SWAP_OMEGA, SWAP_DELTA),
        scheme: SubScheme::EaPlus,
        mirrored: false,
    }
}

/// Drive amplitude `Ω₂ = √10/3` of the `[SWAP]` pulse
/// (`|A₁| = |A₂| = 2Ω₂ ≈ 2.108`, Table 1). The closed form was identified
/// from the converged numerical solution to 9 digits.
pub const SWAP_OMEGA: f64 = 1.0540925533894598; // √10 / 3
/// Detuning `δ = −√21/6` of the `[SWAP]` pulse (`2δ ≈ −1.528`, Table 1).
pub const SWAP_DELTA: f64 = -0.7637626158259734; // −√21 / 6

/// `[B]`-gate pulse at `h̃ = 0` (paper Table 1): `τ = π/2`,
/// `A₁ ≈ −2.238·g`, `A₂ = 0` — i.e. `Ω₁ = Ω₂ ≈ 0.5595·g`, no detuning.
pub fn b_pulse() -> AshnPulse {
    let (tau, drive) = crate::nd::ashn_nd(0.0, WeylPoint::B.x, WeylPoint::B.y, WeylPoint::B.z)
        .expect("B lies in the ND polygon");
    AshnPulse {
        target: WeylPoint::B,
        h_ratio: 0.0,
        tau,
        drive,
        scheme: SubScheme::Nd,
        mirrored: false,
    }
}

/// The exact gate the `[CNOT]` pulse produces: the Mølmer–Sørensen rotation
/// `XX(π/2)` (paper §6.4).
pub fn cnot_pulse_exact_gate() -> CMat {
    molmer_sorensen()
}

/// The exact gate the `[SWAP]` pulse produces: `ZZ·SWAP` (paper §6.4).
pub fn swap_pulse_exact_gate() -> CMat {
    zz().matmul(&swap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::entanglement_fidelity;
    use ashn_gates::kak::weyl_coordinates;

    #[test]
    fn table1_cnot_parameters() {
        let p = cnot_pulse(0.0);
        let (a1, a2, two_delta) = p.physical_amplitudes(1.0);
        assert!((p.tau - FRAC_PI_2).abs() < 1e-12);
        assert!((a1 + 15f64.sqrt()).abs() < 1e-12, "A₁ = {a1}");
        assert!(a2.abs() < 1e-12);
        assert!(two_delta.abs() < 1e-12);
        assert!(p.coordinate_error() < 1e-8);
    }

    #[test]
    fn cnot_pulse_produces_molmer_sorensen_exactly() {
        let u = cnot_pulse(0.0).unitary();
        let f = entanglement_fidelity(&u, &cnot_pulse_exact_gate());
        assert!(1.0 - f < 1e-10, "F = {f}");
    }

    #[test]
    fn cnot_pulse_immune_to_zz() {
        for h in [-0.9, -0.4, 0.0, 0.3, 0.7, 1.0] {
            let p = cnot_pulse(h);
            assert!(
                p.coordinate_error() < 1e-8,
                "h̃={h}: error {}",
                p.coordinate_error()
            );
        }
    }

    #[test]
    fn table1_swap_parameters() {
        let p = swap_pulse();
        let (a1, a2, two_delta) = p.physical_amplitudes(1.0);
        assert!((p.tau - 3.0 * PI / 4.0).abs() < 1e-12);
        // Table 1 decimals (4 significant figures).
        assert!((a1 + 2.108).abs() < 5e-4, "A₁ = {a1}");
        assert!((a2 - 2.108).abs() < 5e-4, "A₂ = {a2}");
        assert!((two_delta + 1.528).abs() < 5e-4, "2δ = {two_delta}");
        assert!(
            p.coordinate_error() < 1e-7,
            "error {}",
            p.coordinate_error()
        );
    }

    #[test]
    fn swap_pulse_produces_zz_swap_exactly() {
        let u = swap_pulse().unitary();
        let f = entanglement_fidelity(&u, &swap_pulse_exact_gate());
        assert!(1.0 - f < 1e-7, "F = {f}");
    }

    #[test]
    fn table1_b_parameters() {
        let p = b_pulse();
        let (a1, a2, two_delta) = p.physical_amplitudes(1.0);
        assert!((p.tau - FRAC_PI_2).abs() < 1e-12);
        assert!((a1 + 2.238).abs() < 5e-4, "A₁ = {a1}");
        assert!(a2.abs() < 1e-9, "A₂ = {a2}");
        assert!(two_delta.abs() < 1e-12);
        let got = weyl_coordinates(&p.unitary());
        assert!(got.gate_dist(WeylPoint::B) < 1e-8);
    }

    #[test]
    fn b_gate_doubling_reaches_far_classes() {
        // The B gate's defining property (paper §6.4): two applications,
        // with suitable locals, reach the whole chamber — in particular both
        // the identity and SWAP. Verify B·B ~ iSWAP-like reachability by
        // checking B·B and B·(X⊗I)·B hit distinct far-apart classes.
        let b = crate::classes::b_pulse().unitary();
        let p1 = weyl_coordinates(&b.matmul(&b));
        let x = ashn_gates::pauli::Pauli::X.matrix();
        let xi = x.kron(&CMat::identity(2));
        let p2 = weyl_coordinates(&b.matmul(&xi).matmul(&b));
        assert!(
            p1.dist(p2) > 0.3,
            "B-sandwich classes too close: {p1} vs {p2}"
        );
    }
}
