//! The AshN-EA± (equal amplitude) sub-schemes (paper Algorithms 4–5,
//! derivation in §A.4–A.6).
//!
//! EA+ covers the chamber face where `x+y+z` is the binding time constraint;
//! EA− covers the `x+y−z` face. With the `exp(−iHτ)` convention used in this
//! workspace (a global `z ↦ −z` mirror of the paper's statements), the
//! `x+y+z` face is driven by the **antisymmetric** amplitude `Ω₂` and the
//! `x+y−z` face by the **symmetric** amplitude `Ω₁` — verified empirically
//! by the round-trip tests, which fail for the opposite assignment.
//!
//! The published closed-form inversion for `(α, β)` (Algorithm 4) carries
//! transcription ambiguities, so we solve the two-parameter inversion
//! numerically instead: the drive pair `(Ω, δ)` is found by matching the
//! Makhlin invariants of `exp(−iHτ)` to the target class — a smooth
//! objective — seeded by the `(α, β) ↦ (Ω, δ)` spectral parameterisation of
//! §A.4 and refined with Nelder–Mead. Every solution is verified against the
//! requested Weyl coordinates before being returned.
//!
//! Two performance properties of this module matter downstream:
//!
//! - the objective runs entirely on stack-allocated [`Mat4`]s
//!   ([`crate::hamiltonian::evolve4`] + `makhlin4`), so the thousands of
//!   evaluations per solve never touch the heap;
//! - the multistart is fanned over scoped worker threads
//!   ([`ashn_ea_multistart`]) with a stable `(error, seed-index)` winner
//!   rule, so the result is **bit-identical for any worker count** —
//!   including the serial `workers = 1` path.

use crate::hamiltonian::{evolve4, evolve4_real, DriveParams};
use crate::par::parallel_map;
use ashn_gates::invariants::{makhlin4, makhlin_from_coords};
use ashn_gates::kak::weyl_coordinates4;
use ashn_gates::weyl::WeylPoint;
use ashn_math::neldermead::{nelder_mead, NmOptions};
use std::f64::consts::PI;

/// Error from the EA solver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EaError {
    /// The numerical search did not converge to the target class.
    NoConvergence {
        /// Best invariant distance achieved.
        best: f64,
    },
    /// The computed evolution time is not positive (identity-class target).
    NonPositiveTime,
    /// The per-request deadline expired before the search finished.
    DeadlineExceeded,
}

impl std::fmt::Display for EaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EaError::NoConvergence { best } => {
                write!(f, "EA search did not converge (best distance {best:.3e})")
            }
            EaError::NonPositiveTime => write!(f, "evolution time must be positive"),
            EaError::DeadlineExceeded => {
                write!(f, "EA search deadline exceeded before convergence")
            }
        }
    }
}

impl std::error::Error for EaError {}

/// Which equal-amplitude variant to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EaVariant {
    /// Covers the `x+y+z` face (antisymmetric drive `Ω₂` in our convention).
    Plus,
    /// Covers the `x+y−z` face (symmetric drive `Ω₁` in our convention).
    Minus,
}

/// Evolution time used by the EA variant for a target class
/// (units of `1/g`); this is the corresponding face of the optimal-time
/// polytope.
pub fn ea_time(h_ratio: f64, variant: EaVariant, x: f64, y: f64, z: f64) -> f64 {
    match variant {
        EaVariant::Plus => 2.0 * (x + y + z) / (2.0 - h_ratio),
        EaVariant::Minus => 2.0 * (x + y - z) / (2.0 + h_ratio),
    }
}

fn drive_of(variant: EaVariant, omega: f64, delta: f64) -> DriveParams {
    match variant {
        EaVariant::Plus => DriveParams::new(0.0, omega, delta),
        EaVariant::Minus => DriveParams::new(omega, 0.0, delta),
    }
}

/// Seeds from the spectral `(α, β)` parameterisation of §A.4:
/// `Ω = √((1−α)β(1+α+β))/2`, `δ = √(α(α+β)(1+β))/2`.
fn seeds(tau: f64) -> Vec<[f64; 2]> {
    let beta_max = 2.0 * PI / tau;
    let mut out = Vec::new();
    let n = 9;
    for i in 0..=n {
        let alpha = i as f64 / n as f64;
        for j in 0..=n {
            let beta = beta_max * j as f64 / n as f64;
            let omega = ((1.0 - alpha) * beta * (1.0 + alpha + beta))
                .max(0.0)
                .sqrt()
                / 2.0;
            let delta = (alpha * (alpha + beta) * (1.0 + beta)).max(0.0).sqrt() / 2.0;
            out.push([omega, delta]);
        }
    }
    out
}

/// What one refinement attempt produced.
enum Attempt {
    /// A polished drive whose evolution lands on the class within `1e-7`.
    Converged(DriveParams),
    /// The closest the attempt got (coordinate distance).
    Missed(f64),
}

/// Solves the EA sub-scheme serially: finds `(τ, Ω, δ)` whose evolution
/// realizes the class `(x, y, z)` (canonical coordinates) in the
/// face-optimal time. Equivalent to [`ashn_ea_multistart`] with one worker.
///
/// # Errors
///
/// [`EaError::NoConvergence`] when no `(Ω, δ)` reproduces the target to
/// `1e-7` in Weyl coordinates — i.e. the target does not lie on this
/// variant's face; [`EaError::NonPositiveTime`] for the identity class.
pub fn ashn_ea(
    h_ratio: f64,
    variant: EaVariant,
    x: f64,
    y: f64,
    z: f64,
) -> Result<(f64, DriveParams), EaError> {
    ashn_ea_multistart(h_ratio, variant, x, y, z, 1)
}

/// [`ashn_ea`] with the multistart fanned over `workers` scoped threads
/// (`0` = one per hardware thread).
///
/// The seed grid is ranked in parallel, then refinement attempts run in
/// waves of `workers`; the winner is the **lowest-indexed** converged
/// attempt, exactly the one the serial scan would return. Results are
/// therefore bit-identical for every worker count.
///
/// # Errors
///
/// Same as [`ashn_ea`].
pub fn ashn_ea_multistart(
    h_ratio: f64,
    variant: EaVariant,
    x: f64,
    y: f64,
    z: f64,
    workers: usize,
) -> Result<(f64, DriveParams), EaError> {
    ashn_ea_search(
        h_ratio,
        variant,
        x,
        y,
        z,
        &EaSearch {
            workers,
            ..EaSearch::default()
        },
    )
}

/// Search-effort configuration for [`ashn_ea_search`].
///
/// The default (`extra_rounds = 0`, no deadline) reproduces
/// [`ashn_ea_multistart`] bit for bit; retry layers above raise
/// `extra_rounds` to widen the multistart with deterministically jittered
/// seeds, and set `deadline` to bound the wall-clock budget.
#[derive(Clone, Copy, Debug, Default)]
pub struct EaSearch {
    /// Worker threads for the multistart fan-out (`0` = hardware default).
    pub workers: usize,
    /// Escalation rounds appended after the base attempt list misses. Each
    /// round adds progressively more, wider-stepped attempts around the
    /// best-ranked seeds.
    pub extra_rounds: u32,
    /// Seed for the deterministic jitter applied by the escalation rounds
    /// (retry layers derive it from the request, so retries explore new
    /// starts while remaining replayable).
    pub jitter_seed: u64,
    /// Absolute wall-clock deadline, checked between attempt waves.
    pub deadline: Option<std::time::Instant>,
}

/// SplitMix64 finalizer driving the escalation-round jitter.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from a 64-bit word (top 53 bits).
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// [`ashn_ea_multistart`] generalized with escalation rounds and a
/// wall-clock deadline (see [`EaSearch`]). Carries the
/// `core::ea::convergence` failpoint, which fails the search as
/// [`EaError::NoConvergence`] before any attempt runs.
///
/// # Errors
///
/// Same as [`ashn_ea`], plus [`EaError::DeadlineExceeded`] when
/// `search.deadline` expires between waves.
pub fn ashn_ea_search(
    h_ratio: f64,
    variant: EaVariant,
    x: f64,
    y: f64,
    z: f64,
    search: &EaSearch,
) -> Result<(f64, DriveParams), EaError> {
    let workers = search.workers;
    let telemetry = ashn_telemetry::current();
    let _span = telemetry.span("core.ea.search");
    telemetry.add("core.ea.searches", 1);
    let tau = ea_time(h_ratio, variant, x, y, z);
    if tau <= 1e-12 {
        return Err(EaError::NonPositiveTime);
    }
    if ashn_math::failpoint!("core::ea::convergence") {
        return Err(EaError::NoConvergence { best: f64::NAN });
    }
    let target = WeylPoint::new(x, y, z).canonicalize();
    let (g1t, g2t) = makhlin_from_coords(target.x, target.y, target.z);
    let objective = |p: &[f64]| {
        let u = evolve4_real(h_ratio, drive_of(variant, p[0].abs(), p[1]), tau);
        let (g1, g2) = makhlin4(&u);
        (g1 - g1t).norm_sqr() + (g2 - g2t).powi(2)
    };

    // Rank seeds by objective (fanned over the workers; the ranking sort is
    // stable, so ties resolve by seed index regardless of scheduling).
    let grid = seeds(tau);
    let scores = parallel_map(workers, grid.len(), |i| objective(&grid[i]));
    let mut ranked: Vec<([f64; 2], f64)> = grid.into_iter().zip(scores).collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

    // Refine the best-ranked seeds; on a miss, retry with jittered copies
    // of the leaders and larger simplex steps (rare targets near face
    // boundaries need the wider exploration).
    let jittered: Vec<[f64; 2]> = ranked
        .iter()
        .take(4)
        .flat_map(|(s, _)| {
            [
                [s[0] * 1.17 + 0.05, s[1] * 0.83 - 0.04],
                [s[0] * 0.71 + 0.21, s[1] * 1.29 + 0.11],
            ]
        })
        .collect();
    let attempts: Vec<([f64; 2], f64)> = ranked
        .iter()
        .take(12)
        .map(|(s, _)| (*s, 0.15))
        .chain(jittered.into_iter().map(|s| (s, 0.45)))
        .collect();

    let run_attempt = |&(seed, step): &([f64; 2], f64)| -> Attempt {
        let res = nelder_mead(
            objective,
            &[seed[0], seed[1]],
            &NmOptions {
                max_evals: 3000,
                f_tol: 1e-28,
                initial_step: step,
                // The invariant objective is zero at the solution, so a best
                // value of 1e-22 is already far inside the polish basin —
                // and attempts stuck at a useless nonzero local minimum
                // collapse in O(100) evaluations instead of exhausting the
                // budget against the floating-point noise floor.
                f_target: 1e-22,
                f_tol_rel: 1e-9,
            },
        );
        let drive = drive_of(variant, res.x[0].abs(), res.x[1]);
        let coarse = weyl_coordinates4(&evolve4(h_ratio, drive, tau)).gate_dist(target);
        if coarse < 1e-4 {
            // Close enough to polish; accept only if the polished pulse
            // really lands on the class.
            let polished = polish(h_ratio, variant, tau, &target, drive);
            let dist = weyl_coordinates4(&evolve4(h_ratio, polished, tau)).gate_dist(target);
            if dist < 1e-7 {
                Attempt::Converged(polished)
            } else {
                Attempt::Missed(dist)
            }
        } else {
            Attempt::Missed(coarse)
        }
    };

    // Waves of `workers` attempts: within a wave all attempts run
    // concurrently, and the scan below always returns the lowest-indexed
    // success — the same winner the serial early-exit loop picks. The
    // deadline is only consulted between waves, so a `None` deadline (the
    // default, and every pre-existing caller) never reads the clock and
    // results stay a pure function of the inputs.
    let wave = if workers == 0 {
        crate::par::default_workers()
    } else {
        workers
    }
    .max(1);
    let expired = || {
        search
            .deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
    };
    let mut best_dist = f64::INFINITY;
    let run_round = |attempts: &[([f64; 2], f64)],
                     best_dist: &mut f64|
     -> Option<Result<(f64, DriveParams), EaError>> {
        for chunk in attempts.chunks(wave) {
            if expired() {
                return Some(Err(EaError::DeadlineExceeded));
            }
            // Bulk per-wave accounting: one add per wave, never per attempt.
            telemetry.add("core.ea.waves", 1);
            telemetry.add("core.ea.attempts", chunk.len() as u64);
            let outcomes = parallel_map(wave, chunk.len(), |i| run_attempt(&chunk[i]));
            for outcome in outcomes {
                match outcome {
                    Attempt::Converged(drive) => return Some(Ok((tau, drive))),
                    Attempt::Missed(dist) => *best_dist = best_dist.min(dist),
                }
            }
        }
        None
    };
    if let Some(result) = run_round(&attempts, &mut best_dist) {
        return result;
    }

    // Escalation rounds: progressively more and wider-stepped attempts,
    // jittered deterministically around the best-ranked seeds so retries
    // explore genuinely new starts yet replay exactly.
    for round in 1..=search.extra_rounds {
        telemetry.add("core.ea.escalation_rounds", 1);
        let mut state = mix64(search.jitter_seed ^ round as u64);
        let mut draw = || {
            state = mix64(state);
            unit_f64(state)
        };
        let pool = ranked.len().min(6);
        let count = 6 + 4 * round as usize;
        let step = 0.45 * (1.0 + 0.5 * round as f64);
        let extra: Vec<([f64; 2], f64)> = (0..count)
            .map(|k| {
                let base = ranked[k % pool].0;
                let omega = base[0] * (0.4 + 1.6 * draw()) + 0.4 * (draw() - 0.5);
                let delta = base[1] * (0.4 + 1.6 * draw()) + 0.4 * (draw() - 0.5);
                ([omega, delta], step)
            })
            .collect();
        if let Some(result) = run_round(&extra, &mut best_dist) {
            return result;
        }
    }
    Err(EaError::NoConvergence { best: best_dist })
}

/// One extra refinement pass at tighter tolerance (helps push coordinate
/// error from ~1e-8 to ~1e-10 for downstream exact-gate checks).
fn polish(
    h_ratio: f64,
    variant: EaVariant,
    tau: f64,
    target: &WeylPoint,
    start: DriveParams,
) -> DriveParams {
    let (om0, dl0) = match variant {
        EaVariant::Plus => (start.omega2, start.delta),
        EaVariant::Minus => (start.omega1, start.delta),
    };
    let (g1t, g2t) = makhlin_from_coords(target.x, target.y, target.z);
    let objective = |p: &[f64]| {
        let u = evolve4_real(h_ratio, drive_of(variant, p[0].abs(), p[1]), tau);
        let (g1, g2) = makhlin4(&u);
        (g1 - g1t).norm_sqr() + (g2 - g2t).powi(2)
    };
    let res = nelder_mead(
        objective,
        &[om0, dl0],
        &NmOptions {
            max_evals: 800,
            f_tol: 1e-30,
            initial_step: 1e-4,
            f_tol_rel: 1e-9,
            ..NmOptions::default()
        },
    );
    let cand = drive_of(variant, res.x[0].abs(), res.x[1]);
    let before = weyl_coordinates4(&evolve4(h_ratio, start, tau)).gate_dist(*target);
    let after = weyl_coordinates4(&evolve4(h_ratio, cand, tau)).gate_dist(*target);
    if after < before {
        cand
    } else {
        start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::evolve;
    use ashn_gates::kak::weyl_coordinates;
    use std::f64::consts::FRAC_PI_4;

    fn check(h: f64, variant: EaVariant, x: f64, y: f64, z: f64) -> (f64, DriveParams) {
        let (tau, drive) = ashn_ea(h, variant, x, y, z).expect("EA should converge");
        let u = evolve(h, drive, tau);
        let got = weyl_coordinates(&u);
        let want = WeylPoint::new(x, y, z).canonicalize();
        assert!(
            got.gate_dist(want) < 1e-7,
            "h={h} {variant:?} target=({x},{y},{z}): got {got}, want {want}"
        );
        (tau, drive)
    }

    #[test]
    fn swap_class_via_ea() {
        // [SWAP] sits on an EA face; paper Table 1 gives Ω₁ = 0 (EA−
        // shape with our conventions): A₁ = −A₂, τ = 3π/4.
        let (tau, drive) = check(0.0, EaVariant::Plus, FRAC_PI_4, FRAC_PI_4, FRAC_PI_4);
        let _ = drive;
        assert!((tau - 3.0 * FRAC_PI_4).abs() < 1e-9, "τ = {tau}");
    }

    #[test]
    fn ea_plus_face_targets() {
        // Targets on the x+y+z face: y+z ≥ (1−h̃)x.
        for (h, x, y, z) in [
            (0.0, 0.5, 0.45, 0.2),
            (0.0, 0.6, 0.55, 0.3),
            (0.0, FRAC_PI_4, FRAC_PI_4, 0.1),
        ] {
            assert!(y + z >= (1.0 - h) * x - 1e-12, "not on the EA+ face");
            check(h, EaVariant::Plus, x, y, z);
        }
    }

    #[test]
    fn ea_minus_face_targets() {
        // Targets on the x+y−z face: y−z ≥ (1+h̃)x.
        for (h, x, y, z) in [
            (0.0, 0.5, 0.45, -0.2),
            (0.0, 0.6, 0.55, -0.3),
            (0.0, FRAC_PI_4, FRAC_PI_4, -0.1),
        ] {
            check(h, EaVariant::Minus, x, y, z);
        }
    }

    #[test]
    fn ea_with_zz_coupling() {
        // With h̃ ≠ 0 the faces tilt; pick targets comfortably inside.
        check(0.3, EaVariant::Plus, 0.5, 0.45, 0.3);
        check(-0.2, EaVariant::Plus, 0.5, 0.45, 0.25);
        check(0.25, EaVariant::Minus, 0.5, 0.45, -0.25);
    }

    #[test]
    fn identity_is_rejected() {
        assert_eq!(
            ashn_ea(0.0, EaVariant::Plus, 0.0, 0.0, 0.0).unwrap_err(),
            EaError::NonPositiveTime
        );
    }

    #[test]
    fn ea_drive_structure_matches_variant() {
        let (_, d) = check(0.0, EaVariant::Plus, 0.5, 0.45, 0.2);
        assert_eq!(d.omega1, 0.0, "EA+ uses only the antisymmetric drive");
        let (_, d) = check(0.0, EaVariant::Minus, 0.5, 0.45, -0.2);
        assert_eq!(d.omega2, 0.0, "EA− uses only the symmetric drive");
    }

    #[test]
    fn search_with_defaults_matches_multistart_bit_for_bit() {
        let reference = ashn_ea_multistart(0.0, EaVariant::Plus, 0.5, 0.45, 0.2, 2).unwrap();
        let got = ashn_ea_search(
            0.0,
            EaVariant::Plus,
            0.5,
            0.45,
            0.2,
            &EaSearch {
                workers: 2,
                ..EaSearch::default()
            },
        )
        .unwrap();
        assert_eq!(got.0.to_bits(), reference.0.to_bits());
        assert_eq!(got.1.omega2.to_bits(), reference.1.omega2.to_bits());
        assert_eq!(got.1.delta.to_bits(), reference.1.delta.to_bits());
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        let past = std::time::Instant::now() - std::time::Duration::from_millis(1);
        let err = ashn_ea_search(
            0.0,
            EaVariant::Plus,
            0.5,
            0.45,
            0.2,
            &EaSearch {
                workers: 1,
                deadline: Some(past),
                ..EaSearch::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, EaError::DeadlineExceeded);
    }

    #[test]
    fn escalation_rounds_still_converge_and_stay_deterministic() {
        let search = EaSearch {
            workers: 1,
            extra_rounds: 2,
            jitter_seed: 17,
            deadline: None,
        };
        let a = ashn_ea_search(0.0, EaVariant::Plus, 0.5, 0.45, 0.2, &search).unwrap();
        let b = ashn_ea_search(0.0, EaVariant::Plus, 0.5, 0.45, 0.2, &search).unwrap();
        assert_eq!(a.0.to_bits(), b.0.to_bits());
        assert_eq!(a.1.omega2.to_bits(), b.1.omega2.to_bits());
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn convergence_failpoint_fails_the_search() {
        use crate::fault::{self, FaultMode};
        let _guard = fault::exclusive();
        fault::reset();
        fault::configure("core::ea::convergence", FaultMode::Always);
        let err = ashn_ea(0.0, EaVariant::Plus, 0.5, 0.45, 0.2).unwrap_err();
        fault::reset();
        assert!(matches!(err, EaError::NoConvergence { .. }));
        // Disarmed again: the same target converges.
        assert!(ashn_ea(0.0, EaVariant::Plus, 0.5, 0.45, 0.2).is_ok());
    }

    #[test]
    fn multistart_workers_do_not_change_the_solution() {
        let reference = ashn_ea_multistart(0.0, EaVariant::Plus, 0.5, 0.45, 0.2, 1).unwrap();
        for workers in [2, 4] {
            let got = ashn_ea_multistart(0.0, EaVariant::Plus, 0.5, 0.45, 0.2, workers).unwrap();
            assert_eq!(got.0.to_bits(), reference.0.to_bits());
            assert_eq!(got.1.omega2.to_bits(), reference.1.omega2.to_bits());
            assert_eq!(got.1.delta.to_bits(), reference.1.delta.to_bits());
        }
    }
}
