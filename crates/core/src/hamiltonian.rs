//! The AshN rotating-frame Hamiltonian (paper Eq. 4.3 / 4.1).
//!
//! In units of the coupling `g` (set `g = 1`), with `ZZ` ratio `h̃ = h/g`:
//!
//! ```text
//! H(h̃; Ω₁, Ω₂, δ) = ½(XX + YY + h̃·ZZ) + Ω₁(XI + IX) + Ω₂(XI − IX) + δ(ZI + IZ)
//! ```
//!
//! The drives have square envelopes, making `H` time-independent; evolution
//! for time `τ` (in units of `1/g`) gives `U = exp(−i·H·τ)`.

use ashn_gates::pauli::{pauli_string, xx, yy, zz, Pauli};
use ashn_math::smat::expm_minus_i_real_symmetric;
use ashn_math::{c, CMat, Mat4};

/// Drive parameters of a single AshN pulse, in units of the coupling `g`
/// (`Ω`s and `δ`) and of `1/g` (`τ`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriveParams {
    /// Symmetric drive amplitude `Ω₁`.
    pub omega1: f64,
    /// Antisymmetric drive amplitude `Ω₂`.
    pub omega2: f64,
    /// Half the drive detuning, `δ = (ω_d − ω)/2`.
    pub delta: f64,
}

impl DriveParams {
    /// A pulse with all drives off (pure `XX+YY` evolution).
    pub const FREE: DriveParams = DriveParams {
        omega1: 0.0,
        omega2: 0.0,
        delta: 0.0,
    };

    /// Creates drive parameters.
    pub const fn new(omega1: f64, omega2: f64, delta: f64) -> Self {
        Self {
            omega1,
            omega2,
            delta,
        }
    }

    /// Physical microwave amplitudes `(A₁, A₂)` from the symmetric /
    /// antisymmetric parameterisation (paper Eq. 4.2):
    /// `Aᵢ = −2Ω₁ + (−1)ⁱ·2Ω₂`.
    pub fn amplitudes(&self) -> (f64, f64) {
        (
            -2.0 * self.omega1 - 2.0 * self.omega2,
            -2.0 * self.omega1 + 2.0 * self.omega2,
        )
    }

    /// Inverse of [`DriveParams::amplitudes`].
    pub fn from_amplitudes(a1: f64, a2: f64, delta: f64) -> Self {
        Self {
            omega1: -(a1 + a2) / 4.0,
            omega2: (a2 - a1) / 4.0,
            delta,
        }
    }

    /// The largest of `|A₁|/2, |A₂|/2, |δ|` — the drive-strength measure the
    /// paper bounds in Eq. 4.4 and plots in Fig. 5.
    pub fn max_strength(&self) -> f64 {
        (self.omega1 + self.omega2)
            .abs()
            .max((self.omega1 - self.omega2).abs())
            .max(self.delta.abs())
    }
}

/// Builds the normalised AshN Hamiltonian `H(h̃; Ω₁, Ω₂, δ)` as a 4×4 matrix.
///
/// This is the readable Pauli-string construction, kept as the reference for
/// the allocation-free [`hamiltonian4`] (the differential suite in
/// `crates/core/tests/smat_differential.rs` holds the two together).
///
/// # Panics
///
/// Panics when `|h_ratio| > 1` (the scheme requires `|h| ≤ g`, paper §4.1).
pub fn hamiltonian(h_ratio: f64, drive: DriveParams) -> CMat {
    assert!(
        h_ratio.abs() <= 1.0 + 1e-12,
        "AshN requires |h| ≤ g, got h/g = {h_ratio}"
    );
    let xi_ix_sum = pauli_string(&[Pauli::X, Pauli::I]) + pauli_string(&[Pauli::I, Pauli::X]);
    let xi_ix_diff = pauli_string(&[Pauli::X, Pauli::I]) - pauli_string(&[Pauli::I, Pauli::X]);
    let zi_iz = pauli_string(&[Pauli::Z, Pauli::I]) + pauli_string(&[Pauli::I, Pauli::Z]);
    (xx() + yy()).scale(c(0.5, 0.0))
        + zz().scale(c(0.5 * h_ratio, 0.0))
        + xi_ix_sum.scale(c(drive.omega1, 0.0))
        + xi_ix_diff.scale(c(drive.omega2, 0.0))
        + zi_iz.scale(c(drive.delta, 0.0))
}

/// Stack-allocated AshN Hamiltonian with the Pauli sums written out
/// entrywise — the matrix is real symmetric with only ten distinct values.
/// The expressions reproduce the floating-point results of the
/// [`hamiltonian`] accumulation exactly.
///
/// # Panics
///
/// Panics when `|h_ratio| > 1` (the scheme requires `|h| ≤ g`, paper §4.1).
pub fn hamiltonian4(h_ratio: f64, drive: DriveParams) -> Mat4 {
    let h = hamiltonian4_real(h_ratio, drive);
    Mat4::from_fn(|r, cc| c(h[r][cc], 0.0))
}

/// Time evolution `U(τ) = exp(−i·H·τ)` under the AshN Hamiltonian.
///
/// Delegates to the allocation-free [`evolve4`]; the stack kernels mirror
/// the original `CMat` arithmetic, so results are unchanged.
pub fn evolve(h_ratio: f64, drive: DriveParams, tau: f64) -> CMat {
    evolve4(h_ratio, drive, tau).into()
}

/// Stack-allocated time evolution `U(τ) = exp(−i·H·τ)` — the fast path the
/// EA objective evaluates thousands of times per pulse search.
pub fn evolve4(h_ratio: f64, drive: DriveParams, tau: f64) -> Mat4 {
    hamiltonian4(h_ratio, drive).expm_minus_i_hermitian(tau)
}

/// The AshN Hamiltonian as a bare real symmetric array (it is real
/// symmetric for every drive, paper §A.1.3): the single entrywise table
/// both [`hamiltonian4`] and [`evolve4_real`] are built from.
///
/// # Panics
///
/// Panics when `|h_ratio| > 1`, like every other entry point.
fn hamiltonian4_real(h_ratio: f64, drive: DriveParams) -> [[f64; 4]; 4] {
    assert!(
        h_ratio.abs() <= 1.0 + 1e-12,
        "AshN requires |h| ≤ g, got h/g = {h_ratio}"
    );
    let hh = 0.5 * h_ratio;
    let sum = drive.omega1 + drive.omega2; // XI coefficient
    let diff = drive.omega1 - drive.omega2; // IX coefficient
    let dd = 2.0 * drive.delta;
    [
        [hh + dd, diff, sum, 0.0],
        [diff, -hh, 1.0, sum],
        [sum, 1.0, -hh, diff],
        [0.0, sum, diff, hh - dd],
    ]
}

/// Time evolution specialised to the real symmetric structure of the AshN
/// Hamiltonian: real-Jacobi diagonalisation plus a real×complex spectral
/// reconstruction, roughly 3× cheaper than [`evolve4`]. Agrees with it to
/// `1e-12` (differential-tested); the numerical searches use this for their
/// objective evaluations, while verification and [`AshnPulse::unitary`]
/// stay on [`evolve4`].
///
/// [`AshnPulse::unitary`]: crate::scheme::AshnPulse::unitary
pub fn evolve4_real(h_ratio: f64, drive: DriveParams, tau: f64) -> Mat4 {
    expm_minus_i_real_symmetric(&hamiltonian4_real(h_ratio, drive), tau)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_gates::kak::weyl_coordinates;
    use ashn_gates::weyl::WeylPoint;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

    #[test]
    fn hamiltonian_is_hermitian_and_symmetric() {
        let h = hamiltonian(0.3, DriveParams::new(0.7, -0.2, 0.4));
        assert!(h.is_hermitian(1e-14));
        // All AshN Hamiltonians are real symmetric (paper §A.1.3), which is
        // what makes the Cartan-double calibration work.
        assert!((&h - &h.transpose()).frobenius_norm() < 1e-14);
    }

    #[test]
    fn evolution_is_symmetric_unitary() {
        let u = evolve(0.2, DriveParams::new(0.5, 0.1, -0.3), 1.1);
        assert!(u.is_unitary(1e-11));
        assert!(
            (&u - &u.transpose()).frobenius_norm() < 1e-10,
            "U = Uᵀ fails"
        );
    }

    #[test]
    fn free_evolution_reaches_iswap_class() {
        // With no drives and h=0, evolving for τ = π/2 gives the iSWAP class
        // (the XY interaction at its maximally entangling point).
        let u = evolve(0.0, DriveParams::FREE, FRAC_PI_2);
        let p = weyl_coordinates(&u);
        assert!(p.approx_eq(WeylPoint::ISWAP, 1e-9), "got {p}");
    }

    #[test]
    fn free_evolution_quarter_time_is_sqisw_class() {
        let u = evolve(0.0, DriveParams::FREE, FRAC_PI_4);
        let p = weyl_coordinates(&u);
        assert!(p.approx_eq(WeylPoint::SQISW, 1e-9), "got {p}");
    }

    #[test]
    fn amplitude_round_trip() {
        let d = DriveParams::new(0.4, -0.9, 0.25);
        let (a1, a2) = d.amplitudes();
        let back = DriveParams::from_amplitudes(a1, a2, d.delta);
        assert!((back.omega1 - d.omega1).abs() < 1e-14);
        assert!((back.omega2 - d.omega2).abs() < 1e-14);
    }

    #[test]
    fn singlet_is_always_an_eigenvector() {
        // (0,1,−1,0)/√2 is an eigenvector for any symmetric drive (paper §A.4).
        let h = hamiltonian(0.5, DriveParams::new(0.8, 0.0, 0.6));
        let s = vec![
            ashn_math::Complex::ZERO,
            c(std::f64::consts::FRAC_1_SQRT_2, 0.0),
            c(-std::f64::consts::FRAC_1_SQRT_2, 0.0),
            ashn_math::Complex::ZERO,
        ];
        let hs = h.mul_vec(&s);
        // Eigenvalue is −(1 + h̃/2) for the symmetric drive.
        let expect = -(1.0 + 0.25);
        for (a, b) in hs.iter().zip(s.iter()) {
            assert!((*a - *b * expect).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "AshN requires")]
    fn rejects_zz_stronger_than_coupling() {
        hamiltonian(1.5, DriveParams::FREE);
    }
}
