//! The AshN-ND (no detuning) sub-scheme, and its extended-time variant
//! AshN-ND-EXT (paper Algorithms 2–3, derivation in §A.2).
//!
//! With `δ = 0`, the Hamiltonian block-diagonalises in the `(H⊗H)` basis and
//! the realized Weyl coordinates are `(τ/2, y, z)` with
//!
//! ```text
//! sin(y−z) = (1−h̃)/2 · sin(S₁τ)/S₁,   S₁ = √(4Ω₁² + (1−h̃)²/4)
//! sin(y+z) = (1+h̃)/2 · sin(S₂τ)/S₂,   S₂ = √(4Ω₂² + (1+h̃)²/4)
//! ```
//!
//! (paper Eq. A.1, stated for `exp(+iHτ)`). Inverting uses `sinc⁻¹` on its
//! `[0, π]` branch.
//!
//! Convention note: Eq. (A.1) and the pseudocode of Algorithms 2–3 pair
//! `(1±h̃)` with `y±z` in opposite ways; the difference is the sign of the
//! realized `z`, which depends on the `exp(±iHτ)` convention. For the
//! Schrödinger evolution `U = exp(−iHτ)` used throughout this crate the
//! correct pairing is `(1−h̃, Ω₁) ↔ y+z` and `(1+h̃, Ω₂) ↔ y−z` — matching
//! Algorithm 2 as printed. The round-trip tests pin this down.

use crate::hamiltonian::DriveParams;
use ashn_math::special::sinc_inv;
use std::f64::consts::PI;

/// Error cases for the closed-form ND inversion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NdError {
    /// The target lies outside the `ND(h; τ)` polygon: the required
    /// `sinc` value exceeds 1.
    OutsidePolygon,
    /// The requested evolution time is not positive.
    NonPositiveTime,
}

impl std::fmt::Display for NdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NdError::OutsidePolygon => write!(f, "target outside the ND(h;τ) polygon"),
            NdError::NonPositiveTime => write!(f, "evolution time must be positive"),
        }
    }
}

impl std::error::Error for NdError {}

/// Solves one ND leg: returns `Ω ≥ 0` with
/// `sin(target) = (k/2)·sinc(Sτ)·τ·…`, i.e. `S = sinc⁻¹(2·sin(target)/(k·τ))/τ`
/// and `Ω = √(S² − k²/4)/2`, where `k = 1±h̃`.
fn solve_leg(target: f64, k: f64, tau: f64) -> Result<f64, NdError> {
    if k.abs() < 1e-12 {
        // Degenerate coupling leg (|h̃| = 1): the equation collapses to
        // sin(target) = 0 and the drive decouples; Ω = 0 works iff target ≈ 0.
        return if target.sin().abs() < 1e-9 {
            Ok(0.0)
        } else {
            Err(NdError::OutsidePolygon)
        };
    }
    let arg = 2.0 * target.sin() / (k * tau);
    if !(-1e-9..=1.0 + 1e-9).contains(&arg) {
        return Err(NdError::OutsidePolygon);
    }
    let s = sinc_inv(arg.clamp(0.0, 1.0)) / tau;
    let om_sq = s * s - k * k / 4.0;
    // Round-off can push marginal cases slightly negative.
    Ok(om_sq.max(0.0).sqrt() / 2.0)
}

/// AshN-ND: drive parameters realizing the class `(x, y, z)` in time
/// `τ = 2x` with zero detuning.
///
/// # Errors
///
/// [`NdError::OutsidePolygon`] when `(x,y,z) ∉ ND(h̃; 2x)`;
/// [`NdError::NonPositiveTime`] when `x ≤ 0` (the identity class needs no
/// pulse).
pub fn ashn_nd(h_ratio: f64, x: f64, y: f64, z: f64) -> Result<(f64, DriveParams), NdError> {
    let tau = 2.0 * x;
    if tau <= 0.0 {
        return Err(NdError::NonPositiveTime);
    }
    let omega1 = solve_leg(y + z, 1.0 - h_ratio, tau)?;
    let omega2 = solve_leg(y - z, 1.0 + h_ratio, tau)?;
    Ok((tau, DriveParams::new(omega1, omega2, 0.0)))
}

/// AshN-ND-EXT: realizes `(x, y, z)` in the extended time `τ = π − 2x` by
/// targeting the mirror class `(π/2 − x, y, −z)` with the plain ND scheme.
///
/// This trades gate time for bounded drive amplitudes near the identity
/// (paper §4.2 and §A.7).
///
/// # Errors
///
/// Same as [`ashn_nd`].
pub fn ashn_nd_ext(h_ratio: f64, x: f64, y: f64, z: f64) -> Result<(f64, DriveParams), NdError> {
    let tau = PI - 2.0 * x;
    if tau <= 0.0 {
        return Err(NdError::NonPositiveTime);
    }
    // Mirror: the evolution realizes (τ/2, y, −z) = (π/2−x, y, −z) ~ (x,y,z).
    let omega1 = solve_leg(y - z, 1.0 - h_ratio, tau)?;
    let omega2 = solve_leg(y + z, 1.0 + h_ratio, tau)?;
    Ok((tau, DriveParams::new(omega1, omega2, 0.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::evolve;
    use ashn_gates::kak::weyl_coordinates;
    use ashn_gates::weyl::WeylPoint;
    use std::f64::consts::FRAC_PI_4;

    fn check_round_trip(h: f64, x: f64, y: f64, z: f64, ext: bool) {
        let (tau, drive) = if ext {
            ashn_nd_ext(h, x, y, z).expect("solvable")
        } else {
            ashn_nd(h, x, y, z).expect("solvable")
        };
        let u = evolve(h, drive, tau);
        let got = weyl_coordinates(&u);
        let want = WeylPoint::new(x, y, z).canonicalize();
        assert!(
            got.dist(want) < 1e-8,
            "h={h} target=({x},{y},{z}) ext={ext}: got {got}, want {want}"
        );
    }

    #[test]
    fn cnot_class_h0() {
        // [CNOT]: Ω₁ = Ω₂ = √15/4 so A₁ = −√15·g, A₂ = 0 (paper Table 1).
        let (tau, d) = ashn_nd(0.0, FRAC_PI_4, 0.0, 0.0).unwrap();
        assert!((tau - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((d.omega1 - 15f64.sqrt() / 4.0).abs() < 1e-9);
        assert!((d.omega2 - 15f64.sqrt() / 4.0).abs() < 1e-9);
        let (a1, a2) = d.amplitudes();
        assert!((a1 + 15f64.sqrt()).abs() < 1e-8);
        assert!(a2.abs() < 1e-8);
        check_round_trip(0.0, FRAC_PI_4, 0.0, 0.0, false);
    }

    #[test]
    fn nd_round_trips_interior_targets() {
        // Points with y + z ≤ (1−h̃)x and y − z ≤ (1+h̃)x lie in ND(h̃; 2x).
        let cases = [
            (0.0, 0.6, 0.25, 0.1),
            (0.0, 0.7, 0.3, -0.2),
            (0.3, 0.6, 0.3, 0.05),
            (-0.4, 0.7, 0.2, -0.1),
            (0.8, 0.7, 0.05, 0.0),
        ];
        for (h, x, y, z) in cases {
            // Feasibility guard for the chosen parameters.
            assert!(y + z <= (1.0 - h) * x + 1e-12 && y - z <= (1.0 + h) * x + 1e-12);
            check_round_trip(h, x, y, z, false);
        }
    }

    #[test]
    fn nd_ext_round_trips_near_identity() {
        for (h, x, y, z) in [
            (0.0, 0.05, 0.02, 0.01),
            (0.0, 0.1, 0.05, -0.03),
            (0.2, 0.08, 0.04, 0.0),
            (-0.3, 0.02, 0.01, -0.01),
        ] {
            check_round_trip(h, x, y, z, true);
        }
    }

    #[test]
    fn nd_rejects_outside_polygon() {
        // y + z far above (1+h̃)x cannot be reached in time 2x.
        assert_eq!(
            ashn_nd(0.0, 0.3, 0.3, 0.29).unwrap_err(),
            NdError::OutsidePolygon
        );
    }

    #[test]
    fn nd_rejects_identity() {
        assert_eq!(
            ashn_nd(0.0, 0.0, 0.0, 0.0).unwrap_err(),
            NdError::NonPositiveTime
        );
    }

    #[test]
    fn iswap_needs_no_drive() {
        let (tau, d) = ashn_nd(0.0, FRAC_PI_4, FRAC_PI_4, 0.0).unwrap();
        assert!((tau - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!(d.omega1.abs() < 1e-6 && d.omega2.abs() < 1e-6);
        check_round_trip(0.0, FRAC_PI_4, FRAC_PI_4, 0.0, false);
    }

    #[test]
    fn extreme_zz_ratio_with_matching_target() {
        // h̃ = 1 freezes the (1−h̃) leg, which controls y+z: targets with
        // y = −z remain solvable.
        check_round_trip(1.0, 0.5, 0.2, -0.2, false);
    }
}
