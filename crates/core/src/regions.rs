//! Weyl-chamber region classification (paper Figures 2–3): which sub-scheme
//! realizes each class, and how the partition deforms with the `ZZ` ratio
//! and the cutoff `r`.

use crate::scheme::SubScheme;
use ashn_gates::cost::optimal_time_branches;
use ashn_gates::weyl::WeylPoint;
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

/// The sub-scheme Algorithm 1 assigns to a canonical class, without solving
/// for the drive parameters.
///
/// When `h̃ ≠ 0` the mirror branch splits each of ND/EA± in two, yielding the
/// seven regions of paper Figure 3; the `mirrored` flag distinguishes them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// Sub-scheme used.
    pub scheme: SubScheme,
    /// Whether the mirror class `(π/2−x, y, −z)` is the one compiled.
    pub mirrored: bool,
}

/// Classifies a canonical class for `ZZ` ratio `h̃` and cutoff `r`.
///
/// # Panics
///
/// Panics when `|h̃| > 1` or the point is not canonical.
pub fn classify(h_ratio: f64, cutoff: f64, p: WeylPoint) -> Region {
    let p = p.canonicalize();
    let (t1, t2) = optimal_time_branches(h_ratio, p);
    if t1.min(t2) <= 1e-12 {
        return Region {
            scheme: SubScheme::Identity,
            mirrored: false,
        };
    }
    if t1.min(t2) <= cutoff {
        return Region {
            scheme: SubScheme::NdExt,
            mirrored: false,
        };
    }
    let mirrored = t2 < t1 - 1e-12;
    let (x, y, z) = if mirrored {
        (FRAC_PI_2 - p.x, p.y, -p.z)
    } else {
        (p.x, p.y, p.z)
    };
    let t_nd = 2.0 * x;
    let t_plus = 2.0 * (x + y + z) / (2.0 - h_ratio);
    let t_minus = 2.0 * (x + y - z) / (2.0 + h_ratio);
    let scheme = if t_nd >= t_plus.max(t_minus) - 1e-12 {
        SubScheme::Nd
    } else if t_plus >= t_minus {
        SubScheme::EaPlus
    } else {
        SubScheme::EaMinus
    };
    Region { scheme, mirrored }
}

/// Volume fractions of each region under the Haar measure, estimated over a
/// deterministic grid. Returns `(label, fraction)` pairs covering 100%.
pub fn region_census(h_ratio: f64, cutoff: f64, resolution: usize) -> Vec<(String, f64)> {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    let mut total = 0.0;
    let n = resolution;
    let step = FRAC_PI_4 / n as f64;
    for i in 0..n {
        let x = (i as f64 + 0.5) * step;
        for j in 0..n {
            let y = (j as f64 + 0.5) * step;
            for k in 0..2 * n {
                let z = -FRAC_PI_4 + (k as f64 + 0.5) * step;
                let p = WeylPoint::new(x, y, z);
                if !p.in_chamber(0.0) || !p.canonicalize().approx_eq(p, 1e-9) {
                    continue;
                }
                let w = ashn_gates::haar::weyl_density(p);
                let r = classify(h_ratio, cutoff, p);
                let label = if r.mirrored {
                    format!("{} (mirror)", r.scheme)
                } else {
                    r.scheme.to_string()
                };
                *counts.entry(label).or_insert(0.0) += w;
                total += w;
            }
        }
    }
    counts.into_iter().map(|(k, v)| (k, v / total)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cnot_is_nd_region() {
        let r = classify(0.0, 0.0, WeylPoint::CNOT);
        assert_eq!(r.scheme, SubScheme::Nd);
        assert!(!r.mirrored);
    }

    #[test]
    fn swap_is_ea_region() {
        let r = classify(0.0, 0.0, WeylPoint::SWAP);
        assert!(
            matches!(r.scheme, SubScheme::EaPlus | SubScheme::EaMinus),
            "got {:?}",
            r.scheme
        );
    }

    #[test]
    fn near_identity_is_nd_ext_with_cutoff() {
        let r = classify(0.0, 1.1, WeylPoint::new(0.05, 0.01, 0.0));
        assert_eq!(r.scheme, SubScheme::NdExt);
    }

    #[test]
    fn census_covers_everything_h0() {
        let census = region_census(0.0, 0.0, 24);
        let total: f64 = census.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // With h̃ = 0 and no cutoff, only ND / EA± appear (Fig. 2), with ND
        // dominating the Haar mass.
        for (label, frac) in &census {
            assert!(!label.contains("EXT"), "unexpected region {label} ({frac})");
        }
        let nd = census
            .iter()
            .filter(|(l, _)| l == "AshN-ND")
            .map(|(_, f)| f)
            .sum::<f64>();
        assert!(nd > 0.5, "ND fraction = {nd}");
    }

    #[test]
    fn nonzero_zz_splits_more_regions() {
        // Fig. 3: with h̃ ≠ 0 the chamber partitions into more sectors
        // (mirror copies appear).
        let census0 = region_census(0.0, 0.0, 20);
        let census8 = region_census(0.8, 0.0, 20);
        assert!(census8.len() > census0.len(), "{census0:?} vs {census8:?}");
    }

    #[test]
    fn cutoff_region_grows_with_r() {
        let frac = |r: f64| {
            region_census(0.0, r, 20)
                .into_iter()
                .filter(|(l, _)| l.contains("EXT"))
                .map(|(_, f)| f)
                .sum::<f64>()
        };
        let f_small = frac(0.4);
        let f_large = frac(1.2);
        assert!(f_small < f_large, "{f_small} !< {f_large}");
    }

    #[test]
    fn classification_matches_compiled_scheme() {
        // The census classifier must agree with what `compile` actually does.
        use crate::scheme::AshnScheme;
        let scheme = AshnScheme::with_cutoff(0.0, 0.8);
        for p in [
            WeylPoint::CNOT,
            WeylPoint::SWAP,
            WeylPoint::new(0.1, 0.05, -0.02),
            WeylPoint::new(0.7, 0.3, 0.1),
        ] {
            let predicted = classify(0.0, 0.8, p);
            let pulse = scheme.compile(p).unwrap();
            assert_eq!(
                predicted.scheme, pulse.scheme,
                "classifier disagrees with compiler at {p}"
            );
        }
    }
}
