//! Deterministic scoped-thread parallelism for the numerical searches.
//!
//! Same pattern as `ashn_sim::BatchRunner` (scoped workers pulling indexed
//! jobs from a shared counter, results returned in job order), minus the
//! per-job RNG streams the pulse searches do not need. Because results come
//! back in index order and every job is a pure function of its index, the
//! output is bit-identical for any worker count — the property the EA
//! multistart determinism suite pins down.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: the `ASHN_WORKERS` environment variable when
/// set to a positive integer, otherwise one per available hardware thread
/// (`0`, unset, or unparsable mean the hardware default — the same
/// convention as `ashn_sim::batch::default_workers`, so the service pool
/// and the simulation stack honor constrained CI runners consistently).
pub fn default_workers() -> usize {
    let configured = std::env::var("ASHN_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok());
    match configured {
        Some(w) if w > 0 => w,
        _ => std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1),
    }
}

/// Maps `f` over `0..n` with up to `workers` scoped threads, returning
/// results in index order. `workers == 0` defers to [`default_workers`]
/// (the zero-means-default convention `ashn_sim::BatchRunner::with_workers`
/// states canonically); one worker (or one job) runs inline with no thread
/// spawned.
pub fn parallel_map<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = if workers == 0 {
        default_workers()
    } else {
        workers
    }
    .min(n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i)));
                }
                collected
                    .lock()
                    .expect("parallel_map result mutex poisoned")
                    .extend(local);
            });
        }
    });
    let mut results = collected
        .into_inner()
        .expect("parallel_map result mutex poisoned");
    results.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(results.len(), n);
    results.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let out = parallel_map(4, 32, |i| i * 7);
        assert_eq!(out, (0..32).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let reference = parallel_map(1, 16, |i| (i as f64).sqrt().to_bits());
        for workers in [2, 3, 8] {
            let got = parallel_map(workers, 16, |i| (i as f64).sqrt().to_bits());
            assert_eq!(got, reference, "workers = {workers}");
        }
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<usize> = parallel_map(4, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_workers_means_default() {
        let out = parallel_map(0, 8, |i| i + 1);
        assert_eq!(out.len(), 8);
    }
}
