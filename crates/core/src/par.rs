//! Deterministic scoped-thread parallelism for the numerical searches.
//!
//! Same pattern as `ashn_sim::BatchRunner` (scoped workers pulling indexed
//! jobs from a shared counter, results returned in job order), minus the
//! per-job RNG streams the pulse searches do not need. Because results come
//! back in index order and every job is a pure function of its index, the
//! output is bit-identical for any worker count — the property the EA
//! multistart determinism suite pins down.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// The default worker count: the `ASHN_WORKERS` environment variable when
/// set to a positive integer, otherwise one per available hardware thread
/// (`0`, unset, or unparsable mean the hardware default — the same
/// convention as `ashn_sim::batch::default_workers`, so the service pool
/// and the simulation stack honor constrained CI runners consistently).
pub fn default_workers() -> usize {
    let configured = std::env::var("ASHN_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok());
    match configured {
        Some(w) if w > 0 => w,
        _ => std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1),
    }
}

/// Maps `f` over `0..n` with up to `workers` scoped threads, returning
/// results in index order. `workers == 0` defers to [`default_workers`]
/// (the zero-means-default convention `ashn_sim::BatchRunner::with_workers`
/// states canonically); one worker (or one job) runs inline with no thread
/// spawned.
pub fn parallel_map<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut first_panic: Option<Box<dyn Any + Send>> = None;
    let results: Vec<T> = run_caught(workers, n, f)
        .into_iter()
        .filter_map(|r| match r {
            Ok(t) => Some(t),
            Err(caught) => {
                // Keep the lowest-indexed payload (results arrive in index
                // order) so the propagated panic is scheduling-independent.
                if first_panic.is_none() {
                    first_panic = Some(caught.payload);
                }
                None
            }
        })
        .collect();
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
    results
}

/// A worker panic caught at a parallel-map task boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskPanic {
    /// Index of the job that panicked.
    pub index: usize,
    /// The panic message, when it was a `&str`/`String` payload.
    pub detail: String,
}

/// [`parallel_map`] with per-job panic isolation: a panicking job yields
/// `Err(TaskPanic)` at its own index instead of tearing down the batch, and
/// every surviving job's result is bit-identical to what [`parallel_map`]
/// would have produced. This is the worker-pool boundary the compile
/// service builds its "one bad target never kills a batch" guarantee on.
///
/// Carries the `core::par::task` failpoint, which injects a panic into the
/// body of each elected job.
pub fn parallel_map_isolated<T, F>(workers: usize, n: usize, f: F) -> Vec<Result<T, TaskPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_caught(workers, n, f)
        .into_iter()
        .enumerate()
        .map(|(index, r)| {
            r.map_err(|caught| TaskPanic {
                index,
                detail: caught.detail,
            })
        })
        .collect()
}

struct Caught {
    payload: Box<dyn Any + Send>,
    detail: String,
}

fn describe_panic(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Shared engine of [`parallel_map`] and [`parallel_map_isolated`]: maps
/// `f` over `0..n` in index order, catching each job's panic at the task
/// boundary.
fn run_caught<T, F>(workers: usize, n: usize, f: F) -> Vec<Result<T, Caught>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let run_one = |i: usize| -> Result<T, Caught> {
        catch_unwind(AssertUnwindSafe(|| {
            if ashn_math::failpoint!("core::par::task") {
                panic!("injected fault: core::par::task (job {i})");
            }
            f(i)
        }))
        .map_err(|payload| {
            let detail = describe_panic(payload.as_ref());
            Caught { payload, detail }
        })
    };
    let workers = if workers == 0 {
        default_workers()
    } else {
        workers
    }
    .min(n.max(1));
    if n > 0 {
        // One bulk add per batch, not per job — hot-loop overhead stays nil.
        ashn_telemetry::current().add("core.par.jobs", n as u64);
    }
    if workers <= 1 || n <= 1 {
        return (0..n).map(run_one).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, Result<T, Caught>)>> = Mutex::new(Vec::with_capacity(n));
    // Workers record telemetry into whichever registry the *spawning*
    // thread had current, so per-batch registries see their own jobs.
    let telemetry = ashn_telemetry::current();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _telemetry = ashn_telemetry::install(&telemetry);
                let mut local: Vec<(usize, Result<T, Caught>)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, run_one(i)));
                }
                // Jobs cannot poison this mutex (panics are caught above);
                // recover anyway so an isolated batch never wedges.
                collected
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .extend(local);
            });
        }
    });
    let mut results = collected
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    results.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(results.len(), n);
    results.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let out = parallel_map(4, 32, |i| i * 7);
        assert_eq!(out, (0..32).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let reference = parallel_map(1, 16, |i| (i as f64).sqrt().to_bits());
        for workers in [2, 3, 8] {
            let got = parallel_map(workers, 16, |i| (i as f64).sqrt().to_bits());
            assert_eq!(got, reference, "workers = {workers}");
        }
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<usize> = parallel_map(4, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_workers_means_default() {
        let out = parallel_map(0, 8, |i| i + 1);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn isolated_map_converts_panics_to_errors_in_place() {
        for workers in [1, 4] {
            let out = parallel_map_isolated(workers, 16, |i| {
                if i % 5 == 3 {
                    panic!("boom at {i}");
                }
                i * 2
            });
            assert_eq!(out.len(), 16);
            for (i, r) in out.iter().enumerate() {
                if i % 5 == 3 {
                    let p = r.as_ref().unwrap_err();
                    assert_eq!(p.index, i);
                    assert_eq!(p.detail, format!("boom at {i}"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 2, "survivor {i} changed");
                }
            }
        }
    }

    #[test]
    fn isolated_map_without_panics_matches_parallel_map() {
        let plain = parallel_map(3, 12, |i| (i as f64).sin().to_bits());
        let isolated = parallel_map_isolated(3, 12, |i| (i as f64).sin().to_bits());
        let unwrapped: Vec<u64> = isolated.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(plain, unwrapped);
    }

    #[test]
    fn parallel_map_still_propagates_the_lowest_indexed_panic() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(4, 8, |i| {
                if i >= 2 {
                    panic!("die {i}");
                }
                i
            })
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "die 2", "must re-raise the lowest-indexed panic");
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn task_failpoint_injects_isolated_panics() {
        use crate::fault::{self, FaultMode};
        let _guard = fault::exclusive();
        fault::reset();
        fault::configure("core::par::task", FaultMode::OnNth(3));
        // Serial execution so call order is the job order.
        let out = parallel_map_isolated(1, 5, |i| i);
        fault::reset();
        assert!(out[2].is_err(), "third task must be hit");
        assert_eq!(out.iter().filter(|r| r.is_err()).count(), 1);
        assert!(out[2]
            .as_ref()
            .unwrap_err()
            .detail
            .contains("core::par::task"));
    }
}
