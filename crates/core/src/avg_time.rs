//! Average two-qubit gate time under the Haar measure (paper §6.1 and
//! §A.7.1): the trade-off between gate time and drive strength controlled by
//! the cutoff `r`, and the comparison against SQiSW / iSWAP / CZ baselines.

use ashn_gates::haar::sample_weyl_density;
use ashn_gates::weyl::WeylPoint;
use rand::Rng;
use std::f64::consts::PI;

/// Gate time `T(x,y,z;r)` at `h̃ = 0` (paper §A.7.1):
/// the optimal `max(2x, x+y+|z|)` when that exceeds `r`, else the extended
/// `π − 2x`.
pub fn gate_time_with_cutoff(p: WeylPoint, r: f64) -> f64 {
    let p = p.canonicalize();
    let topt = (2.0 * p.x).max(p.x + p.y + p.z.abs());
    if topt >= r {
        topt
    } else {
        PI - 2.0 * p.x
    }
}

/// Haar-average optimal two-qubit gate time at `r = 0`:
/// `7π/16 − 19/(180π) ≈ 1.341` (paper §6.1).
pub const MEAN_OPTIMAL_TIME: f64 = 7.0 * PI / 16.0 - 19.0 / (180.0 * PI);

/// Average two-qubit interaction time when compiling Haar-random gates from
/// SQiSW (paper §6.1, after Huang et al. [30]): `≈ 1.736/g`, i.e. `1.29×`
/// slower than AshN.
pub const SQISW_MEAN_TIME: f64 = 1.7360594431533597;

/// Average two-qubit interaction time with flux-tuned iSWAP (3 applications
/// of π/2): `3π/2 ≈ 4.712`, `3.51×` slower (paper §6.1).
pub const ISWAP_MEAN_TIME: f64 = 3.0 * PI / 2.0;

/// Average two-qubit interaction time with flux-tuned CZ (3 applications of
/// π/√2): `3π/√2 ≈ 6.664`, `4.97×` slower (paper §6.1).
pub const CZ_MEAN_TIME: f64 = 3.0 * PI * std::f64::consts::FRAC_1_SQRT_2;

/// Closed-form Haar-average gate time `T_avg(r)` at `h̃ = 0`
/// (paper §A.7.1), transcribed from the paper.
///
/// Validated against [`tavg_monte_carlo`] in the tests; `T_avg(0)` equals
/// [`MEAN_OPTIMAL_TIME`].
pub fn tavg_closed_form(r: f64) -> f64 {
    assert!((0.0..=PI / 2.0 + 1e-12).contains(&r), "cutoff out of range");
    let s = |k: f64| (k * r).sin();
    let c = |k: f64| (k * r).cos();
    (225.0 * (-176.0 * r * r + 96.0 * PI * r - 105.0) * c(4.0)
        + 50.0 * (-576.0 * r * r + 576.0 * PI * r - 30.0 * c(6.0) + 252.0 * PI * PI + 97.0)
        + 60.0
            * (480.0 * (PI - 2.0 * r) * s(1.0)
                - 603.0 * (PI - 2.0 * r) * s(2.0)
                - 128.0 * (PI - 2.0 * r) * s(3.0)
                + 30.0 * (19.0 * PI - 33.0 * r) * s(4.0)
                - 480.0 * (PI - 2.0 * r) * s(5.0)
                + 65.0 * (PI - 2.0 * r) * s(6.0))
        - 59049.0 * (4.0 * r / 3.0).cos()
        + 51708.0 * c(2.0)
        + 9216.0 * c(3.0)
        + 15360.0 * c(5.0))
        / (28800.0 * PI)
}

/// Monte-Carlo estimate of the Haar-average gate time at cutoff `r`
/// (`h̃ = 0`), using the exact Weyl-chamber density.
pub fn tavg_monte_carlo(r: f64, samples: usize, rng: &mut impl Rng) -> f64 {
    let mut total = 0.0;
    for _ in 0..samples {
        total += gate_time_with_cutoff(sample_weyl_density(rng), r);
    }
    total / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_optimal_time_value() {
        // Two equivalent closed forms quoted in the paper.
        let alt = (315.0 * PI * PI - 76.0) / (720.0 * PI);
        assert!((MEAN_OPTIMAL_TIME - alt).abs() < 1e-12);
        assert!((MEAN_OPTIMAL_TIME - 1.3409).abs() < 1e-3);
    }

    #[test]
    fn closed_form_at_zero_matches_mean_optimal() {
        assert!((tavg_closed_form(0.0) - MEAN_OPTIMAL_TIME).abs() < 1e-12);
    }

    #[test]
    fn closed_form_matches_monte_carlo() {
        let mut rng = StdRng::seed_from_u64(81);
        for r in [0.0, 0.4, 0.8, 1.1, 1.4] {
            let mc = tavg_monte_carlo(r, 40_000, &mut rng);
            let cf = tavg_closed_form(r);
            assert!(
                (mc - cf).abs() < 0.01,
                "r={r}: MC {mc:.4} vs closed form {cf:.4}"
            );
        }
    }

    #[test]
    fn small_r_series_expansion() {
        // T_avg(r) = T_avg(0) + (2213/5040)·r⁹ − (160303/204120π)·r¹⁰ + O(r¹¹).
        let r = 0.25f64;
        let series = MEAN_OPTIMAL_TIME + 2213.0 / 5040.0 * r.powi(9)
            - 160303.0 / (204120.0 * PI) * r.powi(10);
        assert!(
            (tavg_closed_form(r) - series).abs() < 1e-6,
            "series mismatch: {} vs {}",
            tavg_closed_form(r),
            series
        );
    }

    #[test]
    fn tavg_increases_with_cutoff() {
        let a = tavg_closed_form(0.0);
        let b = tavg_closed_form(1.1);
        let c = tavg_closed_form(1.5);
        assert!(a <= b && b <= c, "{a} {b} {c}");
    }

    #[test]
    fn r_1_1_within_ten_percent_of_optimal() {
        // Paper §6.1 claims r = 1.1 stays within 10% of 1.341/g. Measured
        // (closed form, confirmed by Monte Carlo): 11.0% at r = 1.1; the
        // 10% threshold is crossed near r ≈ 1.08. We assert the measured
        // behaviour with a small margin and record the delta in
        // EXPERIMENTS.md.
        let t = tavg_closed_form(1.1);
        assert!(
            t <= 1.115 * MEAN_OPTIMAL_TIME,
            "T_avg(1.1) = {t}, exceeds 1.115× optimum"
        );
        assert!(tavg_closed_form(1.0) <= 1.07 * MEAN_OPTIMAL_TIME);
    }

    #[test]
    fn baseline_ratios_match_paper() {
        // SQiSW ≈ 1.29×, iSWAP ≈ 3.51×, CZ ≈ 4.97× (paper §6.1).
        assert!((SQISW_MEAN_TIME / MEAN_OPTIMAL_TIME - 1.29).abs() < 0.01);
        assert!((ISWAP_MEAN_TIME / MEAN_OPTIMAL_TIME - 3.51).abs() < 0.01);
        assert!((CZ_MEAN_TIME / MEAN_OPTIMAL_TIME - 4.97).abs() < 0.01);
    }

    #[test]
    fn sqisw_mean_from_two_vs_three_applications() {
        // SQiSW compiles a Haar gate with 2 applications iff x ≥ y + |z|
        // (Huang et al. [30]); the average time is π/4·(3 − P[2 apps]).
        let mut rng = StdRng::seed_from_u64(82);
        let n = 60_000;
        let mut two = 0usize;
        for _ in 0..n {
            let p = sample_weyl_density(&mut rng);
            if p.x >= p.y + p.z.abs() {
                two += 1;
            }
        }
        let frac = two as f64 / n as f64;
        let mean = PI / 4.0 * (3.0 - frac);
        assert!(
            (mean - SQISW_MEAN_TIME).abs() < 0.01,
            "MC SQiSW mean {mean:.4} vs constant {SQISW_MEAN_TIME:.4} (P2 = {frac:.3})"
        );
    }
}
