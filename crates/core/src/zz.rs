//! `ZZ`-error immunity (paper §4.1, §6.4): the AshN scheme treats a parasitic
//! `ZZ` coupling as an *input* to compilation rather than an error source.
//!
//! This module quantifies the claim: a pulse compiled for the true `h̃`
//! realizes its class essentially exactly, while a pulse compiled assuming
//! `h̃ = 0` but executed on hardware with `h̃ ≠ 0` picks up coherent error
//! that grows with `h̃`.

use crate::hamiltonian::evolve;
use crate::scheme::{AshnPulse, AshnScheme, CompileError};
use crate::verify::class_fidelity;
use ashn_gates::kak::weyl_coordinates;
use ashn_gates::weyl::WeylPoint;

/// Outcome of the immunity comparison for one target class.
#[derive(Clone, Copy, Debug)]
pub struct ImmunityReport {
    /// The target class.
    pub target: WeylPoint,
    /// True hardware `ZZ` ratio.
    pub h_ratio: f64,
    /// Coordinate error of the `h̃`-aware pulse (should be ≈ 0).
    pub aware_error: f64,
    /// Coordinate error of the naive (`h̃ = 0`-compiled) pulse run on the
    /// true hardware.
    pub naive_error: f64,
    /// Best-local-correction class fidelity of the aware pulse.
    pub aware_fidelity: f64,
    /// Best-local-correction class fidelity of the naive pulse.
    pub naive_fidelity: f64,
}

/// Compares `h̃`-aware compilation against naive (`h̃ = 0`) compilation
/// executed on hardware with coupling ratio `h_ratio`.
///
/// # Errors
///
/// Propagates [`CompileError`] if either compilation fails.
pub fn immunity_report(target: WeylPoint, h_ratio: f64) -> Result<ImmunityReport, CompileError> {
    let aware: AshnPulse = AshnScheme::new(h_ratio).compile(target)?;
    let naive: AshnPulse = AshnScheme::new(0.0).compile(target)?;

    // The naive pulse is *executed* with the true Hamiltonian (h̃ ≠ 0).
    let naive_u = evolve(h_ratio, naive.drive, naive.tau);
    let naive_coords = weyl_coordinates(&naive_u);

    let aware_coords = weyl_coordinates(&aware.unitary());
    let t = target.canonicalize();
    Ok(ImmunityReport {
        target: t,
        h_ratio,
        aware_error: aware_coords.gate_dist(t),
        naive_error: naive_coords.gate_dist(t),
        aware_fidelity: class_fidelity(aware_coords, t),
        naive_fidelity: class_fidelity(naive_coords, t),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aware_compilation_is_exact_under_zz() {
        for h in [0.1, 0.3, 0.6] {
            for target in [WeylPoint::CNOT, WeylPoint::SWAP, WeylPoint::B] {
                let rep = immunity_report(target, h).expect("compiles");
                assert!(
                    rep.aware_error < 1e-7,
                    "aware error {} at h̃={h} target {target}",
                    rep.aware_error
                );
                assert!(rep.aware_fidelity > 1.0 - 1e-10);
            }
        }
    }

    #[test]
    fn naive_compilation_degrades_with_zz() {
        let rep_small = immunity_report(WeylPoint::CNOT, 0.05).unwrap();
        let rep_large = immunity_report(WeylPoint::CNOT, 0.5).unwrap();
        assert!(rep_small.naive_error > 1e-4, "ZZ must hurt the naive pulse");
        assert!(
            rep_large.naive_error > rep_small.naive_error,
            "error should grow with h̃: {} vs {}",
            rep_large.naive_error,
            rep_small.naive_error
        );
        assert!(rep_large.aware_fidelity > 1.0 - 1e-10);
    }

    #[test]
    fn undriven_classes_are_most_zz_sensitive() {
        // iSWAP needs no drive at all, so the naive pulse is fully exposed to
        // the parasitic ZZ (F ≈ 0.85 at h̃ = 0.5), while the strongly driven
        // [CNOT] pulse partially echoes it away (F ≈ 0.999).
        let iswap = immunity_report(WeylPoint::ISWAP, 0.5).unwrap();
        let cnot = immunity_report(WeylPoint::CNOT, 0.5).unwrap();
        assert!(iswap.naive_fidelity < 0.9, "F = {}", iswap.naive_fidelity);
        assert!(cnot.naive_fidelity > iswap.naive_fidelity);
        assert!(iswap.aware_fidelity > 1.0 - 1e-10);
    }

    #[test]
    fn zero_zz_is_neutral() {
        let rep = immunity_report(WeylPoint::B, 0.0).unwrap();
        assert!(rep.naive_error < 1e-7);
        assert!((rep.aware_fidelity - rep.naive_fidelity).abs() < 1e-9);
    }
}
