//! # ashn-core
//!
//! The AshN gate scheme (paper's primary contribution): a single physical
//! control scheme — resonant microwave drives with square envelopes on two
//! `XX+YY`-coupled qubits — that realizes **any** two-qubit gate up to
//! single-qubit corrections, in provably optimal time, with built-in
//! immunity to parasitic `ZZ` coupling.
//!
//! The main entry point is [`scheme::AshnScheme`]:
//!
//! ```
//! use ashn_core::scheme::AshnScheme;
//! use ashn_gates::weyl::WeylPoint;
//!
//! // A device with h = 0.2·g of parasitic ZZ coupling and a drive-strength
//! // cutoff r = 1.1 (paper §6.1's "physically feasible" setting... r must
//! // satisfy r ≤ (1−|h̃|)π/2).
//! let scheme = AshnScheme::with_cutoff(0.2, 1.1);
//! let pulse = scheme.compile(WeylPoint::B)?;
//! assert!(pulse.coordinate_error() < 1e-7);
//! # Ok::<(), ashn_core::scheme::CompileError>(())
//! ```
pub mod avg_time;
pub mod classes;
/// Deterministic fault injection (see [`ashn_math::fault`]): the registry
/// lives at the bottom of the crate graph so eigendecomposition sites can
/// share it, but `ashn_core::fault` is the canonical path.
pub mod fault {
    pub use ashn_math::fault::*;
}
pub mod ea;
pub mod hamiltonian;
pub mod nd;
pub mod par;
pub mod regions;
pub mod scheme;
pub mod verify;
pub mod zz;

pub use hamiltonian::{evolve, evolve4, hamiltonian, hamiltonian4, DriveParams};
pub use scheme::{AshnPulse, AshnScheme, CompileError, SubScheme};
pub mod families;
pub mod phase;
