//! Verification helpers: fidelities and realized-coordinate checks.

use ashn_gates::weyl::WeylPoint;
use ashn_math::{CMat, Complex};
use std::f64::consts::FRAC_PI_2;

/// Entanglement (process) fidelity `|tr(U†V)|²/d²` between two unitaries of
/// equal dimension.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn entanglement_fidelity(u: &CMat, v: &CMat) -> f64 {
    assert_eq!((u.rows(), u.cols()), (v.rows(), v.cols()));
    let d = u.rows() as f64;
    (u.adjoint().matmul(v).trace().abs() / d).powi(2)
}

/// Average gate fidelity `(d·F_e + 1)/(d + 1)` from the entanglement
/// fidelity `F_e`.
pub fn average_gate_fidelity(u: &CMat, v: &CMat) -> f64 {
    let d = u.rows() as f64;
    (d * entanglement_fidelity(u, v) + 1.0) / (d + 1.0)
}

fn theta_pattern(p: WeylPoint) -> [f64; 4] {
    [
        p.x - p.y + p.z,
        p.x + p.y - p.z,
        -p.x - p.y - p.z,
        -p.x + p.y + p.z,
    ]
}

/// The best entanglement fidelity achievable between the *classes* `a` and
/// `b` when optimal single-qubit corrections are applied:
///
/// `F = |Σⱼ exp(i(θⱼ(a) − θⱼ(b)))|²/16`
///
/// where `θ` is the magic-basis phase pattern of `CAN(x,y,z)`. The mirror
/// identification `(x,y,z) ~ (π/2−x, y, −z)` is taken into account.
pub fn class_fidelity(a: WeylPoint, b: WeylPoint) -> f64 {
    let fid = |p: WeylPoint, q: WeylPoint| {
        let ta = theta_pattern(p);
        let tb = theta_pattern(q);
        let s: Complex = (0..4).map(|j| Complex::cis(ta[j] - tb[j])).sum();
        (s.abs() / 4.0).powi(2)
    };
    let a = a.canonicalize();
    let b = b.canonicalize();
    let mirror = WeylPoint::new(FRAC_PI_2 - a.x, a.y, -a.z);
    fid(a, b).max(fid(mirror, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_gates::two::{cnot, iswap, swap};
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::FRAC_PI_4;

    #[test]
    fn fidelity_with_self_is_one() {
        let mut rng = StdRng::seed_from_u64(61);
        let u = haar_unitary(4, &mut rng);
        assert!((entanglement_fidelity(&u, &u) - 1.0).abs() < 1e-12);
        assert!((average_gate_fidelity(&u, &u) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_is_phase_invariant() {
        let mut rng = StdRng::seed_from_u64(62);
        let u = haar_unitary(4, &mut rng);
        let v = u.scale(Complex::cis(0.9));
        assert!((entanglement_fidelity(&u, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_cliffords_have_low_fidelity() {
        let f = entanglement_fidelity(&cnot(), &swap());
        assert!(f < 0.5, "F(CNOT,SWAP) = {f}");
        let f2 = entanglement_fidelity(&cnot(), &iswap());
        assert!(f2 < 0.5);
    }

    #[test]
    fn class_fidelity_of_same_class_is_one() {
        for p in [
            WeylPoint::CNOT,
            WeylPoint::SWAP,
            WeylPoint::new(0.3, 0.2, -0.1),
        ] {
            assert!((class_fidelity(p, p) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn class_fidelity_respects_mirror_identification() {
        let p = WeylPoint::new(FRAC_PI_4 - 1e-4, 0.3, -0.1);
        let q = WeylPoint::new(FRAC_PI_4, 0.3, 0.1);
        assert!(class_fidelity(p, q) > 0.999, "mirror face not glued");
    }

    #[test]
    fn class_fidelity_decreases_with_distance() {
        let base = WeylPoint::CNOT;
        let near = WeylPoint::new(FRAC_PI_4 - 0.01, 0.01, 0.0);
        let far = WeylPoint::SWAP;
        let f_near = class_fidelity(base, near);
        let f_far = class_fidelity(base, far);
        assert!(f_near > 0.99);
        assert!(f_far < f_near);
    }
}
