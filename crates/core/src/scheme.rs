//! The AshN compilation scheme (paper Algorithm 1): dispatches a target
//! Weyl-chamber class to the ND / EA+ / EA− / ND-EXT sub-scheme that attains
//! it in optimal time (or in extended time `π − 2x` under the cutoff `r`).

use crate::ea::{ashn_ea_search, EaError, EaSearch, EaVariant};
use crate::hamiltonian::{evolve, DriveParams};
use crate::nd::{ashn_nd, ashn_nd_ext};
use ashn_gates::cost::optimal_time_branches;
use ashn_gates::kak::weyl_coordinates;
use ashn_gates::weyl::WeylPoint;
use ashn_math::CMat;
use std::f64::consts::{FRAC_PI_2, PI};

/// Which sub-scheme produced a pulse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubScheme {
    /// No pulse at all (identity class).
    Identity,
    /// No detuning, optimal time `2x`.
    Nd,
    /// No detuning, extended time `π − 2x` (cutoff region).
    NdExt,
    /// Equal amplitude, `x+y+z` face.
    EaPlus,
    /// Equal amplitude, `x+y−z` face.
    EaMinus,
}

impl std::fmt::Display for SubScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SubScheme::Identity => "identity",
            SubScheme::Nd => "AshN-ND",
            SubScheme::NdExt => "AshN-ND-EXT",
            SubScheme::EaPlus => "AshN-EA+",
            SubScheme::EaMinus => "AshN-EA-",
        };
        write!(f, "{name}")
    }
}

/// A compiled AshN pulse: drive parameters realizing a target class.
///
/// All quantities are in normalised units (`g = 1`); use
/// [`AshnPulse::physical_time`] and [`AshnPulse::physical_amplitudes`] to
/// convert for a device with coupling `g`.
#[derive(Clone, Copy, Debug)]
pub struct AshnPulse {
    /// The canonical target class.
    pub target: WeylPoint,
    /// `ZZ` ratio `h̃ = h/g` the pulse was compiled for.
    pub h_ratio: f64,
    /// Evolution time in units of `1/g`.
    pub tau: f64,
    /// Drive parameters in units of `g`.
    pub drive: DriveParams,
    /// Sub-scheme used.
    pub scheme: SubScheme,
    /// Whether the mirror class `(π/2−x, y, −z)` was compiled instead.
    pub mirrored: bool,
}

impl AshnPulse {
    /// The unitary this pulse produces, `exp(−iHτ)`.
    pub fn unitary(&self) -> CMat {
        if self.tau == 0.0 {
            CMat::identity(4)
        } else {
            evolve(self.h_ratio, self.drive, self.tau)
        }
    }

    /// Largest drive strength `max(|A₁|/2, |A₂|/2, |δ|)` in units of `g`.
    pub fn max_strength(&self) -> f64 {
        self.drive.max_strength()
    }

    /// Gate time for a device with coupling `g` (same time unit as `1/g`).
    pub fn physical_time(&self, g: f64) -> f64 {
        self.tau / g
    }

    /// Physical `(A₁, A₂, 2δ)` for coupling `g` — the parameterisation used
    /// in the paper's Table 1.
    pub fn physical_amplitudes(&self, g: f64) -> (f64, f64, f64) {
        let (a1, a2) = self.drive.amplitudes();
        (a1 * g, a2 * g, 2.0 * self.drive.delta * g)
    }

    /// Coordinate error between the realized class and the target.
    pub fn coordinate_error(&self) -> f64 {
        weyl_coordinates(&self.unitary()).gate_dist(self.target)
    }
}

/// Compilation failure.
#[derive(Clone, Debug)]
pub struct CompileError {
    /// Target that failed.
    pub target: WeylPoint,
    /// Human-readable reason.
    pub reason: String,
    /// Whether the failure was a deadline expiry (so retry layers can stop
    /// escalating instead of burning a dead budget).
    pub timed_out: bool,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to compile {}: {}", self.target, self.reason)
    }
}

impl std::error::Error for CompileError {}

/// The AshN gate scheme for a device with `ZZ` ratio `h̃` and cutoff `r`.
///
/// # Examples
///
/// ```
/// use ashn_core::scheme::AshnScheme;
/// use ashn_gates::weyl::WeylPoint;
///
/// let scheme = AshnScheme::new(0.0);
/// let pulse = scheme.compile(WeylPoint::CNOT)?;
/// assert!((pulse.tau - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
/// assert!(pulse.coordinate_error() < 1e-7);
/// # Ok::<(), ashn_core::scheme::CompileError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct AshnScheme {
    h_ratio: f64,
    cutoff: f64,
    workers: usize,
}

impl AshnScheme {
    /// Scheme with no cutoff (`r = 0`): always optimal time, with unbounded
    /// drive strength near the identity.
    pub fn new(h_ratio: f64) -> Self {
        Self::with_cutoff(h_ratio, 0.0)
    }

    /// Scheme with cutoff `r`: classes whose optimal time is below `r` are
    /// realized with AshN-ND-EXT in time `π − 2x` instead, bounding the
    /// drive strength by roughly `π/r + 1/2` (paper Eq. 4.4).
    ///
    /// # Panics
    ///
    /// Panics when `|h̃| > 1`, or when `r` exceeds `(1−|h̃|)·π/2` (the range
    /// for which the four sub-schemes provably cover the chamber, §A.7).
    pub fn with_cutoff(h_ratio: f64, cutoff: f64) -> Self {
        assert!(h_ratio.abs() <= 1.0, "AshN requires |h| ≤ g");
        assert!(
            (0.0..=(1.0 - h_ratio.abs()) * FRAC_PI_2 + 1e-12).contains(&cutoff),
            "cutoff r must lie in [0, (1−|h̃|)π/2], got {cutoff}"
        );
        Self {
            h_ratio,
            cutoff,
            workers: 1,
        }
    }

    /// Fans the EA multistart over `workers` scoped threads (`0` = one per
    /// hardware thread; default 1 = serial). The compiled pulse is
    /// bit-identical for every worker count — the multistart winner is
    /// selected by stable `(error, seed-index)` order.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The `ZZ` ratio this scheme compiles for.
    pub fn h_ratio(&self) -> f64 {
        self.h_ratio
    }

    /// The cutoff `r`.
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// Worker threads used by the EA multistart (`0` = hardware default).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Gate time (units of `1/g`) that [`AshnScheme::compile`] will use for
    /// a target class — optimal time, or `π − 2x` inside the cutoff ball.
    pub fn gate_time(&self, target: WeylPoint) -> f64 {
        let p = target.canonicalize();
        let (t1, t2) = optimal_time_branches(self.h_ratio, p);
        let topt = t1.min(t2);
        if topt <= self.cutoff {
            PI - 2.0 * p.x
        } else {
            topt
        }
    }

    /// Drive-strength bound for this scheme's cutoff at `h̃ = 0`
    /// (paper Eq. 4.4): `π/r + 1/2`. Infinite when `r = 0`.
    pub fn strength_bound(&self) -> f64 {
        if self.cutoff == 0.0 {
            f64::INFINITY
        } else {
            PI / self.cutoff + 0.5
        }
    }

    /// Compiles a target class into an AshN pulse (paper Algorithm 1).
    ///
    /// The returned pulse is **verified**: its evolution canonicalizes to the
    /// requested class within `1e-7`.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] when no sub-scheme realizes the target — which
    /// indicates a numerical failure, since Theorems 4–6 guarantee coverage.
    pub fn compile(&self, target: WeylPoint) -> Result<AshnPulse, CompileError> {
        self.compile_with_search(
            target,
            &EaSearch {
                workers: self.workers,
                ..EaSearch::default()
            },
        )
    }

    /// [`AshnScheme::compile`] with explicit search effort: `search` sets
    /// the EA multistart fan-out, escalation rounds, jitter seed, and
    /// wall-clock deadline (see [`EaSearch`]; with default effort and
    /// `search.workers == self.workers` this is bit-identical to
    /// [`AshnScheme::compile`]).
    ///
    /// # Errors
    ///
    /// Same as [`AshnScheme::compile`]; a deadline expiry aborts the
    /// sub-scheme cascade immediately and sets [`CompileError::timed_out`].
    pub fn compile_with_search(
        &self,
        target: WeylPoint,
        search: &EaSearch,
    ) -> Result<AshnPulse, CompileError> {
        let p = target.canonicalize();
        let (t1, t2) = optimal_time_branches(self.h_ratio, p);
        let topt = t1.min(t2);

        if topt <= 1e-12 {
            return Ok(AshnPulse {
                target: p,
                h_ratio: self.h_ratio,
                tau: 0.0,
                drive: DriveParams::FREE,
                scheme: SubScheme::Identity,
                mirrored: false,
            });
        }

        // Cutoff region → extended-time ND.
        if topt <= self.cutoff {
            if let Ok(pulse) = self.try_nd_ext(p) {
                return Ok(pulse);
            }
            // Fall through to the optimal-time schemes on numerical failure.
        }

        // Mirror transform when the second branch is faster.
        let mirrored = t2 < t1 - 1e-12;
        let (x, y, z) = if mirrored {
            (FRAC_PI_2 - p.x, p.y, -p.z)
        } else {
            (p.x, p.y, p.z)
        };

        let t_nd = 2.0 * x;
        let t_plus = 2.0 * (x + y + z) / (2.0 - self.h_ratio);
        let t_minus = 2.0 * (x + y - z) / (2.0 + self.h_ratio);

        // Prefer the binding face; fall back through the others.
        let mut order: Vec<SubScheme> = Vec::new();
        if t_nd >= t_plus.max(t_minus) - 1e-12 {
            order.push(SubScheme::Nd);
        }
        if t_plus >= t_minus {
            order.extend([SubScheme::EaPlus, SubScheme::EaMinus, SubScheme::Nd]);
        } else {
            order.extend([SubScheme::EaMinus, SubScheme::EaPlus, SubScheme::Nd]);
        }
        order.push(SubScheme::NdExt);

        let mut last_reason = String::new();
        for scheme in order {
            let attempt = match scheme {
                SubScheme::Nd => ashn_nd(self.h_ratio, x, y, z)
                    .map(|(tau, d)| (tau, d, SubScheme::Nd))
                    .map_err(|e| e.to_string()),
                SubScheme::EaPlus => {
                    match ashn_ea_search(self.h_ratio, EaVariant::Plus, x, y, z, search) {
                        Ok((tau, d)) => Ok((tau, d, SubScheme::EaPlus)),
                        Err(EaError::DeadlineExceeded) => return Err(self.timed_out(p)),
                        Err(e) => Err(e.to_string()),
                    }
                }
                SubScheme::EaMinus => {
                    match ashn_ea_search(self.h_ratio, EaVariant::Minus, x, y, z, search) {
                        Ok((tau, d)) => Ok((tau, d, SubScheme::EaMinus)),
                        Err(EaError::DeadlineExceeded) => return Err(self.timed_out(p)),
                        Err(e) => Err(e.to_string()),
                    }
                }
                SubScheme::NdExt => {
                    return self.try_nd_ext(p).map_err(|e| CompileError {
                        target: p,
                        reason: format!("all sub-schemes failed; last: {e}"),
                        timed_out: false,
                    });
                }
                SubScheme::Identity => unreachable!(),
            };
            match attempt {
                Ok((tau, drive, scheme)) => {
                    let pulse = AshnPulse {
                        target: p,
                        h_ratio: self.h_ratio,
                        tau,
                        drive,
                        scheme,
                        mirrored,
                    };
                    if pulse.coordinate_error() < 1e-7 {
                        return Ok(pulse);
                    }
                    last_reason = format!(
                        "{scheme} produced coordinate error {:.2e}",
                        pulse.coordinate_error()
                    );
                }
                Err(e) => last_reason = e,
            }
        }
        Err(CompileError {
            target: p,
            reason: last_reason,
            timed_out: false,
        })
    }

    fn timed_out(&self, p: WeylPoint) -> CompileError {
        CompileError {
            target: p,
            reason: EaError::DeadlineExceeded.to_string(),
            timed_out: true,
        }
    }

    fn try_nd_ext(&self, p: WeylPoint) -> Result<AshnPulse, String> {
        let (tau, drive) = ashn_nd_ext(self.h_ratio, p.x, p.y, p.z).map_err(|e| e.to_string())?;
        let pulse = AshnPulse {
            target: p,
            h_ratio: self.h_ratio,
            tau,
            drive,
            scheme: SubScheme::NdExt,
            mirrored: false,
        };
        let err = pulse.coordinate_error();
        if err < 1e-7 {
            Ok(pulse)
        } else {
            Err(format!("ND-EXT coordinate error {err:.2e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_gates::cost::optimal_time;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::f64::consts::FRAC_PI_4;

    fn random_chamber_point(rng: &mut StdRng) -> WeylPoint {
        loop {
            let x = rng.gen::<f64>() * FRAC_PI_4;
            let y = rng.gen::<f64>() * FRAC_PI_4;
            let z = (2.0 * rng.gen::<f64>() - 1.0) * FRAC_PI_4;
            let p = WeylPoint::new(x, y, z);
            if p.in_chamber(0.0) && p.canonicalize().approx_eq(p, 1e-12) {
                return p;
            }
        }
    }

    #[test]
    fn named_classes_compile_at_optimal_time() {
        let scheme = AshnScheme::new(0.0);
        for p in [
            WeylPoint::CNOT,
            WeylPoint::ISWAP,
            WeylPoint::SWAP,
            WeylPoint::SQISW,
            WeylPoint::B,
        ] {
            let pulse = scheme.compile(p).expect("compiles");
            assert!(
                (pulse.tau - optimal_time(0.0, p)).abs() < 1e-9,
                "{p}: τ = {} vs optimal {}",
                pulse.tau,
                optimal_time(0.0, p)
            );
            assert!(pulse.coordinate_error() < 1e-7);
        }
    }

    #[test]
    fn random_targets_compile_at_optimal_time_h0() {
        let scheme = AshnScheme::new(0.0);
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..25 {
            let p = random_chamber_point(&mut rng);
            let pulse = scheme.compile(p).unwrap_or_else(|e| panic!("{e}"));
            assert!(
                (pulse.tau - optimal_time(0.0, p)).abs() < 1e-9,
                "{p}: τ={} expected {}",
                pulse.tau,
                optimal_time(0.0, p)
            );
        }
    }

    #[test]
    fn random_targets_compile_with_zz() {
        let mut rng = StdRng::seed_from_u64(72);
        for &h in &[0.2, 0.4, 0.8, -0.3] {
            let scheme = AshnScheme::new(h);
            for _ in 0..10 {
                let p = random_chamber_point(&mut rng);
                let pulse = scheme.compile(p).unwrap_or_else(|e| panic!("h={h}: {e}"));
                assert!(
                    (pulse.tau - optimal_time(h, p)).abs() < 1e-9,
                    "h={h} {p}: τ={} expected {}",
                    pulse.tau,
                    optimal_time(h, p)
                );
            }
        }
    }

    #[test]
    fn theorem2_structure_one_drive_vanishes() {
        // Ω₁·Ω₂·δ = 0 for every compiled pulse (paper Theorem 2).
        let scheme = AshnScheme::new(0.0);
        let mut rng = StdRng::seed_from_u64(73);
        for _ in 0..15 {
            let p = random_chamber_point(&mut rng);
            let d = scheme.compile(p).unwrap().drive;
            let product = d.omega1 * d.omega2 * d.delta;
            assert!(product.abs() < 1e-12, "Ω₁Ω₂δ = {product} for target {p}");
        }
    }

    #[test]
    fn cutoff_switches_to_extended_time() {
        let scheme = AshnScheme::with_cutoff(0.0, 1.1);
        // A class near the identity has tiny optimal time → ND-EXT.
        let p = WeylPoint::new(0.05, 0.02, 0.01);
        let pulse = scheme.compile(p).expect("compiles");
        assert_eq!(pulse.scheme, SubScheme::NdExt);
        assert!((pulse.tau - (PI - 2.0 * p.x)).abs() < 1e-12);
        // Strength respects the Eq. 4.4 bound.
        assert!(pulse.max_strength() <= scheme.strength_bound() + 1e-9);
    }

    #[test]
    fn cutoff_leaves_large_classes_optimal() {
        let scheme = AshnScheme::with_cutoff(0.0, 1.1);
        let pulse = scheme.compile(WeylPoint::SWAP).expect("compiles");
        assert!((pulse.tau - 3.0 * FRAC_PI_4).abs() < 1e-9);
        assert_ne!(pulse.scheme, SubScheme::NdExt);
    }

    #[test]
    fn strength_bound_eq_4_4_across_chamber() {
        let r = 0.9;
        let scheme = AshnScheme::with_cutoff(0.0, r);
        let bound = scheme.strength_bound();
        let mut rng = StdRng::seed_from_u64(74);
        for _ in 0..20 {
            let p = random_chamber_point(&mut rng);
            let pulse = scheme.compile(p).unwrap();
            assert!(
                pulse.max_strength() <= bound + 1e-6,
                "{p}: strength {} exceeds bound {bound}",
                pulse.max_strength()
            );
        }
    }

    #[test]
    fn identity_compiles_to_empty_pulse() {
        let pulse = AshnScheme::new(0.0).compile(WeylPoint::IDENTITY).unwrap();
        assert_eq!(pulse.scheme, SubScheme::Identity);
        assert_eq!(pulse.tau, 0.0);
        assert!(pulse.unitary().dist(&CMat::identity(4)) < 1e-12);
    }

    #[test]
    fn gate_time_matches_compiled_time() {
        let scheme = AshnScheme::with_cutoff(0.0, 0.7);
        let mut rng = StdRng::seed_from_u64(75);
        for _ in 0..10 {
            let p = random_chamber_point(&mut rng);
            let pulse = scheme.compile(p).unwrap();
            assert!((scheme.gate_time(p) - pulse.tau).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn cutoff_beyond_theorem_range_is_rejected() {
        AshnScheme::with_cutoff(0.5, 1.5);
    }
}
