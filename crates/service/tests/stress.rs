//! Concurrent stress: many threads hammer one [`ShardedCache`] through
//! [`CachedBasis`]. Invariants under contention:
//!
//! - aggregated counters balance: `exact_hits + class_hits + misses` ==
//!   total lookups issued across every thread;
//! - every circuit served — fresh, exact-hit, or re-dressed class-hit —
//!   realizes its target at machine precision (1e-12, enabled by the
//!   machine-precision [`common::ExactBasis`]);
//! - occupancy never exceeds the configured capacity.

mod common;

use ashn_ir::Basis;
use ashn_math::randmat::haar_unitary;
use ashn_math::CMat;
use ashn_service::ShardedCache;
use ashn_synth::cache::CachedBasis;
use common::ExactBasis;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn sharded_cache_survives_concurrent_hammering() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 6;

    let mut rng = StdRng::seed_from_u64(0x5ca1e);
    // 12 base classes; each thread works a shuffled mix of exact repeats
    // and same-class dressings, so exact hits, class hits, and misses all
    // occur concurrently.
    let bases: Vec<CMat> = (0..12).map(|_| haar_unitary(4, &mut rng)).collect();
    let mut pool: Vec<CMat> = bases.clone();
    for base in &bases {
        pool.push(common::dressed(base, &mut rng));
        pool.push(common::dressed(base, &mut rng));
    }

    let cache = ShardedCache::with_config(4, 256);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = cache.clone();
            let pool = &pool;
            scope.spawn(move || {
                let cached = CachedBasis::with_store(ExactBasis, cache);
                for round in 0..ROUNDS {
                    for k in 0..pool.len() {
                        // Stagger the walk per thread/round so threads
                        // collide on different keys at different times.
                        let target = &pool[(k + t * 7 + round * 13) % pool.len()];
                        let circuit = cached.synthesize(target).expect("exact synthesis");
                        assert!(
                            circuit.error(target) < 1e-12,
                            "served circuit drifted to {:.3e}",
                            circuit.error(target)
                        );
                    }
                }
            });
        }
    });

    let stats = cache.stats();
    let lookups = (THREADS * ROUNDS * pool.len()) as u64;
    assert_eq!(
        stats.exact_hits + stats.class_hits + stats.misses,
        lookups,
        "counter imbalance: {stats:?}"
    );
    // Every class was missed at least once and hit many times.
    assert!(stats.misses >= bases.len() as u64);
    assert!(stats.exact_hits + stats.class_hits > lookups / 2);
    assert!(cache.len() <= 256);
}
