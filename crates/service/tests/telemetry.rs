//! Telemetry contract of the batch service: the registry is the one
//! accounting path (struct stats are views over it, so they can never
//! drift), the journal is a deterministic flight recorder (zero-fault
//! runs produce identical masked journals at any worker count), and the
//! exporters round-trip the same values as the legacy stats structs.
//!
//! Every test installs a fresh [`Registry`] on its own thread, so the
//! suite is immune to test-parallelism and to the process-global default.

mod common;

use ashn_gates::two::{cnot, cz, iswap, swap};
use ashn_ir::{Basis, BasisMetadata, Circuit, SynthError};
use ashn_math::randmat::haar_unitary;
use ashn_math::CMat;
use ashn_service::{CompileService, ShardedCache};
use ashn_synth::basis::CzBasis;
#[cfg(feature = "telemetry")]
use ashn_synth::cache::CacheStats;
use ashn_telemetry::{install, Registry};
use common::{dressed, ExactBasis};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A CZ-identity basis (so the closed-form rule tier applies) whose
/// numeric path deterministically fails for some matrices: entry (0,0)
/// of the class representative decides, so the same batch always
/// degrades the same classes — mixed rule/warm/cold/degraded traffic
/// without the fault-injection feature.
struct FlakyCz;

impl Basis for FlakyCz {
    fn name(&self) -> String {
        CzBasis.name()
    }

    fn cache_params(&self) -> String {
        CzBasis.cache_params()
    }

    fn synthesize(&self, u: &CMat) -> Result<Circuit, SynthError> {
        if u[(0, 0)].norm_sqr() < 0.0625 {
            return Err(SynthError::Convergence {
                basis: self.name(),
                detail: "deterministic test failure".into(),
            });
        }
        CzBasis.synthesize(u)
    }

    fn expected_entanglers(&self, u: &CMat) -> usize {
        CzBasis.expected_entanglers(u)
    }

    fn metadata(&self) -> Option<BasisMetadata> {
        CzBasis.metadata()
    }
}

/// Rule-covered, warm-cacheable, and Haar traffic in one pool.
fn mixed_pool(seed: u64) -> Vec<CMat> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = vec![cnot(), cz(), swap(), iswap(), dressed(&cnot(), &mut rng)];
    let bases: Vec<CMat> = (0..8).map(|_| haar_unitary(4, &mut rng)).collect();
    for base in &bases {
        pool.push(base.clone());
        pool.push(dressed(base, &mut rng));
        pool.push(base.clone()); // exact repeat
    }
    pool
}

/// Satellite: stats-drift regression. ServiceStats, CacheStats, and the
/// registry are updated on one path, so under mixed rule/cache/degraded
/// traffic the tier sums must reconcile exactly:
/// `hits + rule_hits + misses == lookups` on both the struct and the
/// registry, and the two must agree counter for counter.
#[test]
fn mixed_traffic_accounting_never_drifts() {
    let reg = Registry::with_journal_capacity(0);
    let _guard = install(&reg);
    let service = CompileService::with_cache(FlakyCz, ShardedCache::new()).workers(2);

    // Two batches: the second re-serves batch-one classes warm, so exact
    // hits, class hits, rule hits, cold serves, and degraded serves all
    // occur before we reconcile.
    let mut totals = Vec::new();
    for seed in [0xd41f_u64, 0xd420] {
        let batch = service.synthesize_batch(&mixed_pool(seed));
        for circuit in &batch.circuits {
            assert!(circuit.is_ok(), "every request must resolve");
        }
        totals.push(batch.stats);
    }
    let rule_hits: u64 = totals.iter().map(|s| s.rule_hits).sum();
    let degraded: u64 = totals.iter().map(|s| s.degraded).sum();
    assert!(rule_hits > 0, "pool must exercise the rule tier");
    assert!(degraded > 0, "pool must exercise the degraded tier");
    assert!(
        totals.iter().any(|s| s.exact_hits > 0) && totals.iter().any(|s| s.class_hits > 0),
        "pool must exercise warm serves"
    );

    // Struct-level identity (the legacy invariant).
    let cache = service.cache().stats();
    assert_eq!(
        cache.hits() + cache.misses,
        cache.lookups(),
        "hits + rule_hits + misses must equal lookups"
    );

    // Registry-level identity, and struct == registry: one accounting path.
    let snap = service.telemetry_snapshot();
    if cfg!(feature = "telemetry") {
        let c = |name: &str| snap.counter(name).unwrap_or(0);
        assert_eq!(
            c("cache.lookup.exact")
                + c("cache.lookup.class")
                + c("cache.lookup.rule")
                + c("cache.lookup.miss"),
            c("cache.lookups"),
            "registry lookup tiers must sum to the lookup total"
        );
        assert_eq!(c("cache.lookups"), cache.lookups());
        assert_eq!(c("cache.lookup.exact"), cache.exact_hits);
        assert_eq!(c("cache.lookup.class"), cache.class_hits);
        assert_eq!(c("cache.lookup.rule"), cache.rule_hits);
        assert_eq!(c("cache.lookup.miss"), cache.misses);

        // Serve-tier mirrors reconcile with the summed per-batch stats.
        let sum = |f: fn(&ashn_service::ServiceStats) -> u64| totals.iter().map(f).sum::<u64>();
        assert_eq!(c("service.serve.exact"), sum(|s| s.exact_hits));
        assert_eq!(c("service.serve.redressed"), sum(|s| s.class_hits));
        assert_eq!(c("service.serve.rule"), sum(|s| s.rule_hits));
        assert_eq!(c("service.serve.cold"), sum(|s| s.cold_serves));
        assert_eq!(c("service.serve.degraded"), sum(|s| s.degraded));
        assert_eq!(c("service.serve.failed"), sum(|s| s.failed));
    } else {
        assert!(snap.counters.is_empty(), "feature off: no counters");
    }
}

/// Satellite: the journal is a replayable flight recorder. Zero-fault
/// runs of the same batch produce byte-identical masked journals at 1, 4,
/// and 16 workers — events are emitted only from the coordinator with
/// count-valued fields, so worker scheduling cannot leak in.
#[test]
fn zero_fault_journal_is_identical_across_worker_counts() {
    let targets = mixed_pool(0x70a1);
    let mut journals: Vec<Vec<String>> = Vec::new();
    for workers in [1usize, 4, 16] {
        let reg = Registry::with_journal_capacity(1024);
        let _guard = install(&reg);
        let service = CompileService::with_cache(ExactBasis, ShardedCache::new()).workers(workers);
        let batch = service.synthesize_batch(&targets);
        assert_eq!(batch.stats.worker_panics, 0);
        assert_eq!(batch.stats.degraded, 0);
        journals.push(
            reg.journal_snapshot()
                .iter()
                .map(|event| event.masked_line())
                .collect(),
        );
    }
    #[cfg(feature = "telemetry")]
    assert!(
        !journals[0].is_empty(),
        "a batch must leave a journal trail"
    );
    assert_eq!(journals[0], journals[1], "1 worker vs 4 workers diverged");
    assert_eq!(journals[0], journals[2], "1 worker vs 16 workers diverged");
}

/// Acceptance: the exporters and the legacy stats structs are views over
/// the same registry — JSON and Prometheus renderings carry exactly the
/// values the structs report, and `CacheStats::from_telemetry` round-trips
/// the lookup traffic.
#[cfg(feature = "telemetry")]
#[test]
fn exporters_round_trip_the_legacy_stats() {
    let reg = Registry::with_journal_capacity(64);
    let _guard = install(&reg);
    let service = CompileService::with_cache(CzBasis, ShardedCache::new());
    let batch = service.synthesize_batch(&mixed_pool(0xe4b0));
    let stats = batch.stats;
    let cache = service.cache().stats();
    let snap = service.telemetry_snapshot();

    // The registry view of lookup traffic IS the cache's own accounting.
    let view = CacheStats::from_telemetry(&snap);
    assert_eq!(view.exact_hits, cache.exact_hits);
    assert_eq!(view.class_hits, cache.class_hits);
    assert_eq!(view.rule_hits, cache.rule_hits);
    assert_eq!(view.misses, cache.misses);
    assert_eq!(view.lookups(), cache.lookups());

    // Both exporters carry the identical values, verbatim.
    let json = snap.render_json();
    let prom = snap.render_prometheus();
    for (name, value) in [
        ("cache.lookups", cache.lookups()),
        ("cache.lookup.rule", cache.rule_hits),
        ("service.serve.rule", stats.rule_hits),
        ("service.serve.cold", stats.cold_serves),
        ("service.requests", stats.requests as u64),
        ("service.batches", 1),
    ] {
        assert_eq!(snap.counter(name), Some(value), "registry value for {name}");
        assert!(
            json.contains(&format!("\"{name}\": {value}")),
            "JSON must carry {name} = {value}"
        );
        let prom_line = format!("ashn_{} {value}", name.replace('.', "_"));
        assert!(
            prom.contains(&prom_line),
            "Prometheus must carry `{prom_line}`"
        );
    }

    // The batch span landed in a histogram both exporters expose.
    let h = snap
        .histogram("service.batch")
        .expect("batch span recorded");
    assert_eq!(h.count, 1);
    assert!(json.contains("\"service.batch\""));
    assert!(prom.contains("ashn_service_batch_count 1"));
    assert!(prom.contains("ashn_service_batch_bucket{le=\"+Inf\"} 1"));

    // And the human-readable report surfaces the same snapshot.
    let report = service.telemetry_report();
    assert!(report.contains("cache.lookups"));
    assert!(report.contains("service.batch"));
}

/// Feature off: the service's telemetry surface stays callable and inert.
#[cfg(not(feature = "telemetry"))]
#[test]
fn feature_off_service_telemetry_is_inert() {
    let service = CompileService::with_cache(CzBasis, ShardedCache::new());
    let batch = service.synthesize_batch(&[cnot(), iswap()]);
    assert_eq!(batch.stats.rule_hits, 2, "accounting structs still work");
    let snap = service.telemetry_snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.histograms.is_empty());
    assert_eq!(snap.journal_len, 0);
    assert!(service.telemetry_report().contains("telemetry snapshot"));
}
