//! The closed-form retargeting rule tier inside the batch service: rule
//! serves never pay a numeric synthesis or a cache miss, rule fragments
//! live under pair keys only, and rule-heavy batches stay bit-identical
//! at every worker count.

mod common;

use ashn_gates::kak::weyl_coordinates;
use ashn_gates::two::{cnot, cz, iswap, swap};
use ashn_ir::{Basis, BasisMetadata, Circuit, Instruction, SynthError};
use ashn_math::randmat::haar_unitary;
use ashn_math::CMat;
use ashn_service::{CompileRequest, CompileService, ShardedCache};
use ashn_synth::basis::CzBasis;
use ashn_synth::cache::{ClassKey, ClassStore};
use common::{dressed, fingerprint};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A CZ basis that counts every numeric synthesis call. Its identity
/// (name + params) matches [`CzBasis`], so the standard rule table's CZ
/// rules apply to it — any rule-covered target that still reaches
/// `synthesize` is a rule-tier bypass, and the counter catches it.
#[derive(Clone)]
struct CountingCz(Arc<AtomicUsize>);

impl Basis for CountingCz {
    fn name(&self) -> String {
        CzBasis.name()
    }

    fn cache_params(&self) -> String {
        CzBasis.cache_params()
    }

    fn synthesize(&self, u: &CMat) -> Result<Circuit, SynthError> {
        self.0.fetch_add(1, Ordering::SeqCst);
        CzBasis.synthesize(u)
    }

    fn expected_entanglers(&self, u: &CMat) -> usize {
        CzBasis.expected_entanglers(u)
    }

    fn metadata(&self) -> Option<BasisMetadata> {
        CzBasis.metadata()
    }
}

/// Known-gate + dressed-known-class traffic: every target the standard
/// CZ rules cover.
fn rule_covered_pool(seed: u64) -> Vec<CMat> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        cnot(),
        cnot(), // exact repeat
        cz(),
        ashn_gates::two::ecr(),
        swap(),
        iswap(),
        dressed(&cnot(), &mut rng),
        dressed(&iswap(), &mut rng),
        dressed(&swap(), &mut rng),
    ]
}

#[test]
fn rule_serves_never_increment_misses_nor_run_the_ea() {
    let calls = Arc::new(AtomicUsize::new(0));
    let service = CompileService::with_cache(CountingCz(calls.clone()), ShardedCache::new());
    let targets = rule_covered_pool(0x2e7a);
    let batch = service.synthesize_batch(&targets);

    for (target, circuit) in targets.iter().zip(&batch.circuits) {
        let circuit = circuit.as_ref().expect("rule serve");
        assert!(
            circuit.error(target) < 1e-12,
            "rule serve error {:.2e}",
            circuit.error(target)
        );
    }
    assert_eq!(
        calls.load(Ordering::SeqCst),
        0,
        "a rule-covered target reached the numeric synthesizer"
    );
    assert_eq!(batch.stats.rule_hits, targets.len() as u64);
    // CNOT/CZ/ECR collapse to one Weyl class; iSWAP and SWAP get one each.
    assert_eq!(batch.stats.rule_classes, 3);
    assert_eq!(
        (
            batch.stats.exact_hits,
            batch.stats.class_hits,
            batch.stats.cold_serves,
            batch.stats.cold_classes,
        ),
        (0, 0, 0, 0)
    );
    assert!((batch.stats.hit_rate() - 1.0).abs() < 1e-15);

    let cache = service.cache().stats();
    assert_eq!(cache.rule_hits, targets.len() as u64);
    assert_eq!(
        (cache.exact_hits, cache.class_hits, cache.misses),
        (0, 0, 0),
        "a rule serve must never count as a numeric hit or miss"
    );
}

#[test]
fn mixed_batch_splits_between_rule_tier_and_numeric_path() {
    let calls = Arc::new(AtomicUsize::new(0));
    let service = CompileService::with_cache(CountingCz(calls.clone()), ShardedCache::new());
    let mut rng = StdRng::seed_from_u64(0x51ab);
    let mut targets = rule_covered_pool(0x51ab);
    let rule_covered = targets.len();
    let haar: Vec<CMat> = (0..3).map(|_| haar_unitary(4, &mut rng)).collect();
    targets.extend(haar.iter().cloned());

    let batch = service.synthesize_batch(&targets);
    for (target, circuit) in targets.iter().zip(&batch.circuits) {
        assert!(circuit.as_ref().expect("serve").error(target) < 1e-5);
    }
    assert_eq!(batch.stats.rule_hits, rule_covered as u64);
    assert_eq!(batch.stats.cold_serves, haar.len() as u64);
    assert_eq!(
        calls.load(Ordering::SeqCst),
        haar.len(),
        "exactly the haar classes pay a numeric synthesis"
    );
    let expected = (rule_covered as f64) / (targets.len() as f64);
    assert!((batch.stats.hit_rate() - expected).abs() < 1e-15);
}

#[test]
fn rule_fragments_cache_under_pair_keys_never_numeric_keys() {
    let service = CompileService::with_cache(CzBasis, ShardedCache::new());
    let batch = service.synthesize_batch(&[cnot(), iswap()]);
    assert_eq!(batch.stats.rule_hits, 2);

    // The numeric class keys for those targets must stay vacant: a later
    // numeric lookup can never be served a rule fragment by accident.
    for target in [cnot(), iswap()] {
        let coords = weyl_coordinates(&target).canonicalize();
        let numeric = ClassKey::new(&CzBasis, coords, false);
        assert!(
            service.cache().fetch(&numeric).is_none(),
            "rule fragment leaked into numeric key {numeric:?}"
        );
    }
    // But the fragments ARE shared: a second batch re-serves them from the
    // pair-keyed entries without growing the cache.
    let len = service.cache().len();
    let again = service.synthesize_batch(&[cnot(), iswap()]);
    assert_eq!(again.stats.rule_hits, 2);
    assert_eq!(service.cache().len(), len);
}

#[test]
fn rule_heavy_batch_is_bit_identical_across_worker_counts() {
    let mut rng = StdRng::seed_from_u64(0xb175);
    let mut targets = rule_covered_pool(0xb175);
    targets.push(haar_unitary(4, &mut rng));
    let mut runs: Vec<Vec<Vec<u64>>> = Vec::new();
    for workers in [1usize, 4, 16] {
        let service = CompileService::with_cache(CzBasis, ShardedCache::new()).workers(workers);
        let batch = service.synthesize_batch(&targets);
        assert_eq!(batch.stats.rule_hits, (targets.len() - 1) as u64);
        runs.push(
            batch
                .circuits
                .iter()
                .map(|c| fingerprint(c.as_ref().expect("serve")))
                .collect(),
        );
    }
    assert_eq!(runs[0], runs[1], "1 worker vs 4 workers diverged");
    assert_eq!(runs[0], runs[2], "1 worker vs 16 workers diverged");
}

#[test]
fn disarming_the_rule_tier_restores_the_numeric_path() {
    let calls = Arc::new(AtomicUsize::new(0));
    let service =
        CompileService::with_cache(CountingCz(calls.clone()), ShardedCache::new()).rules(None);
    let batch = service.synthesize_batch(&[cnot(), iswap()]);
    assert_eq!(batch.stats.rule_hits, 0);
    assert_eq!(batch.stats.cold_serves, 2);
    assert_eq!(calls.load(Ordering::SeqCst), 2);
    for (target, circuit) in [cnot(), iswap()].iter().zip(&batch.circuits) {
        assert!(circuit.as_ref().expect("serve").error(target) < 1e-9);
    }
}

#[test]
fn compile_batch_reports_rule_hits_through_the_router() {
    let service = CompileService::with_cache(CzBasis, ShardedCache::new());
    let mut circuit = Circuit::new(4);
    for (a, b) in [(0usize, 1usize), (1, 2), (2, 3), (0, 3)] {
        circuit
            .try_push(Instruction::new(vec![a, b], cnot(), "cx"))
            .expect("push");
    }
    let batch = service.compile_batch(&[CompileRequest::new(circuit.clone())]);
    let result = batch.results[0].as_ref().expect("compile");
    assert_eq!(batch.stats.rule_hits, 4);
    assert_eq!(batch.stats.cold_serves, 0);
    // Routed circuit realizes the logical circuit on the final layout.
    assert!(result.circuit.n_qubits() >= 4);
}
