//! Shared fixtures for the service integration tests.

// Each integration-test binary uses a different subset of these helpers.
#![allow(dead_code)]

use ashn_ir::{Basis, Circuit, Instruction, SynthError};
use ashn_math::randmat::haar_unitary;
use ashn_math::CMat;
use rand::rngs::StdRng;

/// A machine-precision basis: "synthesis" emits the target verbatim as a
/// single entangler. Cache hits served from it must therefore verify at
/// 1e-12 — any redressing error is the cache's fault, not the basis's.
pub struct ExactBasis;

impl Basis for ExactBasis {
    fn name(&self) -> String {
        "Exact".into()
    }

    fn cache_params(&self) -> String {
        "v=1".into()
    }

    fn synthesize(&self, u: &CMat) -> Result<Circuit, SynthError> {
        let mut circuit = Circuit::new(2);
        let mut inst = Instruction::new(vec![0, 1], u.clone(), "U");
        inst.duration = 1.0;
        circuit.try_push(inst).map_err(SynthError::Ir)?;
        Ok(circuit)
    }

    fn expected_entanglers(&self, _u: &CMat) -> usize {
        1
    }
}

/// `(a ⊗ b) · base · (c ⊗ d)` with Haar-random 1q dressings: same Weyl
/// class as `base`, different unitary — a class hit that is not an exact
/// repeat.
pub fn dressed(base: &CMat, rng: &mut StdRng) -> CMat {
    let pre = haar_unitary(2, rng).kron(&haar_unitary(2, rng));
    let post = haar_unitary(2, rng).kron(&haar_unitary(2, rng));
    &(&post * base) * &pre
}

/// Bit-exact fingerprint of a circuit: every `f64` by its IEEE-754 bits,
/// so two circuits compare equal iff they are the same to the last ulp.
pub fn fingerprint(circuit: &Circuit) -> Vec<u64> {
    let mut bits = vec![
        circuit.n_qubits() as u64,
        circuit.phase.re.to_bits(),
        circuit.phase.im.to_bits(),
    ];
    for inst in &circuit.instructions {
        bits.push(inst.qubits.len() as u64);
        bits.extend(inst.qubits.iter().map(|&q| q as u64));
        bits.push(inst.duration.to_bits());
        for i in 0..inst.matrix.rows() {
            for j in 0..inst.matrix.cols() {
                bits.push(inst.matrix[(i, j)].re.to_bits());
                bits.push(inst.matrix[(i, j)].im.to_bits());
            }
        }
    }
    bits
}
