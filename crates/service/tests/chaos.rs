//! Chaos suite: drives the compile service through deterministic injected
//! faults — synthesis failures, worker panics, cache corruption, EA
//! non-convergence, persistence I/O errors — and checks the graceful-
//! degradation contract: every request resolves, degraded serves are
//! flagged, every returned circuit verifies, and the process never aborts.
//!
//! Compiled only under `--features fault-injection`; the failpoint registry
//! is process-global, so every test here holds `fault::exclusive()` for its
//! whole body and `reset()`s when done.
#![cfg(feature = "fault-injection")]

mod common;

use ashn_ir::{Basis, Circuit, Instruction, SynthError};
use ashn_math::fault::{self, FaultMode};
use ashn_math::randmat::haar_unitary;
use ashn_math::CMat;
use ashn_service::{CompileRequest, CompileService, Resilience, RetryPolicy, ShardedCache};
use ashn_synth::basis::AshnBasis;
use common::{dressed, fingerprint, ExactBasis};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A machine-precision basis with an injectable failure: the
/// `chaos::basis::synthesize` failpoint makes cold synthesis fail on
/// demand, so retry/fallback paths can be driven without a fragile
/// numerical setup. When it does synthesize, it is exact (1e-12), so any
/// verification failure downstream is the service's fault.
struct FlakyExact;

impl Basis for FlakyExact {
    fn name(&self) -> String {
        "FlakyExact".into()
    }

    fn cache_params(&self) -> String {
        "v=1".into()
    }

    fn synthesize(&self, u: &CMat) -> Result<Circuit, SynthError> {
        if ashn_math::failpoint!("chaos::basis::synthesize") {
            return Err(SynthError::Convergence {
                basis: self.name(),
                detail: "injected fault: chaos::basis::synthesize".into(),
            });
        }
        ExactBasis.synthesize(u)
    }

    fn expected_entanglers(&self, u: &CMat) -> usize {
        ExactBasis.expected_entanglers(u)
    }
}

/// ≥200 random SU(4) targets with batch-internal structure: Haar bases plus
/// dressed same-class variants, so exact hits, class hits, and cold serves
/// all occur under fire.
fn chaos_targets(seed: u64) -> Vec<CMat> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bases: Vec<CMat> = (0..60).map(|_| haar_unitary(4, &mut rng)).collect();
    let mut pool = Vec::new();
    for base in &bases {
        pool.push(base.clone());
        pool.push(dressed(base, &mut rng));
        pool.push(dressed(base, &mut rng));
        pool.push(base.clone()); // exact repeat
    }
    assert!(pool.len() >= 200);
    pool
}

fn chaos_resilience() -> Resilience {
    Resilience {
        retry: RetryPolicy::default()
            .with_attempts(3)
            .with_retry_seed(0x5eed),
        verify_tol: Some(1e-9),
    }
}

/// The acceptance-criteria drill: synthesis failures, worker panics, and
/// cache corruption injected at 10–30% rates over 240 targets. Every
/// request must resolve to a verified circuit, with degradation flagged —
/// and the batch must not abort.
#[test]
fn chaos_batch_survives_mixed_fault_rates() {
    let _guard = fault::exclusive();
    fault::reset();
    fault::configure(
        "chaos::basis::synthesize",
        FaultMode::Probability { p: 0.3, seed: 1 },
    );
    fault::configure(
        "core::par::task",
        FaultMode::Probability { p: 0.15, seed: 2 },
    );
    fault::configure(
        "service::cache::serve",
        FaultMode::Probability { p: 0.1, seed: 3 },
    );

    let targets = chaos_targets(0xc4a05);
    let service = CompileService::with_cache(FlakyExact, ShardedCache::new())
        .workers(4)
        .resilience(chaos_resilience());
    let batch = service.synthesize_batch(&targets);

    // Chaos actually happened.
    assert!(fault::fires("chaos::basis::synthesize") > 0);
    assert!(fault::fires("core::par::task") > 0);
    assert!(fault::fires("service::cache::serve") > 0);
    fault::reset();

    assert_eq!(batch.circuits.len(), targets.len());
    assert_eq!(batch.degraded.len(), targets.len());
    let mut degraded = 0u64;
    for (i, (target, circuit)) in targets.iter().zip(&batch.circuits).enumerate() {
        let circuit = circuit
            .as_ref()
            .unwrap_or_else(|e| panic!("request {i} failed under chaos: {e}"));
        let err = circuit.error(target);
        assert!(
            err <= 1e-9,
            "request {i} served a circuit off by {err:.2e} (degraded: {})",
            batch.degraded[i]
        );
        degraded += u64::from(batch.degraded[i]);
    }
    assert_eq!(
        batch.stats.degraded, degraded,
        "degraded flags mismatch stats"
    );
    // With a 30% per-attempt synthesis fault rate over 60 classes, retries
    // and at least some quarantines must have been paid.
    assert!(batch.stats.retries > 0, "no retries recorded");
    assert!(
        batch.stats.quarantined > 0,
        "serve-poisoning never quarantined"
    );
    assert!(batch.stats.worker_panics > 0, "no worker panics recorded");
}

/// Same faults, `compile_batch` surface: whole circuits go in, every
/// request comes back with its `degraded` flag and amplitude-exact
/// semantics for the gates that were served.
#[test]
fn chaos_compile_batch_flags_degraded_requests() {
    let _guard = fault::exclusive();
    fault::reset();
    fault::configure(
        "chaos::basis::synthesize",
        FaultMode::Probability { p: 0.3, seed: 7 },
    );
    fault::configure(
        "core::par::task",
        FaultMode::Probability { p: 0.1, seed: 8 },
    );

    let mut rng = StdRng::seed_from_u64(0xfade);
    let requests: Vec<CompileRequest> = (0..24)
        .map(|_| CompileRequest::new(random_model(4, 4, &mut rng)))
        .collect();
    let service = CompileService::with_cache(FlakyExact, ShardedCache::new())
        .workers(4)
        .resilience(chaos_resilience());
    let batch = service.compile_batch(&requests);
    assert!(fault::fires("chaos::basis::synthesize") > 0);
    fault::reset();

    assert_eq!(batch.results.len(), requests.len());
    for (i, result) in batch.results.iter().enumerate() {
        let result = result
            .as_ref()
            .unwrap_or_else(|e| panic!("request {i} failed under chaos: {e}"));
        assert!(result.circuit.n_qubits() >= requests[i].circuit.n_qubits());
    }
    let flagged = batch
        .results
        .iter()
        .filter(|r| r.as_ref().is_ok_and(|c| c.degraded))
        .count() as u64;
    assert!(
        batch.stats.degraded >= flagged,
        "per-request degraded flags exceed the stats counter"
    );
}

/// With the feature compiled in but no failpoint armed, the resilience
/// machinery must be invisible: bit-identical output across worker counts
/// and zero degraded/quarantined/panicked serves.
#[test]
fn zero_faults_output_is_bit_identical_across_worker_counts() {
    let _guard = fault::exclusive();
    fault::reset();

    let targets = chaos_targets(0xfa17);
    let mut runs: Vec<Vec<Vec<u64>>> = Vec::new();
    for workers in [1usize, 4, 16] {
        let service = CompileService::with_cache(FlakyExact, ShardedCache::new())
            .workers(workers)
            .resilience(chaos_resilience());
        let batch = service.synthesize_batch(&targets);
        assert_eq!(batch.stats.degraded, 0);
        assert_eq!(batch.stats.quarantined, 0);
        assert_eq!(batch.stats.worker_panics, 0);
        assert!(batch.degraded.iter().all(|&d| !d));
        runs.push(
            batch
                .circuits
                .iter()
                .map(|c| fingerprint(c.as_ref().expect("no faults")))
                .collect(),
        );
    }
    assert_eq!(runs[0], runs[1], "1 vs 4 workers diverged");
    assert_eq!(runs[0], runs[2], "1 vs 16 workers diverged");
}

/// EA non-convergence injected into the real AshN pipeline. The scheme
/// cascade (and, when that also dies, the CNOT degradation tier) must
/// still produce a verified circuit for every target.
#[test]
fn ea_nonconvergence_degrades_ashn_targets_gracefully() {
    let _guard = fault::exclusive();
    fault::reset();
    fault::configure("core::ea::convergence", FaultMode::Always);

    // Weyl classes with `x < y + z`: the EA faces bind, so the scheme
    // cascade tries `ashn_ea_search` first and the failpoint is guaranteed
    // to be exercised. Dressings vary the unitary within each class.
    let mut rng = StdRng::seed_from_u64(0xea);
    let coords = [
        (0.70, 0.65, 0.55),
        (0.60, 0.55, 0.50),
        (0.75, 0.70, 0.60),
        (0.50, 0.45, 0.40),
    ];
    let mut targets: Vec<CMat> = Vec::new();
    for &(x, y, z) in &coords {
        let base = ashn_gates::two::canonical(x, y, z);
        targets.push(dressed(&base, &mut rng));
        targets.push(dressed(&base, &mut rng));
    }
    let service = CompileService::with_cache(AshnBasis::with_cutoff(0.0, 1.1), ShardedCache::new())
        .workers(2)
        .resilience(Resilience {
            retry: RetryPolicy::default().with_attempts(2),
            verify_tol: Some(1e-3),
        });
    let batch = service.synthesize_batch(&targets);
    assert!(
        fault::fires("core::ea::convergence") > 0,
        "EA search was never reached ({} calls)",
        fault::calls("core::ea::convergence")
    );
    fault::reset();

    for (i, (target, circuit)) in targets.iter().zip(&batch.circuits).enumerate() {
        let circuit = circuit
            .as_ref()
            .unwrap_or_else(|e| panic!("target {i} failed under EA chaos: {e}"));
        let tol = if batch.degraded[i] { 1e-9 } else { 1e-3 };
        let err = circuit.error(target);
        assert!(err <= tol, "target {i} off by {err:.2e} (tol {tol:.0e})");
    }
}

/// Persistence failpoints: save surfaces a clean I/O error, load degrades
/// to a cold start with the injected reason, and both recover once the
/// faults are cleared.
#[test]
fn persistence_failpoints_error_and_cold_start_cleanly() {
    let _guard = fault::exclusive();
    fault::reset();

    let mut rng = StdRng::seed_from_u64(0xd15c);
    let cache = ShardedCache::with_config(2, 16);
    let service = CompileService::with_cache(ExactBasis, cache.clone()).workers(2);
    let targets: Vec<CMat> = (0..3).map(|_| haar_unitary(4, &mut rng)).collect();
    service.synthesize_batch(&targets);
    assert!(!cache.is_empty());

    let mut path = std::env::temp_dir();
    path.push(format!("ashn-service-chaos-{}.cache", std::process::id()));

    fault::configure("service::persist::save", FaultMode::Always);
    let err = cache.save(&path).expect_err("injected save fault");
    assert!(err.to_string().contains("injected fault"));
    fault::clear("service::persist::save");

    cache.save(&path).expect("save succeeds once cleared");
    fault::configure("service::persist::load", FaultMode::Always);
    let fresh = ShardedCache::with_config(2, 16);
    let report = fresh.warm_start(&path);
    assert!(!report.is_warm());
    assert!(fresh.is_empty(), "faulted load must leave the cache cold");
    fault::clear("service::persist::load");

    let report = fresh.warm_start(&path);
    assert!(report.is_warm(), "load succeeds once cleared");
    assert_eq!(report.loaded, cache.len());
    fault::reset();
    std::fs::remove_file(&path).ok();
}

/// Cache-corruption quarantine: a poisoned serve must evict the entry,
/// resynthesize privately, and count the quarantine — and the served
/// circuit must still verify.
#[test]
fn poisoned_serves_quarantine_and_still_verify() {
    let _guard = fault::exclusive();
    fault::reset();

    let mut rng = StdRng::seed_from_u64(0xbadc);
    let base = haar_unitary(4, &mut rng);
    let targets = vec![base.clone(), dressed(&base, &mut rng), base.clone()];
    let cache = ShardedCache::new();
    let service = CompileService::with_cache(ExactBasis, cache.clone())
        .workers(1)
        .resilience(chaos_resilience());

    // Warm the cache, then poison every subsequent serve-verification.
    service.synthesize_batch(&targets);
    let evictions_before = cache.stats().evictions;
    fault::configure("service::cache::serve", FaultMode::Always);
    let batch = service.synthesize_batch(&targets);
    fault::reset();

    assert!(
        batch.stats.quarantined > 0,
        "poisoned serves never quarantined"
    );
    assert!(
        cache.stats().evictions > evictions_before,
        "quarantine must evict the poisoned entry"
    );
    for (target, circuit) in targets.iter().zip(&batch.circuits) {
        let circuit = circuit.as_ref().expect("quarantine path must recover");
        assert!(circuit.error(target) <= 1e-9);
    }
}

fn random_model(n: usize, layers: usize, rng: &mut StdRng) -> Circuit {
    let mut circuit = Circuit::new(n);
    for _ in 0..layers {
        for q in 0..n {
            circuit
                .try_push(Instruction::new(vec![q], haar_unitary(2, rng), "u1"))
                .unwrap();
        }
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n);
        while b == a {
            b = rng.gen_range(0..n);
        }
        circuit
            .try_push(Instruction::new(vec![a, b], haar_unitary(4, rng), "u2"))
            .unwrap();
    }
    circuit
}
