//! Persistence: the on-disk cache format must round-trip losslessly (to
//! the last bit of every `f64`), key entries by scheme parameters so
//! different schemes never cross-hit after a reload, and degrade to a
//! cold start — never an error — on missing, corrupt, or
//! version-mismatched files.

mod common;

use ashn_gates::kak::weyl_coordinates;
use ashn_ir::Basis;
use ashn_math::randmat::haar_unitary;
use ashn_math::CMat;
use ashn_service::{CompileService, LoadOutcome, Resilience, RetryPolicy, ShardedCache, HEADER};
use ashn_synth::basis::AshnBasis;
use ashn_synth::cache::{CachedBasis, ClassKey, ClassStore};
use common::ExactBasis;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::OnceLock;

fn temp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "ashn-service-test-{tag}-{}.cache",
        std::process::id()
    ));
    p
}

fn populated_cache(n: usize) -> ShardedCache {
    let mut rng = StdRng::seed_from_u64(0xd15c);
    let cache = ShardedCache::with_config(4, 64);
    let cached = CachedBasis::with_store(ExactBasis, cache.clone());
    for _ in 0..n {
        cached
            .synthesize(&haar_unitary(4, &mut rng))
            .expect("exact synthesis");
    }
    cache
}

#[test]
fn save_load_round_trip_is_bit_lossless() {
    let path = temp_path("roundtrip");
    let cache = populated_cache(9);
    let written = cache.save(&path).expect("save");
    assert_eq!(written, 9);

    let restored = ShardedCache::with_config(4, 64);
    let report = restored.warm_start(&path);
    assert!(report.is_warm(), "load failed: {:?}", report.outcome);
    assert_eq!(report.loaded, 9);

    let before = cache.export_entries();
    let after = restored.export_entries();
    assert_eq!(before.len(), after.len());
    for ((k1, e1), (k2, e2)) in before.iter().zip(after.iter()) {
        assert_eq!(k1, k2);
        // Bit-exact: compare every f64 through its IEEE-754 bits.
        for i in 0..4 {
            for j in 0..4 {
                let (a, b) = (e1.target[(i, j)], e2.target[(i, j)]);
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
        let (c1, c2): (ashn_ir::Circuit, ashn_ir::Circuit) =
            (e1.circuit.clone().into(), e2.circuit.clone().into());
        assert_eq!(common::fingerprint(&c1), common::fingerprint(&c2));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_file_is_a_clean_cold_start() {
    let cache = ShardedCache::new();
    let report = cache.warm_start(temp_path("never-written"));
    assert_eq!(report.loaded, 0);
    assert_eq!(report.outcome, LoadOutcome::Missing);
    assert!(cache.is_empty());
}

#[test]
fn version_mismatch_degrades_to_cold() {
    let path = temp_path("version");
    let cache = populated_cache(3);
    cache.save(&path).expect("save");
    let text = std::fs::read_to_string(&path).unwrap();
    let bumped = text.replace(HEADER, "ashn-synth-cache v999");
    std::fs::write(&path, bumped).unwrap();

    let restored = ShardedCache::new();
    let report = restored.warm_start(&path);
    assert_eq!(report.loaded, 0);
    assert!(restored.is_empty(), "mismatched version must not warm");
    match report.outcome {
        LoadOutcome::Cold(reason) => assert!(reason.contains("version"), "reason: {reason}"),
        other => panic!("expected Cold, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_and_truncated_files_degrade_to_cold() {
    let path = temp_path("corrupt");
    let cache = populated_cache(5);
    cache.save(&path).expect("save");
    let text = std::fs::read_to_string(&path).unwrap();

    // Flip a hex digit inside a matrix line.
    let corrupted = text.replacen('|', "|zz", 12);
    std::fs::write(&path, &corrupted).unwrap();
    let restored = ShardedCache::new();
    let report = restored.warm_start(&path);
    assert_eq!(report.loaded, 0);
    assert!(restored.is_empty());
    assert!(matches!(report.outcome, LoadOutcome::Cold(_)));

    // Drop the trailing end-sentinel (simulated truncation mid-write).
    let truncated: String = text
        .lines()
        .take(text.lines().count() - 1)
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(&path, truncated).unwrap();
    let restored = ShardedCache::new();
    let report = restored.warm_start(&path);
    assert_eq!(report.loaded, 0);
    assert!(restored.is_empty());
    match report.outcome {
        LoadOutcome::Cold(reason) => {
            assert!(reason.contains("truncated"), "reason: {reason}")
        }
        other => panic!("expected Cold, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

/// The regression satellite: two AshN schemes share a display name
/// footprint (`r` equal) but differ in the parasitic-`ZZ` ratio `h̃`. A
/// persisted cache from one scheme must never serve the other — neither in
/// memory nor after a save/load round trip.
#[test]
fn scheme_parameters_survive_persistence_and_never_cross_hit() {
    let basis_a = AshnBasis::with_cutoff(0.0, 1.1);
    let basis_b = AshnBasis::with_cutoff(0.2, 1.1);
    assert_ne!(basis_a.cache_params(), basis_b.cache_params());

    let path = temp_path("params");
    let cache = ShardedCache::with_config(2, 32);
    let cached_a = CachedBasis::with_store(&basis_a, cache.clone());
    let cnot = ashn_gates::two::cnot();
    cached_a.synthesize(&cnot).expect("AshN synthesis");
    cache.save(&path).expect("save");

    let restored = ShardedCache::with_config(2, 32);
    assert!(restored.warm_start(&path).is_warm());

    let coords = weyl_coordinates(&cnot).canonicalize();
    let key_a = ClassKey::new(&basis_a, coords, false);
    let key_b = ClassKey::new(&basis_b, coords, false);
    assert!(
        restored.fetch(&key_a).is_some(),
        "same scheme must warm-hit after reload"
    );
    assert!(
        restored.fetch(&key_b).is_none(),
        "different h-tilde must never cross-hit the persisted cache"
    );
    std::fs::remove_file(&path).ok();
}

/// One saved cache file plus the targets that populated it, built once and
/// shared across property cases.
fn corruption_fixture() -> &'static (String, Vec<CMat>) {
    static FIXTURE: OnceLock<(String, Vec<CMat>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xc0ffee);
        let targets: Vec<CMat> = (0..4).map(|_| haar_unitary(4, &mut rng)).collect();
        let cache = ShardedCache::with_config(4, 64);
        let cached = CachedBasis::with_store(ExactBasis, cache.clone());
        for t in &targets {
            cached.synthesize(t).expect("exact synthesis");
        }
        let path = temp_path("proptest-fixture");
        cache.save(&path).expect("save");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        (text, targets)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The corruption satellite: an arbitrarily byte-flipped, truncated, or
    /// line-dropped cache file either degrades to a cold start or — when the
    /// damage still parses — yields only circuits that the serve-time
    /// verification tier accepts at `1e-9`. A damaged file may cost
    /// performance (cold/quarantined serves), never correctness.
    #[test]
    fn mutated_cache_files_never_serve_a_wrong_circuit(
        mode in 0u32..3,
        pos in 0usize..1_000_000,
        byte in 0u32..256,
    ) {
        let (text, targets) = corruption_fixture();
        let mut bytes = text.clone().into_bytes();
        match mode {
            0 => {
                // Overwrite one byte with an arbitrary value.
                let i = pos % bytes.len();
                bytes[i] = byte as u8;
            }
            1 => {
                // Truncate mid-file (the format is ASCII, so any cut is a
                // valid, possibly senseless, text file).
                bytes.truncate(pos % (bytes.len() + 1));
            }
            _ => {
                // Drop one whole line.
                let lines: Vec<&str> = text.lines().collect();
                let drop = pos % lines.len();
                bytes = lines
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != drop)
                    .map(|(_, l)| format!("{l}\n"))
                    .collect::<String>()
                    .into_bytes();
            }
        }
        let path = temp_path("proptest-mutated");
        std::fs::write(&path, &bytes).unwrap();

        let restored = ShardedCache::with_config(4, 64);
        let report = restored.warm_start(&path);
        std::fs::remove_file(&path).ok();
        if !report.is_warm() {
            prop_assert!(restored.is_empty(), "cold start must leave no entries");
        }

        // Whether or not the damaged file parsed, serving through the
        // verification tier must only ever return correct circuits.
        let service = CompileService::with_cache(ExactBasis, restored)
            .workers(2)
            .resilience(Resilience {
                retry: RetryPolicy::default(),
                verify_tol: Some(1e-9),
            });
        let batch = service.synthesize_batch(targets);
        for (target, circuit) in targets.iter().zip(&batch.circuits) {
            let circuit = circuit.as_ref().expect("ExactBasis always synthesizes");
            let err = circuit.error(target);
            prop_assert!(
                err <= 1e-9,
                "served circuit off by {err:.2e} from a mutated cache (mode {mode})"
            );
        }
    }
}
