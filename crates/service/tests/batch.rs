//! The batch engine: worker-count bit-invariance, batch-wide dedup, the
//! warm-cache speedup, and end-to-end `compile_batch` correctness.

mod common;

use ashn_ir::{Circuit, Instruction};
use ashn_math::randmat::haar_unitary;
use ashn_math::CMat;
use ashn_service::{CompileRequest, CompileService, OptLevel, ServiceError, ShardedCache};
use ashn_sim::Simulate;
use ashn_synth::basis::AshnBasis;
use common::{dressed, fingerprint, ExactBasis};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

fn target_pool(bases: usize, per_base: usize, seed: u64) -> Vec<CMat> {
    let mut rng = StdRng::seed_from_u64(seed);
    let base: Vec<CMat> = (0..bases).map(|_| haar_unitary(4, &mut rng)).collect();
    let mut pool = Vec::new();
    for i in 0..bases * per_base {
        let b = &base[i % bases];
        pool.push(match i / bases {
            0 => b.clone(),
            1 => b.clone(), // exact repeat
            _ => dressed(b, &mut rng),
        });
    }
    pool
}

/// The acceptance-critical invariant: one batch, any worker count, the
/// same bits out — with the real (numerical EA) AshN basis.
#[test]
fn batch_output_is_bit_identical_across_worker_counts() {
    let targets = target_pool(4, 5, 0xbeef);
    let mut runs: Vec<Vec<Vec<u64>>> = Vec::new();
    for workers in [1usize, 4, 16] {
        // Fresh cache per run: cache state differences may change *speed*
        // but must never change bits.
        let service =
            CompileService::with_cache(AshnBasis::with_cutoff(0.0, 1.1), ShardedCache::new())
                .workers(workers);
        let batch = service.synthesize_batch(&targets);
        assert_eq!(batch.stats.workers, workers);
        assert_eq!(batch.stats.unique_classes, 4);
        let prints: Vec<Vec<u64>> = batch
            .circuits
            .iter()
            .map(|c| fingerprint(c.as_ref().expect("synthesis")))
            .collect();
        runs.push(prints);
    }
    assert_eq!(runs[0], runs[1], "1 worker vs 4 workers diverged");
    assert_eq!(runs[0], runs[2], "1 worker vs 16 workers diverged");
}

#[test]
fn batch_dedup_and_tiers_account_for_every_target() {
    let targets = target_pool(3, 6, 0xfeed);
    let service = CompileService::new(ExactBasis).workers(4);
    let batch = service.synthesize_batch(&targets);
    let stats = batch.stats;
    assert_eq!(stats.requests, targets.len());
    assert_eq!(stats.targets, targets.len());
    assert_eq!(stats.unique_classes, 3);
    assert_eq!(stats.cold_classes, 3);
    assert_eq!(stats.warm_classes, 0);
    assert_eq!(
        stats.exact_hits + stats.class_hits + stats.cold_serves + stats.failed,
        targets.len() as u64
    );
    assert_eq!(stats.cold_serves, 3, "one cold serve per unique class");
    assert_eq!(stats.failed, 0);
    assert!(stats.dedup_ratio() > 5.9);
    for (circuit, target) in batch.circuits.iter().zip(&targets) {
        assert!(circuit.as_ref().expect("synthesis").error(target) < 1e-12);
    }

    // Second pass over the same targets: everything is warm now.
    let batch2 = service.synthesize_batch(&targets);
    assert_eq!(batch2.stats.warm_classes, 3);
    assert_eq!(batch2.stats.cold_classes, 0);
    assert_eq!(batch2.stats.cold_serves, 0);
}

/// A warm cache must beat cold synthesis by a wide margin on the real EA
/// basis — the entire point of sharing the cache across batches.
#[test]
fn warm_batch_is_much_faster_than_cold() {
    let targets = target_pool(12, 2, 0xcafe);
    let service = CompileService::with_cache(AshnBasis::with_cutoff(0.0, 1.1), ShardedCache::new());

    let t0 = Instant::now();
    let cold = service.synthesize_batch(&targets);
    let cold_time = t0.elapsed();
    assert_eq!(cold.stats.cold_classes, 12);

    // Best of three warm passes: a single pass can be slowed by unrelated
    // test binaries saturating the machine, and the claim under test is
    // about the work a warm batch *avoids*, not scheduler luck.
    let mut warm_time = Duration::MAX;
    let mut warm = None;
    for _ in 0..3 {
        let t1 = Instant::now();
        let pass = service.synthesize_batch(&targets);
        warm_time = warm_time.min(t1.elapsed());
        assert_eq!(pass.stats.cold_classes, 0);
        assert_eq!(pass.stats.cold_serves, 0);
        warm = Some(pass);
    }
    let warm = warm.unwrap();

    assert!(
        cold_time >= warm_time * 5,
        "warm batch not >=5x faster: cold {cold_time:?}, warm {warm_time:?}"
    );
    // Warm serving must not change the answer.
    for (c, w) in cold.circuits.iter().zip(&warm.circuits) {
        assert_eq!(
            fingerprint(c.as_ref().unwrap()),
            fingerprint(w.as_ref().unwrap())
        );
    }
}

fn random_model(n: usize, layers: usize, rng: &mut StdRng) -> Circuit {
    let mut circuit = Circuit::new(n);
    for _ in 0..layers {
        for q in 0..n {
            circuit
                .try_push(Instruction::new(vec![q], haar_unitary(2, rng), "u1"))
                .unwrap();
        }
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n);
        while b == a {
            b = rng.gen_range(0..n);
        }
        circuit
            .try_push(Instruction::new(vec![a, b], haar_unitary(4, rng), "u2"))
            .unwrap();
    }
    circuit
}

/// End-to-end `compile_batch` with the exact basis: the routed physical
/// circuit must act on the register exactly as the logical circuit does,
/// with logical qubit `l` read out at `positions[l]` and idle sites left
/// in `|0⟩`.
#[test]
fn compile_batch_preserves_circuit_semantics_through_routing() {
    let mut rng = StdRng::seed_from_u64(0x70d0);
    let requests: Vec<CompileRequest> = (0..6)
        .map(|i| CompileRequest::new(random_model(4 + (i % 3), 5, &mut rng)))
        .collect();
    let service = CompileService::new(ExactBasis).workers(4);
    let batch = service.compile_batch(&requests);
    assert_eq!(batch.stats.requests, requests.len());
    assert_eq!(batch.stats.failed, 0);

    for (req, result) in requests.iter().zip(&batch.results) {
        let result = result.as_ref().expect("compile");
        let n = req.circuit.n_qubits();
        let sites = result.circuit.n_qubits();
        let logical = req.circuit.run_pure();
        let physical = result.circuit.run_pure();
        let l_amps = logical.amplitudes();
        let p_amps = physical.amplitudes();
        // Walk every physical basis state: amplitude must match the
        // logical state at the bit-permuted index, and vanish whenever an
        // idle site is excited.
        for (idx, amp) in p_amps.iter().enumerate() {
            let mut logical_idx = 0usize;
            let mut occupied = 0usize;
            for (l, &site) in result.positions.iter().enumerate() {
                let bit = (idx >> (sites - 1 - site)) & 1;
                logical_idx |= bit << (n - 1 - l);
                occupied |= 1 << (sites - 1 - site);
            }
            let idle_excited = idx & !occupied != 0;
            let expect = if idle_excited {
                ashn_math::Complex::ZERO
            } else {
                l_amps[logical_idx]
            };
            let diff = ((amp.re - expect.re).powi(2) + (amp.im - expect.im).powi(2)).sqrt();
            assert!(
                diff < 1e-10,
                "amplitude mismatch at physical index {idx}: {diff:.3e}"
            );
        }
    }
}

#[test]
fn compile_batch_is_bit_identical_across_worker_counts() {
    let mut rng = StdRng::seed_from_u64(0xabba);
    let requests: Vec<CompileRequest> = (0..5)
        .map(|_| CompileRequest::new(random_model(4, 4, &mut rng)).opt(OptLevel::Light))
        .collect();
    let mut runs: Vec<Vec<Vec<u64>>> = Vec::new();
    for workers in [1usize, 4, 16] {
        let service = CompileService::with_cache(ExactBasis, ShardedCache::new()).workers(workers);
        let batch = service.compile_batch(&requests);
        runs.push(
            batch
                .results
                .iter()
                .map(|r| fingerprint(&r.as_ref().expect("compile").circuit))
                .collect(),
        );
    }
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[0], runs[2]);
}

#[test]
fn malformed_requests_fail_alone_without_poisoning_the_batch() {
    let mut rng = StdRng::seed_from_u64(0xbad);
    // A 3-qubit instruction is not compilable by the 1q/2q pipeline.
    let mut bad = Circuit::new(3);
    bad.try_push(Instruction::new(
        vec![0, 1, 2],
        haar_unitary(8, &mut rng),
        "u3",
    ))
    .unwrap();
    let requests = vec![
        CompileRequest::new(random_model(3, 3, &mut rng)),
        CompileRequest::new(bad),
        CompileRequest::new(random_model(3, 3, &mut rng)),
    ];
    let service = CompileService::new(ExactBasis);
    let batch = service.compile_batch(&requests);
    assert!(batch.results[0].is_ok());
    assert!(matches!(
        batch.results[1],
        Err(ServiceError::InvalidRequest { .. })
    ));
    assert!(batch.results[2].is_ok());
}

#[test]
fn non_unitary_targets_are_rejected_per_target() {
    let mut rng = StdRng::seed_from_u64(0x90);
    let good = haar_unitary(4, &mut rng);
    let bad = CMat::from_fn(4, 4, |i, j| good[(i, j)] * 3.0);
    let service = CompileService::new(ExactBasis);
    let batch = service.synthesize_batch(&[good.clone(), bad, good.clone()]);
    assert!(batch.circuits[0].is_ok());
    assert!(matches!(
        batch.circuits[1],
        Err(ServiceError::InvalidRequest { .. })
    ));
    assert!(batch.circuits[2].is_ok());
    assert_eq!(batch.stats.failed, 1);
}
