//! The versioned on-disk format for cached synthesis results.
//!
//! Design constraints, in order:
//!
//! 1. **Lossless.** A warm-started service must serve bit-identical
//!    circuits to the process that saved the cache, so every `f64` is
//!    written as the hex of its exact IEEE-754 bit pattern — no decimal
//!    round trip anywhere.
//! 2. **Keyed by provenance, not just geometry.** Entries carry the basis
//!    display name *and* its [`ashn_ir::Basis::cache_params`] (e.g. AshN's
//!    `ZZ` ratio and cutoff), exactly as the in-memory [`ClassKey`] does —
//!    two bases with identical quantized Weyl coordinates but different
//!    scheme parameters can never cross-hit after a save/load round trip.
//! 3. **Corruption degrades, never errors.** Any parse failure — wrong
//!    magic, unknown version, truncation, a flipped bit in a hex field —
//!    makes the loader report a cold start; a compile service must boot
//!    with an empty cache rather than refuse to boot.
//!
//! Format (line-oriented text, `|`-separated, `%`-escaped strings):
//!
//! ```text
//! ashn-synth-cache v1
//! k|<basis>|<params>|<x>|<y>|<z>|<swap 0/1>     -- one per entry
//! t|<32 hex f64 words>                          -- 4x4 target, row-major
//! p|<2 hex f64 words>                           -- global phase
//! 0|<8 hex f64 words>                           -- op: 1q gate on qubit 0
//! 1|<8 hex f64 words>                           -- op: 1q gate on qubit 1
//! e|<label>|<duration hex>|<32 hex f64 words>   -- op: entangler
//! .                                             -- end of entry
//! end <entry count>                             -- truncation sentinel
//! ```

use ashn_math::{CMat, Complex};
use ashn_synth::cache::{ClassEntry, ClassKey};
use ashn_synth::circuit2::{Op2, TwoQubitCircuit};
use std::io::Write;
use std::path::Path;

/// Magic + version line. Bump the version whenever the entry layout, the
/// key quantization, or the meaning of any field changes: old files must
/// degrade to a cold start, not be misread.
pub const HEADER: &str = "ashn-synth-cache v1";

/// How a [`crate::ShardedCache::warm_start`] resolved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoadOutcome {
    /// The file parsed cleanly; every entry was installed.
    Warm,
    /// No file at the path (first boot) — the cache stays cold.
    Missing,
    /// The file was unreadable, had a mismatched version, or was corrupt;
    /// the cache stays cold and the reason says why.
    Cold(String),
}

/// Result of a warm-start attempt: entries installed plus the outcome.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Entries installed into the cache.
    pub loaded: usize,
    /// How the load resolved.
    pub outcome: LoadOutcome,
}

impl LoadReport {
    /// Whether the cache was actually warmed.
    pub fn is_warm(&self) -> bool {
        self.outcome == LoadOutcome::Warm
    }
}

/// `%`-escapes the separator, the escape character itself, and newlines.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '%' => out.push_str("%25"),
            '|' => out.push_str("%7C"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch != '%' {
            out.push(ch);
            continue;
        }
        let hex: String = chars.by_ref().take(2).collect();
        match hex.as_str() {
            "25" => out.push('%'),
            "7C" => out.push('|'),
            "0A" => out.push('\n'),
            "0D" => out.push('\r'),
            other => return Err(format!("bad escape %{other}")),
        }
    }
    Ok(out)
}

fn push_matrix(line: &mut String, m: &CMat) {
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            let z = m[(i, j)];
            line.push_str(&format!("|{:016x}|{:016x}", z.re.to_bits(), z.im.to_bits()));
        }
    }
}

fn parse_f64(word: &str) -> Result<f64, String> {
    u64::from_str_radix(word, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad f64 word {word:?}: {e}"))
}

fn parse_matrix(words: &[&str], rows: usize, cols: usize) -> Result<CMat, String> {
    let expect = rows * cols * 2;
    if words.len() != expect {
        return Err(format!("matrix needs {expect} words, got {}", words.len()));
    }
    let mut data = Vec::with_capacity(rows * cols);
    for pair in words.chunks_exact(2) {
        data.push(Complex::new(parse_f64(pair[0])?, parse_f64(pair[1])?));
    }
    Ok(CMat::from_fn(rows, cols, |i, j| data[i * cols + j]))
}

/// Serializes `entries` into the v1 format.
pub fn write_entries(
    w: &mut impl Write,
    entries: &[(ClassKey, ClassEntry)],
) -> std::io::Result<()> {
    writeln!(w, "{HEADER}")?;
    for (key, entry) in entries {
        writeln!(
            w,
            "k|{}|{}|{}|{}|{}|{}",
            escape(&key.basis),
            escape(&key.params),
            key.x,
            key.y,
            key.z,
            u8::from(key.swap),
        )?;
        let mut line = String::from("t");
        push_matrix(&mut line, &entry.target);
        writeln!(w, "{line}")?;
        let phase = entry.circuit.phase;
        writeln!(
            w,
            "p|{:016x}|{:016x}",
            phase.re.to_bits(),
            phase.im.to_bits()
        )?;
        for op in &entry.circuit.ops {
            let mut line = String::new();
            match op {
                Op2::L0(m) => {
                    line.push('0');
                    push_matrix(&mut line, m);
                }
                Op2::L1(m) => {
                    line.push('1');
                    push_matrix(&mut line, m);
                }
                Op2::Entangler {
                    label,
                    matrix,
                    duration,
                } => {
                    line.push('e');
                    line.push_str(&format!("|{}|{:016x}", escape(label), duration.to_bits()));
                    push_matrix(&mut line, matrix);
                }
            }
            writeln!(w, "{line}")?;
        }
        writeln!(w, ".")?;
    }
    writeln!(w, "end {}", entries.len())?;
    Ok(())
}

/// Writes `entries` to `path`, returning how many were written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_to_path(
    path: impl AsRef<Path>,
    entries: &[(ClassKey, ClassEntry)],
) -> std::io::Result<usize> {
    if ashn_math::failpoint!("service::persist::save") {
        return Err(std::io::Error::other(
            "injected fault: service::persist::save",
        ));
    }
    let mut buf = Vec::new();
    write_entries(&mut buf, entries)?;
    std::fs::write(path, buf)?;
    Ok(entries.len())
}

/// Parses a v1 cache file.
///
/// # Errors
///
/// Every failure mode maps to a [`LoadOutcome`]: [`LoadOutcome::Missing`]
/// when there is no file, [`LoadOutcome::Cold`] with a reason for
/// unreadable, version-mismatched, or corrupt content.
pub fn load_from_path(path: impl AsRef<Path>) -> Result<Vec<(ClassKey, ClassEntry)>, LoadOutcome> {
    let path = path.as_ref();
    if ashn_math::failpoint!("service::persist::load") {
        return Err(LoadOutcome::Cold(
            "injected fault: service::persist::load".into(),
        ));
    }
    if !path.exists() {
        return Err(LoadOutcome::Missing);
    }
    let text =
        std::fs::read_to_string(path).map_err(|e| LoadOutcome::Cold(format!("unreadable: {e}")))?;
    parse_entries(&text).map_err(LoadOutcome::Cold)
}

/// Parses the v1 text format (exposed for tests; [`load_from_path`] is the
/// file-level entry point).
///
/// # Errors
///
/// A human-readable reason on any structural or field-level corruption.
pub fn parse_entries(text: &str) -> Result<Vec<(ClassKey, ClassEntry)>, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h == HEADER => {}
        Some(h) => return Err(format!("version mismatch: expected {HEADER:?}, got {h:?}")),
        None => return Err("empty file".into()),
    }
    let mut entries = Vec::new();
    let mut saw_end = false;
    while let Some(line) = lines.next() {
        if let Some(count) = line.strip_prefix("end ") {
            let count: usize = count.parse().map_err(|e| format!("bad end count: {e}"))?;
            if count != entries.len() {
                return Err(format!(
                    "truncated: end sentinel says {count} entries, parsed {}",
                    entries.len()
                ));
            }
            saw_end = true;
            break;
        }
        let key = parse_key(line)?;
        let target = parse_tagged_matrix(lines.next(), "t", 4)?;
        let phase = parse_phase(lines.next())?;
        let mut ops = Vec::new();
        loop {
            let line = lines.next().ok_or("truncated inside entry")?;
            if line == "." {
                break;
            }
            let fields: Vec<&str> = line.split('|').collect();
            let op = match fields[0] {
                "0" => Op2::L0(parse_matrix(&fields[1..], 2, 2)?),
                "1" => Op2::L1(parse_matrix(&fields[1..], 2, 2)?),
                "e" => {
                    if fields.len() < 3 {
                        return Err("entangler line too short".into());
                    }
                    Op2::Entangler {
                        label: unescape(fields[1])?,
                        duration: parse_f64(fields[2])?,
                        matrix: parse_matrix(&fields[3..], 4, 4)?,
                    }
                }
                tag => return Err(format!("unknown op tag {tag:?}")),
            };
            ops.push(op);
        }
        entries.push((
            key,
            ClassEntry {
                target,
                circuit: TwoQubitCircuit { phase, ops },
            },
        ));
    }
    if !saw_end {
        return Err("truncated: missing end sentinel".into());
    }
    Ok(entries)
}

fn parse_key(line: &str) -> Result<ClassKey, String> {
    let fields: Vec<&str> = line.split('|').collect();
    if fields.len() != 7 || fields[0] != "k" {
        return Err(format!("bad key line {line:?}"));
    }
    let coord = |s: &str| -> Result<i64, String> {
        s.parse().map_err(|e| format!("bad coordinate {s:?}: {e}"))
    };
    let swap = match fields[6] {
        "0" => false,
        "1" => true,
        other => return Err(format!("bad swap flag {other:?}")),
    };
    Ok(ClassKey {
        basis: unescape(fields[1])?,
        params: unescape(fields[2])?,
        x: coord(fields[3])?,
        y: coord(fields[4])?,
        z: coord(fields[5])?,
        swap,
    })
}

fn parse_tagged_matrix(line: Option<&str>, tag: &str, dim: usize) -> Result<CMat, String> {
    let line = line.ok_or("truncated inside entry")?;
    let fields: Vec<&str> = line.split('|').collect();
    if fields[0] != tag {
        return Err(format!("expected {tag:?} line, got {line:?}"));
    }
    parse_matrix(&fields[1..], dim, dim)
}

fn parse_phase(line: Option<&str>) -> Result<Complex, String> {
    let line = line.ok_or("truncated inside entry")?;
    let fields: Vec<&str> = line.split('|').collect();
    if fields.len() != 3 || fields[0] != "p" {
        return Err(format!("bad phase line {line:?}"));
    }
    Ok(Complex::new(parse_f64(fields[1])?, parse_f64(fields[2])?))
}
