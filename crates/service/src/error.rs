//! Per-request service errors.
//!
//! A batch never fails wholesale: each request resolves to
//! `Result<_, ServiceError>` so one malformed target cannot poison a
//! thousand-circuit batch. Errors are `Clone` because one failed cold
//! synthesis may have to be reported to every request that deduplicated
//! onto the same class.

use std::fmt;

/// Why one request in a batch could not be served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The target is not a 4×4 unitary (or the circuit is structurally
    /// unusable: overlapping pair, wire out of range).
    InvalidRequest {
        /// What was wrong.
        detail: String,
    },
    /// Cold synthesis of the request's Weyl class failed.
    Synth {
        /// The underlying [`ashn_ir::SynthError`], rendered.
        detail: String,
    },
    /// Routing or IR assembly failed.
    Assembly {
        /// The underlying error, rendered.
        detail: String,
    },
    /// The optimizer pipeline failed.
    Opt {
        /// The underlying [`ashn_opt::OptError`], rendered.
        detail: String,
    },
    /// The request's grid cannot hold its circuit.
    Config {
        /// What was wrong.
        detail: String,
    },
    /// A worker panicked while processing this request, and neither the
    /// serial repair pass nor the degradation tier could produce a circuit.
    WorkerPanic {
        /// The panic message, when it was a string.
        detail: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::InvalidRequest { detail } => write!(f, "invalid request: {detail}"),
            ServiceError::Synth { detail } => write!(f, "synthesis failed: {detail}"),
            ServiceError::Assembly { detail } => write!(f, "assembly failed: {detail}"),
            ServiceError::Opt { detail } => write!(f, "optimization failed: {detail}"),
            ServiceError::Config { detail } => write!(f, "configuration error: {detail}"),
            ServiceError::WorkerPanic { detail } => write!(f, "worker panicked: {detail}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ashn_ir::SynthError> for ServiceError {
    fn from(e: ashn_ir::SynthError) -> Self {
        ServiceError::Synth {
            detail: e.to_string(),
        }
    }
}

impl From<ashn_ir::IrError> for ServiceError {
    fn from(e: ashn_ir::IrError) -> Self {
        ServiceError::Assembly {
            detail: e.to_string(),
        }
    }
}

impl From<ashn_opt::OptError> for ServiceError {
    fn from(e: ashn_opt::OptError) -> Self {
        ServiceError::Opt {
            detail: e.to_string(),
        }
    }
}
