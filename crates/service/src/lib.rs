//! `ashn-service` — batched compile-as-a-service for the AshN stack.
//!
//! The crate has three layers:
//!
//! - [`ShardedCache`]: a process-wide, lock-striped synthesis cache. Each
//!   of its (default 16) shards is a bounded-LRU
//!   [`ashn_synth::SynthCache`] with its own mutex; handles are `Clone`
//!   and share storage, so many compilers — across threads — feed one
//!   cache. It persists to disk in a versioned, lossless format
//!   ([`persist`]) and warm-starts on boot, degrading to a cold cache on
//!   any corruption instead of failing.
//! - [`CompileService`]: the batch engine. A batch of circuits (or raw
//!   `SU(4)` targets) is canonicalized to quantized Weyl classes,
//!   deduplicated *batch-wide* before any EA search runs, solved on a
//!   deterministic scoped-thread worker pool, and served per request by
//!   re-dressing the class solutions. Batch output is bit-identical at
//!   any worker count.
//! - The facade: `ashn::Compiler::with_shared_cache` plugs a
//!   [`ShardedCache`] into the existing single-circuit compiler, so
//!   interactive use and batch service share one memo store.
//!
//! ```no_run
//! use ashn_service::{CompileService, ShardedCache};
//! use ashn_synth::AshnBasis;
//!
//! let cache = ShardedCache::new();
//! cache.warm_start("synth.cache"); // cold start if missing/corrupt
//! let service = CompileService::with_cache(AshnBasis::with_cutoff(0.0, 1.1), cache).workers(8);
//! # let targets: Vec<ashn_math::CMat> = vec![];
//! let batch = service.synthesize_batch(&targets);
//! println!("{:.1} targets/class deduplicated", batch.stats.dedup_ratio());
//! service.cache().save("synth.cache").unwrap();
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod persist;
pub mod service;
pub mod sharded;

pub use ashn_synth::resilience::RetryPolicy;
pub use error::ServiceError;
pub use persist::{LoadOutcome, LoadReport, HEADER};
pub use service::{
    BatchCompileResult, BatchResult, CompileRequest, CompileResult, CompileService, OptLevel,
    Resilience, ServiceStats, OPT_ACCEPT_TOL,
};
pub use sharded::{ShardedCache, DEFAULT_CAPACITY, DEFAULT_SHARDS};
