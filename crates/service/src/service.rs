//! The batched compile server.
//!
//! [`CompileService`] turns the per-call synthesis pipeline into a
//! multi-tenant batch engine built around one observation from the paper:
//! every `SU(4)` target collapses to a Weyl class that is compiled once
//! and re-dressed forever. A batch is therefore processed as
//!
//! 1. **Canonicalize** every target to its quantized Weyl class
//!    ([`ClassKey`]) — fanned over the worker pool;
//! 2. **Deduplicate** identical classes across the *whole batch* before
//!    any EA/pulse search runs — one thousand requests with two hundred
//!    distinct classes cost two hundred cold syntheses at most;
//! 3. **Solve** the classes missing from the shared [`ShardedCache`] on a
//!    deterministic worker pool ([`ashn_core::par::parallel_map`]: indexed
//!    jobs, results in index order — batch output is bit-identical at any
//!    worker count);
//! 4. **Serve** every request from the solved-class table: exact repeats
//!    verbatim, same-class targets re-dressed with KAK-computed locals
//!    ([`ashn_synth::cache::serve_from_entry`]).
//!
//! Worker-count invariance holds because each phase is a pure
//! index-ordered map over frozen inputs: requests never read the shared
//! cache during the parallel phases — they read the per-batch solution
//! table, which is sealed before fan-out (cache evictions between batches
//! can change *speed*, never *bits*).
//!
//! [`CompileService::compile_batch`] extends the same machinery to whole
//! circuits: per-request routing on a grid ([`LookaheadRouter`]), optional
//! optimizer passes, and noise scheduling — the full
//! synthesize → route → opt → schedule pipeline behind a
//! [`CompileRequest`]/[`CompileResult`] API.

use crate::error::ServiceError;
use crate::sharded::ShardedCache;
use ashn_core::par::{parallel_map_isolated, TaskPanic};
use ashn_gates::kak::weyl_coordinates4;
use ashn_gates::weyl::WeylPoint;
use ashn_ir::{Basis, Circuit};
use ashn_math::{CMat, Mat4};
use ashn_opt::{standard_pipeline, structural_pipeline, OptStats};
use ashn_qv::{stamp_noise, QvNoise};
use ashn_route::{Grid, LookaheadRouter, RouteOp};
use ashn_synth::cache::{serve_from_entry, ClassEntry, ClassKey, ClassStore, Lookup};
use ashn_synth::circuit2::TwoQubitCircuit;
use ashn_synth::cnot_basis::try_decompose_cnot;
use ashn_synth::resilience::{synthesize_resilient, RetryPolicy};
use ashn_synth::retarget::{rule_key, standard_rules, RuleSet};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Acceptance tolerance for resynthesized blocks under
/// [`OptLevel::Standard`] — the fidelity scale the numerical bases
/// synthesize to (mirrors `ashn::Compiler::OPT_ACCEPT_TOL`).
pub const OPT_ACCEPT_TOL: f64 = 1e-5;

/// Resilience knobs for a [`CompileService`]: retry/deadline policy for
/// cold synthesis, the exact-CNOT degradation tier, and the post-serve
/// verification tier.
///
/// The default — one attempt, no deadline, fallback on, verification at
/// `1e-3` — leaves the fault-free pipeline bit-identical to a service
/// without resilience: verification only *reads* served circuits, the
/// fallback only engages on failure, and retries never run when the first
/// attempt succeeds.
#[derive(Clone, Copy, Debug)]
pub struct Resilience {
    /// Retry/deadline/fallback policy applied to every cold synthesis and
    /// quarantine resynthesis. `retry.fallback` also gates the service's
    /// per-target CNOT degradation tier.
    pub retry: RetryPolicy,
    /// Verify every served circuit against its target at this Frobenius
    /// tolerance; a failing cache entry is quarantined (evicted + counted)
    /// and the target resynthesized. `None` disables the tier.
    pub verify_tol: Option<f64>,
}

impl Default for Resilience {
    fn default() -> Self {
        Self {
            retry: RetryPolicy::default(),
            verify_tol: Some(1e-3),
        }
    }
}

/// Optimizer effort for a [`CompileRequest`] (the `ashn-opt` pipelines).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OptLevel {
    /// Route and schedule only.
    #[default]
    None,
    /// Structural passes (exact rewrites at near-machine precision).
    Light,
    /// Structural passes plus two-qubit block resynthesis through the
    /// service basis. Resynthesis runs on the *uncached* basis so each
    /// request stays a pure function of its inputs (worker-count
    /// invariant); repeated blocks are rare after routing, so the cache
    /// would buy little here anyway.
    Standard,
}

/// One circuit to compile, with its pipeline options.
#[derive(Clone, Debug)]
pub struct CompileRequest {
    /// The logical circuit (1q/2q instructions on arbitrary wires).
    pub circuit: Circuit,
    /// Routing grid (default: the smallest near-square grid holding the
    /// circuit's register).
    pub grid: Option<Grid>,
    /// Optimizer effort between routing and scheduling.
    pub opt: OptLevel,
    /// When set, the result circuit carries per-gate depolarizing rates
    /// scheduled from this noise model (single-qubit fixed, two-qubit ∝
    /// duration).
    pub noise: Option<QvNoise>,
}

impl CompileRequest {
    /// A request with default options (auto grid, no opt, no scheduling).
    pub fn new(circuit: Circuit) -> Self {
        Self {
            circuit,
            grid: None,
            opt: OptLevel::None,
            noise: None,
        }
    }

    /// Sets an explicit routing grid.
    #[must_use]
    pub fn grid(mut self, grid: Grid) -> Self {
        self.grid = Some(grid);
        self
    }

    /// Sets the optimizer effort.
    #[must_use]
    pub fn opt(mut self, opt: OptLevel) -> Self {
        self.opt = opt;
        self
    }

    /// Schedules per-gate error rates from `noise`.
    #[must_use]
    pub fn noise(mut self, noise: QvNoise) -> Self {
        self.noise = Some(noise);
        self
    }
}

/// A compiled request: the physical-site circuit and where the logical
/// qubits ended up.
#[derive(Clone, Debug)]
pub struct CompileResult {
    /// The physical-site circuit (noise-scheduled when the request asked).
    pub circuit: Circuit,
    /// `positions[l]` = physical site holding logical qubit `l` at the end.
    pub positions: Vec<usize>,
    /// Optimizer accounting, when the request ran passes.
    pub opt_stats: Option<OptStats>,
    /// Whether any two-qubit gate in this circuit was served by the exact
    /// CNOT degradation tier instead of the requested basis.
    pub degraded: bool,
}

/// How one synthesis target was served (the cache-tier breakdown in
/// [`ServiceStats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Tier {
    /// Served verbatim from a stored entry (exact target repeat).
    Exact,
    /// Served by re-dressing a same-class entry.
    Redressed,
    /// Served by the closed-form retargeting rule tier — no memo-cache
    /// numeric entry and no EA/pulse search were consulted.
    Rule,
    /// This target's class was synthesized cold (it was the class
    /// representative, or its stored entry had drifted).
    Cold,
    /// Served by the exact CNOT degradation tier after the requested basis
    /// failed, timed out, or panicked.
    Degraded,
    /// Cold synthesis of the class failed.
    Failed,
}

/// Per-batch accounting: dedup effectiveness, cache-hit tiers, wall time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ServiceStats {
    /// Requests in the batch.
    pub requests: usize,
    /// Two-qubit synthesis targets across the batch (== `requests` for
    /// [`CompileService::synthesize_batch`]; the total 2q instruction
    /// count for [`CompileService::compile_batch`]).
    pub targets: usize,
    /// Distinct Weyl classes among the valid targets.
    pub unique_classes: usize,
    /// Unique classes already present in the shared cache.
    pub warm_classes: usize,
    /// Unique classes covered by a closed-form retargeting rule (served
    /// without consulting the numeric cache or running a synthesis).
    pub rule_classes: usize,
    /// Unique classes synthesized cold by this batch.
    pub cold_classes: usize,
    /// Targets served verbatim (exact repeat of a stored target).
    pub exact_hits: u64,
    /// Targets served by re-dressing a same-class entry.
    pub class_hits: u64,
    /// Targets served by the closed-form retargeting rule tier (never a
    /// cold synthesis, never a numeric cache miss).
    pub rule_hits: u64,
    /// Targets that paid a cold synthesis (class representatives).
    pub cold_serves: u64,
    /// Targets whose class failed to synthesize.
    pub failed: u64,
    /// Targets served by the exact CNOT degradation tier after the
    /// requested basis failed, timed out, or panicked.
    pub degraded: u64,
    /// Served circuits that failed post-serve verification: the cache
    /// entry was evicted and the target resynthesized (counted per serve).
    pub quarantined: u64,
    /// Extra synthesis attempts consumed by the retry policy.
    pub retries: u64,
    /// Worker panics contained by the batch engine (isolated to their item
    /// and repaired or degraded — never propagated).
    pub worker_panics: u64,
    /// Wall-clock time for the whole batch, milliseconds.
    pub wall_ms: f64,
    /// Worker threads the batch fanned over.
    pub workers: usize,
}

impl ServiceStats {
    /// Targets per unique class — how much work batch dedup saved
    /// (1.0 = nothing shared, N = every class amortized N ways).
    pub fn dedup_ratio(&self) -> f64 {
        if self.unique_classes == 0 {
            1.0
        } else {
            self.targets as f64 / self.unique_classes as f64
        }
    }

    /// Fraction of targets served without a cold synthesis.
    pub fn hit_rate(&self) -> f64 {
        if self.targets == 0 {
            0.0
        } else {
            (self.exact_hits + self.class_hits + self.rule_hits) as f64 / self.targets as f64
        }
    }

    /// Batch throughput in compiled requests per second.
    pub fn requests_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.requests as f64 / (self.wall_ms / 1e3)
        }
    }
}

/// Result of [`CompileService::synthesize_batch`]: per-target circuits in
/// request order plus batch accounting.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// One circuit (or error) per input target, in input order.
    pub circuits: Vec<Result<Circuit, ServiceError>>,
    /// `degraded[i]` — whether `circuits[i]` came from the exact CNOT
    /// degradation tier instead of the requested basis.
    pub degraded: Vec<bool>,
    /// Batch accounting.
    pub stats: ServiceStats,
}

/// Result of [`CompileService::compile_batch`]: per-request compilations
/// in request order plus batch accounting.
#[derive(Clone, Debug)]
pub struct BatchCompileResult {
    /// One compilation (or error) per request, in request order.
    pub results: Vec<Result<CompileResult, ServiceError>>,
    /// Batch accounting.
    pub stats: ServiceStats,
}

/// One unique Weyl class in a batch and how it got its solution.
struct UniqueClass {
    key: ClassKey,
    /// Index of the representative target (first occurrence).
    rep: usize,
    solution: Solution,
}

enum Solution {
    /// Found in the shared cache before the batch ran.
    Warm(ClassEntry),
    /// Covered by a closed-form retargeting rule — the entry is the rule's
    /// exact fragment (or core), no numeric search ever ran.
    Rule(ClassEntry),
    /// Synthesized cold by this batch.
    Cold(ClassEntry),
    Failed(String),
}

/// The sealed per-batch class table the serve phase reads.
struct Prepared {
    /// Per target: `(unique-class index, coords)` or the validation error.
    status: Vec<Result<(usize, WeylPoint), ServiceError>>,
    unique: Vec<UniqueClass>,
    /// Extra synthesis attempts the cold phase consumed via retries.
    retries: u64,
    /// Worker panics the prime phases contained.
    panics: u64,
}

/// Per-target resilience accounting accumulated while serving.
#[derive(Clone, Copy, Debug, Default)]
struct ResAcct {
    quarantined: u64,
    retries: u64,
}

/// One served target: the tier, its resilience accounting, and the circuit.
struct Served {
    tier: Tier,
    acct: ResAcct,
    result: Result<Circuit, ServiceError>,
}

fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// The batched compile server: a shared [`ShardedCache`], a basis, and a
/// worker count.
#[derive(Clone, Debug)]
pub struct CompileService<B> {
    basis: B,
    cache: ShardedCache,
    workers: usize,
    resilience: Resilience,
    rules: Option<Arc<RuleSet>>,
}

impl<B: Basis + Sync> CompileService<B> {
    /// A service over `basis` with a fresh default [`ShardedCache`] and
    /// one worker.
    pub fn new(basis: B) -> Self {
        Self::with_cache(basis, ShardedCache::new())
    }

    /// A service sharing an existing cache (several services — or
    /// `ashn::Compiler`s via `with_shared_cache` — can point at one).
    ///
    /// The closed-form retargeting rule tier is armed with the standard
    /// table by default; override or disable it with [`Self::rules`].
    pub fn with_cache(basis: B, cache: ShardedCache) -> Self {
        Self {
            basis,
            cache,
            workers: 1,
            resilience: Resilience::default(),
            rules: Some(standard_rules()),
        }
    }

    /// Overrides the retargeting rule table consulted ahead of the numeric
    /// cache and EA path (`None` disables the rule tier entirely).
    #[must_use]
    pub fn rules(mut self, rules: Option<Arc<RuleSet>>) -> Self {
        self.rules = rules;
        self
    }

    /// The active retargeting rule table, if the tier is armed.
    pub fn rule_set(&self) -> Option<&RuleSet> {
        self.rules.as_deref()
    }

    /// Overrides the resilience policy (retries, deadline budget, the CNOT
    /// degradation tier, and post-serve verification).
    #[must_use]
    pub fn resilience(mut self, resilience: Resilience) -> Self {
        self.resilience = resilience;
        self
    }

    /// The active resilience policy.
    pub fn resilience_policy(&self) -> &Resilience {
        &self.resilience
    }

    /// Fans batches over `workers` scoped threads (`0` = one per hardware
    /// thread). Batch output is bit-identical for every worker count.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The shared cache handle (for stats, persistence, sharing).
    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }

    /// The service's basis.
    pub fn basis(&self) -> &B {
        &self.basis
    }

    /// Canonicalizes, deduplicates, and solves every class in `targets`,
    /// sealing the per-batch solution table. Cold solutions are installed
    /// into the shared cache (in deterministic first-occurrence order).
    fn prime(&self, targets: &[&CMat]) -> Prepared {
        // All phase telemetry lands in the thread's current registry; the
        // journal events below are emitted only from this coordinator
        // thread, with count-valued fields, so a zero-fault run's journal
        // is identical at any worker count.
        let telemetry = ashn_telemetry::current();
        let _prime_span = telemetry.span("service.prime");
        let mut panics = 0u64;
        // Phase 1: canonicalize (parallel; pure per index; panic-isolated —
        // one poisoned target never kills the batch).
        let canonicalize_span = telemetry.span("service.canonicalize");
        let keyed: Vec<Result<(ClassKey, WeylPoint), ServiceError>> =
            parallel_map_isolated(self.workers, targets.len(), |i| {
                let m4 = Mat4::try_from(targets[i]).map_err(|_| ServiceError::InvalidRequest {
                    detail: format!(
                        "target {i} is {}x{}, expected 4x4",
                        targets[i].rows(),
                        targets[i].cols()
                    ),
                })?;
                if !m4.is_unitary(1e-6) {
                    return Err(ServiceError::InvalidRequest {
                        detail: format!("target {i} is not unitary within 1e-6"),
                    });
                }
                let coords = weyl_coordinates4(&m4).canonicalize();
                Ok((ClassKey::new(&self.basis, coords, false), coords))
            })
            .into_iter()
            .map(|r| match r {
                Ok(keyed) => keyed,
                Err(TaskPanic { detail, .. }) => {
                    panics += 1;
                    Err(ServiceError::WorkerPanic { detail })
                }
            })
            .collect();
        drop(canonicalize_span);
        telemetry.event(
            "service.canonicalize",
            &[("targets", (targets.len() as u64).into())],
        );

        // Phase 2: dedup in first-occurrence order (serial, deterministic).
        let dedup_span = telemetry.span("service.dedup");
        let mut index: HashMap<ClassKey, usize> = HashMap::new();
        let mut unique: Vec<UniqueClass> = Vec::new();
        let mut status: Vec<Result<(usize, WeylPoint), ServiceError>> =
            Vec::with_capacity(targets.len());
        for (i, prep) in keyed.into_iter().enumerate() {
            match prep {
                Err(e) => status.push(Err(e)),
                Ok((key, coords)) => {
                    let uidx = *index.entry(key.clone()).or_insert_with(|| {
                        unique.push(UniqueClass {
                            key,
                            rep: i,
                            solution: Solution::Failed("unsolved".into()),
                        });
                        unique.len() - 1
                    });
                    status.push(Ok((uidx, coords)));
                }
            }
        }

        drop(dedup_span);
        telemetry.event(
            "service.dedup",
            &[
                ("targets", (targets.len() as u64).into()),
                ("unique", (unique.len() as u64).into()),
            ],
        );

        // Phase 3a: rule-tier consultation (serial — cheap clones). Rules
        // come FIRST: a class covered by a closed-form retargeting rule
        // never touches the numeric memo-cache or the EA path. Rule
        // fragments are shared with future batches under the namespaced
        // pair key, never the numeric key.
        let basis_name = self.basis.name();
        let basis_params = self.basis.cache_params();
        let rule_span = telemetry.span("service.rule_tier");
        let mut ruled_count = 0u64;
        for class in unique.iter_mut() {
            let ruled = self.rules.as_ref().and_then(|rules| {
                let (_, coords) = status[class.rep].as_ref().ok()?;
                let rule = rules.class_rule(&basis_name, &basis_params, *coords)?;
                Some((rule, *coords))
            });
            if let Some((rule, coords)) = ruled {
                let entry = rule.entry(targets[class.rep]);
                self.cache
                    .store(rule_key(&self.basis, &rule.label, coords), entry.clone());
                class.solution = Solution::Rule(entry);
                ruled_count += 1;
            }
        }
        drop(rule_span);
        telemetry.event("service.rule_tier", &[("ruled", ruled_count.into())]);

        // Phase 3b: shared-cache lookups for everything the rules did not
        // cover (serial, ascending class index — the cold list order the
        // deterministic install below depends on).
        let fetch_span = telemetry.span("service.cache_fetch");
        let mut cold: Vec<usize> = Vec::new();
        for (uidx, class) in unique.iter_mut().enumerate() {
            if matches!(class.solution, Solution::Rule(_)) {
                continue;
            }
            match self.cache.fetch(&class.key) {
                Some(entry) => class.solution = Solution::Warm(entry),
                None => cold.push(uidx),
            }
        }
        drop(fetch_span);
        telemetry.event(
            "service.cache_fetch",
            &[
                (
                    "warm",
                    ((unique.len() - ruled_count as usize - cold.len()) as u64).into(),
                ),
                ("cold", (cold.len() as u64).into()),
            ],
        );

        // Phase 4: cold synthesis of the representatives over the worker
        // pool, panic-isolated and driven by the retry policy. The fallback
        // tier is disabled here on purpose: a degraded CNOT circuit must
        // never be cached (or served to other targets) under the requested
        // basis's class key — degradation happens per target at serve time.
        // Each job is a pure function of its target and the (fixed) policy,
        // so results are bit-identical at any worker count.
        let cold_policy = self.resilience.retry.with_fallback(false);
        let cold_span = telemetry.span("service.cold_synth");
        // A cold job resolves to (entry, attempts) or a rendered failure;
        // the outer layer is the task-boundary panic isolation.
        type ColdOutcome = Result<(ClassEntry, u32), String>;
        let solved: Vec<Result<ColdOutcome, TaskPanic>> =
            parallel_map_isolated(self.workers, cold.len(), |j| {
                let rep = unique[cold[j]].rep;
                let outcome = synthesize_resilient(&self.basis, targets[rep], &cold_policy)
                    .map_err(|e| e.to_string())?;
                let core = TwoQubitCircuit::try_from(outcome.circuit)
                    .map_err(|e| format!("synthesis output not a two-qubit circuit: {e}"))?;
                Ok((
                    ClassEntry {
                        target: targets[rep].clone(),
                        circuit: core,
                    },
                    outcome.attempts,
                ))
            });

        // Install in deterministic order; share with future batches.
        let mut retries = 0u64;
        for (j, result) in solved.into_iter().enumerate() {
            let uidx = cold[j];
            match result {
                Ok(Ok((entry, attempts))) => {
                    retries += u64::from(attempts.saturating_sub(1));
                    self.cache.store(unique[uidx].key.clone(), entry.clone());
                    unique[uidx].solution = Solution::Cold(entry);
                }
                Ok(Err(detail)) => unique[uidx].solution = Solution::Failed(detail),
                Err(TaskPanic { detail, .. }) => {
                    panics += 1;
                    unique[uidx].solution =
                        Solution::Failed(format!("synthesis worker panicked: {detail}"));
                }
            }
        }
        drop(cold_span);
        telemetry.event(
            "service.cold_synth",
            &[
                ("cold", (cold.len() as u64).into()),
                ("retries", retries.into()),
                ("panics", panics.into()),
            ],
        );

        Prepared {
            status,
            unique,
            retries,
            panics,
        }
    }

    /// Serves one target from the sealed class table, applying the
    /// verification tier and (when everything else fails) the CNOT
    /// degradation tier. Pure in its inputs except for cache eviction of
    /// quarantined entries — which later serves never read (they read the
    /// sealed table), so batch output stays worker-count invariant.
    fn serve_target(&self, target: &CMat, index: usize, prepared: &Prepared) -> Served {
        let mut acct = ResAcct::default();
        let (tier, result) = self.serve_inner(target, index, prepared, &mut acct);
        Served { tier, acct, result }
    }

    fn serve_inner(
        &self,
        target: &CMat,
        index: usize,
        prepared: &Prepared,
        acct: &mut ResAcct,
    ) -> (Tier, Result<Circuit, ServiceError>) {
        let (uidx, coords) = match &prepared.status[index] {
            // A worker panic during canonicalization is transient — the
            // degradation tier can still serve the target. A validation
            // error is not (the fallback would reject the same target).
            Err(e) => return self.degrade(target, e.clone()),
            Ok(ok) => *ok,
        };
        let class = &prepared.unique[uidx];
        let (entry, cold, rule) = match &class.solution {
            Solution::Warm(entry) => (entry, false, false),
            Solution::Rule(entry) => (entry, false, true),
            Solution::Cold(entry) => (entry, true, false),
            Solution::Failed(detail) => {
                return self.degrade(
                    target,
                    ServiceError::Synth {
                        detail: detail.clone(),
                    },
                )
            }
        };
        let (tier, circuit) = if cold && class.rep == index {
            // The representative IS the cold synthesis.
            (Tier::Cold, entry.circuit.clone().into())
        } else if let Some(fragment) = rule
            .then(|| self.exact_rule_fragment(target, coords))
            .flatten()
        {
            // Exact known gate of a rule-covered class: its pre-dressed
            // fragment serves verbatim. Without this, only the class
            // representative would get the fast path — every other known
            // gate of the class would pay a KAK re-dress per serve.
            (Tier::Rule, fragment)
        } else {
            match serve_from_entry(target, coords, entry) {
                // Every serve of a rule-solved class — verbatim fragment or
                // re-dressed from the exact core — is a rule-tier serve.
                Some((circuit, _)) if rule => (Tier::Rule, circuit),
                Some((circuit, Lookup::ExactHit)) => (Tier::Exact, circuit),
                Some((circuit, _)) => (Tier::Redressed, circuit),
                // Drifted realization (possible only for entries loaded
                // from a foreign scheme version): quarantine and pay a
                // private cold synthesis.
                None => {
                    return self.quarantine(
                        target,
                        &class.key,
                        "stored circuit drifted from its class",
                        acct,
                    )
                }
            }
        };
        // Verification tier: every served circuit — cache hit or fresh —
        // must realize its target at tolerance; a failure quarantines the
        // cache entry and resynthesizes.
        let poisoned = ashn_math::failpoint!("service::cache::serve");
        if let Some(tol) = self.resilience.verify_tol {
            let err = if poisoned {
                f64::INFINITY
            } else {
                circuit.error(target)
            };
            // NaN-safe: a corrupted entry can make the error NaN, which
            // must quarantine, not pass a `>` comparison.
            if err.is_nan() || err > tol {
                return self.quarantine(
                    target,
                    &class.key,
                    &format!("served circuit verification error {err:.2e} exceeds {tol:.2e}"),
                    acct,
                );
            }
        }
        (tier, Ok(circuit))
    }

    /// The pre-dressed rule fragment for `target`, when `target` is an
    /// exact known gate of a rule covering its class (`None` otherwise —
    /// dressed class members are re-dressed from the stored exact core).
    fn exact_rule_fragment(&self, target: &CMat, coords: WeylPoint) -> Option<Circuit> {
        let rules = self.rules.as_ref()?;
        let rule = rules.class_rule(&self.basis.name(), &self.basis.cache_params(), coords)?;
        let gate = rule.match_gate(target)?;
        Some(gate.circuit.clone().into())
    }

    /// Evicts a bad cache entry and resynthesizes the target privately
    /// (verified, retried, never written back), degrading on failure.
    fn quarantine(
        &self,
        target: &CMat,
        key: &ClassKey,
        reason: &str,
        acct: &mut ResAcct,
    ) -> (Tier, Result<Circuit, ServiceError>) {
        self.cache.evict(key);
        acct.quarantined += 1;
        match synthesize_resilient(
            &self.basis,
            target,
            &self.resilience.retry.with_fallback(false),
        ) {
            Ok(out) => {
                acct.retries += u64::from(out.attempts.saturating_sub(1));
                if let Some(tol) = self.resilience.verify_tol {
                    let err = out.circuit.error(target);
                    if err.is_nan() || err > tol {
                        return self.degrade(
                            target,
                            ServiceError::Synth {
                                detail: format!(
                                    "resynthesis after quarantine ({reason}) still fails \
                                     verification: error {err:.2e} exceeds {tol:.2e}"
                                ),
                            },
                        );
                    }
                }
                (Tier::Cold, Ok(out.circuit))
            }
            Err(e) => self.degrade(target, e.into()),
        }
    }

    /// The last tier: an exact CNOT-basis decomposition, verified at
    /// `1e-9` inside [`try_decompose_cnot`]. Disabled (surfacing `err`)
    /// when the policy turns the fallback off or the target is itself
    /// invalid.
    fn degrade(&self, target: &CMat, err: ServiceError) -> (Tier, Result<Circuit, ServiceError>) {
        if !self.resilience.retry.fallback {
            return (Tier::Failed, Err(err));
        }
        match try_decompose_cnot(target) {
            Ok(circuit) => (Tier::Degraded, Ok(circuit.into())),
            Err(_) => (Tier::Failed, Err(err)),
        }
    }

    /// Folds per-target tiers into [`ServiceStats`], the shared cache's
    /// hit/miss counters, and the telemetry registry — the ONE accounting
    /// path for serve outcomes, so the three views can never disagree.
    fn tally(&self, tiers: impl IntoIterator<Item = Tier>, stats: &mut ServiceStats) {
        let before = *stats;
        for tier in tiers {
            let outcome = match tier {
                Tier::Exact => {
                    stats.exact_hits += 1;
                    Lookup::ExactHit
                }
                Tier::Redressed => {
                    stats.class_hits += 1;
                    Lookup::ClassHit
                }
                Tier::Rule => {
                    stats.rule_hits += 1;
                    Lookup::RuleHit
                }
                Tier::Cold => {
                    stats.cold_serves += 1;
                    Lookup::Miss
                }
                Tier::Degraded => {
                    stats.degraded += 1;
                    Lookup::Miss
                }
                Tier::Failed => {
                    stats.failed += 1;
                    Lookup::Miss
                }
            };
            self.cache.record(outcome);
        }
        // Bulk-mirror this batch's tier deltas into the registry (one add
        // per tier, not per target).
        let telemetry = ashn_telemetry::current();
        for (name, delta) in [
            ("service.serve.exact", stats.exact_hits - before.exact_hits),
            (
                "service.serve.redressed",
                stats.class_hits - before.class_hits,
            ),
            ("service.serve.rule", stats.rule_hits - before.rule_hits),
            ("service.serve.cold", stats.cold_serves - before.cold_serves),
            ("service.serve.degraded", stats.degraded - before.degraded),
            ("service.serve.failed", stats.failed - before.failed),
        ] {
            if delta > 0 {
                telemetry.add(name, delta);
            }
        }
    }

    fn class_counts(prepared: &Prepared, stats: &mut ServiceStats) {
        stats.unique_classes = prepared.unique.len();
        for class in &prepared.unique {
            match class.solution {
                Solution::Warm(_) => stats.warm_classes += 1,
                Solution::Rule(_) => stats.rule_classes += 1,
                Solution::Cold(_) | Solution::Failed(_) => stats.cold_classes += 1,
            }
        }
    }

    /// Compiles a batch of raw `SU(4)` targets into native circuits.
    ///
    /// Identical Weyl classes across the whole batch are deduplicated
    /// before any numerical search runs; unique cold classes fan over the
    /// worker pool; every target is then served from the sealed class
    /// table (exact repeats verbatim, same-class targets re-dressed).
    /// Output is bit-identical for any worker count.
    pub fn synthesize_batch(&self, targets: &[CMat]) -> BatchResult {
        let telemetry = ashn_telemetry::current();
        let _batch_span = telemetry.span("service.batch");
        telemetry.add("service.batches", 1);
        telemetry.add("service.requests", targets.len() as u64);
        telemetry.add("service.targets", targets.len() as u64);
        let t0 = Instant::now();
        let refs: Vec<&CMat> = targets.iter().collect();
        let prepared = self.prime(&refs);
        let mut stats = ServiceStats {
            requests: targets.len(),
            targets: targets.len(),
            workers: self.workers,
            retries: prepared.retries,
            worker_panics: prepared.panics,
            ..ServiceStats::default()
        };
        // Serve phase, panic-isolated: a panicking serve is repaired
        // serially (outside the pool), and if the repair panics too the
        // target drops to the degradation tier — the batch never dies.
        let serve_span = telemetry.span("service.serve");
        let isolated = parallel_map_isolated(self.workers, targets.len(), |i| {
            self.serve_target(&targets[i], i, &prepared)
        });
        let served: Vec<Served> = isolated
            .into_iter()
            .enumerate()
            .map(|(i, r)| match r {
                Ok(s) => s,
                Err(TaskPanic { .. }) => {
                    stats.worker_panics += 1;
                    self.repair_serve(&targets[i], i, &prepared)
                }
            })
            .collect();
        drop(serve_span);
        telemetry.event(
            "service.serve",
            &[("targets", (targets.len() as u64).into())],
        );
        Self::class_counts(&prepared, &mut stats);
        let mut circuits = Vec::with_capacity(served.len());
        let mut degraded = Vec::with_capacity(served.len());
        let mut tiers = Vec::with_capacity(served.len());
        for s in served {
            tiers.push(s.tier);
            degraded.push(s.tier == Tier::Degraded);
            stats.quarantined += s.acct.quarantined;
            stats.retries += s.acct.retries;
            circuits.push(s.result);
        }
        self.tally(tiers, &mut stats);
        stats.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        Self::mirror_resilience(&telemetry, &stats);
        BatchResult {
            circuits,
            degraded,
            stats,
        }
    }

    /// Bulk-mirrors a finished batch's resilience accounting into the
    /// registry (one add per nonzero counter).
    fn mirror_resilience(telemetry: &ashn_telemetry::Registry, stats: &ServiceStats) {
        for (name, value) in [
            ("service.quarantined", stats.quarantined),
            ("service.retries", stats.retries),
            ("service.worker_panics", stats.worker_panics),
        ] {
            if value > 0 {
                telemetry.add(name, value);
            }
        }
    }

    /// Serial second chance for a serve that panicked on the worker pool;
    /// a second panic drops the target to the degradation tier.
    fn repair_serve(&self, target: &CMat, index: usize, prepared: &Prepared) -> Served {
        match catch_unwind(AssertUnwindSafe(|| {
            self.serve_target(target, index, prepared)
        })) {
            Ok(served) => served,
            Err(payload) => {
                let detail = describe_panic(payload.as_ref());
                let (tier, result) = match catch_unwind(AssertUnwindSafe(|| {
                    self.degrade(target, ServiceError::WorkerPanic { detail })
                })) {
                    Ok(outcome) => outcome,
                    Err(second) => (
                        Tier::Failed,
                        Err(ServiceError::WorkerPanic {
                            detail: describe_panic(second.as_ref()),
                        }),
                    ),
                };
                Served {
                    tier,
                    acct: ResAcct::default(),
                    result,
                }
            }
        }
    }

    /// The service's compiled SWAP fragment, memoized in the shared cache
    /// under the dedicated swap key (mirrors `CachedBasis::native_swap`).
    fn swap_fragment(&self) -> Result<Circuit, ServiceError> {
        let swap = ashn_gates::two::swap();
        let key = ClassKey::new(
            &self.basis,
            ashn_gates::kak::weyl_coordinates(&swap).canonicalize(),
            true,
        );
        if let Some(entry) = self.cache.fetch(&key) {
            return Ok(entry.circuit.into());
        }
        let circuit = self.basis.native_swap()?;
        if let Ok(core) = TwoQubitCircuit::try_from(circuit.clone()) {
            self.cache.store(
                key,
                ClassEntry {
                    target: swap,
                    circuit: core,
                },
            );
        }
        Ok(circuit)
    }

    /// Compiles a batch of circuits through the full pipeline:
    /// synthesize (batch-deduplicated) → route ([`LookaheadRouter`]) →
    /// optimize (per-request [`OptLevel`]) → schedule (per-request noise).
    ///
    /// All two-qubit targets across *every* request are canonicalized and
    /// deduplicated together before any synthesis runs, then each request
    /// is assembled independently on the worker pool. Output is
    /// bit-identical for any worker count.
    pub fn compile_batch(&self, requests: &[CompileRequest]) -> BatchCompileResult {
        let telemetry = ashn_telemetry::current();
        let _batch_span = telemetry.span("service.batch");
        telemetry.add("service.batches", 1);
        telemetry.add("service.requests", requests.len() as u64);
        let t0 = Instant::now();
        // Gather every 2q target across the batch (request-major order)
        // plus each request's slice into that list.
        let mut targets: Vec<&CMat> = Vec::new();
        let mut spans: Vec<(usize, usize)> = Vec::with_capacity(requests.len());
        for req in requests {
            let start = targets.len();
            for inst in &req.circuit.instructions {
                if inst.qubits.len() == 2 {
                    targets.push(&inst.matrix);
                }
            }
            spans.push((start, targets.len()));
        }
        telemetry.add("service.targets", targets.len() as u64);
        let prepared = self.prime(&targets);
        let swap_fragment = self.swap_fragment();

        let mut stats = ServiceStats {
            requests: requests.len(),
            targets: targets.len(),
            workers: self.workers,
            retries: prepared.retries,
            worker_panics: prepared.panics,
            ..ServiceStats::default()
        };
        // Request assembly, panic-isolated: a panicking request is retried
        // once serially (outside the pool, where the worker-boundary
        // failpoint cannot re-fire); a second panic fails only that
        // request — the batch never dies.
        let serve_span = telemetry.span("service.serve");
        let isolated = parallel_map_isolated(self.workers, requests.len(), |r| {
            self.compile_one(
                &requests[r],
                spans[r].0,
                &targets,
                &prepared,
                &swap_fragment,
            )
        });
        let compiled: Vec<(Vec<Tier>, ResAcct, Result<CompileResult, ServiceError>)> = isolated
            .into_iter()
            .enumerate()
            .map(|(r, outcome)| match outcome {
                Ok(done) => done,
                Err(TaskPanic { .. }) => {
                    stats.worker_panics += 1;
                    match catch_unwind(AssertUnwindSafe(|| {
                        self.compile_one(
                            &requests[r],
                            spans[r].0,
                            &targets,
                            &prepared,
                            &swap_fragment,
                        )
                    })) {
                        Ok(done) => done,
                        Err(payload) => (
                            Vec::new(),
                            ResAcct::default(),
                            Err(ServiceError::WorkerPanic {
                                detail: describe_panic(payload.as_ref()),
                            }),
                        ),
                    }
                }
            })
            .collect();
        drop(serve_span);
        telemetry.event(
            "service.serve",
            &[("requests", (requests.len() as u64).into())],
        );

        Self::class_counts(&prepared, &mut stats);
        let mut results = Vec::with_capacity(compiled.len());
        let mut tiers = Vec::new();
        for (request_tiers, acct, result) in compiled {
            tiers.extend(request_tiers);
            stats.quarantined += acct.quarantined;
            stats.retries += acct.retries;
            results.push(result);
        }
        self.tally(tiers, &mut stats);
        stats.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        Self::mirror_resilience(&telemetry, &stats);
        BatchCompileResult { results, stats }
    }

    /// Point-in-time snapshot of the telemetry registry this service
    /// records into — the thread's current registry
    /// ([`ashn_telemetry::current`]: the innermost installed one, else the
    /// process-wide global). Covers every layer the service drives: batch
    /// phase timings, cache lookup tiers, EA waves, retry/degradation
    /// events, routing counters.
    pub fn telemetry_snapshot(&self) -> ashn_telemetry::TelemetrySnapshot {
        ashn_telemetry::current().snapshot()
    }

    /// [`Self::telemetry_snapshot`] rendered as the human-readable text
    /// report (see `TelemetrySnapshot::render_json` /
    /// `render_prometheus` for the machine-readable forms).
    pub fn telemetry_report(&self) -> String {
        self.telemetry_snapshot().render_text()
    }

    /// Routes, optimizes, and schedules one request against the sealed
    /// class table. Pure in its inputs — safe to fan over workers.
    fn compile_one(
        &self,
        req: &CompileRequest,
        target_start: usize,
        targets: &[&CMat],
        prepared: &Prepared,
        swap_fragment: &Result<Circuit, ServiceError>,
    ) -> (Vec<Tier>, ResAcct, Result<CompileResult, ServiceError>) {
        let mut tiers = Vec::new();
        let mut acct = ResAcct::default();
        let result = self
            .compile_one_inner(
                req,
                target_start,
                targets,
                prepared,
                swap_fragment,
                &mut tiers,
                &mut acct,
            )
            .map(|mut compiled| {
                compiled.degraded = tiers.contains(&Tier::Degraded);
                compiled
            });
        (tiers, acct, result)
    }

    #[allow(clippy::too_many_arguments)]
    fn compile_one_inner(
        &self,
        req: &CompileRequest,
        target_start: usize,
        targets: &[&CMat],
        prepared: &Prepared,
        swap_fragment: &Result<Circuit, ServiceError>,
        tiers: &mut Vec<Tier>,
        acct: &mut ResAcct,
    ) -> Result<CompileResult, ServiceError> {
        let n = req.circuit.n_qubits();
        let grid = req.grid.unwrap_or_else(|| Grid::for_qubits(n));
        if grid.len() < n {
            return Err(ServiceError::Config {
                detail: format!("grid has {} sites but the circuit needs {n}", grid.len()),
            });
        }
        let sites = grid.len();
        let mut router = LookaheadRouter::new(grid, n);
        let mut physical = Circuit::new(sites);
        physical.phase = req.circuit.phase;
        let mut tidx = target_start;
        for inst in &req.circuit.instructions {
            match *inst.qubits.as_slice() {
                // Scalar instructions fold into the global phase.
                [] => physical.phase *= inst.matrix[(0, 0)],
                [q] => {
                    if q >= n {
                        return Err(ServiceError::InvalidRequest {
                            detail: format!("wire {q} outside the {n}-qubit register"),
                        });
                    }
                    let mut moved = inst.clone();
                    moved.qubits = vec![router.position(q)];
                    physical.try_push(moved)?;
                }
                [a, b] => {
                    if a == b || a >= n || b >= n {
                        return Err(ServiceError::InvalidRequest {
                            detail: format!("bad wire pair ({a}, {b}) on {n} qubits"),
                        });
                    }
                    let index = tidx;
                    tidx += 1;
                    for op in router.route_layer(&[(a, b)]) {
                        match op {
                            RouteOp::Swap(x, y) => {
                                let fragment = swap_fragment.as_ref().map_err(Clone::clone)?;
                                physical.append(fragment.embed(sites, &[x, y])?)?;
                            }
                            RouteOp::Gate { a: pa, b: pb, .. } => {
                                let served = self.serve_target(targets[index], index, prepared);
                                tiers.push(served.tier);
                                acct.quarantined += served.acct.quarantined;
                                acct.retries += served.acct.retries;
                                physical.append(served.result?.embed(sites, &[pa, pb])?)?;
                            }
                        }
                    }
                }
                _ => {
                    let detail = format!(
                        "instruction {:?} acts on {} qubits; the pipeline compiles 1q/2q circuits",
                        inst.label,
                        inst.qubits.len()
                    );
                    return Err(ServiceError::InvalidRequest { detail });
                }
            }
        }

        let opt_stats = match req.opt {
            OptLevel::None => None,
            OptLevel::Light => {
                let (optimized, stats) = structural_pipeline().run(&physical)?;
                physical = optimized;
                Some(stats)
            }
            OptLevel::Standard => {
                let (optimized, stats) =
                    standard_pipeline(&self.basis, OPT_ACCEPT_TOL).run(&physical)?;
                physical = optimized;
                Some(stats)
            }
        };

        let circuit = match &req.noise {
            Some(noise) => stamp_noise(&physical, noise),
            None => physical,
        };
        Ok(CompileResult {
            circuit,
            positions: (0..n).map(|l| router.position(l)).collect(),
            opt_stats,
            degraded: false,
        })
    }
}
