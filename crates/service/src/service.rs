//! The batched compile server.
//!
//! [`CompileService`] turns the per-call synthesis pipeline into a
//! multi-tenant batch engine built around one observation from the paper:
//! every `SU(4)` target collapses to a Weyl class that is compiled once
//! and re-dressed forever. A batch is therefore processed as
//!
//! 1. **Canonicalize** every target to its quantized Weyl class
//!    ([`ClassKey`]) — fanned over the worker pool;
//! 2. **Deduplicate** identical classes across the *whole batch* before
//!    any EA/pulse search runs — one thousand requests with two hundred
//!    distinct classes cost two hundred cold syntheses at most;
//! 3. **Solve** the classes missing from the shared [`ShardedCache`] on a
//!    deterministic worker pool ([`ashn_core::par::parallel_map`]: indexed
//!    jobs, results in index order — batch output is bit-identical at any
//!    worker count);
//! 4. **Serve** every request from the solved-class table: exact repeats
//!    verbatim, same-class targets re-dressed with KAK-computed locals
//!    ([`ashn_synth::cache::serve_from_entry`]).
//!
//! Worker-count invariance holds because each phase is a pure
//! index-ordered map over frozen inputs: requests never read the shared
//! cache during the parallel phases — they read the per-batch solution
//! table, which is sealed before fan-out (cache evictions between batches
//! can change *speed*, never *bits*).
//!
//! [`CompileService::compile_batch`] extends the same machinery to whole
//! circuits: per-request routing on a grid ([`LookaheadRouter`]), optional
//! optimizer passes, and noise scheduling — the full
//! synthesize → route → opt → schedule pipeline behind a
//! [`CompileRequest`]/[`CompileResult`] API.

use crate::error::ServiceError;
use crate::sharded::ShardedCache;
use ashn_core::par::parallel_map;
use ashn_gates::kak::weyl_coordinates4;
use ashn_gates::weyl::WeylPoint;
use ashn_ir::{Basis, Circuit};
use ashn_math::{CMat, Mat4};
use ashn_opt::{standard_pipeline, structural_pipeline, OptStats};
use ashn_qv::{stamp_noise, QvNoise};
use ashn_route::{Grid, LookaheadRouter, RouteOp};
use ashn_synth::cache::{serve_from_entry, ClassEntry, ClassKey, ClassStore, Lookup};
use ashn_synth::circuit2::TwoQubitCircuit;
use std::collections::HashMap;
use std::time::Instant;

/// Acceptance tolerance for resynthesized blocks under
/// [`OptLevel::Standard`] — the fidelity scale the numerical bases
/// synthesize to (mirrors `ashn::Compiler::OPT_ACCEPT_TOL`).
pub const OPT_ACCEPT_TOL: f64 = 1e-5;

/// Optimizer effort for a [`CompileRequest`] (the `ashn-opt` pipelines).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OptLevel {
    /// Route and schedule only.
    #[default]
    None,
    /// Structural passes (exact rewrites at near-machine precision).
    Light,
    /// Structural passes plus two-qubit block resynthesis through the
    /// service basis. Resynthesis runs on the *uncached* basis so each
    /// request stays a pure function of its inputs (worker-count
    /// invariant); repeated blocks are rare after routing, so the cache
    /// would buy little here anyway.
    Standard,
}

/// One circuit to compile, with its pipeline options.
#[derive(Clone, Debug)]
pub struct CompileRequest {
    /// The logical circuit (1q/2q instructions on arbitrary wires).
    pub circuit: Circuit,
    /// Routing grid (default: the smallest near-square grid holding the
    /// circuit's register).
    pub grid: Option<Grid>,
    /// Optimizer effort between routing and scheduling.
    pub opt: OptLevel,
    /// When set, the result circuit carries per-gate depolarizing rates
    /// scheduled from this noise model (single-qubit fixed, two-qubit ∝
    /// duration).
    pub noise: Option<QvNoise>,
}

impl CompileRequest {
    /// A request with default options (auto grid, no opt, no scheduling).
    pub fn new(circuit: Circuit) -> Self {
        Self {
            circuit,
            grid: None,
            opt: OptLevel::None,
            noise: None,
        }
    }

    /// Sets an explicit routing grid.
    #[must_use]
    pub fn grid(mut self, grid: Grid) -> Self {
        self.grid = Some(grid);
        self
    }

    /// Sets the optimizer effort.
    #[must_use]
    pub fn opt(mut self, opt: OptLevel) -> Self {
        self.opt = opt;
        self
    }

    /// Schedules per-gate error rates from `noise`.
    #[must_use]
    pub fn noise(mut self, noise: QvNoise) -> Self {
        self.noise = Some(noise);
        self
    }
}

/// A compiled request: the physical-site circuit and where the logical
/// qubits ended up.
#[derive(Clone, Debug)]
pub struct CompileResult {
    /// The physical-site circuit (noise-scheduled when the request asked).
    pub circuit: Circuit,
    /// `positions[l]` = physical site holding logical qubit `l` at the end.
    pub positions: Vec<usize>,
    /// Optimizer accounting, when the request ran passes.
    pub opt_stats: Option<OptStats>,
}

/// How one synthesis target was served (the cache-tier breakdown in
/// [`ServiceStats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Tier {
    /// Served verbatim from a stored entry (exact target repeat).
    Exact,
    /// Served by re-dressing a same-class entry.
    Redressed,
    /// This target's class was synthesized cold (it was the class
    /// representative, or its stored entry had drifted).
    Cold,
    /// Cold synthesis of the class failed.
    Failed,
}

/// Per-batch accounting: dedup effectiveness, cache-hit tiers, wall time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ServiceStats {
    /// Requests in the batch.
    pub requests: usize,
    /// Two-qubit synthesis targets across the batch (== `requests` for
    /// [`CompileService::synthesize_batch`]; the total 2q instruction
    /// count for [`CompileService::compile_batch`]).
    pub targets: usize,
    /// Distinct Weyl classes among the valid targets.
    pub unique_classes: usize,
    /// Unique classes already present in the shared cache.
    pub warm_classes: usize,
    /// Unique classes synthesized cold by this batch.
    pub cold_classes: usize,
    /// Targets served verbatim (exact repeat of a stored target).
    pub exact_hits: u64,
    /// Targets served by re-dressing a same-class entry.
    pub class_hits: u64,
    /// Targets that paid a cold synthesis (class representatives).
    pub cold_serves: u64,
    /// Targets whose class failed to synthesize.
    pub failed: u64,
    /// Wall-clock time for the whole batch, milliseconds.
    pub wall_ms: f64,
    /// Worker threads the batch fanned over.
    pub workers: usize,
}

impl ServiceStats {
    /// Targets per unique class — how much work batch dedup saved
    /// (1.0 = nothing shared, N = every class amortized N ways).
    pub fn dedup_ratio(&self) -> f64 {
        if self.unique_classes == 0 {
            1.0
        } else {
            self.targets as f64 / self.unique_classes as f64
        }
    }

    /// Fraction of targets served without a cold synthesis.
    pub fn hit_rate(&self) -> f64 {
        if self.targets == 0 {
            0.0
        } else {
            (self.exact_hits + self.class_hits) as f64 / self.targets as f64
        }
    }

    /// Batch throughput in compiled requests per second.
    pub fn requests_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.requests as f64 / (self.wall_ms / 1e3)
        }
    }
}

/// Result of [`CompileService::synthesize_batch`]: per-target circuits in
/// request order plus batch accounting.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// One circuit (or error) per input target, in input order.
    pub circuits: Vec<Result<Circuit, ServiceError>>,
    /// Batch accounting.
    pub stats: ServiceStats,
}

/// Result of [`CompileService::compile_batch`]: per-request compilations
/// in request order plus batch accounting.
#[derive(Clone, Debug)]
pub struct BatchCompileResult {
    /// One compilation (or error) per request, in request order.
    pub results: Vec<Result<CompileResult, ServiceError>>,
    /// Batch accounting.
    pub stats: ServiceStats,
}

/// One unique Weyl class in a batch and how it got its solution.
struct UniqueClass {
    key: ClassKey,
    /// Index of the representative target (first occurrence).
    rep: usize,
    solution: Solution,
}

enum Solution {
    /// Found in the shared cache before the batch ran.
    Warm(ClassEntry),
    /// Synthesized cold by this batch.
    Cold(ClassEntry),
    Failed(String),
}

/// The sealed per-batch class table the serve phase reads.
struct Prepared {
    /// Per target: `(unique-class index, coords)` or the validation error.
    status: Vec<Result<(usize, WeylPoint), ServiceError>>,
    unique: Vec<UniqueClass>,
}

/// The batched compile server: a shared [`ShardedCache`], a basis, and a
/// worker count.
#[derive(Clone, Debug)]
pub struct CompileService<B> {
    basis: B,
    cache: ShardedCache,
    workers: usize,
}

impl<B: Basis + Sync> CompileService<B> {
    /// A service over `basis` with a fresh default [`ShardedCache`] and
    /// one worker.
    pub fn new(basis: B) -> Self {
        Self::with_cache(basis, ShardedCache::new())
    }

    /// A service sharing an existing cache (several services — or
    /// `ashn::Compiler`s via `with_shared_cache` — can point at one).
    pub fn with_cache(basis: B, cache: ShardedCache) -> Self {
        Self {
            basis,
            cache,
            workers: 1,
        }
    }

    /// Fans batches over `workers` scoped threads (`0` = one per hardware
    /// thread). Batch output is bit-identical for every worker count.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The shared cache handle (for stats, persistence, sharing).
    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }

    /// The service's basis.
    pub fn basis(&self) -> &B {
        &self.basis
    }

    /// Canonicalizes, deduplicates, and solves every class in `targets`,
    /// sealing the per-batch solution table. Cold solutions are installed
    /// into the shared cache (in deterministic first-occurrence order).
    fn prime(&self, targets: &[&CMat]) -> Prepared {
        // Phase 1: canonicalize (parallel; pure per index).
        let keyed: Vec<Result<(ClassKey, WeylPoint), ServiceError>> =
            parallel_map(self.workers, targets.len(), |i| {
                let m4 = Mat4::try_from(targets[i]).map_err(|_| ServiceError::InvalidRequest {
                    detail: format!(
                        "target {i} is {}x{}, expected 4x4",
                        targets[i].rows(),
                        targets[i].cols()
                    ),
                })?;
                if !m4.is_unitary(1e-6) {
                    return Err(ServiceError::InvalidRequest {
                        detail: format!("target {i} is not unitary within 1e-6"),
                    });
                }
                let coords = weyl_coordinates4(&m4).canonicalize();
                Ok((ClassKey::new(&self.basis, coords, false), coords))
            });

        // Phase 2: dedup in first-occurrence order (serial, deterministic).
        let mut index: HashMap<ClassKey, usize> = HashMap::new();
        let mut unique: Vec<UniqueClass> = Vec::new();
        let mut status: Vec<Result<(usize, WeylPoint), ServiceError>> =
            Vec::with_capacity(targets.len());
        for (i, prep) in keyed.into_iter().enumerate() {
            match prep {
                Err(e) => status.push(Err(e)),
                Ok((key, coords)) => {
                    let uidx = *index.entry(key.clone()).or_insert_with(|| {
                        unique.push(UniqueClass {
                            key,
                            rep: i,
                            solution: Solution::Failed("unsolved".into()),
                        });
                        unique.len() - 1
                    });
                    status.push(Ok((uidx, coords)));
                }
            }
        }

        // Phase 3: shared-cache lookups (serial — cheap clones).
        let mut cold: Vec<usize> = Vec::new();
        for (uidx, class) in unique.iter_mut().enumerate() {
            match self.cache.fetch(&class.key) {
                Some(entry) => class.solution = Solution::Warm(entry),
                None => cold.push(uidx),
            }
        }

        // Phase 4: cold synthesis of the representatives over the worker
        // pool. Each job is a pure function of its target, so results are
        // bit-identical at any worker count.
        let solved: Vec<Result<ClassEntry, String>> = parallel_map(self.workers, cold.len(), |j| {
            let rep = unique[cold[j]].rep;
            let circuit = self
                .basis
                .synthesize(targets[rep])
                .map_err(|e| e.to_string())?;
            let core = TwoQubitCircuit::try_from(circuit)
                .map_err(|e| format!("synthesis output not a two-qubit circuit: {e}"))?;
            Ok(ClassEntry {
                target: targets[rep].clone(),
                circuit: core,
            })
        });

        // Install in deterministic order; share with future batches.
        for (j, result) in solved.into_iter().enumerate() {
            let uidx = cold[j];
            match result {
                Ok(entry) => {
                    self.cache.store(unique[uidx].key.clone(), entry.clone());
                    unique[uidx].solution = Solution::Cold(entry);
                }
                Err(detail) => unique[uidx].solution = Solution::Failed(detail),
            }
        }

        Prepared { status, unique }
    }

    /// Serves one target from the sealed class table.
    fn serve_target(
        &self,
        target: &CMat,
        index: usize,
        prepared: &Prepared,
    ) -> (Tier, Result<Circuit, ServiceError>) {
        let (uidx, coords) = match &prepared.status[index] {
            Err(e) => return (Tier::Failed, Err(e.clone())),
            Ok(ok) => *ok,
        };
        let class = &prepared.unique[uidx];
        let (entry, cold) = match &class.solution {
            Solution::Warm(entry) => (entry, false),
            Solution::Cold(entry) => (entry, true),
            Solution::Failed(detail) => {
                return (
                    Tier::Failed,
                    Err(ServiceError::Synth {
                        detail: detail.clone(),
                    }),
                )
            }
        };
        if cold && class.rep == index {
            // The representative IS the cold synthesis.
            return (Tier::Cold, Ok(entry.circuit.clone().into()));
        }
        match serve_from_entry(target, coords, entry) {
            Some((circuit, Lookup::ExactHit)) => (Tier::Exact, Ok(circuit)),
            Some((circuit, _)) => (Tier::Redressed, Ok(circuit)),
            // Drifted realization (possible only for entries loaded from a
            // foreign scheme version): pay a private cold synthesis.
            None => match self.basis.synthesize(target) {
                Ok(circuit) => (Tier::Cold, Ok(circuit)),
                Err(e) => (Tier::Failed, Err(e.into())),
            },
        }
    }

    /// Folds per-target tiers into [`ServiceStats`] and the shared cache's
    /// hit/miss counters.
    fn tally(&self, tiers: impl IntoIterator<Item = Tier>, stats: &mut ServiceStats) {
        for tier in tiers {
            let outcome = match tier {
                Tier::Exact => {
                    stats.exact_hits += 1;
                    Lookup::ExactHit
                }
                Tier::Redressed => {
                    stats.class_hits += 1;
                    Lookup::ClassHit
                }
                Tier::Cold => {
                    stats.cold_serves += 1;
                    Lookup::Miss
                }
                Tier::Failed => {
                    stats.failed += 1;
                    Lookup::Miss
                }
            };
            self.cache.record(outcome);
        }
    }

    fn class_counts(prepared: &Prepared, stats: &mut ServiceStats) {
        stats.unique_classes = prepared.unique.len();
        for class in &prepared.unique {
            match class.solution {
                Solution::Warm(_) => stats.warm_classes += 1,
                Solution::Cold(_) | Solution::Failed(_) => stats.cold_classes += 1,
            }
        }
    }

    /// Compiles a batch of raw `SU(4)` targets into native circuits.
    ///
    /// Identical Weyl classes across the whole batch are deduplicated
    /// before any numerical search runs; unique cold classes fan over the
    /// worker pool; every target is then served from the sealed class
    /// table (exact repeats verbatim, same-class targets re-dressed).
    /// Output is bit-identical for any worker count.
    pub fn synthesize_batch(&self, targets: &[CMat]) -> BatchResult {
        let t0 = Instant::now();
        let refs: Vec<&CMat> = targets.iter().collect();
        let prepared = self.prime(&refs);
        let served: Vec<(Tier, Result<Circuit, ServiceError>)> =
            parallel_map(self.workers, targets.len(), |i| {
                self.serve_target(&targets[i], i, &prepared)
            });
        let mut stats = ServiceStats {
            requests: targets.len(),
            targets: targets.len(),
            workers: self.workers,
            ..ServiceStats::default()
        };
        Self::class_counts(&prepared, &mut stats);
        let mut circuits = Vec::with_capacity(served.len());
        let mut tiers = Vec::with_capacity(served.len());
        for (tier, result) in served {
            tiers.push(tier);
            circuits.push(result);
        }
        self.tally(tiers, &mut stats);
        stats.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        BatchResult { circuits, stats }
    }

    /// The service's compiled SWAP fragment, memoized in the shared cache
    /// under the dedicated swap key (mirrors `CachedBasis::native_swap`).
    fn swap_fragment(&self) -> Result<Circuit, ServiceError> {
        let swap = ashn_gates::two::swap();
        let key = ClassKey::new(
            &self.basis,
            ashn_gates::kak::weyl_coordinates(&swap).canonicalize(),
            true,
        );
        if let Some(entry) = self.cache.fetch(&key) {
            return Ok(entry.circuit.into());
        }
        let circuit = self.basis.native_swap()?;
        if let Ok(core) = TwoQubitCircuit::try_from(circuit.clone()) {
            self.cache.store(
                key,
                ClassEntry {
                    target: swap,
                    circuit: core,
                },
            );
        }
        Ok(circuit)
    }

    /// Compiles a batch of circuits through the full pipeline:
    /// synthesize (batch-deduplicated) → route ([`LookaheadRouter`]) →
    /// optimize (per-request [`OptLevel`]) → schedule (per-request noise).
    ///
    /// All two-qubit targets across *every* request are canonicalized and
    /// deduplicated together before any synthesis runs, then each request
    /// is assembled independently on the worker pool. Output is
    /// bit-identical for any worker count.
    pub fn compile_batch(&self, requests: &[CompileRequest]) -> BatchCompileResult {
        let t0 = Instant::now();
        // Gather every 2q target across the batch (request-major order)
        // plus each request's slice into that list.
        let mut targets: Vec<&CMat> = Vec::new();
        let mut spans: Vec<(usize, usize)> = Vec::with_capacity(requests.len());
        for req in requests {
            let start = targets.len();
            for inst in &req.circuit.instructions {
                if inst.qubits.len() == 2 {
                    targets.push(&inst.matrix);
                }
            }
            spans.push((start, targets.len()));
        }
        let prepared = self.prime(&targets);
        let swap_fragment = self.swap_fragment();

        let compiled: Vec<(Vec<Tier>, Result<CompileResult, ServiceError>)> =
            parallel_map(self.workers, requests.len(), |r| {
                self.compile_one(
                    &requests[r],
                    spans[r].0,
                    &targets,
                    &prepared,
                    &swap_fragment,
                )
            });

        let mut stats = ServiceStats {
            requests: requests.len(),
            targets: targets.len(),
            workers: self.workers,
            ..ServiceStats::default()
        };
        Self::class_counts(&prepared, &mut stats);
        let mut results = Vec::with_capacity(compiled.len());
        let mut tiers = Vec::new();
        for (request_tiers, result) in compiled {
            tiers.extend(request_tiers);
            results.push(result);
        }
        self.tally(tiers, &mut stats);
        stats.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        BatchCompileResult { results, stats }
    }

    /// Routes, optimizes, and schedules one request against the sealed
    /// class table. Pure in its inputs — safe to fan over workers.
    fn compile_one(
        &self,
        req: &CompileRequest,
        target_start: usize,
        targets: &[&CMat],
        prepared: &Prepared,
        swap_fragment: &Result<Circuit, ServiceError>,
    ) -> (Vec<Tier>, Result<CompileResult, ServiceError>) {
        let mut tiers = Vec::new();
        let result = self.compile_one_inner(
            req,
            target_start,
            targets,
            prepared,
            swap_fragment,
            &mut tiers,
        );
        (tiers, result)
    }

    fn compile_one_inner(
        &self,
        req: &CompileRequest,
        target_start: usize,
        targets: &[&CMat],
        prepared: &Prepared,
        swap_fragment: &Result<Circuit, ServiceError>,
        tiers: &mut Vec<Tier>,
    ) -> Result<CompileResult, ServiceError> {
        let n = req.circuit.n_qubits();
        let grid = req.grid.unwrap_or_else(|| Grid::for_qubits(n));
        if grid.len() < n {
            return Err(ServiceError::Config {
                detail: format!("grid has {} sites but the circuit needs {n}", grid.len()),
            });
        }
        let sites = grid.len();
        let mut router = LookaheadRouter::new(grid, n);
        let mut physical = Circuit::new(sites);
        physical.phase = req.circuit.phase;
        let mut tidx = target_start;
        for inst in &req.circuit.instructions {
            match *inst.qubits.as_slice() {
                // Scalar instructions fold into the global phase.
                [] => physical.phase *= inst.matrix[(0, 0)],
                [q] => {
                    if q >= n {
                        return Err(ServiceError::InvalidRequest {
                            detail: format!("wire {q} outside the {n}-qubit register"),
                        });
                    }
                    let mut moved = inst.clone();
                    moved.qubits = vec![router.position(q)];
                    physical.try_push(moved)?;
                }
                [a, b] => {
                    if a == b || a >= n || b >= n {
                        return Err(ServiceError::InvalidRequest {
                            detail: format!("bad wire pair ({a}, {b}) on {n} qubits"),
                        });
                    }
                    let index = tidx;
                    tidx += 1;
                    for op in router.route_layer(&[(a, b)]) {
                        match op {
                            RouteOp::Swap(x, y) => {
                                let fragment = swap_fragment.as_ref().map_err(Clone::clone)?;
                                physical.append(fragment.embed(sites, &[x, y])?)?;
                            }
                            RouteOp::Gate { a: pa, b: pb, .. } => {
                                let (tier, fragment) =
                                    self.serve_target(targets[index], index, prepared);
                                tiers.push(tier);
                                physical.append(fragment?.embed(sites, &[pa, pb])?)?;
                            }
                        }
                    }
                }
                _ => {
                    let detail = format!(
                        "instruction {:?} acts on {} qubits; the pipeline compiles 1q/2q circuits",
                        inst.label,
                        inst.qubits.len()
                    );
                    return Err(ServiceError::InvalidRequest { detail });
                }
            }
        }

        let opt_stats = match req.opt {
            OptLevel::None => None,
            OptLevel::Light => {
                let (optimized, stats) = structural_pipeline().run(&physical)?;
                physical = optimized;
                Some(stats)
            }
            OptLevel::Standard => {
                let (optimized, stats) =
                    standard_pipeline(&self.basis, OPT_ACCEPT_TOL).run(&physical)?;
                physical = optimized;
                Some(stats)
            }
        };

        let circuit = match &req.noise {
            Some(noise) => stamp_noise(&physical, noise),
            None => physical,
        };
        Ok(CompileResult {
            circuit,
            positions: (0..n).map(|l| router.position(l)).collect(),
            opt_stats,
        })
    }
}
