//! A process-wide, lock-striped synthesis cache.
//!
//! One [`ShardedCache`] is meant to outlive every individual compiler: it
//! is `Clone` (shared handle), striped over independently locked shards so
//! concurrent compilers rarely contend, bounded per shard with LRU
//! eviction, and persistable to disk ([`ShardedCache::save`] /
//! [`ShardedCache::warm_start`]) so nothing learned in one process is lost
//! to the next. It implements [`ClassStore`], so it plugs into
//! [`ashn_synth::cache::CachedBasis`] (and thus `ashn::Compiler`)
//! anywhere a [`SynthCache`] does.

use crate::persist::{self, LoadOutcome, LoadReport};
use ashn_synth::cache::{CacheStats, ClassEntry, ClassKey, ClassStore, Lookup, SynthCache};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::sync::Arc;

/// Default shard count: enough stripes that a 16-worker pool rarely
/// contends on one lock.
pub const DEFAULT_SHARDS: usize = 16;

/// Default total capacity across shards.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Lock-striped, bounded, persistent class→circuit store shared via
/// cloned handles.
///
/// Each shard is a [`SynthCache`] (bounded LRU with its own mutex and
/// counters); keys are routed to shards by hash, and
/// [`ShardedCache::stats`] aggregates the per-shard counters. Cloning is
/// cheap and shares the underlying storage.
#[derive(Clone, Debug)]
pub struct ShardedCache {
    shards: Arc<Vec<SynthCache>>,
}

impl ShardedCache {
    /// A cache with [`DEFAULT_SHARDS`] shards and [`DEFAULT_CAPACITY`]
    /// total entries.
    pub fn new() -> Self {
        Self::with_config(DEFAULT_SHARDS, DEFAULT_CAPACITY)
    }

    /// A cache with `shards` stripes holding at most `total_capacity`
    /// entries overall (split evenly, rounded up).
    ///
    /// # Panics
    ///
    /// Panics when `shards` or `total_capacity` is zero.
    pub fn with_config(shards: usize, total_capacity: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        assert!(total_capacity > 0, "cache capacity must be positive");
        let per_shard = total_capacity.div_ceil(shards);
        Self {
            shards: Arc::new(
                (0..shards)
                    .map(|_| SynthCache::with_capacity(per_shard))
                    .collect(),
            ),
        }
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, key: &ClassKey) -> &SynthCache {
        // DefaultHasher with fixed (zero) keys: deterministic across
        // processes, so a persisted cache warms the same shards it came
        // from (not that correctness depends on it — any shard serves).
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Aggregated hit/miss/occupancy counters across every shard.
    pub fn stats(&self) -> CacheStats {
        self.shards
            .iter()
            .map(SynthCache::stats)
            .fold(CacheStats::default(), |acc, s| acc.merge(&s))
    }

    /// Total entries currently stored.
    pub fn len(&self) -> usize {
        self.stats().len
    }

    /// Whether no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry in every shard (counters are kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.clear();
        }
    }

    /// Every stored entry across all shards, sorted by key — the
    /// deterministic order [`ShardedCache::save`] serializes in.
    pub fn export_entries(&self) -> Vec<(ClassKey, ClassEntry)> {
        let mut out: Vec<(ClassKey, ClassEntry)> = self
            .shards
            .iter()
            .flat_map(|s| s.export_entries())
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Serializes every cached class to `path` in the versioned format of
    /// [`crate::persist`] (lossless: every `f64` is written as its exact
    /// bit pattern). Returns the number of entries written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<usize> {
        persist::save_to_path(path, &self.export_entries())
    }

    /// Warm-starts this cache from a file written by [`ShardedCache::save`].
    ///
    /// Degrades instead of erroring: a missing file, a version mismatch,
    /// or a corrupt/truncated file leaves the cache cold (any partially
    /// loaded entries are discarded) and reports why in the returned
    /// [`LoadReport`] — service boot never fails because last run's cache
    /// went bad.
    pub fn warm_start(&self, path: impl AsRef<Path>) -> LoadReport {
        let entries = match persist::load_from_path(path) {
            Ok(entries) => entries,
            Err(outcome) => return LoadReport { loaded: 0, outcome },
        };
        let loaded = entries.len();
        for (key, entry) in entries {
            self.shard_for(&key).store(key, entry);
        }
        LoadReport {
            loaded,
            outcome: LoadOutcome::Warm,
        }
    }
}

impl Default for ShardedCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ClassStore for ShardedCache {
    fn fetch(&self, key: &ClassKey) -> Option<ClassEntry> {
        self.shard_for(key).fetch(key)
    }

    fn store(&self, key: ClassKey, entry: ClassEntry) {
        self.shard_for(&key).store(key, entry);
    }

    fn record(&self, outcome: Lookup) {
        // Attribute global lookups to shard 0: per-shard attribution needs
        // the key, which `ClassStore::record` deliberately does not take
        // (the outcome is decided after the fetch). Aggregated stats are
        // what service dashboards read.
        self.shards[0].record(outcome);
    }

    fn evict(&self, key: &ClassKey) -> bool {
        self.shard_for(key).evict(key)
    }
}
