//! # ashn-synth
//!
//! Quantum circuit synthesis for the AshN reproduction:
//!
//! * two-qubit synthesis over the CNOT/CZ basis (0–3 gates), the SQiSW
//!   basis (1–3 applications, after Huang et al. [30]), and the AshN basis
//!   (always a single pulse);
//! * cosine–sine decomposition and quantum multiplexors;
//! * quantum Shannon decomposition for n-qubit unitaries in both the CNOT
//!   and generic-`SU(4)` bases, with the paper's 11-gate three-qubit
//!   construction (Theorem 12) as the generic base case;
//! * a QFactor-style numerical instantiation optimizer used to regenerate
//!   the paper's Fig. 6 experiments.
//!
//! ## Example: one AshN pulse replaces three CNOTs
//!
//! ```
//! use ashn_core::scheme::AshnScheme;
//! use ashn_math::randmat::haar_unitary;
//! use ashn_synth::{ashn_basis::decompose_ashn, cnot_basis::decompose_cnot};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let u = haar_unitary(4, &mut rng);
//! assert_eq!(decompose_cnot(&u).entangler_count(), 3);
//! let s = decompose_ashn(&u, &AshnScheme::new(0.0)).unwrap();
//! assert_eq!(s.circuit.entangler_count(), 1);
//! ```

pub mod ashn_basis;
pub mod b_span;
pub mod basis;
pub mod cache;
pub mod circuit2;
pub mod cnot_basis;
pub mod counts;
pub mod csd;
pub mod instantiate;
pub mod multiplexor;
pub mod qsd;
pub mod resilience;
pub mod resynth;
pub mod retarget;
pub mod sqisw_basis;
pub mod three_qubit;

pub use basis::{AshnBasis, CnotBasis, CzBasis, EcrBasis, SqiswBasis};
pub use cache::{
    serve_from_entry, CacheStats, CachedBasis, ClassEntry, ClassKey, ClassStore, EvictionPolicy,
    Lookup, SynthCache,
};
pub use resilience::{synthesize_resilient, ResilientBasis, ResilientOutcome, RetryPolicy};
pub use retarget::{standard_rules, GateSetRegistry, RuleSet};
