//! Retry, deadline, and graceful-degradation wrappers around any
//! [`Basis`]: the synthesis-side half of the service resilience story.
//!
//! [`synthesize_resilient`] drives a basis through an escalating retry
//! schedule (each attempt widens the EA multistart with a deterministically
//! derived jitter seed), enforces a per-request deadline budget, converts
//! panics escaping the basis into [`SynthError::WorkerPanic`], and — when
//! everything else fails on a valid two-qubit target — degrades to the
//! always-correct exact CNOT-basis decomposition, tagging the result so
//! callers can surface it.

use crate::cnot_basis::try_decompose_cnot;
use ashn_ir::{Basis, Circuit, SynthEffort, SynthError};
use ashn_math::CMat;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// How hard to try before giving up (or degrading).
///
/// The default policy — one attempt, no deadline, fallback enabled — makes
/// [`synthesize_resilient`] behave exactly like `basis.synthesize(u)` on
/// success, with the CNOT fallback engaged only on failure.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total synthesis attempts (≥ 1). Attempt `k` (0-based) runs with
    /// [`SynthEffort::attempt`]` = k`, so retries escalate rather than
    /// repeat the failing search verbatim.
    pub max_attempts: u32,
    /// Wall-clock budget for the whole request, including retries. `None`
    /// never reads the clock, preserving bit-identical results.
    pub deadline: Option<Duration>,
    /// Base seed for the per-attempt jitter streams. Two calls with equal
    /// seeds replay the same retry schedule exactly.
    pub retry_seed: u64,
    /// Degrade to the exact CNOT-basis decomposition when every attempt
    /// fails (valid 4×4 targets only).
    pub fallback: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 1,
            deadline: None,
            retry_seed: 0,
            fallback: true,
        }
    }
}

impl RetryPolicy {
    /// Policy with `max_attempts` escalating attempts.
    #[must_use]
    pub fn with_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Policy with a wall-clock budget for the whole request.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Policy with a different retry-seed stream.
    #[must_use]
    pub fn with_retry_seed(mut self, retry_seed: u64) -> Self {
        self.retry_seed = retry_seed;
        self
    }

    /// Policy with the CNOT degradation tier enabled or disabled.
    #[must_use]
    pub fn with_fallback(mut self, fallback: bool) -> Self {
        self.fallback = fallback;
        self
    }
}

/// A successful resilient synthesis, with provenance.
#[derive(Clone, Debug)]
pub struct ResilientOutcome {
    /// The synthesized circuit.
    pub circuit: Circuit,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// `Some(reason)` when the circuit came from the CNOT degradation tier
    /// instead of the requested basis; the reason is the last basis error.
    pub degraded: Option<String>,
}

fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Synthesizes `u` with retries, a deadline budget, panic containment, and
/// (optionally) graceful degradation to the exact CNOT tier.
///
/// Retry attempt `k` calls
/// [`Basis::synthesize_with_effort`] with `attempt = k` and a jitter seed
/// derived from `policy.retry_seed` via splitmix64 — deterministic, and
/// distinct per attempt. A panic inside the basis is caught and treated as
/// a retriable [`SynthError::WorkerPanic`]. Once the deadline budget is
/// exhausted no further attempts start, and an in-flight EA search aborts
/// at its next wave boundary.
///
/// # Errors
///
/// The last basis error when all attempts fail and the fallback is
/// disabled, rejected (invalid target), or itself fails;
/// [`SynthError::DeadlineExceeded`] when the budget expired first.
pub fn synthesize_resilient<B: Basis + ?Sized>(
    basis: &B,
    u: &CMat,
    policy: &RetryPolicy,
) -> Result<ResilientOutcome, SynthError> {
    let telemetry = ashn_telemetry::current();
    let deadline = policy.deadline.map(|d| Instant::now() + d);
    let max_attempts = policy.max_attempts.max(1);
    let mut attempts = 0u32;
    let mut last_err = None;
    for attempt in 0..max_attempts {
        if let Some(d) = deadline {
            if Instant::now() >= d {
                last_err = Some(SynthError::DeadlineExceeded {
                    basis: basis.name(),
                    detail: format!("budget exhausted before attempt {}", attempt + 1),
                });
                break;
            }
        }
        attempts = attempt + 1;
        let effort = SynthEffort {
            attempt,
            jitter_seed: mix64(policy.retry_seed ^ u64::from(attempt)),
            deadline,
        };
        if attempt > 0 {
            telemetry.add("synth.resilience.retries", 1);
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| basis.synthesize_with_effort(u, effort)));
        match outcome {
            Ok(Ok(circuit)) => {
                return Ok(ResilientOutcome {
                    circuit,
                    attempts,
                    degraded: None,
                });
            }
            Ok(Err(e @ SynthError::InvalidTarget { .. })) => {
                // Retrying cannot fix a malformed target, and the fallback
                // would reject it too.
                return Err(e);
            }
            Ok(Err(e @ SynthError::DeadlineExceeded { .. })) => {
                last_err = Some(e);
                break;
            }
            Ok(Err(e)) => last_err = Some(e),
            Err(payload) => {
                telemetry.add("synth.resilience.panics_caught", 1);
                last_err = Some(SynthError::WorkerPanic {
                    detail: panic_detail(payload.as_ref()),
                });
            }
        }
    }
    let err = last_err.unwrap_or_else(|| SynthError::Convergence {
        basis: basis.name(),
        detail: "no synthesis attempt ran".into(),
    });
    if !policy.fallback {
        return Err(err);
    }
    match try_decompose_cnot(u) {
        Ok(circuit) => {
            telemetry.add("synth.resilience.degraded", 1);
            Ok(ResilientOutcome {
                circuit: circuit.into(),
                attempts,
                degraded: Some(err.to_string()),
            })
        }
        // The original basis error explains the failure better than the
        // fallback's rejection of the same target.
        Err(_) => Err(err),
    }
}

/// A [`Basis`] adapter applying a [`RetryPolicy`] to every synthesis.
///
/// Wrap *outside* any cache (`ResilientBasis<CachedBasis<B>>`), never
/// inside: circuits produced by the degradation tier must not be stored
/// under the wrapped basis's cache key.
#[derive(Clone, Debug)]
pub struct ResilientBasis<B> {
    inner: B,
    policy: RetryPolicy,
}

impl<B: Basis> ResilientBasis<B> {
    /// Wraps `inner` with `policy`.
    pub fn new(inner: B, policy: RetryPolicy) -> Self {
        Self { inner, policy }
    }

    /// The wrapped basis.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }
}

impl<B: Basis> Basis for ResilientBasis<B> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn cache_params(&self) -> String {
        self.inner.cache_params()
    }

    fn synthesize(&self, u: &CMat) -> Result<Circuit, SynthError> {
        synthesize_resilient(&self.inner, u, &self.policy).map(|o| o.circuit)
    }

    fn expected_entanglers(&self, u: &CMat) -> usize {
        self.inner.expected_entanglers(u)
    }

    fn metadata(&self) -> Option<ashn_ir::BasisMetadata> {
        self.inner.metadata()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::{AshnBasis, CnotBasis};
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A basis that fails (or panics) a fixed number of times before
    /// delegating to CNOT synthesis.
    struct Flaky {
        fail_first: u32,
        panic_instead: bool,
        calls: std::sync::atomic::AtomicU32,
    }

    impl Flaky {
        fn new(fail_first: u32, panic_instead: bool) -> Self {
            Self {
                fail_first,
                panic_instead,
                calls: std::sync::atomic::AtomicU32::new(0),
            }
        }
    }

    impl Basis for Flaky {
        fn name(&self) -> String {
            "flaky".into()
        }

        fn synthesize(&self, u: &CMat) -> Result<Circuit, SynthError> {
            let n = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            if n < self.fail_first {
                if self.panic_instead {
                    panic!("flaky basis blew up on call {n}");
                }
                return Err(SynthError::Convergence {
                    basis: "flaky".into(),
                    detail: format!("transient failure {n}"),
                });
            }
            CnotBasis.synthesize(u)
        }

        fn expected_entanglers(&self, u: &CMat) -> usize {
            CnotBasis.expected_entanglers(u)
        }
    }

    fn target() -> CMat {
        let mut rng = StdRng::seed_from_u64(91);
        haar_unitary(4, &mut rng)
    }

    #[test]
    fn first_try_success_matches_plain_synthesis() {
        let u = target();
        let direct = CnotBasis.synthesize(&u).unwrap();
        let out = synthesize_resilient(&CnotBasis, &u, &RetryPolicy::default()).unwrap();
        assert_eq!(out.attempts, 1);
        assert!(out.degraded.is_none());
        assert_eq!(format!("{:?}", out.circuit), format!("{direct:?}"));
    }

    #[test]
    fn transient_errors_are_retried_until_success() {
        let u = target();
        let flaky = Flaky::new(2, false);
        let policy = RetryPolicy::default().with_attempts(4).with_fallback(false);
        let out = synthesize_resilient(&flaky, &u, &policy).unwrap();
        assert_eq!(out.attempts, 3);
        assert!(out.degraded.is_none());
        assert!(out.circuit.error(&u) < 1e-9);
    }

    #[test]
    fn panics_are_contained_and_retried() {
        let u = target();
        let flaky = Flaky::new(1, true);
        let policy = RetryPolicy::default().with_attempts(2).with_fallback(false);
        let out = synthesize_resilient(&flaky, &u, &policy).unwrap();
        assert_eq!(out.attempts, 2);
        assert!(out.circuit.error(&u) < 1e-9);
    }

    #[test]
    fn exhausted_retries_degrade_to_a_verified_cnot_circuit() {
        let u = target();
        let always_broken = Flaky::new(u32::MAX, false);
        let policy = RetryPolicy::default().with_attempts(3);
        let out = synthesize_resilient(&always_broken, &u, &policy).unwrap();
        assert_eq!(out.attempts, 3);
        let reason = out.degraded.expect("must be tagged degraded");
        assert!(reason.contains("transient failure"), "{reason}");
        assert!(out.circuit.error(&u) < 1e-9);
    }

    #[test]
    fn fallback_disabled_surfaces_the_last_error() {
        let u = target();
        let always_broken = Flaky::new(u32::MAX, true);
        let policy = RetryPolicy::default().with_attempts(2).with_fallback(false);
        let err = synthesize_resilient(&always_broken, &u, &policy).unwrap_err();
        assert!(matches!(err, SynthError::WorkerPanic { .. }), "{err}");
    }

    #[test]
    fn invalid_targets_fail_fast_without_retries_or_fallback() {
        let junk = CMat::zeros(4, 4);
        let flaky = Flaky::new(0, false);
        let policy = RetryPolicy::default().with_attempts(5);
        let err = synthesize_resilient(&flaky, &junk, &policy).unwrap_err();
        assert!(matches!(err, SynthError::InvalidTarget { .. }));
        assert_eq!(flaky.calls.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        let u = target();
        let always_broken = Flaky::new(u32::MAX, false);
        let policy = RetryPolicy::default()
            .with_attempts(u32::MAX)
            .with_deadline(Duration::ZERO)
            .with_fallback(false);
        let err = synthesize_resilient(&always_broken, &u, &policy).unwrap_err();
        assert!(matches!(err, SynthError::DeadlineExceeded { .. }), "{err}");
    }

    #[test]
    fn deadline_expiry_still_degrades_when_fallback_is_on() {
        let u = target();
        let always_broken = Flaky::new(u32::MAX, false);
        let policy = RetryPolicy::default()
            .with_attempts(u32::MAX)
            .with_deadline(Duration::ZERO);
        let out = synthesize_resilient(&always_broken, &u, &policy).unwrap();
        assert!(out.degraded.is_some());
        assert!(out.circuit.error(&u) < 1e-9);
    }

    #[test]
    fn resilient_basis_is_transparent_on_success() {
        let u = target();
        let wrapped = ResilientBasis::new(CnotBasis, RetryPolicy::default());
        assert_eq!(wrapped.name(), CnotBasis.name());
        assert_eq!(wrapped.cache_params(), CnotBasis.cache_params());
        let a = wrapped.synthesize(&u).unwrap();
        let b = CnotBasis.synthesize(&u).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn ashn_escalation_attempts_stay_deterministic() {
        let u = target();
        let basis = AshnBasis::ideal();
        let policy = RetryPolicy::default().with_attempts(3).with_retry_seed(7);
        let a = synthesize_resilient(&basis, &u, &policy).unwrap();
        let b = synthesize_resilient(&basis, &u, &policy).unwrap();
        assert_eq!(a.attempts, b.attempts);
        assert_eq!(format!("{:?}", a.circuit), format!("{:?}", b.circuit));
        assert!(a.circuit.error(&u) < 1e-5);
    }
}
