//! Three-qubit synthesis with generic two-qubit gates (paper Theorem 12):
//! any `SU(8)` element in **11** two-qubit gates.
//!
//! Construction (constructive version of paper §B.3.1):
//!
//! 1. CSD on the most significant qubit: `U = L · RY · R` with `L, R`
//!    q0-select multiplexors and `RY` a doubly multiplexed `Ry` on q0.
//! 2. Split `RY` over the q2 select with **CZ** corrections (diagonal, so
//!    they merge into multiplexors): `RY = G4·CZ·G3·CZ`, where `G3, G4` are
//!    single-select multiplexed `Ry`s = two-qubit gates on (q0, q1).
//! 3. Absorb the first CZ into `R`: `P = CZ·R` is still a q0-multiplexor;
//!    decompose `P` by the 5-gate multiplexor lemma (Lemma 14).
//! 4. Merge `G3` with `P`'s last diagonal (both on (q0,q1)); decompose `L`
//!    with the *mirrored* lemma so its first gate is a diagonal on (q0,q1)
//!    that merges with `G4`.
//!
//! Count: 5 + 4 + 5 − 3 merges = **11**.

use crate::csd::csd;
use crate::multiplexor::{mux_rotation, Axis};
use ashn_gates::two::cz;
use ashn_ir::{Circuit, Instruction, SynthError};
use ashn_math::eig::{try_eig_unitary, EigError};
use ashn_math::{CMat, Complex};

fn wrap(x: f64) -> f64 {
    let mut y = x % std::f64::consts::TAU;
    if y > std::f64::consts::PI {
        y -= std::f64::consts::TAU;
    }
    if y <= -std::f64::consts::PI {
        y += std::f64::consts::TAU;
    }
    y
}

/// `Rz(t)⊗Rz(s)` as a diagonal 4×4.
fn rz_pair(t: f64, s: f64) -> CMat {
    CMat::diag(&[
        Complex::cis(-(t + s) / 2.0),
        Complex::cis((-t + s) / 2.0),
        Complex::cis((t - s) / 2.0),
        Complex::cis((t + s) / 2.0),
    ])
}

/// The 5-gate multiplexor decomposition (paper Lemma 14).
///
/// Input: the two blocks `(u0, u1)` of a multiplexor with select qubit `s`,
/// expressed on the pair `[a, b]` (big-endian). Output: five two-qubit
/// gates in application order,
/// `[V2 (a,b), D3 (s,b), D2 (s,a), V1 (a,b), D1 (s,a)]`,
/// where the `D`s are diagonal.
///
/// With `mirrored = true` the order is reversed (`D1` applied first), which
/// is the orientation needed on the left side of the Theorem 12 pipeline.
pub fn lemma14(
    u0: &CMat,
    u1: &CMat,
    s: usize,
    a: usize,
    b: usize,
    mirrored: bool,
) -> Vec<Instruction> {
    try_lemma14(u0, u1, s, a, b, mirrored)
        .unwrap_or_else(|e| panic!("lemma14: eigendecomposition failed: {e}"))
}

/// Fallible variant of [`lemma14`]: surfaces the eigendecomposition failure
/// instead of panicking (the multiplexed product can in principle defeat
/// the Jacobi diagonalisation for adversarial inputs).
///
/// # Errors
///
/// Propagates [`EigError`] from [`ashn_math::eig::try_eig_unitary`].
pub fn try_lemma14(
    u0: &CMat,
    u1: &CMat,
    s: usize,
    a: usize,
    b: usize,
    mirrored: bool,
) -> Result<Vec<Instruction>, EigError> {
    assert_eq!(u0.rows(), 4);
    assert_eq!(u1.rows(), 4);
    if mirrored {
        // mux(U0, U1)ᵀ = mux(U0ᵀ, U1ᵀ); transpose the natural circuit and
        // reverse the order.
        let gates = try_lemma14(&u0.transpose(), &u1.transpose(), s, a, b, false)?;
        return Ok(gates
            .into_iter()
            .rev()
            .map(|g| Instruction::new(g.qubits, g.matrix.transpose(), g.label))
            .collect());
    }

    // Normalise branch phases so det(U0·U1†) = 1; the stripped phases are
    // refolded into D1 below.
    let det = u0.matmul(&u1.adjoint()).det();
    let alpha = det.arg() / 8.0;
    let u0n = u0.scale(Complex::cis(-alpha));
    let u1n = u1.scale(Complex::cis(alpha));

    let w = u0n.matmul(&u1n.adjoint());
    // θ1 makes tr(U′) real: ra·sin(θa+θ1) + rb·sin(θb−θ1) = 0.
    let za = w[(0, 0)] + w[(1, 1)];
    let zb = w[(2, 2)] + w[(3, 3)];
    let (ra, ta) = (za.abs(), za.arg());
    let (rb, tb) = (zb.abs(), zb.arg());
    let theta1 = (-(ra * ta.sin() + rb * tb.sin())).atan2(ra * ta.cos() - rb * tb.cos());

    let rzm = rz_pair(-theta1, 0.0); // Rz(−θ1)⊗I
    let uprime = rzm.matmul(&w).matmul(&rzm);
    debug_assert!(uprime.trace().im.abs() < 1e-7, "tr(U′) not real");

    // Eigenphases come in conjugate pairs; greedily match p with −p.
    let e = try_eig_unitary(&uprime)?;
    let mut items: Vec<(f64, Vec<Complex>)> = (0..4)
        .map(|j| (e.values[j].arg(), e.vectors.col(j)))
        .collect();
    // Pair 0: find (i, j) minimizing |p_i + p_j| mod 2π.
    let (mut bi, mut bj, mut best) = (0, 1, f64::INFINITY);
    for i in 0..4 {
        for j in i + 1..4 {
            let v = wrap(items[i].0 + items[j].0).abs();
            if v < best {
                best = v;
                bi = i;
                bj = j;
            }
        }
    }
    let pair1: Vec<(f64, Vec<Complex>)> = vec![items[bi].clone(), items[bj].clone()];
    let mut rest: Vec<(f64, Vec<Complex>)> = items
        .drain(..)
        .enumerate()
        .filter(|(k, _)| *k != bi && *k != bj)
        .map(|(_, v)| v)
        .collect();
    debug_assert!(
        wrap(rest[0].0 + rest[1].0).abs() < 1e-6,
        "bad phase pairing"
    );
    // Order each pair as (−φ, +φ) with φ ≥ 0. Using (|p₋|+|p₊|)/2 rather
    // than (p₊−p₋)/2 keeps the degenerate (π, π) pair (eigenvalue −1 twice,
    // as in Toffoli-like gates) at φ = π instead of collapsing to 0.
    let order_pair = |p: &mut Vec<(f64, Vec<Complex>)>| {
        if p[0].0 > p[1].0 {
            p.swap(0, 1);
        }
        (p[0].0.abs() + p[1].0.abs()) / 2.0
    };
    let mut pair1 = pair1;
    let phi_a = order_pair(&mut pair1);
    let phi_b = order_pair(&mut rest);
    // Assign the larger phase to the outer columns.
    let (outer, inner, phi_out, phi_in) = if phi_a >= phi_b {
        (pair1, rest, phi_a, phi_b)
    } else {
        (rest, pair1, phi_b, phi_a)
    };
    let theta2 = (phi_out + phi_in) / 2.0;
    let theta3 = (phi_out - phi_in) / 2.0;
    // V1 columns matching diag(e^{−iφa}, e^{−iφb}, e^{+iφb}, e^{+iφa}).
    let mut v1 = CMat::zeros(4, 4);
    v1.set_col(0, &outer[0].1);
    v1.set_col(1, &inner[0].1);
    v1.set_col(2, &inner[1].1);
    v1.set_col(3, &outer[1].1);

    let rz23 = rz_pair(theta2, theta3);
    let v2 = rz23
        .adjoint()
        .matmul(&v1.adjoint())
        .matmul(&rzm)
        .matmul(&u0n);

    // Diagonal gates on (s, a) and (s, b); |s p⟩ ordering is big-endian.
    let dgate = |theta: f64, extra0: Complex, extra1: Complex| -> CMat {
        CMat::diag(&[
            Complex::cis(-theta / 2.0) * extra0,
            Complex::cis(theta / 2.0) * extra0,
            Complex::cis(theta / 2.0) * extra1,
            Complex::cis(-theta / 2.0) * extra1,
        ])
    };
    let d1 = dgate(theta1, Complex::cis(alpha), Complex::cis(-alpha));
    let d2 = dgate(theta2, Complex::ONE, Complex::ONE);
    let d3 = dgate(theta3, Complex::ONE, Complex::ONE);

    Ok(vec![
        Instruction::new(vec![a, b], v2, "V2"),
        Instruction::new(vec![s, b], d3, "D3"),
        Instruction::new(vec![s, a], d2, "D2"),
        Instruction::new(vec![a, b], v1, "V1"),
        Instruction::new(vec![s, a], d1, "D1"),
    ])
}

/// Decomposes an arbitrary 8×8 unitary into **11** two-qubit gates
/// (paper Theorem 12), verified against the input.
///
/// # Panics
///
/// Panics when `u` is not an 8×8 unitary or verification fails.
pub fn decompose_three_qubit(u: &CMat) -> Circuit {
    assert_eq!(u.rows(), 8, "three-qubit unitary required");
    assert!(u.is_unitary(1e-8));
    try_decompose_three_qubit(u).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`decompose_three_qubit`]: malformed targets,
/// eigendecomposition failures inside the multiplexor demux, and a failed
/// verification all surface as [`SynthError`] instead of panicking.
///
/// # Errors
///
/// [`SynthError::InvalidTarget`] when `u` is not an 8×8 unitary;
/// [`SynthError::Convergence`] when the KAK/demux numerics fail or the
/// assembled circuit does not reproduce `u`.
pub fn try_decompose_three_qubit(u: &CMat) -> Result<Circuit, SynthError> {
    let basis = || "three-qubit QSD".to_string();
    if u.rows() != 8 || !u.is_square() {
        return Err(SynthError::InvalidTarget {
            basis: basis(),
            detail: format!("expected an 8x8 unitary, got {}x{}", u.rows(), u.cols()),
        });
    }
    if !u.is_unitary(1e-8) {
        return Err(SynthError::InvalidTarget {
            basis: basis(),
            detail: "target is not unitary at 1e-8".to_string(),
        });
    }
    let d = csd(u);

    // Middle muxRy angles 2θ_{l}, l = (q1 q2) big-endian; split over q2:
    // G4 carries the q2-average, G3 the q2-difference.
    let t = &d.theta;
    let g4 = mux_rotation(Axis::Y, &[t[0] + t[1], t[2] + t[3]]);
    let g3 = mux_rotation(Axis::Y, &[t[0] - t[1], t[2] - t[3]]);

    // P = CZ(q0,q2) · Rmux, still a q0-multiplexor: block0 = R0†,
    // block1 = (I⊗Z)·R1†.
    let iz = CMat::diag(&[
        Complex::ONE,
        -Complex::ONE * 1.0,
        Complex::ONE,
        -Complex::ONE * 1.0,
    ]);
    // (I⊗Z) on (q1,q2) = diag(1,−1,1,−1).
    let p0 = d.r0.adjoint();
    let p1 = iz.matmul(&d.r1.adjoint());

    let eig_fail = |e: EigError| SynthError::Convergence {
        basis: basis(),
        detail: e.to_string(),
    };
    let right = try_lemma14(&p0, &p1, 0, 1, 2, false).map_err(eig_fail)?;
    let left = try_lemma14(&d.l0, &d.l1, 0, 1, 2, true).map_err(eig_fail)?;

    let mut out = Circuit::new(3);
    // Right side: V2, D3, D2, V1, then D1 merged with G3 (both on (0,1)).
    // `try_lemma14` returns exactly five gates by construction.
    let mut right_iter = right.into_iter();
    for _ in 0..4 {
        if let Some(g) = right_iter.next() {
            out.push(g);
        }
    }
    let Some(d1) = right_iter.next() else {
        return Err(SynthError::Convergence {
            basis: basis(),
            detail: "lemma14 returned fewer than five gates".to_string(),
        });
    };
    debug_assert_eq!(d1.qubits, vec![0, 1]);
    out.push(Instruction::new(
        vec![0, 1],
        g3.matmul(&d1.matrix),
        "V[G3·D1]",
    ));

    // CZ(q0, q2).
    out.push(Instruction::new(vec![0, 2], cz(), "CZ"));

    // Left side: D1m merged with G4 (both on (0,1)), then the remainder.
    let mut left_iter = left.into_iter();
    let Some(d1m) = left_iter.next() else {
        return Err(SynthError::Convergence {
            basis: basis(),
            detail: "lemma14 returned an empty gate list".to_string(),
        });
    };
    debug_assert_eq!(d1m.qubits, vec![0, 1]);
    out.push(Instruction::new(
        vec![0, 1],
        d1m.matrix.matmul(&g4),
        "V[D1m·G4]",
    ));
    for g in left_iter {
        out.push(g);
    }

    debug_assert_eq!(out.two_qubit_count(), 11);
    let err = out.error(u);
    if err >= 5e-6 {
        return Err(SynthError::Convergence {
            basis: basis(),
            detail: format!("three-qubit decomposition failed to verify: {err:.2e}"),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiplexor::{is_mux, mux_blocks};
    use ashn_ir::embed;
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assemble(gates: &[Instruction]) -> CMat {
        let mut c = Circuit::new(3);
        for g in gates {
            c.push(g.clone());
        }
        c.unitary()
    }

    fn mux_dense(u0: &CMat, u1: &CMat) -> CMat {
        let mut m = CMat::zeros(8, 8);
        m.set_block(0, 0, u0);
        m.set_block(4, 4, u1);
        m
    }

    #[test]
    fn lemma14_reconstructs_random_multiplexors() {
        let mut rng = StdRng::seed_from_u64(101);
        for _ in 0..10 {
            let u0 = haar_unitary(4, &mut rng);
            let u1 = haar_unitary(4, &mut rng);
            let gates = lemma14(&u0, &u1, 0, 1, 2, false);
            assert_eq!(gates.len(), 5);
            let got = assemble(&gates);
            let expect = mux_dense(&u0, &u1);
            assert!(got.dist(&expect) < 1e-7, "error {}", got.dist(&expect));
            // Three of the five gates are diagonal (paper Lemma 14).
            let diag_count = gates.iter().filter(|g| g.is_diagonal(1e-9)).count();
            assert_eq!(diag_count, 3);
        }
    }

    #[test]
    fn lemma14_mirrored_reconstructs() {
        let mut rng = StdRng::seed_from_u64(102);
        let u0 = haar_unitary(4, &mut rng);
        let u1 = haar_unitary(4, &mut rng);
        let gates = lemma14(&u0, &u1, 0, 1, 2, true);
        assert_eq!(gates.len(), 5);
        // First applied gate is the diagonal D1 on (0,1).
        assert_eq!(gates[0].qubits, vec![0, 1]);
        assert!(gates[0].is_diagonal(1e-9));
        let got = assemble(&gates);
        assert!(got.dist(&mux_dense(&u0, &u1)) < 1e-7);
    }

    #[test]
    fn lemma14_handles_equal_blocks() {
        // U0 = U1: the multiplexor is I⊗U0 — a degenerate case (W = I).
        let mut rng = StdRng::seed_from_u64(103);
        let u0 = haar_unitary(4, &mut rng);
        let gates = lemma14(&u0, &u0, 0, 1, 2, false);
        let got = assemble(&gates);
        assert!(got.dist(&mux_dense(&u0, &u0)) < 1e-7);
    }

    #[test]
    fn cz_times_mux_is_still_mux() {
        let mut rng = StdRng::seed_from_u64(104);
        let u0 = haar_unitary(4, &mut rng);
        let u1 = haar_unitary(4, &mut rng);
        let m = mux_dense(&u0, &u1);
        let czm = embed(3, &[0, 2], &cz()).matmul(&m);
        assert!(is_mux(&czm, 3, 0, 1e-9));
        let (b0, b1) = mux_blocks(&czm, 3, 0);
        assert!(b0.dist(&u0) < 1e-10);
        let iz = CMat::diag(&[
            Complex::ONE,
            -Complex::ONE * 1.0,
            Complex::ONE,
            -Complex::ONE * 1.0,
        ]);
        assert!(b1.dist(&iz.matmul(&u1)) < 1e-10);
    }

    #[test]
    fn theorem12_eleven_gates_for_haar_random() {
        let mut rng = StdRng::seed_from_u64(105);
        for _ in 0..5 {
            let u = haar_unitary(8, &mut rng);
            let c = decompose_three_qubit(&u);
            assert_eq!(c.two_qubit_count(), 11);
            assert!(c.error(&u) < 5e-6, "error {}", c.error(&u));
            // No gate acts on more than 2 qubits.
            assert!(c.instructions.iter().all(|g| g.qubits.len() <= 2));
        }
    }

    #[test]
    fn theorem12_handles_structured_gates() {
        // Toffoli and a product gate: structured, degenerate spectra.
        let mut toffoli = CMat::identity(8);
        toffoli[(6, 6)] = Complex::ZERO;
        toffoli[(7, 7)] = Complex::ZERO;
        toffoli[(6, 7)] = Complex::ONE;
        toffoli[(7, 6)] = Complex::ONE;
        let c = decompose_three_qubit(&toffoli);
        assert_eq!(c.two_qubit_count(), 11);
        assert!(c.error(&toffoli) < 5e-6, "error {}", c.error(&toffoli));

        let mut rng = StdRng::seed_from_u64(106);
        let prod = haar_unitary(2, &mut rng)
            .kron(&haar_unitary(2, &mut rng))
            .kron(&haar_unitary(2, &mut rng));
        let c2 = decompose_three_qubit(&prod);
        assert!(c2.error(&prod) < 5e-6);
    }
}
