//! Two-qubit circuit representation used by all two-qubit synthesis
//! routines, plus the KAK alignment step that turns "same Weyl class" into
//! "exactly equal up to computed locals".

use ashn_gates::kak::kak;
use ashn_ir::{Circuit, Instruction, IrError};
use ashn_math::{CMat, Complex};

/// One element of a two-qubit circuit.
#[derive(Clone, Debug)]
pub enum Op2 {
    /// Single-qubit gate on qubit 0.
    L0(CMat),
    /// Single-qubit gate on qubit 1.
    L1(CMat),
    /// A native two-qubit gate.
    Entangler {
        /// Display label (`"CNOT"`, `"SQiSW"`, `"AshN"`, …).
        label: String,
        /// The 4×4 unitary.
        matrix: CMat,
        /// Duration in units of `1/g`.
        duration: f64,
    },
}

/// A two-qubit circuit with a global phase, applied first-op-first.
#[derive(Clone, Debug)]
pub struct TwoQubitCircuit {
    /// Global phase multiplying the circuit unitary.
    pub phase: Complex,
    /// Ops in application order.
    pub ops: Vec<Op2>,
}

impl TwoQubitCircuit {
    /// The empty (identity) circuit.
    pub fn identity() -> Self {
        Self {
            phase: Complex::ONE,
            ops: Vec::new(),
        }
    }

    /// Total circuit unitary (4×4), including the phase.
    pub fn unitary(&self) -> CMat {
        let id2 = CMat::identity(2);
        let mut u = CMat::identity(4);
        for op in &self.ops {
            let m = match op {
                Op2::L0(g) => g.kron(&id2),
                Op2::L1(g) => id2.kron(g),
                Op2::Entangler { matrix, .. } => matrix.clone(),
            };
            u = m.matmul(&u);
        }
        u.scale(self.phase)
    }

    /// Number of native two-qubit gates.
    pub fn entangler_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, Op2::Entangler { .. }))
            .count()
    }

    /// Summed duration of the native two-qubit gates.
    pub fn entangler_duration(&self) -> f64 {
        self.ops
            .iter()
            .map(|o| match o {
                Op2::Entangler { duration, .. } => *duration,
                _ => 0.0,
            })
            .sum()
    }

    /// Frobenius distance between this circuit and a target unitary.
    pub fn error(&self, target: &CMat) -> f64 {
        self.unitary().dist(target)
    }
}

/// Lossless conversion into the canonical IR: `L0`/`L1` become single-qubit
/// instructions on qubits 0/1, entanglers become two-qubit instructions
/// with their duration, the global phase is preserved.
impl From<TwoQubitCircuit> for Circuit {
    fn from(c: TwoQubitCircuit) -> Self {
        let mut out = Circuit::new(2);
        out.phase = c.phase;
        for op in c.ops {
            let instruction = match op {
                Op2::L0(g) => Instruction::new(vec![0], g, "1q"),
                Op2::L1(g) => Instruction::new(vec![1], g, "1q"),
                Op2::Entangler {
                    label,
                    matrix,
                    duration,
                } => Instruction::new(vec![0, 1], matrix, label).with_duration(duration),
            };
            out.instructions.push(instruction);
        }
        out
    }
}

/// Conversion back from a two-qubit IR circuit: single-qubit instructions
/// become `L0`/`L1`, two-qubit instructions become entanglers. The unitary
/// (phase included) and entangler durations round-trip exactly; `Op2` has
/// no fields for single-qubit duration/error-rate annotations, so those
/// are dropped (synthesis output never carries them).
impl TryFrom<Circuit> for TwoQubitCircuit {
    type Error = IrError;

    fn try_from(c: Circuit) -> Result<Self, IrError> {
        if c.n != 2 {
            return Err(IrError::RegisterMismatch {
                expected: 2,
                got: c.n,
            });
        }
        let mut phase = c.phase;
        let mut ops = Vec::with_capacity(c.instructions.len());
        for g in c.instructions {
            ops.push(match g.qubits.as_slice() {
                [0] => Op2::L0(g.matrix),
                [1] => Op2::L1(g.matrix),
                [0, 1] => Op2::Entangler {
                    label: g.label,
                    matrix: g.matrix,
                    duration: g.duration,
                },
                [1, 0] => {
                    // Reorder onto (0, 1) by conjugating with SWAP.
                    let swap = CMat::from_rows_f64(&[
                        &[1.0, 0.0, 0.0, 0.0],
                        &[0.0, 0.0, 1.0, 0.0],
                        &[0.0, 1.0, 0.0, 0.0],
                        &[0.0, 0.0, 0.0, 1.0],
                    ]);
                    Op2::Entangler {
                        label: g.label,
                        matrix: swap.matmul(&g.matrix).matmul(&swap),
                        duration: g.duration,
                    }
                }
                qs => {
                    // Zero-qubit instructions are 1x1 scalars: fold into the
                    // global phase so the unitary still round-trips.
                    if qs.is_empty() {
                        phase *= g.matrix[(0, 0)];
                        continue;
                    }
                    let bad = qs.iter().copied().find(|&q| q >= 2).unwrap_or(qs[0]);
                    return Err(IrError::QubitOutOfRange { qubit: bad, n: 2 });
                }
            });
        }
        Ok(TwoQubitCircuit { phase, ops })
    }
}

/// Dresses `base` (whose Weyl class must equal `target`'s) with single-qubit
/// gates so the result equals `target` exactly (up to numerics).
///
/// # Panics
///
/// Panics when the classes differ by more than `1e-6` in coordinates — that
/// is a caller bug.
pub fn align_to_target(target: &CMat, base: TwoQubitCircuit) -> TwoQubitCircuit {
    let mut ku = kak(target);
    let ub = base.unitary();
    let mut kc = kak(&ub);
    // Near the x = π/4 face the two decompositions can land on different
    // mirror branches; bring them onto the same one.
    if ku.coords.dist(kc.coords) > 1e-6 {
        let kcm = kc.mirrored();
        if ku.coords.dist(kcm.coords) <= 1e-6 {
            kc = kcm;
        } else {
            let kum = ku.mirrored();
            if kum.coords.dist(kc.coords) <= 1e-6 {
                ku = kum;
            }
        }
    }
    assert!(
        ku.coords.dist(kc.coords) < 1e-6,
        "align_to_target: class mismatch {} vs {}",
        ku.coords,
        kc.coords
    );
    // target = gU (A⊗A') CAN (B⊗B'); base = gC (P⊗P') CAN (Q⊗Q')
    // ⟹ target = (gU/gC) (AP†⊗A'P'†) · base · (Q†B⊗Q'†B').
    // The corrections are computed on stack-allocated locals; only the
    // final circuit ops materialize as dense matrices.
    let mut ops = Vec::with_capacity(base.ops.len() + 4);
    ops.push(Op2::L0(kc.b1.adjoint().matmul(&ku.b1).into()));
    ops.push(Op2::L1(kc.b2.adjoint().matmul(&ku.b2).into()));
    ops.extend(base.ops);
    ops.push(Op2::L0(ku.a1.matmul(&kc.a1.adjoint()).into()));
    ops.push(Op2::L1(ku.a2.matmul(&kc.a2.adjoint()).into()));
    TwoQubitCircuit {
        phase: base.phase * ku.phase / kc.phase,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_gates::two::{cnot, iswap};
    use ashn_math::randmat::haar_su;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unitary_composes_in_order() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = haar_su(2, &mut rng);
        let b = haar_su(2, &mut rng);
        let c = TwoQubitCircuit {
            phase: Complex::ONE,
            ops: vec![
                Op2::L0(a.clone()),
                Op2::Entangler {
                    label: "CNOT".into(),
                    matrix: cnot(),
                    duration: 1.0,
                },
                Op2::L1(b.clone()),
            ],
        };
        let id2 = CMat::identity(2);
        let expect = id2.kron(&b).matmul(&cnot()).matmul(&a.kron(&id2));
        assert!(c.unitary().dist(&expect) < 1e-12);
        assert_eq!(c.entangler_count(), 1);
        assert!((c.entangler_duration() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn align_dressing_reproduces_target() {
        // iSWAP dressed with random locals should be recovered exactly from
        // a bare iSWAP base circuit.
        let mut rng = StdRng::seed_from_u64(2);
        let l = haar_su(2, &mut rng).kron(&haar_su(2, &mut rng));
        let r = haar_su(2, &mut rng).kron(&haar_su(2, &mut rng));
        let target = l.matmul(&iswap()).matmul(&r);
        let base = TwoQubitCircuit {
            phase: Complex::ONE,
            ops: vec![Op2::Entangler {
                label: "iSWAP".into(),
                matrix: iswap(),
                duration: 1.0,
            }],
        };
        let aligned = align_to_target(&target, base);
        assert!(aligned.error(&target) < 1e-8);
        assert_eq!(aligned.entangler_count(), 1);
    }

    #[test]
    #[should_panic(expected = "class mismatch")]
    fn align_rejects_wrong_class() {
        let base = TwoQubitCircuit::identity();
        align_to_target(&cnot(), base);
    }
}
