//! Two-qubit circuit representation used by all two-qubit synthesis
//! routines, plus the KAK alignment step that turns "same Weyl class" into
//! "exactly equal up to computed locals".

use ashn_gates::kak::kak;
use ashn_math::{CMat, Complex};

/// One element of a two-qubit circuit.
#[derive(Clone, Debug)]
pub enum Op2 {
    /// Single-qubit gate on qubit 0.
    L0(CMat),
    /// Single-qubit gate on qubit 1.
    L1(CMat),
    /// A native two-qubit gate.
    Entangler {
        /// Display label (`"CNOT"`, `"SQiSW"`, `"AshN"`, …).
        label: String,
        /// The 4×4 unitary.
        matrix: CMat,
        /// Duration in units of `1/g`.
        duration: f64,
    },
}

/// A two-qubit circuit with a global phase, applied first-op-first.
#[derive(Clone, Debug)]
pub struct TwoQubitCircuit {
    /// Global phase multiplying the circuit unitary.
    pub phase: Complex,
    /// Ops in application order.
    pub ops: Vec<Op2>,
}

impl TwoQubitCircuit {
    /// The empty (identity) circuit.
    pub fn identity() -> Self {
        Self {
            phase: Complex::ONE,
            ops: Vec::new(),
        }
    }

    /// Total circuit unitary (4×4), including the phase.
    pub fn unitary(&self) -> CMat {
        let id2 = CMat::identity(2);
        let mut u = CMat::identity(4);
        for op in &self.ops {
            let m = match op {
                Op2::L0(g) => g.kron(&id2),
                Op2::L1(g) => id2.kron(g),
                Op2::Entangler { matrix, .. } => matrix.clone(),
            };
            u = m.matmul(&u);
        }
        u.scale(self.phase)
    }

    /// Number of native two-qubit gates.
    pub fn entangler_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, Op2::Entangler { .. }))
            .count()
    }

    /// Summed duration of the native two-qubit gates.
    pub fn entangler_duration(&self) -> f64 {
        self.ops
            .iter()
            .map(|o| match o {
                Op2::Entangler { duration, .. } => *duration,
                _ => 0.0,
            })
            .sum()
    }

    /// Frobenius distance between this circuit and a target unitary.
    pub fn error(&self, target: &CMat) -> f64 {
        self.unitary().dist(target)
    }
}

/// Dresses `base` (whose Weyl class must equal `target`'s) with single-qubit
/// gates so the result equals `target` exactly (up to numerics).
///
/// # Panics
///
/// Panics when the classes differ by more than `1e-6` in coordinates — that
/// is a caller bug.
pub fn align_to_target(target: &CMat, base: TwoQubitCircuit) -> TwoQubitCircuit {
    let mut ku = kak(target);
    let ub = base.unitary();
    let mut kc = kak(&ub);
    // Near the x = π/4 face the two decompositions can land on different
    // mirror branches; bring them onto the same one.
    if ku.coords.dist(kc.coords) > 1e-6 {
        let kcm = kc.mirrored();
        if ku.coords.dist(kcm.coords) <= 1e-6 {
            kc = kcm;
        } else {
            let kum = ku.mirrored();
            if kum.coords.dist(kc.coords) <= 1e-6 {
                ku = kum;
            }
        }
    }
    assert!(
        ku.coords.dist(kc.coords) < 1e-6,
        "align_to_target: class mismatch {} vs {}",
        ku.coords,
        kc.coords
    );
    // target = gU (A⊗A') CAN (B⊗B'); base = gC (P⊗P') CAN (Q⊗Q')
    // ⟹ target = (gU/gC) (AP†⊗A'P'†) · base · (Q†B⊗Q'†B').
    let mut ops = Vec::with_capacity(base.ops.len() + 4);
    ops.push(Op2::L0(kc.b1.adjoint().matmul(&ku.b1)));
    ops.push(Op2::L1(kc.b2.adjoint().matmul(&ku.b2)));
    ops.extend(base.ops);
    ops.push(Op2::L0(ku.a1.matmul(&kc.a1.adjoint())));
    ops.push(Op2::L1(ku.a2.matmul(&kc.a2.adjoint())));
    TwoQubitCircuit {
        phase: base.phase * ku.phase / kc.phase,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_gates::two::{cnot, iswap};
    use ashn_math::randmat::haar_su;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unitary_composes_in_order() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = haar_su(2, &mut rng);
        let b = haar_su(2, &mut rng);
        let c = TwoQubitCircuit {
            phase: Complex::ONE,
            ops: vec![
                Op2::L0(a.clone()),
                Op2::Entangler {
                    label: "CNOT".into(),
                    matrix: cnot(),
                    duration: 1.0,
                },
                Op2::L1(b.clone()),
            ],
        };
        let id2 = CMat::identity(2);
        let expect = id2
            .kron(&b)
            .matmul(&cnot())
            .matmul(&a.kron(&id2));
        assert!(c.unitary().dist(&expect) < 1e-12);
        assert_eq!(c.entangler_count(), 1);
        assert!((c.entangler_duration() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn align_dressing_reproduces_target() {
        // iSWAP dressed with random locals should be recovered exactly from
        // a bare iSWAP base circuit.
        let mut rng = StdRng::seed_from_u64(2);
        let l = haar_su(2, &mut rng).kron(&haar_su(2, &mut rng));
        let r = haar_su(2, &mut rng).kron(&haar_su(2, &mut rng));
        let target = l.matmul(&iswap()).matmul(&r);
        let base = TwoQubitCircuit {
            phase: Complex::ONE,
            ops: vec![Op2::Entangler {
                label: "iSWAP".into(),
                matrix: iswap(),
                duration: 1.0,
            }],
        };
        let aligned = align_to_target(&target, base);
        assert!(aligned.error(&target) < 1e-8);
        assert_eq!(aligned.entangler_count(), 1);
    }

    #[test]
    #[should_panic(expected = "class mismatch")]
    fn align_rejects_wrong_class() {
        let base = TwoQubitCircuit::identity();
        align_to_target(&cnot(), base);
    }
}
