//! Numerical circuit instantiation (the QFactor [46] role in paper §6.2):
//! given a fixed circuit ansatz, optimize its free blocks to approximate a
//! target unitary, by alternating closed-form block updates (the unitary
//! maximizing the trace overlap is the polar factor of the block's
//! environment).
//!
//! Used to regenerate Fig. 6(a)/(b): decomposition error vs gate count for
//! CNOT vs generic two-qubit ansätze, with the sharp drop at the
//! dimension-counting lower bounds.

use ashn_gates::two::cnot;
use ashn_ir::embed;
use ashn_math::randmat::haar_unitary;
use ashn_math::svd::svd;
use ashn_math::{CMat, Mat2, Mat4};
use rand::Rng;

/// One block of an ansatz.
#[derive(Clone, Debug)]
pub enum Block {
    /// A free `SU(4)` block on a qubit pair.
    Free2 {
        /// The pair (big-endian).
        pair: (usize, usize),
        /// Current value.
        u: CMat,
    },
    /// A fixed two-qubit gate (e.g. CNOT).
    Fixed2 {
        /// The pair (big-endian).
        pair: (usize, usize),
        /// The gate.
        u: CMat,
    },
    /// A free single-qubit block.
    Free1 {
        /// The qubit.
        qubit: usize,
        /// Current value.
        u: CMat,
    },
}

impl Block {
    fn qubits(&self) -> Vec<usize> {
        match self {
            Block::Free2 { pair, .. } | Block::Fixed2 { pair, .. } => vec![pair.0, pair.1],
            Block::Free1 { qubit, .. } => vec![*qubit],
        }
    }

    fn matrix(&self) -> &CMat {
        match self {
            Block::Free2 { u, .. } | Block::Fixed2 { u, .. } | Block::Free1 { u, .. } => u,
        }
    }
}

/// An ansatz: a sequence of blocks on `n` qubits.
#[derive(Clone, Debug)]
pub struct Ansatz {
    /// Register size.
    pub n: usize,
    /// Blocks in application order.
    pub blocks: Vec<Block>,
}

impl Ansatz {
    /// The paper's generic ansatz: `count` free `SU(4)` blocks cycling over
    /// the pairs `(0,1), (0,2), …, (0,n−1)`, randomly initialised.
    pub fn generic(n: usize, count: usize, rng: &mut impl Rng) -> Self {
        let mut blocks = Vec::with_capacity(count);
        for k in 0..count {
            let other = 1 + (k % (n - 1));
            blocks.push(Block::Free2 {
                pair: (0, other),
                u: haar_unitary(4, rng),
            });
        }
        Self { n, blocks }
    }

    /// The paper's CNOT ansatz: an initial layer of free single-qubit gates,
    /// then `count` CNOTs (same pair cycle) each followed by free
    /// single-qubit gates on its two wires.
    pub fn cnot(n: usize, count: usize, rng: &mut impl Rng) -> Self {
        let mut blocks = Vec::new();
        for q in 0..n {
            blocks.push(Block::Free1 {
                qubit: q,
                u: haar_unitary(2, rng),
            });
        }
        for k in 0..count {
            let other = 1 + (k % (n - 1));
            blocks.push(Block::Fixed2 {
                pair: (0, other),
                u: cnot(),
            });
            blocks.push(Block::Free1 {
                qubit: 0,
                u: haar_unitary(2, rng),
            });
            blocks.push(Block::Free1 {
                qubit: other,
                u: haar_unitary(2, rng),
            });
        }
        Self { n, blocks }
    }

    /// Dense unitary of the current block values.
    pub fn unitary(&self) -> CMat {
        let mut u = CMat::identity(1 << self.n);
        for b in &self.blocks {
            u = embed(self.n, &b.qubits(), b.matrix()).matmul(&u);
        }
        u
    }

    /// Number of two-qubit blocks.
    pub fn two_qubit_count(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| matches!(b, Block::Free2 { .. } | Block::Fixed2 { .. }))
            .count()
    }
}

/// The paper's distance `dist(U, V) = 1 − |tr(U†V)|/2ⁿ`.
pub fn trace_distance(target: &CMat, circuit: &CMat) -> f64 {
    let d = target.rows() as f64;
    1.0 - target.adjoint().matmul(circuit).trace().abs() / d
}

/// Options for [`instantiate`].
#[derive(Clone, Copy, Debug)]
pub struct InstantiateOptions {
    /// Maximum number of full sweeps.
    pub max_sweeps: usize,
    /// Stop when the distance falls below this.
    pub target_error: f64,
    /// Stop when a sweep improves the distance by less than this.
    pub min_progress: f64,
}

impl Default for InstantiateOptions {
    fn default() -> Self {
        Self {
            max_sweeps: 400,
            target_error: 1e-10,
            min_progress: 1e-14,
        }
    }
}

/// Partial trace of the full environment onto a block's qubits:
/// `B[i][j] = Σ_rest A[(i,rest),(j,rest)]`.
fn reduce_env(a: &CMat, n: usize, qubits: &[usize]) -> CMat {
    let k = qubits.len();
    let pos: Vec<usize> = qubits.iter().map(|q| n - 1 - q).collect();
    let mask: usize = pos.iter().map(|p| 1usize << p).sum();
    let dim = 1usize << n;
    let sub = 1usize << k;
    let expand = |base: usize, idx: usize| -> usize {
        let mut v = base;
        for (j, p) in pos.iter().enumerate() {
            if idx >> (k - 1 - j) & 1 == 1 {
                v |= 1 << p;
            }
        }
        v
    };
    let mut out = CMat::zeros(sub, sub);
    for base in 0..dim {
        if base & mask != 0 {
            continue;
        }
        for i in 0..sub {
            for j in 0..sub {
                out[(i, j)] += a[(expand(base, i), expand(base, j))];
            }
        }
    }
    out
}

/// The unitary maximizing `|tr(B·g)|`: with `B = PΣQ†`, `g = Q·P†`.
fn best_unitary_for_env(b: &CMat) -> CMat {
    let s = svd(b);
    s.v.matmul(&s.u.adjoint())
}

/// Stack-allocated 2×2 variant of [`best_unitary_for_env`] (the SVD itself
/// still runs on the dense type).
fn best_unitary_for_env2(b: &Mat2) -> Mat2 {
    // The SVD preserves the 2×2 shape, so the conversion cannot fail; the
    // identity fallback (a valid unitary — the alternation step just stops
    // improving) keeps this panic-free without changing the signature.
    Mat2::try_from(&best_unitary_for_env(&CMat::from(b))).unwrap_or_else(|_| Mat2::identity())
}

/// Jointly maximizes `|tr(B₄·(A⊗B))|` over product unitaries by inner
/// alternation, with the environment contractions on stack matrices.
/// Single-qubit-only circuits stall badly under one-at-a-time updates;
/// optimizing the pair as a unit removes most of those fixed points.
fn best_product_for_env(b4: &Mat4, a0: &Mat2, b0: &Mat2) -> (Mat2, Mat2) {
    let mut a = *a0;
    let mut b = *b0;
    for _ in 0..12 {
        // C_A[i][i'] = Σ_{j,j'} B4[(i,j)][(i',j')]·B[j'][j]; A ← argmax tr(C_A·A).
        let mut ca = Mat2::zeros();
        for i in 0..2 {
            for ip in 0..2 {
                let mut acc = ashn_math::Complex::ZERO;
                for j in 0..2 {
                    for jp in 0..2 {
                        acc += b4[(2 * i + j, 2 * ip + jp)] * b[(jp, j)];
                    }
                }
                ca[(i, ip)] = acc;
            }
        }
        a = best_unitary_for_env2(&ca);
        let mut cb = Mat2::zeros();
        for j in 0..2 {
            for jp in 0..2 {
                let mut acc = ashn_math::Complex::ZERO;
                for i in 0..2 {
                    for ip in 0..2 {
                        acc += b4[(2 * i + j, 2 * ip + jp)] * a[(ip, i)];
                    }
                }
                cb[(j, jp)] = acc;
            }
        }
        b = best_unitary_for_env2(&cb);
    }
    (a, b)
}

/// Result of an instantiation run.
#[derive(Clone, Copy, Debug)]
pub struct InstantiateResult {
    /// Final distance `1 − |tr(U†V)|/2ⁿ`.
    pub error: f64,
    /// Sweeps used.
    pub sweeps: usize,
}

/// Optimizes the free blocks of `ansatz` to approximate `target`.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn instantiate(
    target: &CMat,
    ansatz: &mut Ansatz,
    opts: &InstantiateOptions,
) -> InstantiateResult {
    let n = ansatz.n;
    assert_eq!(target.rows(), 1 << n, "target dimension mismatch");
    let nblocks = ansatz.blocks.len();
    let mut error = trace_distance(target, &ansatz.unitary());
    let mut sweeps = 0;
    for sweep in 0..opts.max_sweeps {
        sweeps = sweep + 1;
        // Prefix products: pre[i] = B_{i-1}···B_0, suf[i] = B_{K-1}···B_i.
        let dim = 1usize << n;
        let mut pre = Vec::with_capacity(nblocks + 1);
        pre.push(CMat::identity(dim));
        for b in &ansatz.blocks {
            let e = embed(n, &b.qubits(), b.matrix());
            let next = e.matmul(&pre[pre.len() - 1]);
            pre.push(next);
        }
        let mut suf = vec![CMat::identity(dim); nblocks + 1];
        for i in (0..nblocks).rev() {
            let b = &ansatz.blocks[i];
            let e = embed(n, &b.qubits(), b.matrix());
            suf[i] = suf[i + 1].matmul(&e);
        }
        // Alternate sweep direction; on backward sweeps the suffix products
        // are refreshed instead of the prefixes.
        let forward = sweep % 2 == 0;
        let order: Vec<usize> = if forward {
            (0..nblocks).collect()
        } else {
            (0..nblocks).rev().collect()
        };
        let refresh =
            |ansatz: &Ansatz, i: usize, pre: &mut Vec<CMat>, suf: &mut Vec<CMat>, forward: bool| {
                let b = &ansatz.blocks[i];
                let e = embed(n, &b.qubits(), b.matrix());
                if forward {
                    pre[i + 1] = e.matmul(&pre[i]);
                } else {
                    suf[i] = suf[i + 1].matmul(&e);
                }
            };
        let mut skip_next: Option<usize> = None;
        for &i in &order {
            if skip_next == Some(i) {
                refresh(ansatz, i, &mut pre, &mut suf, forward);
                continue;
            }
            // Joint update for adjacent single-qubit pairs (in list order,
            // regardless of sweep direction).
            let pair_partner = if i + 1 < nblocks {
                match (&ansatz.blocks[i], &ansatz.blocks[i + 1]) {
                    (Block::Free1 { qubit: q0, .. }, Block::Free1 { qubit: q1, .. })
                        if q0 != q1 && forward =>
                    {
                        Some((i, i + 1, *q0, *q1))
                    }
                    _ => None,
                }
            } else {
                None
            };
            if let Some((ia, ib, qa, qb)) = pair_partner {
                // The conversions hold by construction (`reduce_env` over two
                // qubits is 4×4, `Free1` blocks are 2×2); a shape surprise
                // simply falls through to the one-at-a-time update below
                // rather than panicking mid-sweep.
                let a_full = pre[ia].matmul(&target.adjoint()).matmul(&suf[ib + 1]);
                let env = Mat4::try_from(&reduce_env(&a_full, n, &[qa, qb])).ok();
                let cur = match (&ansatz.blocks[ia], &ansatz.blocks[ib]) {
                    (Block::Free1 { u: ua, .. }, Block::Free1 { u: ub, .. }) => {
                        Mat2::try_from(ua).ok().zip(Mat2::try_from(ub).ok())
                    }
                    _ => None,
                };
                if let (Some(env), Some((cur_a, cur_b))) = (env, cur) {
                    let (ga, gb) = best_product_for_env(&env, &cur_a, &cur_b);
                    if let Block::Free1 { u, .. } = &mut ansatz.blocks[ia] {
                        *u = ga.into();
                    }
                    if let Block::Free1 { u, .. } = &mut ansatz.blocks[ib] {
                        *u = gb.into();
                    }
                    refresh(ansatz, ia, &mut pre, &mut suf, forward);
                    skip_next = Some(ib);
                    continue;
                }
            }
            let (qubits, free) = match &ansatz.blocks[i] {
                Block::Free2 { pair, .. } => (vec![pair.0, pair.1], true),
                Block::Free1 { qubit, .. } => (vec![*qubit], true),
                Block::Fixed2 { .. } => (vec![], false),
            };
            if free {
                // tr(target†·suf[i+1]·E·pre[i]) = tr(A·E),
                // A = pre[i]·target†·suf[i+1].
                let a = pre[i].matmul(&target.adjoint()).matmul(&suf[i + 1]);
                let env = reduce_env(&a, n, &qubits);
                let g = best_unitary_for_env(&env);
                match &mut ansatz.blocks[i] {
                    Block::Free2 { u, .. } | Block::Free1 { u, .. } => *u = g,
                    // `free` is only true for the Free* arms above.
                    Block::Fixed2 { .. } => {}
                }
            }
            refresh(ansatz, i, &mut pre, &mut suf, forward);
        }
        let new_error = trace_distance(target, &ansatz.unitary());
        let progress = error - new_error;
        error = new_error;
        if error < opts.target_error || progress.abs() < opts.min_progress {
            break;
        }
    }
    InstantiateResult { error, sweeps }
}

/// Convenience: best error over `restarts` random initialisations.
pub fn instantiate_best<R: Rng>(
    target: &CMat,
    make: impl Fn(&mut R) -> Ansatz,
    restarts: usize,
    opts: &InstantiateOptions,
    rng: &mut R,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..restarts {
        let mut a = make(rng);
        let r = instantiate(target, &mut a, opts);
        best = best.min(r.error);
        if best < opts.target_error {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_math::randmat::haar_su;
    use ashn_math::Complex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_recovery_when_ansatz_contains_target_structure() {
        // Target = product of two SU(4)s on (0,1),(0,2): a 2-block generic
        // ansatz must reach ~0 error.
        let mut rng = StdRng::seed_from_u64(111);
        let g1 = haar_unitary(4, &mut rng);
        let g2 = haar_unitary(4, &mut rng);
        let target = embed(3, &[0, 2], &g2).matmul(&embed(3, &[0, 1], &g1));
        let mut a = Ansatz::generic(3, 2, &mut rng);
        let r = instantiate(&target, &mut a, &InstantiateOptions::default());
        assert!(r.error < 1e-9, "error {}", r.error);
    }

    #[test]
    fn error_never_increases_over_sweeps() {
        let mut rng = StdRng::seed_from_u64(112);
        let target = haar_unitary(8, &mut rng);
        let mut a = Ansatz::generic(3, 4, &mut rng);
        let e0 = trace_distance(&target, &a.unitary());
        let r = instantiate(
            &target,
            &mut a,
            &InstantiateOptions {
                max_sweeps: 30,
                ..Default::default()
            },
        );
        assert!(r.error <= e0 + 1e-12, "{} > {e0}", r.error);
    }

    #[test]
    fn six_generic_blocks_reach_haar_targets_n3() {
        // The paper's numerical observation: 6 generic two-qubit gates
        // suffice for generic three-qubit unitaries. Our plain alternating
        // optimizer converges slowly in the tail (QFactor-like), so the
        // test asserts the decisive gap vs the 5-block case rather than the
        // paper's 1e-10 threshold (see EXPERIMENTS.md).
        let mut rng = StdRng::seed_from_u64(113);
        let target = haar_su(8, &mut rng);
        let e = instantiate_best(
            &target,
            |r| Ansatz::generic(3, 6, r),
            6,
            &InstantiateOptions {
                max_sweeps: 1200,
                target_error: 1e-9,
                min_progress: 0.0,
            },
            &mut rng,
        );
        assert!(e < 1e-3, "6-block error {e}");
    }

    #[test]
    fn five_generic_blocks_cannot_reach_haar_targets_n3() {
        // Below the dimension-counting lower bound the error stays large.
        let mut rng = StdRng::seed_from_u64(114);
        let target = haar_su(8, &mut rng);
        let e = instantiate_best(
            &target,
            |r| Ansatz::generic(3, 5, r),
            3,
            &InstantiateOptions {
                max_sweeps: 300,
                target_error: 1e-9,
                min_progress: 1e-13,
            },
            &mut rng,
        );
        assert!(e > 1e-4, "5-block error suspiciously small: {e}");
    }

    #[test]
    fn cnot_ansatz_single_cnot_recovers_cnot() {
        // Single-qubit-only updates stall in local optima more often than
        // SU(4) blocks; random restarts are part of the method.
        let mut rng = StdRng::seed_from_u64(115);
        let target = cnot();
        let e = instantiate_best(
            &target,
            |r| Ansatz::cnot(2, 1, r),
            12,
            &InstantiateOptions::default(),
            &mut rng,
        );
        assert!(e < 1e-9, "error {e}");
    }

    #[test]
    fn trace_distance_properties() {
        let mut rng = StdRng::seed_from_u64(116);
        let u = haar_unitary(4, &mut rng);
        assert!(trace_distance(&u, &u) < 1e-12);
        let v = u.scale(Complex::cis(1.3));
        assert!(trace_distance(&u, &v) < 1e-12, "phase must not matter");
    }
}
