//! [`Basis`] implementations for the native gate sets the paper compares:
//! CNOT, flux-tuned CZ, flux-tuned SQiSW, and AshN.
//!
//! Each implementation wraps one of this crate's synthesis routines and
//! returns the canonical [`ashn_ir::Circuit`], so routing, quantum-volume
//! scoring, and the `ashn::Compiler` pipeline are generic over the native
//! gate set. New bases (B-gate, iSWAP, …) are one `impl Basis` away.

use crate::ashn_basis::{decompose_ashn, decompose_ashn_with_search};
use crate::cnot_basis::{cnot_count, decompose_cnot, to_cz_basis, to_ecr_basis, CZ_DURATION};
use crate::sqisw_basis::{decompose_sqisw, sqisw_count, SQISW_DURATION};
use ashn_core::ea::EaSearch;
use ashn_core::scheme::AshnScheme;
use ashn_gates::kak::weyl_coordinates;
use ashn_gates::weyl::WeylPoint;
use ashn_ir::{
    Basis, BasisMetadata, Circuit, EntanglerCounts, SynthEffort, SynthError, WeylCategory,
};
use ashn_math::CMat;
use std::f64::consts::{FRAC_PI_4, FRAC_PI_8};

/// Metadata shared by the CNOT-family bases (CX, CZ, ECR): one entangler
/// for the CNOT class, two for `z = 0`, three generically
/// (Shende–Markov–Bullock).
fn cnot_family_metadata() -> BasisMetadata {
    BasisMetadata {
        weyl: [FRAC_PI_4, 0.0, 0.0],
        category: WeylCategory::Cnot,
        counts: EntanglerCounts {
            identity: 0,
            cnot: 1,
            flat: 2,
            generic: 3,
        },
        duration: CZ_DURATION,
    }
}

/// CNOT + arbitrary single-qubit gates (0–3 entanglers,
/// Shende–Markov–Bullock).
#[derive(Clone, Copy, Debug, Default)]
pub struct CnotBasis;

impl Basis for CnotBasis {
    fn name(&self) -> String {
        "CNOT".into()
    }

    fn synthesize(&self, u: &CMat) -> Result<Circuit, SynthError> {
        check_two_qubit(u, "CNOT")?;
        Ok(decompose_cnot(u).into())
    }

    fn expected_entanglers(&self, u: &CMat) -> usize {
        cnot_count(u)
    }

    fn metadata(&self) -> Option<BasisMetadata> {
        Some(cnot_family_metadata())
    }
}

/// Flux-tuned CZ: the CNOT decomposition with every CNOT rewritten as
/// `(I⊗H)·CZ·(I⊗H)` (paper §6.1; gate time `π/√2 · 1/g`).
#[derive(Clone, Copy, Debug, Default)]
pub struct CzBasis;

impl Basis for CzBasis {
    fn name(&self) -> String {
        "CZ".into()
    }

    fn synthesize(&self, u: &CMat) -> Result<Circuit, SynthError> {
        check_two_qubit(u, "CZ")?;
        Ok(to_cz_basis(decompose_cnot(u)).into())
    }

    fn expected_entanglers(&self, u: &CMat) -> usize {
        cnot_count(u)
    }

    fn metadata(&self) -> Option<BasisMetadata> {
        Some(cnot_family_metadata())
    }
}

/// Echoed cross-resonance (ECR): the CNOT decomposition with every CNOT
/// rewritten as a locally-dressed ECR — the native entangler of
/// fixed-frequency transmon stacks, Weyl-equivalent to CNOT.
#[derive(Clone, Copy, Debug, Default)]
pub struct EcrBasis;

impl Basis for EcrBasis {
    fn name(&self) -> String {
        "ECR".into()
    }

    fn synthesize(&self, u: &CMat) -> Result<Circuit, SynthError> {
        check_two_qubit(u, "ECR")?;
        Ok(to_ecr_basis(decompose_cnot(u)).into())
    }

    fn expected_entanglers(&self, u: &CMat) -> usize {
        cnot_count(u)
    }

    fn metadata(&self) -> Option<BasisMetadata> {
        Some(cnot_family_metadata())
    }
}

/// Flux-tuned SQiSW (√iSWAP): 1–3 applications after Huang et al. [30],
/// with numerically searched interleavers (gate time `π/4 · 1/g`).
#[derive(Clone, Copy, Debug, Default)]
pub struct SqiswBasis;

impl Basis for SqiswBasis {
    fn name(&self) -> String {
        "SQiSW".into()
    }

    fn synthesize(&self, u: &CMat) -> Result<Circuit, SynthError> {
        check_two_qubit(u, "SQiSW")?;
        decompose_sqisw(u)
            .map(Into::into)
            .map_err(|e| SynthError::Convergence {
                basis: "SQiSW".into(),
                detail: e.to_string(),
            })
    }

    fn expected_entanglers(&self, u: &CMat) -> usize {
        sqisw_count(u)
    }

    fn metadata(&self) -> Option<BasisMetadata> {
        Some(BasisMetadata {
            weyl: [FRAC_PI_8, FRAC_PI_8, 0.0],
            category: WeylCategory::Sqisw,
            counts: EntanglerCounts {
                identity: 0,
                cnot: 2,
                flat: 2,
                generic: 3,
            },
            duration: SQISW_DURATION,
        })
    }
}

/// AshN: every two-qubit class in a *single* native pulse at (cutoff-)
/// optimal time — the paper's complex yet reduced instruction set.
#[derive(Clone, Copy, Debug)]
pub struct AshnBasis {
    /// The pulse-compilation scheme (ZZ ratio and drive-strength cutoff).
    pub scheme: AshnScheme,
}

impl AshnBasis {
    /// AshN over an ideal `XX+YY` coupler (`h = 0`) with exactly optimal
    /// gate times.
    pub fn ideal() -> Self {
        Self {
            scheme: AshnScheme::new(0.0),
        }
    }

    /// AshN with a drive-strength cutoff `r` (paper §6.1 uses 0 and 1.1).
    pub fn with_cutoff(h_ratio: f64, cutoff: f64) -> Self {
        Self {
            scheme: AshnScheme::with_cutoff(h_ratio, cutoff),
        }
    }

    /// Fans the EA multistart of every pulse compilation over `workers`
    /// scoped threads (`0` = one per hardware thread; default 1 = serial).
    /// Synthesized circuits are bit-identical for every worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.scheme = self.scheme.with_workers(workers);
        self
    }
}

impl Basis for AshnBasis {
    fn name(&self) -> String {
        format!("AshN(r={})", self.scheme.cutoff())
    }

    // The ZZ ratio h̃ changes every compiled pulse but is absent from the
    // display name; the worker count is deliberately excluded (the EA
    // multistart is bit-identical at any worker count). `{:?}` prints the
    // shortest exactly-round-tripping decimal, so the key is stable across
    // save/load.
    fn cache_params(&self) -> String {
        format!("h={:?};r={:?}", self.scheme.h_ratio(), self.scheme.cutoff())
    }

    fn synthesize(&self, u: &CMat) -> Result<Circuit, SynthError> {
        check_two_qubit(u, "AshN")?;
        decompose_ashn(u, &self.scheme)
            .map(|s| s.circuit.into())
            .map_err(|e| SynthError::Pulse {
                basis: self.name(),
                detail: e.to_string(),
            })
    }

    // Retry attempt `k` widens the EA multistart by `k` escalation rounds
    // seeded from `jitter_seed`; the deadline aborts between EA waves. With
    // the default effort this is bit-identical to `synthesize`, so cached
    // circuits stay reproducible.
    fn synthesize_with_effort(&self, u: &CMat, effort: SynthEffort) -> Result<Circuit, SynthError> {
        check_two_qubit(u, "AshN")?;
        let search = EaSearch {
            workers: self.scheme.workers(),
            extra_rounds: effort.attempt,
            jitter_seed: effort.jitter_seed,
            deadline: effort.deadline,
        };
        decompose_ashn_with_search(u, &self.scheme, &search)
            .map(|s| s.circuit.into())
            .map_err(|e| {
                if e.timed_out {
                    SynthError::DeadlineExceeded {
                        basis: self.name(),
                        detail: e.to_string(),
                    }
                } else {
                    SynthError::Pulse {
                        basis: self.name(),
                        detail: e.to_string(),
                    }
                }
            })
    }

    fn expected_entanglers(&self, u: &CMat) -> usize {
        let p = weyl_coordinates(u);
        usize::from(p.dist(WeylPoint::IDENTITY) >= 1e-9)
    }

    fn metadata(&self) -> Option<BasisMetadata> {
        Some(BasisMetadata {
            weyl: [0.0, 0.0, 0.0],
            category: WeylCategory::Continuous,
            counts: EntanglerCounts {
                identity: 0,
                cnot: 1,
                flat: 1,
                generic: 1,
            },
            // Worst-case (SWAP-class) pulse time, paper §6.1.
            duration: 3.0 * FRAC_PI_4,
        })
    }
}

pub(crate) fn check_two_qubit(u: &CMat, basis: &str) -> Result<(), SynthError> {
    if u.rows() != 4 || !u.is_square() {
        return Err(SynthError::InvalidTarget {
            basis: basis.into(),
            detail: format!("expected a 4x4 unitary, got {}x{}", u.rows(), u.cols()),
        });
    }
    if !u.is_unitary(1e-6) {
        return Err(SynthError::InvalidTarget {
            basis: basis.into(),
            detail: "matrix is not unitary within 1e-6".into(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bases() -> Vec<Box<dyn Basis>> {
        vec![
            Box::new(CnotBasis),
            Box::new(CzBasis),
            Box::new(EcrBasis),
            Box::new(SqiswBasis),
            Box::new(AshnBasis::ideal()),
            Box::new(AshnBasis::with_cutoff(0.0, 1.1)),
        ]
    }

    #[test]
    fn every_basis_reconstructs_haar_targets() {
        let mut rng = StdRng::seed_from_u64(71);
        let u = haar_unitary(4, &mut rng);
        for b in bases() {
            let c = b.synthesize(&u).unwrap_or_else(|e| panic!("{e}"));
            assert!(c.error(&u) < 1e-5, "{}: error {}", b.name(), c.error(&u));
            assert_eq!(
                c.entangler_count(),
                b.expected_entanglers(&u),
                "{}",
                b.name()
            );
        }
    }

    #[test]
    fn non_unitary_targets_are_rejected_not_panicked() {
        let junk = CMat::zeros(4, 4);
        for b in bases() {
            assert!(matches!(
                b.synthesize(&junk),
                Err(SynthError::InvalidTarget { .. })
            ));
        }
        let wrong_dim = CMat::identity(8);
        assert!(CnotBasis.synthesize(&wrong_dim).is_err());
    }

    #[test]
    fn every_builtin_basis_publishes_metadata() {
        for b in bases() {
            let meta = b.metadata().unwrap_or_else(|| panic!("{}", b.name()));
            assert!(meta.duration > 0.0, "{}", b.name());
            // The advertised entangler class matches KAK of the entangler
            // for fixed-entangler sets; Continuous sets advertise zeros.
            if meta.category == ashn_ir::WeylCategory::Continuous {
                assert_eq!(meta.weyl, [0.0, 0.0, 0.0]);
            }
        }
        assert_eq!(
            EcrBasis.metadata().unwrap().category,
            ashn_ir::WeylCategory::Cnot
        );
    }

    #[test]
    fn ecr_basis_emits_only_ecr_entanglers() {
        let mut rng = StdRng::seed_from_u64(73);
        let u = haar_unitary(4, &mut rng);
        let c = EcrBasis.synthesize(&u).unwrap();
        assert!(c.error(&u) < 1e-8, "error {}", c.error(&u));
        assert_eq!(c.entangler_count(), 3);
        for g in c.instructions.iter().filter(|g| g.qubits.len() == 2) {
            assert!(g.matrix.dist(&ashn_gates::two::ecr()) < 1e-12);
        }
    }

    #[test]
    fn native_swap_counts_match_the_paper() {
        // CZ and SQiSW need 3 natives for SWAP; AshN needs a single pulse.
        assert_eq!(CzBasis.native_swap().unwrap().entangler_count(), 3);
        assert_eq!(SqiswBasis.native_swap().unwrap().entangler_count(), 3);
        assert_eq!(
            AshnBasis::ideal().native_swap().unwrap().entangler_count(),
            1
        );
    }
}
