//! The B-gate doubling property (paper §6.4): `[B] = CAN(π/4, π/8, 0)` is
//! the unique class for which **two** applications, interleaved with
//! single-qubit gates, reach the entire Weyl chamber.
//!
//! This module searches for the interleaving locals numerically, which both
//! demonstrates the property and provides a 2-application B-gate compiler.

use crate::circuit2::{align_to_target, Op2, TwoQubitCircuit};
use ashn_gates::invariants::{makhlin, makhlin_from_coords};
use ashn_gates::kak::weyl_coordinates;
use ashn_gates::single::su2_zyz;
use ashn_gates::two::b_gate;
use ashn_gates::weyl::WeylPoint;
use ashn_math::neldermead::{nelder_mead, NmOptions};
use ashn_math::{CMat, Complex};

/// Failure of the interleaver search.
#[derive(Clone, Debug)]
pub struct BSpanError {
    /// The target class.
    pub target: WeylPoint,
    /// Best invariant distance reached.
    pub best: f64,
}

impl std::fmt::Display for BSpanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "B-doubling search failed for {} (best {:.2e})",
            self.target, self.best
        )
    }
}

impl std::error::Error for BSpanError {}

/// Finds locals `(m₀, m₁)` such that `B · (m₀⊗m₁) · B` lies in the class
/// `target`, returning the bare core circuit.
pub fn two_b_core(target: WeylPoint) -> Result<TwoQubitCircuit, BSpanError> {
    let b = b_gate();
    let t = target.canonicalize();
    let (g1t, g2t) = makhlin_from_coords(t.x, t.y, t.z);
    let objective = |v: &[f64]| {
        let m = su2_zyz(v[0], v[1], v[2]).kron(&su2_zyz(v[3], v[4], v[5]));
        let u = b.matmul(&m).matmul(&b);
        let (g1, g2) = makhlin(&u);
        (g1 - g1t).norm_sqr() + (g2 - g2t).powi(2)
    };
    let vals = [0.0, 0.8, 1.7, 2.6];
    let mut best = f64::INFINITY;
    for &a in &vals {
        for &c in &vals {
            let seeds = [[a, c, 0.3, -c, a, -0.6], [c, -a, 1.1, a, 0.4, c]];
            for seed in seeds {
                let res = nelder_mead(
                    objective,
                    &seed,
                    &NmOptions {
                        max_evals: 2500,
                        f_tol: 1e-26,
                        initial_step: 0.4,
                        ..NmOptions::default()
                    },
                );
                if res.f < 1e-16 {
                    let m0 = su2_zyz(res.x[0], res.x[1], res.x[2]);
                    let m1 = su2_zyz(res.x[3], res.x[4], res.x[5]);
                    let core = TwoQubitCircuit {
                        phase: Complex::ONE,
                        ops: vec![
                            Op2::Entangler {
                                label: "B".into(),
                                matrix: b.clone(),
                                duration: std::f64::consts::FRAC_PI_2,
                            },
                            Op2::L0(m0),
                            Op2::L1(m1),
                            Op2::Entangler {
                                label: "B".into(),
                                matrix: b.clone(),
                                duration: std::f64::consts::FRAC_PI_2,
                            },
                        ],
                    };
                    if weyl_coordinates(&core.unitary()).gate_dist(t) < 1e-7 {
                        return Ok(core);
                    }
                }
                best = best.min(res.f);
            }
        }
    }
    Err(BSpanError { target: t, best })
}

/// Decomposes an arbitrary two-qubit unitary into exactly two B gates plus
/// single-qubit gates — the §6.4 property, as a compiler.
///
/// # Errors
///
/// Returns [`BSpanError`] if the search fails (it should not, per §6.4).
pub fn decompose_two_b(u: &CMat) -> Result<TwoQubitCircuit, BSpanError> {
    let core = two_b_core(weyl_coordinates(u))?;
    Ok(align_to_target(u, core))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_gates::two::{cnot, iswap, swap};
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn two_bs_reach_the_chamber_corners() {
        // Identity, CNOT, iSWAP, SWAP — the extreme points §6.4 singles out.
        for target in [
            WeylPoint::IDENTITY,
            WeylPoint::CNOT,
            WeylPoint::ISWAP,
            WeylPoint::SWAP,
        ] {
            let core = two_b_core(target).unwrap_or_else(|e| panic!("{e}"));
            let got = weyl_coordinates(&core.unitary());
            assert!(got.gate_dist(target) < 1e-7, "{target}: got {got}");
            assert_eq!(core.entangler_count(), 2);
        }
    }

    #[test]
    fn two_bs_reach_random_targets_exactly() {
        let mut rng = StdRng::seed_from_u64(211);
        for _ in 0..4 {
            let u = haar_unitary(4, &mut rng);
            let circ = decompose_two_b(&u).expect("§6.4: two Bs span SU(4)");
            assert_eq!(circ.entangler_count(), 2);
            assert!(circ.error(&u) < 1e-6, "error {}", circ.error(&u));
        }
    }

    #[test]
    fn named_gates_via_two_bs() {
        for g in [cnot(), iswap(), swap()] {
            let circ = decompose_two_b(&g).expect("compiles");
            assert!(circ.error(&g) < 1e-6, "error {}", circ.error(&g));
        }
    }

    #[test]
    fn cnot_doubling_cannot_reach_swap() {
        // The contrast that makes B unique: two CNOTs cannot synthesize
        // SWAP (z ≠ 0 requires 3), so the same search over CNOT·(m)·CNOT
        // must fail for the SWAP class.
        let c = cnot();
        let t = WeylPoint::SWAP;
        let (g1t, g2t) = makhlin_from_coords(t.x, t.y, t.z);
        let objective = |v: &[f64]| {
            let m = su2_zyz(v[0], v[1], v[2]).kron(&su2_zyz(v[3], v[4], v[5]));
            let u = c.matmul(&m).matmul(&c);
            let (g1, g2) = makhlin(&u);
            (g1 - g1t).norm_sqr() + (g2 - g2t).powi(2)
        };
        let mut best = f64::INFINITY;
        for seed in [[0.0; 6], [1.0, 0.4, -0.8, 0.2, 1.5, 0.7]] {
            let res = nelder_mead(
                objective,
                &seed,
                &NmOptions {
                    max_evals: 3000,
                    f_tol: 1e-24,
                    initial_step: 0.5,
                    ..NmOptions::default()
                },
            );
            best = best.min(res.f);
        }
        assert!(
            best > 1e-3,
            "two CNOTs should NOT reach [SWAP]; best {best}"
        );
    }
}
