//! Deprecated aliases for the n-qubit synthesis IR.
//!
//! The canonical circuit representation now lives in `ashn-ir`; `NGate` and
//! `NCircuit` are thin aliases kept for one release. `ashn_ir::Instruction`
//! and `ashn_ir::Circuit` are drop-in replacements (`Instruction` carries
//! `duration`/`error_rate` fields the synthesis paths simply leave at their
//! defaults, and the former `gates` field is named `instructions`).

pub use ashn_ir::embed;

/// Deprecated name of [`ashn_ir::Instruction`], kept for one release.
#[deprecated(since = "0.2.0", note = "use `ashn_ir::Instruction`")]
pub type NGate = ashn_ir::Instruction;

/// Deprecated name of [`ashn_ir::Circuit`], kept for one release.
#[deprecated(since = "0.2.0", note = "use `ashn_ir::Circuit`")]
pub type NCircuit = ashn_ir::Circuit;

#[cfg(test)]
mod tests {
    use ashn_ir::{embed, Circuit, Instruction};
    use ashn_math::randmat::haar_unitary;
    use ashn_math::{CMat, Complex};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn embed_identity_is_identity() {
        let id = CMat::identity(4);
        assert!(embed(3, &[0, 2], &id).dist(&CMat::identity(8)) < 1e-15);
    }

    #[test]
    fn embed_respects_ordering() {
        // X on qubit 1 of 2 = I ⊗ X.
        let x = CMat::from_rows_f64(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let e = embed(2, &[1], &x);
        assert!(e.dist(&CMat::identity(2).kron(&x)) < 1e-15);
        // X on qubit 0 = X ⊗ I.
        let e0 = embed(2, &[0], &x);
        assert!(e0.dist(&x.kron(&CMat::identity(2))) < 1e-15);
    }

    #[test]
    fn embed_reversed_pair_transposes_roles() {
        let mut rng = StdRng::seed_from_u64(61);
        let u = haar_unitary(4, &mut rng);
        let swap = CMat::from_rows_f64(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
        ]);
        let a = embed(2, &[1, 0], &u);
        let b = swap.matmul(&u).matmul(&swap);
        assert!(a.dist(&b) < 1e-12);
    }

    #[test]
    fn circuit_unitary_composes() {
        let mut rng = StdRng::seed_from_u64(62);
        let g1 = haar_unitary(4, &mut rng);
        let g2 = haar_unitary(4, &mut rng);
        let mut c = Circuit::new(3);
        c.push(Instruction::new(vec![0, 1], g1.clone(), "a"));
        c.push(Instruction::new(vec![1, 2], g2.clone(), "b"));
        let expect = embed(3, &[1, 2], &g2).matmul(&embed(3, &[0, 1], &g1));
        assert!(c.unitary().dist(&expect) < 1e-12);
        assert_eq!(c.two_qubit_count(), 2);
    }

    #[test]
    fn diagonal_detection() {
        let d = CMat::diag(&[
            Complex::ONE,
            Complex::cis(0.3),
            Complex::cis(-0.4),
            Complex::ONE,
        ]);
        assert!(Instruction::new(vec![0, 1], d, "d").is_diagonal(1e-12));
        let mut rng = StdRng::seed_from_u64(63);
        assert!(!Instruction::new(vec![0, 1], haar_unitary(4, &mut rng), "u").is_diagonal(1e-6));
    }
}
