//! n-qubit circuit representation for the synthesis routines.

use ashn_math::{CMat, Complex};

/// One gate on an `n`-qubit register.
#[derive(Clone, Debug)]
pub struct NGate {
    /// Qubits acted on (big-endian order w.r.t. `matrix`).
    pub qubits: Vec<usize>,
    /// The `2^k × 2^k` unitary.
    pub matrix: CMat,
    /// Display label.
    pub label: String,
}

impl NGate {
    /// Creates a gate, checking the dimension.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or repeated qubits.
    pub fn new(qubits: Vec<usize>, matrix: CMat, label: impl Into<String>) -> Self {
        assert_eq!(matrix.rows(), 1 << qubits.len(), "gate dimension mismatch");
        for (i, q) in qubits.iter().enumerate() {
            assert!(!qubits[i + 1..].contains(q), "repeated qubit {q}");
        }
        Self {
            qubits,
            matrix,
            label: label.into(),
        }
    }

    /// `true` when the gate matrix is diagonal (within `tol`).
    pub fn is_diagonal(&self, tol: f64) -> bool {
        let m = &self.matrix;
        let mut off = 0.0;
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                if r != c {
                    off += m[(r, c)].norm_sqr();
                }
            }
        }
        off.sqrt() < tol
    }
}

/// Embeds a `k`-qubit gate into the full `2^n` space.
pub fn embed(n: usize, qubits: &[usize], m: &CMat) -> CMat {
    let k = qubits.len();
    assert_eq!(m.rows(), 1 << k);
    let dim = 1usize << n;
    let pos: Vec<usize> = qubits.iter().map(|q| n - 1 - q).collect();
    let mask: usize = pos.iter().map(|p| 1usize << p).sum();
    let mut out = CMat::zeros(dim, dim);
    let sub = 1usize << k;
    let expand = |base: usize, idx: usize| -> usize {
        let mut v = base;
        for (j, p) in pos.iter().enumerate() {
            if idx >> (k - 1 - j) & 1 == 1 {
                v |= 1 << p;
            }
        }
        v
    };
    for base in 0..dim {
        if base & mask != 0 {
            continue;
        }
        for r in 0..sub {
            for c in 0..sub {
                out[(expand(base, r), expand(base, c))] = m[(r, c)];
            }
        }
    }
    out
}

/// A circuit on `n` qubits with a global phase; gates apply first-in-order.
#[derive(Clone, Debug)]
pub struct NCircuit {
    /// Register size.
    pub n: usize,
    /// Global phase.
    pub phase: Complex,
    /// Gates in application order.
    pub gates: Vec<NGate>,
}

impl NCircuit {
    /// Empty circuit.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            phase: Complex::ONE,
            gates: Vec::new(),
        }
    }

    /// Appends a gate.
    pub fn push(&mut self, g: NGate) {
        assert!(g.qubits.iter().all(|q| *q < self.n));
        self.gates.push(g);
    }

    /// Dense unitary of the circuit (intended for `n ≤ 6`).
    pub fn unitary(&self) -> CMat {
        let dim = 1usize << self.n;
        let mut u = CMat::identity(dim);
        for g in &self.gates {
            u = embed(self.n, &g.qubits, &g.matrix).matmul(&u);
        }
        u.scale(self.phase)
    }

    /// Number of gates acting on ≥ 2 qubits.
    pub fn two_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| g.qubits.len() >= 2).count()
    }

    /// Frobenius distance to a target unitary.
    pub fn error(&self, target: &CMat) -> f64 {
        self.unitary().dist(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn embed_identity_is_identity() {
        let id = CMat::identity(4);
        assert!(embed(3, &[0, 2], &id).dist(&CMat::identity(8)) < 1e-15);
    }

    #[test]
    fn embed_respects_ordering() {
        // X on qubit 1 of 2 = I ⊗ X.
        let x = CMat::from_rows_f64(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let e = embed(2, &[1], &x);
        assert!(e.dist(&CMat::identity(2).kron(&x)) < 1e-15);
        // X on qubit 0 = X ⊗ I.
        let e0 = embed(2, &[0], &x);
        assert!(e0.dist(&x.kron(&CMat::identity(2))) < 1e-15);
    }

    #[test]
    fn embed_reversed_pair_transposes_roles() {
        let mut rng = StdRng::seed_from_u64(61);
        let u = haar_unitary(4, &mut rng);
        let swap = CMat::from_rows_f64(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
        ]);
        let a = embed(2, &[1, 0], &u);
        let b = swap.matmul(&u).matmul(&swap);
        assert!(a.dist(&b) < 1e-12);
    }

    #[test]
    fn circuit_unitary_composes() {
        let mut rng = StdRng::seed_from_u64(62);
        let g1 = haar_unitary(4, &mut rng);
        let g2 = haar_unitary(4, &mut rng);
        let mut c = NCircuit::new(3);
        c.push(NGate::new(vec![0, 1], g1.clone(), "a"));
        c.push(NGate::new(vec![1, 2], g2.clone(), "b"));
        let expect = embed(3, &[1, 2], &g2).matmul(&embed(3, &[0, 1], &g1));
        assert!(c.unitary().dist(&expect) < 1e-12);
        assert_eq!(c.two_qubit_count(), 2);
    }

    #[test]
    fn diagonal_detection() {
        let d = CMat::diag(&[
            Complex::ONE,
            Complex::cis(0.3),
            Complex::cis(-0.4),
            Complex::ONE,
        ]);
        assert!(NGate::new(vec![0, 1], d, "d").is_diagonal(1e-12));
        let mut rng = StdRng::seed_from_u64(63);
        assert!(!NGate::new(vec![0, 1], haar_unitary(4, &mut rng), "u").is_diagonal(1e-6));
    }
}
