//! The instruction-set registry: which gate sets exist, their Weyl
//! metadata, and their native entangler vocabularies.

use crate::basis::{AshnBasis, CnotBasis, CzBasis, EcrBasis, SqiswBasis};
use crate::cnot_basis::{cnot_count_for, cnot_reversed};
use crate::sqisw_basis::sqisw_count_for;
use ashn_gates::kak::weyl_coordinates;
use ashn_gates::two::{cnot, cz, ecr, sqisw, swap};
use ashn_gates::weyl::WeylPoint;
use ashn_ir::{Basis, BasisMetadata, WeylCategory};
use ashn_math::CMat;

/// Matrices closer than this (Frobenius) are treated as the same native
/// gate by vocabulary matching.
const GATE_TOL: f64 = 1e-12;

/// One native entangler of a registered gate set, as a 4×4 matrix on
/// qubits `{0, 1}` in big-endian `|q0 q1⟩` convention. Asymmetric gates
/// (CX, ECR) register both orientations.
#[derive(Clone, Debug)]
pub struct NativeGate {
    /// Display name (`"CX"`, `"ECR:rev"`, …).
    pub name: String,
    /// The gate matrix.
    pub matrix: CMat,
}

/// A registered instruction set: the `(name, cache_params)` identity the
/// synthesis caches key by, its [`BasisMetadata`], and its native
/// entangler vocabulary (empty for [`WeylCategory::Continuous`] sets,
/// whose pulses cannot be enumerated).
#[derive(Clone, Debug)]
pub struct RegisteredSet {
    /// [`Basis::name`] of the set.
    pub name: String,
    /// [`Basis::cache_params`] of the set.
    pub params: String,
    /// Weyl classification, counts, and duration.
    pub metadata: BasisMetadata,
    /// Native entangler matrices (both orientations for asymmetric gates).
    pub gates: Vec<NativeGate>,
}

/// The registry of known instruction sets.
#[derive(Clone, Debug, Default)]
pub struct GateSetRegistry {
    sets: Vec<RegisteredSet>,
}

/// ECR with the control on qubit 1 (the SWAP-conjugated orientation).
pub(crate) fn ecr_reversed() -> CMat {
    let s = swap();
    s.matmul(&ecr()).matmul(&s)
}

fn set_of(basis: &(impl Basis + ?Sized), gates: Vec<(&str, CMat)>) -> RegisteredSet {
    RegisteredSet {
        name: basis.name(),
        params: basis.cache_params(),
        metadata: basis.metadata().expect("built-in bases publish metadata"),
        gates: gates
            .into_iter()
            .map(|(name, matrix)| NativeGate {
                name: name.into(),
                matrix,
            })
            .collect(),
    }
}

impl GateSetRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry of the built-in gate sets: CNOT, CZ, ECR, SQiSW, and
    /// the paper's AshN schemes (ideal and `r = 1.1`).
    pub fn standard() -> Self {
        let mut reg = Self::new();
        reg.register(set_of(
            &CnotBasis,
            vec![("CX", cnot()), ("CX:rev", cnot_reversed())],
        ));
        reg.register(set_of(&CzBasis, vec![("CZ", cz())]));
        reg.register(set_of(
            &EcrBasis,
            vec![("ECR", ecr()), ("ECR:rev", ecr_reversed())],
        ));
        reg.register(set_of(&SqiswBasis, vec![("SQiSW", sqisw())]));
        reg.register(set_of(&AshnBasis::ideal(), vec![]));
        reg.register(set_of(&AshnBasis::with_cutoff(0.0, 1.1), vec![]));
        reg
    }

    /// Registers (or replaces, on matching `(name, params)`) a set.
    pub fn register(&mut self, set: RegisteredSet) {
        if let Some(slot) = self
            .sets
            .iter_mut()
            .find(|s| s.name == set.name && s.params == set.params)
        {
            *slot = set;
        } else {
            self.sets.push(set);
        }
    }

    /// The set registered under `(name, params)`, if any.
    pub fn get(&self, name: &str, params: &str) -> Option<&RegisteredSet> {
        self.sets
            .iter()
            .find(|s| s.name == name && s.params == params)
    }

    /// Every registered set, in registration order.
    pub fn sets(&self) -> &[RegisteredSet] {
        &self.sets
    }

    /// Identifies a matrix as a native entangler of some registered set.
    pub fn recognize(&self, m: &CMat) -> Option<(&RegisteredSet, &NativeGate)> {
        if m.rows() != 4 || !m.is_square() {
            return None;
        }
        self.sets.iter().find_map(|s| {
            s.gates
                .iter()
                .find(|g| g.matrix.dist(m) < GATE_TOL)
                .map(|g| (s, g))
        })
    }

    /// Whether `m` is a native entangler of the set `(name, params)`.
    pub fn is_native(&self, m: &CMat, name: &str, params: &str) -> bool {
        if m.rows() != 4 || !m.is_square() {
            return false;
        }
        self.get(name, params)
            .is_some_and(|s| s.gates.iter().any(|g| g.matrix.dist(m) < GATE_TOL))
    }
}

/// Analytic entangler count for target class `p` under a set described by
/// `meta`: exact count theorems for the classified categories
/// (Shende–Markov–Bullock for the CNOT family, Huang et al. for SQiSW, one
/// pulse for Continuous), the [`ashn_ir::EntanglerCounts`] buckets
/// otherwise.
pub fn expected_count(meta: &BasisMetadata, p: WeylPoint) -> usize {
    let p = p.canonicalize();
    let tol = 1e-9;
    match meta.category {
        WeylCategory::Cnot => cnot_count_for(p),
        WeylCategory::Sqisw => sqisw_count_for(p),
        WeylCategory::Continuous => usize::from(p.dist(WeylPoint::IDENTITY) >= tol),
        WeylCategory::Iswap | WeylCategory::Other => {
            if p.dist(WeylPoint::IDENTITY) < tol {
                meta.counts.identity
            } else if p.gate_dist(WeylPoint::CNOT) < tol {
                meta.counts.cnot
            } else if p.z.abs() < tol {
                meta.counts.flat
            } else {
                meta.counts.generic
            }
        }
    }
}

/// Registry-aware [`Basis::expected_entanglers`]: when the basis publishes
/// [`Basis::metadata`], the count is derived from its Weyl category (so
/// third-party bases get correct minimal-cost-block skipping in the
/// optimizer without hardcoding); otherwise falls back to the basis's own
/// count.
pub fn expected_entanglers_for(basis: &(impl Basis + ?Sized), u: &CMat) -> usize {
    match basis.metadata() {
        Some(meta) if u.rows() == 4 && u.is_square() => expected_count(&meta, weyl_coordinates(u)),
        _ => basis.expected_entanglers(u),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_contains_the_builtin_sets() {
        let reg = GateSetRegistry::standard();
        for name in ["CNOT", "CZ", "ECR", "SQiSW"] {
            assert!(reg.get(name, "").is_some(), "{name} missing");
        }
        assert!(reg.sets().iter().any(|s| s.name.starts_with("AshN")));
    }

    #[test]
    fn recognize_identifies_both_orientations() {
        let reg = GateSetRegistry::standard();
        let (s, g) = reg.recognize(&cnot()).unwrap();
        assert_eq!((s.name.as_str(), g.name.as_str()), ("CNOT", "CX"));
        let (s, g) = reg.recognize(&cnot_reversed()).unwrap();
        assert_eq!((s.name.as_str(), g.name.as_str()), ("CNOT", "CX:rev"));
        let (s, _) = reg.recognize(&ecr_reversed()).unwrap();
        assert_eq!(s.name, "ECR");
        assert!(reg.recognize(&CMat::identity(4)).is_none());
    }

    #[test]
    fn expected_counts_match_the_basis_implementations() {
        use ashn_math::randmat::haar_unitary;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(91);
        let targets = vec![
            CMat::identity(4),
            cnot(),
            cz(),
            ecr(),
            sqisw(),
            ashn_gates::two::iswap(),
            swap(),
            haar_unitary(4, &mut rng),
        ];
        let bases: Vec<Box<dyn Basis>> = vec![
            Box::new(CnotBasis),
            Box::new(CzBasis),
            Box::new(EcrBasis),
            Box::new(SqiswBasis),
            Box::new(AshnBasis::ideal()),
        ];
        for b in &bases {
            for u in &targets {
                assert_eq!(
                    expected_entanglers_for(b, u),
                    b.expected_entanglers(u),
                    "{} disagrees",
                    b.name()
                );
            }
        }
    }

    #[test]
    fn bucket_counts_serve_unclassified_categories() {
        use ashn_ir::EntanglerCounts;
        let meta = BasisMetadata {
            weyl: [
                std::f64::consts::FRAC_PI_4,
                std::f64::consts::FRAC_PI_4,
                0.0,
            ],
            category: WeylCategory::Iswap,
            counts: EntanglerCounts {
                identity: 0,
                cnot: 2,
                flat: 2,
                generic: 3,
            },
            duration: 1.0,
        };
        assert_eq!(expected_count(&meta, WeylPoint::IDENTITY), 0);
        assert_eq!(expected_count(&meta, WeylPoint::CNOT), 2);
        assert_eq!(expected_count(&meta, WeylPoint::new(0.5, 0.3, 0.0)), 2);
        assert_eq!(expected_count(&meta, WeylPoint::SWAP), 3);
    }
}
