//! Rule-based instruction-set retargeting: the closed-form tier 0 of the
//! synthesis stack.
//!
//! Production traffic is dominated by circuits expressed over a *known*
//! gate set (CX, CZ, ECR, SQiSW, …) being compiled to hardware exposing
//! another known set. For those pairs the full numeric path — KAK, the
//! SQiSW interleaver search, the AshN EA pulse compilation — is overkill:
//! the gates are Weyl-equivalent (or related by a classic exact
//! construction) and the retargeting is a table lookup emitting an exact
//! circuit fragment.
//!
//! This module provides that table:
//!
//! - [`GateSetRegistry`] — per-[`ashn_ir::Basis`] metadata (canonical Weyl
//!   coordinates of the entangler, its [`ashn_ir::WeylCategory`], analytic
//!   entangler counts per class, duration), populated from the new
//!   [`ashn_ir::Basis::metadata`] hook, plus each set's native entangler
//!   vocabulary.
//! - [`RuleSet`] — closed-form transforms: local-dressing rules within a
//!   Weyl category (CX ↔ CZ ↔ ECR), and exact cross-category
//!   constructions (SWAP/iSWAP from 3×/2×CX, CZ from CX + Hadamard
//!   dressing, the SQiSW-pair → CX identity). Every rule emits an exact
//!   `TwoQubitCircuit` fragment; no numeric optimization runs.
//! - [`serve_rule_tier`] — the cache integration: `CachedBasis` and the
//!   service's `ShardedCache` consult the rules *before* the Weyl
//!   memo-cache and the EA path, recording `Lookup::RuleHit`, with
//!   rule-emitted circuits cached under a namespaced (source rule, target
//!   set) pair key that can never collide with the numeric tier's
//!   [`ashn_ir::Basis::cache_params`] keys.
//!
//! The `ashn-opt` `Retarget` pass rewrites whole circuits between
//! registered sets ahead of `Resynthesize` using the same tables.

pub mod registry;
pub mod rules;
pub mod tier;

pub use registry::{
    expected_count, expected_entanglers_for, GateSetRegistry, NativeGate, RegisteredSet,
};
pub use rules::{standard_rules, ClassRule, KnownGate, RuleSet, RULE_TOL};
pub use tier::{rule_key, serve_rule_tier};
