//! The closed-form retargeting rules: per (target set, Weyl class) an
//! exact core circuit plus pre-dressed fragments for every known gate of
//! the class.
//!
//! Rules are built once ([`standard_rules`]) from classic exact
//! constructions — Barenco et al.'s CX↔CZ Hadamard dressing, SWAP/iSWAP
//! from 3×/2×CX, and the SQiSW-pair → CX identity
//! `E·(X⊗I)·E·(X⊗I) = CAN(π/4, 0, 0)` (the canonical factors commute and
//! `(X⊗I)` conjugation flips the sign of the `y` coordinate). Same-class
//! dressings that are not hand-written (e.g. CX over a bare ECR) are
//! computed once by the exact KAK alignment at table-build time; nothing
//! numeric runs at serve time.

use super::registry::{ecr_reversed, GateSetRegistry};
use crate::cache::ClassEntry;
use crate::circuit2::{align_to_target, Op2, TwoQubitCircuit};
use crate::cnot_basis::{cnot_reversed, to_cz_basis, to_ecr_basis, two_cnot_core, CZ_DURATION};
use crate::sqisw_basis::SQISW_DURATION;
use ashn_gates::two::{cnot, cz, ecr, iswap, sqisw, swap};
use ashn_gates::weyl::WeylPoint;
use ashn_math::{CMat, Complex};
use std::sync::{Arc, OnceLock};

/// Exactness tolerance of the rule tier: a matrix matches a known gate,
/// and an emitted fragment must realize its gate, within this Frobenius
/// distance.
pub const RULE_TOL: f64 = 1e-12;

/// Canonical-class match tolerance (well above KAK noise, far below any
/// class separation).
const CLASS_TOL: f64 = 1e-8;

/// A named gate of a Weyl class with its pre-dressed exact realization
/// over the owning rule's target set.
#[derive(Clone, Debug)]
pub struct KnownGate {
    /// Gate name (`"CX"`, `"CZ"`, `"ECR:rev"`, `"SWAP"`, …).
    pub gate: String,
    /// The gate matrix.
    pub matrix: CMat,
    /// Exact realization over the target set (verified at [`RULE_TOL`]).
    pub circuit: TwoQubitCircuit,
}

/// One (target set, Weyl class) rule: an exact core realizing a member of
/// the class over the target set, plus pre-dressed fragments for the
/// class's known gates.
#[derive(Clone, Debug)]
pub struct ClassRule {
    /// Rule label, the source half of the cache pair key
    /// (`"cx-class"`, `"swap-class"`, …).
    pub label: String,
    /// Canonical class coordinates.
    pub class: WeylPoint,
    /// Exact class realization over the target set.
    pub core: TwoQubitCircuit,
    /// `core.unitary()`, cached for entry construction.
    core_target: CMat,
    /// Pre-dressed known gates of this class.
    pub gates: Vec<KnownGate>,
}

impl ClassRule {
    /// The known gate exactly matching `u`, if any.
    pub fn match_gate(&self, u: &CMat) -> Option<&KnownGate> {
        self.gates.iter().find(|g| g.matrix.dist(u) < RULE_TOL)
    }

    /// A synthetic cache entry serving `u`: the pre-dressed fragment for
    /// an exact known-gate match (served verbatim downstream), otherwise
    /// the bare core (re-dressed to `u` by the shared serve logic).
    pub fn entry(&self, u: &CMat) -> ClassEntry {
        match self.match_gate(u) {
            Some(g) => ClassEntry {
                target: g.matrix.clone(),
                circuit: g.circuit.clone(),
            },
            None => ClassEntry {
                target: self.core_target.clone(),
                circuit: self.core.clone(),
            },
        }
    }

    /// Native entanglers the rule spends.
    pub fn entanglers(&self) -> usize {
        self.core.entangler_count()
    }
}

/// The rule table: per registered `(name, cache_params)` target set, the
/// class rules it serves.
#[derive(Clone, Debug)]
pub struct RuleSet {
    registry: GateSetRegistry,
    rules: Vec<((String, String), Vec<ClassRule>)>,
}

fn bare(label: &str, m: CMat, duration: f64) -> TwoQubitCircuit {
    TwoQubitCircuit {
        phase: Complex::ONE,
        ops: vec![Op2::Entangler {
            label: label.into(),
            matrix: m,
            duration,
        }],
    }
}

/// Builds one class rule: gates realized by the core verbatim when it
/// already equals them, otherwise dressed by the exact KAK alignment.
fn class_rule(
    label: &str,
    class: WeylPoint,
    core: TwoQubitCircuit,
    gates: &[(&str, CMat)],
) -> ClassRule {
    let core_target = core.unitary();
    let gates = gates
        .iter()
        .map(|(name, m)| {
            let circuit = if core_target.dist(m) < RULE_TOL {
                core.clone()
            } else {
                align_to_target(m, core.clone())
            };
            debug_assert!(
                circuit.error(m) < RULE_TOL,
                "rule {label}/{name} drifted: {}",
                circuit.error(m)
            );
            KnownGate {
                gate: (*name).into(),
                matrix: m.clone(),
                circuit,
            }
        })
        .collect();
    ClassRule {
        label: label.into(),
        class: class.canonicalize(),
        core,
        core_target,
        gates,
    }
}

impl RuleSet {
    /// The standard rule table over [`GateSetRegistry::standard`].
    ///
    /// Coverage: the CNOT, CZ, and ECR target sets serve all four named
    /// classes (CX-family, iSWAP, SWAP, SQiSW); the SQiSW target set
    /// serves its own class, the CX family (two entanglers via the
    /// SQiSW-pair identity), and iSWAP (`E·E`) — SWAP over SQiSW has no
    /// closed form and stays on the numeric path, as does everything for
    /// the Continuous AshN sets (the pulse compiler *is* their fast path).
    pub fn standard() -> Self {
        let registry = GateSetRegistry::standard();
        let x = ashn_gates::pauli::Pauli::X.matrix();
        let cx_gates = [
            ("CX", cnot()),
            ("CX:rev", cnot_reversed()),
            ("CZ", cz()),
            ("ECR", ecr()),
            ("ECR:rev", ecr_reversed()),
        ];
        let iswap_gates = [("iSWAP", iswap())];
        let swap_gates = [("SWAP", swap())];
        let sqisw_gates = [("SQiSW", sqisw())];

        // Exact cores over the CNOT set; CZ and ECR reuse them through the
        // exact basis rewrites.
        let cx_core = bare("CNOT", cnot(), CZ_DURATION);
        let iswap_core = two_cnot_core(std::f64::consts::FRAC_PI_4, std::f64::consts::FRAC_PI_4);
        let swap_core = TwoQubitCircuit {
            phase: Complex::ONE,
            ops: vec![
                Op2::Entangler {
                    label: "CNOT".into(),
                    matrix: cnot(),
                    duration: CZ_DURATION,
                },
                Op2::Entangler {
                    label: "CNOT(rev)".into(),
                    matrix: cnot_reversed(),
                    duration: CZ_DURATION,
                },
                Op2::Entangler {
                    label: "CNOT".into(),
                    matrix: cnot(),
                    duration: CZ_DURATION,
                },
            ],
        };
        let sqisw_core = two_cnot_core(std::f64::consts::FRAC_PI_8, std::f64::consts::FRAC_PI_8);

        let cnot_family = |rewrite: &dyn Fn(TwoQubitCircuit) -> TwoQubitCircuit| {
            vec![
                class_rule(
                    "cx-class",
                    WeylPoint::CNOT,
                    rewrite(cx_core.clone()),
                    &cx_gates,
                ),
                class_rule(
                    "iswap-class",
                    WeylPoint::ISWAP,
                    rewrite(iswap_core.clone()),
                    &iswap_gates,
                ),
                class_rule(
                    "swap-class",
                    WeylPoint::SWAP,
                    rewrite(swap_core.clone()),
                    &swap_gates,
                ),
                class_rule(
                    "sqisw-class",
                    WeylPoint::SQISW,
                    rewrite(sqisw_core.clone()),
                    &sqisw_gates,
                ),
            ]
        };

        // SQiSW-pair → CX (exact): E·(X⊗I)·E·(X⊗I) = CAN(π/4, 0, 0).
        let cx_over_sqisw = TwoQubitCircuit {
            phase: Complex::ONE,
            ops: vec![
                Op2::L0(x.clone()),
                Op2::Entangler {
                    label: "SQiSW".into(),
                    matrix: sqisw(),
                    duration: SQISW_DURATION,
                },
                Op2::L0(x),
                Op2::Entangler {
                    label: "SQiSW".into(),
                    matrix: sqisw(),
                    duration: SQISW_DURATION,
                },
            ],
        };
        // iSWAP = SQiSW² (exact).
        let iswap_over_sqisw = TwoQubitCircuit {
            phase: Complex::ONE,
            ops: vec![
                Op2::Entangler {
                    label: "SQiSW".into(),
                    matrix: sqisw(),
                    duration: SQISW_DURATION,
                },
                Op2::Entangler {
                    label: "SQiSW".into(),
                    matrix: sqisw(),
                    duration: SQISW_DURATION,
                },
            ],
        };

        let rules = vec![
            (("CNOT".to_string(), String::new()), cnot_family(&|c| c)),
            (("CZ".to_string(), String::new()), cnot_family(&to_cz_basis)),
            (
                ("ECR".to_string(), String::new()),
                cnot_family(&to_ecr_basis),
            ),
            (
                ("SQiSW".to_string(), String::new()),
                vec![
                    class_rule(
                        "sqisw-class",
                        WeylPoint::SQISW,
                        bare("SQiSW", sqisw(), SQISW_DURATION),
                        &sqisw_gates,
                    ),
                    class_rule("cx-class", WeylPoint::CNOT, cx_over_sqisw, &cx_gates),
                    class_rule(
                        "iswap-class",
                        WeylPoint::ISWAP,
                        iswap_over_sqisw,
                        &iswap_gates,
                    ),
                ],
            ),
        ];
        Self { registry, rules }
    }

    /// The registry the rules were built over.
    pub fn registry(&self) -> &GateSetRegistry {
        &self.registry
    }

    /// Class rules served for the target set `(name, params)`.
    pub fn rules_for(&self, name: &str, params: &str) -> &[ClassRule] {
        self.rules
            .iter()
            .find(|((n, p), _)| n == name && p == params)
            .map_or(&[], |(_, r)| r.as_slice())
    }

    /// The rule covering canonical class `coords` for the target set, if
    /// any.
    pub fn class_rule(&self, name: &str, params: &str, coords: WeylPoint) -> Option<&ClassRule> {
        self.rules_for(name, params)
            .iter()
            .find(|r| r.class.gate_dist(coords) < CLASS_TOL)
    }

    /// The pre-dressed fragment realizing the exact gate `m` over the
    /// target set, if `m` is a known gate of a covered class.
    pub fn rewrite_exact(&self, m: &CMat, name: &str, params: &str) -> Option<&KnownGate> {
        if m.rows() != 4 || !m.is_square() {
            return None;
        }
        self.rules_for(name, params)
            .iter()
            .find_map(|r| r.match_gate(m))
    }

    /// Whether `m` is already a native entangler of the target set.
    pub fn is_native(&self, m: &CMat, name: &str, params: &str) -> bool {
        self.registry.is_native(m, name, params)
    }
}

/// The process-wide standard rule table, built once on first use.
pub fn standard_rules() -> Arc<RuleSet> {
    static RULES: OnceLock<Arc<RuleSet>> = OnceLock::new();
    RULES.get_or_init(|| Arc::new(RuleSet::standard())).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_fragment_is_exact_at_1e12() {
        let rules = standard_rules();
        for ((name, params), _) in &rules.rules {
            for rule in rules.rules_for(name, params) {
                for g in &rule.gates {
                    let err = g.circuit.error(&g.matrix);
                    assert!(
                        err < RULE_TOL,
                        "{name}/{}/{}: error {err:.2e}",
                        rule.label,
                        g.gate
                    );
                }
                // The core itself realizes its advertised class.
                let realized = ashn_gates::kak::weyl_coordinates(&rule.core.unitary());
                assert!(
                    realized.canonicalize().gate_dist(rule.class) < 1e-9,
                    "{name}/{} core class drifted",
                    rule.label
                );
            }
        }
    }

    #[test]
    fn sqisw_pair_identity_realizes_the_cnot_class_exactly() {
        let rules = standard_rules();
        let rule = rules
            .class_rule("SQiSW", "", WeylPoint::CNOT)
            .expect("cx-class over SQiSW");
        assert_eq!(rule.entanglers(), 2);
        let can = ashn_gates::two::canonical(std::f64::consts::FRAC_PI_4, 0.0, 0.0);
        assert!(rule.core.error(&can) < RULE_TOL);
        // And the pre-dressed CX fragment is exact with two entanglers.
        let g = rule.match_gate(&cnot()).unwrap();
        assert_eq!(g.circuit.entangler_count(), 2);
        assert!(g.circuit.error(&cnot()) < RULE_TOL);
    }

    #[test]
    fn swap_has_no_rule_over_sqisw() {
        let rules = standard_rules();
        assert!(rules.class_rule("SQiSW", "", WeylPoint::SWAP).is_none());
        assert!(rules.class_rule("CZ", "", WeylPoint::SWAP).is_some());
    }

    #[test]
    fn ashn_sets_have_no_rules() {
        use ashn_ir::Basis;
        let rules = standard_rules();
        let ashn = crate::basis::AshnBasis::ideal();
        assert!(rules
            .rules_for(&ashn.name(), &ashn.cache_params())
            .is_empty());
        assert!(rules
            .registry()
            .get(&ashn.name(), &ashn.cache_params())
            .is_some());
    }

    #[test]
    fn rule_entanglers_match_registry_expected_counts() {
        use super::super::registry::expected_count;
        let rules = standard_rules();
        for set in rules.registry().sets() {
            for rule in rules.rules_for(&set.name, &set.params) {
                assert_eq!(
                    rule.entanglers(),
                    expected_count(&set.metadata, rule.class),
                    "{}/{}",
                    set.name,
                    rule.label
                );
            }
        }
    }

    #[test]
    fn rewrite_exact_covers_the_cx_family_everywhere() {
        let rules = standard_rules();
        for target in ["CNOT", "CZ", "ECR", "SQiSW"] {
            for (gate, m) in [("CX", cnot()), ("CZ", cz()), ("ECR", ecr())] {
                let g = rules
                    .rewrite_exact(&m, target, "")
                    .unwrap_or_else(|| panic!("{gate} over {target}"));
                assert!(g.circuit.error(&m) < RULE_TOL, "{gate} over {target}");
            }
        }
    }
}
