//! The rule tier's cache integration: serving synthesis requests from the
//! rule table ahead of the Weyl memo-cache, with rule-emitted circuits
//! cached under a namespaced (source rule, target set) pair key.

use super::rules::RuleSet;
use crate::cache::{serve_from_entry, ClassEntry, ClassKey, ClassStore, Lookup};
use crate::circuit2::TwoQubitCircuit;
use ashn_gates::weyl::WeylPoint;
use ashn_ir::{Basis, Circuit};
use ashn_math::CMat;

/// The cache key for a rule-emitted circuit: the numeric key for the same
/// class with `params` replaced by the `(source rule, target set)` pair
/// namespace. The `rule[` prefix guarantees a rule entry can never
/// cross-hit the numeric tier's [`Basis::cache_params`] keys (no built-in
/// or sanely-parameterized basis emits params starting with `rule[`).
pub fn rule_key(basis: &(impl Basis + ?Sized), rule_label: &str, coords: WeylPoint) -> ClassKey {
    let mut key = ClassKey::new(basis, coords, false);
    key.params = format!("rule[{}->{}];{}", rule_label, key.basis, key.params);
    key
}

/// Serves a synthesis request for `u` (canonical class `coords`) from the
/// rule table, if the target basis has a rule covering the class.
///
/// An exact known-gate match returns its pre-dressed fragment verbatim;
/// any other member of a covered class is re-dressed from the rule's
/// exact core by the same serve logic the memo-cache uses. Either way the
/// served circuit is stored under the pair key (so exact repeats become
/// plain fetches), the lookup is recorded as [`Lookup::RuleHit`], and the
/// numeric path — memo-cache, EA, interleaver search — never runs.
///
/// Returns `None` when no rule covers the class (or the rule's core
/// drifted, which the standard table's exactness tests exclude): the
/// caller falls through to the numeric tiers.
pub fn serve_rule_tier(
    rules: &RuleSet,
    basis: &(impl Basis + ?Sized),
    store: &impl ClassStore,
    u: &CMat,
    coords: WeylPoint,
) -> Option<Circuit> {
    let name = basis.name();
    let params = basis.cache_params();
    let rule = rules.class_rule(&name, &params, coords)?;
    // Exact known gate: its pre-dressed fragment serves verbatim with no
    // store roundtrip and no re-dressing — the tier's O(ns) fast path.
    // (All known gates of a class share one pair key, so going through
    // the store would re-dress every gate except the first one served.)
    if let Some(gate) = rule.match_gate(u) {
        store.record(Lookup::RuleHit);
        return Some(gate.circuit.clone().into());
    }
    let key = rule_key(basis, &rule.label, coords);
    if let Some(entry) = store.fetch(&key) {
        if let Some((circuit, _)) = serve_from_entry(u, coords, &entry) {
            store.record(Lookup::RuleHit);
            return Some(circuit);
        }
    }
    let entry = rule.entry(u);
    let (circuit, _) = serve_from_entry(u, coords, &entry)?;
    if let Ok(core) = TwoQubitCircuit::try_from(circuit.clone()) {
        store.store(
            key,
            ClassEntry {
                target: u.clone(),
                circuit: core,
            },
        );
    }
    store.record(Lookup::RuleHit);
    Some(circuit)
}

#[cfg(test)]
mod tests {
    use super::super::rules::standard_rules;
    use super::*;
    use crate::basis::CzBasis;
    use crate::cache::SynthCache;
    use ashn_gates::kak::weyl_coordinates;
    use ashn_gates::two::cnot;

    #[test]
    fn rule_keys_never_collide_with_numeric_keys() {
        let coords = weyl_coordinates(&cnot()).canonicalize();
        let numeric = ClassKey::new(&CzBasis, coords, false);
        let ruled = rule_key(&CzBasis, "cx-class", coords);
        assert_ne!(numeric, ruled);
        assert!(ruled.params.starts_with("rule["));
        assert_eq!(
            (numeric.x, numeric.y, numeric.z),
            (ruled.x, ruled.y, ruled.z)
        );
    }

    #[test]
    fn rule_serves_record_rule_hits_only() {
        let store = SynthCache::default();
        let u = cnot();
        let coords = weyl_coordinates(&u).canonicalize();
        for _ in 0..3 {
            let c = serve_rule_tier(standard_rules().as_ref(), &CzBasis, &store, &u, coords)
                .expect("cx-class rule over CZ");
            assert!(c.error(&u) < 1e-12);
        }
        let stats = store.stats();
        assert_eq!(stats.rule_hits, 3);
        assert_eq!(
            (stats.exact_hits, stats.class_hits, stats.misses),
            (0, 0, 0)
        );
    }
}
