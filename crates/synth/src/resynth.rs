//! Block resynthesis: the entry point the circuit optimizer (`ashn-opt`)
//! uses to recompile a collected two-qubit block through any native basis.
//!
//! A block's accumulated 4×4 unitary is synthesized over the basis (which
//! KAK-canonicalizes internally — and, wrapped in
//! [`crate::cache::CachedBasis`], serves repeated Weyl classes from the
//! memo-cache), single-qubit runs are fused, and the realized error against
//! the block unitary is measured so the caller can accept or reject the
//! replacement against its own tolerance.

use ashn_ir::{Basis, Circuit, SynthError};
use ashn_math::CMat;

/// A candidate replacement for a two-qubit block.
#[derive(Clone, Debug)]
pub struct BlockResynthesis {
    /// The replacement circuit on qubits `{0, 1}` (single-qubit runs
    /// fused), including its global phase.
    pub circuit: Circuit,
    /// Frobenius distance between the replacement's unitary and the block
    /// target.
    pub error: f64,
}

/// Synthesizes a two-qubit block unitary over `basis` and measures the
/// realized error.
///
/// # Errors
///
/// Propagates [`SynthError`] from the basis (callers typically *skip* the
/// block on error rather than abort the whole optimization).
pub fn resynthesize_block<B: Basis + ?Sized>(
    u: &CMat,
    basis: &B,
) -> Result<BlockResynthesis, SynthError> {
    let circuit = basis.synthesize(u)?.fuse_single_qubit_runs();
    let error = circuit.error(u);
    Ok(BlockResynthesis { circuit, error })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::CzBasis;
    use ashn_gates::two::swap;
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn resynthesis_reproduces_target_and_reports_error() {
        let mut rng = StdRng::seed_from_u64(71);
        let u = haar_unitary(4, &mut rng);
        let r = resynthesize_block(&u, &CzBasis).unwrap();
        assert!(r.error < 1e-6, "error {}", r.error);
        assert!(r.circuit.error(&u) <= r.error + 1e-12);
        assert_eq!(r.circuit.entangler_count(), 3);
    }

    #[test]
    fn swap_block_resynthesizes_through_dyn_basis() {
        let basis: Box<dyn Basis> = Box::new(CzBasis);
        let r = resynthesize_block(&swap(), basis.as_ref()).unwrap();
        assert!(r.error < 1e-8);
        assert_eq!(r.circuit.entangler_count(), 3);
    }
}
