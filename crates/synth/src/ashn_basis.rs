//! Two-qubit synthesis over the AshN basis: every class is a *single*
//! native pulse (paper §6.1), so the circuit is one entangler dressed with
//! single-qubit corrections computed via KAK.

use crate::circuit2::{align_to_target, Op2, TwoQubitCircuit};
use ashn_core::ea::EaSearch;
use ashn_core::scheme::{AshnPulse, AshnScheme, CompileError};
use ashn_gates::kak::weyl_coordinates;
use ashn_math::{CMat, Complex};

/// Result of AshN synthesis: the circuit plus the pulse that implements its
/// entangler.
#[derive(Clone, Debug)]
pub struct AshnSynthesis {
    /// The dressed circuit (one entangler for non-identity classes).
    pub circuit: TwoQubitCircuit,
    /// The compiled pulse.
    pub pulse: AshnPulse,
}

/// Decomposes an arbitrary two-qubit unitary into one AshN pulse plus
/// single-qubit corrections.
///
/// # Errors
///
/// Propagates [`CompileError`] from the pulse compiler.
pub fn decompose_ashn(u: &CMat, scheme: &AshnScheme) -> Result<AshnSynthesis, CompileError> {
    let p = weyl_coordinates(u);
    build_synthesis(u, scheme.compile(p)?)
}

/// [`decompose_ashn`] with explicit EA search effort (escalation rounds,
/// jitter seed, deadline). With `search == EaSearch { workers, ..default }`
/// this is bit-identical to [`decompose_ashn`].
///
/// # Errors
///
/// Propagates [`CompileError`] from the pulse compiler; `timed_out` is set
/// when the search deadline expired.
pub fn decompose_ashn_with_search(
    u: &CMat,
    scheme: &AshnScheme,
    search: &EaSearch,
) -> Result<AshnSynthesis, CompileError> {
    let p = weyl_coordinates(u);
    build_synthesis(u, scheme.compile_with_search(p, search)?)
}

fn build_synthesis(u: &CMat, pulse: AshnPulse) -> Result<AshnSynthesis, CompileError> {
    let base = if pulse.tau == 0.0 {
        TwoQubitCircuit::identity()
    } else {
        TwoQubitCircuit {
            phase: Complex::ONE,
            ops: vec![Op2::Entangler {
                label: format!("AshN[{}]", pulse.scheme),
                matrix: pulse.unitary(),
                duration: pulse.tau,
            }],
        }
    };
    Ok(AshnSynthesis {
        circuit: align_to_target(u, base),
        pulse,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_gates::cost::optimal_time;
    use ashn_gates::two::{cnot, swap};
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_gate_is_one_pulse() {
        let scheme = AshnScheme::new(0.0);
        let mut rng = StdRng::seed_from_u64(51);
        for _ in 0..10 {
            let u = haar_unitary(4, &mut rng);
            let s = decompose_ashn(&u, &scheme).expect("compiles");
            assert_eq!(s.circuit.entangler_count(), 1);
            assert!(s.circuit.error(&u) < 1e-6, "error {}", s.circuit.error(&u));
            // Duration is the optimal time for the class.
            let p = weyl_coordinates(&u);
            assert!((s.pulse.tau - optimal_time(0.0, p)).abs() < 1e-8);
        }
    }

    #[test]
    fn named_gates_reconstruct() {
        let scheme = AshnScheme::new(0.0);
        for g in [cnot(), swap()] {
            let s = decompose_ashn(&g, &scheme).unwrap();
            assert!(s.circuit.error(&g) < 1e-6, "error {}", s.circuit.error(&g));
        }
    }

    #[test]
    fn works_with_zz_and_cutoff() {
        let scheme = AshnScheme::with_cutoff(0.2, 0.9);
        let mut rng = StdRng::seed_from_u64(52);
        let u = haar_unitary(4, &mut rng);
        let s = decompose_ashn(&u, &scheme).unwrap();
        assert!(s.circuit.error(&u) < 1e-6);
        assert!(s.pulse.max_strength() <= scheme.strength_bound() + 1e-6);
    }
}
