//! Gate-count formulas and lower bounds for n-qubit synthesis
//! (paper Fig. 6(c) and Theorems 3/12/13).

/// Theoretical lower bound on CNOT count for a generic `n`-qubit unitary:
/// `⌈(4ⁿ − 3n − 1)/4⌉` (Shende et al. [37, 38]).
pub fn cnot_lower_bound(n: u32) -> u64 {
    let num = 4u64.pow(n) - 3 * n as u64 - 1;
    num.div_ceil(4)
}

/// Theoretical lower bound on generic two-qubit gate count:
/// `⌈(4ⁿ − 3n − 1)/9⌉` (Yu & Ying [44]).
pub fn generic_lower_bound(n: u32) -> u64 {
    let num = 4u64.pow(n) - 3 * n as u64 - 1;
    num.div_ceil(9)
}

/// The optimized QSD CNOT count of [35]: `23/48·4ⁿ − 3/2·2ⁿ + 4/3`.
///
/// Our plain QSD implementation (without the two ad-hoc optimizations of
/// [35]) produces [`crate::qsd::qsd_count`] instead; both are reported in
/// the Fig. 6(c) bench.
pub fn qsd_cnot_formula(n: u32) -> f64 {
    23.0 / 48.0 * 4f64.powi(n as i32) - 1.5 * 2f64.powi(n as i32) + 4.0 / 3.0
}

/// The generic two-qubit gate count of paper Theorem 13:
/// `23/64·4ⁿ − 3/2·2ⁿ`. Our implementation achieves this exactly.
pub fn generic_formula(n: u32) -> f64 {
    23.0 / 64.0 * 4f64.powi(n as i32) - 1.5 * 2f64.powi(n as i32)
}

/// Paper Fig. 6(c) numerical (instantiation-based) counts.
pub mod numerical {
    /// Numerically sufficient CNOT count for `n = 3` (paper: 14, matching
    /// the dimension-counting lower bound).
    pub const CNOT_N3: usize = 14;
    /// Numerically sufficient generic count for `n = 3` (paper: 6).
    pub const GENERIC_N3: usize = 6;
    /// Numerically sufficient CNOT count for `n = 4` (paper: 61).
    pub const CNOT_N4: usize = 61;
    /// Numerically sufficient generic count for `n = 4` (paper: 27).
    pub const GENERIC_N4: usize = 27;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qsd::{qsd_count, SynthBasis};

    #[test]
    fn lower_bounds_match_paper() {
        assert_eq!(cnot_lower_bound(3), 14);
        assert_eq!(generic_lower_bound(3), 6);
        assert_eq!(cnot_lower_bound(4), 61);
        assert_eq!(generic_lower_bound(4), 27);
    }

    #[test]
    fn numerical_counts_equal_lower_bounds() {
        // The paper's key observation: the numerical counts sit exactly at
        // the dimension-counting lower bounds.
        assert_eq!(numerical::CNOT_N3 as u64, cnot_lower_bound(3));
        assert_eq!(numerical::GENERIC_N3 as u64, generic_lower_bound(3));
        assert_eq!(numerical::CNOT_N4 as u64, cnot_lower_bound(4));
        assert_eq!(numerical::GENERIC_N4 as u64, generic_lower_bound(4));
    }

    #[test]
    fn theorem13_formula_matches_implementation() {
        for n in 3..=6u32 {
            assert_eq!(
                generic_formula(n) as usize,
                qsd_count(n as usize, SynthBasis::Generic),
                "mismatch at n = {n}"
            );
        }
    }

    #[test]
    fn analytic_values_from_the_table() {
        assert!((qsd_cnot_formula(3) - 20.0).abs() < 1e-9);
        assert!((qsd_cnot_formula(4) - 100.0).abs() < 1e-9);
        assert!((generic_formula(3) - 11.0).abs() < 1e-9);
        assert!((generic_formula(4) - 68.0).abs() < 1e-9);
    }

    #[test]
    fn generic_count_is_three_quarters_of_cnot_asymptotically() {
        // Theorem 3: 23/64 = (3/4)·23/48.
        let ratio = generic_formula(10) / qsd_cnot_formula(10);
        assert!((ratio - 0.75).abs() < 0.01, "ratio = {ratio}");
    }
}
