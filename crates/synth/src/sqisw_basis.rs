//! Two-qubit synthesis over the SQiSW (√iSWAP) basis, following Huang et
//! al., "Quantum instruction set design for performance" [30]: one
//! application for the SQiSW class itself, two applications exactly when the
//! target class satisfies `x ≥ y + |z|` (the region `W₀`, ≈79% of Haar
//! measure), three otherwise.
//!
//! The interleaved single-qubit gates are found numerically (Makhlin
//! invariant matching with Nelder–Mead multistart) and the result is
//! verified against the target unitary.

use crate::circuit2::{align_to_target, Op2, TwoQubitCircuit};
use ashn_gates::invariants::{makhlin, makhlin_from_coords};
use ashn_gates::kak::weyl_coordinates;
use ashn_gates::single::su2_zyz;
use ashn_gates::two::sqisw;
use ashn_gates::weyl::WeylPoint;
use ashn_math::neldermead::{nelder_mead, NmOptions};
use ashn_math::{CMat, Complex};
use std::f64::consts::FRAC_PI_4;

/// Duration of one flux-tuned SQiSW gate in units of `1/g` (paper §6.1: π/4).
pub const SQISW_DURATION: f64 = FRAC_PI_4;

/// Synthesis failure (the numerical interleaver search did not converge).
#[derive(Clone, Debug)]
pub struct SqiswError {
    /// Target class.
    pub target: WeylPoint,
    /// Best residual achieved.
    pub best: f64,
}

impl std::fmt::Display for SqiswError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SQiSW interleaver search failed for {} (best {:.2e})",
            self.target, self.best
        )
    }
}

impl std::error::Error for SqiswError {}

/// `true` when the class is two-SQiSW-compilable (`x ≥ y + |z|`).
pub fn in_w0(p: WeylPoint) -> bool {
    let p = p.canonicalize();
    p.x >= p.y + p.z.abs() - 1e-9
}

/// Number of SQiSW applications needed for the class of `u` (1, 2 or 3;
/// 0 for the identity class).
pub fn sqisw_count(u: &CMat) -> usize {
    sqisw_count_for(weyl_coordinates(u))
}

/// Number of SQiSW applications for a canonical class.
pub fn sqisw_count_for(p: WeylPoint) -> usize {
    let tol = 1e-9;
    if p.dist(WeylPoint::IDENTITY) < tol {
        0
    } else if p.gate_dist(WeylPoint::SQISW) < tol {
        1
    } else if in_w0(p) {
        2
    } else {
        3
    }
}

fn entangler() -> Op2 {
    Op2::Entangler {
        label: "SQiSW".into(),
        matrix: sqisw(),
        duration: SQISW_DURATION,
    }
}

/// Searches for middle locals `(m₀, m₁)` with
/// `SQiSW · (m₀⊗m₁) · SQiSW` in the class `p`. Returns the core circuit.
fn two_application_core(p: WeylPoint) -> Result<TwoQubitCircuit, SqiswError> {
    let s = sqisw();
    let (g1t, g2t) = makhlin_from_coords(p.x, p.y, p.z);
    let objective = |v: &[f64]| {
        let m = su2_zyz(v[0], v[1], v[2]).kron(&su2_zyz(v[3], v[4], v[5]));
        let u = s.matmul(&m).matmul(&s);
        let (g1, g2) = makhlin(&u);
        (g1 - g1t).norm_sqr() + (g2 - g2t).powi(2)
    };
    // Deterministic multistart seeds.
    let seeds: Vec<[f64; 6]> = {
        let mut out = Vec::new();
        let vals = [0.0, 0.9, 1.9, 2.8];
        for &a in &vals {
            for &b in &vals {
                out.push([a, b, 0.4, -a, 1.3 - b, 0.7]);
                out.push([b, a, -0.8, 0.3, a, -b]);
            }
        }
        out
    };
    let mut best = f64::INFINITY;
    for seed in seeds {
        let res = nelder_mead(
            objective,
            &seed,
            &NmOptions {
                max_evals: 2500,
                f_tol: 1e-26,
                initial_step: 0.4,
                ..NmOptions::default()
            },
        );
        if res.f < 1e-17 {
            let m = su2_zyz(res.x[0], res.x[1], res.x[2]);
            let m2 = su2_zyz(res.x[3], res.x[4], res.x[5]);
            let core = TwoQubitCircuit {
                phase: Complex::ONE,
                ops: vec![entangler(), Op2::L0(m), Op2::L1(m2), entangler()],
            };
            let got = weyl_coordinates(&core.unitary());
            if got.gate_dist(p) < 1e-7 {
                return Ok(core);
            }
        }
        best = best.min(res.f);
    }
    Err(SqiswError { target: p, best })
}

/// Finds pre-locals `(w₀, w₁)` pushing `U·(w₀⊗w₁)·SQiSW†` into `W₀` for the
/// three-application case. Returns the locals.
fn w0_reduction(u: &CMat) -> Result<(CMat, CMat), SqiswError> {
    let sdag = sqisw().adjoint();
    // First pass demands a small interior margin (well-conditioned for the
    // downstream search); corner classes like [SWAP] only reach the W₀
    // boundary, so a second pass accepts the boundary itself.
    let seeds: [[f64; 6]; 6] = [
        [0.0; 6],
        [1.0, 0.5, -0.5, 0.3, 1.2, 0.0],
        [2.1, -0.7, 0.4, -1.5, 0.2, 0.9],
        [0.4, 2.2, 1.1, 0.8, -0.9, -1.7],
        [-1.2, 0.3, 2.5, 1.9, 0.6, 0.2],
        [0.9, 1.4, -2.0, -0.4, 2.3, 1.1],
    ];
    let mut best = f64::INFINITY;
    for margin in [5e-4, 0.0] {
        let objective = |v: &[f64]| {
            let w = su2_zyz(v[0], v[1], v[2]).kron(&su2_zyz(v[3], v[4], v[5]));
            let vmat = u.matmul(&w).matmul(&sdag);
            let p = weyl_coordinates(&vmat);
            (p.y + p.z.abs() - p.x + margin).max(0.0)
        };
        for seed in seeds {
            let res = nelder_mead(
                objective,
                &seed,
                &NmOptions {
                    max_evals: 3000,
                    f_tol: 1e-15,
                    initial_step: 0.5,
                    ..NmOptions::default()
                },
            );
            if res.f <= 1e-10 {
                return Ok((
                    su2_zyz(res.x[0], res.x[1], res.x[2]),
                    su2_zyz(res.x[3], res.x[4], res.x[5]),
                ));
            }
            best = best.min(res.f);
        }
    }
    Err(SqiswError {
        target: weyl_coordinates(u),
        best,
    })
}

/// Decomposes an arbitrary two-qubit unitary into SQiSW applications plus
/// single-qubit gates (0–3 applications, minimal per [30]).
///
/// # Errors
///
/// Returns [`SqiswError`] when the numerical search fails to converge.
pub fn decompose_sqisw(u: &CMat) -> Result<TwoQubitCircuit, SqiswError> {
    let p = weyl_coordinates(u);
    match sqisw_count_for(p) {
        0 | 1 => {
            let base = if sqisw_count_for(p) == 0 {
                TwoQubitCircuit::identity()
            } else {
                TwoQubitCircuit {
                    phase: Complex::ONE,
                    ops: vec![entangler()],
                }
            };
            Ok(align_to_target(u, base))
        }
        2 => {
            let core = two_application_core(p)?;
            Ok(align_to_target(u, core))
        }
        _ => {
            let (w0, w1) = w0_reduction(u)?;
            let v = u.matmul(&w0.kron(&w1)).matmul(&sqisw().adjoint());
            let vp = weyl_coordinates(&v);
            let core = two_application_core(vp)?;
            let v_circ = align_to_target(&v, core);
            // u = v · SQiSW · (w₀⊗w₁)†.
            let mut ops = vec![Op2::L0(w0.adjoint()), Op2::L1(w1.adjoint()), entangler()];
            ops.extend(v_circ.ops);
            Ok(TwoQubitCircuit {
                phase: v_circ.phase,
                ops,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_gates::two::{cnot, iswap, swap};
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn w0_membership() {
        assert!(in_w0(WeylPoint::CNOT));
        assert!(in_w0(WeylPoint::ISWAP));
        assert!(!in_w0(WeylPoint::SWAP));
        assert!(!in_w0(WeylPoint::new(0.2, 0.19, 0.1)));
    }

    #[test]
    fn sqisw_itself_uses_one() {
        let c = decompose_sqisw(&sqisw()).unwrap();
        assert_eq!(c.entangler_count(), 1);
        assert!(c.error(&sqisw()) < 1e-8);
    }

    #[test]
    fn cnot_uses_two_applications() {
        let c = decompose_sqisw(&cnot()).unwrap();
        assert_eq!(c.entangler_count(), 2);
        assert!(c.error(&cnot()) < 1e-7, "error {}", c.error(&cnot()));
    }

    #[test]
    fn iswap_uses_two_applications() {
        let c = decompose_sqisw(&iswap()).unwrap();
        assert_eq!(c.entangler_count(), 2);
        assert!(c.error(&iswap()) < 1e-7);
    }

    #[test]
    fn swap_needs_three() {
        let c = decompose_sqisw(&swap()).unwrap();
        assert_eq!(c.entangler_count(), 3);
        assert!(c.error(&swap()) < 1e-6, "error {}", c.error(&swap()));
    }

    #[test]
    fn haar_random_gates_reconstruct() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut threes = 0;
        for _ in 0..10 {
            let u = haar_unitary(4, &mut rng);
            let c = decompose_sqisw(&u).expect("converges");
            let expected = sqisw_count(&u);
            assert_eq!(c.entangler_count(), expected);
            if expected == 3 {
                threes += 1;
            }
            assert!(c.error(&u) < 1e-6, "error {}", c.error(&u));
        }
        // ~21% of Haar gates need 3; with 10 samples we just check the
        // mechanism exercised at least one two-application case.
        assert!(threes < 10);
    }

    #[test]
    fn durations_match_application_count() {
        let c = decompose_sqisw(&cnot()).unwrap();
        assert!((c.entangler_duration() - 2.0 * SQISW_DURATION).abs() < 1e-12);
    }
}
