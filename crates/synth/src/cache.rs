//! A bounded synthesis memo-cache keyed by quantized Weyl coordinates.
//!
//! Two-qubit synthesis cost is dominated by per-*class* work — the AshN
//! pulse compilation and the SQiSW interleaver search are numerical
//! searches over the local-equivalence class of the target, not the target
//! itself. [`CachedBasis`] exploits that: the first synthesis of a class
//! stores the resulting circuit, and later targets of the same class are
//! served by re-dressing the stored circuit with KAK-computed single-qubit
//! corrections ([`align_to_target`]) instead of re-running the search.
//!
//! Repeated *targets* (the dominant pattern in batched experiment sweeps:
//! routed SWAPs, repeated bench models, scoring one compilation at many
//! noise levels) are re-dressed by exactly-identity corrections, which are
//! trimmed away — a hit returns an instruction list identical to the cold
//! synthesis. The cache is bounded (LRU eviction by default, FIFO on
//! request) and internally locked, so one instance can serve every worker
//! of a batch run.
//!
//! The storage behind [`CachedBasis`] is pluggable via [`ClassStore`]:
//! [`SynthCache`] is the single-mutex store used per `ashn::Compiler`;
//! `ashn-service`'s `ShardedCache` stripes the same entries over many
//! locks and persists them to disk, sharing [`ClassKey`]/[`ClassEntry`]
//! and the serve logic ([`serve_from_entry`]) with this module.

use crate::circuit2::{align_to_target, TwoQubitCircuit};
use ashn_gates::kak::{weyl_coordinates, weyl_coordinates4};
use ashn_gates::weyl::WeylPoint;
use ashn_ir::{Basis, Circuit, SynthEffort, SynthError};
use ashn_math::{CMat, Mat4};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Quantization step for the Weyl-coordinate key. Coarse enough that the
/// numerical noise of `weyl_coordinates` (≲1e-9) rarely splits a class
/// across cells, fine enough that any same-cell pair is far inside the
/// `1e-6` class-match tolerance of [`align_to_target`].
const QUANT: f64 = 1e-7;

/// Targets closer than this (Frobenius) to a stored entry's target are
/// treated as exact repeats and served the stored circuit verbatim.
const REPEAT_TOL: f64 = 1e-12;

/// A stored circuit may only be re-dressed when it realizes its class
/// within this coordinate distance ([`align_to_target`] asserts at 1e-6).
const REDRESS_TOL: f64 = 5e-7;

/// The class identity of a cached synthesis result.
///
/// Keys carry the basis display name **and** its [`Basis::cache_params`]
/// because one store may be shared across wrappers of *different* bases —
/// a CZ-basis circuit must never serve an SQiSW-basis hit, and two AshN
/// schemes that differ only in the `ZZ` ratio `h̃` (same display name)
/// must never serve each other. The swap flag separates
/// [`Basis::native_swap`] entries from plain synthesis, because a basis
/// may override `native_swap` with a decomposition its `synthesize` would
/// not produce.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassKey {
    /// Basis display name ([`Basis::name`]).
    pub basis: String,
    /// Scheme parameters ([`Basis::cache_params`]).
    pub params: String,
    /// Quantized canonical Weyl coordinates.
    pub x: i64,
    /// Quantized canonical Weyl coordinates.
    pub y: i64,
    /// Quantized canonical Weyl coordinates.
    pub z: i64,
    /// Whether this entry memoizes [`Basis::native_swap`].
    pub swap: bool,
}

fn quantize(x: f64) -> i64 {
    (x / QUANT).round() as i64
}

impl ClassKey {
    /// The key for `point` under `basis` (quantizing the coordinates and
    /// capturing the basis name + parameters).
    pub fn new(basis: &(impl Basis + ?Sized), point: WeylPoint, swap: bool) -> Self {
        Self {
            basis: basis.name(),
            params: basis.cache_params(),
            x: quantize(point.x),
            y: quantize(point.y),
            z: quantize(point.z),
            swap,
        }
    }
}

/// One memoized class: the circuit the cold synthesis produced and the
/// target it was synthesized for.
#[derive(Clone, Debug)]
pub struct ClassEntry {
    /// The target the stored circuit was synthesized for.
    pub target: CMat,
    /// The cold-synthesis output.
    pub circuit: TwoQubitCircuit,
}

/// How a cache lookup resolved (see [`CacheStats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// Served the stored circuit verbatim (exact target repeat).
    ExactHit,
    /// Served by re-dressing a same-class entry with computed locals.
    ClassHit,
    /// Served closed-form by the retargeting rule tier
    /// (`crate::retarget`) — no numeric synthesis ran.
    RuleHit,
    /// Fell through to cold synthesis.
    Miss,
}

/// Storage interface behind [`CachedBasis`]: any thread-safe class→circuit
/// map with hit/miss accounting. Implemented by [`SynthCache`] (single
/// mutex, per-`Compiler`) and `ashn_service::ShardedCache` (lock-striped,
/// process-wide, persistent).
pub trait ClassStore {
    /// Looks up a stored class (no stats side effects — attribution
    /// happens once the caller knows how the entry was used, via
    /// [`ClassStore::record`]).
    fn fetch(&self, key: &ClassKey) -> Option<ClassEntry>;

    /// Inserts (or replaces) a class.
    fn store(&self, key: ClassKey, entry: ClassEntry);

    /// Attributes one lookup to exact-hit/class-hit/miss.
    fn record(&self, outcome: Lookup);

    /// Removes a class that failed post-serve verification (quarantine),
    /// returning whether an entry was present. The default is a no-op for
    /// read-only or fan-out stores that cannot evict.
    fn evict(&self, key: &ClassKey) -> bool {
        let _ = key;
        false
    }
}

/// Serves a synthesis request for `u` (canonical coordinates `coords`)
/// from a stored same-class entry, if possible.
///
/// An exact target repeat (within `1e-12` Frobenius) returns the stored
/// circuit verbatim; any other same-class target is re-dressed with
/// KAK-computed outer locals via [`align_to_target`], with the correction
/// locals fused into the stored circuit's boundary locals so the hit
/// carries the same single-qubit gate count (and thus the same per-gate
/// noise charge) as a cold synthesis. Returns `None` when the stored
/// circuit's realized class has drifted too far to re-dress safely — the
/// caller should fall through to cold synthesis.
pub fn serve_from_entry(
    u: &CMat,
    coords: WeylPoint,
    entry: &ClassEntry,
) -> Option<(Circuit, Lookup)> {
    if u.dist(&entry.target) < REPEAT_TOL {
        return Some((entry.circuit.clone().into(), Lookup::ExactHit));
    }
    let realized = weyl_coordinates(&entry.circuit.unitary()).canonicalize();
    if realized.gate_dist(coords) < REDRESS_TOL {
        let dressed: Circuit = align_to_target(u, entry.circuit.clone()).into();
        return Some((dressed.fuse_single_qubit_runs(), Lookup::ClassHit));
    }
    None
}

/// Which entry a full cache discards first (see [`SynthCache::with_policy`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Discard the least-recently-*used* entry (the default — repeated hot
    /// classes survive arbitrarily long scans of cold ones).
    #[default]
    Lru,
    /// Discard the oldest-*inserted* entry (the pre-LRU behavior, kept for
    /// differential comparisons).
    Fifo,
}

#[derive(Clone, Debug)]
struct Slot {
    entry: ClassEntry,
    stamp: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<ClassKey, Slot>,
    tick: u64,
    exact_hits: u64,
    class_hits: u64,
    rule_hits: u64,
    misses: u64,
    evictions: u64,
}

/// Shared, bounded class→circuit store.
#[derive(Clone, Debug)]
pub struct SynthCache {
    inner: Arc<Mutex<CacheInner>>,
    capacity: usize,
    policy: EvictionPolicy,
}

/// Hit/miss/occupancy snapshot of a [`SynthCache`].
///
/// Hits are split by what the cache had to do: an **exact** hit returns the
/// stored circuit verbatim (the target repeated to `1e-12`), a **class**
/// hit re-dresses the stored circuit of the same Weyl class with
/// KAK-computed locals, and a **miss** runs cold synthesis (including
/// lookups whose stored circuit had drifted too far to re-dress).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served verbatim (exact target repeat).
    pub exact_hits: u64,
    /// Lookups served by re-dressing a same-class entry.
    pub class_hits: u64,
    /// Lookups served closed-form by the retargeting rule tier (never
    /// counted as misses; the numeric path did not run).
    pub rule_hits: u64,
    /// Lookups that fell through to cold synthesis.
    pub misses: u64,
    /// Entries discarded to stay within capacity.
    pub evictions: u64,
    /// Entries currently stored.
    pub len: usize,
    /// Maximum entries retained.
    pub capacity: usize,
}

impl CacheStats {
    /// Total lookups served without cold synthesis (exact + class + rule).
    pub fn hits(&self) -> u64 {
        self.exact_hits + self.class_hits + self.rule_hits
    }

    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits() + self.misses
    }

    /// Fraction of lookups served from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// The lookup counters as a view over a telemetry snapshot — the same
    /// values [`SynthCache::stats`] reports, because [`ClassStore::record`]
    /// is the one path updating both. Occupancy (`len`/`capacity`/
    /// `evictions`) is storage state, not lookup traffic, and stays zero
    /// here.
    pub fn from_telemetry(snap: &ashn_telemetry::TelemetrySnapshot) -> CacheStats {
        CacheStats {
            exact_hits: snap.counter("cache.lookup.exact").unwrap_or(0),
            class_hits: snap.counter("cache.lookup.class").unwrap_or(0),
            rule_hits: snap.counter("cache.lookup.rule").unwrap_or(0),
            misses: snap.counter("cache.lookup.miss").unwrap_or(0),
            ..CacheStats::default()
        }
    }

    /// Component-wise sum (used to aggregate per-shard stats).
    pub fn merge(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            exact_hits: self.exact_hits + other.exact_hits,
            class_hits: self.class_hits + other.class_hits,
            rule_hits: self.rule_hits + other.rule_hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            len: self.len + other.len,
            capacity: self.capacity + other.capacity,
        }
    }
}

impl SynthCache {
    /// An LRU cache retaining at most `capacity` classes.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_policy(capacity, EvictionPolicy::Lru)
    }

    /// A cache with an explicit eviction policy.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_policy(capacity: usize, policy: EvictionPolicy) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            inner: Arc::new(Mutex::new(CacheInner::default())),
            capacity,
            policy,
        }
    }

    /// Maximum entries retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured eviction policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Current hit/miss/occupancy counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        CacheStats {
            exact_hits: inner.exact_hits,
            class_hits: inner.class_hits,
            rule_hits: inner.rule_hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.map.len(),
            capacity: self.capacity,
        }
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.map.clear();
    }

    /// Every stored entry, sorted by key — the deterministic iteration
    /// order the persistence layer serializes in.
    pub fn export_entries(&self) -> Vec<(ClassKey, ClassEntry)> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out: Vec<(ClassKey, ClassEntry)> = inner
            .map
            .iter()
            .map(|(k, slot)| (k.clone(), slot.entry.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

impl ClassStore for SynthCache {
    fn fetch(&self, key: &ClassKey) -> Option<ClassEntry> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let touch = self.policy == EvictionPolicy::Lru;
        if touch {
            inner.tick += 1;
        }
        let tick = inner.tick;
        inner.map.get_mut(key).map(|slot| {
            if touch {
                slot.stamp = tick;
            }
            slot.entry.clone()
        })
    }

    fn store(&self, key: ClassKey, entry: ClassEntry) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.tick += 1;
        let stamp = inner.tick;
        if !inner.map.contains_key(&key) {
            while inner.map.len() >= self.capacity {
                // Oldest stamp = least recently used (LRU) or first
                // inserted (FIFO, where hits never re-stamp). Ties are
                // impossible: the tick is strictly increasing.
                let victim = inner
                    .map
                    .iter()
                    .min_by_key(|(_, slot)| slot.stamp)
                    .map(|(k, _)| k.clone());
                match victim {
                    Some(k) => {
                        inner.map.remove(&k);
                        inner.evictions += 1;
                    }
                    None => break,
                }
            }
        }
        inner.map.insert(key, Slot { entry, stamp });
    }

    fn record(&self, outcome: Lookup) {
        // The one accounting path for lookup outcomes: every store-level
        // counter AND the telemetry registry are updated here (and only
        // here), so `CacheStats` views and the exported snapshot can never
        // drift apart. `ShardedCache` funnels its `record` through one
        // shard, which lands in this same body.
        let telemetry = ashn_telemetry::current();
        telemetry.add("cache.lookups", 1);
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match outcome {
            Lookup::ExactHit => {
                inner.exact_hits += 1;
                telemetry.add("cache.lookup.exact", 1);
            }
            Lookup::ClassHit => {
                inner.class_hits += 1;
                telemetry.add("cache.lookup.class", 1);
            }
            Lookup::RuleHit => {
                inner.rule_hits += 1;
                telemetry.add("cache.lookup.rule", 1);
            }
            Lookup::Miss => {
                inner.misses += 1;
                telemetry.add("cache.lookup.miss", 1);
            }
        }
    }

    fn evict(&self, key: &ClassKey) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let present = inner.map.remove(key).is_some();
        if present {
            inner.evictions += 1;
        }
        present
    }
}

impl Default for SynthCache {
    fn default() -> Self {
        Self::with_capacity(256)
    }
}

/// A [`Basis`] decorator adding the class-keyed memo-cache to any native
/// gate set. Generic over the storage: the default [`SynthCache`], or any
/// other [`ClassStore`] (e.g. `ashn_service::ShardedCache`) via
/// [`CachedBasis::with_store`].
#[derive(Clone, Debug)]
pub struct CachedBasis<B, S = SynthCache> {
    inner: B,
    cache: S,
    rules: Option<std::sync::Arc<crate::retarget::RuleSet>>,
}

impl<B: Basis> CachedBasis<B> {
    /// Wraps `inner` with a default-capacity cache.
    pub fn new(inner: B) -> Self {
        Self {
            inner,
            cache: SynthCache::default(),
            rules: None,
        }
    }

    /// Wraps `inner` with an explicit cache (sharable across wrappers).
    pub fn with_cache(inner: B, cache: SynthCache) -> Self {
        Self {
            inner,
            cache,
            rules: None,
        }
    }

    /// The underlying cache (for stats and sharing).
    pub fn cache(&self) -> &SynthCache {
        &self.cache
    }
}

impl<B: Basis, S: ClassStore> CachedBasis<B, S> {
    /// Wraps `inner` over any [`ClassStore`] backend.
    pub fn with_store(inner: B, cache: S) -> Self {
        Self {
            inner,
            cache,
            rules: None,
        }
    }

    /// Arms the closed-form retargeting rule tier
    /// (`crate::retarget::standard_rules` or a custom table): targets
    /// whose class the target basis has a rule for are served from the
    /// table — recorded as [`Lookup::RuleHit`], cached under the rule's
    /// pair key — and never reach the memo-cache or the inner basis. Off
    /// by default, so a bare `CachedBasis` is bit-identical to the
    /// pre-rule behavior.
    #[must_use]
    pub fn with_rules(mut self, rules: std::sync::Arc<crate::retarget::RuleSet>) -> Self {
        self.rules = Some(rules);
        self
    }

    /// The underlying store.
    pub fn class_store(&self) -> &S {
        &self.cache
    }

    /// The wrapped basis.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The armed rule table, if any.
    pub fn rules(&self) -> Option<&crate::retarget::RuleSet> {
        self.rules.as_deref()
    }
}

impl<B: Basis, S: ClassStore> Basis for CachedBasis<B, S> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn cache_params(&self) -> String {
        self.inner.cache_params()
    }

    fn synthesize(&self, u: &CMat) -> Result<Circuit, SynthError> {
        self.synthesize_with_effort(u, SynthEffort::default())
    }

    fn synthesize_with_effort(&self, u: &CMat, effort: SynthEffort) -> Result<Circuit, SynthError> {
        // Only well-formed two-qubit unitaries are keyable; anything else
        // goes straight to the inner basis (which reports the right error).
        // The unitarity check runs on a stack-allocated copy.
        let m4 = match Mat4::try_from(u) {
            Ok(m) if m.is_unitary(1e-6) => m,
            _ => return self.inner.synthesize_with_effort(u, effort),
        };
        let coords = weyl_coordinates4(&m4).canonicalize();
        // Tier 0: closed-form retargeting rules, ahead of the memo-cache
        // and the (possibly numeric) inner synthesis.
        if let Some(rules) = &self.rules {
            if let Some(circuit) =
                crate::retarget::serve_rule_tier(rules, &self.inner, &self.cache, u, coords)
            {
                return Ok(circuit);
            }
        }
        let key = ClassKey::new(&self.inner, coords, false);
        if let Some(entry) = self.cache.fetch(&key) {
            if let Some((circuit, outcome)) = serve_from_entry(u, coords, &entry) {
                self.cache.record(outcome);
                return Ok(circuit);
            }
        }
        self.cache.record(Lookup::Miss);
        let circuit = {
            let _span = ashn_telemetry::span!("synth.cold");
            self.inner.synthesize_with_effort(u, effort)?
        };
        if let Ok(core) = TwoQubitCircuit::try_from(circuit.clone()) {
            self.cache.store(
                key,
                ClassEntry {
                    target: u.clone(),
                    circuit: core,
                },
            );
        }
        Ok(circuit)
    }

    fn native_swap(&self) -> Result<Circuit, SynthError> {
        // Memoized under a dedicated key, and cold-served by the *inner*
        // `native_swap` so a basis's bespoke SWAP override is respected.
        let swap = ashn_gates::two::swap();
        let key = ClassKey::new(&self.inner, weyl_coordinates(&swap).canonicalize(), true);
        if let Some(entry) = self.cache.fetch(&key) {
            self.cache.record(Lookup::ExactHit);
            return Ok(entry.circuit.into());
        }
        self.cache.record(Lookup::Miss);
        let circuit = self.inner.native_swap()?;
        if let Ok(core) = TwoQubitCircuit::try_from(circuit.clone()) {
            self.cache.store(
                key,
                ClassEntry {
                    target: swap,
                    circuit: core,
                },
            );
        }
        Ok(circuit)
    }

    fn expected_entanglers(&self, u: &CMat) -> usize {
        self.inner.expected_entanglers(u)
    }

    fn metadata(&self) -> Option<ashn_ir::BasisMetadata> {
        self.inner.metadata()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::{AshnBasis, CzBasis, SqiswBasis};
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Frobenius distance after optimally aligning the global phases.
    fn phase_invariant_distance(a: &CMat, b: &CMat) -> f64 {
        let tr = a.adjoint().matmul(b).trace();
        let phase = if tr.abs() > 1e-15 {
            tr / tr.abs()
        } else {
            ashn_math::Complex::ONE
        };
        a.scale(phase).dist(b)
    }

    #[test]
    fn hit_matches_cold_synthesis_exactly() {
        // Same target twice: the second call is a hit and must return a
        // circuit with identical gate counts and the same unitary (up to
        // global phase) as the cold synthesis.
        let mut rng = StdRng::seed_from_u64(601);
        for _ in 0..3 {
            let u = haar_unitary(4, &mut rng);
            let cached = CachedBasis::new(AshnBasis::ideal());
            let cold = cached.synthesize(&u).unwrap();
            assert_eq!(cached.cache().stats().misses, 1);
            let hit = cached.synthesize(&u).unwrap();
            assert_eq!(cached.cache().stats().exact_hits, 1);
            assert_eq!(hit.instructions.len(), cold.instructions.len());
            assert_eq!(hit.entangler_count(), cold.entangler_count());
            let d = phase_invariant_distance(&hit.unitary(), &cold.unitary());
            assert!(d < 1e-9, "hit differs from cold by {d}");
            assert!(hit.error(&u) < 1e-6);
        }
    }

    #[test]
    fn same_class_different_target_skips_reinstantiation() {
        // Dress one Haar target's class with fresh locals: the second
        // synthesis is served from the cache (one miss total) and still
        // reconstructs its own target with the same entangler count.
        let mut rng = StdRng::seed_from_u64(602);
        let u1 = haar_unitary(4, &mut rng);
        let l = haar_unitary(2, &mut rng).kron(&haar_unitary(2, &mut rng));
        let r = haar_unitary(2, &mut rng).kron(&haar_unitary(2, &mut rng));
        let u2 = l.matmul(&u1).matmul(&r);
        let cached = CachedBasis::new(SqiswBasis);
        let c1 = cached.synthesize(&u1).unwrap();
        let c2 = cached.synthesize(&u2).unwrap();
        let stats = cached.cache().stats();
        assert_eq!(
            (stats.misses, stats.class_hits, stats.exact_hits),
            (1, 1, 0)
        );
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(c2.entangler_count(), c1.entangler_count());
        assert!(c2.error(&u2) < 1e-5, "redressed error {}", c2.error(&u2));
    }

    #[test]
    fn cache_is_bounded_with_fifo_eviction() {
        let mut rng = StdRng::seed_from_u64(603);
        let cached =
            CachedBasis::with_cache(CzBasis, SynthCache::with_policy(3, EvictionPolicy::Fifo));
        for _ in 0..8 {
            let u = haar_unitary(4, &mut rng);
            cached.synthesize(&u).unwrap();
        }
        let stats = cached.cache().stats();
        assert!(stats.len <= 3, "cache grew to {}", stats.len);
        assert_eq!(stats.misses, 8);
        assert_eq!(stats.evictions, 5);
    }

    #[test]
    fn lru_eviction_keeps_the_hot_class() {
        // Capacity 2: synthesize A, B, re-touch A, then C. LRU must evict
        // B (A was used more recently); FIFO would have evicted A.
        let mut rng = StdRng::seed_from_u64(605);
        let a = haar_unitary(4, &mut rng);
        let b = haar_unitary(4, &mut rng);
        let c = haar_unitary(4, &mut rng);
        let cached = CachedBasis::with_cache(CzBasis, SynthCache::with_capacity(2));
        cached.synthesize(&a).unwrap();
        cached.synthesize(&b).unwrap();
        cached.synthesize(&a).unwrap(); // touch A
        cached.synthesize(&c).unwrap(); // evicts B
        let after_evict = cached.cache().stats();
        assert_eq!(after_evict.evictions, 1);
        cached.synthesize(&a).unwrap(); // still cached
        assert_eq!(
            cached.cache().stats().exact_hits,
            after_evict.exact_hits + 1,
            "LRU evicted the hot class"
        );
        cached.synthesize(&b).unwrap(); // gone: cold again
        assert_eq!(cached.cache().stats().misses, 4);
    }

    #[test]
    fn fifo_eviction_ignores_touches() {
        // Same access pattern as the LRU test, FIFO policy: re-touching A
        // does not save it — A is the oldest insert and gets evicted.
        let mut rng = StdRng::seed_from_u64(605);
        let a = haar_unitary(4, &mut rng);
        let b = haar_unitary(4, &mut rng);
        let c = haar_unitary(4, &mut rng);
        let cached =
            CachedBasis::with_cache(CzBasis, SynthCache::with_policy(2, EvictionPolicy::Fifo));
        cached.synthesize(&a).unwrap();
        cached.synthesize(&b).unwrap();
        cached.synthesize(&a).unwrap(); // touch A (FIFO ignores it)
        cached.synthesize(&c).unwrap(); // evicts A
        cached.synthesize(&a).unwrap(); // cold again (its re-insert evicts B)
        let stats = cached.cache().stats();
        assert_eq!(stats.misses, 4, "FIFO kept the touched class");
        assert_eq!(stats.evictions, 2);
    }

    #[test]
    fn native_swap_is_cached() {
        let cached = CachedBasis::new(AshnBasis::ideal());
        let a = cached.native_swap().unwrap();
        let b = cached.native_swap().unwrap();
        assert_eq!(cached.cache().stats().exact_hits, 1);
        assert_eq!(a.instructions.len(), b.instructions.len());
        assert_eq!(b.entangler_count(), 1);
    }

    #[test]
    fn native_swap_respects_inner_overrides() {
        // A basis whose `native_swap` is NOT what `synthesize(SWAP)` would
        // produce: the cache must serve the override, and a prior cached
        // synthesis of the SWAP class must not shadow it.
        #[derive(Clone, Copy, Debug)]
        struct BespokeSwap;
        impl Basis for BespokeSwap {
            fn name(&self) -> String {
                "bespoke".into()
            }
            fn synthesize(&self, u: &CMat) -> Result<Circuit, SynthError> {
                SqiswBasis.synthesize(u)
            }
            fn native_swap(&self) -> Result<Circuit, SynthError> {
                let mut c = Circuit::new(2);
                c.instructions.push(ashn_ir::Instruction::new(
                    vec![0, 1],
                    ashn_gates::two::swap(),
                    "SWAP[bespoke]",
                ));
                Ok(c)
            }
            fn expected_entanglers(&self, _: &CMat) -> usize {
                1
            }
        }
        let cached = CachedBasis::new(BespokeSwap);
        // Populate the synthesis-path cache slot for the SWAP class first.
        let via_synth = cached.synthesize(&ashn_gates::two::swap()).unwrap();
        assert_eq!(via_synth.entangler_count(), 3, "SQiSW SWAP uses 3");
        for _ in 0..2 {
            let swap = cached.native_swap().unwrap();
            assert_eq!(swap.entangler_count(), 1);
            assert_eq!(swap.instructions[0].label, "SWAP[bespoke]");
        }
    }

    #[test]
    fn shared_cache_never_crosses_bases() {
        // One cache shared by two wrappers of *different* bases: the key
        // includes the basis name, so a CZ-class entry from the CZ basis
        // must not serve the SQiSW wrapper (whose circuits use different
        // entanglers).
        let mut rng = StdRng::seed_from_u64(604);
        let u = haar_unitary(4, &mut rng);
        let cache = SynthCache::default();
        let cz = CachedBasis::with_cache(CzBasis, cache.clone());
        let sq = CachedBasis::with_cache(SqiswBasis, cache.clone());
        let c_cz = cz.synthesize(&u).unwrap();
        let c_sq = sq.synthesize(&u).unwrap();
        assert_eq!(cache.stats().hits(), 0, "cross-basis hit served");
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(c_cz.entangler_count(), 3);
        assert!(c_sq.entangler_count() <= 3);
        for g in &c_sq.instructions {
            assert_ne!(g.label, "CZ", "SQiSW circuit contains a CZ entangler");
        }
        // And each wrapper still hits its own entry.
        let _ = cz.synthesize(&u).unwrap();
        assert_eq!(cache.stats().exact_hits, 1);
    }

    #[test]
    fn shared_cache_never_crosses_scheme_parameters() {
        // Two AshN schemes with the same cutoff (identical display name
        // "AshN(r=1.1)") but different ZZ ratios compile *different* pulses
        // for the same Weyl class. `Basis::cache_params` keeps them apart.
        let mut rng = StdRng::seed_from_u64(606);
        let u = haar_unitary(4, &mut rng);
        let cache = SynthCache::default();
        let ideal = CachedBasis::with_cache(AshnBasis::with_cutoff(0.0, 1.1), cache.clone());
        let zz = CachedBasis::with_cache(AshnBasis::with_cutoff(0.2, 1.1), cache.clone());
        assert_eq!(ideal.name(), zz.name(), "names must collide for this test");
        ideal.synthesize(&u).unwrap();
        zz.synthesize(&u).unwrap();
        assert_eq!(cache.stats().hits(), 0, "cross-parameter hit served");
        assert_eq!(cache.stats().misses, 2);
        // Each wrapper still hits its own entry.
        ideal.synthesize(&u).unwrap();
        assert_eq!(cache.stats().exact_hits, 1);
    }

    #[test]
    fn malformed_targets_bypass_the_cache() {
        let cached = CachedBasis::new(CzBasis);
        assert!(cached.synthesize(&CMat::zeros(4, 4)).is_err());
        assert!(cached.synthesize(&CMat::identity(8)).is_err());
        let stats = cached.cache().stats();
        assert_eq!((stats.hits(), stats.misses, stats.len), (0, 0, 0));
        assert_eq!(stats.hit_rate(), 0.0);
    }
}
