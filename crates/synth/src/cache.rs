//! A bounded synthesis memo-cache keyed by quantized Weyl coordinates.
//!
//! Two-qubit synthesis cost is dominated by per-*class* work — the AshN
//! pulse compilation and the SQiSW interleaver search are numerical
//! searches over the local-equivalence class of the target, not the target
//! itself. [`CachedBasis`] exploits that: the first synthesis of a class
//! stores the resulting circuit, and later targets of the same class are
//! served by re-dressing the stored circuit with KAK-computed single-qubit
//! corrections ([`align_to_target`]) instead of re-running the search.
//!
//! Repeated *targets* (the dominant pattern in batched experiment sweeps:
//! routed SWAPs, repeated bench models, scoring one compilation at many
//! noise levels) are re-dressed by exactly-identity corrections, which are
//! trimmed away — a hit returns an instruction list identical to the cold
//! synthesis. The cache is bounded (FIFO eviction) and internally locked,
//! so one instance can serve every worker of a batch run.

use crate::circuit2::{align_to_target, TwoQubitCircuit};
use ashn_gates::kak::{weyl_coordinates, weyl_coordinates4};
use ashn_ir::{Basis, Circuit, SynthError};
use ashn_math::{CMat, Mat4};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Quantization step for the Weyl-coordinate key. Coarse enough that the
/// numerical noise of `weyl_coordinates` (≲1e-9) rarely splits a class
/// across cells, fine enough that any same-cell pair is far inside the
/// `1e-6` class-match tolerance of [`align_to_target`].
const QUANT: f64 = 1e-7;

/// Targets closer than this (Frobenius) to a stored entry's target are
/// treated as exact repeats and served the stored circuit verbatim.
const REPEAT_TOL: f64 = 1e-12;

/// Basis name, quantized coordinates, and a flag separating
/// [`Basis::native_swap`] entries from plain synthesis. The basis name is
/// part of the key because one [`SynthCache`] may be shared across wrappers
/// of *different* bases (`with_cache`) — a CZ-basis circuit must never
/// serve an SQiSW-basis hit. The swap flag exists because a basis may
/// override `native_swap` with a decomposition its `synthesize` would not
/// produce.
type Key = (String, i64, i64, i64, bool);

fn quantize(x: f64) -> i64 {
    (x / QUANT).round() as i64
}

/// One memoized class: the circuit the cold synthesis produced and the
/// target it was synthesized for.
#[derive(Clone, Debug)]
struct Entry {
    target: CMat,
    circuit: TwoQubitCircuit,
}

/// How a cache lookup resolved (see [`CacheStats`]).
#[derive(Clone, Copy, Debug)]
enum Lookup {
    ExactHit,
    ClassHit,
    Miss,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<Key, Entry>,
    order: VecDeque<Key>,
    exact_hits: u64,
    class_hits: u64,
    misses: u64,
}

/// Shared, bounded class→circuit store.
#[derive(Clone, Debug)]
pub struct SynthCache {
    inner: Arc<Mutex<CacheInner>>,
    capacity: usize,
}

/// Hit/miss/occupancy snapshot of a [`SynthCache`].
///
/// Hits are split by what the cache had to do: an **exact** hit returns the
/// stored circuit verbatim (the target repeated to `1e-12`), a **class**
/// hit re-dresses the stored circuit of the same Weyl class with
/// KAK-computed locals, and a **miss** runs cold synthesis (including
/// lookups whose stored circuit had drifted too far to re-dress).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served verbatim (exact target repeat).
    pub exact_hits: u64,
    /// Lookups served by re-dressing a same-class entry.
    pub class_hits: u64,
    /// Lookups that fell through to cold synthesis.
    pub misses: u64,
    /// Entries currently stored.
    pub len: usize,
    /// Maximum entries retained.
    pub capacity: usize,
}

impl CacheStats {
    /// Total lookups served from the cache (exact + class).
    pub fn hits(&self) -> u64 {
        self.exact_hits + self.class_hits
    }

    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits() + self.misses
    }

    /// Fraction of lookups served from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

impl SynthCache {
    /// A cache retaining at most `capacity` classes.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            inner: Arc::new(Mutex::new(CacheInner::default())),
            capacity,
        }
    }

    fn key_for(basis: &str, point: ashn_gates::weyl::WeylPoint, native_swap: bool) -> Key {
        (
            basis.to_string(),
            quantize(point.x),
            quantize(point.y),
            quantize(point.z),
            native_swap,
        )
    }

    /// Raw lookup; attribution to exact/class/miss happens once the caller
    /// knows how the entry was (or wasn't) used, via [`SynthCache::count`].
    fn get(&self, key: &Key) -> Option<Entry> {
        let inner = self.inner.lock().expect("synth cache poisoned");
        inner.map.get(key).cloned()
    }

    fn count(&self, outcome: Lookup) {
        let mut inner = self.inner.lock().expect("synth cache poisoned");
        match outcome {
            Lookup::ExactHit => inner.exact_hits += 1,
            Lookup::ClassHit => inner.class_hits += 1,
            Lookup::Miss => inner.misses += 1,
        }
    }

    fn insert(&self, key: Key, entry: Entry) {
        let mut inner = self.inner.lock().expect("synth cache poisoned");
        if inner.map.insert(key.clone(), entry).is_none() {
            inner.order.push_back(key);
            while inner.order.len() > self.capacity {
                if let Some(evicted) = inner.order.pop_front() {
                    inner.map.remove(&evicted);
                }
            }
        }
    }

    /// Current hit/miss/occupancy counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("synth cache poisoned");
        CacheStats {
            exact_hits: inner.exact_hits,
            class_hits: inner.class_hits,
            misses: inner.misses,
            len: inner.map.len(),
            capacity: self.capacity,
        }
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("synth cache poisoned");
        inner.map.clear();
        inner.order.clear();
    }
}

impl Default for SynthCache {
    fn default() -> Self {
        Self::with_capacity(256)
    }
}

/// A [`Basis`] decorator adding the class-keyed memo-cache to any native
/// gate set.
#[derive(Clone, Debug)]
pub struct CachedBasis<B> {
    inner: B,
    cache: SynthCache,
}

impl<B: Basis> CachedBasis<B> {
    /// Wraps `inner` with a default-capacity cache.
    pub fn new(inner: B) -> Self {
        Self {
            inner,
            cache: SynthCache::default(),
        }
    }

    /// Wraps `inner` with an explicit cache (sharable across wrappers).
    pub fn with_cache(inner: B, cache: SynthCache) -> Self {
        Self { inner, cache }
    }

    /// The underlying cache (for stats and sharing).
    pub fn cache(&self) -> &SynthCache {
        &self.cache
    }

    /// The wrapped basis.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: Basis> Basis for CachedBasis<B> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn synthesize(&self, u: &CMat) -> Result<Circuit, SynthError> {
        // Only well-formed two-qubit unitaries are keyable; anything else
        // goes straight to the inner basis (which reports the right error).
        // The unitarity check runs on a stack-allocated copy.
        let m4 = match Mat4::try_from(u) {
            Ok(m) if m.is_unitary(1e-6) => m,
            _ => return self.inner.synthesize(u),
        };
        let coords = weyl_coordinates4(&m4).canonicalize();
        let key = SynthCache::key_for(&self.inner.name(), coords, false);
        if let Some(entry) = self.cache.get(&key) {
            // Exact repeat: the stored circuit IS the cold synthesis.
            if u.dist(&entry.target) < REPEAT_TOL {
                self.cache.count(Lookup::ExactHit);
                return Ok(entry.circuit.into());
            }
            // Same class, new target: re-dress the stored circuit with
            // KAK-computed outer locals instead of re-running the search —
            // but only when the stored circuit *realizes* the class tightly
            // enough for `align_to_target` (which asserts at 1e-6). An
            // approximate inner basis whose realization drifts falls
            // through to cold synthesis instead of panicking.
            let realized = weyl_coordinates(&entry.circuit.unitary()).canonicalize();
            if realized.gate_dist(coords) < 5e-7 {
                // Fuse the correction locals into the stored circuit's
                // boundary locals so the hit carries the same single-qubit
                // gate count (and thus the same per-gate noise charge) as a
                // cold synthesis of this target.
                self.cache.count(Lookup::ClassHit);
                let dressed: Circuit = align_to_target(u, entry.circuit).into();
                return Ok(dressed.fuse_single_qubit_runs());
            }
        }
        self.cache.count(Lookup::Miss);
        let circuit = self.inner.synthesize(u)?;
        if let Ok(core) = TwoQubitCircuit::try_from(circuit.clone()) {
            self.cache.insert(
                key,
                Entry {
                    target: u.clone(),
                    circuit: core,
                },
            );
        }
        Ok(circuit)
    }

    fn native_swap(&self) -> Result<Circuit, SynthError> {
        // Memoized under a dedicated key, and cold-served by the *inner*
        // `native_swap` so a basis's bespoke SWAP override is respected.
        let swap = ashn_gates::two::swap();
        let key = SynthCache::key_for(
            &self.inner.name(),
            weyl_coordinates(&swap).canonicalize(),
            true,
        );
        if let Some(entry) = self.cache.get(&key) {
            self.cache.count(Lookup::ExactHit);
            return Ok(entry.circuit.into());
        }
        self.cache.count(Lookup::Miss);
        let circuit = self.inner.native_swap()?;
        if let Ok(core) = TwoQubitCircuit::try_from(circuit.clone()) {
            self.cache.insert(
                key,
                Entry {
                    target: swap,
                    circuit: core,
                },
            );
        }
        Ok(circuit)
    }

    fn expected_entanglers(&self, u: &CMat) -> usize {
        self.inner.expected_entanglers(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::{AshnBasis, CzBasis, SqiswBasis};
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Frobenius distance after optimally aligning the global phases.
    fn phase_invariant_distance(a: &CMat, b: &CMat) -> f64 {
        let tr = a.adjoint().matmul(b).trace();
        let phase = if tr.abs() > 1e-15 {
            tr / tr.abs()
        } else {
            ashn_math::Complex::ONE
        };
        a.scale(phase).dist(b)
    }

    #[test]
    fn hit_matches_cold_synthesis_exactly() {
        // Same target twice: the second call is a hit and must return a
        // circuit with identical gate counts and the same unitary (up to
        // global phase) as the cold synthesis.
        let mut rng = StdRng::seed_from_u64(601);
        for _ in 0..3 {
            let u = haar_unitary(4, &mut rng);
            let cached = CachedBasis::new(AshnBasis::ideal());
            let cold = cached.synthesize(&u).unwrap();
            assert_eq!(cached.cache().stats().misses, 1);
            let hit = cached.synthesize(&u).unwrap();
            assert_eq!(cached.cache().stats().exact_hits, 1);
            assert_eq!(hit.instructions.len(), cold.instructions.len());
            assert_eq!(hit.entangler_count(), cold.entangler_count());
            let d = phase_invariant_distance(&hit.unitary(), &cold.unitary());
            assert!(d < 1e-9, "hit differs from cold by {d}");
            assert!(hit.error(&u) < 1e-6);
        }
    }

    #[test]
    fn same_class_different_target_skips_reinstantiation() {
        // Dress one Haar target's class with fresh locals: the second
        // synthesis is served from the cache (one miss total) and still
        // reconstructs its own target with the same entangler count.
        let mut rng = StdRng::seed_from_u64(602);
        let u1 = haar_unitary(4, &mut rng);
        let l = haar_unitary(2, &mut rng).kron(&haar_unitary(2, &mut rng));
        let r = haar_unitary(2, &mut rng).kron(&haar_unitary(2, &mut rng));
        let u2 = l.matmul(&u1).matmul(&r);
        let cached = CachedBasis::new(SqiswBasis);
        let c1 = cached.synthesize(&u1).unwrap();
        let c2 = cached.synthesize(&u2).unwrap();
        let stats = cached.cache().stats();
        assert_eq!(
            (stats.misses, stats.class_hits, stats.exact_hits),
            (1, 1, 0)
        );
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(c2.entangler_count(), c1.entangler_count());
        assert!(c2.error(&u2) < 1e-5, "redressed error {}", c2.error(&u2));
    }

    #[test]
    fn cache_is_bounded_with_fifo_eviction() {
        let mut rng = StdRng::seed_from_u64(603);
        let cached = CachedBasis::with_cache(CzBasis, SynthCache::with_capacity(3));
        for _ in 0..8 {
            let u = haar_unitary(4, &mut rng);
            cached.synthesize(&u).unwrap();
        }
        let stats = cached.cache().stats();
        assert!(stats.len <= 3, "cache grew to {}", stats.len);
        assert_eq!(stats.misses, 8);
    }

    #[test]
    fn native_swap_is_cached() {
        let cached = CachedBasis::new(AshnBasis::ideal());
        let a = cached.native_swap().unwrap();
        let b = cached.native_swap().unwrap();
        assert_eq!(cached.cache().stats().exact_hits, 1);
        assert_eq!(a.instructions.len(), b.instructions.len());
        assert_eq!(b.entangler_count(), 1);
    }

    #[test]
    fn native_swap_respects_inner_overrides() {
        // A basis whose `native_swap` is NOT what `synthesize(SWAP)` would
        // produce: the cache must serve the override, and a prior cached
        // synthesis of the SWAP class must not shadow it.
        #[derive(Clone, Copy, Debug)]
        struct BespokeSwap;
        impl Basis for BespokeSwap {
            fn name(&self) -> String {
                "bespoke".into()
            }
            fn synthesize(&self, u: &CMat) -> Result<Circuit, SynthError> {
                SqiswBasis.synthesize(u)
            }
            fn native_swap(&self) -> Result<Circuit, SynthError> {
                let mut c = Circuit::new(2);
                c.instructions.push(ashn_ir::Instruction::new(
                    vec![0, 1],
                    ashn_gates::two::swap(),
                    "SWAP[bespoke]",
                ));
                Ok(c)
            }
            fn expected_entanglers(&self, _: &CMat) -> usize {
                1
            }
        }
        let cached = CachedBasis::new(BespokeSwap);
        // Populate the synthesis-path cache slot for the SWAP class first.
        let via_synth = cached.synthesize(&ashn_gates::two::swap()).unwrap();
        assert_eq!(via_synth.entangler_count(), 3, "SQiSW SWAP uses 3");
        for _ in 0..2 {
            let swap = cached.native_swap().unwrap();
            assert_eq!(swap.entangler_count(), 1);
            assert_eq!(swap.instructions[0].label, "SWAP[bespoke]");
        }
    }

    #[test]
    fn shared_cache_never_crosses_bases() {
        // One cache shared by two wrappers of *different* bases: the key
        // includes the basis name, so a CZ-class entry from the CZ basis
        // must not serve the SQiSW wrapper (whose circuits use different
        // entanglers).
        let mut rng = StdRng::seed_from_u64(604);
        let u = haar_unitary(4, &mut rng);
        let cache = SynthCache::default();
        let cz = CachedBasis::with_cache(CzBasis, cache.clone());
        let sq = CachedBasis::with_cache(SqiswBasis, cache.clone());
        let c_cz = cz.synthesize(&u).unwrap();
        let c_sq = sq.synthesize(&u).unwrap();
        assert_eq!(cache.stats().hits(), 0, "cross-basis hit served");
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(c_cz.entangler_count(), 3);
        assert!(c_sq.entangler_count() <= 3);
        for g in &c_sq.instructions {
            assert_ne!(g.label, "CZ", "SQiSW circuit contains a CZ entangler");
        }
        // And each wrapper still hits its own entry.
        let _ = cz.synthesize(&u).unwrap();
        assert_eq!(cache.stats().exact_hits, 1);
    }

    #[test]
    fn malformed_targets_bypass_the_cache() {
        let cached = CachedBasis::new(CzBasis);
        assert!(cached.synthesize(&CMat::zeros(4, 4)).is_err());
        assert!(cached.synthesize(&CMat::identity(8)).is_err());
        let stats = cached.cache().stats();
        assert_eq!((stats.hits(), stats.misses, stats.len), (0, 0, 0));
        assert_eq!(stats.hit_rate(), 0.0);
    }
}
