//! Quantum Shannon decomposition (Shende–Bullock–Markov [35]): recursive
//! synthesis of arbitrary n-qubit unitaries via CSD and demultiplexing.
//!
//! Two bases are supported:
//!
//! * [`SynthBasis::Cnot`] — CNOT + single-qubit gates, the literature
//!   standard;
//! * [`SynthBasis::Generic`] — arbitrary two-qubit gates (the AshN
//!   instruction set), with the 3-qubit base case using the paper's
//!   11-gate construction (Theorem 12), achieving the Theorem 13 count
//!   `23/64·4ⁿ − 3/2·2ⁿ`.

use crate::circuit2::Op2;
use crate::cnot_basis::decompose_cnot;
use crate::csd::csd;
use crate::multiplexor::{demultiplex, mux_rotation_ladder, Axis};
use crate::three_qubit::decompose_three_qubit;
use ashn_gates::two::cnot;
use ashn_ir::{Circuit, Instruction};
use ashn_math::CMat;

/// Which native two-qubit resource the synthesis targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SynthBasis {
    /// CNOT + arbitrary single-qubit gates.
    Cnot,
    /// Arbitrary two-qubit gates (`SU(4)` instructions à la AshN).
    Generic,
}

/// Synthesises `u` over the given basis, returning a verified circuit.
///
/// # Panics
///
/// Panics when `u` is not a `2^n × 2^n` unitary with `1 ≤ n ≤ 6`.
pub fn qsd(u: &CMat, basis: SynthBasis) -> Circuit {
    let dim = u.rows();
    assert!(u.is_square() && dim.is_power_of_two() && dim >= 2);
    let n = dim.trailing_zeros() as usize;
    assert!(n <= 6, "qsd supports up to 6 qubits");
    assert!(u.is_unitary(1e-8), "qsd requires a unitary input");
    let mut out = Circuit::new(n);
    let qubits: Vec<usize> = (0..n).collect();
    qsd_rec(u, &qubits, basis, &mut out);
    out
}

/// Emits a multiplexed rotation either as a CNOT ladder (CNOT basis) or as
/// merged CNOT·rotation two-qubit gates (generic basis).
fn emit_mux_rotation(
    axis: Axis,
    target: usize,
    selects: &[usize],
    angles: &[f64],
    basis: SynthBasis,
    out: &mut Circuit,
) {
    let gates = mux_rotation_ladder(axis, target, selects, angles);
    match basis {
        SynthBasis::Cnot => {
            for g in gates {
                out.push(g);
            }
        }
        SynthBasis::Generic => {
            // Merge each rotation with the following CNOT into one generic
            // two-qubit gate on (control, target).
            let mut iter = gates.into_iter().peekable();
            while let Some(g) = iter.next() {
                if g.qubits.len() == 1 {
                    if let Some(nxt) =
                        iter.next_if(|next| next.qubits.len() == 2 && next.qubits[1] == g.qubits[0])
                    {
                        // Combined = CNOT · (I⊗R) on (control, target).
                        let combined = cnot().matmul(&CMat::identity(2).kron(&g.matrix));
                        out.push(Instruction::new(nxt.qubits, combined, "SU4[muxR]"));
                        continue;
                    }
                    out.push(g);
                } else {
                    out.push(g);
                }
            }
        }
    }
}

fn qsd_rec(u: &CMat, qubits: &[usize], basis: SynthBasis, out: &mut Circuit) {
    let n = qubits.len();
    match n {
        1 => out.push(Instruction::new(vec![qubits[0]], u.clone(), "1q")),
        2 => match basis {
            SynthBasis::Cnot => {
                let c = decompose_cnot(u);
                out.phase *= c.phase;
                for op in c.ops {
                    match op {
                        Op2::L0(g) => out.push(Instruction::new(vec![qubits[0]], g, "1q")),
                        Op2::L1(g) => out.push(Instruction::new(vec![qubits[1]], g, "1q")),
                        Op2::Entangler { label, matrix, .. } => {
                            out.push(Instruction::new(vec![qubits[0], qubits[1]], matrix, label))
                        }
                    }
                }
            }
            SynthBasis::Generic => {
                out.push(Instruction::new(
                    vec![qubits[0], qubits[1]],
                    u.clone(),
                    "SU4",
                ));
            }
        },
        3 if basis == SynthBasis::Generic => {
            let c = decompose_three_qubit(u);
            out.phase *= c.phase;
            for g in c.instructions {
                let mapped: Vec<usize> = g.qubits.iter().map(|&q| qubits[q]).collect();
                out.push(Instruction::new(mapped, g.matrix, g.label));
            }
        }
        _ => {
            let d = csd(u);
            let (rest, target) = (&qubits[1..], qubits[0]);
            // Right factor blkdiag(R0†, R1†).
            let (vr, az_r, wr) = demultiplex(&d.r0.adjoint(), &d.r1.adjoint());
            qsd_rec(&wr, rest, basis, out);
            emit_mux_rotation(Axis::Z, target, rest, &az_r, basis, out);
            qsd_rec(&vr, rest, basis, out);
            // Middle multiplexed Ry(2θ).
            let ay: Vec<f64> = d.theta.iter().map(|&t| 2.0 * t).collect();
            emit_mux_rotation(Axis::Y, target, rest, &ay, basis, out);
            // Left factor blkdiag(L0, L1).
            let (vl, az_l, wl) = demultiplex(&d.l0, &d.l1);
            qsd_rec(&wl, rest, basis, out);
            emit_mux_rotation(Axis::Z, target, rest, &az_l, basis, out);
            qsd_rec(&vl, rest, basis, out);
        }
    }
}

/// Two-qubit gate count produced by [`qsd`] for an `n`-qubit generic target
/// (the plain recursion, without the ad-hoc optimizations of [35]).
pub fn qsd_count(n: usize, basis: SynthBasis) -> usize {
    match (n, basis) {
        (0, _) => 0,
        (1, _) => 0,
        (2, SynthBasis::Cnot) => 3,
        (2, SynthBasis::Generic) => 1,
        (3, SynthBasis::Generic) => 11,
        _ => 4 * qsd_count(n - 1, basis) + 3 * (1 << (n - 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cnot_basis_reconstructs_three_qubits() {
        let mut rng = StdRng::seed_from_u64(91);
        let u = haar_unitary(8, &mut rng);
        let c = qsd(&u, SynthBasis::Cnot);
        assert!(c.error(&u) < 1e-6, "error {}", c.error(&u));
        assert_eq!(c.two_qubit_count(), qsd_count(3, SynthBasis::Cnot));
    }

    #[test]
    fn cnot_basis_reconstructs_four_qubits() {
        let mut rng = StdRng::seed_from_u64(92);
        let u = haar_unitary(16, &mut rng);
        let c = qsd(&u, SynthBasis::Cnot);
        assert!(c.error(&u) < 1e-5, "error {}", c.error(&u));
        assert_eq!(c.two_qubit_count(), qsd_count(4, SynthBasis::Cnot));
    }

    #[test]
    fn generic_basis_counts() {
        assert_eq!(qsd_count(2, SynthBasis::Generic), 1);
        assert_eq!(qsd_count(3, SynthBasis::Generic), 11);
        assert_eq!(qsd_count(4, SynthBasis::Generic), 68);
        assert_eq!(qsd_count(5, SynthBasis::Generic), 320);
        // Plain CNOT recursion (without [35]'s extra optimizations).
        assert_eq!(qsd_count(3, SynthBasis::Cnot), 24);
        assert_eq!(qsd_count(4, SynthBasis::Cnot), 120);
    }

    #[test]
    fn generic_basis_reconstructs_four_qubits() {
        let mut rng = StdRng::seed_from_u64(93);
        let u = haar_unitary(16, &mut rng);
        let c = qsd(&u, SynthBasis::Generic);
        assert!(c.error(&u) < 1e-5, "error {}", c.error(&u));
        assert_eq!(c.two_qubit_count(), qsd_count(4, SynthBasis::Generic));
    }

    #[test]
    fn cnot_gates_are_all_cnot_or_local() {
        let mut rng = StdRng::seed_from_u64(94);
        let u = haar_unitary(8, &mut rng);
        let c = qsd(&u, SynthBasis::Cnot);
        for g in &c.instructions {
            if g.qubits.len() == 2 {
                assert!(
                    g.matrix.dist(&cnot()) < 1e-10
                        || g.matrix.dist(&crate::cnot_basis::cnot_reversed()) < 1e-10,
                    "non-CNOT two-qubit gate {} in CNOT basis",
                    g.label
                );
            } else {
                assert_eq!(g.qubits.len(), 1);
            }
        }
    }
}
