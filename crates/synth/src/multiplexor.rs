//! Quantum multiplexors: dense builders, Gray-code CNOT ladders for
//! multiplexed rotations (Möttönen et al. [42]), and demultiplexing of
//! select-qubit block-diagonal unitaries.

use ashn_gates::single::{ry, rz};
use ashn_gates::two::cnot;
use ashn_ir::Instruction;
use ashn_math::eig::{try_eig_unitary, EigError};
use ashn_math::{CMat, Complex};

/// Rotation axis of a multiplexed rotation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Axis {
    /// Multiplexed `Ry`.
    Y,
    /// Multiplexed `Rz`.
    Z,
}

fn rot(axis: Axis, theta: f64) -> CMat {
    match axis {
        Axis::Y => ry(theta),
        Axis::Z => rz(theta),
    }
}

/// Dense multiplexed rotation: target is qubit 0, selects are qubits
/// `1..=m` (big-endian), `angles[l]` applied when the selects read `l`.
pub fn mux_rotation(axis: Axis, angles: &[f64]) -> CMat {
    let m = angles.len();
    assert!(m.is_power_of_two(), "need 2^m angles");
    let dim = 2 * m;
    let mut out = CMat::zeros(dim, dim);
    for (l, &theta) in angles.iter().enumerate() {
        let r = rot(axis, theta);
        for a in 0..2 {
            for b in 0..2 {
                out[(a * m + l, b * m + l)] = r[(a, b)];
            }
        }
    }
    out
}

/// `true` when `u` is block-diagonal with respect to qubit `q` (a `q`-select
/// multiplexor).
pub fn is_mux(u: &CMat, n: usize, q: usize, tol: f64) -> bool {
    let dim = 1usize << n;
    assert_eq!(u.rows(), dim);
    let p = n - 1 - q;
    let mut off = 0.0;
    for r in 0..dim {
        for c in 0..dim {
            if (r >> p & 1) != (c >> p & 1) {
                off += u[(r, c)].norm_sqr();
            }
        }
    }
    off.sqrt() < tol
}

/// Extracts the two blocks of a `q`-select multiplexor (`q` asserted via
/// [`is_mux`]): returns `(U0, U1)` acting on the remaining qubits in
/// ascending order.
pub fn mux_blocks(u: &CMat, n: usize, q: usize) -> (CMat, CMat) {
    assert!(
        is_mux(u, n, q, 1e-8),
        "input is not a qubit-{q} multiplexor"
    );
    let dim = 1usize << n;
    let p = n - 1 - q;
    let half = dim / 2;
    // Sub-index: remaining bits in original order with bit p removed.
    let compress = |full: usize| -> usize {
        let high = full >> (p + 1);
        let low = full & ((1 << p) - 1);
        (high << p) | low
    };
    let mut u0 = CMat::zeros(half, half);
    let mut u1 = CMat::zeros(half, half);
    for r in 0..dim {
        for c in 0..dim {
            let (rb, cb) = (r >> p & 1, c >> p & 1);
            if rb != cb {
                continue;
            }
            let tgt = if rb == 0 { &mut u0 } else { &mut u1 };
            tgt[(compress(r), compress(c))] = u[(r, c)];
        }
    }
    (u0, u1)
}

fn gray(i: usize) -> usize {
    i ^ (i >> 1)
}

/// Gray-code CNOT ladder implementing `mux_rotation(axis, angles)` on the
/// register `[target, selects…]`.
///
/// Emits alternating rotations (on `target`) and CNOTs
/// (`control = a select`, `target`), `2^m` of each.
pub fn mux_rotation_ladder(
    axis: Axis,
    target: usize,
    selects: &[usize],
    angles: &[f64],
) -> Vec<Instruction> {
    let m = selects.len();
    assert_eq!(angles.len(), 1 << m, "need 2^m angles");
    if m == 0 {
        return vec![Instruction::new(vec![target], rot(axis, angles[0]), "R")];
    }
    let size = 1usize << m;
    // φ_j = 2^{−m} Σ_l (−1)^{⟨gray(j), l⟩} θ_l.
    let mut phi = vec![0.0; size];
    for (j, p) in phi.iter_mut().enumerate() {
        let gj = gray(j);
        for (l, &theta) in angles.iter().enumerate() {
            let sign = if (gj & l).count_ones().is_multiple_of(2) {
                1.0
            } else {
                -1.0
            };
            *p += sign * theta;
        }
        *p /= size as f64;
    }
    let mut gates = Vec::with_capacity(2 * size);
    for (j, &p) in phi.iter().enumerate() {
        gates.push(Instruction::new(vec![target], rot(axis, p), "R"));
        // Control = select whose bit flips between gray(j) and gray(j+1).
        let flip =
            (gray(j) ^ gray((j + 1) % size)) | if j + 1 == size { gray(size - 1) } else { 0 };
        let bit = flip.trailing_zeros() as usize;
        // Bit b of l corresponds to selects[m−1−b].
        let control = selects[m - 1 - bit];
        gates.push(Instruction::new(vec![control, target], cnot(), "CNOT"));
    }
    gates
}

/// Demultiplexes `blkdiag(U0, U1)` (select = most significant qubit) into
/// `(V, rz_angles, W)` with
/// `blkdiag(U0, U1) = (I⊗V) · muxRz(rz_angles) · (I⊗W)`.
pub fn demultiplex(u0: &CMat, u1: &CMat) -> (CMat, Vec<f64>, CMat) {
    try_demultiplex(u0, u1).unwrap_or_else(|e| panic!("demultiplex: {e}"))
}

/// Fallible variant of [`demultiplex`]: surfaces the eigendecomposition
/// failure instead of panicking.
///
/// # Errors
///
/// Propagates [`EigError`] from [`ashn_math::eig::try_eig_unitary`] (the
/// product `U0·U1†` of two unitaries is unitary, so this only fires on
/// malformed inputs — or through the `math::eig::unitary` failpoint).
pub fn try_demultiplex(u0: &CMat, u1: &CMat) -> Result<(CMat, Vec<f64>, CMat), EigError> {
    assert_eq!(u0.rows(), u1.rows());
    let prod = u0.matmul(&u1.adjoint());
    let e = try_eig_unitary(&prod)?;
    let half_phases: Vec<f64> = e.values.iter().map(|v| v.arg() / 2.0).collect();
    let d = CMat::diag(
        &half_phases
            .iter()
            .map(|&p| Complex::cis(p))
            .collect::<Vec<_>>(),
    );
    let v = e.vectors.clone();
    let w = d.adjoint().matmul(&v.adjoint()).matmul(u0);
    // muxRz convention: branch q0 = 0 applies e^{+iφ} = Rz(−2φ).
    let angles = half_phases.iter().map(|&p| -2.0 * p).collect();
    Ok((v, angles, w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_ir::{embed, Circuit};
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ladder_unitary(axis: Axis, n: usize, angles: &[f64]) -> CMat {
        let selects: Vec<usize> = (1..n).collect();
        let mut c = Circuit::new(n);
        for g in mux_rotation_ladder(axis, 0, &selects, angles) {
            c.push(g);
        }
        c.unitary()
    }

    #[test]
    fn ladder_matches_dense_mux_small() {
        let mut rng = StdRng::seed_from_u64(71);
        for m in 1..=3usize {
            let n = m + 1;
            let angles: Vec<f64> = (0..1 << m).map(|_| rng.gen::<f64>() * 3.0 - 1.5).collect();
            for axis in [Axis::Y, Axis::Z] {
                let dense = mux_rotation(axis, &angles);
                let lad = ladder_unitary(axis, n, &angles);
                assert!(
                    lad.dist(&dense) < 1e-10,
                    "axis {axis:?} m={m}: mismatch {}",
                    lad.dist(&dense)
                );
            }
        }
    }

    #[test]
    fn ladder_cnot_count_is_two_to_m() {
        let angles = vec![0.1; 8];
        let gates = mux_rotation_ladder(Axis::Y, 0, &[1, 2, 3], &angles);
        let cnots = gates.iter().filter(|g| g.qubits.len() == 2).count();
        assert_eq!(cnots, 8);
    }

    #[test]
    fn demultiplex_reconstructs() {
        let mut rng = StdRng::seed_from_u64(72);
        for half_n in [1usize, 2, 3] {
            let dim = 1 << half_n;
            let u0 = haar_unitary(dim, &mut rng);
            let u1 = haar_unitary(dim, &mut rng);
            let (v, angles, w) = demultiplex(&u0, &u1);
            assert!(v.is_unitary(1e-8));
            assert!(w.is_unitary(1e-8));
            let n = half_n + 1;
            let mut mux = CMat::zeros(2 * dim, 2 * dim);
            mux.set_block(0, 0, &u0);
            mux.set_block(dim, dim, &u1);
            let rebuilt = embed(n, &(1..n).collect::<Vec<_>>(), &v)
                .matmul(&mux_rotation(Axis::Z, &angles))
                .matmul(&embed(n, &(1..n).collect::<Vec<_>>(), &w));
            assert!(
                rebuilt.dist(&mux) < 1e-7,
                "demux reconstruction error {}",
                rebuilt.dist(&mux)
            );
        }
    }

    #[test]
    fn mux_detection_and_blocks() {
        let mut rng = StdRng::seed_from_u64(73);
        let u0 = haar_unitary(4, &mut rng);
        let u1 = haar_unitary(4, &mut rng);
        let mut mux = CMat::zeros(8, 8);
        mux.set_block(0, 0, &u0);
        mux.set_block(4, 4, &u1);
        assert!(is_mux(&mux, 3, 0, 1e-10));
        assert!(!is_mux(&mux, 3, 1, 1e-6));
        let (b0, b1) = mux_blocks(&mux, 3, 0);
        assert!(b0.dist(&u0) < 1e-12);
        assert!(b1.dist(&u1) < 1e-12);
    }

    #[test]
    fn mux_blocks_middle_qubit() {
        // Build a q1-select mux on 3 qubits and re-extract its blocks.
        let mut rng = StdRng::seed_from_u64(74);
        let u0 = haar_unitary(4, &mut rng);
        let u1 = haar_unitary(4, &mut rng);
        let dim = 8;
        let mut mux = CMat::zeros(dim, dim);
        // q1 is bit position 1; remaining qubits (0, 2) map to sub-bits (1, 0).
        for r in 0..dim {
            for c in 0..dim {
                let (rb, cb) = (r >> 1 & 1, c >> 1 & 1);
                if rb != cb {
                    continue;
                }
                let sub_r = ((r >> 2 & 1) << 1) | (r & 1);
                let sub_c = ((c >> 2 & 1) << 1) | (c & 1);
                let val = if rb == 0 {
                    u0[(sub_r, sub_c)]
                } else {
                    u1[(sub_r, sub_c)]
                };
                mux[(r, c)] = val;
            }
        }
        assert!(is_mux(&mux, 3, 1, 1e-10));
        let (b0, b1) = mux_blocks(&mux, 3, 1);
        assert!(b0.dist(&u0) < 1e-12);
        assert!(b1.dist(&u1) < 1e-12);
    }
}
