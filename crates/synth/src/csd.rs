//! Cosine–sine decomposition (CSD) of a unitary split by its most
//! significant qubit:
//!
//! ```text
//! U = [L0  0 ] [C −S] [R0†  0 ]
//!     [0  L1 ] [S  C] [0   R1†]
//! ```
//!
//! with `C = diag(cos θᵢ)`, `S = diag(sin θᵢ)`. The middle factor is a
//! multiplexed `Ry(2θᵢ)` on the split qubit — the backbone of the quantum
//! Shannon decomposition.

use ashn_math::svd::{closest_unitary, svd};
use ashn_math::{CMat, Complex};

/// Result of a cosine–sine decomposition.
#[derive(Clone, Debug)]
pub struct Csd {
    /// Upper-left block factor.
    pub l0: CMat,
    /// Lower-right block factor.
    pub l1: CMat,
    /// Right factors (`R0†`, `R1†` appear in the reconstruction).
    pub r0: CMat,
    /// See `r0`.
    pub r1: CMat,
    /// The CS angles `θᵢ ∈ [0, π/2]`.
    pub theta: Vec<f64>,
}

impl Csd {
    /// Reassembles the full unitary.
    pub fn reconstruct(&self) -> CMat {
        let p = self.theta.len();
        let dim = 2 * p;
        let mut mid = CMat::zeros(dim, dim);
        for (i, &t) in self.theta.iter().enumerate() {
            mid[(i, i)] = ashn_math::c(t.cos(), 0.0);
            mid[(i + p, i + p)] = ashn_math::c(t.cos(), 0.0);
            mid[(i, i + p)] = ashn_math::c(-t.sin(), 0.0);
            mid[(i + p, i)] = ashn_math::c(t.sin(), 0.0);
        }
        let mut left = CMat::zeros(dim, dim);
        left.set_block(0, 0, &self.l0);
        left.set_block(p, p, &self.l1);
        let mut right = CMat::zeros(dim, dim);
        right.set_block(0, 0, &self.r0.adjoint());
        right.set_block(p, p, &self.r1.adjoint());
        left.matmul(&mid).matmul(&right)
    }
}

/// Computes the CSD of a square unitary of even dimension.
///
/// # Panics
///
/// Panics when `u` is not unitary, has odd dimension, or the reconstruction
/// fails numerically (`> 1e-7`), which would indicate a degenerate-cluster
/// bug rather than a user error.
pub fn csd(u: &CMat) -> Csd {
    assert!(
        u.is_square() && u.rows().is_multiple_of(2),
        "even dimension required"
    );
    assert!(u.is_unitary(1e-8), "csd requires a unitary input");
    let p = u.rows() / 2;
    let u11 = u.block(0, 0, p, p);
    let u12 = u.block(0, p, p, p);
    let u21 = u.block(p, 0, p, p);
    let u22 = u.block(p, p, p, p);

    // U11 = L0 · C · R0†, singular values descending = cos θ ascending in θ.
    let s = svd(&u11);
    let l0 = s.u.clone();
    let r0 = s.v.clone();
    let theta: Vec<f64> = s.sigma.iter().map(|&c| c.clamp(0.0, 1.0).acos()).collect();

    // U21·R0 has orthogonal columns of norm sin θᵢ.
    let w = u21.matmul(&r0);
    let mut l1 = CMat::zeros(p, p);
    let mut filled = vec![false; p];
    for (i, f) in filled.iter_mut().enumerate() {
        let col = w.col(i);
        let norm = col.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if norm > 1e-8 {
            let c: Vec<Complex> = col.iter().map(|z| *z / norm).collect();
            l1.set_col(i, &c);
            *f = true;
        }
    }
    // Complete unfilled columns via Gram–Schmidt against every filled one.
    let mut cand = 0usize;
    for i in 0..p {
        if filled[i] {
            continue;
        }
        loop {
            assert!(cand < 4 * p + 4, "csd: basis completion failed");
            let mut v = vec![Complex::ZERO; p];
            v[cand % p] = Complex::ONE;
            cand += 1;
            for (j, &fj) in filled.iter().enumerate() {
                if !fj {
                    continue;
                }
                let col = l1.col(j);
                let inner: Complex = col.iter().zip(v.iter()).map(|(a, b)| a.conj() * *b).sum();
                for (vi, ci) in v.iter_mut().zip(col.iter()) {
                    *vi -= inner * *ci;
                }
            }
            let norm = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
            if norm > 1e-6 {
                for vi in v.iter_mut() {
                    *vi = *vi / norm;
                }
                l1.set_col(i, &v);
                filled[i] = true;
                break;
            }
        }
    }

    // R1† = C·L1†·U22 − S·L0†·U12.
    let cmat = CMat::diag(
        &theta
            .iter()
            .map(|&t| ashn_math::c(t.cos(), 0.0))
            .collect::<Vec<_>>(),
    );
    let smat = CMat::diag(
        &theta
            .iter()
            .map(|&t| ashn_math::c(t.sin(), 0.0))
            .collect::<Vec<_>>(),
    );
    let r1_dag = cmat.matmul(&l1.adjoint()).matmul(&u22) - smat.matmul(&l0.adjoint()).matmul(&u12);
    // Guard against round-off in near-degenerate clusters.
    let r1 = closest_unitary(&r1_dag).adjoint();

    let out = Csd {
        l0,
        l1,
        r0,
        r1,
        theta,
    };
    let err = out.reconstruct().dist(u);
    assert!(err < 1e-7, "csd reconstruction failed: {err:.2e}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_unitaries_decompose() {
        let mut rng = StdRng::seed_from_u64(81);
        for dim in [2usize, 4, 8, 16] {
            let u = haar_unitary(dim, &mut rng);
            let d = csd(&u);
            assert!(d.l0.is_unitary(1e-8));
            assert!(d.l1.is_unitary(1e-8));
            assert!(d.r0.is_unitary(1e-8));
            assert!(d.r1.is_unitary(1e-8));
            for &t in &d.theta {
                assert!((0.0..=std::f64::consts::FRAC_PI_2 + 1e-12).contains(&t));
            }
            assert!(d.reconstruct().dist(&u) < 1e-7);
        }
    }

    #[test]
    fn block_diagonal_input_gives_zero_angles() {
        let mut rng = StdRng::seed_from_u64(82);
        let a = haar_unitary(4, &mut rng);
        let b = haar_unitary(4, &mut rng);
        let mut u = CMat::zeros(8, 8);
        u.set_block(0, 0, &a);
        u.set_block(4, 4, &b);
        let d = csd(&u);
        for &t in &d.theta {
            assert!(t.abs() < 1e-7, "expected θ = 0, got {t}");
        }
    }

    #[test]
    fn antidiagonal_input_gives_right_angles() {
        // [[0, −I],[I, 0]] has all θ = π/2.
        let p = 4;
        let mut u = CMat::zeros(8, 8);
        for i in 0..p {
            u[(i, i + p)] = ashn_math::c(-1.0, 0.0);
            u[(i + p, i)] = ashn_math::c(1.0, 0.0);
        }
        let d = csd(&u);
        for &t in &d.theta {
            assert!((t - std::f64::consts::FRAC_PI_2).abs() < 1e-7);
        }
    }

    #[test]
    fn swap_gate_decomposes() {
        // SWAP has a structured, highly degenerate CSD — a stress test for
        // the completion logic.
        let swap = ashn_gates::two::swap();
        let d = csd(&swap);
        assert!(d.reconstruct().dist(&swap) < 1e-8);
    }
}
