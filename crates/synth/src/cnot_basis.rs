//! Two-qubit synthesis over the CNOT (and CZ) basis: every gate in 0–3
//! CNOTs, with the count read off the Weyl coordinates.

use crate::circuit2::{align_to_target, Op2, TwoQubitCircuit};
use ashn_gates::kak::{kak, weyl_coordinates};
use ashn_gates::single::{h, rx, ry, rz};
use ashn_gates::two::cnot;
use ashn_gates::weyl::WeylPoint;
use ashn_ir::SynthError;
use ashn_math::{CMat, Complex};
use std::f64::consts::{FRAC_PI_2, PI};

/// Duration of a flux-tuned CZ/CNOT-class gate in units of `1/g`
/// (paper §6.1: `π/√2`).
pub const CZ_DURATION: f64 = PI * std::f64::consts::FRAC_1_SQRT_2;

fn entangler(label: &str, m: CMat, duration: f64) -> Op2 {
    Op2::Entangler {
        label: label.into(),
        matrix: m,
        duration,
    }
}

/// CNOT with control on qubit 1 (the reversed orientation used by the
/// middle gate of the three-CNOT circuit).
pub fn cnot_reversed() -> CMat {
    let hh = h().kron(&h());
    hh.matmul(&cnot()).matmul(&hh)
}

/// Number of CNOTs required for the class of `u`: 0, 1, 2 or 3
/// (Shende–Markov–Bullock).
pub fn cnot_count(u: &CMat) -> usize {
    cnot_count_for(weyl_coordinates(u))
}

/// Number of CNOTs required for a canonical class.
pub fn cnot_count_for(p: WeylPoint) -> usize {
    let tol = 1e-9;
    if p.dist(WeylPoint::IDENTITY) < tol {
        0
    } else if p.gate_dist(WeylPoint::CNOT) < tol {
        1
    } else if p.z.abs() < tol {
        2
    } else {
        3
    }
}

/// The bare 3-CNOT core realizing raw coordinates
/// `(π/4 − t₂/2, π/4 − t₃/2, −(π/4 − t₁/2))`:
/// `CNOT₀₁ · (Ry(t₁)⊗Rz(t₂)) · CNOT₁₀ · (Ry(t₃)⊗I) · CNOT₀₁`.
///
/// The parameter map was pinned down empirically against the KAK
/// coordinates and is verified by the round-trip tests.
pub(crate) fn three_cnot_core(t1: f64, t2: f64, t3: f64) -> TwoQubitCircuit {
    TwoQubitCircuit {
        phase: Complex::ONE,
        ops: vec![
            entangler("CNOT", cnot(), CZ_DURATION),
            Op2::L0(ry(t1)),
            Op2::L1(rz(t2)),
            entangler("CNOT(rev)", cnot_reversed(), CZ_DURATION),
            Op2::L0(ry(t3)),
            entangler("CNOT", cnot(), CZ_DURATION),
        ],
    }
}

/// The bare 2-CNOT core with coordinates `(x, y, 0)`:
/// `CNOT·(Rx(2x)⊗Rz(2y))·CNOT`.
pub(crate) fn two_cnot_core(x: f64, y: f64) -> TwoQubitCircuit {
    TwoQubitCircuit {
        phase: Complex::ONE,
        ops: vec![
            entangler("CNOT", cnot(), CZ_DURATION),
            Op2::L0(rx(2.0 * x)),
            Op2::L1(rz(2.0 * y)),
            entangler("CNOT", cnot(), CZ_DURATION),
        ],
    }
}

/// Decomposes an arbitrary two-qubit unitary into the minimal number of
/// CNOTs plus single-qubit gates.
///
/// # Panics
///
/// Panics when `u` is not a 4×4 unitary.
pub fn decompose_cnot(u: &CMat) -> TwoQubitCircuit {
    let k = kak(u);
    let p = k.coords;
    match cnot_count_for(p) {
        0 => {
            // u = g (A₁B₁ ⊗ A₂B₂).
            TwoQubitCircuit {
                phase: k.phase,
                ops: vec![
                    Op2::L0(k.a1.matmul(&k.b1).into()),
                    Op2::L1(k.a2.matmul(&k.b2).into()),
                ],
            }
        }
        1 => align_to_target(
            u,
            TwoQubitCircuit {
                phase: Complex::ONE,
                ops: vec![entangler("CNOT", cnot(), CZ_DURATION)],
            },
        ),
        2 => align_to_target(u, two_cnot_core(p.x, p.y)),
        _ => align_to_target(
            u,
            three_cnot_core(
                FRAC_PI_2 + 2.0 * p.z,
                FRAC_PI_2 - 2.0 * p.x,
                FRAC_PI_2 - 2.0 * p.y,
            ),
        ),
    }
}

/// Fallible variant of [`decompose_cnot`]: the graceful-degradation
/// fallback tier of the compile service. Validates the target up front,
/// catches any panic escaping the KAK numerics at this boundary, and
/// verifies the result before returning it — so a success is always a
/// correct circuit.
///
/// # Errors
///
/// [`SynthError::InvalidTarget`] when `u` is not a 4×4 unitary at `1e-6`;
/// [`SynthError::Convergence`] when the decomposition fails numerically or
/// does not verify at `1e-9`.
pub fn try_decompose_cnot(u: &CMat) -> Result<TwoQubitCircuit, SynthError> {
    crate::basis::check_two_qubit(u, "CNOT")?;
    let circuit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| decompose_cnot(u)))
        .map_err(|payload| {
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            SynthError::Convergence {
                basis: "CNOT".into(),
                detail: format!("KAK decomposition panicked: {detail}"),
            }
        })?;
    let err = circuit.error(u);
    if err > 1e-9 {
        return Err(SynthError::Convergence {
            basis: "CNOT".into(),
            detail: format!("fallback circuit verification error {err:.2e} exceeds 1e-9"),
        });
    }
    Ok(circuit)
}

/// Rewrites every CNOT entangler of a circuit as `(I⊗H)·CZ·(I⊗H)`, the
/// flux-tunable native form. The entangler count is unchanged.
pub fn to_cz_basis(c: TwoQubitCircuit) -> TwoQubitCircuit {
    let mut ops = Vec::with_capacity(c.ops.len() * 2);
    for op in c.ops {
        match op {
            Op2::Entangler {
                label,
                matrix,
                duration,
            } => {
                if matrix.dist(&cnot()) < 1e-12 {
                    ops.push(Op2::L1(h()));
                    ops.push(entangler("CZ", ashn_gates::two::cz(), duration));
                    ops.push(Op2::L1(h()));
                } else if matrix.dist(&cnot_reversed()) < 1e-12 {
                    ops.push(Op2::L0(h()));
                    ops.push(entangler("CZ", ashn_gates::two::cz(), duration));
                    ops.push(Op2::L0(h()));
                } else {
                    ops.push(Op2::Entangler {
                        label,
                        matrix,
                        duration,
                    });
                }
            }
            other => ops.push(other),
        }
    }
    TwoQubitCircuit {
        phase: c.phase,
        ops,
    }
}

/// Duration of the echoed cross-resonance entangler in `1/g` units —
/// modeled at the flux-tuned CZ gate time (both are CNOT-class natives).
pub const ECR_DURATION: f64 = CZ_DURATION;

/// The exact local dressing realizing CNOT from a single ECR, computed
/// once by aligning the bare entangler to the CNOT matrix (both gates are
/// in the `(π/4, 0, 0)` class, so the alignment is closed-form).
fn cnot_over_ecr() -> &'static TwoQubitCircuit {
    static FRAG: std::sync::OnceLock<TwoQubitCircuit> = std::sync::OnceLock::new();
    FRAG.get_or_init(|| {
        align_to_target(
            &cnot(),
            TwoQubitCircuit {
                phase: Complex::ONE,
                ops: vec![entangler("ECR", ashn_gates::two::ecr(), ECR_DURATION)],
            },
        )
    })
}

/// Rewrites every CNOT entangler of a circuit into a locally-dressed ECR
/// (the reversed orientation gains an extra `H⊗H` sandwich). The
/// entangler count is unchanged.
pub fn to_ecr_basis(c: TwoQubitCircuit) -> TwoQubitCircuit {
    let frag = cnot_over_ecr();
    let mut phase = c.phase;
    let mut ops = Vec::with_capacity(c.ops.len() * 5);
    for op in c.ops {
        match op {
            Op2::Entangler {
                label,
                matrix,
                duration,
            } => {
                if matrix.dist(&cnot()) < 1e-12 {
                    phase *= frag.phase;
                    ops.extend(frag.ops.iter().cloned());
                } else if matrix.dist(&cnot_reversed()) < 1e-12 {
                    phase *= frag.phase;
                    ops.push(Op2::L0(h()));
                    ops.push(Op2::L1(h()));
                    ops.extend(frag.ops.iter().cloned());
                    ops.push(Op2::L0(h()));
                    ops.push(Op2::L1(h()));
                } else {
                    ops.push(Op2::Entangler {
                        label,
                        matrix,
                        duration,
                    });
                }
            }
            other => ops.push(other),
        }
    }
    TwoQubitCircuit { phase, ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_gates::two::{b_gate, iswap, swap};
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_class_uses_no_cnots() {
        let mut rng = StdRng::seed_from_u64(31);
        let u = ashn_math::randmat::haar_su(2, &mut rng)
            .kron(&ashn_math::randmat::haar_su(2, &mut rng));
        let c = decompose_cnot(&u);
        assert_eq!(c.entangler_count(), 0);
        assert!(c.error(&u) < 1e-8, "error {}", c.error(&u));
    }

    #[test]
    fn cnot_class_uses_one() {
        let c = decompose_cnot(&ashn_gates::two::cz());
        assert_eq!(c.entangler_count(), 1);
        assert!(c.error(&ashn_gates::two::cz()) < 1e-8);
    }

    #[test]
    fn iswap_uses_two() {
        let c = decompose_cnot(&iswap());
        assert_eq!(c.entangler_count(), 2);
        assert!(c.error(&iswap()) < 1e-8);
    }

    #[test]
    fn swap_uses_three() {
        let c = decompose_cnot(&swap());
        assert_eq!(c.entangler_count(), 3);
        assert!(c.error(&swap()) < 1e-8, "error {}", c.error(&swap()));
    }

    #[test]
    fn b_gate_uses_two() {
        // B = (π/4, π/8, 0): its z = 0, so two CNOTs suffice even though two
        // B gates beat two CNOTs in reachability (paper §6.4).
        let c = decompose_cnot(&b_gate());
        assert_eq!(c.entangler_count(), 2);
        assert!(c.error(&b_gate()) < 1e-8);
    }

    #[test]
    fn haar_random_gates_use_three_and_reconstruct() {
        let mut rng = StdRng::seed_from_u64(32);
        for _ in 0..20 {
            let u = haar_unitary(4, &mut rng);
            let c = decompose_cnot(&u);
            assert_eq!(c.entangler_count(), 3, "Haar gates generically need 3");
            assert!(c.error(&u) < 1e-7, "error {}", c.error(&u));
        }
    }

    #[test]
    fn z_equals_zero_classes_use_two() {
        let g = ashn_gates::two::canonical(0.5, 0.3, 0.0);
        let c = decompose_cnot(&g);
        assert_eq!(c.entangler_count(), 2);
        assert!(c.error(&g) < 1e-8);
    }

    #[test]
    fn cz_basis_rewrite_preserves_unitary_and_count() {
        let mut rng = StdRng::seed_from_u64(33);
        let u = haar_unitary(4, &mut rng);
        let c = decompose_cnot(&u);
        let z = to_cz_basis(c.clone());
        assert_eq!(z.entangler_count(), c.entangler_count());
        assert!(z.unitary().dist(&c.unitary()) < 1e-9);
    }

    #[test]
    fn ecr_basis_rewrite_preserves_unitary_and_count() {
        let mut rng = StdRng::seed_from_u64(35);
        let u = haar_unitary(4, &mut rng);
        let c = decompose_cnot(&u);
        let e = to_ecr_basis(c.clone());
        assert_eq!(e.entangler_count(), c.entangler_count());
        assert!(e.unitary().dist(&c.unitary()) < 1e-9);
        for op in &e.ops {
            if let Op2::Entangler { matrix, .. } = op {
                assert!(matrix.dist(&ashn_gates::two::ecr()) < 1e-12);
            }
        }
    }

    #[test]
    fn cnot_over_ecr_dressing_is_exact() {
        assert!(cnot_over_ecr().unitary().dist(&cnot()) < 1e-12);
    }

    #[test]
    fn durations_are_cz_multiples() {
        let mut rng = StdRng::seed_from_u64(34);
        let u = haar_unitary(4, &mut rng);
        let c = decompose_cnot(&u);
        assert!((c.entangler_duration() - 3.0 * CZ_DURATION).abs() < 1e-12);
    }
}
