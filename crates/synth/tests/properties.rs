//! Property-based tests for circuit synthesis: minimal counts and exact
//! reconstruction over randomized inputs.

use ashn_gates::kak::weyl_coordinates;
use ashn_gates::two::canonical;
use ashn_ir::embed;
use ashn_math::randmat::haar_unitary;
use ashn_math::CMat;
use ashn_synth::cnot_basis::{cnot_count_for, decompose_cnot};
use ashn_synth::csd::csd;
use ashn_synth::multiplexor::{demultiplex, mux_rotation, Axis};
use ashn_synth::sqisw_basis::{in_w0, sqisw_count_for};
use ashn_synth::three_qubit::lemma14;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::FRAC_PI_4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cnot_decomposition_reconstructs_and_is_minimal(seed in 0u64..400) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = haar_unitary(4, &mut rng);
        let c = decompose_cnot(&u);
        prop_assert!(c.error(&u) < 1e-6);
        prop_assert_eq!(c.entangler_count(), 3); // Haar ⇒ generically 3
    }

    #[test]
    fn canonical_gates_use_the_predicted_count(
        a in 0.05f64..0.78, b in 0.0f64..1.0, zsign in proptest::bool::ANY,
    ) {
        let x = a.min(FRAC_PI_4 - 1e-3);
        let y = b * x;
        let g = canonical(x, y, 0.0);
        let count = cnot_count_for(weyl_coordinates(&g));
        prop_assert!(count <= 2, "z = 0 classes need ≤ 2 CNOTs, got {count}");
        let _ = zsign;
    }

    #[test]
    fn sqisw_counts_agree_with_region(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = haar_unitary(4, &mut rng);
        let p = weyl_coordinates(&u);
        let count = sqisw_count_for(p);
        if in_w0(p) {
            prop_assert!(count <= 2);
        } else {
            prop_assert_eq!(count, 3);
        }
    }

    #[test]
    fn csd_reconstructs_random_unitaries(seed in 0u64..200, half in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = haar_unitary(2 << half, &mut rng);
        let d = csd(&u);
        prop_assert!(d.reconstruct().dist(&u) < 1e-7);
        for &t in &d.theta {
            prop_assert!((0.0..=std::f64::consts::FRAC_PI_2 + 1e-9).contains(&t));
        }
    }

    #[test]
    fn demultiplex_is_exact(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u0 = haar_unitary(4, &mut rng);
        let u1 = haar_unitary(4, &mut rng);
        let (v, angles, w) = demultiplex(&u0, &u1);
        let mut mux = CMat::zeros(8, 8);
        mux.set_block(0, 0, &u0);
        mux.set_block(4, 4, &u1);
        let rest: Vec<usize> = vec![1, 2];
        let rebuilt = embed(3, &rest, &v)
            .matmul(&mux_rotation(Axis::Z, &angles))
            .matmul(&embed(3, &rest, &w));
        prop_assert!(rebuilt.dist(&mux) < 1e-7);
    }

    #[test]
    fn lemma14_five_gates_three_diagonal(seed in 0u64..200, mirrored in proptest::bool::ANY) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u0 = haar_unitary(4, &mut rng);
        let u1 = haar_unitary(4, &mut rng);
        let gates = lemma14(&u0, &u1, 0, 1, 2, mirrored);
        prop_assert_eq!(gates.len(), 5);
        let diag = gates.iter().filter(|g| g.is_diagonal(1e-8)).count();
        prop_assert_eq!(diag, 3);
        // Reconstruction.
        let mut c = ashn_ir::Circuit::new(3);
        for g in gates {
            c.push(g);
        }
        let mut mux = CMat::zeros(8, 8);
        mux.set_block(0, 0, &u0);
        mux.set_block(4, 4, &u1);
        prop_assert!(c.unitary().dist(&mux) < 1e-6);
    }
}
