//! Property tests for the canonical IR: lossless conversions from the
//! legacy synthesis forms (`TwoQubitCircuit`, `NGate`-style QSD output)
//! and the `Basis` contract on Haar-random targets.

use ashn_core::scheme::AshnScheme;
use ashn_gates::two::cnot;
use ashn_ir::{embed, Basis, Circuit};
use ashn_math::randmat::{haar_su, haar_unitary};
use ashn_math::{CMat, Complex};
use ashn_synth::basis::{AshnBasis, CnotBasis, CzBasis, SqiswBasis};
use ashn_synth::circuit2::{Op2, TwoQubitCircuit};
use ashn_synth::qsd::{qsd, SynthBasis};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random two-qubit circuit in the legacy `Op2` representation.
fn random_two_qubit_circuit(rng: &mut StdRng) -> TwoQubitCircuit {
    let n_ops = rng.gen_range(1..8usize);
    let ops = (0..n_ops)
        .map(|_| match rng.gen_range(0..3usize) {
            0 => Op2::L0(haar_su(2, rng)),
            1 => Op2::L1(haar_su(2, rng)),
            _ => Op2::Entangler {
                label: "U".into(),
                matrix: haar_unitary(4, rng),
                duration: rng.gen::<f64>(),
            },
        })
        .collect();
    TwoQubitCircuit {
        phase: Complex::cis(rng.gen::<f64>() * 6.0 - 3.0),
        ops,
    }
}

/// Dense unitary computed the legacy way: embed each instruction and
/// multiply, then apply the global phase.
fn dense_unitary(c: &Circuit) -> CMat {
    let dim = 1usize << c.n;
    let mut u = CMat::identity(dim);
    for g in &c.instructions {
        u = embed(c.n, &g.qubits, &g.matrix).matmul(&u);
    }
    u.scale(c.phase)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `TwoQubitCircuit → Circuit` is lossless: unitaries (with phase),
    /// entangler counts, and durations all survive; and the `TryFrom`
    /// round-trip back to `TwoQubitCircuit` reproduces the unitary.
    #[test]
    fn two_qubit_circuit_round_trips_through_ir(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let legacy = random_two_qubit_circuit(&mut rng);
        let converted: Circuit = legacy.clone().into();
        prop_assert!(converted.unitary().dist(&legacy.unitary()) < 1e-12);
        prop_assert_eq!(converted.entangler_count(), legacy.entangler_count());
        prop_assert!(
            (converted.entangler_duration() - legacy.entangler_duration()).abs() < 1e-12
        );
        let back = TwoQubitCircuit::try_from(converted).expect("two-qubit circuit");
        prop_assert!(back.unitary().dist(&legacy.unitary()) < 1e-12);
    }

    /// QSD output (the former `NGate`/`NCircuit` form) evaluates to the same
    /// unitary through the IR's statevector kernel as through dense
    /// embedding — and reconstructs the synthesized target.
    #[test]
    fn qsd_output_round_trips_through_ir(seed in 0u64..200, generic in proptest::bool::ANY) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = haar_unitary(8, &mut rng);
        let basis = if generic { SynthBasis::Generic } else { SynthBasis::Cnot };
        let circ = qsd(&u, basis);
        prop_assert!(circ.unitary().dist(&dense_unitary(&circ)) < 1e-12);
        prop_assert!(circ.error(&u) < 1e-5);
    }

    /// Every `Basis` impl achieves its own `expected_entanglers()` on
    /// Haar-random targets and reconstructs them.
    #[test]
    fn bases_satisfy_expected_entanglers(seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = haar_unitary(4, &mut rng);
        let bases: Vec<Box<dyn Basis>> = vec![
            Box::new(CnotBasis),
            Box::new(CzBasis),
            Box::new(SqiswBasis),
            Box::new(AshnBasis::ideal()),
            Box::new(AshnBasis { scheme: AshnScheme::with_cutoff(0.0, 1.1) }),
        ];
        for b in bases {
            let c = b.synthesize(&u).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            prop_assert_eq!(
                c.entangler_count(),
                b.expected_entanglers(&u),
                "{} violated its entangler contract", b.name()
            );
            prop_assert!(c.error(&u) < 1e-5, "{}: error {}", b.name(), c.error(&u));
        }
    }

    /// Named classes: the structural gates keep their counts through the IR.
    #[test]
    fn named_gate_counts_survive_conversion(seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Dress CNOT with random locals: still a 1-CNOT class.
        let l = haar_su(2, &mut rng).kron(&haar_su(2, &mut rng));
        let r = haar_su(2, &mut rng).kron(&haar_su(2, &mut rng));
        let dressed = l.matmul(&cnot()).matmul(&r);
        let c = CnotBasis.synthesize(&dressed).expect("synthesizes");
        prop_assert_eq!(c.entangler_count(), 1);
        prop_assert!(c.error(&dressed) < 1e-7);
    }
}
