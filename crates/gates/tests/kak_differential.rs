//! Differential suite holding the stack-allocated KAK fast path against the
//! original heap-allocated `CMat` implementation ([`reference::kak_cmat`]):
//! coordinates, local factors, and phase must agree at `1e-12` over random
//! SU(4)/U(4) targets, named gates, and mirror branches.

use ashn_gates::invariants::{makhlin, makhlin4};
use ashn_gates::kak::{kak, reference, weyl_coordinates, weyl_coordinates4};
use ashn_gates::two::{b_gate, cnot, cz, iswap, sqisw, swap};
use ashn_math::randmat::{haar_su, haar_unitary};
use ashn_math::{CMat, Mat4};
use rand::rngs::StdRng;
use rand::SeedableRng;

const TOL: f64 = 1e-12;

fn assert_same_decomposition(u: &CMat, label: &str) {
    let fast = kak(u);
    let slow = reference::kak_cmat(u);
    assert!(
        fast.coords.approx_eq(slow.coords, TOL),
        "{label}: coords {} vs {}",
        fast.coords,
        slow.coords
    );
    assert!((fast.phase - slow.phase).abs() < TOL, "{label}: phase");
    assert!(fast.a1.dist(&slow.a1) < TOL, "{label}: a1");
    assert!(fast.a2.dist(&slow.a2) < TOL, "{label}: a2");
    assert!(fast.b1.dist(&slow.b1) < TOL, "{label}: b1");
    assert!(fast.b2.dist(&slow.b2) < TOL, "{label}: b2");
    assert!(fast.error(u) < 1e-7, "{label}: reconstruction");
}

#[test]
fn haar_random_gates_agree_with_reference() {
    let mut rng = StdRng::seed_from_u64(9001);
    for i in 0..40 {
        let u = haar_unitary(4, &mut rng);
        assert_same_decomposition(&u, &format!("haar U(4) {i}"));
    }
}

#[test]
fn special_unitaries_agree_with_reference() {
    let mut rng = StdRng::seed_from_u64(9002);
    for i in 0..20 {
        let u = haar_su(4, &mut rng);
        assert_same_decomposition(&u, &format!("haar SU(4) {i}"));
    }
}

#[test]
fn named_gates_agree_with_reference() {
    for (g, name) in [
        (cnot(), "CNOT"),
        (cz(), "CZ"),
        (iswap(), "iSWAP"),
        (swap(), "SWAP"),
        (sqisw(), "SQiSW"),
        (b_gate(), "B"),
        (CMat::identity(4), "I"),
    ] {
        assert_same_decomposition(&g, name);
    }
}

#[test]
fn mirror_branches_agree_with_reference() {
    let mut rng = StdRng::seed_from_u64(9003);
    for i in 0..15 {
        let u = haar_unitary(4, &mut rng);
        let fast = kak(&u).mirrored();
        let slow = reference::kak_cmat(&u); // mirror computed on the fast type
        let slow_m = {
            // The reference path returns the same Kak type; its mirror uses
            // the (stack) builder, so compare at the coordinate level plus
            // reconstruction.
            let m = slow.mirrored();
            assert!(m.error(&u) < 1e-7, "reference mirror reconstructs");
            m
        };
        assert!(
            fast.coords.approx_eq(slow_m.coords, TOL),
            "mirror {i}: coords"
        );
        assert!(fast.a1.dist(&slow_m.a1) < TOL, "mirror {i}: a1");
        assert!(fast.error(&u) < 1e-7, "mirror {i}: reconstruction");
    }
}

#[test]
fn weyl_coordinate_paths_agree() {
    let mut rng = StdRng::seed_from_u64(9004);
    for _ in 0..25 {
        let u = haar_unitary(4, &mut rng);
        let m = Mat4::try_from(&u).unwrap();
        let dense = weyl_coordinates(&u);
        let stack = weyl_coordinates4(&m);
        assert!(dense.approx_eq(stack, TOL));
    }
}

#[test]
fn makhlin_paths_agree() {
    let mut rng = StdRng::seed_from_u64(9005);
    for _ in 0..25 {
        let u = haar_unitary(4, &mut rng);
        let m = Mat4::try_from(&u).unwrap();
        let (g1d, g2d) = makhlin(&u);
        let (g1s, g2s) = makhlin4(&m);
        assert!((g1d - g1s).abs() < TOL);
        assert!((g2d - g2s).abs() < TOL);
    }
}
