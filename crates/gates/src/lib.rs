//! # ashn-gates
//!
//! Quantum gate library and two-qubit gate geometry for the AshN
//! reproduction: Pauli algebra, standard single- and two-qubit gates, the
//! Weyl chamber with canonicalization, the full KAK decomposition (including
//! single-qubit factors), Makhlin invariants, interaction costs (optimal gate
//! times), and Haar sampling.
//!
//! ## Example: where does CNOT live in the Weyl chamber, and how long does it
//! take?
//!
//! ```
//! use ashn_gates::{kak::weyl_coordinates, two::cnot, cost::optimal_time, weyl::WeylPoint};
//!
//! let p = weyl_coordinates(&cnot());
//! assert!(p.approx_eq(WeylPoint::CNOT, 1e-9));
//! // With XX+YY coupling of strength g, [CNOT] takes exactly π/2g.
//! assert!((optimal_time(0.0, p) - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
//! ```

pub mod cost;
pub mod haar;
pub mod invariants;
pub mod kak;
pub mod pauli;
pub mod single;
pub mod two;
pub mod weyl;

pub use kak::{kak, weyl_coordinates, Kak};
pub use weyl::WeylPoint;
