//! Makhlin local invariants of two-qubit gates.
//!
//! The pair `(G₁ ∈ ℂ, G₂ ∈ ℝ)` uniquely labels the local-equivalence class of
//! a two-qubit gate and varies smoothly with the gate — which makes it the
//! right objective for the numerical pulse solvers (unlike raw Weyl
//! coordinates, whose canonicalization is discontinuous).

use crate::kak::magic_basis4;
use ashn_math::{CMat, Complex, Mat4};

/// Makhlin invariants `(G₁, G₂)` computed from a two-qubit unitary.
///
/// # Panics
///
/// Panics when `u` is not a 4×4 unitary (tolerance `1e-7`).
pub fn makhlin(u: &CMat) -> (Complex, f64) {
    assert_eq!((u.rows(), u.cols()), (4, 4));
    assert!(u.is_unitary(1e-7), "makhlin requires a unitary input");
    makhlin4(&Mat4::try_from(u).expect("4x4 checked above"))
}

/// Makhlin invariants of a stack-allocated two-qubit unitary — the
/// allocation-free fast path sitting inside every EA objective evaluation.
///
/// The caller must pass a unitary; only a debug assertion checks it here.
pub fn makhlin4(u: &Mat4) -> (Complex, f64) {
    debug_assert!(u.is_unitary(1e-7), "makhlin requires a unitary input");
    let det = u.det();
    let usu = u.scale(Complex::cis(-det.arg() / 4.0));
    let b = magic_basis4();
    let m = b.adjoint().matmul(&usu).matmul(&b);
    let mm = m.transpose().matmul(&m);
    let tr = mm.trace();
    let tr2 = mm.matmul(&mm).trace();
    let g1 = tr * tr / 16.0;
    let g2 = ((tr * tr - tr2) / 4.0).re;
    (g1, g2)
}

/// Makhlin invariants evaluated directly from Weyl coordinates.
///
/// Matches [`makhlin`] applied to `CAN(x,y,z)` up to the fourfold phase
/// ambiguity of the `SU(4)` normalisation, which can flip the sign of `G₁`;
/// we resolve it the same way as the matrix path (`det`-normalised).
pub fn makhlin_from_coords(x: f64, y: f64, z: f64) -> (Complex, f64) {
    // tr(M) for M = diag(e^{2iθ_j}), θ = (x−y+z, x+y−z, −x−y−z, −x+y+z).
    let thetas = [x - y + z, x + y - z, -x - y - z, -x + y + z];
    let tr: Complex = thetas.iter().map(|&t| Complex::cis(2.0 * t)).sum();
    let tr2: Complex = thetas.iter().map(|&t| Complex::cis(4.0 * t)).sum();
    let g1 = tr * tr / 16.0;
    let g2 = ((tr * tr - tr2) / 4.0).re;
    (g1, g2)
}

/// Smooth squared distance between the invariants of `u` and the target
/// class `(x, y, z)` — the objective minimised by the AshN-EA solver.
pub fn invariant_distance_sq(u: &CMat, x: f64, y: f64, z: f64) -> f64 {
    let (g1u, g2u) = makhlin(u);
    let (g1t, g2t) = makhlin_from_coords(x, y, z);
    (g1u - g1t).norm_sqr() + (g2u - g2t).powi(2)
}

/// Stack-allocated variant of [`invariant_distance_sq`].
pub fn invariant_distance_sq4(u: &Mat4, x: f64, y: f64, z: f64) -> f64 {
    let (g1u, g2u) = makhlin4(u);
    let (g1t, g2t) = makhlin_from_coords(x, y, z);
    (g1u - g1t).norm_sqr() + (g2u - g2t).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kak::weyl_coordinates;
    use crate::two::{canonical, cnot, iswap, swap};
    use ashn_math::randmat::{haar_su, haar_unitary};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::FRAC_PI_4;

    #[test]
    fn cnot_invariants() {
        let (g1, g2) = makhlin(&cnot());
        assert!(g1.abs() < 1e-10, "G1(CNOT) = {g1}");
        assert!((g2 - 1.0).abs() < 1e-10, "G2(CNOT) = {g2}");
    }

    #[test]
    fn iswap_invariants() {
        let (g1, g2) = makhlin(&iswap());
        assert!(g1.abs() < 1e-10);
        assert!((g2 + 1.0).abs() < 1e-10, "G2(iSWAP) = {g2}");
    }

    #[test]
    fn swap_invariants() {
        // Under our det-normalisation of SU(4), G1(SWAP) = −1 and G2 = −3.
        // (Conventions differ across the literature by the fourth-root-of-
        // unity phase choice; what matters is internal consistency, pinned by
        // `matrix_and_coordinate_paths_agree`.)
        let (g1, g2) = makhlin(&swap());
        assert!(
            (g1 - ashn_math::c(-1.0, 0.0)).abs() < 1e-10,
            "G1(SWAP) = {g1}"
        );
        assert!((g2 + 3.0).abs() < 1e-10, "G2(SWAP) = {g2}");
    }

    #[test]
    fn matrix_and_coordinate_paths_agree() {
        let pts = [
            (0.3, 0.2, 0.1),
            (0.3, 0.2, -0.1),
            (FRAC_PI_4, 0.3, 0.05),
            (0.0, 0.0, 0.0),
            (FRAC_PI_4, FRAC_PI_4, FRAC_PI_4),
        ];
        for (x, y, z) in pts {
            let (g1m, g2m) = makhlin(&canonical(x, y, z));
            let (g1c, g2c) = makhlin_from_coords(x, y, z);
            assert!(
                (g1m - g1c).abs() < 1e-9 && (g2m - g2c).abs() < 1e-9,
                "mismatch at ({x},{y},{z}): matrix ({g1m},{g2m}) vs coords ({g1c},{g2c})"
            );
        }
    }

    #[test]
    fn invariants_are_locally_invariant() {
        let mut rng = StdRng::seed_from_u64(201);
        for _ in 0..15 {
            let u = haar_unitary(4, &mut rng);
            let (g1, g2) = makhlin(&u);
            let l = haar_su(2, &mut rng).kron(&haar_su(2, &mut rng));
            let r = haar_su(2, &mut rng).kron(&haar_su(2, &mut rng));
            let (g1d, g2d) = makhlin(&l.matmul(&u).matmul(&r));
            assert!((g1 - g1d).abs() < 1e-8);
            assert!((g2 - g2d).abs() < 1e-8);
        }
    }

    #[test]
    fn invariant_distance_vanishes_on_own_class() {
        let mut rng = StdRng::seed_from_u64(202);
        for _ in 0..10 {
            let u = haar_unitary(4, &mut rng);
            let p = weyl_coordinates(&u);
            assert!(invariant_distance_sq(&u, p.x, p.y, p.z) < 1e-12);
        }
    }

    #[test]
    fn invariant_distance_separates_classes() {
        assert!(invariant_distance_sq(&cnot(), 0.0, 0.0, 0.0) > 0.5);
        assert!(invariant_distance_sq(&swap(), FRAC_PI_4, 0.0, 0.0) > 0.5);
    }
}
