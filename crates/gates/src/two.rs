//! Standard two-qubit gates and the canonical (Weyl) gate.

use crate::pauli::{xx, yy, zz};
use ashn_math::expm::expm_i_hermitian;
use ashn_math::{c, CMat, Complex};
use std::f64::consts::{FRAC_PI_4, FRAC_PI_8};

/// CNOT with the first qubit as control (big-endian ordering `|q0 q1⟩`).
pub fn cnot() -> CMat {
    CMat::from_rows_f64(&[
        &[1.0, 0.0, 0.0, 0.0],
        &[0.0, 1.0, 0.0, 0.0],
        &[0.0, 0.0, 0.0, 1.0],
        &[0.0, 0.0, 1.0, 0.0],
    ])
}

/// Controlled-Z (symmetric between the qubits).
pub fn cz() -> CMat {
    CMat::diag(&[Complex::ONE, Complex::ONE, Complex::ONE, c(-1.0, 0.0)])
}

/// SWAP gate.
pub fn swap() -> CMat {
    CMat::from_rows_f64(&[
        &[1.0, 0.0, 0.0, 0.0],
        &[0.0, 0.0, 1.0, 0.0],
        &[0.0, 1.0, 0.0, 0.0],
        &[0.0, 0.0, 0.0, 1.0],
    ])
}

/// iSWAP gate.
pub fn iswap() -> CMat {
    CMat::from_rows(&[
        &[Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::ZERO],
        &[Complex::ZERO, Complex::ZERO, Complex::I, Complex::ZERO],
        &[Complex::ZERO, Complex::I, Complex::ZERO, Complex::ZERO],
        &[Complex::ZERO, Complex::ZERO, Complex::ZERO, Complex::ONE],
    ])
}

/// `SQiSW = √iSWAP`, the flux-tuned gate used as the baseline instruction in
/// Huang et al., "Quantum instruction set design for performance".
pub fn sqisw() -> CMat {
    let r = std::f64::consts::FRAC_1_SQRT_2;
    CMat::from_rows(&[
        &[Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::ZERO],
        &[Complex::ZERO, c(r, 0.0), c(0.0, r), Complex::ZERO],
        &[Complex::ZERO, c(0.0, r), c(r, 0.0), Complex::ZERO],
        &[Complex::ZERO, Complex::ZERO, Complex::ZERO, Complex::ONE],
    ])
}

/// The echoed cross-resonance gate `ECR = (X⊗I − Y⊗X)/√2` (big-endian,
/// first qubit is the control), the native entangler of fixed-frequency
/// transmon stacks. Hermitian, self-inverse, and locally equivalent to
/// CNOT (canonical class `(π/4, 0, 0)`).
pub fn ecr() -> CMat {
    let r = std::f64::consts::FRAC_1_SQRT_2;
    CMat::from_rows(&[
        &[Complex::ZERO, Complex::ZERO, c(r, 0.0), c(0.0, r)],
        &[Complex::ZERO, Complex::ZERO, c(0.0, r), c(r, 0.0)],
        &[c(r, 0.0), c(0.0, -r), Complex::ZERO, Complex::ZERO],
        &[c(0.0, -r), c(r, 0.0), Complex::ZERO, Complex::ZERO],
    ])
}

/// The canonical gate `CAN(x, y, z) = exp(i(x·XX + y·YY + z·ZZ))`.
///
/// Every two-qubit gate equals `(A₁⊗A₂)·CAN(x,y,z)·(B₁⊗B₂)` up to a global
/// phase (the KAK decomposition, paper Theorem 1).
pub fn canonical(x: f64, y: f64, z: f64) -> CMat {
    let hgen = xx().scale(c(x, 0.0)) + yy().scale(c(y, 0.0)) + zz().scale(c(z, 0.0));
    expm_i_hermitian(&hgen, 1.0)
}

/// The B gate, `CAN(π/4, π/8, 0)`: the unique class from which two
/// applications reach the whole Weyl chamber (paper §6.4).
pub fn b_gate() -> CMat {
    canonical(FRAC_PI_4, FRAC_PI_8, 0.0)
}

/// The Mølmer–Sørensen gate `XX(π/2) = exp(−i·(π/4)·XX)`, the exact gate the
/// AshN `[CNOT]`-class pulse produces (paper §6.4).
pub fn molmer_sorensen() -> CMat {
    let hgen = xx().scale(c(FRAC_PI_4, 0.0));
    expm_i_hermitian(&hgen, -1.0)
}

/// The fSim gate family `fSim(θ, φ)` (Foxen et al. [2]).
pub fn fsim(theta: f64, phi: f64) -> CMat {
    let (s, co) = theta.sin_cos();
    CMat::from_rows(&[
        &[Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::ZERO],
        &[Complex::ZERO, c(co, 0.0), c(0.0, -s), Complex::ZERO],
        &[Complex::ZERO, c(0.0, -s), c(co, 0.0), Complex::ZERO],
        &[
            Complex::ZERO,
            Complex::ZERO,
            Complex::ZERO,
            Complex::cis(-phi),
        ],
    ])
}

/// The XY interaction family `XY(θ) = exp(−i·θ/4·(XX+YY))` (Abrams et al. [4]).
pub fn xy(theta: f64) -> CMat {
    let hgen = (xx() + yy()).scale(c(0.25, 0.0));
    expm_i_hermitian(&hgen, -theta)
}

/// `ZZ(θ) = exp(−i·θ/2·ZZ)` two-qubit phase rotation.
pub fn zz_rotation(theta: f64) -> CMat {
    let hgen = zz().scale(c(0.5, 0.0));
    expm_i_hermitian(&hgen, -theta)
}

/// Controlled version of a single-qubit unitary (control = first qubit).
///
/// # Panics
///
/// Panics if `u` is not 2×2.
pub fn controlled(u: &CMat) -> CMat {
    assert_eq!((u.rows(), u.cols()), (2, 2));
    let mut m = CMat::identity(4);
    m.set_block(2, 2, u);
    m
}

/// Kronecker product of two single-qubit gates, `a ⊗ b`.
pub fn kron2(a: &CMat, b: &CMat) -> CMat {
    a.kron(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::h;

    #[test]
    fn all_standard_gates_are_unitary() {
        for g in [
            cnot(),
            cz(),
            ecr(),
            swap(),
            iswap(),
            sqisw(),
            b_gate(),
            molmer_sorensen(),
            fsim(0.3, 0.7),
            xy(1.1),
            zz_rotation(0.4),
        ] {
            assert!(g.is_unitary(1e-12));
        }
    }

    #[test]
    fn sqisw_squares_to_iswap() {
        assert!(sqisw().matmul(&sqisw()).dist(&iswap()) < 1e-13);
    }

    #[test]
    fn cnot_is_hadamard_conjugated_cz() {
        let ih = CMat::identity(2).kron(&h());
        assert!(ih.matmul(&cz()).matmul(&ih).dist(&cnot()) < 1e-13);
    }

    #[test]
    fn ecr_is_self_inverse() {
        assert!(ecr().matmul(&ecr()).dist(&CMat::identity(4)) < 1e-14);
    }

    #[test]
    fn ecr_is_in_the_cnot_weyl_class() {
        use crate::weyl::WeylPoint;
        let p = crate::kak::weyl_coordinates(&ecr()).canonicalize();
        assert!(p.gate_dist(WeylPoint::CNOT) < 1e-9);
    }

    #[test]
    fn swap_squares_to_identity() {
        assert!(swap().matmul(&swap()).dist(&CMat::identity(4)) < 1e-14);
    }

    #[test]
    fn canonical_at_origin_is_identity() {
        assert!(canonical(0.0, 0.0, 0.0).dist(&CMat::identity(4)) < 1e-13);
    }

    #[test]
    fn canonical_factors_commute() {
        let a = canonical(0.3, 0.0, 0.0);
        let b = canonical(0.0, 0.2, 0.1);
        let joint = canonical(0.3, 0.2, 0.1);
        assert!(a.matmul(&b).dist(&joint) < 1e-12);
    }

    #[test]
    fn xy_interaction_matches_iswap_family() {
        // XY(π) should be locally equivalent to iSWAP; as matrices,
        // exp(−iπ/4(XX+YY)) equals iSWAP up to the sign convention.
        let u = xy(-std::f64::consts::PI);
        assert!(u.dist(&iswap()) < 1e-12);
    }

    #[test]
    fn fsim_at_special_point_is_iswap_like() {
        let u = fsim(-std::f64::consts::FRAC_PI_2, 0.0);
        assert!(u.dist(&iswap()) < 1e-12);
    }

    #[test]
    fn controlled_x_is_cnot() {
        let x = crate::pauli::Pauli::X.matrix();
        assert!(controlled(&x).dist(&cnot()) < 1e-14);
    }
}
