//! Interaction cost: the minimal evolution time needed to reach a Weyl
//! chamber point under the AshN Hamiltonian (paper §4.3, after Hammerer,
//! Vidal & Cirac).
//!
//! Times are expressed in units of `1/g` throughout; the `ZZ` strength enters
//! as the ratio `h̃ = h/g ∈ [−1, 1]`.

use crate::weyl::WeylPoint;
use std::f64::consts::{FRAC_PI_2, PI};

/// The two branch times `(τ₁, τ₂)` of the majorization criterion
/// (paper Eqs. 4.5–4.6 translated to the AshN Hamiltonian).
///
/// `τ₁` reaches `(x,y,z)` directly; `τ₂` reaches it through the
/// `(π/2−x, y, −z)` mirror.
///
/// # Panics
///
/// Panics when `|h_ratio| > 1` or the point is not canonical.
pub fn optimal_time_branches(h_ratio: f64, p: WeylPoint) -> (f64, f64) {
    assert!(
        h_ratio.abs() <= 1.0 + 1e-12,
        "ZZ ratio must satisfy |h| ≤ g, got {h_ratio}"
    );
    assert!(
        p.in_chamber(1e-7),
        "optimal time expects canonical coordinates, got {p}"
    );
    let (x, y, z) = (p.x, p.y, p.z);
    // Pairing convention: with the Schrödinger evolution `exp(−iHτ)` used in
    // this workspace, `x+y+z` is limited by the `(2−h̃)` rate and `x+y−z` by
    // `(2+h̃)` (mirror image of the paper's Eq. 4.5 statement, which is given
    // for `exp(+iHτ)`). The AshN scheme tests pin this down by verifying
    // reachability exactly at τ_opt.
    let t1 = (2.0 * x)
        .max(2.0 * (x + y + z) / (2.0 - h_ratio))
        .max(2.0 * (x + y - z) / (2.0 + h_ratio));
    let t2 = (PI - 2.0 * x)
        .max(2.0 * (FRAC_PI_2 - x + y - z) / (2.0 - h_ratio))
        .max(2.0 * (FRAC_PI_2 - x + y + z) / (2.0 + h_ratio));
    (t1, t2)
}

/// The optimal gate time `τ_opt` (units of `1/g`) for the class `p` under
/// `XX+YY` coupling with `ZZ` ratio `h̃` (paper Theorem 2).
///
/// # Panics
///
/// Panics under the same conditions as [`optimal_time_branches`].
///
/// # Examples
///
/// ```
/// use ashn_gates::{cost::optimal_time, weyl::WeylPoint};
/// use std::f64::consts::PI;
///
/// // [CNOT] takes π/2g; [SWAP] takes 3π/4g (paper Table 1).
/// assert!((optimal_time(0.0, WeylPoint::CNOT) - PI / 2.0).abs() < 1e-12);
/// assert!((optimal_time(0.0, WeylPoint::SWAP) - 3.0 * PI / 4.0).abs() < 1e-12);
/// ```
pub fn optimal_time(h_ratio: f64, p: WeylPoint) -> f64 {
    let (t1, t2) = optimal_time_branches(h_ratio, p);
    t1.min(t2)
}

/// `true` when the direct branch `τ₁` attains the optimum (so no mirror
/// transformation is needed).
pub fn direct_branch_is_optimal(h_ratio: f64, p: WeylPoint) -> bool {
    let (t1, t2) = optimal_time_branches(h_ratio, p);
    t1 <= t2 + 1e-12
}

/// The h = 0 closed form `τ_opt = max(2x, x + y + |z|)` (paper Theorem 6).
pub fn optimal_time_zero_zz(p: WeylPoint) -> f64 {
    (2.0 * p.x).max(p.x + p.y + p.z.abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_4;

    #[test]
    fn identity_costs_nothing() {
        assert!(optimal_time(0.0, WeylPoint::IDENTITY).abs() < 1e-15);
    }

    #[test]
    fn closed_form_matches_branch_formula_h0() {
        // Sweep the chamber deterministically.
        let n = 24;
        for i in 0..=n {
            let x = FRAC_PI_4 * i as f64 / n as f64;
            for j in 0..=i {
                let y = FRAC_PI_4 * j as f64 / n as f64;
                for k in -(j as i64)..=(j as i64) {
                    let z = FRAC_PI_4 * k as f64 / n as f64;
                    let p = WeylPoint::new(x, y, z);
                    if !p.in_chamber(1e-9) {
                        continue;
                    }
                    let a = optimal_time(0.0, p);
                    let b = optimal_time_zero_zz(p);
                    assert!((a - b).abs() < 1e-10, "mismatch at {p}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn swap_speeds_up_with_zz() {
        // Paper §6.4: τ_opt([SWAP]) = 3π/(4(1+|h̃|/2)) — ZZ coupling helps.
        for h in [-0.8, -0.3, 0.0, 0.4, 1.0] {
            let got = optimal_time(h, WeylPoint::SWAP);
            let expect = 3.0 * PI / (4.0 * (1.0 + h.abs() / 2.0));
            assert!(
                (got - expect).abs() < 1e-10,
                "h̃={h}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn cnot_time_is_zz_independent() {
        for h in [-1.0, -0.5, 0.0, 0.5, 1.0] {
            assert!((optimal_time(h, WeylPoint::CNOT) - FRAC_PI_2).abs() < 1e-12);
        }
    }

    #[test]
    fn b_gate_time() {
        assert!((optimal_time(0.0, WeylPoint::B) - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn whole_chamber_within_pi() {
        // Paper §A.1.1: the chamber is spanned within time π for all |h̃| ≤ 1.
        for h in [-1.0, -0.6, 0.0, 0.6, 1.0] {
            let n = 16;
            for i in 0..=n {
                let x = FRAC_PI_4 * i as f64 / n as f64;
                for j in 0..=i {
                    let y = FRAC_PI_4 * j as f64 / n as f64;
                    for k in -(j as i64)..=(j as i64) {
                        let z = FRAC_PI_4 * k as f64 / n as f64;
                        let p = WeylPoint::new(x, y, z);
                        if !p.in_chamber(1e-9) {
                            continue;
                        }
                        assert!(optimal_time(h, p) <= PI + 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn mirror_branch_wins_near_identity_mirror() {
        // Points with tiny x but large y are reached faster via the mirror
        // when... actually near the identity τ₁ is small; near the
        // (π/2, 0, 0) ≡ identity-mirror τ₂ wins. Check continuity instead:
        // τ_opt ≤ τ₁ always.
        let p = WeylPoint::new(0.05, 0.02, 0.0);
        let (t1, _) = optimal_time_branches(0.0, p);
        assert!(optimal_time(0.0, p) <= t1 + 1e-12);
    }
}
