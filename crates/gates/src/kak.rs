//! KAK decomposition of two-qubit gates via the magic basis.
//!
//! Any `U ∈ U(4)` factors as
//!
//! ```text
//! U = g · (A₁⊗A₂) · exp(i(x·XX + y·YY + z·ZZ)) · (B₁⊗B₂)
//! ```
//!
//! with `A, B ∈ SU(2)`, a global phase `g`, and canonical Weyl-chamber
//! coordinates `(x, y, z)` (paper Theorem 1). This module computes the full
//! decomposition, including the single-qubit factors, and canonicalizes the
//! coordinates while tracking the induced local corrections.
//!
//! The implementation runs entirely on stack-allocated [`Mat2`]/[`Mat4`]
//! matrices — `kak` sits inside every synthesis objective evaluation, so the
//! former per-call heap churn (a dozen `CMat` temporaries per
//! canonicalization move alone) was a measurable cost. The original
//! heap-allocated path survives as [`reference::kak_cmat`] and pins the fast
//! path down in the differential suite (`crates/gates/tests/kak_differential.rs`).

use crate::single::{rx2, ry2, s2};
use crate::two::canonical;
use crate::weyl::WeylPoint;
use ashn_math::{c, CMat, Complex, Mat2, Mat4};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

/// The magic (Bell-like) basis matrix `B`; conjugation by `B` maps
/// `SU(2)⊗SU(2)` onto `SO(4)`.
pub fn magic_basis() -> CMat {
    magic_basis4().into()
}

/// Stack-allocated magic basis matrix (see [`magic_basis`]).
pub fn magic_basis4() -> Mat4 {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let z = Complex::ZERO;
    Mat4::from_rows([
        [c(s, 0.0), z, z, c(0.0, s)],
        [z, c(0.0, s), c(s, 0.0), z],
        [z, c(0.0, s), c(-s, 0.0), z],
        [c(s, 0.0), z, z, c(0.0, -s)],
    ])
}

/// A full KAK decomposition.
///
/// The local factors are stack-allocated [`Mat2`]s; convert with
/// `CMat::from(k.a1)` when a dense matrix is needed.
#[derive(Clone, Copy, Debug)]
pub struct Kak {
    /// Global phase `g`.
    pub phase: Complex,
    /// Left local factor on qubit 0 (SU(2)).
    pub a1: Mat2,
    /// Left local factor on qubit 1 (SU(2)).
    pub a2: Mat2,
    /// Right local factor on qubit 0 (SU(2)).
    pub b1: Mat2,
    /// Right local factor on qubit 1 (SU(2)).
    pub b2: Mat2,
    /// Canonical interaction coefficients.
    pub coords: WeylPoint,
}

impl Kak {
    /// The same decomposition expressed through the mirror class
    /// `(π/2−x, y, −z)`, with correspondingly updated locals and phase.
    ///
    /// Near the `x = π/4` face, two numerically close gates can
    /// canonicalize through different mirror branches; callers aligning two
    /// decompositions use this to bring them onto the same branch. The
    /// transform works in place on stack copies — no allocation.
    pub fn mirrored(&self) -> Kak {
        let mut b = KakBuilder {
            phase: self.phase,
            a1: self.a1,
            a2: self.a2,
            b1: self.b1,
            b2: self.b2,
            v: [self.coords.x, self.coords.y, self.coords.z],
        };
        b.negate(0, 2);
        b.shift(0, 1.0);
        Kak {
            phase: b.phase,
            a1: b.a1,
            a2: b.a2,
            b1: b.b1,
            b2: b.b2,
            coords: WeylPoint::new(b.v[0], b.v[1], b.v[2]),
        }
    }

    /// Reassembles `g·(A₁⊗A₂)·CAN(x,y,z)·(B₁⊗B₂)`.
    pub fn reconstruct(&self) -> CMat {
        let mid = canonical(self.coords.x, self.coords.y, self.coords.z);
        CMat::from(self.a1.kron(&self.a2))
            .matmul(&mid)
            .matmul(&CMat::from(self.b1.kron(&self.b2)))
            .scale(self.phase)
    }

    /// Frobenius distance between the reconstruction and `u`.
    pub fn error(&self, u: &CMat) -> f64 {
        self.reconstruct().dist(u)
    }
}

/// Splits a 4×4 Kronecker product (up to phase) into
/// `(a, b, phase)` with `k = phase·(a⊗b)` and `det a = det b = 1`.
///
/// # Panics
///
/// Panics when `k` is not 4×4 or not close to a Kronecker product of
/// unitaries (residual checked to `1e-6`).
pub fn factor_kron2(k: &CMat) -> (CMat, CMat, Complex) {
    assert_eq!((k.rows(), k.cols()), (4, 4));
    let m = Mat4::try_from(k).expect("4x4 checked above");
    let (a, b, phase) = factor_kron2_s(&m);
    (a.into(), b.into(), phase)
}

/// Stack-allocated variant of [`factor_kron2`].
///
/// # Panics
///
/// Panics when `k` is not close to a Kronecker product of unitaries
/// (residual checked to `1e-6`).
pub fn factor_kron2_s(k: &Mat4) -> (Mat2, Mat2, Complex) {
    // k[(2i+p, 2j+q)] = a[i][j]·b[p][q]·phase: find the largest entry to pin
    // a non-degenerate cross-section.
    let (mut best, mut at) = (0.0, (0usize, 0usize));
    for r in 0..4 {
        for cc in 0..4 {
            let v = k[(r, cc)].abs();
            if v > best {
                best = v;
                at = (r, cc);
            }
        }
    }
    let (i0, p0) = (at.0 / 2, at.0 % 2);
    let (j0, q0) = (at.1 / 2, at.1 % 2);
    let lambda = k[(2 * i0 + p0, 2 * j0 + q0)];
    let mut a = Mat2::from_fn(|i, j| k[(2 * i + p0, 2 * j + q0)] / lambda);
    let mut b = Mat2::from_fn(|p, q| k[(2 * i0 + p, 2 * j0 + q)]);
    // Now a⊗b = k. Normalize determinants to 1, pushing leftovers into phase.
    let mut phase = Complex::ONE;
    let da = a.det();
    let sa = da.sqrt();
    a = a.scale(sa.inv());
    b = b.scale(sa);
    let db = b.det();
    let sb = Complex::from_polar(1.0, db.arg() / 2.0) * db.abs().sqrt();
    b = b.scale(sb.inv());
    phase *= sb;
    let resid = a.kron(&b).scale(phase).dist(k);
    assert!(
        resid < 1e-6,
        "factor_kron2: input is not a local product (residual {resid:.2e})"
    );
    (a, b, phase)
}

/// Diagonalises a symmetric unitary `M = O·D·Oᵀ` with `O` real orthogonal,
/// `det O = 1`. Returns `O`.
fn diag_symmetric_unitary(m: &Mat4) -> Mat4 {
    let x = m.map(|z| c(z.re, 0.0));
    let y = m.map(|z| c(z.im, 0.0));
    let mixes = [
        0.83762419517,
        std::f64::consts::SQRT_2 / 2.0,
        0.33711731212,
        1.732_050_807_57 / 2.0,
        0.12087012471,
    ];
    for &t in &mixes {
        let (_, vectors) = (x + y.scale(c(t, 0.0))).eigh();
        // The eigenvectors of a real symmetric matrix from our Jacobi sweep
        // are real; verify and extract.
        let mut imag_sq = 0.0;
        for r in 0..4 {
            for cc in 0..4 {
                imag_sq += vectors[(r, cc)].im * vectors[(r, cc)].im;
            }
        }
        if imag_sq.sqrt() > 1e-9 {
            continue;
        }
        let mut o = vectors.map(|z| c(z.re, 0.0));
        let d = o.transpose().matmul(m).matmul(&o);
        let mut off = 0.0;
        for r in 0..4 {
            for cc in 0..4 {
                if r != cc {
                    off += d[(r, cc)].norm_sqr();
                }
            }
        }
        if off.sqrt() < 1e-8 {
            if o.det().re < 0.0 {
                let col = o.col(0);
                let neg = [-col[0], -col[1], -col[2], -col[3]];
                o.set_col(0, &neg);
            }
            return o;
        }
    }
    panic!("diag_symmetric_unitary: failed to diagonalise (input not symmetric unitary?)");
}

/// State for the canonicalization moves, tracking local corrections.
///
/// Every move mutates the stack-held locals in place; the former `CMat`
/// implementation cloned all four 2×2 factors on each `shift`/`negate`/
/// `swap`.
struct KakBuilder {
    phase: Complex,
    a1: Mat2,
    a2: Mat2,
    b1: Mat2,
    b2: Mat2,
    v: [f64; 3],
}

impl KakBuilder {
    /// Pauli for coordinate axis `k` (0 → X, 1 → Y, 2 → Z), premultiplied by
    /// `i` to stay in SU(2).
    fn ipauli(k: usize) -> Mat2 {
        let m = match k {
            0 => crate::pauli::Pauli::X.matrix2(),
            1 => crate::pauli::Pauli::Y.matrix2(),
            _ => crate::pauli::Pauli::Z.matrix2(),
        };
        m.scale(Complex::I)
    }

    /// `v[k] += sign·π/2`.
    fn shift(&mut self, k: usize, sign: f64) {
        self.v[k] += sign * FRAC_PI_2;
        let ip = Self::ipauli(k);
        self.b1 = ip.matmul(&self.b1);
        self.b2 = ip.matmul(&self.b2);
        self.phase *= if sign > 0.0 { Complex::I } else { -Complex::I };
    }

    /// Negates coordinates `j` and `k`.
    fn negate(&mut self, j: usize, k: usize) {
        self.v[j] = -self.v[j];
        self.v[k] = -self.v[k];
        // The third axis selects the conjugating Pauli.
        let third = 3 - j - k;
        let iq = Self::ipauli(third);
        self.a1 = self.a1.matmul(&iq);
        self.b1 = iq.matmul(&self.b1);
        self.phase = -self.phase;
    }

    /// Swaps coordinates `j` and `k`.
    fn swap(&mut self, j: usize, k: usize) {
        self.v.swap(j, k);
        let third = 3 - j - k;
        // Conjugating single-qubit Clifford C (in SU(2)) with
        // (C⊗C)·exp(iη·Σ)·(C⊗C)† permuting the two axes.
        let cgate = match third {
            2 => s2().scale(Complex::cis(-FRAC_PI_4)), // swap X↔Y
            0 => rx2(FRAC_PI_2),                       // swap Y↔Z
            _ => ry2(FRAC_PI_2),                       // swap X↔Z
        };
        let cdag = cgate.adjoint();
        self.a1 = self.a1.matmul(&cdag);
        self.a2 = self.a2.matmul(&cdag);
        self.b1 = cgate.matmul(&self.b1);
        self.b2 = cgate.matmul(&self.b2);
    }

    /// Runs the one-pass canonicalization of the coordinate vector.
    fn canonicalize(&mut self) {
        // 1. Lattice shifts into [−π/4, π/4].
        for k in 0..3 {
            let n = (self.v[k] / FRAC_PI_2).round();
            let sign = -n.signum();
            for _ in 0..(n.abs() as usize) {
                self.shift(k, sign);
            }
        }
        // 2. Sort by decreasing |v| with explicit swaps (bubble sort).
        for pass in 0..3 {
            let _ = pass;
            for j in 0..2 {
                if self.v[j].abs() < self.v[j + 1].abs() - 1e-15 {
                    self.swap(j, j + 1);
                }
            }
        }
        // 3. Pairwise sign flips pushing negativity into z.
        let tol = 1e-15;
        if self.v[0] < -tol && self.v[1] < -tol {
            self.negate(0, 1);
        } else if self.v[0] < -tol {
            self.negate(0, 2);
        } else if self.v[1] < -tol {
            self.negate(1, 2);
        }
        // 4. The x = π/4 face keeps z ≥ 0: (−π/4,y,−z) ~ (π/4,y,z).
        if self.v[0] >= FRAC_PI_4 - 1e-9 && self.v[2] < 0.0 {
            self.negate(0, 2);
            self.shift(0, 1.0);
        }
    }
}

/// Computes the full KAK decomposition of a 4×4 unitary.
///
/// The returned coordinates are canonical (inside the Weyl chamber `W`), and
/// [`Kak::reconstruct`] reproduces `u` to numerical accuracy.
///
/// # Panics
///
/// Panics when `u` is not a 4×4 unitary (tolerance `1e-8`).
///
/// # Examples
///
/// ```
/// use ashn_gates::kak::kak;
/// use ashn_gates::two::cnot;
/// use ashn_gates::weyl::WeylPoint;
///
/// let d = kak(&cnot());
/// assert!(d.coords.approx_eq(WeylPoint::CNOT, 1e-9));
/// assert!(d.error(&cnot()) < 1e-9);
/// ```
pub fn kak(u: &CMat) -> Kak {
    assert_eq!((u.rows(), u.cols()), (4, 4), "kak needs a two-qubit gate");
    let m = Mat4::try_from(u).expect("4x4 checked above");
    kak4(&m)
}

/// Computes the full KAK decomposition of a stack-allocated 4×4 unitary —
/// the allocation-free fast path ([`kak`] is a thin wrapper).
///
/// # Panics
///
/// Panics when `u` is not unitary (tolerance `1e-8`).
pub fn kak4(u: &Mat4) -> Kak {
    assert!(u.is_unitary(1e-8), "kak requires a unitary input");

    // Normalise to SU(4), remembering the stripped phase.
    let det = u.det();
    let alpha = det.arg() / 4.0;
    let mut phase = Complex::cis(alpha);
    let usu = u.scale(Complex::cis(-alpha));

    let b = magic_basis4();
    let bh = b.adjoint();
    let ub = bh.matmul(&usu).matmul(&b);
    let m = ub.transpose().matmul(&ub);
    let o = diag_symmetric_unitary(&m);

    // W = UB·O = L·Δ with L real orthogonal and Δ = diag(e^{iθ}).
    let w = ub.matmul(&o);
    let mut theta = [0.0f64; 4];
    let mut l = Mat4::zeros();
    for (j, th) in theta.iter_mut().enumerate() {
        let col = w.col(j);
        let (mut bi, mut bv) = (0usize, 0.0);
        for (i, z) in col.iter().enumerate() {
            if z.abs() > bv {
                bv = z.abs();
                bi = i;
            }
        }
        let ph = col[bi].arg();
        *th = ph;
        let mut rcol = [Complex::ZERO; 4];
        let rot = Complex::cis(-ph);
        for (r, z) in rcol.iter_mut().zip(col.iter()) {
            *r = *z * rot;
        }
        let imag: f64 = rcol.iter().map(|z| z.im * z.im).sum::<f64>().sqrt();
        assert!(
            imag < 1e-6,
            "kak: left factor column {j} is not real (residual {imag:.2e})"
        );
        l.set_col(j, &rcol);
    }
    // det L must be +1; a flip pairs with a π shift of the matching phase.
    if l.det().re < 0.0 {
        let col = l.col(0);
        let neg = [-col[0], -col[1], -col[2], -col[3]];
        l.set_col(0, &neg);
        theta[0] += std::f64::consts::PI;
    }

    // Raw interaction coefficients from the magic-basis phase pattern
    // θ = (x−y+z, x+y−z, −x−y−z, −x+y+z).
    let x = 0.5 * (theta[0] + theta[1]);
    let y = 0.5 * (theta[1] + theta[3]);
    let z = 0.5 * (theta[0] + theta[3]);

    // Local factors.
    let left4 = b.matmul(&l).matmul(&bh);
    let right4 = b.matmul(&o.transpose()).matmul(&bh);
    let (a1, a2, p1) = factor_kron2_s(&left4);
    let (b1, b2, p2) = factor_kron2_s(&right4);
    phase = phase * p1 * p2;

    let mut builder = KakBuilder {
        phase,
        a1,
        a2,
        b1,
        b2,
        v: [x, y, z],
    };
    builder.canonicalize();

    let decomposition = Kak {
        phase: builder.phase,
        a1: builder.a1,
        a2: builder.a2,
        b1: builder.b1,
        b2: builder.b2,
        coords: WeylPoint::new(builder.v[0], builder.v[1], builder.v[2]),
    };
    debug_assert!(
        decomposition.error(&CMat::from(u)) < 1e-6,
        "kak reconstruction failed: error {:.2e}",
        decomposition.error(&CMat::from(u))
    );
    decomposition
}

/// Canonical Weyl-chamber coordinates of a two-qubit unitary.
///
/// # Panics
///
/// Panics under the same conditions as [`kak`].
pub fn weyl_coordinates(u: &CMat) -> WeylPoint {
    kak(u).coords
}

/// Canonical Weyl-chamber coordinates of a stack-allocated two-qubit
/// unitary — the allocation-free fast path.
///
/// # Panics
///
/// Panics under the same conditions as [`kak4`].
pub fn weyl_coordinates4(u: &Mat4) -> WeylPoint {
    kak4(u).coords
}

/// `true` when `u` and `v` are equal up to single-qubit gates and global
/// phase, i.e. share a Weyl-chamber point (within `tol` in coordinates).
pub fn locally_equivalent(u: &CMat, v: &CMat, tol: f64) -> bool {
    weyl_coordinates(u).dist(weyl_coordinates(v)) < tol
}

/// The original heap-allocated (`CMat`) KAK path, kept verbatim as the
/// reference implementation for the differential test suite — the same role
/// `apply_gate_generic` plays for the simulator kernels.
pub mod reference {
    use super::Kak;
    use crate::single::{rx, ry, s};
    use crate::weyl::WeylPoint;
    use ashn_math::eig::eigh;
    use ashn_math::{c, CMat, Complex, Mat2};
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

    fn factor_kron2_cmat(k: &CMat) -> (CMat, CMat, Complex) {
        assert_eq!((k.rows(), k.cols()), (4, 4));
        let (mut best, mut at) = (0.0, (0usize, 0usize));
        for r in 0..4 {
            for cc in 0..4 {
                let v = k[(r, cc)].abs();
                if v > best {
                    best = v;
                    at = (r, cc);
                }
            }
        }
        let (i0, p0) = (at.0 / 2, at.0 % 2);
        let (j0, q0) = (at.1 / 2, at.1 % 2);
        let lambda = k[(2 * i0 + p0, 2 * j0 + q0)];
        let mut a = CMat::from_fn(2, 2, |i, j| k[(2 * i + p0, 2 * j + q0)] / lambda);
        let mut b = CMat::from_fn(2, 2, |p, q| k[(2 * i0 + p, 2 * j0 + q)]);
        let mut phase = Complex::ONE;
        let da = a.det();
        let sa = da.sqrt();
        a = a.scale(sa.inv());
        b = b.scale(sa);
        let db = b.det();
        let sb = Complex::from_polar(1.0, db.arg() / 2.0) * db.abs().sqrt();
        b = b.scale(sb.inv());
        phase *= sb;
        let resid = a.kron(&b).scale(phase).dist(k);
        assert!(resid < 1e-6, "factor_kron2: residual {resid:.2e}");
        (a, b, phase)
    }

    fn diag_symmetric_unitary_cmat(m: &CMat) -> CMat {
        let n = m.rows();
        let x = m.map(|z| c(z.re, 0.0));
        let y = m.map(|z| c(z.im, 0.0));
        let mixes = [
            0.83762419517,
            std::f64::consts::SQRT_2 / 2.0,
            0.33711731212,
            1.732_050_807_57 / 2.0,
            0.12087012471,
        ];
        for &t in &mixes {
            let e = eigh(&(&x + &y.scale(c(t, 0.0))));
            let imag_norm: f64 = e
                .vectors
                .as_slice()
                .iter()
                .map(|z| z.im * z.im)
                .sum::<f64>()
                .sqrt();
            if imag_norm > 1e-9 {
                continue;
            }
            let mut o = e.vectors.map(|z| c(z.re, 0.0));
            let d = o.transpose().matmul(m).matmul(&o);
            let mut off = 0.0;
            for r in 0..n {
                for cc in 0..n {
                    if r != cc {
                        off += d[(r, cc)].norm_sqr();
                    }
                }
            }
            if off.sqrt() < 1e-8 {
                if o.det().re < 0.0 {
                    let col: Vec<Complex> = o.col(0).iter().map(|z| -*z).collect();
                    o.set_col(0, &col);
                }
                return o;
            }
        }
        panic!("diag_symmetric_unitary: failed to diagonalise");
    }

    /// Clone-based canonicalization state over `CMat` locals.
    struct CmatBuilder {
        phase: Complex,
        a1: CMat,
        a2: CMat,
        b1: CMat,
        b2: CMat,
        v: [f64; 3],
    }

    impl CmatBuilder {
        fn ipauli(k: usize) -> CMat {
            let m = match k {
                0 => crate::pauli::Pauli::X.matrix(),
                1 => crate::pauli::Pauli::Y.matrix(),
                _ => crate::pauli::Pauli::Z.matrix(),
            };
            m.scale(Complex::I)
        }

        fn shift(&mut self, k: usize, sign: f64) {
            self.v[k] += sign * FRAC_PI_2;
            let ip = Self::ipauli(k);
            self.b1 = ip.matmul(&self.b1);
            self.b2 = ip.matmul(&self.b2);
            self.phase *= if sign > 0.0 { Complex::I } else { -Complex::I };
        }

        fn negate(&mut self, j: usize, k: usize) {
            self.v[j] = -self.v[j];
            self.v[k] = -self.v[k];
            let third = 3 - j - k;
            let iq = Self::ipauli(third);
            self.a1 = self.a1.matmul(&iq);
            self.b1 = iq.matmul(&self.b1);
            self.phase = -self.phase;
        }

        fn swap(&mut self, j: usize, k: usize) {
            self.v.swap(j, k);
            let third = 3 - j - k;
            let cgate = match third {
                2 => s().scale(Complex::cis(-FRAC_PI_4)),
                0 => rx(FRAC_PI_2),
                _ => ry(FRAC_PI_2),
            };
            let cdag = cgate.adjoint();
            self.a1 = self.a1.matmul(&cdag);
            self.a2 = self.a2.matmul(&cdag);
            self.b1 = cgate.matmul(&self.b1);
            self.b2 = cgate.matmul(&self.b2);
        }

        fn canonicalize(&mut self) {
            for k in 0..3 {
                let n = (self.v[k] / FRAC_PI_2).round();
                let sign = -n.signum();
                for _ in 0..(n.abs() as usize) {
                    self.shift(k, sign);
                }
            }
            for _pass in 0..3 {
                for j in 0..2 {
                    if self.v[j].abs() < self.v[j + 1].abs() - 1e-15 {
                        self.swap(j, j + 1);
                    }
                }
            }
            let tol = 1e-15;
            if self.v[0] < -tol && self.v[1] < -tol {
                self.negate(0, 1);
            } else if self.v[0] < -tol {
                self.negate(0, 2);
            } else if self.v[1] < -tol {
                self.negate(1, 2);
            }
            if self.v[0] >= FRAC_PI_4 - 1e-9 && self.v[2] < 0.0 {
                self.negate(0, 2);
                self.shift(0, 1.0);
            }
        }
    }

    /// The original `CMat` KAK decomposition (reference path).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`super::kak`].
    pub fn kak_cmat(u: &CMat) -> Kak {
        assert_eq!((u.rows(), u.cols()), (4, 4), "kak needs a two-qubit gate");
        assert!(u.is_unitary(1e-8), "kak requires a unitary input");

        let det = u.det();
        let alpha = det.arg() / 4.0;
        let mut phase = Complex::cis(alpha);
        let usu = u.scale(Complex::cis(-alpha));

        let b = super::magic_basis();
        let bh = b.adjoint();
        let ub = bh.matmul(&usu).matmul(&b);
        let m = ub.transpose().matmul(&ub);
        let o = diag_symmetric_unitary_cmat(&m);

        let w = ub.matmul(&o);
        let mut theta = [0.0f64; 4];
        let mut l = CMat::zeros(4, 4);
        for (j, th) in theta.iter_mut().enumerate() {
            let col = w.col(j);
            let (mut bi, mut bv) = (0usize, 0.0);
            for (i, z) in col.iter().enumerate() {
                if z.abs() > bv {
                    bv = z.abs();
                    bi = i;
                }
            }
            let ph = col[bi].arg();
            *th = ph;
            let rcol: Vec<Complex> = col.iter().map(|z| *z * Complex::cis(-ph)).collect();
            let imag: f64 = rcol.iter().map(|z| z.im * z.im).sum::<f64>().sqrt();
            assert!(imag < 1e-6, "kak: column {j} is not real ({imag:.2e})");
            l.set_col(j, &rcol);
        }
        if l.det().re < 0.0 {
            let col: Vec<Complex> = l.col(0).iter().map(|z| -*z).collect();
            l.set_col(0, &col);
            theta[0] += std::f64::consts::PI;
        }

        let x = 0.5 * (theta[0] + theta[1]);
        let y = 0.5 * (theta[1] + theta[3]);
        let z = 0.5 * (theta[0] + theta[3]);

        let left4 = b.matmul(&l).matmul(&bh);
        let right4 = b.matmul(&o.transpose()).matmul(&bh);
        let (a1, a2, p1) = factor_kron2_cmat(&left4);
        let (b1, b2, p2) = factor_kron2_cmat(&right4);
        phase = phase * p1 * p2;

        let mut builder = CmatBuilder {
            phase,
            a1,
            a2,
            b1,
            b2,
            v: [x, y, z],
        };
        builder.canonicalize();

        Kak {
            phase: builder.phase,
            a1: Mat2::try_from(&builder.a1).expect("2x2 local"),
            a2: Mat2::try_from(&builder.a2).expect("2x2 local"),
            b1: Mat2::try_from(&builder.b1).expect("2x2 local"),
            b2: Mat2::try_from(&builder.b2).expect("2x2 local"),
            coords: WeylPoint::new(builder.v[0], builder.v[1], builder.v[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two::{b_gate, cnot, cz, iswap, molmer_sorensen, sqisw, swap};
    use ashn_math::randmat::{haar_su, haar_unitary};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn known_gate_coordinates() {
        let cases: Vec<(CMat, WeylPoint)> = vec![
            (CMat::identity(4), WeylPoint::IDENTITY),
            (cnot(), WeylPoint::CNOT),
            (cz(), WeylPoint::CNOT),
            (molmer_sorensen(), WeylPoint::CNOT),
            (iswap(), WeylPoint::ISWAP),
            (swap(), WeylPoint::SWAP),
            (sqisw(), WeylPoint::SQISW),
            (b_gate(), WeylPoint::B),
        ];
        for (g, expected) in cases {
            let got = weyl_coordinates(&g);
            assert!(
                got.approx_eq(expected, 1e-8),
                "expected {expected}, got {got}"
            );
        }
    }

    #[test]
    fn reconstruction_over_haar_random_gates() {
        let mut rng = StdRng::seed_from_u64(101);
        for i in 0..60 {
            let u = haar_unitary(4, &mut rng);
            let d = kak(&u);
            assert!(d.coords.in_chamber(1e-8), "iteration {i}: {}", d.coords);
            assert!(
                (d.a1.det() - Complex::ONE).abs() < 1e-7,
                "a1 not special unitary"
            );
            assert!((d.b2.det() - Complex::ONE).abs() < 1e-7);
            assert!(
                d.error(&u) < 1e-7,
                "iteration {i}: error {:.2e}",
                d.error(&u)
            );
        }
    }

    #[test]
    fn local_gates_have_zero_coordinates() {
        let mut rng = StdRng::seed_from_u64(102);
        for _ in 0..10 {
            let u = haar_su(2, &mut rng).kron(&haar_su(2, &mut rng));
            let p = weyl_coordinates(&u);
            assert!(p.approx_eq(WeylPoint::IDENTITY, 1e-7), "got {p}");
        }
    }

    #[test]
    fn coordinates_invariant_under_local_dressing() {
        let mut rng = StdRng::seed_from_u64(103);
        for _ in 0..15 {
            let u = haar_unitary(4, &mut rng);
            let base = weyl_coordinates(&u);
            let l = haar_su(2, &mut rng).kron(&haar_su(2, &mut rng));
            let r = haar_su(2, &mut rng).kron(&haar_su(2, &mut rng));
            let dressed = l.matmul(&u).matmul(&r);
            let got = weyl_coordinates(&dressed);
            assert!(got.dist(base) < 1e-7, "expected {base}, got {got}");
        }
    }

    #[test]
    fn canonical_gate_round_trip() {
        // CAN(x,y,z) for canonical (x,y,z) must come back unchanged.
        let pts = [
            WeylPoint::new(0.3, 0.2, 0.1),
            WeylPoint::new(0.3, 0.2, -0.1),
            WeylPoint::new(FRAC_PI_4, 0.3, 0.0),
            WeylPoint::new(0.5, 0.5, 0.5), // non-canonical input to CAN
        ];
        for p in pts {
            let g = canonical(p.x, p.y, p.z);
            let got = weyl_coordinates(&g);
            let expect = p.canonicalize();
            assert!(
                got.approx_eq(expect, 1e-8),
                "CAN{p} → {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn mirrored_decomposition_reconstructs() {
        let mut rng = StdRng::seed_from_u64(106);
        for _ in 0..10 {
            let u = haar_unitary(4, &mut rng);
            let d = kak(&u).mirrored();
            assert!(
                d.error(&u) < 1e-7,
                "mirror reconstruction error {}",
                d.error(&u)
            );
            // The mirrored coordinates sit at (π/2−x, y, −z).
            let base = weyl_coordinates(&u);
            assert!((d.coords.x - (FRAC_PI_2 - base.x)).abs() < 1e-9);
            assert!((d.coords.z + base.z).abs() < 1e-9);
        }
    }

    #[test]
    fn factor_kron_recovers_products() {
        let mut rng = StdRng::seed_from_u64(104);
        for _ in 0..20 {
            let a = haar_su(2, &mut rng);
            let b = haar_su(2, &mut rng);
            let k = a.kron(&b).scale(Complex::cis(0.73));
            let (fa, fb, ph) = factor_kron2(&k);
            assert!(fa.kron(&fb).scale(ph).dist(&k) < 1e-9);
            assert!((fa.det() - Complex::ONE).abs() < 1e-9);
            assert!((fb.det() - Complex::ONE).abs() < 1e-9);
        }
    }

    #[test]
    fn locally_equivalent_detects_dressing() {
        let mut rng = StdRng::seed_from_u64(105);
        let u = haar_unitary(4, &mut rng);
        let l = haar_su(2, &mut rng).kron(&haar_su(2, &mut rng));
        assert!(locally_equivalent(&u, &l.matmul(&u), 1e-7));
        assert!(!locally_equivalent(&cnot(), &swap(), 1e-3));
    }
}
