//! Single-qubit gate library.
//!
//! Each gate comes in two flavours: the dense [`CMat`] used by the generic
//! n-qubit embedding code, and a stack-allocated [`Mat2`] twin (suffix `2`)
//! for the allocation-free KAK/synthesis hot path.

use ashn_math::{c, CMat, Complex, Mat2};

/// Rotation about X: `exp(−iθX/2)`.
pub fn rx(theta: f64) -> CMat {
    rx2(theta).into()
}

/// Stack-allocated rotation about X: `exp(−iθX/2)`.
pub fn rx2(theta: f64) -> Mat2 {
    let (s, co) = (theta / 2.0).sin_cos();
    Mat2::from_rows([[c(co, 0.0), c(0.0, -s)], [c(0.0, -s), c(co, 0.0)]])
}

/// Rotation about Y: `exp(−iθY/2)`.
pub fn ry(theta: f64) -> CMat {
    ry2(theta).into()
}

/// Stack-allocated rotation about Y: `exp(−iθY/2)`.
pub fn ry2(theta: f64) -> Mat2 {
    let (s, co) = (theta / 2.0).sin_cos();
    Mat2::from_rows([[c(co, 0.0), c(-s, 0.0)], [c(s, 0.0), c(co, 0.0)]])
}

/// Rotation about Z: `exp(−iθZ/2)`.
pub fn rz(theta: f64) -> CMat {
    CMat::diag(&[Complex::cis(-theta / 2.0), Complex::cis(theta / 2.0)])
}

/// Hadamard gate.
pub fn h() -> CMat {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    CMat::from_rows_f64(&[&[s, s], &[s, -s]])
}

/// Phase gate `S = diag(1, i)`.
pub fn s() -> CMat {
    CMat::diag(&[Complex::ONE, Complex::I])
}

/// Stack-allocated phase gate `S = diag(1, i)`.
pub fn s2() -> Mat2 {
    Mat2::diag([Complex::ONE, Complex::I])
}

/// T gate `diag(1, e^{iπ/4})`.
pub fn t() -> CMat {
    CMat::diag(&[Complex::ONE, Complex::cis(std::f64::consts::FRAC_PI_4)])
}

/// Phase shift `diag(1, e^{iφ})`.
pub fn phase(phi: f64) -> CMat {
    CMat::diag(&[Complex::ONE, Complex::cis(phi)])
}

/// General SU(2) element from ZYZ Euler angles:
/// `u = Rz(α)·Ry(β)·Rz(γ)`.
pub fn su2_zyz(alpha: f64, beta: f64, gamma: f64) -> CMat {
    rz(alpha).matmul(&ry(beta)).matmul(&rz(gamma))
}

/// ZYZ Euler angles `(α, β, γ, phase)` of a 2×2 unitary, such that
/// `u = e^{i·phase}·Rz(α)·Ry(β)·Rz(γ)`.
///
/// # Panics
///
/// Panics if `u` is not a 2×2 unitary (tolerance `1e-8`).
pub fn zyz_angles(u: &CMat) -> (f64, f64, f64, f64) {
    assert_eq!((u.rows(), u.cols()), (2, 2));
    assert!(u.is_unitary(1e-8), "zyz_angles requires a unitary input");
    // Strip global phase: make det = 1.
    let det = u.det();
    let g = det.arg() / 2.0;
    let v = u.scale(Complex::cis(-g));
    // v = [[cos(β/2) e^{-i(α+γ)/2}, -sin(β/2) e^{-i(α-γ)/2}],
    //      [sin(β/2) e^{ i(α-γ)/2},  cos(β/2) e^{ i(α+γ)/2}]]
    let beta = 2.0 * v[(1, 0)].abs().atan2(v[(0, 0)].abs());
    let (apg, amg) = if v[(0, 0)].abs() > 1e-12 && v[(1, 0)].abs() > 1e-12 {
        (2.0 * v[(1, 1)].arg(), 2.0 * v[(1, 0)].arg())
    } else if v[(0, 0)].abs() > 1e-12 {
        // β ≈ 0: only α+γ matters.
        (2.0 * v[(1, 1)].arg(), 0.0)
    } else {
        // β ≈ π: only α−γ matters.
        (0.0, 2.0 * v[(1, 0)].arg())
    };
    let alpha = (apg + amg) / 2.0;
    let gamma = (apg - amg) / 2.0;
    (alpha, beta, gamma, g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_math::randmat::haar_su;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    #[test]
    fn rotations_are_special_unitary() {
        for g in [rx(0.7), ry(-1.3), rz(2.9)] {
            assert!(g.is_unitary(1e-14));
            assert!((g.det() - Complex::ONE).abs() < 1e-14);
        }
    }

    #[test]
    fn rotation_periodicity() {
        // A 2π rotation is −I.
        assert!((rx(2.0 * PI) + CMat::identity(2)).frobenius_norm() < 1e-13);
    }

    #[test]
    fn hadamard_conjugates_x_to_z() {
        let hh = h();
        let x = crate::pauli::Pauli::X.matrix();
        let z = crate::pauli::Pauli::Z.matrix();
        assert!(hh.matmul(&x).matmul(&hh).dist(&z) < 1e-14);
    }

    #[test]
    fn s_squared_is_z() {
        let z = crate::pauli::Pauli::Z.matrix();
        assert!(s().matmul(&s()).dist(&z) < 1e-14);
    }

    #[test]
    fn t_squared_is_s() {
        assert!(t().matmul(&t()).dist(&s()) < 1e-14);
    }

    #[test]
    fn zyz_round_trip_random() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..50 {
            let u = haar_su(2, &mut rng);
            let (a, b, g, ph) = zyz_angles(&u);
            let rec = su2_zyz(a, b, g).scale(Complex::cis(ph));
            assert!(rec.dist(&u) < 1e-9, "zyz round trip failed");
        }
    }

    #[test]
    fn zyz_handles_diagonal_gates() {
        let u = rz(1.1);
        let (a, b, g, ph) = zyz_angles(&u);
        let rec = su2_zyz(a, b, g).scale(Complex::cis(ph));
        assert!(rec.dist(&u) < 1e-10);
        assert!(b.abs() < 1e-9);
    }

    #[test]
    fn zyz_handles_antidiagonal_gates() {
        let u = rx(PI); // −iX: fully anti-diagonal.
        let (a, b, g, ph) = zyz_angles(&u);
        let rec = su2_zyz(a, b, g).scale(Complex::cis(ph));
        assert!(rec.dist(&u) < 1e-10);
        assert!((b - PI).abs() < 1e-9);
    }
}
