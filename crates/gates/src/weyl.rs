//! The Weyl chamber of two-qubit interactions.
//!
//! Local-equivalence classes of two-qubit gates are labelled by interaction
//! coefficients `(x, y, z)` (paper Theorem 1). The canonical fundamental
//! domain is
//!
//! ```text
//! W = { (x,y,z) : π/4 ≥ x ≥ y ≥ |z|,  z ≥ 0 if x = π/4 }
//! ```

use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

/// Default tolerance for chamber-membership and equality checks.
pub const WEYL_TOL: f64 = 1e-9;

/// A point `(x, y, z)` of interaction coefficients.
///
/// The point need not be canonical; use [`WeylPoint::canonicalize`] to map it
/// into the fundamental domain `W`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeylPoint {
    /// Coefficient of `XX`.
    pub x: f64,
    /// Coefficient of `YY`.
    pub y: f64,
    /// Coefficient of `ZZ`.
    pub z: f64,
}

impl WeylPoint {
    /// Creates a new point.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// The identity class `(0, 0, 0)`.
    pub const IDENTITY: WeylPoint = WeylPoint::new(0.0, 0.0, 0.0);

    /// The `[CNOT]`/`[CZ]` class `(π/4, 0, 0)`.
    pub const CNOT: WeylPoint = WeylPoint::new(FRAC_PI_4, 0.0, 0.0);

    /// The `[iSWAP]` class `(π/4, π/4, 0)`.
    pub const ISWAP: WeylPoint = WeylPoint::new(FRAC_PI_4, FRAC_PI_4, 0.0);

    /// The `[SWAP]` class `(π/4, π/4, π/4)`.
    pub const SWAP: WeylPoint = WeylPoint::new(FRAC_PI_4, FRAC_PI_4, FRAC_PI_4);

    /// The `[SQiSW]` class `(π/8, π/8, 0)`.
    pub const SQISW: WeylPoint = WeylPoint::new(FRAC_PI_4 / 2.0, FRAC_PI_4 / 2.0, 0.0);

    /// The `[B]` class `(π/4, π/8, 0)` (paper §6.4).
    pub const B: WeylPoint = WeylPoint::new(FRAC_PI_4, FRAC_PI_4 / 2.0, 0.0);

    /// Coordinates as an array `[x, y, z]`.
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// `true` when the point lies in the canonical chamber `W` (within `tol`).
    pub fn in_chamber(self, tol: f64) -> bool {
        let (x, y, z) = (self.x, self.y, self.z);
        if !(x <= FRAC_PI_4 + tol && x >= y - tol && y >= z.abs() - tol && y >= -tol) {
            return false;
        }
        // On the x = π/4 face, z must be non-negative.
        if (x - FRAC_PI_4).abs() <= tol && z < -tol {
            return false;
        }
        true
    }

    /// Maps the point into the canonical chamber `W`.
    ///
    /// The result labels the same local-equivalence class: the reduction uses
    /// only π/2 lattice shifts, coordinate permutations, and pairwise sign
    /// flips (the Weyl-group action of paper §A.1.2).
    ///
    /// # Examples
    ///
    /// ```
    /// use ashn_gates::weyl::WeylPoint;
    /// use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};
    ///
    /// // (π/2 − π/4, 0, 0) with an extra π/2 shift is still [CNOT].
    /// let p = WeylPoint::new(FRAC_PI_4 + FRAC_PI_2, 0.0, 0.0).canonicalize();
    /// assert!(p.approx_eq(WeylPoint::CNOT, 1e-12));
    /// ```
    pub fn canonicalize(self) -> WeylPoint {
        let mut v = [self.x, self.y, self.z];
        // 1. Shift each coordinate into [−π/4, π/4] (π/2 lattice).
        for t in v.iter_mut() {
            *t -= FRAC_PI_2 * (*t / FRAC_PI_2).round();
        }
        // 2. Sort by decreasing absolute value (permutations are allowed).
        v.sort_by(|a, b| b.abs().partial_cmp(&a.abs()).unwrap());
        // 3. Pairwise sign flips: push any negativity into z.
        let tol = 1e-15;
        if v[0] < -tol && v[1] < -tol {
            v[0] = -v[0];
            v[1] = -v[1];
        } else if v[0] < -tol {
            v[0] = -v[0];
            v[2] = -v[2];
        } else if v[1] < -tol {
            v[1] = -v[1];
            v[2] = -v[2];
        }
        // 4. On the x = π/4 face, (π/4, y, −z) ~ (π/4, y, z).
        if v[0] >= FRAC_PI_4 - WEYL_TOL && v[2] < 0.0 {
            v[2] = -v[2];
        }
        WeylPoint::new(v[0], v[1], v[2])
    }

    /// Euclidean distance to another point (no canonicalization applied).
    pub fn dist(self, other: WeylPoint) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2) + (self.z - other.z).powi(2))
            .sqrt()
    }

    /// Distance between the canonical representatives of the two classes.
    pub fn class_dist(self, other: WeylPoint) -> f64 {
        self.canonicalize().dist(other.canonicalize())
    }

    /// Distance between two classes as *gates*, respecting the boundary
    /// identification `(x, y, z) ~ (π/2−x, y, −z)` that glues the `x = π/4`
    /// face of the chamber onto itself.
    ///
    /// Plain [`WeylPoint::class_dist`] is discontinuous across that face
    /// (e.g. `(π/4−ε, y, −z)` vs `(π/4, y, z)`); this metric is not, which
    /// makes it the right acceptance check for numerical pulse solvers.
    pub fn gate_dist(self, other: WeylPoint) -> f64 {
        let a = self.canonicalize();
        let b = other.canonicalize();
        let mirror = WeylPoint::new(FRAC_PI_2 - a.x, a.y, -a.z);
        a.dist(b).min(mirror.dist(b))
    }

    /// Coordinate-wise approximate equality.
    pub fn approx_eq(self, other: WeylPoint, tol: f64) -> bool {
        (self.x - other.x).abs() <= tol
            && (self.y - other.y).abs() <= tol
            && (self.z - other.z).abs() <= tol
    }
}

impl std::fmt::Display for WeylPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.6}, {:.6}, {:.6})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_points_are_canonical() {
        for p in [
            WeylPoint::IDENTITY,
            WeylPoint::CNOT,
            WeylPoint::ISWAP,
            WeylPoint::SWAP,
            WeylPoint::SQISW,
            WeylPoint::B,
        ] {
            assert!(p.in_chamber(WEYL_TOL), "{p} not in chamber");
            assert!(p.canonicalize().approx_eq(p, 1e-12), "{p} not a fixpoint");
        }
    }

    #[test]
    fn sqrt_swap_dagger_keeps_negative_z() {
        // (π/8, π/8, −π/8) is canonical and distinct from √SWAP.
        let p = WeylPoint::new(FRAC_PI_4 / 2.0, FRAC_PI_4 / 2.0, -FRAC_PI_4 / 2.0);
        assert!(p.in_chamber(WEYL_TOL));
        assert!(p.canonicalize().approx_eq(p, 1e-12));
        // Shift z by π/2 and check it canonicalizes back.
        let q = WeylPoint::new(p.x, p.y, p.z + FRAC_PI_2).canonicalize();
        assert!(q.approx_eq(p, 1e-12), "got {q}");
    }

    #[test]
    fn shifted_cnot_canonicalizes() {
        let p = WeylPoint::new(FRAC_PI_4 + 3.0 * FRAC_PI_2, 0.0, 0.0).canonicalize();
        assert!(p.approx_eq(WeylPoint::CNOT, 1e-12));
    }

    #[test]
    fn permuted_and_flipped_points_canonicalize() {
        let target = WeylPoint::new(0.7, 0.5, 0.2).canonicalize();
        for perm in [[0.7, 0.5, 0.2], [0.5, 0.7, 0.2], [0.2, 0.5, 0.7]] {
            for flip in [
                [1.0, 1.0, 1.0],
                [-1.0, -1.0, 1.0],
                [1.0, -1.0, -1.0],
                [-1.0, 1.0, -1.0],
            ] {
                let p = WeylPoint::new(perm[0] * flip[0], perm[1] * flip[1], perm[2] * flip[2])
                    .canonicalize();
                assert!(
                    p.approx_eq(target, 1e-12),
                    "orbit member mapped to {p}, expected {target}"
                );
            }
        }
    }

    #[test]
    fn canonical_result_is_in_chamber() {
        // A deterministic sweep of awkward values.
        let vals = [
            -2.9,
            -1.1,
            -0.3,
            0.0,
            0.4,
            std::f64::consts::FRAC_PI_4,
            1.2,
            2.35,
        ];
        for &x in &vals {
            for &y in &vals {
                for &z in &vals {
                    let p = WeylPoint::new(x, y, z).canonicalize();
                    assert!(p.in_chamber(1e-9), "({x},{y},{z}) → {p} not canonical");
                }
            }
        }
    }

    #[test]
    fn swap_face_sign_fix() {
        let p = WeylPoint::new(FRAC_PI_4, 0.2, -0.1).canonicalize();
        assert!(
            p.z > 0.0,
            "z must be non-negative on the x=π/4 face, got {p}"
        );
    }
}
