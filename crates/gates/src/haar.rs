//! Haar measure on two-qubit gates and its projection to the Weyl chamber.

use crate::kak::weyl_coordinates;
use crate::weyl::WeylPoint;
use ashn_math::randmat::haar_unitary;
use rand::Rng;
use std::f64::consts::FRAC_PI_4;

/// The Haar-induced probability density on the Weyl chamber
/// (paper §A.7.1, after Watts, O'Connor & Vala):
///
/// `p(x,y,z) = (384/π)·|sin 2(x+y)·sin 2(x−y)·sin 2(y+z)·sin 2(y−z)·sin 2(x+z)·sin 2(x−z)|`
///
/// normalised so that `∫_W p dV = 1`.
///
/// Note on conventions: the paper prints the density with single-angle sines
/// and constant `48/π`, which corresponds to doubled interaction coordinates;
/// in the `CAN(x,y,z) = exp(i(xXX+yYY+zZZ))` convention used throughout this
/// workspace the doubled-angle form below is the one that matches exact Haar
/// sampling (verified against [`sample_weyl_haar`] in the tests).
pub fn weyl_density(p: WeylPoint) -> f64 {
    let (x, y, z) = (p.x, p.y, p.z);
    384.0 / std::f64::consts::PI
        * ((2.0 * (x + y)).sin()
            * (2.0 * (x - y)).sin()
            * (2.0 * (y + z)).sin()
            * (2.0 * (y - z)).sin()
            * (2.0 * (x + z)).sin()
            * (2.0 * (x - z)).sin())
        .abs()
}

/// Samples a Weyl-chamber point with Haar statistics by drawing a Haar
/// unitary and taking its KAK coordinates. Exact but costs one KAK
/// decomposition per sample.
pub fn sample_weyl_haar(rng: &mut impl Rng) -> WeylPoint {
    weyl_coordinates(&haar_unitary(4, rng))
}

/// Upper bound on [`weyl_density`] over the chamber, used for rejection
/// sampling (computed once over a fine grid, with a safety margin).
fn density_bound() -> f64 {
    use std::sync::OnceLock;
    static BOUND: OnceLock<f64> = OnceLock::new();
    *BOUND.get_or_init(|| {
        let n = 60;
        let mut best: f64 = 0.0;
        for i in 0..=n {
            let x = FRAC_PI_4 * i as f64 / n as f64;
            for j in 0..=i {
                let y = FRAC_PI_4 * j as f64 / n as f64;
                for k in -(j as i64)..=(j as i64) {
                    let z = FRAC_PI_4 * k as f64 / n as f64;
                    best = best.max(weyl_density(WeylPoint::new(x, y, z)));
                }
            }
        }
        best * 1.25
    })
}

/// Samples a Weyl-chamber point from the Haar density by rejection sampling.
/// Much faster than [`sample_weyl_haar`] and statistically equivalent.
pub fn sample_weyl_density(rng: &mut impl Rng) -> WeylPoint {
    let bound = density_bound();
    loop {
        let x = rng.gen::<f64>() * FRAC_PI_4;
        let y = rng.gen::<f64>() * FRAC_PI_4;
        let z = (2.0 * rng.gen::<f64>() - 1.0) * FRAC_PI_4;
        let p = WeylPoint::new(x, y, z);
        if !p.in_chamber(0.0) {
            continue;
        }
        if rng.gen::<f64>() * bound < weyl_density(p) {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Grid integral of the density over the chamber.
    fn integrate_density(n: usize) -> f64 {
        let hstep = FRAC_PI_4 / n as f64;
        let mut total = 0.0;
        for i in 0..n {
            let x = (i as f64 + 0.5) * hstep;
            for j in 0..n {
                let y = (j as f64 + 0.5) * hstep;
                for k in 0..2 * n {
                    let z = -FRAC_PI_4 + (k as f64 + 0.5) * hstep;
                    let p = WeylPoint::new(x, y, z);
                    if p.in_chamber(0.0) {
                        total += weyl_density(p) * hstep * hstep * hstep;
                    }
                }
            }
        }
        total
    }

    #[test]
    fn density_normalises_to_one() {
        let total = integrate_density(60);
        assert!(
            (total - 1.0).abs() < 0.02,
            "∫ p dV = {total}, expected 1 (check the 48/π constant)"
        );
    }

    #[test]
    fn density_vanishes_on_chamber_edges() {
        // x = y edge.
        assert!(weyl_density(WeylPoint::new(0.3, 0.3, 0.1)) < 1e-12);
        // y = z edge.
        assert!(weyl_density(WeylPoint::new(0.4, 0.2, 0.2)) < 1e-12);
    }

    #[test]
    fn haar_and_rejection_sampling_agree_on_moments() {
        let mut rng = StdRng::seed_from_u64(301);
        let n = 1500;
        let mean = |f: &dyn Fn(&mut StdRng) -> WeylPoint, rng: &mut StdRng| {
            let mut s = [0.0; 3];
            for _ in 0..n {
                let p = f(rng);
                s[0] += p.x;
                s[1] += p.y;
                s[2] += p.z;
            }
            [s[0] / n as f64, s[1] / n as f64, s[2] / n as f64]
        };
        let m1 = mean(&|r| sample_weyl_haar(r), &mut rng);
        let m2 = mean(&|r| sample_weyl_density(r), &mut rng);
        for k in 0..3 {
            assert!(
                (m1[k] - m2[k]).abs() < 0.02,
                "moment {k} mismatch: {} vs {}",
                m1[k],
                m2[k]
            );
        }
        // z averages to ~0 by symmetry.
        assert!(m1[2].abs() < 0.02);
    }

    #[test]
    fn samples_lie_in_chamber() {
        let mut rng = StdRng::seed_from_u64(302);
        for _ in 0..200 {
            assert!(sample_weyl_density(&mut rng).in_chamber(1e-12));
        }
        for _ in 0..20 {
            assert!(sample_weyl_haar(&mut rng).in_chamber(1e-7));
        }
    }
}
