//! Pauli matrices and Pauli strings.

use ashn_math::{c, CMat, Complex, Mat2};

/// The four single-qubit Pauli operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli X (bit flip).
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z (phase flip).
    Z,
}

impl Pauli {
    /// The 2×2 matrix of this Pauli operator.
    pub fn matrix(self) -> CMat {
        match self {
            Pauli::I => CMat::identity(2),
            Pauli::X => CMat::from_rows(&[
                &[Complex::ZERO, Complex::ONE],
                &[Complex::ONE, Complex::ZERO],
            ]),
            Pauli::Y => CMat::from_rows(&[
                &[Complex::ZERO, c(0.0, -1.0)],
                &[c(0.0, 1.0), Complex::ZERO],
            ]),
            Pauli::Z => CMat::from_rows(&[
                &[Complex::ONE, Complex::ZERO],
                &[Complex::ZERO, c(-1.0, 0.0)],
            ]),
        }
    }

    /// The stack-allocated 2×2 matrix of this Pauli operator.
    pub fn matrix2(self) -> Mat2 {
        match self {
            Pauli::I => Mat2::identity(),
            Pauli::X => {
                Mat2::from_rows([[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]])
            }
            Pauli::Y => {
                Mat2::from_rows([[Complex::ZERO, c(0.0, -1.0)], [c(0.0, 1.0), Complex::ZERO]])
            }
            Pauli::Z => {
                Mat2::from_rows([[Complex::ONE, Complex::ZERO], [Complex::ZERO, c(-1.0, 0.0)]])
            }
        }
    }

    /// All four Paulis in `I, X, Y, Z` order.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];
}

/// Tensor product of Pauli operators, e.g. `pauli_string(&[Pauli::X, Pauli::X])`
/// for the paper's `XX`.
///
/// # Panics
///
/// Panics when `ps` is empty.
pub fn pauli_string(ps: &[Pauli]) -> CMat {
    assert!(!ps.is_empty(), "empty Pauli string");
    let mut m = ps[0].matrix();
    for p in &ps[1..] {
        m = m.kron(&p.matrix());
    }
    m
}

/// `X⊗X` on two qubits.
pub fn xx() -> CMat {
    pauli_string(&[Pauli::X, Pauli::X])
}

/// `Y⊗Y` on two qubits.
pub fn yy() -> CMat {
    pauli_string(&[Pauli::Y, Pauli::Y])
}

/// `Z⊗Z` on two qubits.
pub fn zz() -> CMat {
    pauli_string(&[Pauli::Z, Pauli::Z])
}

/// Expands a 4×4 Hermitian operator in the two-qubit Pauli basis.
///
/// Returns the 16 real coefficients `h_{ab}` with
/// `H = Σ_{ab} h_{ab} σ_a ⊗ σ_b`, ordered with `b` fastest
/// (`II, IX, IY, IZ, XI, …`).
///
/// # Panics
///
/// Panics if `h` is not 4×4.
pub fn pauli_coefficients(h: &CMat) -> [f64; 16] {
    assert_eq!((h.rows(), h.cols()), (4, 4), "two-qubit operator required");
    let mut out = [0.0; 16];
    for (ia, a) in Pauli::ALL.iter().enumerate() {
        for (ib, b) in Pauli::ALL.iter().enumerate() {
            let p = pauli_string(&[*a, *b]);
            // tr(P† H)/4 = tr(P H)/4 since Paulis are Hermitian.
            out[ia * 4 + ib] = p.hs_inner(h).re / 4.0;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paulis_are_hermitian_unitary_involutions() {
        for p in Pauli::ALL {
            let m = p.matrix();
            assert!(m.is_hermitian(1e-15));
            assert!(m.is_unitary(1e-15));
            assert!(m.matmul(&m).dist(&CMat::identity(2)) < 1e-15);
        }
    }

    #[test]
    fn anticommutation() {
        let x = Pauli::X.matrix();
        let y = Pauli::Y.matrix();
        let z = Pauli::Z.matrix();
        let anti = x.matmul(&y) + y.matmul(&x);
        assert!(anti.frobenius_norm() < 1e-15);
        // XY = iZ.
        assert!(x.matmul(&y).dist(&z.scale(c(0.0, 1.0))) < 1e-15);
    }

    #[test]
    fn pauli_string_dimensions() {
        assert_eq!(pauli_string(&[Pauli::X; 3]).rows(), 8);
        assert_eq!(xx().rows(), 4);
    }

    #[test]
    fn pauli_coefficients_round_trip() {
        // H = 0.5 XX + 0.25 ZI − 0.125 IY.
        let h = xx().scale(c(0.5, 0.0))
            + pauli_string(&[Pauli::Z, Pauli::I]).scale(c(0.25, 0.0))
            + pauli_string(&[Pauli::I, Pauli::Y]).scale(c(-0.125, 0.0));
        let coeff = pauli_coefficients(&h);
        assert!((coeff[5] - 0.5).abs() < 1e-14); // XX index: a=1,b=1
        assert!((coeff[12] - 0.25).abs() < 1e-14); // ZI: a=3,b=0
        assert!((coeff[2] + 0.125).abs() < 1e-14); // IY: a=0,b=2
        let sum: f64 = coeff.iter().map(|v| v.abs()).sum();
        assert!((sum - 0.875).abs() < 1e-13);
    }
}
