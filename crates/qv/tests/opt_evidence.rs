//! Quantum-volume evidence for the circuit optimizer: on the paper's QV
//! model workloads, the standard `ashn-opt` pipeline must reduce the
//! two-qubit gate count of compiled circuits without regressing the mean
//! heavy-output probability at paper noise.

use ashn_opt::standard_pipeline;
use ashn_qv::experiment::{compile_model_on, sample_model_circuit, score_compiled, CompiledModel};
use ashn_qv::QvNoise;
use ashn_synth::basis::AshnBasis;
use ashn_synth::cache::CachedBasis;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Evidence {
    gates_raw: usize,
    gates_opt: usize,
    two_q_raw: usize,
    two_q_opt: usize,
    depth_raw: usize,
    depth_opt: usize,
    hop_raw: f64,
    hop_opt: f64,
}

/// Compiles `circuits` QV model circuits of size `d` to AshN (paper cutoff
/// `r = 1.1`), optimizes each with the standard pipeline, and scores both
/// versions at the same noise.
fn run_workload(d: usize, circuits: usize, noise: &QvNoise, master_seed: u64) -> Evidence {
    let basis = CachedBasis::new(AshnBasis::with_cutoff(0.0, 1.1));
    let pipeline = standard_pipeline(&basis, 1e-5);
    let mut rng = StdRng::seed_from_u64(master_seed);
    let mut ev = Evidence {
        gates_raw: 0,
        gates_opt: 0,
        two_q_raw: 0,
        two_q_opt: 0,
        depth_raw: 0,
        depth_opt: 0,
        hop_raw: 0.0,
        hop_opt: 0.0,
    };
    for _ in 0..circuits {
        let model = sample_model_circuit(d, &mut rng);
        let compiled = compile_model_on(&model, &basis, None).expect("compiles");
        let (optimized, stats) = pipeline.run(&compiled.circuit).expect("optimizes");
        assert_eq!(stats.after.gates, optimized.instructions.len());
        ev.gates_raw += compiled.circuit.instructions.len();
        ev.gates_opt += optimized.instructions.len();
        ev.two_q_raw += compiled.circuit.entangler_count();
        ev.two_q_opt += optimized.entangler_count();
        ev.depth_raw += stats.before.depth;
        ev.depth_opt += stats.after.depth;
        let opt_model = CompiledModel {
            circuit: optimized,
            positions: compiled.positions.clone(),
        };
        ev.hop_raw += score_compiled(&compiled, noise).hop;
        ev.hop_opt += score_compiled(&opt_model, noise).hop;
    }
    ev.hop_raw /= circuits as f64;
    ev.hop_opt /= circuits as f64;
    ev
}

fn check_workload(d: usize, circuits: usize, master_seed: u64) {
    let noise = QvNoise::with_e_cz(0.007); // paper noise anchor
    let ev = run_workload(d, circuits, &noise, master_seed);
    println!(
        "d={d}: gates {}→{} ({:.1}% off), 2q {}→{} ({:.1}% off), depth {}→{}, mean hop {:.4}→{:.4}",
        ev.gates_raw,
        ev.gates_opt,
        100.0 * (ev.gates_raw as f64 - ev.gates_opt as f64) / ev.gates_raw as f64,
        ev.two_q_raw,
        ev.two_q_opt,
        100.0 * (ev.two_q_raw as f64 - ev.two_q_opt as f64) / ev.two_q_raw as f64,
        ev.depth_raw,
        ev.depth_opt,
        ev.hop_raw,
        ev.hop_opt,
    );
    assert!(ev.depth_opt <= ev.depth_raw, "depth must not grow");
    assert!(
        ev.two_q_opt < ev.two_q_raw,
        "2q count must drop: {} → {}",
        ev.two_q_raw,
        ev.two_q_opt
    );
    assert!(
        ev.gates_opt < ev.gates_raw,
        "gate count must drop: {} → {}",
        ev.gates_raw,
        ev.gates_opt
    );
    // No mean-hop regression at paper noise (1e-3 covers the 1e-5-scale
    // unitary perturbation resynthesis is allowed to introduce).
    assert!(
        ev.hop_opt >= ev.hop_raw - 1e-3,
        "hop regressed: {} → {}",
        ev.hop_raw,
        ev.hop_opt
    );
    assert!(ev.hop_opt > 0.5, "optimized circuits must stay heavy");
}

#[test]
fn d4_workload_reduces_two_qubit_count_without_hop_regression() {
    check_workload(4, 4, 20260726);
}

#[test]
fn d5_workload_reduces_two_qubit_count_without_hop_regression() {
    check_workload(5, 3, 55);
}

/// The optimizer must never *increase* any cost metric on QV workloads,
/// circuit by circuit.
#[test]
fn optimizer_is_monotone_on_qv_circuits() {
    let basis = CachedBasis::new(AshnBasis::with_cutoff(0.0, 1.1));
    let pipeline = standard_pipeline(&basis, 1e-5);
    let mut rng = StdRng::seed_from_u64(99);
    for d in [3usize, 4] {
        let model = sample_model_circuit(d, &mut rng);
        let compiled = compile_model_on(&model, &basis, None).expect("compiles");
        let (optimized, stats) = pipeline.run(&compiled.circuit).expect("optimizes");
        assert!(optimized.entangler_count() <= compiled.circuit.entangler_count());
        assert!(optimized.instructions.len() <= compiled.circuit.instructions.len());
        assert!(stats.after.depth <= stats.before.depth);
        assert!(optimized.total_duration() <= compiled.circuit.total_duration() + 1e-9);
        let _ = rng.gen::<u64>();
    }
}
