//! Native two-qubit gate sets compared in the paper's quantum-volume
//! experiment (§6.3): flux-tuned CZ, flux-tuned SQiSW, and AshN (with and
//! without cutoff).

use ashn_core::scheme::AshnScheme;
use ashn_gates::two::swap;
use ashn_math::CMat;
use ashn_sim::Gate;
use ashn_synth::circuit2::{Op2, TwoQubitCircuit};
use ashn_synth::{ashn_basis, cnot_basis, sqisw_basis};

/// A native two-qubit gate set.
#[derive(Clone, Copy, Debug)]
pub enum GateSet {
    /// Flux-tuned CZ, gate time `π/√2·(1/g)`; generic gates need 3.
    Cz,
    /// Flux-tuned SQiSW, gate time `π/4`; generic gates need 2–3.
    Sqisw,
    /// AshN with cutoff `r` (`r = 0` for exactly optimal times); every gate
    /// is a single pulse.
    Ashn {
        /// The cutoff `r` (paper §6.1 uses 0 and 1.1).
        cutoff: f64,
    },
}

impl GateSet {
    /// Short display name.
    pub fn name(&self) -> String {
        match self {
            GateSet::Cz => "CZ".into(),
            GateSet::Sqisw => "SQiSW".into(),
            GateSet::Ashn { cutoff } => format!("AshN(r={cutoff})"),
        }
    }

    /// Compiles an arbitrary two-qubit unitary to this gate set, acting on
    /// the physical qubit pair `(a, b)`. Returns simulator gates with
    /// durations in units of `1/g`.
    pub fn compile(&self, u: &CMat, a: usize, b: usize) -> Vec<Gate> {
        let circuit = self.compile_circuit(u);
        flatten(circuit, a, b)
    }

    fn compile_circuit(&self, u: &CMat) -> TwoQubitCircuit {
        match self {
            GateSet::Cz => cnot_basis::to_cz_basis(cnot_basis::decompose_cnot(u)),
            GateSet::Sqisw => {
                sqisw_basis::decompose_sqisw(u).expect("SQiSW synthesis converges")
            }
            GateSet::Ashn { cutoff } => {
                let scheme = AshnScheme::with_cutoff(0.0, *cutoff);
                ashn_basis::decompose_ashn(u, &scheme)
                    .expect("AshN compilation covers SU(4)")
                    .circuit
            }
        }
    }

    /// The compiled SWAP (for routing). CZ and SQiSW both need 3 natives;
    /// AshN needs a single `3π/4` pulse (§6.4).
    pub fn compile_swap(&self, a: usize, b: usize) -> Vec<Gate> {
        self.compile(&swap(), a, b)
    }

    /// Total two-qubit interaction time of a compiled gate, units of `1/g`.
    pub fn gate_duration(&self, u: &CMat) -> f64 {
        self.compile_circuit(u).entangler_duration()
    }
}

/// Flattens a [`TwoQubitCircuit`] into simulator gates on physical qubits
/// `(a, b)`, merging adjacent single-qubit gates per wire.
fn flatten(c: TwoQubitCircuit, a: usize, b: usize) -> Vec<Gate> {
    let mut out = Vec::new();
    let mut pending: [Option<CMat>; 2] = [None, None];
    let flush = |slot: usize, pending: &mut [Option<CMat>; 2], out: &mut Vec<Gate>| {
        if let Some(m) = pending[slot].take() {
            let q = if slot == 0 { a } else { b };
            out.push(Gate::new(vec![q], m, "1q").with_duration(0.0));
        }
    };
    for op in c.ops {
        match op {
            Op2::L0(g) => {
                pending[0] = Some(match pending[0].take() {
                    Some(prev) => g.matmul(&prev),
                    None => g,
                });
            }
            Op2::L1(g) => {
                pending[1] = Some(match pending[1].take() {
                    Some(prev) => g.matmul(&prev),
                    None => g,
                });
            }
            Op2::Entangler {
                label,
                matrix,
                duration,
            } => {
                flush(0, &mut pending, &mut out);
                flush(1, &mut pending, &mut out);
                out.push(Gate::new(vec![a, b], matrix, label).with_duration(duration));
            }
        }
    }
    flush(0, &mut pending, &mut out);
    flush(1, &mut pending, &mut out);
    // Global phase: attach to the first single-qubit gate (or emit one).
    if (c.phase - ashn_math::Complex::ONE).abs() > 1e-12 {
        out.insert(
            0,
            Gate::new(
                vec![a],
                CMat::identity(2).scale(c.phase),
                "phase",
            )
            .with_duration(0.0)
            .with_error_rate(0.0),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_math::randmat::haar_unitary;
    use ashn_sim::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    fn reconstruct(gates: &[Gate], n: usize) -> CMat {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g.clone());
        }
        c.unitary()
    }

    #[test]
    fn all_gate_sets_reproduce_targets() {
        let mut rng = StdRng::seed_from_u64(21);
        let u = haar_unitary(4, &mut rng);
        for gs in [
            GateSet::Cz,
            GateSet::Sqisw,
            GateSet::Ashn { cutoff: 0.0 },
            GateSet::Ashn { cutoff: 1.1 },
        ] {
            let gates = gs.compile(&u, 0, 1);
            let got = reconstruct(&gates, 2);
            assert!(
                got.dist(&u) < 1e-5,
                "{}: reconstruction error {}",
                gs.name(),
                got.dist(&u)
            );
        }
    }

    #[test]
    fn compile_respects_physical_pair() {
        let mut rng = StdRng::seed_from_u64(22);
        let u = haar_unitary(4, &mut rng);
        let gates = GateSet::Ashn { cutoff: 0.0 }.compile(&u, 2, 0);
        for g in &gates {
            for q in &g.qubits {
                assert!(*q == 0 || *q == 2);
            }
        }
    }

    #[test]
    fn swap_durations_match_paper() {
        // CZ: 3·π/√2; SQiSW: 3·π/4; AshN: 3π/4 in ONE pulse (§6.4).
        let dur = |gs: GateSet| -> f64 {
            GateSet::gate_duration(&gs, &swap())
        };
        assert!((dur(GateSet::Cz) - 3.0 * PI / 2f64.sqrt()).abs() < 1e-9);
        assert!((dur(GateSet::Sqisw) - 3.0 * PI / 4.0).abs() < 1e-9);
        assert!((dur(GateSet::Ashn { cutoff: 0.0 }) - 3.0 * PI / 4.0).abs() < 1e-9);
        let swap_gates = GateSet::Ashn { cutoff: 0.0 }.compile_swap(0, 1);
        let two_q = swap_gates.iter().filter(|g| g.qubits.len() == 2).count();
        assert_eq!(two_q, 1, "AshN implements SWAP in one pulse");
    }

    #[test]
    fn ashn_is_fastest_on_haar_gates() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut totals = [0.0f64; 3];
        for _ in 0..5 {
            let u = haar_unitary(4, &mut rng);
            totals[0] += GateSet::Cz.gate_duration(&u);
            totals[1] += GateSet::Sqisw.gate_duration(&u);
            totals[2] += GateSet::Ashn { cutoff: 0.0 }.gate_duration(&u);
        }
        assert!(totals[2] < totals[1] && totals[1] < totals[0]);
    }
}
