//! Native two-qubit gate sets compared in the paper's quantum-volume
//! experiment (§6.3): flux-tuned CZ, flux-tuned SQiSW, and AshN (with and
//! without cutoff).
//!
//! `GateSet` is a thin enum-to-[`Basis`] dispatcher over the
//! implementations in `ashn-synth`; everything downstream (routing,
//! compilation, scoring, the `ashn::Compiler`) is generic over
//! `dyn Basis`, so a new native basis only needs a `Basis` impl — no
//! changes here beyond an optional enum variant.

use ashn_ir::{Basis, Circuit, SynthError};
use ashn_math::CMat;
use ashn_synth::basis::{AshnBasis, CzBasis, SqiswBasis};

/// A native two-qubit gate set (the paper's three contenders).
#[derive(Clone, Copy, Debug)]
pub enum GateSet {
    /// Flux-tuned CZ, gate time `π/√2·(1/g)`; generic gates need 3.
    Cz,
    /// Flux-tuned SQiSW, gate time `π/4`; generic gates need 2–3.
    Sqisw,
    /// AshN with cutoff `r` (`r = 0` for exactly optimal times); every gate
    /// is a single pulse.
    Ashn {
        /// The cutoff `r` (paper §6.1 uses 0 and 1.1).
        cutoff: f64,
    },
}

impl GateSet {
    /// The [`Basis`] implementation this gate set dispatches to.
    pub fn basis(&self) -> Box<dyn Basis> {
        match self {
            GateSet::Cz => Box::new(CzBasis),
            GateSet::Sqisw => Box::new(SqiswBasis),
            GateSet::Ashn { cutoff } => Box::new(AshnBasis::with_cutoff(0.0, *cutoff)),
        }
    }

    /// Short display name.
    pub fn name(&self) -> String {
        self.basis().name()
    }

    /// Compiles an arbitrary two-qubit unitary to this gate set as a
    /// two-qubit [`Circuit`] (adjacent single-qubit gates fused), ready to
    /// be [`Circuit::embed`]ded at its physical sites.
    ///
    /// # Errors
    ///
    /// [`SynthError`] when synthesis fails (e.g. the SQiSW interleaver
    /// search does not converge) instead of the former `expect` panic.
    pub fn compile_circuit(&self, u: &CMat) -> Result<Circuit, SynthError> {
        self.basis()
            .synthesize(u)
            .map(|c| c.fuse_single_qubit_runs())
    }

    /// The compiled SWAP (for routing). CZ and SQiSW both need 3 natives;
    /// AshN needs a single `3π/4` pulse (§6.4).
    ///
    /// # Errors
    ///
    /// Propagates [`SynthError`] from synthesis.
    pub fn compile_swap(&self) -> Result<Circuit, SynthError> {
        self.basis()
            .native_swap()
            .map(|c| c.fuse_single_qubit_runs())
    }

    /// Total two-qubit interaction time of a compiled gate, units of `1/g`.
    ///
    /// # Errors
    ///
    /// Propagates [`SynthError`] from synthesis.
    pub fn gate_duration(&self, u: &CMat) -> Result<f64, SynthError> {
        Ok(self.basis().synthesize(u)?.entangler_duration())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_gates::two::swap;
    use ashn_math::randmat::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    #[test]
    fn all_gate_sets_reproduce_targets() {
        let mut rng = StdRng::seed_from_u64(21);
        let u = haar_unitary(4, &mut rng);
        for gs in [
            GateSet::Cz,
            GateSet::Sqisw,
            GateSet::Ashn { cutoff: 0.0 },
            GateSet::Ashn { cutoff: 1.1 },
        ] {
            let circuit = gs.compile_circuit(&u).unwrap_or_else(|e| panic!("{e}"));
            assert!(
                circuit.error(&u) < 1e-5,
                "{}: reconstruction error {}",
                gs.name(),
                circuit.error(&u)
            );
        }
    }

    #[test]
    fn compile_embeds_onto_physical_pair() {
        let mut rng = StdRng::seed_from_u64(22);
        let u = haar_unitary(4, &mut rng);
        let circuit = GateSet::Ashn { cutoff: 0.0 }
            .compile_circuit(&u)
            .unwrap()
            .embed(3, &[2, 0])
            .unwrap();
        for g in &circuit.instructions {
            for q in &g.qubits {
                assert!(*q == 0 || *q == 2);
            }
        }
        assert!(circuit.unitary().is_unitary(1e-9));
    }

    #[test]
    fn swap_durations_match_paper() {
        // CZ: 3·π/√2; SQiSW: 3·π/4; AshN: 3π/4 in ONE pulse (§6.4).
        let dur = |gs: GateSet| -> f64 { gs.gate_duration(&swap()).unwrap() };
        assert!((dur(GateSet::Cz) - 3.0 * PI / 2f64.sqrt()).abs() < 1e-9);
        assert!((dur(GateSet::Sqisw) - 3.0 * PI / 4.0).abs() < 1e-9);
        assert!((dur(GateSet::Ashn { cutoff: 0.0 }) - 3.0 * PI / 4.0).abs() < 1e-9);
        let swap_circuit = GateSet::Ashn { cutoff: 0.0 }.compile_swap().unwrap();
        assert_eq!(
            swap_circuit.entangler_count(),
            1,
            "AshN implements SWAP in one pulse"
        );
    }

    #[test]
    fn ashn_is_fastest_on_haar_gates() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut totals = [0.0f64; 3];
        for _ in 0..5 {
            let u = haar_unitary(4, &mut rng);
            totals[0] += GateSet::Cz.gate_duration(&u).unwrap();
            totals[1] += GateSet::Sqisw.gate_duration(&u).unwrap();
            totals[2] += GateSet::Ashn { cutoff: 0.0 }.gate_duration(&u).unwrap();
        }
        assert!(totals[2] < totals[1] && totals[1] < totals[0]);
    }
}
