//! The full quantum-volume pass/fail protocol (Cross et al. [48]): a device
//! achieves `QV = 2^d` when the mean heavy-output probability at size `d`
//! exceeds 2/3 with confidence.

use crate::experiment::{compile_model, sample_model_circuit, score_compiled, QvNoise};
use crate::gateset::GateSet;
use ashn_ir::SynthError;
use rand::Rng;

/// Result of the protocol at one size.
#[derive(Clone, Copy, Debug)]
pub struct QvPoint {
    /// Circuit size (qubits = layers).
    pub d: usize,
    /// Mean heavy-output probability.
    pub mean_hop: f64,
    /// Standard error of the mean over circuits.
    pub std_err: f64,
    /// Whether `mean − 2·stderr > 2/3` (the usual confidence criterion).
    pub pass: bool,
}

/// Evaluates one size with `n_circuits` samples.
///
/// # Errors
///
/// Propagates [`SynthError`] from compilation.
pub fn qv_point(
    d: usize,
    gate_set: GateSet,
    noise: &QvNoise,
    n_circuits: usize,
    rng: &mut impl Rng,
) -> Result<QvPoint, SynthError> {
    let mut hops = Vec::with_capacity(n_circuits);
    for _ in 0..n_circuits {
        let model = sample_model_circuit(d, rng);
        hops.push(score_compiled(&compile_model(&model, gate_set)?, noise).hop);
    }
    let mean = hops.iter().sum::<f64>() / n_circuits as f64;
    let var = hops.iter().map(|h| (h - mean).powi(2)).sum::<f64>() / (n_circuits.max(2) - 1) as f64;
    let std_err = (var / n_circuits as f64).sqrt();
    Ok(QvPoint {
        d,
        mean_hop: mean,
        std_err,
        pass: mean - 2.0 * std_err > 2.0 / 3.0,
    })
}

/// The largest passing size up to `d_max`; the quantum volume is `2^d`.
/// Returns `(d, log2_qv_points)`.
///
/// # Errors
///
/// Propagates [`SynthError`] from compilation.
pub fn quantum_volume(
    gate_set: GateSet,
    noise: &QvNoise,
    d_max: usize,
    n_circuits: usize,
    rng: &mut impl Rng,
) -> Result<(usize, Vec<QvPoint>), SynthError> {
    let mut best = 0usize;
    let mut points = Vec::new();
    for d in 2..=d_max {
        let p = qv_point(d, gate_set, noise, n_circuits, rng)?;
        if p.pass {
            best = d;
        }
        points.push(p);
    }
    Ok((best, points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_device_passes_small_sizes() {
        let mut rng = StdRng::seed_from_u64(61);
        let noise = QvNoise {
            e_cz: 0.0,
            e_1q: 0.0,
        };
        let p = qv_point(3, GateSet::Ashn { cutoff: 0.0 }, &noise, 8, &mut rng).unwrap();
        assert!(p.pass, "noiseless d=3 must pass: {p:?}");
        assert!(p.std_err < 0.1);
    }

    #[test]
    fn very_noisy_device_fails() {
        let mut rng = StdRng::seed_from_u64(62);
        let noise = QvNoise::with_e_cz(0.25);
        let p = qv_point(4, GateSet::Cz, &noise, 6, &mut rng).unwrap();
        assert!(!p.pass, "25% CZ error at d=4 must fail: {p:?}");
        assert!(p.mean_hop < 2.0 / 3.0 + 0.05);
    }

    #[test]
    fn ashn_volume_at_least_matches_cz() {
        let noise = QvNoise::with_e_cz(0.05);
        let run = |gs| {
            let mut rng = StdRng::seed_from_u64(63);
            quantum_volume(gs, &noise, 4, 6, &mut rng).unwrap().0
        };
        let qv_cz = run(GateSet::Cz);
        let qv_ashn = run(GateSet::Ashn { cutoff: 1.1 });
        assert!(qv_ashn >= qv_cz, "AshN QV {qv_ashn} < CZ QV {qv_cz}");
    }
}
